// Package casm is a parallel evaluation engine for composite subset
// measure queries — correlated, hierarchically grouped aggregations over
// multidimensional data, including sliding-window measures — implementing
// Chen, Olston and Ramakrishnan, "Parallel Evaluation of Composite
// Aggregate Queries" (ICDE 2008).
//
// A query is an aggregation workflow: a DAG of measures, each defined
// over a granularity of cube space and derived from raw records (basic
// measures) or from other measures through the self, child/parent,
// parent/child, and sibling relationships. The engine redistributes the
// raw data once into (possibly overlapping) blocks of cube space chosen
// so that every measure can be computed entirely locally inside one
// block; the final answer is the duplicate-free union of the per-block
// results.
//
// Quick start:
//
//	schema := casm.NewSchema(
//		casm.MustAttribute("keyword", casm.Nominal, 10000,
//			casm.Level{Name: "word", Span: 1},
//			casm.Level{Name: "group", Span: 100}),
//		casm.TimeAttribute("time", 7),
//	)
//	q, err := casm.Build(schema).
//		Basic("hits", casm.Agg(casm.Count), "", casm.At("keyword", "word"), casm.At("time", "minute")).
//		Sliding("traffic", casm.Agg(casm.Sum), "hits", casm.Window("time", -9, 0),
//			casm.At("keyword", "word"), casm.At("time", "minute")).
//		Done()
//	eng, err := casm.NewEngine(casm.Config{NumReducers: 8})
//	res, err := eng.Run(q, casm.MemoryDataset(schema, records, 16))
//
// See the examples directory for complete programs.
package casm

import (
	"fmt"

	"github.com/casm-project/casm/internal/blockstore"
	"github.com/casm-project/casm/internal/core"
	"github.com/casm-project/casm/internal/costmodel"
	"github.com/casm-project/casm/internal/cql"
	"github.com/casm-project/casm/internal/cube"
	"github.com/casm-project/casm/internal/distkey"
	"github.com/casm-project/casm/internal/exec"
	"github.com/casm-project/casm/internal/localeval"
	"github.com/casm-project/casm/internal/measure"
	"github.com/casm-project/casm/internal/mr"
	"github.com/casm-project/casm/internal/optimizer"
	"github.com/casm-project/casm/internal/transport"
	"github.com/casm-project/casm/internal/workflow"
)

// --- cube space ---

// Kind classifies an attribute's domain.
type Kind = cube.Kind

// Domain kinds. Only Numeric and Temporal attributes may carry sliding
// windows and distribution-key range annotations.
const (
	Nominal  = cube.Nominal
	Numeric  = cube.Numeric
	Temporal = cube.Temporal
)

// Level is one level of an attribute's domain hierarchy.
type Level = cube.Level

// Attribute is one dimension of cube space with its hierarchy.
type Attribute = cube.Attribute

// Schema is the ordered set of attributes defining cube space.
type Schema = cube.Schema

// Record is one data record: a finest-level value per attribute.
type Record = cube.Record

// Grain names a granularity (one level per attribute).
type Grain = cube.Grain

// GrainSpec selects one attribute's level when building grains.
type GrainSpec = cube.GrainSpec

// Region is a hyper-rectangle of cube space at some grain.
type Region = cube.Region

// NewAttribute builds an attribute; see cube.NewAttribute.
func NewAttribute(name string, kind Kind, card int64, levels ...Level) (*Attribute, error) {
	return cube.NewAttribute(name, kind, card, levels...)
}

// MustAttribute is NewAttribute that panics on error.
func MustAttribute(name string, kind Kind, card int64, levels ...Level) *Attribute {
	return cube.MustAttribute(name, kind, card, levels...)
}

// TimeAttribute builds a temporal attribute with the second < minute <
// hour < day hierarchy covering the given number of days.
func TimeAttribute(name string, days int64) *Attribute {
	return cube.TimeAttribute(name, days)
}

// MappedLevel defines one level of an irregular hierarchy by an explicit
// value→coordinate assignment table.
type MappedLevel = cube.MappedLevel

// NewMappedAttribute builds a nominal attribute whose hierarchy levels
// are given by explicit mapping tables (e.g. SKUs into hand-curated
// categories) instead of fixed spans.
func NewMappedAttribute(name string, card int64, levels ...MappedLevel) (*Attribute, error) {
	return cube.NewMappedAttribute(name, card, levels...)
}

// MustMappedAttribute is NewMappedAttribute that panics on error.
func MustMappedAttribute(name string, card int64, levels ...MappedLevel) *Attribute {
	return cube.MustMappedAttribute(name, card, levels...)
}

// NewSchema builds a schema; it panics on invalid input (schemas are
// static program data). Use cube-level constructors for error returns.
func NewSchema(attrs ...*Attribute) *Schema { return cube.MustSchema(attrs...) }

// At is shorthand for a GrainSpec.
func At(attr, level string) GrainSpec { return GrainSpec{Attr: attr, Level: level} }

// --- measures ---

// AggFunc names an aggregate function.
type AggFunc = measure.Func

// Supported aggregate functions.
const (
	Count    = measure.Count
	Sum      = measure.Sum
	Min      = measure.Min
	Max      = measure.Max
	Avg      = measure.Avg
	Var      = measure.Var
	StdDev   = measure.StdDev
	Median   = measure.Median
	Quantile = measure.Quantile
	// CountDistinct counts distinct input values (holistic).
	CountDistinct = measure.CountDistinct
)

// AggSpec is a fully specified aggregate function.
type AggSpec = measure.Spec

// Agg builds an AggSpec for a parameterless function.
func Agg(f AggFunc) AggSpec { return AggSpec{Func: f} }

// QuantileAgg builds a quantile aggregate with the given rank in (0,1).
func QuantileAgg(rank float64) AggSpec { return AggSpec{Func: Quantile, Arg: rank} }

// Expr combines source measure values in self measures.
type Expr = measure.Expr

// Builtin expressions.
var (
	Ratio = measure.Ratio
	Plus  = measure.Add
	Minus = measure.Sub
	Times = measure.Mul
	Ident = measure.Ident
	Scale = measure.Scale
)

// FuncExpr wraps an arbitrary function as an Expr.
type FuncExpr = measure.FuncExpr

// --- queries ---

// Query is an aggregation workflow: the DAG of measures to evaluate.
type Query = workflow.Workflow

// Measure is one node of a query.
type Measure = workflow.Measure

// RangeAnn is a sibling window annotation (attribute index + offsets).
type RangeAnn = workflow.RangeAnn

// NewQuery returns an empty query over the schema; add measures with the
// AddBasic/AddSelf/AddRollup/AddInherit/AddSliding methods, or use Build
// for a fluent interface.
func NewQuery(schema *Schema) *Query { return workflow.New(schema) }

// ParseQuery compiles CQL text — the library's small query language — into
// a query over the schema. See package internal/cql for the grammar:
//
//	MEASURE m1 = MEDIAN(pages)  AT (keyword:word, time:minute);
//	MEASURE m4 = WINDOW AVG(m3) OVER time(-9, 0) AT (keyword:word, time:minute);
func ParseQuery(schema *Schema, src string) (*Query, error) { return cql.Parse(schema, src) }

// FormatQuery renders a query as CQL text; ParseQuery(FormatQuery(q))
// reconstructs an equivalent query.
func FormatQuery(q *Query) string { return cql.Format(q) }

// --- distribution keys and plans ---

// DistributionKey is a (possibly annotated, hence overlapping)
// distribution key.
type DistributionKey = distkey.Key

// Plan is an optimizer-chosen execution plan.
type Plan = optimizer.Plan

// PlanCache remembers previously successful plans across queries.
type PlanCache = optimizer.PlanCache

// DecisionCache is a bounded keyed cache of finished plan decisions:
// repeated submissions of an equivalent query over the same dataset skip
// planning (including the sampling pass under SkewSampling) entirely.
// Set one as Config.DecisionCache and share it across engines.
type DecisionCache = optimizer.DecisionCache

// DefaultDecisionCacheSize is the capacity NewDecisionCache(0) uses.
const DefaultDecisionCacheSize = optimizer.DefaultDecisionCacheSize

// NewDecisionCache returns an empty decision cache holding at most
// capacity entries (0 = DefaultDecisionCacheSize), evicting the least
// recently used.
func NewDecisionCache(capacity int) *DecisionCache {
	return optimizer.NewDecisionCache(capacity)
}

// Fingerprint returns the query's canonical workflow fingerprint: a
// digest of the normalized measure DAG and schema, stable under measure
// renaming and reordering. Equal fingerprints mean the queries are
// equivalent for planning and caching purposes.
func Fingerprint(q *Query) (string, error) { return workflow.Fingerprint(q) }

// FingerprintCQL parses CQL text and returns its canonical workflow
// fingerprint, so clients can key caches on query text without keeping
// the parsed workflow around.
func FingerprintCQL(schema *Schema, src string) (string, error) {
	return cql.Fingerprint(schema, src)
}

// DeriveKey returns the minimal feasible distribution key for a query
// (paper Theorems 1–2 and the OpConvert/OpCombine algorithms).
func DeriveKey(q *Query) (DistributionKey, error) {
	k, _, err := distkey.Derive(q)
	return k, err
}

// --- engine ---

// Engine evaluates queries in parallel.
type Engine = core.Engine

// Config tunes the engine; see the field documentation in internal/core.
type Config = core.Config

// Execution knobs re-exported from the engine.
const (
	TwoPassSort     = core.TwoPassSort
	CombinedKeySort = core.CombinedKeySort

	// Local-scan strategies for Config.LocalScan.
	HashScan  = localeval.HashScan
	ChainScan = localeval.ChainScan

	StageFull    = core.StageFull
	StageMapOnly = core.StageMapOnly
	StageShuffle = core.StageShuffle
	StageSort    = core.StageSort

	EarlyAggOff  = core.EarlyAggOff
	EarlyAggOn   = core.EarlyAggOn
	EarlyAggAuto = core.EarlyAggAuto

	SkewNone     = core.SkewNone
	SkewSampling = core.SkewSampling
)

// Dataset couples a schema with a record input.
type Dataset = core.Dataset

// Result is a completed evaluation.
type Result = core.Result

// MeasureRecord is one <region, value> output row.
type MeasureRecord = core.MeasureRecord

// BatchResult is a completed multi-query evaluation; see
// Engine.EvaluateBatch.
type BatchResult = core.BatchResult

// BatchJobInfo describes one job a batch ran and which queries shared
// it.
type BatchJobInfo = core.BatchJobInfo

// Service is the resident, multi-tenant form of the engine: a long-lived
// executor pool, a named dataset registry, and a shared decision cache
// behind per-tenant admission control. See core.Service.
type Service = core.Service

// ServiceConfig parameterizes a Service.
type ServiceConfig = core.ServiceConfig

// ServiceStats is a point-in-time snapshot of a Service.
type ServiceStats = core.ServiceStats

// NewService validates the configuration and returns a resident service.
func NewService(cfg ServiceConfig) (*Service, error) { return core.NewService(cfg) }

// Typed service-lifecycle errors, for mapping to transport status codes.
var (
	// ErrDraining: submitted after Drain began (HTTP 503).
	ErrDraining = exec.ErrDraining
	// ErrQueueFull: the bounded admission queue is full (HTTP 429).
	ErrQueueFull = exec.ErrQueueFull
	// ErrUnknownDataset: the named dataset was never registered (HTTP 404).
	ErrUnknownDataset = core.ErrUnknownDataset
	// ErrStreamClosed: reading a result stream after an early Close.
	ErrStreamClosed = mr.ErrClosed
)

// Cluster describes the simulated cluster used for response-time
// estimates.
type Cluster = costmodel.Cluster

// DefaultCluster is the paper's 100-machine cluster.
func DefaultCluster() Cluster { return costmodel.DefaultCluster() }

// NewEngine validates the configuration and returns an engine.
func NewEngine(cfg Config) (*Engine, error) { return core.NewEngine(cfg) }

// MemoryDataset wraps in-memory records as a dataset split into the given
// number of map splits.
func MemoryDataset(schema *Schema, records []Record, splits int) *Dataset {
	return core.MemoryDataset(schema, records, splits)
}

// TransportFactory creates the shuffle transport for a job.
type TransportFactory = transport.Factory

// TCPTransport returns a factory that shuffles over loopback TCP with
// length-prefixed binary
// framing instead of in-memory channels; set it as Config.Transport to
// exercise real network paths. buffer sizes each reducer's receive
// channel (< 1 uses the default).
func TCPTransport(buffer int) TransportFactory { return transport.TCPFactory(buffer) }

// ChannelTransport returns the default in-memory shuffle factory.
func ChannelTransport(buffer int) TransportFactory { return transport.ChannelFactory(buffer) }

// --- distributed storage ---

// Store is the persistent replicated columnar block store: per-node
// append-only segment files, per-column compression, checksummed block
// footers, and torn-tail recovery, so a restarted process reopens its
// datasets without re-ingesting or recounting them.
type Store = blockstore.Store

// StoreConfig parameterizes a Store; Dir is the on-disk root.
type StoreConfig = blockstore.Config

// StoreStats is a store's cumulative health and traffic counters.
type StoreStats = blockstore.Stats

// OpenStore opens (or creates) the persistent block store rooted at
// cfg.Dir, rebuilding its index from the segment files and truncating
// any torn tail left by a crash mid-write.
func OpenStore(cfg StoreConfig) (*Store, error) { return blockstore.Open(cfg) }

// ResultCache is the materialized per-(block, query-fingerprint) result
// cache; hand one to Config.ResultCache and repeated or structurally
// identical queries reuse already-computed block results.
type ResultCache = blockstore.ResultCache

// ResultCacheStats are a ResultCache's cumulative counters.
type ResultCacheStats = blockstore.CacheStats

// NewResultCache returns a result cache bounded to maxBytes of in-memory
// entries (0 = the default budget), persisted write-behind into st; a
// nil st keeps the cache memory-only.
func NewResultCache(st *Store, maxBytes int64) (*ResultCache, error) {
	return blockstore.NewResultCache(st, maxBytes)
}

// WriteRecords stores records as a replicated columnar store file ready
// for parallel scanning, recording the dataset's cardinality and schema
// digest in the store's metadata.
func WriteRecords(st *Store, name string, schema *Schema, records []Record) error {
	return st.WriteRecords(name, schema.NumAttrs(), workflow.SchemaDigest(schema), records)
}

// SaveResults persists an evaluation's measure records as a store file,
// as the paper's jobs write their output back to HDFS.
func SaveResults(st *Store, name string, res *Result, blockSize int) error {
	return core.SaveResults(st, name, res, blockSize)
}

// LoadResults reads a file written by SaveResults, resolving measure
// grains through the query that produced it.
func LoadResults(st *Store, name string, q *Query) (map[string][]MeasureRecord, error) {
	return core.LoadResults(st, name, q)
}

// StoreDataset opens a store file written by WriteRecords as a dataset.
// The cardinality comes from the store's block footers — no counting
// scan — and the dataset is tagged with the file name so plan decisions
// and materialized results key correctly across restarts.
func StoreDataset(schema *Schema, st *Store, file string) (*Dataset, error) {
	info, err := st.FileInfo(file)
	if err != nil {
		return nil, fmt.Errorf("casm: opening %q: %w", file, err)
	}
	if d := workflow.SchemaDigest(schema); info.SchemaDigest != "" && info.SchemaDigest != d {
		return nil, fmt.Errorf("casm: %q was ingested under a different schema", file)
	}
	return &core.Dataset{
		Schema:     schema,
		Input:      mr.NewStoreInput(st, file),
		NumRecords: info.Records,
		Tag:        st.DatasetTag(file),
	}, nil
}

// Explain renders a query, the per-measure and query-wide minimal
// feasible distribution keys, and the optimizer's plan for the given
// dataset size and reducer count.
func Explain(q *Query, totalRecords int64, numReducers int) (string, error) {
	key, perMeasure, err := distkey.Derive(q)
	if err != nil {
		return "", err
	}
	plan, err := optimizer.Optimize(q, optimizer.Config{
		NumReducers:  numReducers,
		TotalRecords: totalRecords,
	})
	if err != nil {
		return "", err
	}
	s := q.Schema()
	out := q.Explain()
	for _, m := range q.Measures() {
		out += fmt.Sprintf("key[%s] = %s\n", m.Name, perMeasure[m.Name].Format(s))
	}
	out += fmt.Sprintf("minimal feasible key: %s\n", key.Format(s))
	return out + plan.Explain(s), nil
}
