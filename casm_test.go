package casm_test

import (
	"math"
	"strings"
	"testing"

	casm "github.com/casm-project/casm"
)

// weblogSchema builds the paper's motivating schema through the public
// API only.
func weblogSchema() *casm.Schema {
	return casm.NewSchema(
		casm.MustAttribute("keyword", casm.Nominal, 100,
			casm.Level{Name: "word", Span: 1},
			casm.Level{Name: "group", Span: 10}),
		casm.MustAttribute("pages", casm.Numeric, 20, casm.Level{Name: "value", Span: 1}),
		casm.MustAttribute("ads", casm.Numeric, 20, casm.Level{Name: "value", Span: 1}),
		casm.TimeAttribute("time", 2),
	)
}

// weblogQuery is the paper's M1–M4 query through the fluent builder.
func weblogQuery(t *testing.T, s *casm.Schema) *casm.Query {
	t.Helper()
	q, err := casm.Build(s).
		Basic("M1", casm.Agg(casm.Median), "pages",
			casm.At("keyword", "word"), casm.At("time", "minute")).
		Basic("M2", casm.Agg(casm.Median), "ads",
			casm.At("keyword", "word"), casm.At("time", "hour")).
		Self("M3", casm.Ratio(), []string{"M1", "M2"},
			casm.At("keyword", "word"), casm.At("time", "minute")).
		Sliding("M4", casm.Agg(casm.Avg), "M3", casm.Window("time", -9, 0),
			casm.At("keyword", "word"), casm.At("time", "minute")).
		Done()
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func genRecords(n int) []casm.Record {
	out := make([]casm.Record, n)
	seed := int64(12345)
	next := func(mod int64) int64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		v := (seed >> 33) % mod
		if v < 0 {
			v += mod
		}
		return v
	}
	for i := range out {
		out[i] = casm.Record{next(100), next(20), 1 + next(19), next(2 * 86400)}
	}
	return out
}

func TestPublicAPIEndToEnd(t *testing.T) {
	s := weblogSchema()
	q := weblogQuery(t, s)
	records := genRecords(3000)

	eng, err := casm.NewEngine(casm.Config{NumReducers: 4, TempDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(q, casm.MemoryDataset(s, records, 6))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{"M1", "M2", "M3", "M4"} {
		if len(res.Measures[m]) == 0 {
			t.Errorf("measure %s has no results", m)
		}
	}
	// M4 values are moving averages of ratios: positive, finite.
	for _, r := range res.Measures["M4"] {
		if math.IsNaN(r.Value) || math.IsInf(r.Value, 0) || r.Value < 0 {
			t.Fatalf("implausible M4 value %v", r.Value)
		}
	}
	if res.Estimate.Total() <= 0 {
		t.Error("no simulated estimate")
	}
	// The plan must be the paper's overlapping hour key.
	if !res.Plan.Key.IsOverlapping() {
		t.Errorf("plan key not overlapping: %s", res.Plan.Key.Format(s))
	}
}

func TestPublicAPIStoreRoundTrip(t *testing.T) {
	s := weblogSchema()
	q := weblogQuery(t, s)
	records := genRecords(2000)

	st, err := casm.OpenStore(casm.StoreConfig{Dir: t.TempDir(), BlockSize: 8192, Replication: 3, NumNodes: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := casm.WriteRecords(st, "weblog", s, records); err != nil {
		t.Fatal(err)
	}
	ds, err := casm.StoreDataset(s, st, "weblog")
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumRecords != 2000 {
		t.Fatalf("store reports %d records", ds.NumRecords)
	}
	eng, err := casm.NewEngine(casm.Config{NumReducers: 3, TempDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	storeRes, err := eng.Run(q, ds)
	if err != nil {
		t.Fatal(err)
	}
	memRes, err := eng.Run(q, casm.MemoryDataset(s, records, 4))
	if err != nil {
		t.Fatal(err)
	}
	// Store-backed and memory-backed runs agree exactly.
	for name, mm := range memRes.Measures {
		dd := storeRes.Measures[name]
		if len(dd) != len(mm) {
			t.Fatalf("%s: %d vs %d records", name, len(dd), len(mm))
		}
		for i := range mm {
			if mm[i].Value != dd[i].Value {
				t.Fatalf("%s[%d]: %v vs %v", name, i, mm[i].Value, dd[i].Value)
			}
		}
	}
}

func TestPublicAPITCPTransport(t *testing.T) {
	s := weblogSchema()
	q := weblogQuery(t, s)
	eng, err := casm.NewEngine(casm.Config{
		NumReducers: 2,
		Transport:   casm.TCPTransport(64),
		TempDir:     t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(q, casm.MemoryDataset(s, genRecords(500), 2))
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalRecords() == 0 {
		t.Error("no results over TCP")
	}
}

func TestDeriveKeyAndExplain(t *testing.T) {
	s := weblogSchema()
	q := weblogQuery(t, s)
	key, err := casm.DeriveKey(q)
	if err != nil {
		t.Fatal(err)
	}
	if got := key.Format(s); got != "<keyword:word, time:hour(-1,0)>" {
		t.Errorf("minimal key = %s", got)
	}
	out, err := casm.Explain(q, 1_000_000, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"M4", "minimal feasible key", "plan:", "cand["} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q:\n%s", want, out)
		}
	}
}

func TestBuilderErrorsStick(t *testing.T) {
	s := weblogSchema()
	if _, err := casm.Build(s).
		Basic("a", casm.Agg(casm.Sum), "nope", casm.At("time", "minute")).
		Basic("b", casm.Agg(casm.Count), "").
		Done(); err == nil {
		t.Error("bad input attribute not reported")
	}
	if _, err := casm.Build(s).
		Basic("a", casm.Agg(casm.Count), "", casm.At("bogus", "minute")).
		Done(); err == nil {
		t.Error("bad grain attribute not reported")
	}
	if _, err := casm.Build(s).
		Basic("a", casm.Agg(casm.Count), "", casm.At("time", "minute")).
		Sliding("w", casm.Agg(casm.Sum), "a", casm.Window("ghost", -1, 0), casm.At("time", "minute")).
		Done(); err == nil {
		t.Error("bad window attribute not reported")
	}
	if _, err := casm.Build(s).Done(); err == nil {
		t.Error("empty query validated")
	}
}

func TestQuantileAggPublic(t *testing.T) {
	s := weblogSchema()
	q, err := casm.Build(s).
		Basic("p90", casm.QuantileAgg(0.9), "pages", casm.At("keyword", "group")).
		Done()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := casm.NewEngine(casm.Config{NumReducers: 2, TempDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(q, casm.MemoryDataset(s, genRecords(1000), 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Measures["p90"]) == 0 {
		t.Error("no quantile results")
	}
}

func TestMappedAttributeAndCQLPublicAPI(t *testing.T) {
	schema := casm.NewSchema(
		casm.MustMappedAttribute("prod", 6,
			casm.MappedLevel{Name: "cat", Assign: []int64{0, 0, 1, 1, 2, 2}},
		),
		casm.MustAttribute("amt", casm.Numeric, 100, casm.Level{Name: "v", Span: 1}),
		casm.TimeAttribute("time", 2),
	)
	if _, err := casm.NewMappedAttribute("bad", 2,
		casm.MappedLevel{Name: "g", Assign: []int64{0}}); err == nil {
		t.Error("short assign accepted")
	}
	src := `
MEASURE rev = SUM(amt) AT (prod:cat, time:day);
MEASURE pts = DISTINCT(amt) AT (prod:cat, time:day);
MEASURE tot = ROLLUP SUM(rev) AT (time:day);
MEASURE back = INHERIT(tot) AT (prod:cat, time:day);
`
	q, err := casm.ParseQuery(schema, src)
	if err != nil {
		t.Fatal(err)
	}
	text := casm.FormatQuery(q)
	if !strings.Contains(text, "DISTINCT(amt)") || !strings.Contains(text, "INHERIT(tot)") {
		t.Errorf("FormatQuery output:\n%s", text)
	}
	q2, err := casm.ParseQuery(schema, text)
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	eng, err := casm.NewEngine(casm.Config{
		NumReducers: 3,
		LocalScan:   casm.ChainScan,
		Transport:   casm.ChannelTransport(64),
		TempDir:     t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	records := make([]casm.Record, 1000)
	for i := range records {
		records[i] = casm.Record{int64(i % 6), int64(i % 100), int64(i*97) % (2 * 86400)}
	}
	res, err := eng.Run(q2, casm.MemoryDataset(schema, records, 2))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{"rev", "pts", "tot", "back"} {
		if len(res.Measures[m]) == 0 {
			t.Errorf("measure %s empty", m)
		}
	}
}

func TestBuilderRollupInheritAndCluster(t *testing.T) {
	s := weblogSchema()
	q, err := casm.Build(s).
		Basic("base", casm.Agg(casm.Sum), "pages", casm.At("keyword", "word"), casm.At("time", "hour")).
		Rollup("daily", casm.Agg(casm.Max), "base", casm.At("keyword", "word"), casm.At("time", "day")).
		Inherit("back", "daily", casm.At("keyword", "word"), casm.At("time", "hour")).
		Self("norm", casm.Ratio(), []string{"base", "back"}, casm.At("keyword", "word"), casm.At("time", "hour")).
		Done()
	if err != nil {
		t.Fatal(err)
	}
	cl := casm.DefaultCluster()
	if cl.Slots() != 200 {
		t.Errorf("cluster slots = %d", cl.Slots())
	}
	eng, err := casm.NewEngine(casm.Config{NumReducers: 2, Cluster: cl, TempDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(q, casm.MemoryDataset(s, genRecords(800), 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Measures["norm"]) == 0 {
		t.Error("no norm results")
	}
	// Every norm value is base/max(base over day) ∈ [0, 1] (0 when a
	// group's page sum is 0).
	for _, r := range res.Measures["norm"] {
		if r.Value < 0 || r.Value > 1+1e-9 {
			t.Fatalf("norm = %v outside [0,1]", r.Value)
		}
	}
}

func TestExplainOnMappedSchemaErrors(t *testing.T) {
	s := weblogSchema()
	if _, err := casm.ParseQuery(s, "MEASURE x = SUM(pages) AT"); err == nil {
		t.Error("truncated CQL accepted")
	}
	q := weblogQuery(t, s)
	if _, err := casm.Explain(q, 0, 4); err == nil {
		t.Error("zero records accepted by Explain")
	}
}
