// Skewtune: run-time skew handling (paper Section V). The same
// sliding-window query is evaluated over a uniform dataset and over one
// whose timestamps all fall in the first quarter of the time range. The
// example compares the model-only plan against the sampling-based plan
// chooser (mappers sample their input, simulate the dispatch for every
// candidate plan, and pick the most balanced one) and shows the plan
// cache reusing a known-good key for a second query.
//
//	go run ./examples/skewtune
package main

import (
	"fmt"
	"log"
	"math/rand"

	casm "github.com/casm-project/casm"
)

const days = 16

func main() {
	schema := casm.NewSchema(
		casm.MustAttribute("region", casm.Nominal, 64,
			casm.Level{Name: "city", Span: 1},
			casm.Level{Name: "country", Span: 16},
		),
		casm.MustAttribute("amount", casm.Numeric, 1000, casm.Level{Name: "value", Span: 1}),
		casm.TimeAttribute("time", days),
	)
	query, err := casm.Build(schema).
		Basic("volume", casm.Agg(casm.Sum), "amount",
			casm.At("region", "country"), casm.At("time", "hour")).
		Sliding("trailing", casm.Agg(casm.Sum), "volume", casm.Window("time", -11, 0),
			casm.At("region", "country"), casm.At("time", "hour")).
		Done()
	if err != nil {
		log.Fatal(err)
	}

	gen := func(skewed bool, n int) []casm.Record {
		rng := rand.New(rand.NewSource(99))
		span := int64(days * 86400)
		if skewed {
			span /= 8 // everything lands in the first two days
		}
		out := make([]casm.Record, n)
		for i := range out {
			out[i] = casm.Record{rng.Int63n(64), rng.Int63n(1000), rng.Int63n(span)}
		}
		return out
	}

	run := func(label string, records []casm.Record, sampling bool) *casm.Result {
		cfg := casm.Config{NumReducers: 32}
		if sampling {
			cfg.SkewMode = casm.SkewSampling
			cfg.SampleSize = 4000
		}
		engine, err := casm.NewEngine(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := engine.Run(query, casm.MemoryDataset(schema, records, 48))
		if err != nil {
			log.Fatal(err)
		}
		// Report balance: heaviest reducer vs the mean.
		var max, total int64
		for _, t := range res.Stats.ReduceTasks {
			if t.PairsIn > max {
				max = t.PairsIn
			}
			total += t.PairsIn
		}
		mean := float64(total) / float64(len(res.Stats.ReduceTasks))
		fmt.Printf("%-28s key=%s cf=%-3d sampled=%-5v imbalance=%.2fx  %s\n",
			label, res.Plan.Key.Format(schema), res.Plan.ClusteringFactor,
			res.SampledPlan, float64(max)/mean, res.Estimate)
		return res
	}

	uniform := gen(false, 200_000)
	skewed := gen(true, 200_000)

	fmt.Println("model-only optimizer:")
	run("  uniform data", uniform, false)
	rNormal := run("  skewed data", skewed, false)

	fmt.Println("\nsampling-based plan choice:")
	run("  uniform data", uniform, true)
	rSampled := run("  skewed data", skewed, true)

	imbalance := func(r *casm.Result) float64 {
		var max, total int64
		for _, t := range r.Stats.ReduceTasks {
			if t.PairsIn > max {
				max = t.PairsIn
			}
			total += t.PairsIn
		}
		return float64(max) / (float64(total) / float64(len(r.Stats.ReduceTasks)))
	}
	fmt.Printf("\non skewed data, sampling improved the heaviest-reducer imbalance from %.2fx to %.2fx\n"+
		"(its fixed overhead was %.1f simulated seconds — negligible at production scale)\n",
		imbalance(rNormal), imbalance(rSampled), rSampled.SampleSeconds)

	// Plan cache: a second, narrower query over the same data reuses the
	// cached key because the cached key generalizes its minimal key.
	cache := &casm.PlanCache{}
	engine, err := casm.NewEngine(casm.Config{NumReducers: 32, Cache: cache})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := engine.Run(query, casm.MemoryDataset(schema, uniform, 48)); err != nil {
		log.Fatal(err)
	}
	narrower, err := casm.Build(schema).
		Basic("volume", casm.Agg(casm.Sum), "amount",
			casm.At("region", "country"), casm.At("time", "hour")).
		Sliding("short", casm.Agg(casm.Avg), "volume", casm.Window("time", -3, 0),
			casm.At("region", "country"), casm.At("time", "hour")).
		Done()
	if err != nil {
		log.Fatal(err)
	}
	res2, err := engine.Run(narrower, casm.MemoryDataset(schema, uniform, 48))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nplan cache holds %d plan(s); second query ran with key=%s cf=%d\n",
		cache.Len(), res2.Plan.Key.Format(schema), res2.Plan.ClusteringFactor)
}
