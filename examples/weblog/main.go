// Weblog: the paper's motivating analysis (Section I). Search-session
// records (Keyword, PageCount, AdCount, Time) are analyzed with four
// correlated measures:
//
//	M1  per keyword & minute:  median page-click count
//	M2  per keyword & hour:    median ad-click count
//	M3  per keyword & minute:  M1 / M2 of the enclosing hour
//	M4  per keyword & 10-min sliding window: moving average of M3
//
// The sliding window forces an *overlapping* distribution key
// (<keyword:word, time:hour(-1,0)>), which this example prints before
// running. Data lives in the replicated in-process DFS, as on the
// paper's cluster.
//
//	go run ./examples/weblog
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"sort"

	casm "github.com/casm-project/casm"
)

// With only 60 distinct keywords, partitioning by keyword alone leaves
// too little parallelism (the introduction's "second algorithm"), so the
// optimizer prefers the finer overlapping hour key.
const (
	keywords = 60
	days     = 2
	sessions = 200_000
)

func main() {
	schema := casm.NewSchema(
		casm.MustAttribute("keyword", casm.Nominal, keywords,
			casm.Level{Name: "word", Span: 1},
			casm.Level{Name: "group", Span: 10},
		),
		casm.MustAttribute("pages", casm.Numeric, 201, casm.Level{Name: "value", Span: 1}),
		casm.MustAttribute("ads", casm.Numeric, 201, casm.Level{Name: "value", Span: 1}),
		casm.TimeAttribute("time", days),
	)

	query, err := casm.Build(schema).
		Basic("M1", casm.Agg(casm.Median), "pages",
			casm.At("keyword", "word"), casm.At("time", "minute")).
		Basic("M2", casm.Agg(casm.Median), "ads",
			casm.At("keyword", "word"), casm.At("time", "hour")).
		Self("M3", casm.Ratio(), []string{"M1", "M2"},
			casm.At("keyword", "word"), casm.At("time", "minute")).
		Sliding("M4", casm.Agg(casm.Avg), "M3", casm.Window("time", -9, 0),
			casm.At("keyword", "word"), casm.At("time", "minute")).
		Done()
	if err != nil {
		log.Fatal(err)
	}

	key, err := casm.DeriveKey(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("minimal feasible distribution key: %s\n\n", key.Format(schema))

	// Synthesize session logs: popular keywords follow a Zipf law, ad
	// clicks correlate loosely with page clicks.
	rng := rand.New(rand.NewSource(2008))
	zipf := rand.NewZipf(rng, 1.2, 8, keywords-1)
	records := make([]casm.Record, sessions)
	for i := range records {
		pages := rng.Int63n(40)
		ads := pages/4 + rng.Int63n(10)
		records[i] = casm.Record{
			int64(zipf.Uint64()),
			pages,
			ads,
			rng.Int63n(days * 86400),
		}
	}

	// Store the log in the persistent replicated block store and evaluate
	// from there. A real deployment would point Dir at durable storage and
	// reopen it across restarts; the example uses a scratch directory.
	dir, err := os.MkdirTemp("", "casm-weblog")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	st, err := casm.OpenStore(casm.StoreConfig{Dir: dir, BlockSize: 1 << 20, Replication: 3, NumNodes: 10, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()
	if err := casm.WriteRecords(st, "sessions.log", schema, records); err != nil {
		log.Fatal(err)
	}
	ds, err := casm.StoreDataset(schema, st, "sessions.log")
	if err != nil {
		log.Fatal(err)
	}

	engine, err := casm.NewEngine(casm.Config{NumReducers: 12})
	if err != nil {
		log.Fatal(err)
	}
	res, err := engine.Run(query, ds)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("plan: key=%s, clustering factor %d (%d blocks)\n",
		res.Plan.Key.Format(schema), res.Plan.ClusteringFactor, res.Plan.Blocks)
	for _, m := range []string{"M1", "M2", "M3", "M4"} {
		fmt.Printf("%-3s %7d measure records\n", m, len(res.Measures[m]))
	}

	// Report the keywords whose ten-minute click-ratio trend peaks
	// highest — the kind of signal the paper's analysts were after.
	type peak struct {
		keyword int64
		value   float64
	}
	best := map[int64]float64{}
	ki, _ := schema.AttrIndex("keyword")
	for _, r := range res.Measures["M4"] {
		kw := r.Region.Coord[ki]
		if r.Value > best[kw] {
			best[kw] = r.Value
		}
	}
	peaks := make([]peak, 0, len(best))
	for kw, v := range best {
		peaks = append(peaks, peak{kw, v})
	}
	sort.Slice(peaks, func(i, j int) bool { return peaks[i].value > peaks[j].value })
	fmt.Println("\ntop keywords by peak 10-minute page/ad click ratio:")
	for i := 0; i < 5 && i < len(peaks); i++ {
		fmt.Printf("  keyword %4d: peak M4 = %.2f\n", peaks[i].keyword, peaks[i].value)
	}
	fmt.Printf("\nsimulated time on the paper's cluster: %s\n", res.Estimate)
}
