// Retail: CQL text queries over an irregular product hierarchy. Products
// group into hand-curated categories and divisions (not fixed-span), and
// the analysis is written in the library's small query language instead
// of Go code — the same text a CLI user would put in a .cql file.
//
//	go run ./examples/retail
package main

import (
	"fmt"
	"log"
	"math/rand"

	casm "github.com/casm-project/casm"
)

// A 12-product catalog with irregular grouping: categories of size
// 2/4/3/3, divisions of size 6/6.
var (
	categories = []int64{0, 0, 1, 1, 1, 1, 2, 2, 2, 3, 3, 3}
	divisions  = []int64{0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1}
)

const analysis = `
-- daily revenue per category, and each category's share of its division
MEASURE revenue  = SUM(amount)            AT (product:category, time:day);
MEASURE divTotal = ROLLUP SUM(revenue)    AT (product:division, time:day);
MEASURE share    = RATIO(revenue, divTotal) AT (product:category, time:day);
-- week-over-trailing-week momentum per category
MEASURE weekly   = WINDOW SUM(revenue) OVER time(-6, 0) AT (product:category, time:day);
-- how many distinct price points each category sells at per day
MEASURE pricePts = DISTINCT(amount)       AT (product:category, time:day);
`

func main() {
	schema := casm.NewSchema(
		casm.MustMappedAttribute("product", int64(len(categories)),
			casm.MappedLevel{Name: "category", Assign: categories},
			casm.MappedLevel{Name: "division", Assign: divisions},
		),
		casm.MustAttribute("amount", casm.Numeric, 500, casm.Level{Name: "cents", Span: 1}),
		casm.TimeAttribute("time", 14),
	)

	query, err := casm.ParseQuery(schema, analysis)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("parsed query:")
	fmt.Println(casm.FormatQuery(query))

	rng := rand.New(rand.NewSource(33))
	records := make([]casm.Record, 150_000)
	for i := range records {
		p := rng.Int63n(int64(len(categories)))
		// Division 1 sells pricier goods; category 3 ramps up over time.
		t := rng.Int63n(14 * 86400)
		amount := 50 + rng.Int63n(200)
		if divisions[p] == 1 {
			amount += 150
		}
		if categories[p] == 3 {
			amount += t / 86400 * 10
		}
		if amount > 499 {
			amount = 499
		}
		records[i] = casm.Record{p, amount, t}
	}

	engine, err := casm.NewEngine(casm.Config{
		NumReducers: 8,
		LocalScan:   casm.ChainScan, // stream contiguous groups off the sort
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := engine.Run(query, casm.MemoryDataset(schema, records, 16))
	if err != nil {
		log.Fatal(err)
	}

	pi, _ := schema.AttrIndex("product")
	ti, _ := schema.AttrIndex("time")

	fmt.Println("category share of division revenue (day 13):")
	for _, r := range res.Measures["share"] {
		if r.Region.Coord[ti] == 13 {
			fmt.Printf("  category %d: %5.1f%%\n", r.Region.Coord[pi], 100*r.Value)
		}
	}

	fmt.Println("\nweekly revenue momentum, category 3 (ramping) vs 0 (flat):")
	for _, day := range []int64{6, 9, 13} {
		var c0, c3 float64
		for _, r := range res.Measures["weekly"] {
			if r.Region.Coord[ti] != day {
				continue
			}
			switch r.Region.Coord[pi] {
			case 0:
				c0 = r.Value
			case 3:
				c3 = r.Value
			}
		}
		fmt.Printf("  day %2d: category0 %9.0f   category3 %9.0f\n", day, c0, c3)
	}

	var pts int
	for _, r := range res.Measures["pricePts"] {
		pts += int(r.Value)
	}
	fmt.Printf("\ndistinct daily price points across all categories: %d\n", pts)
	fmt.Printf("simulated time on the paper's cluster: %s\n", res.Estimate)
}
