// Sensors: an IoT fleet-monitoring scenario exercising overlapping
// distribution and the clustering-factor trade-off. Temperature readings
// (sensor, temperature, time) are summarized per rack and hour, and each
// hour is scored against the rack's baseline from 6–12 hours earlier — a
// drift detector expressed as one composite subset measure query with a
// sliding-window component.
//
// The example evaluates the same query under three clustering factors and
// over the real TCP shuffle, showing how block granularity moves the
// simulated response time while the answer stays identical.
//
//	go run ./examples/sensors
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	casm "github.com/casm-project/casm"
)

const (
	sensors = 512 // 32 racks x 16 sensors
	days    = 10
)

func main() {
	schema := casm.NewSchema(
		casm.MustAttribute("sensor", casm.Nominal, sensors,
			casm.Level{Name: "id", Span: 1},
			casm.Level{Name: "rack", Span: 16},
		),
		casm.MustAttribute("temp", casm.Numeric, 1200, // decidegrees
			casm.Level{Name: "raw", Span: 1},
			casm.Level{Name: "band", Span: 100},
		),
		casm.TimeAttribute("time", days),
	)

	// The detector compares each hour against the rack's baseline from
	// 6–12 hours earlier, so a sustained ramp shows up as a ratio well
	// above 1 while the diurnal wobble stays near 1.
	query, err := casm.Build(schema).
		Basic("hourly", casm.Agg(casm.Avg), "temp",
			casm.At("sensor", "rack"), casm.At("time", "hour")).
		Sliding("baseline", casm.Agg(casm.Avg), "hourly", casm.Window("time", -11, -6),
			casm.At("sensor", "rack"), casm.At("time", "hour")).
		Self("drift", casm.Ratio(), []string{"hourly", "baseline"},
			casm.At("sensor", "rack"), casm.At("time", "hour")).
		Done()
	if err != nil {
		log.Fatal(err)
	}

	// Readings: mild diurnal cycle plus one rack that ramps up on day 9.
	rng := rand.New(rand.NewSource(41))
	var records []casm.Record
	for i := 0; i < 400_000; i++ {
		s := rng.Int63n(sensors)
		t := rng.Int63n(days * 86400)
		base := 400 + 20*math.Sin(2*math.Pi*float64(t%86400)/86400)
		if s/16 == 5 && t > 9*86400 { // rack 5 ramps at +20 deci-degrees/hour
			base += float64(t-9*86400) / 3600 * 20
		}
		temp := int64(base) + rng.Int63n(40)
		if temp > 1199 {
			temp = 1199
		}
		records = append(records, casm.Record{s, temp, t})
	}
	ds := casm.MemoryDataset(schema, records, 32)

	fmt.Println("clustering-factor sweep (same answer, different cost):")
	var reference int
	for _, cf := range []int64{1, 8, 64} {
		engine, err := casm.NewEngine(casm.Config{
			NumReducers: 8,
			ForceCF:     cf,
			Transport:   casm.TCPTransport(256), // real TCP shuffle
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := engine.Run(query, ds)
		if err != nil {
			log.Fatal(err)
		}
		n := int(res.TotalRecords())
		if reference == 0 {
			reference = n
		} else if n != reference {
			log.Fatalf("cf=%d changed the answer: %d vs %d records", cf, n, reference)
		}
		fmt.Printf("  cf=%-3d shuffled %5.1f MB, simulated %s\n",
			cf, float64(res.Stats.Shuffled)/(1<<20), res.Estimate)
	}

	// Let the optimizer choose, then report the drift detector's hits.
	engine, err := casm.NewEngine(casm.Config{NumReducers: 8})
	if err != nil {
		log.Fatal(err)
	}
	res, err := engine.Run(query, ds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noptimizer's choice: key=%s cf=%d\n",
		res.Plan.Key.Format(schema), res.Plan.ClusteringFactor)

	si, _ := schema.AttrIndex("sensor")
	ti, _ := schema.AttrIndex("time")
	worst := map[int64]float64{}
	when := map[int64]int64{}
	for _, r := range res.Measures["drift"] {
		rack := r.Region.Coord[si]
		if r.Value > worst[rack] {
			worst[rack] = r.Value
			when[rack] = r.Region.Coord[ti]
		}
	}
	fmt.Println("\nracks whose hourly average exceeds their 6-12h-earlier baseline by >15%:")
	for rack := int64(0); rack < sensors/16; rack++ {
		if worst[rack] > 1.15 {
			fmt.Printf("  rack %2d: hourly/baseline = %.3f at hour %d  <-- drift\n",
				rack, worst[rack], when[rack])
		}
	}
}
