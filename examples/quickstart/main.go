// Quickstart: define a schema, build a small composite measure query with
// the fluent builder, evaluate it in parallel, and print the results.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	casm "github.com/casm-project/casm"
)

func main() {
	// A tiny web-shop event log: (product, amount, time). Products group
	// into categories; time has the usual second<minute<hour<day levels.
	schema := casm.NewSchema(
		casm.MustAttribute("product", casm.Nominal, 200,
			casm.Level{Name: "sku", Span: 1},
			casm.Level{Name: "category", Span: 20},
		),
		casm.MustAttribute("amount", casm.Numeric, 500,
			casm.Level{Name: "cents", Span: 1},
		),
		casm.TimeAttribute("time", 3), // three days of data
	)

	// The query: hourly revenue per category, its daily total, and each
	// hour's share of the day — three correlated measures evaluated
	// together with a single data redistribution.
	query, err := casm.Build(schema).
		Basic("revenue", casm.Agg(casm.Sum), "amount",
			casm.At("product", "category"), casm.At("time", "hour")).
		Rollup("daily", casm.Agg(casm.Sum), "revenue",
			casm.At("product", "category"), casm.At("time", "day")).
		Self("share", casm.Ratio(), []string{"revenue", "daily"},
			casm.At("product", "category"), casm.At("time", "hour")).
		Done()
	if err != nil {
		log.Fatal(err)
	}

	// Synthetic events.
	rng := rand.New(rand.NewSource(7))
	records := make([]casm.Record, 50_000)
	for i := range records {
		records[i] = casm.Record{
			rng.Int63n(200),       // product
			rng.Int63n(500),       // amount
			rng.Int63n(3 * 86400), // time
		}
	}

	// Show what the optimizer will do before running.
	explain, err := casm.Explain(query, int64(len(records)), 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(explain)

	// Evaluate with 8 parallel reducers.
	engine, err := casm.NewEngine(casm.Config{NumReducers: 8})
	if err != nil {
		log.Fatal(err)
	}
	res, err := engine.Run(query, casm.MemoryDataset(schema, records, 16))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("computed %d measure records\n", res.TotalRecords())
	for _, name := range []string{"revenue", "daily", "share"} {
		rows := res.Measures[name]
		fmt.Printf("\n%s (%d regions), first rows:\n", name, len(rows))
		for i := 0; i < 3 && i < len(rows); i++ {
			fmt.Printf("  %s = %.2f\n", schema.FormatRegion(rows[i].Region), rows[i].Value)
		}
	}
	fmt.Printf("\nsimulated time on the paper's 100-machine cluster: %s\n", res.Estimate)
}
