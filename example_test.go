package casm_test

import (
	"fmt"
	"log"

	casm "github.com/casm-project/casm"
)

// ExampleBuild evaluates a two-measure query — hourly counts and their
// three-hour moving sum — over a tiny deterministic dataset.
func ExampleBuild() {
	schema := casm.NewSchema(
		casm.MustAttribute("kind", casm.Nominal, 4, casm.Level{Name: "id", Span: 1}),
		casm.TimeAttribute("time", 1),
	)
	query, err := casm.Build(schema).
		Basic("hourly", casm.Agg(casm.Count), "", casm.At("time", "hour")).
		Sliding("moving", casm.Agg(casm.Sum), "hourly", casm.Window("time", -2, 0),
			casm.At("time", "hour")).
		Done()
	if err != nil {
		log.Fatal(err)
	}
	// One event in hour 0, two in hour 1, three in hour 2.
	var records []casm.Record
	for hour, n := range []int{1, 2, 3} {
		for i := 0; i < n; i++ {
			records = append(records, casm.Record{int64(i % 4), int64(hour * 3600)})
		}
	}
	engine, err := casm.NewEngine(casm.Config{NumReducers: 2})
	if err != nil {
		log.Fatal(err)
	}
	res, err := engine.Run(query, casm.MemoryDataset(schema, records, 2))
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range res.Measures["moving"] {
		fmt.Printf("%s = %.0f\n", schema.FormatRegion(r.Region), r.Value)
	}
	// Output:
	// [time=0@hour] = 1
	// [time=1@hour] = 3
	// [time=2@hour] = 6
}

// ExampleParseQuery shows the CQL text form of the same query and the
// overlapping distribution key it induces.
func ExampleParseQuery() {
	schema := casm.NewSchema(
		casm.MustAttribute("kind", casm.Nominal, 4, casm.Level{Name: "id", Span: 1}),
		casm.TimeAttribute("time", 1),
	)
	query, err := casm.ParseQuery(schema, `
		MEASURE hourly = COUNT(*) AT (time:hour);
		MEASURE moving = WINDOW SUM(hourly) OVER time(-2, 0) AT (time:hour);
	`)
	if err != nil {
		log.Fatal(err)
	}
	key, err := casm.DeriveKey(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(key.Format(schema))
	// Output:
	// <time:hour(-2,0)>
}
