// Command casmrun evaluates one of the paper's queries over a dataset
// produced by casmgen, printing the chosen plan, per-measure result
// counts, substrate counters, and the simulated response time on the
// paper's 100-machine cluster:
//
//	casmrun -data data.casm -query q6 -reducers 50
//	casmrun -data data.casm -query q5 -cf 10 -sort combined
//	casmrun -data data.casm -query ds0 -early on
//	casmrun -data data.casm -query q5 -skew sampling -tcp
//	casmrun -data data.casm -batch q1,q2,q6
//	casmrun -store /var/casm/store -data events.casm -query q2 -resultcache
//
// Queries: q1..q6 (Section VI), ds0..ds2 (early-aggregation study).
// With -store, -data names a file inside the persistent block store
// (written by casmgen -store) and evaluation streams off the store's
// replicated blocks. Adding -resultcache materializes per-(block,
// fingerprint) results into the store, so re-running the same query in a
// later invocation assembles the answer without scanning any input.
// With -batch, the named queries are evaluated in one EvaluateBatch call:
// compatible queries share a single input scan (and, when their plans
// agree on block geometry, the shuffle too), with per-query answers
// identical to running them one at a time.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"

	casm "github.com/casm-project/casm"
	"github.com/casm-project/casm/internal/core"
	"github.com/casm-project/casm/internal/mr"
	"github.com/casm-project/casm/internal/optimizer"
	"github.com/casm-project/casm/internal/recio"
	"github.com/casm-project/casm/internal/workload"
)

func main() {
	switch err := run(); {
	case err == nil:
	case errors.Is(err, context.Canceled):
		// Interrupted runs exit with the conventional 128+SIGINT code; by
		// this point the engine has already torn the job down (no leaked
		// goroutines, no retained spill descriptors).
		fmt.Fprintln(os.Stderr, "casmrun: interrupted")
		os.Exit(130)
	default:
		fmt.Fprintf(os.Stderr, "casmrun: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		dataPath = flag.String("data", "data.casm", "dataset file from casmgen")
		queryStr = flag.String("query", "q1", "query: q1..q6 | ds0..ds2")
		cqlPath  = flag.String("cql", "", "CQL file defining the query over the paper schema (overrides -query)")
		reducers = flag.Int("reducers", 8, "number of reducers (m)")
		cf       = flag.Int64("cf", 0, "force clustering factor (0 = optimizer)")
		sortMode = flag.String("sort", "twopass", "in-group sort: twopass | combined")
		chain    = flag.Bool("chain", false, "use the chain-scan local evaluator")
		early    = flag.String("early", "off", "early aggregation: off | on | auto")
		skew     = flag.String("skew", "none", "skew handling: none | sampling")
		minBlk   = flag.Int64("minblocks", 0, "minimum blocks per reducer heuristic (0 = off)")
		stage    = flag.String("stage", "full", "pipeline stage: full | maponly | shuffle | sort")
		tcp      = flag.Bool("tcp", false, "shuffle over loopback TCP instead of channels")
		blockSz  = flag.Int("block", 4<<20, "block size used by casmgen")
		values   = flag.Int("show", 0, "print the first N result rows per measure")
		savePath = flag.String("save", "", "write result records to this file (block-aligned frames)")
		tmpDir   = flag.String("tmp", "", "directory for reducer spill files (default OS temp)")
		sortMem  = flag.Int("sortmem", 0, "reducer in-memory grouping budget in items, 0 = default (set small to force spills)")
		morsel   = flag.Bool("morsel", false, "morsel-driven map execution (work-stealing workers over carved splits)")
		morselB  = flag.Int("morselbytes", 0, "morsel size in bytes (implies -morsel; 0 with -morsel = default size)")
		localAgg = flag.Int("localagg", 0, "morsel workers' thread-local pre-aggregation budget in distinct states (0 = default)")
		stream   = flag.Bool("stream", false, "bounded-memory mode: stream splits off disk and rows to the sink, never materializing dataset or result")
		storeDir = flag.String("store", "", "open the persistent block store at this directory; -data names the file inside it")
		resCache = flag.Bool("resultcache", false, "enable the materialized result cache, persisted in the store (requires -store)")
		batchStr = flag.String("batch", "", "comma-separated queries (e.g. q1,q2,q6) evaluated as one shared-scan batch (overrides -query)")
	)
	flag.Parse()

	// Ctrl-C cancels the in-flight evaluation: the engine tears the job
	// down promptly and run returns context.Canceled (exit code 130). A
	// second signal kills the process the hard way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	su := workload.NewSuite()
	var q *casm.Query
	var batchQs []*casm.Query
	var batchNames []string
	var err error
	switch {
	case *batchStr != "":
		if *stream {
			return fmt.Errorf("-batch runs materialized jobs; drop -stream")
		}
		if *savePath != "" {
			return fmt.Errorf("-save works on a single query; drop -batch")
		}
		for _, n := range strings.Split(*batchStr, ",") {
			n = strings.TrimSpace(n)
			bq, berr := pickQuery(su, n)
			if berr != nil {
				return berr
			}
			batchQs = append(batchQs, bq)
			batchNames = append(batchNames, strings.ToLower(n))
		}
	case *cqlPath != "":
		src, rerr := os.ReadFile(*cqlPath)
		if rerr != nil {
			return rerr
		}
		q, err = casm.ParseQuery(su.Schema, string(src))
	default:
		q, err = pickQuery(su, *queryStr)
	}
	if err != nil {
		return err
	}

	// One decision cache per invocation, as in casmserve's resident state:
	// repeat plans of the same (query, dataset, config) are served from it.
	// Forced overrides (-cf) bypass the cache by construction.
	dcache := optimizer.NewDecisionCache(0)
	cfg := casm.Config{
		NumReducers:         *reducers,
		ForceCF:             *cf,
		MinBlocksPerReducer: *minBlk,
		TempDir:             *tmpDir,
		SortMemoryItems:     *sortMem,
		LocalAggBudget:      *localAgg,
		DecisionCache:       dcache,
	}
	if *morselB > 0 {
		cfg.MorselBytes = *morselB
	} else if *morsel {
		cfg.MorselBytes = mr.DefaultMorselBytes
	}
	if *chain {
		cfg.LocalScan = casm.ChainScan
	}
	switch *sortMode {
	case "twopass":
	case "combined":
		cfg.SortMode = casm.CombinedKeySort
	default:
		return fmt.Errorf("unknown sort mode %q", *sortMode)
	}
	switch *early {
	case "off":
	case "on":
		cfg.EarlyAggregation = casm.EarlyAggOn
	case "auto":
		cfg.EarlyAggregation = casm.EarlyAggAuto
	default:
		return fmt.Errorf("unknown early mode %q", *early)
	}
	switch *skew {
	case "none":
	case "sampling":
		cfg.SkewMode = casm.SkewSampling
	default:
		return fmt.Errorf("unknown skew mode %q", *skew)
	}
	switch *stage {
	case "full":
	case "maponly":
		cfg.Stage = casm.StageMapOnly
	case "shuffle":
		cfg.Stage = casm.StageShuffle
	case "sort":
		cfg.Stage = casm.StageSort
	default:
		return fmt.Errorf("unknown stage %q", *stage)
	}
	if *tcp {
		cfg.Transport = casm.TCPTransport(0)
	}

	// -store evaluates off the persistent block store: the dataset's
	// cardinality and schema digest come from block footers (no counting
	// scan), and -resultcache materializes results back into the store so
	// a later invocation of the same query skips the input entirely.
	var st *casm.Store
	var rc *casm.ResultCache
	if *storeDir != "" {
		st, err = casm.OpenStore(casm.StoreConfig{
			Dir: *storeDir, BlockSize: *blockSz, Replication: 3, NumNodes: 10, Seed: 1,
		})
		if err != nil {
			return err
		}
		defer st.Close()
		if *resCache {
			if rc, err = casm.NewResultCache(st, 0); err != nil {
				return err
			}
			defer rc.Close()
			cfg.ResultCache = rc
		}
	} else if *resCache {
		return fmt.Errorf("-resultcache persists into the block store; add -store")
	}

	eng, err := casm.NewEngine(cfg)
	if err != nil {
		return err
	}

	var ds *casm.Dataset
	if st != nil {
		if ds, err = casm.StoreDataset(su.Schema, st, *dataPath); err != nil {
			return err
		}
		fmt.Printf("dataset: %d records from store %s (file %s)\n", ds.NumRecords, *storeDir, *dataPath)
	}

	if *stream {
		if *savePath != "" {
			return fmt.Errorf("-save needs the materialized result; drop -stream")
		}
		if ds == nil {
			if ds, err = core.FileDataset(su.Schema, *dataPath, *blockSz); err != nil {
				return err
			}
		}
		return runStream(ctx, eng, su, q, ds, *values)
	}

	if ds == nil {
		data, err := os.ReadFile(*dataPath)
		if err != nil {
			return err
		}
		records, err := recio.DecodeAll(data, *blockSz, su.Schema.NumAttrs())
		if err != nil {
			return err
		}
		fmt.Printf("dataset: %d records (%d bytes)\n", len(records), len(data))
		ds = core.MemoryDataset(su.Schema, records, 4**reducers)
	}
	if len(batchQs) > 0 {
		if err := runBatch(ctx, eng, su, batchQs, batchNames, ds, *values); err != nil {
			return err
		}
		fmt.Printf("plan cache: %d hits, %d misses\n", dcache.Hits(), dcache.Misses())
		return nil
	}
	res, err := eng.EvaluateContext(ctx, q, ds)
	if err != nil {
		return err
	}

	fmt.Println(q.Explain())
	fmt.Printf("plan: key=%s cf=%d blocks=%d (sampled=%v cached=%v early-agg=%v)\n",
		res.Plan.Key.Format(su.Schema), res.Plan.ClusteringFactor, res.Plan.Blocks,
		res.SampledPlan, res.PlanCached, res.EarlyAggregated)

	names := make([]string, 0, len(res.Measures))
	for n := range res.Measures {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		ms := res.Measures[n]
		fmt.Printf("measure %-10s %8d records\n", n, len(ms))
		for i := 0; i < *values && i < len(ms); i++ {
			fmt.Printf("  %s = %g\n", su.Schema.FormatRegion(ms[i].Region), ms[i].Value)
		}
	}
	fmt.Printf("shuffled: %.1f MB in %d map tasks / %d reduce tasks (wall %.2fs real)\n",
		float64(res.Stats.Shuffled)/(1<<20), len(res.Stats.MapTasks), len(res.Stats.ReduceTasks),
		res.Stats.Wall.Seconds())
	fmt.Printf("simulated response time on the paper's cluster: %s\n", res.Estimate)
	if res.SampleSeconds > 0 {
		fmt.Printf("  (includes %.1fs simulated sampling overhead)\n", res.SampleSeconds)
	}
	if res.ResultReused {
		fmt.Println("result assembled from the materialized cache (no input scanned)")
	}
	if rc != nil {
		cs := rc.Stats()
		fmt.Printf("result cache: %d hits, %d misses, %d bytes materialized, %d evictions\n",
			cs.Hits, cs.Misses, cs.BytesMaterialized, cs.Evictions)
	}
	if *savePath != "" {
		outStore, err := casm.OpenStore(casm.StoreConfig{Dir: *savePath, BlockSize: *blockSz, Replication: 1, NumNodes: 1, Seed: 1})
		if err != nil {
			return err
		}
		if err := casm.SaveResults(outStore, "results", res, *blockSz); err != nil {
			outStore.Close()
			return err
		}
		size, err := outStore.Size("results")
		if err != nil {
			outStore.Close()
			return err
		}
		if err := outStore.Close(); err != nil {
			return err
		}
		fmt.Printf("saved %d measure records to store %s (%d bytes)\n", res.TotalRecords(), *savePath, size)
	}
	return nil
}

// runBatch evaluates the named queries as one EvaluateBatch call and
// prints, per job, which queries shared its scan and shuffle, then the
// usual per-query result summary.
func runBatch(ctx context.Context, eng *casm.Engine, su *workload.Suite, qs []*casm.Query, names []string, ds *casm.Dataset, show int) error {
	batch, err := eng.EvaluateBatchContext(ctx, qs, ds)
	if err != nil {
		return err
	}

	fmt.Printf("batch: %d queries, %d job(s), %d served from shared scans\n",
		len(qs), len(batch.Jobs), batch.SharedScanQueries())
	for ji, job := range batch.Jobs {
		members := make([]string, len(job.Queries))
		for i, qi := range job.Queries {
			members[i] = names[qi]
		}
		if !job.Shared {
			fmt.Printf("job %d: %s (unshared)\n", ji, strings.Join(members, ","))
			continue
		}
		groups := make([]string, len(job.Groups))
		for gi, g := range job.Groups {
			gnames := make([]string, len(g))
			for i, qi := range g {
				gnames[i] = names[qi]
			}
			groups[gi] = "{" + strings.Join(gnames, ",") + "}"
		}
		fmt.Printf("job %d: %s shared one scan; geometry groups (shared shuffle): %s\n",
			ji, strings.Join(members, ","), strings.Join(groups, " "))
		var saved int64
		for _, t := range job.Stats.MapTasks {
			saved += t.SharedScanBytesSaved
		}
		fmt.Printf("job %d: %.1f MB input scanned once, %.1f MB of re-reads avoided\n",
			ji, float64(jobBytesRead(job.Stats))/(1<<20), float64(saved)/(1<<20))
	}

	for qi, res := range batch.Results {
		fmt.Printf("\nquery %s:\n", names[qi])
		fmt.Printf("plan: key=%s cf=%d blocks=%d (sampled=%v cached=%v early-agg=%v)\n",
			res.Plan.Key.Format(su.Schema), res.Plan.ClusteringFactor, res.Plan.Blocks,
			res.SampledPlan, res.PlanCached, res.EarlyAggregated)
		mnames := make([]string, 0, len(res.Measures))
		for n := range res.Measures {
			mnames = append(mnames, n)
		}
		sort.Strings(mnames)
		for _, n := range mnames {
			ms := res.Measures[n]
			fmt.Printf("measure %-10s %8d records\n", n, len(ms))
			for i := 0; i < show && i < len(ms); i++ {
				fmt.Printf("  %s = %g\n", su.Schema.FormatRegion(ms[i].Region), ms[i].Value)
			}
		}
	}
	var sim float64
	for _, job := range batch.Jobs {
		sim += job.Estimate.Total()
	}
	fmt.Printf("\nsimulated response time on the paper's cluster (all %d job(s)): %.2fs\n",
		len(batch.Jobs), sim)
	return nil
}

func jobBytesRead(js mr.JobStats) int64 {
	var n int64
	for _, t := range js.MapTasks {
		n += t.BytesRead
	}
	return n
}

// runStream is the bounded-memory sink: rows flow from the reducers to
// stdout counters while the job still runs, so peak heap is set by the
// in-flight blocks and spill buffers, not by dataset or result size.
func runStream(ctx context.Context, eng *casm.Engine, su *workload.Suite, q *casm.Query, ds *casm.Dataset, show int) error {
	rs, err := eng.EvaluateStream(ctx, q, ds)
	if err != nil {
		return err
	}
	defer rs.Close()

	fmt.Println(q.Explain())
	fmt.Printf("plan: key=%s cf=%d blocks=%d (sampled=%v early-agg=%v)\n",
		rs.Plan.Key.Format(su.Schema), rs.Plan.ClusteringFactor, rs.Plan.Blocks,
		rs.SampledPlan, rs.EarlyAggregated)

	counts := map[string]int64{}
	shown := map[string]int{}
	for {
		row, ok, err := rs.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		counts[row.Measure]++
		if shown[row.Measure] < show {
			shown[row.Measure]++
			fmt.Printf("  %s: %s = %g\n", row.Measure, su.Schema.FormatRegion(row.Region), row.Value)
		}
	}
	if err := rs.Close(); err != nil {
		return err
	}

	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("measure %-10s %8d records\n", n, counts[n])
	}
	st := rs.Stats()
	fmt.Printf("shuffled: %.1f MB in %d map tasks / %d reduce tasks (wall %.2fs real)\n",
		float64(st.Shuffled)/(1<<20), len(st.MapTasks), len(st.ReduceTasks), st.Wall.Seconds())
	fmt.Printf("streamed %d rows; simulated response time on the paper's cluster: %s\n",
		rs.Rows(), rs.Estimate())
	if rs.SampleSeconds > 0 {
		fmt.Printf("  (includes %.1fs simulated sampling overhead)\n", rs.SampleSeconds)
	}
	return nil
}

func pickQuery(su *workload.Suite, name string) (*casm.Query, error) {
	n := strings.ToLower(name)
	switch {
	case strings.HasPrefix(n, "q") && len(n) == 2:
		return su.Query(int(n[1] - '0'))
	case strings.HasPrefix(n, "ds") && len(n) == 3:
		return su.DS(int(n[2] - '0'))
	default:
		return nil, fmt.Errorf("unknown query %q (want q1..q6 or ds0..ds2)", name)
	}
}
