// Command casmbench regenerates the paper's evaluation (Figure 4, panels
// (a)–(f)) at laptop scale and prints one table per panel:
//
//	casmbench                 # all panels at the default scale
//	casmbench -panel c        # one panel
//	casmbench -scale 2.5      # larger datasets
//	casmbench -json           # machine-readable snapshot on stdout
//	casmbench -morselskew     # add the morsel vs fixed-split comparison
//	casmbench -sharedscan     # add the batched vs sequential multi-query comparison
//	casmbench -serveload      # add the resident-service concurrent-load study
//	casmbench -resultreuse    # add the cold vs warm materialized-result-reuse study
//	casmbench -cpuprofile cpu.pprof -memprofile mem.pprof
//
// Panels execute real engine runs; the reported numbers are simulated
// response times on the paper's 100-machine cluster (see DESIGN.md for
// the substitution rationale). EXPERIMENTS.md records the paper-vs-
// reproduced comparison for each panel. The -json snapshot carries the
// raw panel data plus run metadata, so CI can archive comparable
// baselines across commits (see BENCH_PR2.json for the current one).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"github.com/casm-project/casm/internal/blockstore"
	"github.com/casm-project/casm/internal/exec"
	"github.com/casm-project/casm/internal/figures"
	"github.com/casm-project/casm/internal/optimizer"
)

// snapshot is the -json output document.
type snapshot struct {
	Scale       float64                `json:"scale"`
	Seed        int64                  `json:"seed"`
	GoVersion   string                 `json:"go_version"`
	GOOS        string                 `json:"goos"`
	GOARCH      string                 `json:"goarch"`
	GeneratedAt string                 `json:"generated_at"`
	Panels      map[string]panelResult `json:"panels"`
	// MorselSkew is the -morselskew comparison. It lives outside Panels
	// on purpose: casmbenchdiff compares the union of the two snapshots'
	// panel keys, and this section is a reproduction-extension study, not
	// one of the paper's figures it guards.
	MorselSkew *panelResult `json:"morsel_skew,omitempty"`
	// Memory is the host-side memory footprint of the panel (a) run. Also
	// outside Panels: allocation totals and peak heap are properties of
	// this Go process on this machine — tracked across PRs for the
	// bounded-memory work, but never bit-guarded like simulated seconds.
	Memory *memoryResult `json:"memory,omitempty"`
	// SharedScan is the -sharedscan batched-vs-sequential comparison.
	// Outside Panels for the same reason as MorselSkew: it studies a
	// reproduction extension (multi-query shared-scan batching), not one
	// of the paper's figures, and its wall-clock arms are host-dependent.
	SharedScan *panelResult `json:"shared_scan,omitempty"`
	// ServeLoad is the -serveload resident-service concurrency study
	// (qps and latency percentiles through a real HTTP server). Outside
	// Panels like the others: a reproduction-extension study in host
	// wall-clock terms, never bit-guarded.
	ServeLoad *panelResult `json:"serve_load,omitempty"`
	// PlanCache reports the shared decision cache's traffic across the
	// whole panel run: the panels all execute through one resident
	// executor and one decision cache (the casmserve state model), so
	// repeated (workflow, dataset, config) runs skip planning. Cache hits
	// are priced at zero in the cost model and skew-handled runs bypass
	// the cache, so the published panel numbers are unchanged.
	PlanCache *planCacheResult `json:"plan_cache,omitempty"`
	// ResultReuse is the -resultreuse cold-vs-warm materialized-result
	// study over the persistent block store. Outside Panels like the
	// other extension studies: it evaluates this reproduction's result
	// cache, not one of the paper's figures.
	ResultReuse *panelResult `json:"result_reuse,omitempty"`
	// ResultCache carries the result cache's cumulative counters from the
	// -resultreuse run (hits, misses, bytes materialized, evictions).
	ResultCache *blockstore.CacheStats `json:"result_cache,omitempty"`
}

type planCacheResult struct {
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	Entries int   `json:"entries"`
}

// memoryResult is the allocation accounting bracket around one panel:
// AllocBytes/Mallocs are the runtime.MemStats TotalAlloc/Mallocs deltas
// (the B/op and allocs/op equivalents for a 1-iteration run), and
// PeakHeapInuse the maximum HeapInuse a background sampler observed while
// the panel ran — the number a GOMEMLIMIT bound would have to accommodate.
type memoryResult struct {
	Panel              string `json:"panel"`
	AllocBytes         uint64 `json:"alloc_bytes"`
	Mallocs            uint64 `json:"mallocs"`
	PeakHeapInuseBytes uint64 `json:"peak_heap_inuse_bytes"`
}

// measureMemory runs fn bracketed by MemStats reads, with a 10ms sampler
// tracking peak in-use heap (ReadMemStats briefly stops the world, so the
// interval trades resolution against perturbing the measured run).
func measureMemory(panel string, fn func()) memoryResult {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	stop := make(chan struct{})
	peakCh := make(chan uint64)
	go func() {
		tick := time.NewTicker(10 * time.Millisecond)
		defer tick.Stop()
		var ms runtime.MemStats
		var peak uint64
		for {
			select {
			case <-stop:
				peakCh <- peak
				return
			case <-tick.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapInuse > peak {
					peak = ms.HeapInuse
				}
			}
		}
	}()
	fn()
	close(stop)
	peak := <-peakCh
	runtime.ReadMemStats(&after)
	if after.HeapInuse > peak {
		peak = after.HeapInuse
	}
	return memoryResult{
		Panel:              panel,
		AllocBytes:         after.TotalAlloc - before.TotalAlloc,
		Mallocs:            after.Mallocs - before.Mallocs,
		PeakHeapInuseBytes: peak,
	}
}

type panelResult struct {
	Title       string  `json:"title"`
	RealSeconds float64 `json:"real_seconds"`
	// Data is the panel's raw result struct (figures.PanelA–PanelF).
	Data any `json:"data"`
}

func main() {
	var (
		panel      = flag.String("panel", "all", "panel to run: a|b|c|d|e|f|all")
		scale      = flag.Float64("scale", 1.0, "dataset scale multiplier")
		seed       = flag.Int64("seed", 1, "data generation seed")
		asJSON     = flag.Bool("json", false, "emit a machine-readable JSON snapshot instead of tables")
		morselSkew = flag.Bool("morselskew", false, "also run the morsel vs fixed-split skew comparison")
		sharedScan = flag.Bool("sharedscan", false, "also run the shared-scan batched vs sequential comparison")
		serveLoad  = flag.Bool("serveload", false, "also run the resident-service concurrent-load study")
		resReuse   = flag.Bool("resultreuse", false, "also run the cold vs warm materialized-result-reuse study")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if !strings.Contains("abcdef all", *panel) {
		fmt.Fprintf(os.Stderr, "casmbench: unknown panel %q\n", *panel)
		os.Exit(2)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "casmbench: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "casmbench: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	// Ctrl-C cancels the in-flight panel run: the engine tears the current
	// job down (senders unblock, spill runs are reclaimed) and the process
	// exits with the conventional 130 instead of abandoning goroutines
	// mid-shuffle. A second signal kills the process the hard way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The panels share one resident executor pool and decision cache, the
	// same state model casmserve keeps across queries.
	pool := exec.New(0)
	defer pool.Close()
	dcache := optimizer.NewDecisionCache(0)
	cfg := figures.Config{Scale: *scale, Seed: *seed, TempDir: os.TempDir(),
		Executor: pool, DecisionCache: dcache}
	snap := snapshot{
		Scale:       *scale,
		Seed:        *seed,
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Panels:      map[string]panelResult{},
	}

	type tabler interface{ Table() figures.Table }
	run := func(name string, f func(figures.Config) (tabler, error)) {
		if *panel != "all" && *panel != name {
			return
		}
		start := time.Now()
		var p tabler
		var err error
		if name == "a" {
			// Panel (a) doubles as the memory benchmark: the scale-up sweep
			// is the biggest single-process data plane exercise here.
			mem := measureMemory(name, func() { p, err = f(cfg) })
			if err == nil {
				snap.Memory = &mem
			}
		} else {
			p, err = f(cfg)
		}
		if err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintf(os.Stderr, "casmbench: interrupted\n")
				os.Exit(130)
			}
			fmt.Fprintf(os.Stderr, "casmbench: panel %s: %v\n", name, err)
			os.Exit(1)
		}
		elapsed := time.Since(start).Seconds()
		t := p.Table()
		if *asJSON {
			snap.Panels[name] = panelResult{Title: t.Title, RealSeconds: elapsed, Data: p}
			return
		}
		fmt.Print(t.String())
		fmt.Printf("(panel %s regenerated in %.1fs real time)\n\n", name, elapsed)
		if m := snap.Memory; m != nil && m.Panel == name {
			fmt.Printf("(panel %s memory: %.1f MB allocated in %d mallocs, peak heap in use %.1f MB)\n\n",
				name, float64(m.AllocBytes)/(1<<20), m.Mallocs, float64(m.PeakHeapInuseBytes)/(1<<20))
		}
	}

	run("a", func(c figures.Config) (tabler, error) { return figures.Fig4a(ctx, c) })
	run("b", func(c figures.Config) (tabler, error) { return figures.Fig4b(ctx, c) })
	run("c", func(c figures.Config) (tabler, error) { return figures.Fig4c(ctx, c) })
	run("d", func(c figures.Config) (tabler, error) { return figures.Fig4d(ctx, c) })
	run("e", func(c figures.Config) (tabler, error) { return figures.Fig4e(ctx, c) })
	run("f", func(c figures.Config) (tabler, error) { return figures.Fig4f(ctx, c) })

	if *morselSkew {
		start := time.Now()
		p, err := figures.MorselSkewPanel(ctx, cfg)
		if err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintf(os.Stderr, "casmbench: interrupted\n")
				os.Exit(130)
			}
			fmt.Fprintf(os.Stderr, "casmbench: morselskew: %v\n", err)
			os.Exit(1)
		}
		elapsed := time.Since(start).Seconds()
		t := p.Table()
		if *asJSON {
			snap.MorselSkew = &panelResult{Title: t.Title, RealSeconds: elapsed, Data: p}
		} else {
			fmt.Print(t.String())
			fmt.Printf("(morselskew regenerated in %.1fs real time)\n\n", elapsed)
		}
	}

	if *sharedScan {
		start := time.Now()
		p, err := figures.SharedScanPanel(ctx, cfg)
		if err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintf(os.Stderr, "casmbench: interrupted\n")
				os.Exit(130)
			}
			fmt.Fprintf(os.Stderr, "casmbench: sharedscan: %v\n", err)
			os.Exit(1)
		}
		elapsed := time.Since(start).Seconds()
		t := p.Table()
		if *asJSON {
			snap.SharedScan = &panelResult{Title: t.Title, RealSeconds: elapsed, Data: p}
		} else {
			fmt.Print(t.String())
			fmt.Printf("(sharedscan regenerated in %.1fs real time)\n\n", elapsed)
		}
	}

	if *serveLoad {
		start := time.Now()
		p, err := figures.ServeLoadPanel(ctx, cfg)
		if err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintf(os.Stderr, "casmbench: interrupted\n")
				os.Exit(130)
			}
			fmt.Fprintf(os.Stderr, "casmbench: serveload: %v\n", err)
			os.Exit(1)
		}
		elapsed := time.Since(start).Seconds()
		t := p.Table()
		if *asJSON {
			snap.ServeLoad = &panelResult{Title: t.Title, RealSeconds: elapsed, Data: p}
		} else {
			fmt.Print(t.String())
			fmt.Printf("(serveload regenerated in %.1fs real time)\n\n", elapsed)
		}
	}

	if *resReuse {
		start := time.Now()
		p, err := figures.ResultReusePanel(ctx, cfg)
		if err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintf(os.Stderr, "casmbench: interrupted\n")
				os.Exit(130)
			}
			fmt.Fprintf(os.Stderr, "casmbench: resultreuse: %v\n", err)
			os.Exit(1)
		}
		elapsed := time.Since(start).Seconds()
		t := p.Table()
		snap.ResultCache = p.Cache
		if *asJSON {
			snap.ResultReuse = &panelResult{Title: t.Title, RealSeconds: elapsed, Data: p}
		} else {
			fmt.Print(t.String())
			fmt.Printf("(resultreuse regenerated in %.1fs real time)\n\n", elapsed)
		}
	}

	snap.PlanCache = &planCacheResult{Hits: dcache.Hits(), Misses: dcache.Misses(), Entries: dcache.Len()}
	if !*asJSON {
		fmt.Printf("(plan cache across panels: %d hits, %d misses, %d entries)\n",
			dcache.Hits(), dcache.Misses(), dcache.Len())
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(snap); err != nil {
			fmt.Fprintf(os.Stderr, "casmbench: json: %v\n", err)
			os.Exit(1)
		}
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "casmbench: memprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "casmbench: memprofile: %v\n", err)
			os.Exit(1)
		}
	}
}
