// Command casmbench regenerates the paper's evaluation (Figure 4, panels
// (a)–(f)) at laptop scale and prints one table per panel:
//
//	casmbench                 # all panels at the default scale
//	casmbench -panel c        # one panel
//	casmbench -scale 2.5      # larger datasets
//
// Panels execute real engine runs; the reported numbers are simulated
// response times on the paper's 100-machine cluster (see DESIGN.md for
// the substitution rationale). EXPERIMENTS.md records the paper-vs-
// reproduced comparison for each panel.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/casm-project/casm/internal/figures"
)

func main() {
	var (
		panel = flag.String("panel", "all", "panel to run: a|b|c|d|e|f|all")
		scale = flag.Float64("scale", 1.0, "dataset scale multiplier")
		seed  = flag.Int64("seed", 1, "data generation seed")
	)
	flag.Parse()

	cfg := figures.Config{Scale: *scale, Seed: *seed, TempDir: os.TempDir()}
	run := func(name string, f func(figures.Config) (fmt.Stringer, error)) {
		if *panel != "all" && *panel != name {
			return
		}
		start := time.Now()
		t, err := f(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "casmbench: panel %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Print(t.String())
		fmt.Printf("(panel %s regenerated in %.1fs real time)\n\n", name, time.Since(start).Seconds())
	}

	run("a", func(c figures.Config) (fmt.Stringer, error) {
		p, err := figures.Fig4a(c)
		if err != nil {
			return nil, err
		}
		return p.Table(), nil
	})
	run("b", func(c figures.Config) (fmt.Stringer, error) {
		p, err := figures.Fig4b(c)
		if err != nil {
			return nil, err
		}
		return p.Table(), nil
	})
	run("c", func(c figures.Config) (fmt.Stringer, error) {
		p, err := figures.Fig4c(c)
		if err != nil {
			return nil, err
		}
		return p.Table(), nil
	})
	run("d", func(c figures.Config) (fmt.Stringer, error) {
		p, err := figures.Fig4d(c)
		if err != nil {
			return nil, err
		}
		return p.Table(), nil
	})
	run("e", func(c figures.Config) (fmt.Stringer, error) {
		p, err := figures.Fig4e(c)
		if err != nil {
			return nil, err
		}
		return p.Table(), nil
	})
	run("f", func(c figures.Config) (fmt.Stringer, error) {
		p, err := figures.Fig4f(c)
		if err != nil {
			return nil, err
		}
		return p.Table(), nil
	})

	if !strings.Contains("abcdef all", *panel) {
		fmt.Fprintf(os.Stderr, "casmbench: unknown panel %q\n", *panel)
		os.Exit(2)
	}
}
