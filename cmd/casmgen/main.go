// Command casmgen generates the paper's synthetic datasets (Section VI)
// as a packed record file that casmrun can evaluate:
//
//	casmgen -n 1000000 -dist uniform -seed 1 -o data.casm
//
// The file is a sequence of block-aligned varint-framed records over the
// six-attribute evaluation schema (a1..a4 in [0,256) with a four-level
// hierarchy; t1, t2 covering twenty days at second resolution).
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/casm-project/casm/internal/recio"
	"github.com/casm-project/casm/internal/workload"
)

func main() {
	var (
		n         = flag.Int("n", 100_000, "number of records")
		dist      = flag.String("dist", "uniform", "data distribution: uniform | skewed")
		seed      = flag.Int64("seed", 1, "generator seed")
		out       = flag.String("o", "data.casm", "output file")
		blockSize = flag.Int("block", 4<<20, "block size in bytes (records never straddle blocks)")
	)
	flag.Parse()

	var d workload.Distribution
	switch *dist {
	case "uniform":
		d = workload.Uniform
	case "skewed":
		d = workload.SkewedTime
	default:
		fmt.Fprintf(os.Stderr, "casmgen: unknown distribution %q (want uniform or skewed)\n", *dist)
		os.Exit(2)
	}

	su := workload.NewSuite()
	records := su.Generate(*n, d, *seed)
	data, err := recio.PackAligned(records, *blockSize)
	if err != nil {
		fmt.Fprintf(os.Stderr, "casmgen: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "casmgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d records (%d bytes, %s distribution, seed %d) to %s\n",
		*n, len(data), d, *seed, *out)
}
