// Command casmgen generates the paper's synthetic datasets (Section VI)
// as a packed record file that casmrun can evaluate:
//
//	casmgen -n 1000000 -dist uniform -seed 1 -o data.casm
//	casmgen -n 1000000 -zipf 2 -layout clustered -o skew.casm
//
// The file is a sequence of block-aligned varint-framed records over the
// six-attribute evaluation schema (a1..a4 in [0,256) with a four-level
// hierarchy; t1, t2 covering twenty days at second resolution).
//
// The skew knobs build the §V straggler scenarios: -zipf draws a1..a4
// zipf-distributed (exponent > 1; larger = more skew), and -layout
// controls how the skew maps onto splits — shuffled interleaves hot keys
// across all blocks, clustered sorts records so each hot key forms a
// contiguous run, adversarial additionally parks the hottest runs at the
// end of the file.
//
// With -store DIR, records ingest into the persistent replicated block
// store rooted at DIR instead of a flat file; -o names the file inside
// the store. casmserve and casmrun reopen it with their own -store flag
// and skip recounting — the record count and schema digest persist in
// block footers:
//
//	casmgen -n 1000000 -store /var/casm/store -o events.casm
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/casm-project/casm/internal/blockstore"
	"github.com/casm-project/casm/internal/recio"
	"github.com/casm-project/casm/internal/workload"
)

func main() {
	var (
		n         = flag.Int("n", 100_000, "number of records")
		dist      = flag.String("dist", "uniform", "data distribution: uniform | skewed")
		zipf      = flag.Float64("zipf", 0, "zipf exponent for a1..a4 (> 1; 0 = uniform)")
		layout    = flag.String("layout", "shuffled", "record layout: shuffled | clustered | adversarial")
		seed      = flag.Int64("seed", 1, "generator seed")
		out       = flag.String("o", "data.casm", "output file (with -store: the file name inside the store)")
		blockSize = flag.Int("block", 4<<20, "block size in bytes (records never straddle blocks)")
		storeDir  = flag.String("store", "", "ingest into the persistent block store at this directory instead of a flat file")
		repl      = flag.Int("replication", 3, "store replication factor (with -store)")
		nodes     = flag.Int("nodes", 10, "store node count (with -store)")
	)
	flag.Parse()

	var d workload.Distribution
	switch *dist {
	case "uniform":
		d = workload.Uniform
	case "skewed":
		d = workload.SkewedTime
	default:
		fmt.Fprintf(os.Stderr, "casmgen: unknown distribution %q (want uniform or skewed)\n", *dist)
		os.Exit(2)
	}
	lay, err := workload.ParseLayout(*layout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "casmgen: %v\n", err)
		os.Exit(2)
	}

	su := workload.NewSuite()
	records, err := su.GenerateOpts(workload.GenOpts{
		N: *n, Dist: d, Seed: *seed, Zipf: *zipf, Layout: lay,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "casmgen: %v\n", err)
		os.Exit(2)
	}
	if *storeDir != "" {
		st, err := blockstore.Open(blockstore.Config{
			Dir: *storeDir, BlockSize: *blockSize, Replication: *repl, NumNodes: *nodes, Seed: *seed,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "casmgen: %v\n", err)
			os.Exit(1)
		}
		// Replace, not append: re-running the same casmgen converges to
		// exactly the generated records.
		if _, ferr := st.FileInfo(*out); ferr == nil {
			if err := st.Delete(*out); err != nil {
				st.Close()
				fmt.Fprintf(os.Stderr, "casmgen: %v\n", err)
				os.Exit(1)
			}
		}
		if err := workload.WriteStore(st, *out, su.Schema, records); err != nil {
			st.Close()
			fmt.Fprintf(os.Stderr, "casmgen: %v\n", err)
			os.Exit(1)
		}
		size, err := st.Size(*out)
		if err != nil {
			st.Close()
			fmt.Fprintf(os.Stderr, "casmgen: %v\n", err)
			os.Exit(1)
		}
		if err := st.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "casmgen: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("ingested %d records (%d stored bytes, %s distribution, zipf %g, %s layout, seed %d) into store %s as %s\n",
			*n, size, d, *zipf, lay, *seed, *storeDir, *out)
		return
	}
	data, err := recio.PackAligned(records, *blockSize)
	if err != nil {
		fmt.Fprintf(os.Stderr, "casmgen: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "casmgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d records (%d bytes, %s distribution, zipf %g, %s layout, seed %d) to %s\n",
		*n, len(data), d, *zipf, lay, *seed, *out)
}
