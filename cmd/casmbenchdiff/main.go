// Command casmbenchdiff compares two `casmbench -json` snapshots for
// simulated-result regressions:
//
//	casmbenchdiff BENCH_PR2.json BENCH_PR3.json
//
// It demands exact equality of the run parameters (scale, seed) and of
// every panel's raw data — the simulated seconds are a pure function of
// the engine's priced counters, so across commits that only change real
// performance they must match bit for bit. Run metadata (timestamps, Go
// version, real wall-clock seconds) is ignored. Exits 1 when the
// snapshots differ, 2 on usage or parse errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: casmbenchdiff OLD.json NEW.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	oldPath, newPath := flag.Arg(0), flag.Arg(1)
	a, b := load(oldPath), load(newPath)

	var diffs []string
	for _, key := range []string{"scale", "seed"} {
		diffValue(key, a[key], b[key], &diffs)
	}
	diffPanels(asObject("panels", a["panels"], &diffs), asObject("panels", b["panels"], &diffs), &diffs)

	if len(diffs) > 0 {
		fmt.Fprintf(os.Stderr, "casmbenchdiff: %s and %s differ in %d place(s):\n", oldPath, newPath, len(diffs))
		for _, d := range diffs {
			fmt.Fprintf(os.Stderr, "  %s\n", d)
		}
		os.Exit(1)
	}
	fmt.Printf("casmbenchdiff: %s and %s agree on scale, seed, and all panel data\n", oldPath, newPath)
}

func load(path string) map[string]any {
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "casmbenchdiff: %v\n", err)
		os.Exit(2)
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		fmt.Fprintf(os.Stderr, "casmbenchdiff: %s: %v\n", path, err)
		os.Exit(2)
	}
	return doc
}

func asObject(path string, v any, diffs *[]string) map[string]any {
	m, ok := v.(map[string]any)
	if !ok {
		*diffs = append(*diffs, fmt.Sprintf("%s: not a JSON object", path))
	}
	return m
}

// diffPanels compares the "data" member of every panel; the surrounding
// metadata (title, real_seconds) is informational and may drift.
func diffPanels(a, b map[string]any, diffs *[]string) {
	for _, name := range unionKeys(a, b) {
		path := "panels." + name
		pa, aok := a[name]
		pb, bok := b[name]
		switch {
		case !aok:
			*diffs = append(*diffs, path+": only in new snapshot")
		case !bok:
			*diffs = append(*diffs, path+": only in old snapshot")
		default:
			da := asObject(path, pa, diffs)["data"]
			db := asObject(path, pb, diffs)["data"]
			diffValue(path+".data", da, db, diffs)
		}
	}
}

// diffValue recursively compares two decoded JSON values with exact
// equality — floats included: equal simulated results serialize and
// re-parse to identical float64 bits.
func diffValue(path string, a, b any, diffs *[]string) {
	switch av := a.(type) {
	case map[string]any:
		bv, ok := b.(map[string]any)
		if !ok {
			*diffs = append(*diffs, fmt.Sprintf("%s: object vs %T", path, b))
			return
		}
		for _, k := range unionKeys(av, bv) {
			sa, aok := av[k]
			sb, bok := bv[k]
			switch {
			case !aok:
				*diffs = append(*diffs, fmt.Sprintf("%s.%s: only in new snapshot", path, k))
			case !bok:
				*diffs = append(*diffs, fmt.Sprintf("%s.%s: only in old snapshot", path, k))
			default:
				diffValue(path+"."+k, sa, sb, diffs)
			}
		}
	case []any:
		bv, ok := b.([]any)
		if !ok {
			*diffs = append(*diffs, fmt.Sprintf("%s: array vs %T", path, b))
			return
		}
		if len(av) != len(bv) {
			*diffs = append(*diffs, fmt.Sprintf("%s: length %d vs %d", path, len(av), len(bv)))
			return
		}
		for i := range av {
			diffValue(fmt.Sprintf("%s[%d]", path, i), av[i], bv[i], diffs)
		}
	default:
		if a != b {
			*diffs = append(*diffs, fmt.Sprintf("%s: %v vs %v", path, a, b))
		}
	}
}

func unionKeys(a, b map[string]any) []string {
	seen := make(map[string]bool, len(a)+len(b))
	var keys []string
	for k := range a {
		seen[k] = true
		keys = append(keys, k)
	}
	for k := range b {
		if !seen[k] {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}
