// Command casmserve runs the resident query service: a long-lived HTTP
// server over one shared executor pool, a named dataset registry, and a
// shared plan-decision cache, with per-tenant admission control. Unlike
// casmrun — plan, run, exit — casmserve keeps data registered and plans
// cached across queries, so repeated submissions skip planning entirely.
//
//	casmgen -n 1000000 -out data.casm
//	casmserve -data events=data.casm -addr :8080
//
//	# unary query
//	curl -s -X POST 'localhost:8080/query?dataset=events&limit=3' \
//	     -H 'X-Casm-Tenant: alice' \
//	     --data 'MEASURE hits = COUNT(*) AT (a1:value, t1:hour);'
//
//	# streaming (NDJSON) query
//	curl -sN -X POST 'localhost:8080/query?dataset=events&stream=1' \
//	     --data 'MEASURE hits = COUNT(*) AT (a1:value, t1:hour);'
//
// With -store DIR the service runs over the persistent block store at
// DIR: -data name=file registers files already ingested there (casmgen
// -store), while -ingest makes -data name=path ingest flat casmgen files
// into the store under the dataset's name first. Either way the store
// also backs a materialized result cache (bound it with -resultcache),
// so repeated queries are answered without scanning input — across
// restarts, since cardinality, schema digests, and cached results all
// persist:
//
//	casmgen -n 1000000 -store /var/casm/store -o events.casm
//	casmserve -store /var/casm/store -data events=events.casm
//
// SIGTERM (or SIGINT) triggers a graceful drain: admission stops — new
// queries get 503 — running queries finish, and the process exits 0 with
// no goroutines or spill files left behind.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/casm-project/casm/internal/blockstore"
	"github.com/casm-project/casm/internal/core"
	"github.com/casm-project/casm/internal/recio"
	"github.com/casm-project/casm/internal/serve"
	"github.com/casm-project/casm/internal/transport"
	"github.com/casm-project/casm/internal/workload"
)

// datasetFlags collects repeatable -data name=path mappings.
type datasetFlags []string

func (d *datasetFlags) String() string     { return strings.Join(*d, ",") }
func (d *datasetFlags) Set(v string) error { *d = append(*d, v); return nil }

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "casmserve: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var datasets datasetFlags
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		blockSz  = flag.Int("block", 4<<20, "block size used by casmgen")
		reducers = flag.Int("reducers", 8, "number of reducers per query (m)")
		workers  = flag.Int("workers", 0, "shared executor pool size (0 = GOMAXPROCS)")
		tenantIF = flag.Int("tenant-inflight", 0, "per-tenant in-flight query limit (0 = default)")
		queue    = flag.Int("queue", 0, "bounded admission queue size (0 = default)")
		cacheSz  = flag.Int("cache", 0, "decision cache capacity (0 = default)")
		tmpDir   = flag.String("tmp", "", "directory for reducer spill files (default OS temp)")
		tcp      = flag.Bool("tcp", false, "shuffle over loopback TCP instead of channels")
		inMem    = flag.Bool("mem", false, "load datasets fully into memory instead of streaming off disk")
		storeDir = flag.String("store", "", "serve from the persistent block store at this directory; -data names files inside it")
		ingest   = flag.Bool("ingest", false, "with -store: -data name=path ingests the flat file at path into the store as name")
		rcBytes  = flag.Int64("resultcache", 0, "materialized result cache in-memory bound in bytes (0 = default; needs -store)")
		skew     = flag.String("skew", "none", "skew handling: none | sampling")
		drainT   = flag.Duration("drain-timeout", 30*time.Second, "graceful drain deadline on SIGTERM")
	)
	flag.Var(&datasets, "data", "dataset as name=path (repeatable); bare path registers as \"default\"")
	flag.Parse()
	if len(datasets) == 0 {
		return fmt.Errorf("at least one -data name=path is required")
	}

	ecfg := core.Config{NumReducers: *reducers, TempDir: *tmpDir}
	switch *skew {
	case "none":
	case "sampling":
		ecfg.SkewMode = core.SkewSampling
	default:
		return fmt.Errorf("unknown skew mode %q", *skew)
	}
	if *tcp {
		ecfg.Transport = transport.TCPFactory(0)
	}

	// The store is opened before registration so a process killed during
	// -ingest leaves at worst a torn segment tail, which the next open
	// detects by checksum and truncates to the last committed block.
	var st *blockstore.Store
	if *storeDir != "" {
		var err error
		st, err = blockstore.Open(blockstore.Config{
			Dir: *storeDir, BlockSize: *blockSz, Replication: 3, NumNodes: 10, Seed: 1,
		})
		if err != nil {
			return err
		}
		defer st.Close()
	} else if *ingest {
		return fmt.Errorf("-ingest writes into the block store; add -store")
	}
	svc, err := core.NewService(core.ServiceConfig{
		Engine:            ecfg,
		Workers:           *workers,
		DecisionCacheSize: *cacheSz,
		PerTenantInFlight: *tenantIF,
		AdmissionQueue:    *queue,
		Store:             st,
		ResultCacheBytes:  *rcBytes,
	})
	if err != nil {
		return err
	}

	// All datasets serve the paper's workload schema (casmgen's output).
	su := workload.NewSuite()
	for _, spec := range datasets {
		name, path := "default", spec
		if i := strings.IndexByte(spec, '='); i >= 0 {
			name, path = spec[:i], spec[i+1:]
		}
		switch {
		case st != nil && *ingest:
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			records, err := recio.DecodeAll(data, *blockSz, su.Schema.NumAttrs())
			if err != nil {
				return fmt.Errorf("decoding %s: %w", path, err)
			}
			// Replace, not append: a re-run after a crashed ingest must
			// converge to exactly the flat file's contents.
			if _, err := st.FileInfo(name); err == nil {
				if err := st.Delete(name); err != nil {
					return err
				}
			}
			if err := workload.WriteStore(st, name, su.Schema, records); err != nil {
				return fmt.Errorf("ingesting %s: %w", path, err)
			}
			if err := svc.RegisterStore(name, su.Schema, st, name); err != nil {
				return err
			}
			fmt.Printf("ingested %s: %d records from %s into store %s\n", name, len(records), path, *storeDir)
			continue
		case st != nil:
			if err := svc.RegisterStore(name, su.Schema, st, path); err != nil {
				return err
			}
			ds, _ := svc.Dataset(name)
			fmt.Printf("registered %s: %d records from store file %s (footer cardinality, no scan)\n",
				name, ds.NumRecords, path)
			continue
		}
		if *inMem {
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			records, err := recio.DecodeAll(data, *blockSz, su.Schema.NumAttrs())
			if err != nil {
				return fmt.Errorf("decoding %s: %w", path, err)
			}
			if err := svc.Register(name, core.MemoryDataset(su.Schema, records, 4**reducers)); err != nil {
				return err
			}
			fmt.Printf("registered %s: %d records in memory from %s\n", name, len(records), path)
		} else {
			if err := svc.RegisterFile(name, su.Schema, path, *blockSz); err != nil {
				return err
			}
			ds, _ := svc.Dataset(name)
			fmt.Printf("registered %s: %d records streaming from %s\n", name, ds.NumRecords, path)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: serve.New(svc)}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	fmt.Printf("casmserve listening on %s (workers=%d reducers=%d)\n",
		ln.Addr(), svc.Executor().Workers(), *reducers)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, os.Interrupt)
	select {
	case sig := <-sigCh:
		fmt.Printf("casmserve: %v — draining (deadline %s)\n", sig, *drainT)
	case err := <-serveErr:
		return err
	}

	// Graceful drain: stop admission and wait for in-flight queries, while
	// the HTTP server stops accepting and waits for in-flight responses.
	// Shutdown after Drain — by then every handler's evaluation has
	// finished or been rejected, so responses flush quickly.
	ctx, cancel := context.WithTimeout(context.Background(), *drainT)
	defer cancel()
	if err := svc.Drain(ctx); err != nil {
		httpSrv.Close()
		return fmt.Errorf("drain: %w", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("shutdown: %w", err)
	}
	stats := svc.Stats()
	fmt.Printf("casmserve: drained cleanly (%d queries served, %d plan-cache hits)\n",
		stats.Evaluations, stats.PlanCacheHits)
	if rc := stats.ResultCache; rc != nil {
		fmt.Printf("casmserve: result cache %d hits, %d misses, %d bytes materialized, %d evictions\n",
			rc.Hits, rc.Misses, rc.BytesMaterialized, rc.Evictions)
	}
	return nil
}
