// Command casmexplain prints an evaluation query's aggregation workflow,
// its canonical fingerprint (the plan/decision-cache key), its minimal
// feasible distribution key (via OpConvert/OpCombine), and the
// optimizer's candidate plans with their modeled heaviest-reducer
// workloads:
//
//	casmexplain -query q6 -records 1000000000 -reducers 100
//	casmexplain -batch q1,q2,q6
//
// With -batch, it instead explains how EvaluateBatch would share work
// across the named queries: which queries share one input scan, how they
// partition into block-geometry groups (equal distribution key and
// clustering factor — those also share the shuffle and the reducer-side
// group builds), and each group's plan and modeled cost.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	casm "github.com/casm-project/casm"
	"github.com/casm-project/casm/internal/optimizer"
	"github.com/casm-project/casm/internal/workload"
)

func main() {
	var (
		queryStr = flag.String("query", "q1", "query: q1..q6 | ds0..ds2")
		batchStr = flag.String("batch", "", "comma-separated queries explained as one shared-scan batch (overrides -query)")
		records  = flag.Int64("records", 1_000_000_000, "dataset cardinality (the optimizer's N)")
		reducers = flag.Int("reducers", 100, "number of reducers (m)")
	)
	flag.Parse()

	su := workload.NewSuite()
	if *batchStr != "" {
		if err := explainBatch(su, *batchStr, *records, *reducers); err != nil {
			fmt.Fprintf(os.Stderr, "casmexplain: %v\n", err)
			os.Exit(1)
		}
		return
	}
	q, err := pick(su, *queryStr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "casmexplain: %v\n", err)
		os.Exit(1)
	}
	fp, err := casm.Fingerprint(q)
	if err != nil {
		fmt.Fprintf(os.Stderr, "casmexplain: %v\n", err)
		os.Exit(1)
	}
	out, err := casm.Explain(q, *records, *reducers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "casmexplain: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("fingerprint: %s\n", fp)
	fmt.Print(out)
}

func pick(su *workload.Suite, name string) (*casm.Query, error) {
	n := strings.ToLower(name)
	switch {
	case strings.HasPrefix(n, "q") && len(n) == 2:
		return su.Query(int(n[1] - '0'))
	case strings.HasPrefix(n, "ds") && len(n) == 3:
		return su.DS(int(n[2] - '0'))
	default:
		return nil, fmt.Errorf("unknown query %q", name)
	}
}

// explainBatch plans every named query and reports the sharing structure
// EvaluateBatch would use: one shared scan over all of them, one shuffle
// per block-geometry group.
func explainBatch(su *workload.Suite, batch string, records int64, reducers int) error {
	names := strings.Split(batch, ",")
	type planned struct {
		name string
		fp   string
		plan casm.Plan
	}
	ps := make([]planned, 0, len(names))
	for _, n := range names {
		n = strings.TrimSpace(n)
		q, err := pick(su, n)
		if err != nil {
			return err
		}
		fp, err := casm.Fingerprint(q)
		if err != nil {
			return err
		}
		plan, err := optimizer.Optimize(q, optimizer.Config{
			NumReducers:  reducers,
			TotalRecords: records,
		})
		if err != nil {
			return fmt.Errorf("%s: %w", n, err)
		}
		ps = append(ps, planned{name: strings.ToLower(n), fp: fp, plan: plan})
	}

	fmt.Printf("batch of %d queries over N=%d records, m=%d reducers\n", len(ps), records, reducers)
	for _, p := range ps {
		fmt.Printf("  %-4s fingerprint=%s key=%s cf=%d blocks=%d\n",
			p.name, p.fp[:12], p.plan.Key.Format(su.Schema), p.plan.ClusteringFactor, p.plan.Blocks)
	}

	// Group by block geometry, preserving input order, exactly as
	// EvaluateBatch's shared job does.
	type group struct {
		plan    casm.Plan
		members []string
	}
	var groups []*group
	for _, p := range ps {
		found := false
		for _, g := range groups {
			if g.plan.ClusteringFactor == p.plan.ClusteringFactor && g.plan.Key.Equal(p.plan.Key) {
				g.members = append(g.members, p.name)
				found = true
				break
			}
		}
		if !found {
			groups = append(groups, &group{plan: p.plan, members: []string{p.name}})
		}
	}

	fmt.Printf("\nshared scan: all %d queries read the input once (%d re-reads avoided)\n",
		len(ps), len(ps)-1)
	fmt.Printf("geometry groups (one shuffle each): %d\n", len(groups))
	for gi, g := range groups {
		fmt.Printf("  group %d: {%s}\n", gi, strings.Join(g.members, ","))
		fmt.Printf("    key=%s cf=%d blocks=%d modeled heaviest reducer=%.0f records\n",
			g.plan.Key.Format(su.Schema), g.plan.ClusteringFactor, g.plan.Blocks,
			g.plan.PredictedWorkload)
	}
	if len(groups) == 1 {
		fmt.Println("\nfully shared: one scan, one shuffle, per-query evaluation only")
	} else {
		fmt.Println("\nscan shared across all groups; each group shuffles separately")
	}
	return nil
}
