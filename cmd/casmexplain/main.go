// Command casmexplain prints an evaluation query's aggregation workflow,
// its minimal feasible distribution key (via OpConvert/OpCombine), and
// the optimizer's candidate plans with their modeled heaviest-reducer
// workloads:
//
//	casmexplain -query q6 -records 1000000000 -reducers 100
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	casm "github.com/casm-project/casm"
	"github.com/casm-project/casm/internal/workload"
)

func main() {
	var (
		queryStr = flag.String("query", "q1", "query: q1..q6 | ds0..ds2")
		records  = flag.Int64("records", 1_000_000_000, "dataset cardinality (the optimizer's N)")
		reducers = flag.Int("reducers", 100, "number of reducers (m)")
	)
	flag.Parse()

	su := workload.NewSuite()
	var q *casm.Query
	var err error
	n := strings.ToLower(*queryStr)
	switch {
	case strings.HasPrefix(n, "q") && len(n) == 2:
		q, err = su.Query(int(n[1] - '0'))
	case strings.HasPrefix(n, "ds") && len(n) == 3:
		q, err = su.DS(int(n[2] - '0'))
	default:
		err = fmt.Errorf("unknown query %q", *queryStr)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "casmexplain: %v\n", err)
		os.Exit(1)
	}
	out, err := casm.Explain(q, *records, *reducers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "casmexplain: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(out)
}
