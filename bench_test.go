// Benchmarks regenerating the paper's evaluation (ICDE'08, Figure 4,
// panels (a)–(f)) plus the introduction's component-at-a-time comparison.
// Each benchmark executes real engine runs at a laptop-scale dataset size
// and reports simulated response times on the paper's 100-machine cluster
// as custom metrics; run with -v to see the full per-panel tables.
//
//	go test -bench=. -benchmem
//	go test -bench=Fig4c -v        # one panel with its table
//
// cmd/casmbench produces the same tables at larger scales.
package casm_test

import (
	"context"
	"testing"

	casm "github.com/casm-project/casm"
	"github.com/casm-project/casm/internal/core"
	"github.com/casm-project/casm/internal/distkey"
	"github.com/casm-project/casm/internal/figures"
	"github.com/casm-project/casm/internal/workload"
)

// benchConfig keeps benchmark iterations fast; casmbench defaults to 10x
// this scale.
func benchConfig(b *testing.B) figures.Config {
	return figures.Config{Scale: 0.1, TempDir: b.TempDir(), Seed: 1}
}

func BenchmarkFig4a_Scaleup(b *testing.B) {
	cfg := benchConfig(b)
	var p *figures.PanelA
	var err error
	for i := 0; i < b.N; i++ {
		p, err = figures.Fig4a(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + p.Table().String())
	last := len(p.Sizes) - 1
	// Shape: response time grows close to linearly with data size, and
	// Q6 (overlapping key) is consistently the slowest.
	for j, q := range p.Queries {
		growth := p.Seconds[last][j] / p.Seconds[0][j]
		ideal := float64(p.Sizes[last]) / float64(p.Sizes[0])
		if growth > 2*ideal {
			b.Errorf("Q%d grows superlinearly: %.1fx for %.1fx data", q, growth, ideal)
		}
	}
	for j, q := range p.Queries {
		if q != 6 && p.Seconds[last][j] > p.Seconds[last][len(p.Queries)-1] {
			b.Errorf("Q%d (%.1fs) slower than Q6 (%.1fs)", q, p.Seconds[last][j], p.Seconds[last][len(p.Queries)-1])
		}
	}
	b.ReportMetric(p.Seconds[last][0], "simsec_Q1_max")
	b.ReportMetric(p.Seconds[last][len(p.Queries)-1], "simsec_Q6_max")
}

func BenchmarkFig4b_Speedup(b *testing.B) {
	cfg := benchConfig(b)
	var p *figures.PanelB
	var err error
	for i := 0; i < b.N; i++ {
		p, err = figures.Fig4b(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + p.Table().String())
	last := len(p.Reducers) - 1
	// Shape: Q1/Q2 rates grow with reducers; Q6 grows much less.
	for j, q := range p.Queries {
		if q == 6 {
			continue
		}
		if p.Rate[last][j] < 2.5*p.Rate[0][j] {
			b.Errorf("Q%d rate not scaling: %.2f -> %.2f M rec/s", q, p.Rate[0][j], p.Rate[last][j])
		}
	}
	q6 := len(p.Queries) - 1
	if p.Rate[last][q6] > 0.5*p.Rate[last][0] {
		b.Errorf("Q6 rate %.2f should trail Q1's %.2f", p.Rate[last][q6], p.Rate[last][0])
	}
	b.ReportMetric(p.Rate[last][0], "Mrecs_per_simsec_Q1")
	b.ReportMetric(p.Rate[last][q6], "Mrecs_per_simsec_Q6")
}

func BenchmarkFig4c_ClusteringFactor(b *testing.B) {
	cfg := benchConfig(b)
	var p *figures.PanelC
	var err error
	for i := 0; i < b.N; i++ {
		p, err = figures.Fig4c(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + p.Table().String())
	// Shape: U-curve — cf=1 and the largest cf are both substantially
	// slower than the best cf; the model prediction tracks the curve.
	best := 0
	for i := range p.Measured {
		if p.Measured[i] < p.Measured[best] {
			best = i
		}
	}
	if best == 0 || best == len(p.Factors)-1 {
		b.Errorf("optimal cf at sweep boundary (cf=%d)", p.Factors[best])
	}
	if p.Measured[0] < 1.5*p.Measured[best] {
		b.Errorf("cf=1 (%.1fs) should be well above optimum (%.1fs)", p.Measured[0], p.Measured[best])
	}
	if p.Measured[len(p.Factors)-1] < 1.2*p.Measured[best] {
		b.Errorf("huge cf (%.1fs) should be above optimum (%.1fs)",
			p.Measured[len(p.Factors)-1], p.Measured[best])
	}
	b.ReportMetric(p.Measured[0]/p.Measured[best], "cf1_over_opt")
	b.ReportMetric(float64(p.Factors[best]), "best_cf")
	b.ReportMetric(float64(p.OptimalCF), "model_cf")
}

func BenchmarkFig4d_Breakdown(b *testing.B) {
	cfg := benchConfig(b)
	var p *figures.PanelD
	var err error
	for i := 0; i < b.N; i++ {
		p, err = figures.Fig4d(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + p.Table().String())
	// Shape: Map-Only ≪ MR ≤ Sort ≤ Sort+Eval; the combined-key run
	// eliminates most of the MR→Sort (in-group sort) increment.
	for i := 1; i < len(p.Seconds); i++ {
		if p.Seconds[i] < p.Seconds[i-1] {
			b.Errorf("stage %s (%.1fs) cheaper than %s (%.1fs)",
				p.Stages[i], p.Seconds[i], p.Stages[i-1], p.Seconds[i-1])
		}
	}
	sortGap := p.Seconds[2] - p.Seconds[1]
	if p.Combined > p.Seconds[3]-0.5*sortGap {
		b.Errorf("combined-key (%.1fs) did not remove most of the %.1fs sort gap (full %.1fs)",
			p.Combined, sortGap, p.Seconds[3])
	}
	b.ReportMetric(sortGap, "simsec_ingroup_sort")
	b.ReportMetric(p.Seconds[3]-p.Combined, "simsec_saved_by_combined_key")
}

func BenchmarkFig4e_EarlyAggregation(b *testing.B) {
	cfg := benchConfig(b)
	var p *figures.PanelE
	var err error
	for i := 0; i < b.N; i++ {
		p, err = figures.Fig4e(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + p.Table().String())
	// Shape: early aggregation wins big at coarse grain (DS0), less at
	// DS1, and loses at fine grain (DS2).
	if p.With[0] > p.Without[0]/2 {
		b.Errorf("DS0: early agg %.1fs vs %.1fs — expected a large win", p.With[0], p.Without[0])
	}
	// DS1 sits near the crossover ("the advantage decreases when the
	// basic measure is defined at a finer granularity"); allow parity.
	if p.With[1] > 1.15*p.Without[1] {
		b.Errorf("DS1: early agg %.1fs vs %.1fs — expected near parity or a win", p.With[1], p.Without[1])
	}
	if p.With[2] < p.Without[2] {
		b.Errorf("DS2: early agg %.1fs vs %.1fs — expected a loss at fine grain", p.With[2], p.Without[2])
	}
	b.ReportMetric(p.Without[0]/p.With[0], "DS0_speedup")
	b.ReportMetric(p.Without[2]/p.With[2], "DS2_speedup")
}

func BenchmarkFig4f_Skew(b *testing.B) {
	cfg := benchConfig(b)
	var p *figures.PanelF
	var err error
	for i := 0; i < b.N; i++ {
		p, err = figures.Fig4f(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + p.Table().String())
	normal, fourBlocks, sampling := 0, 2, 3
	// Shape: skew hurts the normal plan; sampling is at least as good as
	// every other plan on both distributions; 4Blocks pays on uniform.
	if p.Seconds[normal][1] < 1.1*p.Seconds[normal][0] {
		b.Errorf("normal plan unaffected by skew: %.1fs vs %.1fs", p.Seconds[normal][1], p.Seconds[normal][0])
	}
	for i, plan := range p.Plans {
		if p.Seconds[sampling][0] > p.Seconds[i][0]*1.05 || p.Seconds[sampling][1] > p.Seconds[i][1]*1.05 {
			b.Errorf("sampling (%.1f/%.1f) worse than %s (%.1f/%.1f)",
				p.Seconds[sampling][0], p.Seconds[sampling][1], plan, p.Seconds[i][0], p.Seconds[i][1])
		}
	}
	if p.Seconds[fourBlocks][0] < p.Seconds[normal][0] {
		b.Errorf("4Blocks should pay for overlap on uniform data")
	}
	b.ReportMetric(p.Seconds[normal][1]/p.Seconds[normal][0], "skew_penalty_normal")
	b.ReportMetric(p.Seconds[normal][1]/p.Seconds[sampling][1], "sampling_gain_on_skew")
	b.ReportMetric(p.SampleOverhead, "sampling_overhead_simsec")
}

// BenchmarkBaseline_ComponentAtATime reproduces the introduction's claim:
// evaluating all components with one redistribution beats the
// component-at-a-time plan (one job per measure plus joins).
func BenchmarkBaseline_ComponentAtATime(b *testing.B) {
	su := workload.NewSuite()
	records := su.Generate(30_000, workload.Uniform, 1)
	ds := core.MemoryDataset(su.Schema, records, 16)
	w := su.Q6()
	var speedup float64
	for i := 0; i < b.N; i++ {
		eng, err := core.NewEngine(core.Config{NumReducers: 16, TempDir: b.TempDir()})
		if err != nil {
			b.Fatal(err)
		}
		fast, err := eng.Run(w, ds)
		if err != nil {
			b.Fatal(err)
		}
		naive, err := eng.RunComponentAtATime(w, ds)
		if err != nil {
			b.Fatal(err)
		}
		speedup = naive.Estimate.Total() / fast.Estimate.Total()
		if speedup < 1 {
			b.Errorf("single-redistribution plan (%.1fs) not faster than component-at-a-time (%.1fs)",
				fast.Estimate.Total(), naive.Estimate.Total())
		}
	}
	b.ReportMetric(speedup, "speedup_vs_naive")
}

// BenchmarkAblation_OverlapVsRolledUp isolates the paper's key design
// choice: with a sliding-window query, compare the overlapping
// distribution key (optimizer's pick) against the feasible fallback that
// rolls the windowed attribute up to ALL. Overlap admits far more blocks,
// so it wins whenever the rolled-up key leaves reducers idle.
func BenchmarkAblation_OverlapVsRolledUp(b *testing.B) {
	su := workload.NewSuite()
	records := su.Generate(60_000, workload.Uniform, 1)
	ds := core.MemoryDataset(su.Schema, records, 32)
	// Q5's window sits at the hour level: a1:high has only 4 values, so
	// the rolled-up fallback key has 4 blocks, while the overlapping key
	// offers hundreds of blocks at ~1.3x duplication. (Q6's day-level
	// window is the opposite regime — few siblings, heavy duplication —
	// where rolling up can win; the optimizer arbitrates per query.)
	w := su.Q5()
	minimal, err := casm.DeriveKey(w)
	if err != nil {
		b.Fatal(err)
	}
	rolled := minimal
	for _, x := range minimal.AnnotatedAttrs() {
		rolled = distkey.RollUpAttr(su.Schema, rolled, x)
	}
	var overlapSec, rolledSec float64
	for i := 0; i < b.N; i++ {
		run := func(key *distkey.Key) *core.Result {
			eng, err := core.NewEngine(core.Config{NumReducers: 16, ForceKey: key, TempDir: b.TempDir()})
			if err != nil {
				b.Fatal(err)
			}
			res, err := eng.Run(w, ds)
			if err != nil {
				b.Fatal(err)
			}
			return res
		}
		over := run(&minimal)
		flat := run(&rolled)
		if over.TotalRecords() != flat.TotalRecords() {
			b.Fatalf("answers differ: %d vs %d records", over.TotalRecords(), flat.TotalRecords())
		}
		const represent = 2500
		overlapSec, rolledSec = figures.SimSeconds(over, represent), figures.SimSeconds(flat, represent)
		if overlapSec >= rolledSec {
			b.Errorf("overlap (%.1fs) did not beat the rolled-up key (%.1fs, %d blocks)",
				overlapSec, rolledSec, flat.Plan.Blocks)
		}
	}
	b.ReportMetric(rolledSec/overlapSec, "overlap_speedup")
}

// BenchmarkAblation_TransportChannelVsTCP measures the *real* wall-clock
// cost of the two shuffle transports on the same job.
func BenchmarkAblation_TransportChannelVsTCP(b *testing.B) {
	su := workload.NewSuite()
	records := su.Generate(40_000, workload.Uniform, 1)
	ds := core.MemoryDataset(su.Schema, records, 8)
	w := su.Q2()
	run := func(factory casm.TransportFactory) float64 {
		eng, err := core.NewEngine(core.Config{NumReducers: 4, Transport: factory, TempDir: b.TempDir()})
		if err != nil {
			b.Fatal(err)
		}
		res, err := eng.Run(w, ds)
		if err != nil {
			b.Fatal(err)
		}
		return res.Stats.Wall.Seconds()
	}
	var ch, tcp float64
	for i := 0; i < b.N; i++ {
		ch = run(nil) // default channel transport
		tcp = run(casm.TCPTransport(1024))
	}
	b.ReportMetric(ch*1000, "channel_ms_real")
	b.ReportMetric(tcp*1000, "tcp_ms_real")
}

func BenchmarkSharedScan(b *testing.B) {
	cfg := benchConfig(b)
	var p *figures.SharedScan
	var err error
	for i := 0; i < b.N; i++ {
		p, err = figures.SharedScanPanel(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + p.Table().String())
	// The PR's headline claims. (1) Every workload query shares the
	// batch's single scan — one job, one geometry group — so the batch
	// reads 1/6 of the sequential arm's input bytes, and its own counter
	// accounts for the difference exactly.
	if p.SharedQueries != len(p.Queries) || p.Jobs != 1 || p.Groups != 1 {
		b.Errorf("shared %d/%d queries in %d jobs / %d geometry groups, want all %d in 1/1",
			p.SharedQueries, len(p.Queries), p.Jobs, p.Groups, len(p.Queries))
	}
	if p.BatchBytes*int64(len(p.Queries)) != p.SeqBytes {
		b.Errorf("batch read %d bytes for %d queries, sequential read %d — not proportional",
			p.BatchBytes, len(p.Queries), p.SeqBytes)
	}
	if p.BytesSaved != p.SeqBytes-p.BatchBytes {
		b.Errorf("SharedScanBytesSaved = %d, want %d", p.BytesSaved, p.SeqBytes-p.BatchBytes)
	}
	// (2) Batching the suite beats six sequential jobs by >=30% real wall
	// clock.
	if imp := p.WallImprovement(); imp < 0.30 {
		b.Errorf("batched wall improvement = %.0f%%, want >= 30%%", 100*imp)
	}
	// (3) The decision cache amortizes repeat planning to ~0: warm plans
	// must be several times cheaper than cold ones.
	if p.PlanWarm > p.PlanCold/3 {
		b.Errorf("warm plan %.3gms not < 1/3 of cold %.3gms", 1e3*p.PlanWarm, 1e3*p.PlanCold)
	}
	b.ReportMetric(p.SeqWall, "wall_seq_s")
	b.ReportMetric(p.BatchWall, "wall_batch_s")
	b.ReportMetric(100*p.WallImprovement(), "wall_improvement_pct")
	b.ReportMetric(100*p.SimImprovement(), "sim_improvement_pct")
	b.ReportMetric(p.PlanSpeedup(), "plan_cache_speedup")
}

func BenchmarkServeLoad(b *testing.B) {
	cfg := benchConfig(b)
	var p *figures.ServeLoad
	var err error
	for i := 0; i < b.N; i++ {
		p, err = figures.ServeLoadPanel(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + p.Table().String())
	// The PR's headline claims. (1) With one warmup per distinct query,
	// every measured request is served from the resident decision cache.
	if float64(p.PlanCacheHits) < p.Total || p.PlanCacheMisses > int64(len(p.Queries)) {
		b.Errorf("plan cache: %d hits / %d misses over %.0f queries, want all hits after %d warmups",
			p.PlanCacheHits, p.PlanCacheMisses, p.Total, len(p.Queries))
	}
	// (2) Admission keeps every tenant at or under its in-flight limit.
	if p.TenantPeak > 4 {
		b.Errorf("tenant peak in-flight %d exceeds the default limit 4", p.TenantPeak)
	}
	// (3) Drain refuses new work with 503 (checked inside the panel) and
	// the load completed: all clients, all queries.
	if !p.DrainRejects {
		b.Error("post-drain query was not rejected with 503")
	}
	if int(p.Total) != p.Clients*p.PerClient {
		b.Errorf("completed %d of %d queries", int(p.Total), p.Clients*p.PerClient)
	}
	b.ReportMetric(p.QPS, "qps")
	b.ReportMetric(p.P50MS, "p50_ms")
	b.ReportMetric(p.P99MS, "p99_ms")
}

func BenchmarkResultReuse(b *testing.B) {
	cfg := benchConfig(b)
	var p *figures.ResultReuse
	var err error
	for i := 0; i < b.N; i++ {
		p, err = figures.ResultReusePanel(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + p.Table().String())
	// The PR's headline claim: a warm repeat of the same query over the
	// store-backed dataset is manifest-served — identical answer, zero
	// input bytes, and at least 5x faster in simulated seconds.
	if !p.Reused {
		b.Error("warm run was not manifest-served")
	}
	if !p.Identical {
		b.Error("warm result not identical to cold result")
	}
	if p.WarmInputBytes != 0 {
		b.Errorf("warm run scanned %d input bytes, want 0", p.WarmInputBytes)
	}
	if p.Speedup < 5 {
		b.Errorf("warm speedup %.1fx, want >= 5x", p.Speedup)
	}
	b.ReportMetric(p.ColdSeconds, "simsec_cold")
	b.ReportMetric(p.WarmSeconds, "simsec_warm")
	b.ReportMetric(p.Speedup, "speedup_x")
	b.ReportMetric(float64(p.Cache.Hits), "cache_hits")
}

func BenchmarkMorselSkew(b *testing.B) {
	cfg := benchConfig(b)
	var p *figures.MorselSkew
	var err error
	for i := 0; i < b.N; i++ {
		p, err = figures.MorselSkewPanel(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + p.Table().String())
	// The PR's headline claim: on the zipf-hot clustered workload, morsel
	// mode beats split-granular scheduling by >=25% simulated map makespan
	// at 8 workers, and never loses at the other worker counts.
	if imp := p.Improvement(2); imp < 0.25 {
		b.Errorf("morsel improvement at 8 workers = %.0f%%, want >= 25%%", 100*imp)
	}
	for i, w := range p.Workers {
		if p.MorselSeconds[i] > p.FixedSeconds[i] {
			b.Errorf("morsel loses at %d workers: %.1fs vs %.1fs", w, p.MorselSeconds[i], p.FixedSeconds[i])
		}
	}
	b.ReportMetric(p.FixedSeconds[2], "simsec_fixed_w8")
	b.ReportMetric(p.MorselSeconds[2], "simsec_morsel_w8")
	b.ReportMetric(100*p.Improvement(2), "improvement_pct_w8")
	b.ReportMetric(float64(p.Steals[2]), "steals_w8")
}
