package casm

import (
	"fmt"

	"github.com/casm-project/casm/internal/workflow"
)

// Builder assembles a Query fluently. The first error sticks and is
// returned by Done, so call chains need no intermediate checks.
type Builder struct {
	q   *Query
	err error
}

// Build starts a query over the schema.
func Build(schema *Schema) *Builder {
	return &Builder{q: NewQuery(schema)}
}

// WindowSpec names a sliding-window annotation on one attribute.
type WindowSpec struct {
	Attr string
	Low  int64
	High int64
}

// Window is shorthand for a WindowSpec: the window of an output region at
// coordinate c covers source regions c+low … c+high of the attribute.
func Window(attr string, low, high int64) WindowSpec {
	return WindowSpec{Attr: attr, Low: low, High: high}
}

func (b *Builder) grain(specs []GrainSpec) Grain {
	if b.err != nil {
		return nil
	}
	g, err := b.q.Schema().MakeGrain(specs...)
	if err != nil {
		b.err = err
		return nil
	}
	return g
}

// Basic adds a basic measure aggregating input (an attribute name, or ""
// for COUNT) at the grain given by the specs (omitted attributes are ALL).
func (b *Builder) Basic(name string, agg AggSpec, input string, at ...GrainSpec) *Builder {
	g := b.grain(at)
	if b.err == nil {
		b.err = b.q.AddBasic(name, g, agg, input)
	}
	return b
}

// Self adds a measure combining same-region (or parent-region) source
// values with expr.
func (b *Builder) Self(name string, expr Expr, sources []string, at ...GrainSpec) *Builder {
	g := b.grain(at)
	if b.err == nil {
		b.err = b.q.AddSelf(name, g, expr, sources...)
	}
	return b
}

// Rollup adds a child/parent measure aggregating source over each
// region's children.
func (b *Builder) Rollup(name string, agg AggSpec, source string, at ...GrainSpec) *Builder {
	g := b.grain(at)
	if b.err == nil {
		b.err = b.q.AddRollup(name, g, agg, source)
	}
	return b
}

// Inherit adds a parent/child measure copying the parent region's source
// value down.
func (b *Builder) Inherit(name string, source string, at ...GrainSpec) *Builder {
	g := b.grain(at)
	if b.err == nil {
		b.err = b.q.AddInherit(name, g, source)
	}
	return b
}

// Sliding adds a sibling measure aggregating source over the window of
// neighbouring regions.
func (b *Builder) Sliding(name string, agg AggSpec, source string, win WindowSpec, at ...GrainSpec) *Builder {
	g := b.grain(at)
	if b.err != nil {
		return b
	}
	ai, ok := b.q.Schema().AttrIndex(win.Attr)
	if !ok {
		b.err = fmt.Errorf("casm: window on unknown attribute %q", win.Attr)
		return b
	}
	b.err = b.q.AddSliding(name, g, agg, source,
		workflow.RangeAnn{Attr: ai, Low: win.Low, High: win.High})
	return b
}

// Done returns the built query or the first error encountered.
func (b *Builder) Done() (*Query, error) {
	if b.err != nil {
		return nil, b.err
	}
	if err := b.q.Validate(); err != nil {
		return nil, err
	}
	return b.q, nil
}

// MustDone is Done that panics on error, for statically known queries.
func (b *Builder) MustDone() *Query {
	q, err := b.Done()
	if err != nil {
		panic(err)
	}
	return q
}
