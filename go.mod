module github.com/casm-project/casm

go 1.22
