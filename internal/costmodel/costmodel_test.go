package costmodel

import (
	"math"
	"testing"
)

func TestScheduleLPT(t *testing.T) {
	cases := []struct {
		d     []float64
		slots int
		want  float64
	}{
		{nil, 4, 0},
		{[]float64{5}, 4, 5},
		{[]float64{3, 3, 3, 3}, 2, 6},
		{[]float64{5, 4, 3, 2, 1}, 2, 8}, // LPT: {5,3}, {4,2,1} -> 8? {5,2,1}=8, {4,3}=7 -> 8
		{[]float64{10, 1, 1, 1}, 4, 10},  // bounded below by the longest task
		{[]float64{2, 2, 2}, 1, 6},       // single slot: sum
	}
	for i, c := range cases {
		if got := ScheduleLPT(c.d, c.slots); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("case %d: got %v, want %v", i, got, c.want)
		}
	}
}

func TestScheduleLPTBounds(t *testing.T) {
	d := []float64{7, 3, 9, 2, 8, 4, 6, 1, 5}
	var sum, max float64
	for _, x := range d {
		sum += x
		if x > max {
			max = x
		}
	}
	for slots := 1; slots <= 12; slots++ {
		got := ScheduleLPT(d, slots)
		if got < max-1e-12 {
			t.Errorf("slots %d: makespan %v below longest task %v", slots, got, max)
		}
		if got < sum/float64(slots)-1e-12 {
			t.Errorf("slots %d: makespan %v below perfect balance %v", slots, got, sum/float64(slots))
		}
		if got > sum+1e-12 {
			t.Errorf("slots %d: makespan %v above serial time", slots, got)
		}
	}
	// More slots never hurt.
	prev := math.Inf(1)
	for slots := 1; slots <= 12; slots++ {
		got := ScheduleLPT(d, slots)
		if got > prev+1e-12 {
			t.Errorf("makespan increased with more slots at %d", slots)
		}
		prev = got
	}
}

func TestMapTimeComponents(t *testing.T) {
	m := DefaultMachine()
	base := m.MapTime(MapWork{})
	if math.Abs(base-m.TaskOverheadSec) > 1e-12 {
		t.Errorf("empty map task = %v, want overhead %v", base, m.TaskOverheadSec)
	}
	// 60 MB read at 60 MB/s adds ~1s.
	withRead := m.MapTime(MapWork{BytesRead: 60 << 20})
	if math.Abs(withRead-base-1.0) > 1e-9 {
		t.Errorf("read term = %v, want 1.0", withRead-base)
	}
	// 40 MB shuffled at 40 MB/s adds ~1s.
	withNet := m.MapTime(MapWork{BytesOut: 40 << 20})
	if math.Abs(withNet-base-1.0) > 1e-9 {
		t.Errorf("net term = %v, want 1.0", withNet-base)
	}
	// Records and combining add CPU time.
	if m.MapTime(MapWork{Records: 1e6}) <= base {
		t.Error("record CPU not charged")
	}
	if m.MapTime(MapWork{CombineItems: 1e6}) <= base {
		t.Error("combine CPU not charged")
	}
}

func TestReduceTimeComponents(t *testing.T) {
	m := DefaultMachine()
	base := m.ReduceTime(ReduceWork{})
	if m.ReduceTime(ReduceWork{SortItems: 1 << 20}) <= base {
		t.Error("sort not charged")
	}
	// Spills pay the disk twice.
	spill := m.ReduceTime(ReduceWork{SpillBytes: 60 << 20}) - base
	if math.Abs(spill-2.0) > 1e-9 {
		t.Errorf("spill term = %v, want 2.0", spill)
	}
	// The in-group second sort is a separate term (the Figure 4(d) gap).
	g := m.ReduceTime(ReduceWork{GroupSortItems: 1 << 20}) - base
	s := m.ReduceTime(ReduceWork{SortItems: 1 << 20}) - base
	if math.Abs(g-s) > 1e-9 {
		t.Errorf("group sort %v priced differently from framework sort %v", g, s)
	}
	if m.ReduceTime(ReduceWork{EvalRecords: 1e6}) <= base {
		t.Error("eval not charged")
	}
}

func TestSortSuperlinear(t *testing.T) {
	m := DefaultMachine()
	t1 := m.ReduceTime(ReduceWork{SortItems: 1 << 20}) - m.TaskOverheadSec
	t2 := m.ReduceTime(ReduceWork{SortItems: 2 << 20}) - m.TaskOverheadSec
	if t2 <= 2*t1 {
		t.Errorf("sort cost not superlinear: %v vs %v", t2, 2*t1)
	}
}

func TestEstimateJobShape(t *testing.T) {
	c := DefaultCluster()
	if c.Slots() != 200 {
		t.Fatalf("slots = %d", c.Slots())
	}
	// Balanced work splits across slots; the makespan should shrink as
	// reducers (tasks) grow until slots saturate.
	mk := func(tasks int, recordsEach int64) Estimate {
		mw := make([]MapWork, 50)
		for i := range mw {
			mw[i] = MapWork{BytesRead: 8 << 20, Records: recordsEach}
		}
		rw := make([]ReduceWork, tasks)
		for i := range rw {
			rw[i] = ReduceWork{PairsIn: recordsEach, SortItems: recordsEach, EvalRecords: recordsEach}
		}
		return EstimateJob(c, mw, rw)
	}
	few := mk(10, 1e6)
	many := mk(100, 1e5)
	if many.ReduceSeconds >= few.ReduceSeconds {
		t.Errorf("more, smaller reduce tasks should cut reduce makespan: %v vs %v",
			many.ReduceSeconds, few.ReduceSeconds)
	}
	if few.Total() <= 0 || few.MapSeconds <= 0 {
		t.Error("degenerate estimate")
	}
	if s := few.String(); s == "" {
		t.Error("empty String")
	}
}

func TestJobTime(t *testing.T) {
	c := Cluster{Machine: DefaultMachine(), Machines: 1}
	got := JobTime(c, []float64{1, 1}, []float64{2})
	if math.Abs(got-3) > 1e-12 {
		t.Errorf("JobTime = %v, want 3 (two 1s map tasks on 2 slots, then 2s reduce)", got)
	}
}

// TestMorselCountersZeroPriced pins the observability contract: the
// morsel-mode counters never change a task's simulated duration, so
// simulated seconds stay a pure function of the priced work fields.
func TestMorselCountersZeroPriced(t *testing.T) {
	m := DefaultMachine()
	w := MapWork{BytesRead: 8 << 20, Records: 100000, PairsOut: 5000, BytesOut: 1 << 20, CombineItems: 100000}
	loud := w
	loud.MorselsDispatched = 1 << 40
	loud.MorselSteals = 1 << 40
	loud.LocalAggHits = 1 << 40
	loud.LocalAggSpills = 1 << 40
	if got, want := m.MapTime(loud), m.MapTime(w); got != want {
		t.Errorf("morsel counters priced: MapTime %v != %v", got, want)
	}
}
