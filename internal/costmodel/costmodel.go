// Package costmodel converts the measured per-task counters of a job
// execution into simulated wall-clock seconds for the paper's cluster
// (100 machines, 2 GHz Xeon, 4 GB RAM, two 7200 rpm disks, two task slots
// per machine, 800 MB per task). The benchmarks run real executions at
// laptop scale and report these simulated times, so the *shape* of every
// figure — linear scale-up, speed-up curves, the clustering-factor U,
// the stage breakdown — is produced by the same mechanisms as in the
// paper while the absolute scale matches the paper's hardware.
//
// Response time follows the paper's Section IV structure: the per-task
// cost is (1) fetching data in the mappers, (2) transferring key/record
// pairs, (3) reducer-side sorting and scanning; the job's response time is
// the makespan of scheduling task durations onto the cluster's slots, so
// it is governed by the heaviest reducer workload exactly as Formulas (2)
// and (4) model.
package costmodel

import (
	"fmt"
	"math"
	"sort"
)

// Machine holds the calibrated performance parameters of one cluster node.
type Machine struct {
	// DiskMBps is the sequential disk bandwidth (MB/s) for reads and run
	// spills. 7200 rpm-era disks sustain roughly 60 MB/s.
	DiskMBps float64
	// NetMBps is the effective per-task network bandwidth during the
	// shuffle (MB/s); all-to-all traffic keeps it well under line rate.
	NetMBps float64
	// MapSecPerRecord is the CPU cost of parsing one record and generating
	// its key/value pair(s).
	MapSecPerRecord float64
	// CombineSecPerRecord is the CPU cost of map-side early aggregation
	// per input record (hashing + partial-state update).
	CombineSecPerRecord float64
	// SortSecPerItem scales the n·log2(n) comparison-sort term.
	SortSecPerItem float64
	// EvalSecPerRecord is the local sort/scan evaluation cost per record.
	EvalSecPerRecord float64
	// TaskMemoryBytes bounds in-memory sorting; larger sorts pay the
	// out-of-core penalty (each spilled byte crosses the disk twice).
	TaskMemoryBytes int64
	// SlotsPerMachine is the number of concurrent tasks per machine.
	SlotsPerMachine int
	// TaskOverheadSec is fixed task start-up cost (JVM launch etc.).
	TaskOverheadSec float64
}

// DefaultMachine returns parameters calibrated to the paper's hardware.
func DefaultMachine() Machine {
	return Machine{
		DiskMBps:            60,
		NetMBps:             40,
		MapSecPerRecord:     1.2e-6,
		CombineSecPerRecord: 0.8e-6,
		SortSecPerItem:      0.12e-6,
		EvalSecPerRecord:    0.9e-6,
		TaskMemoryBytes:     800 << 20,
		SlotsPerMachine:     2,
		TaskOverheadSec:     1.0,
	}
}

// Cluster is a set of identical machines.
type Cluster struct {
	Machine  Machine
	Machines int
}

// DefaultCluster returns the paper's 100-machine cluster.
func DefaultCluster() Cluster {
	return Cluster{Machine: DefaultMachine(), Machines: 100}
}

// Slots returns the cluster's total task slots.
func (c Cluster) Slots() int { return c.Machines * c.Machine.SlotsPerMachine }

// MapWork counts what one map task did.
type MapWork struct {
	BytesRead    int64 // input bytes fetched from the DFS
	Records      int64 // input records parsed
	PairsOut     int64 // key/value pairs emitted (after combining)
	BytesOut     int64 // bytes handed to the shuffle
	CombineItems int64 // records passed through the combiner (0 = off)

	// Observability-only counters, priced at zero (the ReduceWork
	// pattern): morsel dispatch and local-table traffic are bookkeeping
	// inside work already covered by Records and CombineItems, so
	// simulated seconds stay a pure function of the priced fields above —
	// and, in particular, identical between fixed-split and morsel mode
	// for the same per-task record totals.
	MorselsDispatched int64 // morsels pulled off the stealing deques
	MorselSteals      int64 // of those, taken from another worker's deque
	LocalAggHits      int64 // pairs absorbed by an existing thread-local partial state
	LocalAggSpills    int64 // thread-local table overflow flushes

	// Cross-query sharing counters, also priced at zero: a shared scan
	// does not change what one task physically did (BytesRead, Records,
	// PairsOut already count the real work) — these record what the scan
	// was worth across queries, so the batching win shows up as fewer
	// priced map tasks, not as a discounted per-task price.
	PlanCacheHits        int64 // plans reused from the keyed decision cache
	SharedScanQueries    int64 // queries served by this task's single scan
	SharedScanBytesSaved int64 // input bytes not re-read thanks to sharing
}

// ReduceWork counts what one reduce task did. Zero-valued stages are
// free, which is how the Figure 4(d) stage stops are modeled.
type ReduceWork struct {
	BytesIn        int64 // shuffled bytes received
	PairsIn        int64 // pairs received
	SortItems      int64 // items in the framework's group-by-key sort
	SpillBytes     int64 // bytes spilled by that sort
	GroupSortItems int64 // items re-sorted inside groups (local algorithm)
	GroupSpill     int64 // bytes spilled by the in-group sort
	EvalRecords    int64 // records scanned by the local evaluation
	OutputRecords  int64 // measure records produced

	// Observability-only counters, priced at zero: the work they count is
	// already covered by EvalRecords (a window probe is part of scanning
	// a region's measures, and arena/pool traffic is bookkeeping inside
	// the evaluation loop). They exist so simulated seconds stay a pure
	// function of the priced fields above while the evaluator's memory
	// and recycling behaviour remain visible per task.
	EvalArenaBytes int64 // high-water evaluator arena footprint
	AggPoolHits    int64 // aggregators recycled from the session pool
	WindowLookups  int64 // sibling-window probes

	// Result-cache counters, also priced at zero: a cache hit's saving
	// shows up as the EvalRecords the reducer never scanned, so pricing
	// the counters themselves would double-count (and a cold run with
	// the cache enabled must stay bit-identical to one without it).
	ResultCacheHits   int64 // groups served from the materialized result cache
	ResultCacheMisses int64 // groups evaluated and then materialized
	ResultCacheBytes  int64 // cached result bytes served
}

func nLogN(n int64) float64 {
	if n < 2 {
		return float64(n)
	}
	f := float64(n)
	return f * math.Log2(f)
}

const mb = 1 << 20

// MapTime returns the simulated duration of one map task.
func (m Machine) MapTime(w MapWork) float64 {
	t := m.TaskOverheadSec
	t += float64(w.BytesRead) / (m.DiskMBps * mb)
	t += float64(w.Records) * m.MapSecPerRecord
	t += float64(w.CombineItems) * m.CombineSecPerRecord
	t += float64(w.BytesOut) / (m.NetMBps * mb)
	return t
}

// ReduceTime returns the simulated duration of one reduce task.
func (m Machine) ReduceTime(w ReduceWork) float64 {
	t := m.TaskOverheadSec
	t += float64(w.BytesIn) / (m.NetMBps * mb)
	t += nLogN(w.SortItems) * m.SortSecPerItem
	t += 2 * float64(w.SpillBytes) / (m.DiskMBps * mb) // write + re-read
	t += nLogN(w.GroupSortItems) * m.SortSecPerItem
	t += 2 * float64(w.GroupSpill) / (m.DiskMBps * mb)
	t += float64(w.EvalRecords) * m.EvalSecPerRecord
	t += float64(w.OutputRecords) * 0.2e-6 // result serialization
	return t
}

// ScheduleLPT returns the makespan of placing the given task durations on
// `slots` identical workers with the longest-processing-time-first greedy
// rule, the classical (4/3-optimal) approximation of the scheduler's
// behaviour.
func ScheduleLPT(durations []float64, slots int) float64 {
	if len(durations) == 0 || slots < 1 {
		return 0
	}
	d := append([]float64(nil), durations...)
	sort.Sort(sort.Reverse(sort.Float64Slice(d)))
	if slots > len(d) {
		slots = len(d)
	}
	loads := make([]float64, slots)
	for _, x := range d {
		mi := 0
		for i := 1; i < slots; i++ {
			if loads[i] < loads[mi] {
				mi = i
			}
		}
		loads[mi] += x
	}
	mx := loads[0]
	for _, l := range loads {
		if l > mx {
			mx = l
		}
	}
	return mx
}

// JobTime combines per-task map and reduce durations into a job response
// time: the map wave's makespan plus the reduce wave's makespan (the
// paper's three response-time components, with transfer attributed to the
// task that performs it).
func JobTime(c Cluster, mapDur, reduceDur []float64) float64 {
	return ScheduleLPT(mapDur, c.Slots()) + ScheduleLPT(reduceDur, c.Slots())
}

// Estimate holds a job's simulated timing breakdown.
type Estimate struct {
	MapSeconds    float64
	ReduceSeconds float64
}

// Total returns the job's simulated response time.
func (e Estimate) Total() float64 { return e.MapSeconds + e.ReduceSeconds }

// String renders the estimate.
func (e Estimate) String() string {
	return fmt.Sprintf("map %.1fs + reduce %.1fs = %.1fs", e.MapSeconds, e.ReduceSeconds, e.Total())
}

// EstimateJob schedules the two waves separately and returns the
// breakdown.
func EstimateJob(c Cluster, mapWork []MapWork, reduceWork []ReduceWork) Estimate {
	mapDur := make([]float64, len(mapWork))
	for i, w := range mapWork {
		mapDur[i] = c.Machine.MapTime(w)
	}
	redDur := make([]float64, len(reduceWork))
	for i, w := range reduceWork {
		redDur[i] = c.Machine.ReduceTime(w)
	}
	return Estimate{
		MapSeconds:    ScheduleLPT(mapDur, c.Slots()),
		ReduceSeconds: ScheduleLPT(redDur, c.Slots()),
	}
}
