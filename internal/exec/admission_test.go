package exec

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"
)

func TestAdmissionPerTenantLimit(t *testing.T) {
	a := NewAdmission(AdmissionConfig{PerTenant: 2, Queue: 8})
	t1, err := a.Admit(context.Background(), "alice", nil)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := a.Admit(context.Background(), "alice", nil)
	if err != nil {
		t.Fatal(err)
	}
	// A second tenant is unaffected by alice being at her limit.
	b1, err := a.Admit(context.Background(), "bob", nil)
	if err != nil {
		t.Fatal(err)
	}
	b1.Release()

	// Third alice admission must wait for a release, and the wait must be
	// stamped into Timing.Queue.
	var tm Timing
	admitted := make(chan *Ticket)
	go func() {
		tk, err := a.Admit(context.Background(), "alice", &tm)
		if err != nil {
			t.Error(err)
		}
		admitted <- tk
	}()
	select {
	case <-admitted:
		t.Fatal("third admission should have queued")
	case <-time.After(50 * time.Millisecond):
	}
	if st := a.Stats(); st.Queued != 1 || st.TenantInFlight["alice"] != 2 {
		t.Fatalf("stats before release: %+v", st)
	}
	t1.Release()
	tk := <-admitted
	if tm.Queue < 50*time.Millisecond {
		t.Fatalf("Timing.Queue = %v, want >= 50ms of admission wait", tm.Queue)
	}
	if tm.Start.IsZero() {
		t.Fatal("Timing.Start not stamped")
	}
	tk.Release()
	t2.Release()

	st := a.Stats()
	if st.InFlight != 0 || st.Queued != 0 {
		t.Fatalf("not idle after releases: %+v", st)
	}
	if st.TenantPeak["alice"] != 2 {
		t.Fatalf("alice peak = %d, want 2", st.TenantPeak["alice"])
	}
	if st.Admitted != 4 {
		t.Fatalf("admitted = %d, want 4", st.Admitted)
	}
}

func TestAdmissionQueueFull(t *testing.T) {
	a := NewAdmission(AdmissionConfig{PerTenant: 1, Queue: 1})
	tk, err := a.Admit(context.Background(), "t", nil)
	if err != nil {
		t.Fatal(err)
	}
	// One waiter fits the queue...
	queued := make(chan error, 1)
	go func() {
		w, err := a.Admit(context.Background(), "t", nil)
		if w != nil {
			w.Release()
		}
		queued <- err
	}()
	waitForQueued(t, a, 1)
	// ...the next is rejected immediately with the typed error.
	if _, err := a.Admit(context.Background(), "t", nil); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	tk.Release()
	if err := <-queued; err != nil {
		t.Fatal(err)
	}
	if st := a.Stats(); st.RejectedQueueFull != 1 {
		t.Fatalf("rejected_queue_full = %d, want 1", st.RejectedQueueFull)
	}
}

func TestAdmissionContextCancelWhileQueued(t *testing.T) {
	a := NewAdmission(AdmissionConfig{PerTenant: 1, Queue: 4})
	tk, err := a.Admit(context.Background(), "t", nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := a.Admit(ctx, "t", nil)
		done <- err
	}()
	waitForQueued(t, a, 1)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st := a.Stats(); st.Queued != 0 {
		t.Fatalf("cancelled waiter still queued: %+v", st)
	}
	// The slot is untouched: a release still admits cleanly.
	tk.Release()
	tk2, err := a.Admit(context.Background(), "t", nil)
	if err != nil {
		t.Fatal(err)
	}
	tk2.Release()
}

func TestAdmissionDrain(t *testing.T) {
	a := NewAdmission(AdmissionConfig{PerTenant: 1, Queue: 4})
	tk, err := a.Admit(context.Background(), "t", nil)
	if err != nil {
		t.Fatal(err)
	}
	// A queued waiter fails with ErrDraining the moment Drain begins.
	queued := make(chan error, 1)
	go func() {
		_, err := a.Admit(context.Background(), "t", nil)
		queued <- err
	}()
	waitForQueued(t, a, 1)

	// Drain with work in flight times out with the context's error; the
	// drain stays in effect.
	short, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := a.Drain(short); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain with running work = %v, want DeadlineExceeded", err)
	}
	if err := <-queued; !errors.Is(err, ErrDraining) {
		t.Fatalf("queued waiter err = %v, want ErrDraining", err)
	}
	// New submissions are rejected immediately.
	if _, err := a.Admit(context.Background(), "u", nil); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain Admit = %v, want ErrDraining", err)
	}

	// Once the running job releases, Drain completes.
	done := make(chan error, 1)
	go func() { done <- a.Drain(context.Background()) }()
	time.Sleep(10 * time.Millisecond)
	tk.Release()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// Idempotent once idle.
	if err := a.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := a.Stats()
	if !st.Draining || st.InFlight != 0 || st.RejectedDraining != 2 {
		t.Fatalf("post-drain stats: %+v", st)
	}
}

// TestAdmissionConcurrentLimitRace hammers one controller from many
// goroutines across several tenants and asserts — via the controller's
// own peak accounting plus an independent per-tenant counter — that no
// tenant ever exceeds its in-flight limit.
func TestAdmissionConcurrentLimitRace(t *testing.T) {
	const (
		perTenant = 3
		tenants   = 4
		workers   = 8
		rounds    = 50
	)
	a := NewAdmission(AdmissionConfig{PerTenant: perTenant, Queue: workers * tenants})
	var mu sync.Mutex
	cur := make(map[string]int)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < rounds; i++ {
				tenant := string(rune('a' + rng.Intn(tenants)))
				tk, err := a.Admit(context.Background(), tenant, nil)
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				cur[tenant]++
				if cur[tenant] > perTenant {
					t.Errorf("tenant %s at %d in flight, limit %d", tenant, cur[tenant], perTenant)
				}
				mu.Unlock()
				time.Sleep(time.Duration(rng.Intn(100)) * time.Microsecond)
				mu.Lock()
				cur[tenant]--
				mu.Unlock()
				tk.Release()
			}
		}(g)
	}
	wg.Wait()
	st := a.Stats()
	if st.InFlight != 0 || st.Queued != 0 {
		t.Fatalf("not idle: %+v", st)
	}
	for tenant, p := range st.TenantPeak {
		if p > perTenant {
			t.Fatalf("tenant %s peak %d exceeds limit %d", tenant, p, perTenant)
		}
	}
	if err := a.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func waitForQueued(t *testing.T, a *Admission, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for a.Stats().Queued < n {
		if time.Now().After(deadline) {
			t.Fatalf("waiter never queued (have %d, want %d)", a.Stats().Queued, n)
		}
		time.Sleep(time.Millisecond)
	}
}
