package exec

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestGroupRunsAllTasks(t *testing.T) {
	e := New(4)
	defer e.Close()
	g := e.NewGroup(context.Background(), Options{})
	var n atomic.Int64
	for i := 0; i < 100; i++ {
		g.Go(fmt.Sprintf("t%d", i), nil, func(ctx context.Context) error {
			n.Add(1)
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 100 {
		t.Fatalf("ran %d of 100 tasks", n.Load())
	}
}

func TestGroupLimitBoundsConcurrency(t *testing.T) {
	e := New(8)
	defer e.Close()
	g := e.NewGroup(context.Background(), Options{Limit: 2})
	var cur, peak atomic.Int64
	for i := 0; i < 32; i++ {
		g.Go("t", nil, func(ctx context.Context) error {
			c := cur.Add(1)
			for {
				p := peak.Load()
				if c <= p || peak.CompareAndSwap(p, c) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 2 {
		t.Fatalf("peak concurrency %d exceeds group limit 2", p)
	}
}

// TestRoundRobinAcrossGroups starves neither of two groups sharing one
// worker: with FIFO-fair admission, one group cannot monopolize the pool
// even when its whole queue was submitted first.
func TestRoundRobinAcrossGroups(t *testing.T) {
	e := New(1)
	defer e.Close()
	var mu sync.Mutex
	var order []string
	ga := e.NewGroup(context.Background(), Options{})
	gb := e.NewGroup(context.Background(), Options{})
	record := func(tag string) func(context.Context) error {
		return func(ctx context.Context) error {
			mu.Lock()
			order = append(order, tag)
			mu.Unlock()
			return nil
		}
	}
	// Stall the single worker so both queues fill before anything runs.
	gate := make(chan struct{})
	ga.Go("gate", nil, func(ctx context.Context) error { <-gate; return nil })
	for i := 0; i < 3; i++ {
		ga.Go("a", nil, record("a"))
		gb.Go("b", nil, record("b"))
	}
	close(gate)
	if err := ga.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := gb.Wait(); err != nil {
		t.Fatal(err)
	}
	got := strings.Join(order, "")
	// Strict alternation between the two groups (starting with either).
	if got != "ababab" && got != "bababa" {
		t.Fatalf("expected round-robin interleaving, got %q", got)
	}
}

func TestErrorsJoinedWithLabels(t *testing.T) {
	e := New(2)
	defer e.Close()
	g := e.NewGroup(context.Background(), Options{})
	boom1, boom2 := errors.New("boom-1"), errors.New("boom-2")
	g.Go("task-one", nil, func(ctx context.Context) error { return boom1 })
	g.Go("task-two", nil, func(ctx context.Context) error { return boom2 })
	err := g.Wait()
	if err == nil {
		t.Fatal("expected error")
	}
	if !errors.Is(err, boom1) || !errors.Is(err, boom2) {
		t.Fatalf("join lost a member: %v", err)
	}
	msg := err.Error()
	if !strings.Contains(msg, "task-one: boom-1") || !strings.Contains(msg, "task-two: boom-2") {
		t.Fatalf("labels missing from %q", msg)
	}
}

func TestCancellationClassifiedSeparately(t *testing.T) {
	e := New(2)
	defer e.Close()

	// Pure cancellation: Wait returns the context error.
	ctx, cancel := context.WithCancel(context.Background())
	g := e.NewGroup(ctx, Options{})
	g.Go("t", nil, func(ctx context.Context) error {
		cancel()
		<-ctx.Done()
		return ctx.Err()
	})
	err := g.Wait()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}

	// A real error alongside cancellation: the real error wins and the
	// ctx.Err() noise from sibling teardown is not joined in.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	boom := errors.New("boom")
	g2 := e.NewGroup(ctx2, Options{OnError: cancel2})
	g2.Go("bad", nil, func(ctx context.Context) error { return boom })
	g2.Go("victim", nil, func(ctx context.Context) error {
		<-ctx.Done()
		return ctx.Err()
	})
	err = g2.Wait()
	if !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	if strings.Contains(err.Error(), "context canceled") {
		t.Fatalf("cancellation noise joined into %q", err)
	}
}

func TestOnErrorFiresOnce(t *testing.T) {
	e := New(4)
	defer e.Close()
	var fires atomic.Int64
	g := e.NewGroup(context.Background(), Options{OnError: func() { fires.Add(1) }})
	for i := 0; i < 8; i++ {
		g.Go("t", nil, func(ctx context.Context) error { return errors.New("x") })
	}
	if err := g.Wait(); err == nil {
		t.Fatal("expected error")
	}
	if fires.Load() != 1 {
		t.Fatalf("OnError fired %d times", fires.Load())
	}
}

func TestGoServiceRunsOutsidePool(t *testing.T) {
	// A 1-worker pool whose only worker is blocked: a service task must
	// still run (that is the collector-vs-backpressure guarantee).
	e := New(1)
	defer e.Close()
	g := e.NewGroup(context.Background(), Options{})
	release := make(chan struct{})
	g.Go("blocker", nil, func(ctx context.Context) error { <-release; return nil })
	done := make(chan struct{})
	g.GoService("svc", func(ctx context.Context) error {
		close(done)
		return nil
	})
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("service task starved by a full pool")
	}
	close(release)
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestTimingStamped(t *testing.T) {
	e := New(1)
	defer e.Close()
	g := e.NewGroup(context.Background(), Options{})
	var tm Timing
	before := time.Now()
	g.Go("t", &tm, func(ctx context.Context) error {
		time.Sleep(5 * time.Millisecond)
		return nil
	})
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if tm.Start.Before(before) || tm.Start.IsZero() {
		t.Fatalf("Start not stamped at dispatch: %v", tm.Start)
	}
	if tm.Wall < 5*time.Millisecond {
		t.Fatalf("Wall %v shorter than the task's sleep", tm.Wall)
	}
}

func TestSharedExecutorManyGroups(t *testing.T) {
	e := New(4)
	defer e.Close()
	var n atomic.Int64
	var wg sync.WaitGroup
	for j := 0; j < 8; j++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g := e.NewGroup(context.Background(), Options{Limit: 2})
			for i := 0; i < 50; i++ {
				g.Go("t", nil, func(ctx context.Context) error {
					n.Add(1)
					return nil
				})
			}
			if err := g.Wait(); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if n.Load() != 400 {
		t.Fatalf("ran %d of 400 tasks", n.Load())
	}
}
