// Package exec is the engine's task-scheduler runtime: a bounded worker
// pool (Executor) shared by every concurrently running job, with per-job
// task groups carrying a context end to end. It replaces the substrate's
// original per-job goroutine spawning — one mr.Run used to start
// MapParallelism + ReduceParallelism + NumReducers goroutines of its own,
// so N concurrent queries meant N uncoordinated pools. With exec, all
// jobs multiplex over one process-wide pool:
//
//   - admission is FIFO within a group and round-robin across groups, so
//     a long job cannot starve a short one (FIFO-fair);
//   - each group bounds its own in-flight tasks (the per-job
//     MapParallelism / ReduceParallelism knobs keep their meaning on a
//     shared pool);
//   - every task receives the group's context and must return promptly
//     once it is cancelled; task errors are aggregated with errors.Join
//     and prefixed with the task's label, while pure cancellation is
//     classified separately so callers can errors.Is(err,
//     context.Canceled) (see ErrorCollector).
//
// Long-lived drain loops that must not compete with compute tasks for
// workers — e.g. the shuffle collectors, which have to consume the
// transport while map tasks are still sending — run as service tasks
// (Group.GoService) on dedicated goroutines that the group still tracks
// and error-collects.
//
// exec is the only place in internal/mr and internal/core where
// goroutines are born; a lint test (internal/lint) bans naked go
// statements in those packages.
package exec

import (
	"context"
	"runtime"
	"sync"
)

// task is one queued unit of work.
type task struct {
	label string
	fn    func(ctx context.Context) error
}

// Executor is a bounded worker pool. The zero value is not usable; use
// New or Default. An Executor may be shared by any number of concurrent
// jobs and outlives all of them.
type Executor struct {
	mu     sync.Mutex
	cond   *sync.Cond
	ring   []*Group // groups with queued tasks, serviced round-robin
	next   int
	closed bool

	workers int
}

// New returns an executor running at most workers tasks concurrently
// (< 1 defaults to GOMAXPROCS). The workers are started immediately and
// live until Close.
func New(workers int) *Executor {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &Executor{workers: workers}
	e.cond = sync.NewCond(&e.mu)
	for i := 0; i < workers; i++ {
		go e.worker()
	}
	return e
}

// Workers reports the pool's concurrency bound.
func (e *Executor) Workers() int { return e.workers }

var (
	defaultOnce sync.Once
	defaultExec *Executor
)

// Default returns the process-wide executor (GOMAXPROCS workers),
// creating it on first use. It is never closed; jobs that do not
// configure their own executor share it.
func Default() *Executor {
	defaultOnce.Do(func() { defaultExec = New(0) })
	return defaultExec
}

// Close stops the pool's workers once their current tasks finish. Queued
// tasks that have not started are abandoned (their groups' Wait would
// block forever), so Close must only be called after every group using
// the executor has completed. The process-wide Default executor is never
// closed.
func (e *Executor) Close() {
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
	e.cond.Broadcast()
}

// worker is one pool goroutine: pick a runnable task, run it, repeat.
func (e *Executor) worker() {
	for {
		e.mu.Lock()
		var g *Group
		var t task
		for {
			if e.closed {
				e.mu.Unlock()
				return
			}
			g, t = e.pickLocked()
			if g != nil {
				break
			}
			e.cond.Wait()
		}
		e.mu.Unlock()
		g.run(t)
		e.mu.Lock()
		g.running--
		// A finished task may unblock its own group (limit) or nothing;
		// one waiter is enough either way.
		e.mu.Unlock()
		e.cond.Signal()
	}
}

// pickLocked scans the ring round-robin for a group that has a queued
// task and headroom under its limit, pops that group's oldest task, and
// returns it. Groups whose queue empties leave the ring; e.next advances
// so consecutive picks rotate across jobs (the FIFO-fair admission).
func (e *Executor) pickLocked() (*Group, task) {
	for i := 0; i < len(e.ring); i++ {
		idx := (e.next + i) % len(e.ring)
		g := e.ring[idx]
		if g.limit > 0 && g.running >= g.limit {
			continue
		}
		t := g.queue[0]
		g.queue[0] = task{}
		g.queue = g.queue[1:]
		g.running++
		if len(g.queue) == 0 {
			e.ring = append(e.ring[:idx:idx], e.ring[idx+1:]...)
			g.inRing = false
			e.next = idx % max(len(e.ring), 1)
		} else {
			e.next = (idx + 1) % len(e.ring)
		}
		return g, t
	}
	return nil, task{}
}

// enqueue adds a task to the group's queue and makes the group visible
// to the workers.
func (e *Executor) enqueue(g *Group, t task) {
	e.mu.Lock()
	if !g.inRing {
		e.ring = append(e.ring, g)
		g.inRing = true
	}
	g.queue = append(g.queue, t)
	e.mu.Unlock()
	e.cond.Signal()
}
