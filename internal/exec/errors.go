package exec

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// ErrorCollector aggregates task errors thread-safely. It replaces the
// substrate's original first-error-wins collector with errors.Join
// semantics: every real failure is kept, prefixed with its task's label
// ("map task dfs-block-3: ..."), so a multi-task failure reports all of
// its causes. Pure cancellation (context.Canceled / DeadlineExceeded) is
// classified separately: once a job's context is cancelled every
// in-flight task returns ctx.Err(), and joining those would bury the
// real root cause — so cancellation only surfaces from Err when no real
// error was recorded, and then as the context error itself, satisfying
// errors.Is(err, context.Canceled).
type ErrorCollector struct {
	// OnError, when non-nil, fires exactly once at the first real error
	// added (cancellation never fires it).
	OnError func()

	mu       sync.Mutex
	errs     []error
	canceled error
	fired    bool
}

// Add records one task's outcome; nil is ignored. label, when non-empty,
// prefixes the recorded error.
func (c *ErrorCollector) Add(label string, err error) {
	if err == nil {
		return
	}
	c.mu.Lock()
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		if c.canceled == nil {
			c.canceled = err
		}
		c.mu.Unlock()
		return
	}
	if label != "" {
		err = fmt.Errorf("%s: %w", label, err)
	}
	c.errs = append(c.errs, err)
	fire := !c.fired && c.OnError != nil
	c.fired = true
	c.mu.Unlock()
	if fire {
		c.OnError()
	}
}

// Failed reports whether a real (non-cancellation) error has been
// recorded. Tasks use it to stop starting new work once a sibling died.
func (c *ErrorCollector) Failed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.errs) > 0
}

// Err returns the aggregate: errors.Join of all real errors; else the
// first cancellation error observed; else nil.
func (c *ErrorCollector) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.errs) > 0 {
		return errors.Join(c.errs...)
	}
	return c.canceled
}
