package exec

import "sync"

// StealDeques is the stealable task shape of morsel-driven execution
// (Leis et al., SIGMOD '14): a fixed set of per-worker deques over which
// a pool of workers self-schedules small work items. Each worker drains
// its own deque front to back — preserving the enqueue order of its
// items, which for morsels means sequential scans over contiguous input —
// and, once empty, steals from the back of the fullest other deque, so a
// backlog parked behind a straggling worker is finished by whoever has
// headroom instead of riding out the straggler.
//
// All items are expected to be pushed before the workers start pulling
// (the dispatch set is known up front); an empty pull therefore means the
// work is exhausted, not that more may arrive. A single mutex guards the
// deques — items are sized (tens of KiB of records each) so the lock is
// taken far too rarely to contend.
type StealDeques[T any] struct {
	mu     sync.Mutex
	deques [][]T
}

// NewStealDeques returns a deque set for the given number of workers
// (minimum 1).
func NewStealDeques[T any](workers int) *StealDeques[T] {
	if workers < 1 {
		workers = 1
	}
	return &StealDeques[T]{deques: make([][]T, workers)}
}

// Workers reports the number of deques.
func (s *StealDeques[T]) Workers() int { return len(s.deques) }

// Push appends an item to owner's deque. Owners out of range wrap around,
// so callers may deal by any index (split number, hash) without bounds
// bookkeeping.
func (s *StealDeques[T]) Push(owner int, item T) {
	s.mu.Lock()
	defer s.mu.Unlock()
	o := owner % len(s.deques)
	if o < 0 {
		o += len(s.deques)
	}
	s.deques[o] = append(s.deques[o], item)
}

// Next returns the next item for worker w: the front of w's own deque
// when non-empty, otherwise the back of the fullest other deque (stolen
// reports which). ok=false means every deque is empty — with all items
// pushed up front, that is global exhaustion.
func (s *StealDeques[T]) Next(w int) (item T, stolen, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if q := s.deques[w]; len(q) > 0 {
		item = q[0]
		var zero T
		q[0] = zero // release the item for GC; the deque array is long-lived
		s.deques[w] = q[1:]
		return item, false, true
	}
	// Steal from the victim with the most remaining items: the longest
	// backlog is both the fairest target and the likeliest straggler.
	victim, most := -1, 0
	for i, q := range s.deques {
		if i != w && len(q) > most {
			victim, most = i, len(q)
		}
	}
	if victim < 0 {
		return item, false, false
	}
	q := s.deques[victim]
	item = q[len(q)-1]
	var zero T
	q[len(q)-1] = zero
	s.deques[victim] = q[:len(q)-1]
	return item, true, true
}
