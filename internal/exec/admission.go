package exec

import (
	"context"
	"errors"
	"sync"
	"time"
)

// ErrDraining is returned by Admit once Drain has begun (and surfaces from
// every resident-service submission path after shutdown started). Servers
// map it to 503 Service Unavailable.
var ErrDraining = errors.New("exec: draining, not admitting new work")

// ErrQueueFull is returned by Admit when the bounded admission queue is
// already holding its maximum number of waiters. Servers map it to 429 Too
// Many Requests — the caller should back off and retry.
var ErrQueueFull = errors.New("exec: admission queue full")

// Admission defaults.
const (
	// DefaultPerTenant bounds one tenant's concurrently admitted jobs.
	DefaultPerTenant = 4
	// DefaultAdmissionQueue bounds the total number of waiting admissions
	// across all tenants.
	DefaultAdmissionQueue = 64
)

// AdmissionConfig parameterizes an admission controller.
type AdmissionConfig struct {
	// PerTenant bounds each tenant's concurrently admitted jobs
	// (<= 0 = DefaultPerTenant). A tenant at its limit queues.
	PerTenant int
	// Queue bounds the total number of queued admissions across all
	// tenants (<= 0 = DefaultAdmissionQueue). A full queue rejects with
	// ErrQueueFull instead of building unbounded backlog.
	Queue int
}

// Admission is the resident service's front door over the shared Executor
// pool: jobs are admitted per tenant up to a fixed in-flight limit, excess
// submissions wait in one bounded FIFO queue, and Drain stops admission
// and waits for the in-flight work to finish. Where the Executor bounds
// how many *tasks* run at once, Admission bounds how many *jobs* (whole
// evaluations) each tenant may have in flight — one misbehaving tenant
// can saturate neither the pool nor the queue.
//
// The zero value is not usable; use NewAdmission. Safe for concurrent use.
type Admission struct {
	perTenant int
	queueCap  int

	mu       sync.Mutex
	inflight map[string]int
	peak     map[string]int
	total    int
	queue    []*admWaiter
	draining bool
	idle     chan struct{} // non-nil while a Drain waits; closed at total==0

	admitted         int64
	rejectedFull     int64
	rejectedDraining int64
}

// admWaiter is one queued admission. ready is closed exactly once, after
// err is set (nil = admitted, the slot is already accounted to the
// tenant).
type admWaiter struct {
	tenant string
	ready  chan struct{}
	err    error
}

// NewAdmission returns an admission controller with the given limits.
func NewAdmission(cfg AdmissionConfig) *Admission {
	if cfg.PerTenant <= 0 {
		cfg.PerTenant = DefaultPerTenant
	}
	if cfg.Queue <= 0 {
		cfg.Queue = DefaultAdmissionQueue
	}
	return &Admission{
		perTenant: cfg.PerTenant,
		queueCap:  cfg.Queue,
		inflight:  make(map[string]int),
		peak:      make(map[string]int),
	}
}

// Ticket is one granted admission. Release returns the tenant's slot;
// it is idempotent and must be called on every path once the admitted
// work has finished (including failures and cancellations).
type Ticket struct {
	a      *Admission
	tenant string
	once   sync.Once
}

// Tenant names the ticket's tenant.
func (t *Ticket) Tenant() string { return t.tenant }

// Release hands the tenant's in-flight slot back, admitting the oldest
// eligible waiter. Idempotent.
func (t *Ticket) Release() {
	t.once.Do(func() { t.a.release(t.tenant) })
}

// Admit blocks until the tenant has an in-flight slot free (FIFO among
// the tenant's waiters), the context is cancelled, the queue is full
// (ErrQueueFull, immediately), or draining has begun (ErrDraining —
// immediately for new submissions, and delivered to already-queued
// waiters when Drain starts). tm, when non-nil, records the admission
// wait in Timing.Queue and the admission instant in Timing.Start.
func (a *Admission) Admit(ctx context.Context, tenant string, tm *Timing) (*Ticket, error) {
	enqueued := time.Now()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	a.mu.Lock()
	if a.draining {
		a.rejectedDraining++
		a.mu.Unlock()
		return nil, ErrDraining
	}
	if a.inflight[tenant] < a.perTenant && !a.tenantQueuedLocked(tenant) {
		a.admitLocked(tenant)
		a.mu.Unlock()
		a.stamp(tm, enqueued)
		return &Ticket{a: a, tenant: tenant}, nil
	}
	if len(a.queue) >= a.queueCap {
		a.rejectedFull++
		a.mu.Unlock()
		return nil, ErrQueueFull
	}
	w := &admWaiter{tenant: tenant, ready: make(chan struct{})}
	a.queue = append(a.queue, w)
	a.mu.Unlock()

	select {
	case <-w.ready:
		if w.err != nil {
			return nil, w.err
		}
		a.stamp(tm, enqueued)
		return &Ticket{a: a, tenant: tenant}, nil
	case <-ctx.Done():
		a.mu.Lock()
		for i, q := range a.queue {
			if q == w {
				a.queue = append(a.queue[:i], a.queue[i+1:]...)
				a.mu.Unlock()
				return nil, ctx.Err()
			}
		}
		a.mu.Unlock()
		// The waiter left the queue concurrently with the cancellation:
		// its outcome is already decided. An admitted slot is handed
		// straight back.
		<-w.ready
		if w.err == nil {
			(&Ticket{a: a, tenant: tenant}).Release()
		}
		return nil, ctx.Err()
	}
}

// stamp records the admission wait and dispatch time.
func (a *Admission) stamp(tm *Timing, enqueued time.Time) {
	if tm == nil {
		return
	}
	tm.Start = time.Now()
	tm.Queue = tm.Start.Sub(enqueued)
}

// tenantQueuedLocked reports whether the tenant already has a queued
// waiter — later submissions must not overtake it (FIFO per tenant).
func (a *Admission) tenantQueuedLocked(tenant string) bool {
	for _, w := range a.queue {
		if w.tenant == tenant {
			return true
		}
	}
	return false
}

func (a *Admission) admitLocked(tenant string) {
	a.inflight[tenant]++
	a.total++
	if a.inflight[tenant] > a.peak[tenant] {
		a.peak[tenant] = a.inflight[tenant]
	}
	a.admitted++
}

// release returns one slot and promotes eligible waiters.
func (a *Admission) release(tenant string) {
	a.mu.Lock()
	a.inflight[tenant]--
	if a.inflight[tenant] <= 0 {
		delete(a.inflight, tenant)
	}
	a.total--
	a.promoteLocked()
	var idle chan struct{}
	if a.draining && a.total == 0 && a.idle != nil {
		idle, a.idle = a.idle, nil
	}
	a.mu.Unlock()
	if idle != nil {
		close(idle)
	}
}

// promoteLocked admits every queued waiter whose tenant has headroom, in
// FIFO order.
func (a *Admission) promoteLocked() {
	i := 0
	for i < len(a.queue) {
		w := a.queue[i]
		if a.inflight[w.tenant] < a.perTenant {
			a.queue = append(a.queue[:i], a.queue[i+1:]...)
			a.admitLocked(w.tenant)
			close(w.ready)
			continue
		}
		i++
	}
}

// Drain stops admission — queued waiters fail with ErrDraining, new Admit
// calls are rejected immediately — and waits for every admitted job to
// Release. It returns nil once the controller is idle, or ctx's error if
// the deadline passes with work still in flight (the drain stays in
// effect either way; a later Drain call resumes the wait). Idempotent and
// safe to call concurrently.
func (a *Admission) Drain(ctx context.Context) error {
	a.mu.Lock()
	if !a.draining {
		a.draining = true
		for _, w := range a.queue {
			w.err = ErrDraining
			a.rejectedDraining++
			close(w.ready)
		}
		a.queue = nil
	}
	if a.total == 0 {
		a.mu.Unlock()
		return nil
	}
	if a.idle == nil {
		a.idle = make(chan struct{})
	}
	idle := a.idle
	a.mu.Unlock()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Draining reports whether Drain has begun.
func (a *Admission) Draining() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.draining
}

// AdmissionStats is a point-in-time snapshot of the controller.
type AdmissionStats struct {
	// InFlight is the number of currently admitted jobs; Queued the
	// number of waiters.
	InFlight int `json:"in_flight"`
	Queued   int `json:"queued"`
	// Admitted / RejectedQueueFull / RejectedDraining count outcomes
	// since construction (context-cancelled waits are none of the three).
	Admitted          int64 `json:"admitted"`
	RejectedQueueFull int64 `json:"rejected_queue_full"`
	RejectedDraining  int64 `json:"rejected_draining"`
	// Draining reports whether Drain has begun.
	Draining bool `json:"draining"`
	// TenantInFlight / TenantPeak are the current and high-water
	// in-flight counts per tenant (peaks survive the tenant going idle).
	TenantInFlight map[string]int `json:"tenant_in_flight,omitempty"`
	TenantPeak     map[string]int `json:"tenant_peak,omitempty"`
}

// Stats snapshots the controller.
func (a *Admission) Stats() AdmissionStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := AdmissionStats{
		InFlight:          a.total,
		Queued:            len(a.queue),
		Admitted:          a.admitted,
		RejectedQueueFull: a.rejectedFull,
		RejectedDraining:  a.rejectedDraining,
		Draining:          a.draining,
		TenantInFlight:    make(map[string]int, len(a.inflight)),
		TenantPeak:        make(map[string]int, len(a.peak)),
	}
	for k, v := range a.inflight {
		st.TenantInFlight[k] = v
	}
	for k, v := range a.peak {
		st.TenantPeak[k] = v
	}
	return st
}
