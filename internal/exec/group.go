package exec

import (
	"context"
	"sync"
	"time"
)

// Options parameterize a task group.
type Options struct {
	// Limit bounds the group's concurrently running pooled tasks
	// (< 1 = only the executor's worker count bounds it). Service tasks
	// are not counted: they run on dedicated goroutines.
	Limit int
	// OnError, when non-nil, is called exactly once, at the group's
	// first real (non-cancellation) task error. Jobs use it to cancel
	// their context so sibling tasks abort promptly.
	OnError func()
}

// Group is one job stage's set of tasks: submit with Go/GoService, then
// Wait. All tasks receive the group's context. A Group is not reusable
// after Wait returns.
type Group struct {
	e    *Executor
	ctx  context.Context
	errs ErrorCollector
	wg   sync.WaitGroup

	// Scheduler state, guarded by e.mu.
	queue   []task
	running int
	limit   int
	inRing  bool
}

// NewGroup returns a group submitting to the executor under ctx.
func (e *Executor) NewGroup(ctx context.Context, opts Options) *Group {
	g := &Group{e: e, ctx: ctx, limit: opts.Limit}
	g.errs.OnError = opts.OnError
	return g
}

// Timing records when the scheduler dispatched a task (Start, stamped
// before any task work runs — the gap to job submission is the queueing
// delay) and how long the task ran (Wall). Queue is the explicit
// admission wait for work that passed through an Admission controller
// (whole jobs at the service layer); for pooled tasks the scheduler
// leaves it zero, their queueing delay being the submission→Start gap.
// All three are observability-only: the cost model prices none of them.
type Timing struct {
	Queue time.Duration
	Start time.Time
	Wall  time.Duration
}

// Go submits one pooled task. label prefixes any error the task returns
// (and identifies it in ErrorCollector output); tm, when non-nil, is
// scheduler-stamped with the task's dispatch time and run duration. fn
// must honor ctx: return promptly (with ctx.Err()) once it is cancelled.
func (g *Group) Go(label string, tm *Timing, fn func(ctx context.Context) error) {
	g.wg.Add(1)
	g.e.enqueue(g, task{label: label, fn: g.timed(tm, fn)})
}

// GoService runs one service task on a dedicated goroutine, outside the
// pool's worker budget and the group's Limit, but still tracked by Wait
// and error-collected. Use it for drain loops that must make progress
// while pooled tasks run (e.g. shuffle collectors, which would deadlock
// against map-side backpressure if they had to wait for a pool slot).
func (g *Group) GoService(label string, fn func(ctx context.Context) error) {
	g.wg.Add(1)
	t := task{label: label, fn: fn}
	go func() {
		g.run(t)
		g.wg.Done()
	}()
}

// run executes one task and records its outcome. Pooled tasks are run by
// executor workers, service tasks by their own goroutine.
func (g *Group) run(t task) {
	g.errs.Add(t.label, t.fn(g.ctx))
}

// timed wraps fn to stamp tm at dispatch and completion, and to release
// the group's WaitGroup (pooled tasks only; GoService releases its own).
func (g *Group) timed(tm *Timing, fn func(ctx context.Context) error) func(ctx context.Context) error {
	return func(ctx context.Context) error {
		defer g.wg.Done()
		if tm != nil {
			tm.Start = time.Now()
			defer func() { tm.Wall = time.Since(tm.Start) }()
		}
		return fn(ctx)
	}
}

// Wait blocks until every submitted task has finished and returns the
// group's aggregate error: real task errors joined via errors.Join, each
// prefixed with its task label; or the context's cancellation error when
// cancellation is all that went wrong; or nil.
func (g *Group) Wait() error {
	g.wg.Wait()
	return g.errs.Err()
}
