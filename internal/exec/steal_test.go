package exec

import (
	"sync"
	"testing"
)

func TestStealDequesOwnOrderThenSteal(t *testing.T) {
	s := NewStealDeques[int](2)
	// Worker 0 gets 1,2,3; worker 1 gets nothing.
	for _, v := range []int{1, 2, 3} {
		s.Push(0, v)
	}
	// Owner drains front-to-back.
	if v, stolen, ok := s.Next(0); !ok || stolen || v != 1 {
		t.Fatalf("Next(0) = %d, %v, %v", v, stolen, ok)
	}
	// The idle worker steals from the back.
	if v, stolen, ok := s.Next(1); !ok || !stolen || v != 3 {
		t.Fatalf("Next(1) = %d, %v, %v", v, stolen, ok)
	}
	if v, stolen, ok := s.Next(0); !ok || stolen || v != 2 {
		t.Fatalf("Next(0) = %d, %v, %v", v, stolen, ok)
	}
	if _, _, ok := s.Next(0); ok {
		t.Fatal("deques not exhausted after 3 pulls")
	}
	if _, _, ok := s.Next(1); ok {
		t.Fatal("deques not exhausted after 3 pulls")
	}
}

func TestStealDequesStealsFromFullest(t *testing.T) {
	s := NewStealDeques[int](3)
	s.Push(0, 10)
	for v := 0; v < 5; v++ {
		s.Push(1, 100+v)
	}
	// Worker 2 is empty; the fullest victim is worker 1, back item first.
	if v, stolen, ok := s.Next(2); !ok || !stolen || v != 104 {
		t.Fatalf("Next(2) = %d, %v, %v; want steal of 104", v, stolen, ok)
	}
}

func TestStealDequesOwnerWraps(t *testing.T) {
	s := NewStealDeques[string](2)
	s.Push(5, "a")  // 5 % 2 = 1
	s.Push(-1, "b") // wraps to 1
	if v, stolen, ok := s.Next(1); !ok || stolen || v != "a" {
		t.Fatalf("Next(1) = %q, %v, %v", v, stolen, ok)
	}
	if v, stolen, ok := s.Next(1); !ok || stolen || v != "b" {
		t.Fatalf("Next(1) = %q, %v, %v", v, stolen, ok)
	}
}

// TestStealDequesConcurrentExhaustion hammers the deques from many
// goroutines and checks every item is pulled exactly once (run with
// -race for the locking claim).
func TestStealDequesConcurrentExhaustion(t *testing.T) {
	const workers, items = 8, 10000
	s := NewStealDeques[int](workers)
	for i := 0; i < items; i++ {
		s.Push(i%3, i) // lopsided deal: only 3 of 8 deques get items
	}
	var mu sync.Mutex
	seen := make([]bool, items)
	var anySteal bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				v, stolen, ok := s.Next(w)
				if !ok {
					return
				}
				mu.Lock()
				if seen[v] {
					t.Errorf("item %d pulled twice", v)
				}
				seen[v] = true
				if stolen {
					anySteal = true
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	for i, ok := range seen {
		if !ok {
			t.Fatalf("item %d never pulled", i)
		}
	}
	if !anySteal {
		t.Error("no steals despite 5 empty deques")
	}
}
