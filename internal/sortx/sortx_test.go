package sortx

import (
	"cmp"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// cmpInt64 orders int64 sorters in tests.
func cmpInt64(a, b int64) int { return cmp.Compare(a, b) }

type int64Codec struct{}

func (int64Codec) EncodeTo(dst []byte, v int64) ([]byte, error) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	return append(dst, buf[:]...), nil
}
func (int64Codec) Decode(b []byte) (int64, error) {
	if len(b) != 8 {
		return 0, fmt.Errorf("bad length %d", len(b))
	}
	return int64(binary.LittleEndian.Uint64(b)), nil
}

func drain(t *testing.T, it *Iterator[int64]) []int64 {
	t.Helper()
	defer it.Close()
	var out []int64
	for {
		v, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return out
		}
		out = append(out, v)
	}
}

func checkSorted(t *testing.T, input []int64, budget int) {
	t.Helper()
	s := New(cmpInt64, int64Codec{}, t.TempDir(), budget)
	for _, v := range input {
		if err := s.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	it, err := s.Iterate()
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, it)
	want := append([]int64(nil), input...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(got) != len(want) {
		t.Fatalf("budget %d: got %d items, want %d", budget, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("budget %d: item %d = %d, want %d", budget, i, got[i], want[i])
		}
	}
}

func TestInMemorySort(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	input := make([]int64, 1000)
	for i := range input {
		input[i] = rng.Int63n(500) // duplicates on purpose
	}
	checkSorted(t, input, 0)    // unlimited memory
	checkSorted(t, input, 5000) // budget not reached
}

func TestSpillingSort(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	input := make([]int64, 5000)
	for i := range input {
		input[i] = rng.Int63n(100000) - 50000
	}
	for _, budget := range []int{1, 7, 100, 999, 4999} {
		checkSorted(t, input, budget)
	}
}

func TestSpillStats(t *testing.T) {
	s := New(cmpInt64, int64Codec{}, t.TempDir(), 10)
	for i := int64(0); i < 95; i++ {
		if err := s.Add(i); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Items != 95 {
		t.Errorf("Items = %d", st.Items)
	}
	if st.Runs != 9 {
		t.Errorf("Runs = %d, want 9 (9 full buffers of 10, 5 residual in memory)", st.Runs)
	}
	if st.SpilledItems != 90 {
		t.Errorf("SpilledItems = %d", st.SpilledItems)
	}
	if st.SpilledBytes != 90*9 { // 1 length byte + 8 payload bytes per item
		t.Errorf("SpilledBytes = %d", st.SpilledBytes)
	}
	it, err := s.Iterate()
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, it)
	if len(got) != 95 || got[0] != 0 || got[94] != 94 {
		t.Errorf("bad merged output: len %d", len(got))
	}
}

func TestInMemoryNoSpillStats(t *testing.T) {
	s := New(cmpInt64, int64Codec{}, t.TempDir(), 0)
	for i := int64(0); i < 1000; i++ {
		s.Add(i)
	}
	if st := s.Stats(); st.Runs != 0 || st.SpilledBytes != 0 {
		t.Errorf("unexpected spill: %+v", st)
	}
}

func TestEmptySort(t *testing.T) {
	s := New(cmpInt64, int64Codec{}, t.TempDir(), 4)
	it, err := s.Iterate()
	if err != nil {
		t.Fatal(err)
	}
	if got := drain(t, it); len(got) != 0 {
		t.Errorf("empty sorter yielded %d items", len(got))
	}
}

func TestUsageErrors(t *testing.T) {
	s := New(cmpInt64, int64Codec{}, t.TempDir(), 0)
	s.Add(1)
	if _, err := s.Iterate(); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(2); err == nil {
		t.Error("Add after Iterate accepted")
	}
	if _, err := s.Iterate(); err == nil {
		t.Error("second Iterate accepted")
	}
}

type badCodec struct{ failEncode bool }

func (c badCodec) EncodeTo(dst []byte, v int64) ([]byte, error) {
	if c.failEncode {
		return nil, fmt.Errorf("encode boom")
	}
	return append(dst, 1), nil
}
func (c badCodec) Decode(b []byte) (int64, error) { return 0, fmt.Errorf("decode boom") }

func TestCodecErrorsPropagate(t *testing.T) {
	s := New(cmpInt64, badCodec{failEncode: true}, t.TempDir(), 1)
	if err := s.Add(1); err == nil {
		t.Error("encode error swallowed on spill")
	}
	s2 := New(cmpInt64, badCodec{}, t.TempDir(), 1)
	s2.Add(1)
	s2.Add(2)
	if _, err := s2.Iterate(); err == nil {
		t.Error("decode error swallowed on merge init")
	}
}

func TestSortPropertyRandomBudgets(t *testing.T) {
	f := func(raw []int64, budgetRaw uint8) bool {
		budget := int(budgetRaw % 20)
		s := New(cmpInt64, int64Codec{}, t.TempDir(), budget)
		for _, v := range raw {
			if err := s.Add(v); err != nil {
				return false
			}
		}
		it, err := s.Iterate()
		if err != nil {
			return false
		}
		defer it.Close()
		// Check sortedness and multiset preservation.
		counts := map[int64]int{}
		for _, v := range raw {
			counts[v]++
		}
		var prev int64
		first := true
		n := 0
		for {
			v, ok, err := it.Next()
			if err != nil {
				return false
			}
			if !ok {
				break
			}
			if !first && v < prev {
				return false
			}
			prev, first = v, false
			counts[v]--
			n++
		}
		if n != len(raw) {
			return false
		}
		for _, c := range counts {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestStability(t *testing.T) {
	// Equal keys must preserve insertion order (the reducer relies on
	// grouping, not ordering within groups, but stability makes runs
	// deterministic).
	codec := pairCodec{}
	s := New(func(a, b pair) int { return cmp.Compare(a.k, b.k) }, codec, t.TempDir(), 3)
	for i := int64(0); i < 20; i++ {
		s.Add(pair{k: i % 2, seq: i})
	}
	it, err := s.Iterate()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	// Within the spilled-run merge, order of equal keys across runs is not
	// globally stable, but each key's items must all be present.
	seen := map[int64]int{}
	for {
		p, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		seen[p.k]++
	}
	if seen[0] != 10 || seen[1] != 10 {
		t.Errorf("group sizes: %v", seen)
	}
}

type pair struct{ k, seq int64 }

type pairCodec struct{}

func (pairCodec) EncodeTo(dst []byte, p pair) ([]byte, error) {
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[:8], uint64(p.k))
	binary.LittleEndian.PutUint64(buf[8:], uint64(p.seq))
	return append(dst, buf[:]...), nil
}
func (pairCodec) Decode(b []byte) (pair, error) {
	var p pair
	if len(b) != 16 {
		return p, fmt.Errorf("bad length")
	}
	p.k = int64(binary.LittleEndian.Uint64(b[:8]))
	p.seq = int64(binary.LittleEndian.Uint64(b[8:]))
	return p, nil
}
