package sortx

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

func intCmp(a, b int) int { return a - b }

type intCodec struct{}

func (intCodec) EncodeTo(dst []byte, v int) ([]byte, error) {
	return append(dst, []byte(fmt.Sprintf("%08d", v))...), nil
}
func (intCodec) Decode(b []byte) (int, error) {
	var v int
	_, err := fmt.Sscanf(string(b), "%d", &v)
	return v, err
}

// TestSpillAbortsOnCancel cancels before a spill and verifies Add
// surfaces ctx.Err() instead of writing the run.
func TestSpillAbortsOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	s := NewContext(ctx, intCmp, intCodec{}, t.TempDir(), 4)
	for i := 0; i < 3; i++ {
		if err := s.Add(i); err != nil {
			t.Fatal(err)
		}
	}
	cancel()
	// The 4th Add triggers the spill, which must abort.
	err := s.Add(3)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled from the spill path, got %v", err)
	}
	if s.Stats().Runs != 0 {
		t.Fatalf("cancelled spill still wrote %d runs", s.Stats().Runs)
	}
	s.Close()
}

// TestMergeAbortsOnCancel cancels mid-merge and verifies the iterator
// surfaces ctx.Err() within one check interval.
func TestMergeAbortsOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	s := NewContext(ctx, intCmp, intCodec{}, t.TempDir(), 8)
	const n = 10 * cancelCheckInterval
	for i := 0; i < n; i++ {
		if err := s.Add(i); err != nil {
			t.Fatal(err)
		}
	}
	it, err := s.Iterate()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	cancel()
	sawCancel := false
	for i := 0; i < 2*cancelCheckInterval; i++ {
		if _, _, err := it.Next(); err != nil {
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("want context.Canceled, got %v", err)
			}
			sawCancel = true
			break
		}
	}
	if !sawCancel {
		t.Fatal("merge kept going past a full check interval after cancel")
	}
}

// TestCloseWithoutIterate releases spill runs on the teardown path.
func TestCloseWithoutIterate(t *testing.T) {
	s := New(intCmp, intCodec{}, t.TempDir(), 4)
	for i := 0; i < 20; i++ {
		if err := s.Add(i); err != nil {
			t.Fatal(err)
		}
	}
	if s.Stats().Runs == 0 {
		t.Fatal("test needs spilled runs")
	}
	s.Close()
	s.Close() // idempotent
	if _, err := s.Iterate(); err == nil {
		t.Fatal("Iterate after Close succeeded")
	}
}
