package sortx

import (
	"math/rand"
	"testing"
)

// BenchmarkSort compares the in-memory and spilling paths.
func BenchmarkSort(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	input := make([]int64, 200_000)
	for i := range input {
		input[i] = rng.Int63()
	}
	for _, c := range []struct {
		name   string
		budget int
	}{
		{"in_memory", 0},
		{"spill_4_runs", len(input) / 4},
		{"spill_32_runs", len(input) / 32},
	} {
		b.Run(c.name, func(b *testing.B) {
			dir := b.TempDir()
			for i := 0; i < b.N; i++ {
				s := New(cmpInt64, int64Codec{}, dir, c.budget)
				for _, v := range input {
					if err := s.Add(v); err != nil {
						b.Fatal(err)
					}
				}
				it, err := s.Iterate()
				if err != nil {
					b.Fatal(err)
				}
				n := 0
				for {
					_, ok, err := it.Next()
					if err != nil {
						b.Fatal(err)
					}
					if !ok {
						break
					}
					n++
				}
				it.Close()
				if n != len(input) {
					b.Fatalf("lost items: %d", n)
				}
			}
			b.ReportMetric(float64(len(input)*b.N)/b.Elapsed().Seconds(), "items/s")
		})
	}
}
