// Package sortx provides an external merge sort: items are buffered in
// memory up to a budget, spilled to sorted run files, and merged with a
// k-way heap. The MapReduce reducers use it to group shuffled key/value
// pairs ("reducers collect pairs and use external sorting to group pairs
// with the same key value"), and its spill counters feed the cost model's
// out-of-core sorting term.
//
// The spill and merge paths are allocation-lean: run generation encodes
// every item into one reused scratch buffer (the append-style EncodeTo),
// and the k-way merge decodes from per-run reused read buffers. Decoded
// items may therefore alias transient buffers — see Iterator.Next for the
// ownership contract.
package sortx

import (
	"bufio"
	"container/heap"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"slices"
)

// Codec serializes items for spill files.
type Codec[T any] interface {
	// EncodeTo appends the item's encoding to dst and returns the
	// extended slice (which may have been reallocated). The sorter reuses
	// dst across items, so encoders must not retain it.
	EncodeTo(dst []byte, item T) ([]byte, error)
	// Decode parses one item from data. The decoded item MAY alias data;
	// the sorter guarantees data stays valid until the next item is read
	// from the same run, which matches Iterator.Next's contract.
	Decode(data []byte) (T, error)
}

// Stats reports what the sorter did, for cost accounting.
type Stats struct {
	Items        int64 // total items added
	Runs         int   // spilled run files (0 when fully in-memory)
	SpilledItems int64 // items written to disk
	SpilledBytes int64 // bytes written to disk (read back once more on merge)
	AllocsSaved  int64 // encode/decode operations served by a reused buffer
}

// Sorter accumulates items and then yields them in sorted order. It is
// single-goroutine: Add all items, then Iterate once.
type Sorter[T any] struct {
	cmp       func(a, b T) int
	codec     Codec[T]
	dir       string
	memBudget int

	// Cancellation state (NewContext): cancel is the cached Done channel
	// — polling a cached closed-channel select is lock-free, unlike
	// ctx.Err(), which takes the context's mutex and would contend when
	// many reduce tasks share one job context.
	ctx    context.Context
	cancel <-chan struct{}

	buf     []T
	scratch []byte // reused per-item encode buffer for spills
	runs    []*os.File
	stats   Stats
	done    bool
}

// New returns a sorter ordering items by cmp (negative when a < b, as in
// slices.SortStableFunc), spilling to temp files in dir (or the OS default
// when dir is empty) whenever more than memBudget items are buffered. A
// memBudget < 1 keeps everything in memory.
func New[T any](cmp func(a, b T) int, codec Codec[T], dir string, memBudget int) *Sorter[T] {
	return &Sorter[T]{cmp: cmp, codec: codec, dir: dir, memBudget: memBudget}
}

// NewContext is New with a cancellation context: the spill and merge
// loops poll ctx and abort with ctx.Err() once it is cancelled, so a
// cancelled job never finishes writing or merging multi-megabyte runs it
// is about to throw away.
func NewContext[T any](ctx context.Context, cmp func(a, b T) int, codec Codec[T], dir string, memBudget int) *Sorter[T] {
	s := New(cmp, codec, dir, memBudget)
	if ctx != nil {
		s.ctx = ctx
		s.cancel = ctx.Done()
	}
	return s
}

// canceled reports the context's error once it is cancelled (nil for
// sorters built without a context). The poll interval below bounds how
// much spill/merge work happens between checks.
const cancelCheckInterval = 1024

func (s *Sorter[T]) canceled() error {
	if s.cancel == nil {
		return nil
	}
	select {
	case <-s.cancel:
		return s.ctx.Err()
	default:
		return nil
	}
}

// Stats returns the sorter's counters.
func (s *Sorter[T]) Stats() Stats { return s.stats }

// Add offers one item. It may spill the in-memory buffer to a run file.
func (s *Sorter[T]) Add(item T) error {
	if s.done {
		return fmt.Errorf("sortx: Add after Iterate")
	}
	s.buf = append(s.buf, item)
	s.stats.Items++
	if s.memBudget > 0 && len(s.buf) >= s.memBudget {
		return s.spill()
	}
	return nil
}

func (s *Sorter[T]) spill() error {
	if len(s.buf) == 0 {
		return nil
	}
	if err := s.canceled(); err != nil {
		return err
	}
	slices.SortStableFunc(s.buf, s.cmp)
	f, err := os.CreateTemp(s.dir, "sortx-run-*.bin")
	if err != nil {
		return fmt.Errorf("sortx: create run: %w", err)
	}
	// The file is unlinked immediately so runs never outlive the process
	// even on a crash; its disk space is reclaimed when the descriptor
	// closes (happy path: the iterator's Close; teardown: Sorter.Close).
	os.Remove(f.Name())
	w := bufio.NewWriterSize(f, 1<<16)
	var lenBuf [binary.MaxVarintLen64]byte
	for n, it := range s.buf {
		if n%cancelCheckInterval == 0 && n > 0 {
			if err := s.canceled(); err != nil {
				f.Close()
				return err
			}
		}
		before := cap(s.scratch)
		data, err := s.codec.EncodeTo(s.scratch[:0], it)
		if err != nil {
			f.Close()
			return fmt.Errorf("sortx: encode: %w", err)
		}
		s.scratch = data
		if cap(data) == before && before > 0 {
			s.stats.AllocsSaved++
		}
		n := binary.PutUvarint(lenBuf[:], uint64(len(data)))
		if _, err := w.Write(lenBuf[:n]); err != nil {
			f.Close()
			return fmt.Errorf("sortx: write run: %w", err)
		}
		if _, err := w.Write(data); err != nil {
			f.Close()
			return fmt.Errorf("sortx: write run: %w", err)
		}
		s.stats.SpilledBytes += int64(n + len(data))
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("sortx: flush run: %w", err)
	}
	s.stats.Runs++
	s.stats.SpilledItems += int64(len(s.buf))
	s.buf = s.buf[:0]
	s.runs = append(s.runs, f)
	return nil
}

// Iterator yields sorted items. Close releases spill files; it is safe to
// call multiple times.
type Iterator[T any] struct {
	next  func() (T, bool, error)
	close func()
}

// Next returns the next item in order; ok is false at the end.
//
// Ownership: the returned item is only guaranteed valid until the
// following Next call — items read back from spill runs may alias a
// reused read buffer. Callers that retain an item across Next must copy
// whatever it references.
func (it *Iterator[T]) Next() (item T, ok bool, err error) { return it.next() }

// Close releases resources.
func (it *Iterator[T]) Close() {
	if it.close != nil {
		it.close()
		it.close = nil
	}
}

// Iterate finalizes the sorter and returns an iterator over all items in
// sorted order. The sorter cannot be reused afterwards.
func (s *Sorter[T]) Iterate() (*Iterator[T], error) {
	if s.done {
		return nil, fmt.Errorf("sortx: Iterate called twice")
	}
	s.done = true
	if err := s.canceled(); err != nil {
		s.closeRuns()
		return nil, err
	}
	slices.SortStableFunc(s.buf, s.cmp)
	if len(s.runs) == 0 {
		i := 0
		buf := s.buf
		return &Iterator[T]{
			next: func() (T, bool, error) {
				var zero T
				if i >= len(buf) {
					return zero, false, nil
				}
				v := buf[i]
				i++
				return v, true, nil
			},
			close: func() {},
		}, nil
	}
	// Merge spilled runs plus the residual in-memory buffer.
	var sources []*runReader[T]
	for _, f := range s.runs {
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			s.closeRuns()
			return nil, fmt.Errorf("sortx: rewind run: %w", err)
		}
		sources = append(sources, &runReader[T]{r: bufio.NewReaderSize(f, 1<<16), codec: s.codec, stats: &s.stats})
	}
	if len(s.buf) > 0 {
		sources = append(sources, &runReader[T]{mem: s.buf, codec: s.codec, stats: &s.stats})
	}
	h := &mergeHeap[T]{cmp: s.cmp}
	for i, src := range sources {
		item, ok, err := src.next()
		if err != nil {
			s.closeRuns()
			return nil, err
		}
		if ok {
			h.entries = append(h.entries, mergeEntry[T]{item: item, src: i})
		}
	}
	heap.Init(h)
	// The heap top is refilled lazily, on the Next call AFTER its item was
	// handed out: refilling reads the source's next record into the reused
	// run buffer, which would corrupt an aliasing item that the caller is
	// still looking at.
	pending := -1
	sinceCheck := 0
	return &Iterator[T]{
		next: func() (T, bool, error) {
			var zero T
			// Merge-loop cancellation check, counter-strided so the per-
			// item cost stays one increment on the uncancelled path.
			if sinceCheck++; sinceCheck >= cancelCheckInterval {
				sinceCheck = 0
				if err := s.canceled(); err != nil {
					return zero, false, err
				}
			}
			if pending >= 0 {
				item, ok, err := sources[pending].next()
				if err != nil {
					return zero, false, err
				}
				if ok {
					h.entries[0] = mergeEntry[T]{item: item, src: pending}
					heap.Fix(h, 0)
				} else {
					heap.Pop(h)
				}
				pending = -1
			}
			if h.Len() == 0 {
				return zero, false, nil
			}
			top := h.entries[0]
			pending = top.src
			return top.item, true, nil
		},
		close: s.closeRuns,
	}, nil
}

func (s *Sorter[T]) closeRuns() {
	for _, f := range s.runs {
		f.Close()
	}
	s.runs = nil
}

// Close releases the sorter's resources without iterating: buffered
// items are dropped and spill-run descriptors closed, reclaiming their
// (already unlinked) disk space. It is the error/cancel teardown hook —
// on the happy path the Iterator's Close releases the runs instead.
// Idempotent, and safe after Iterate (the runs slice is then owned by
// the iterator's close, which this call re-runs harmlessly).
func (s *Sorter[T]) Close() {
	s.closeRuns()
	s.buf = nil
	s.done = true
}

type runReader[T any] struct {
	r     *bufio.Reader
	mem   []T
	codec Codec[T]
	buf   []byte
	stats *Stats
}

func (rr *runReader[T]) next() (T, bool, error) {
	var zero T
	if rr.r == nil {
		if len(rr.mem) == 0 {
			return zero, false, nil
		}
		v := rr.mem[0]
		rr.mem = rr.mem[1:]
		return v, true, nil
	}
	n, err := binary.ReadUvarint(rr.r)
	if err == io.EOF {
		return zero, false, nil
	}
	if err != nil {
		return zero, false, fmt.Errorf("sortx: read run: %w", err)
	}
	if cap(rr.buf) < int(n) {
		rr.buf = make([]byte, n)
	} else {
		rr.stats.AllocsSaved++
	}
	rr.buf = rr.buf[:n]
	if _, err := io.ReadFull(rr.r, rr.buf); err != nil {
		return zero, false, fmt.Errorf("sortx: read run payload: %w", err)
	}
	item, err := rr.codec.Decode(rr.buf)
	if err != nil {
		return zero, false, fmt.Errorf("sortx: decode: %w", err)
	}
	return item, true, nil
}

type mergeEntry[T any] struct {
	item T
	src  int
}

type mergeHeap[T any] struct {
	entries []mergeEntry[T]
	cmp     func(a, b T) int
}

func (h *mergeHeap[T]) Len() int { return len(h.entries) }
func (h *mergeHeap[T]) Less(i, j int) bool {
	return h.cmp(h.entries[i].item, h.entries[j].item) < 0
}
func (h *mergeHeap[T]) Swap(i, j int) { h.entries[i], h.entries[j] = h.entries[j], h.entries[i] }
func (h *mergeHeap[T]) Push(x any)    { h.entries = append(h.entries, x.(mergeEntry[T])) }
func (h *mergeHeap[T]) Pop() any {
	n := len(h.entries)
	e := h.entries[n-1]
	h.entries = h.entries[:n-1]
	return e
}

// BytesCodec is a pass-through codec for []byte items.
type BytesCodec struct{}

// EncodeTo implements Codec.
func (BytesCodec) EncodeTo(dst, b []byte) ([]byte, error) { return append(dst, b...), nil }

// Decode implements Codec. The returned slice aliases the iterator's read
// buffer (valid until the next item, per Iterator.Next).
func (BytesCodec) Decode(b []byte) ([]byte, error) { return b, nil }
