package dfs

import (
	"bytes"
	"math/rand"
	"testing"
)

func newFS(t *testing.T, cfg Config) *FS {
	t.Helper()
	fs, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestWriteReadRoundTrip(t *testing.T) {
	fs := newFS(t, Config{BlockSize: 100, Replication: 3, NumNodes: 5, Seed: 1})
	rng := rand.New(rand.NewSource(7))
	for _, size := range []int{0, 1, 99, 100, 101, 1000, 12345} {
		data := make([]byte, size)
		rng.Read(data)
		name := "file"
		if err := fs.Write(name, data); err != nil {
			t.Fatal(err)
		}
		got, err := fs.Read(name)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("size %d: round trip mismatch", size)
		}
		sz, err := fs.Size(name)
		if err != nil || sz != int64(size) {
			t.Fatalf("size = %d, %v", sz, err)
		}
	}
}

func TestBlockSplitting(t *testing.T) {
	fs := newFS(t, Config{BlockSize: 100, Replication: 2, NumNodes: 4, Seed: 1})
	data := make([]byte, 250)
	for i := range data {
		data[i] = byte(i)
	}
	if err := fs.Write("f", data); err != nil {
		t.Fatal(err)
	}
	blocks, err := fs.Blocks("f")
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 3 {
		t.Fatalf("blocks = %d, want 3", len(blocks))
	}
	sizes := []int{100, 100, 50}
	for i, b := range blocks {
		if b.Size != sizes[i] || b.Index != i || b.File != "f" {
			t.Errorf("block %d: %+v", i, b)
		}
		if len(b.Replicas) != 2 {
			t.Errorf("block %d: %d replicas", i, len(b.Replicas))
		}
		seen := map[int]bool{}
		for _, r := range b.Replicas {
			if seen[r] {
				t.Errorf("block %d: duplicate replica node %d", i, r)
			}
			seen[r] = true
		}
		chunk, err := fs.ReadBlock("f", i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(chunk, data[i*100:min(250, (i+1)*100)]) {
			t.Errorf("block %d content mismatch", i)
		}
	}
}

func TestEmptyFileHasOneBlock(t *testing.T) {
	fs := newFS(t, Config{BlockSize: 100, NumNodes: 3, Replication: 1, Seed: 1})
	if err := fs.Write("empty", nil); err != nil {
		t.Fatal(err)
	}
	blocks, err := fs.Blocks("empty")
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 1 || blocks[0].Size != 0 {
		t.Fatalf("blocks = %+v", blocks)
	}
}

func TestReplicaFailover(t *testing.T) {
	fs := newFS(t, Config{BlockSize: 1 << 20, Replication: 3, NumNodes: 5, Seed: 2})
	data := []byte("important payload")
	if err := fs.Write("f", data); err != nil {
		t.Fatal(err)
	}
	blocks, _ := fs.Blocks("f")
	reps := blocks[0].Replicas
	// Fail all but one replica: reads still succeed.
	fs.FailNode(reps[0])
	fs.FailNode(reps[1])
	if got, err := fs.Read("f"); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("read with one live replica: %v", err)
	}
	// Fail the last: reads fail.
	fs.FailNode(reps[2])
	if _, err := fs.Read("f"); err == nil {
		t.Fatal("read succeeded with all replicas down")
	}
	// Recover: reads work again.
	fs.RecoverNode(reps[1])
	if got, err := fs.Read("f"); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("read after recovery: %v", err)
	}
}

func TestOverwriteReleasesSpace(t *testing.T) {
	fs := newFS(t, Config{BlockSize: 100, Replication: 2, NumNodes: 4, Seed: 3})
	fs.Write("f", make([]byte, 1000))
	before := int64(0)
	for _, b := range fs.UsedBytes() {
		before += b
	}
	if before != 2000 {
		t.Fatalf("used before = %d, want 2000", before)
	}
	fs.Write("f", make([]byte, 100))
	after := int64(0)
	for _, b := range fs.UsedBytes() {
		after += b
	}
	if after != 200 {
		t.Fatalf("used after overwrite = %d, want 200", after)
	}
	if err := fs.Delete("f"); err != nil {
		t.Fatal(err)
	}
	for n, b := range fs.UsedBytes() {
		if b != 0 {
			t.Errorf("node %d still holds %d bytes after delete", n, b)
		}
	}
}

func TestListAndErrors(t *testing.T) {
	fs := newFS(t, Config{Seed: 4})
	fs.Write("b", []byte("x"))
	fs.Write("a", []byte("y"))
	got := fs.List()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("List = %v", got)
	}
	if _, err := fs.Read("nope"); err == nil {
		t.Error("missing file read succeeded")
	}
	if _, err := fs.Blocks("nope"); err == nil {
		t.Error("missing file blocks succeeded")
	}
	if err := fs.Delete("nope"); err == nil {
		t.Error("missing file delete succeeded")
	}
	if _, err := fs.ReadBlock("a", 5); err == nil {
		t.Error("out-of-range block read succeeded")
	}
	if err := fs.Write("", []byte("x")); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := New(Config{Replication: 5, NumNodes: 3}); err == nil {
		t.Error("replication > nodes accepted")
	}
}

func TestPlacementSpreadsLoad(t *testing.T) {
	fs := newFS(t, Config{BlockSize: 10, Replication: 2, NumNodes: 10, Seed: 5})
	fs.Write("f", make([]byte, 10*200)) // 200 blocks
	used := fs.UsedBytes()
	if len(used) != 10 {
		t.Fatalf("only %d nodes used", len(used))
	}
	for n, b := range used {
		// 400 replica-blocks over 10 nodes: expect ~40 blocks = 400 bytes
		// per node; allow generous slack.
		if b < 200 || b > 700 {
			t.Errorf("node %d holds %d bytes; placement is unbalanced", n, b)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
