// Package dfs is an in-process stand-in for the distributed file system
// under the paper's Hadoop deployment: files are split into fixed-size
// blocks, each block is replicated on several storage nodes ("the system
// maintains three replicas of each file, for fault tolerance"), and
// readers can locate replicas to schedule computation near the data.
//
// The store is deliberately simple — byte blocks in memory, per node — but
// it preserves the properties the evaluation depends on: block-granular
// input splits for the mappers, replica placement for locality and failure
// injection, and per-node usage accounting for the cost model.
package dfs

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
)

// Config parameterizes a file system.
type Config struct {
	// BlockSize is the split size in bytes. Default 4 MiB.
	BlockSize int
	// Replication is the number of replicas per block. Default 3.
	Replication int
	// NumNodes is the number of storage nodes. Default 10.
	NumNodes int
	// Seed drives replica placement; runs are deterministic per seed.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.BlockSize <= 0 {
		c.BlockSize = 4 << 20
	}
	if c.Replication <= 0 {
		c.Replication = 3
	}
	if c.NumNodes <= 0 {
		c.NumNodes = 10
	}
	return c
}

// BlockInfo describes one block of a file.
type BlockInfo struct {
	File     string
	Index    int
	Size     int
	Replicas []int // node IDs holding a copy, in placement order
}

type blockData struct {
	info BlockInfo
	data []byte // shared backing; per-node copies would triple memory for nothing
}

type file struct {
	blocks []*blockData
	size   int
}

// FS is an in-process replicated block store. All methods are safe for
// concurrent use.
type FS struct {
	mu    sync.RWMutex
	cfg   Config
	rng   *rand.Rand
	files map[string]*file
	down  map[int]bool  // failed nodes
	used  map[int]int64 // bytes per node
}

// New returns an empty file system.
func New(cfg Config) (*FS, error) {
	cfg = cfg.withDefaults()
	if cfg.Replication > cfg.NumNodes {
		return nil, fmt.Errorf("dfs: replication %d exceeds node count %d", cfg.Replication, cfg.NumNodes)
	}
	return &FS{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		files: make(map[string]*file),
		down:  make(map[int]bool),
		used:  make(map[int]int64),
	}, nil
}

// Config returns the file system's configuration (with defaults applied).
func (fs *FS) Config() Config { return fs.cfg }

// Write stores data under name, splitting it into blocks and placing
// replicas on distinct random nodes. An existing file is replaced.
func (fs *FS) Write(name string, data []byte) error {
	if name == "" {
		return fmt.Errorf("dfs: empty file name")
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if old, ok := fs.files[name]; ok {
		fs.release(old)
	}
	f := &file{size: len(data)}
	for off, idx := 0, 0; off < len(data) || idx == 0; idx++ {
		end := off + fs.cfg.BlockSize
		if end > len(data) {
			end = len(data)
		}
		chunk := append([]byte(nil), data[off:end]...)
		replicas := fs.placeReplicas()
		for _, n := range replicas {
			fs.used[n] += int64(len(chunk))
		}
		f.blocks = append(f.blocks, &blockData{
			info: BlockInfo{File: name, Index: idx, Size: len(chunk), Replicas: replicas},
			data: chunk,
		})
		off = end
		if off >= len(data) {
			break
		}
	}
	fs.files[name] = f
	return nil
}

// placeReplicas picks Replication distinct nodes, preferring live ones.
func (fs *FS) placeReplicas() []int {
	perm := fs.rng.Perm(fs.cfg.NumNodes)
	out := make([]int, 0, fs.cfg.Replication)
	for _, n := range perm {
		if fs.down[n] {
			continue
		}
		out = append(out, n)
		if len(out) == fs.cfg.Replication {
			return out
		}
	}
	// Not enough live nodes: fall back to failed ones so writes still
	// succeed (reads will fail until recovery, as with a real DFS in
	// degraded mode).
	for _, n := range perm {
		if fs.down[n] {
			out = append(out, n)
			if len(out) == fs.cfg.Replication {
				break
			}
		}
	}
	return out
}

func (fs *FS) release(f *file) {
	for _, b := range f.blocks {
		for _, n := range b.info.Replicas {
			fs.used[n] -= int64(b.info.Size)
		}
	}
}

// Read returns the whole file contents.
func (fs *FS) Read(name string) ([]byte, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	f, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("dfs: file %q not found", name)
	}
	out := make([]byte, 0, f.size)
	for _, b := range f.blocks {
		data, err := fs.readBlockLocked(b)
		if err != nil {
			return nil, err
		}
		out = append(out, data...)
	}
	return out, nil
}

func (fs *FS) readBlockLocked(b *blockData) ([]byte, error) {
	for _, n := range b.info.Replicas {
		if !fs.down[n] {
			return b.data, nil
		}
	}
	return nil, fmt.Errorf("dfs: block %d of %q unavailable: all %d replicas on failed nodes",
		b.info.Index, b.info.File, len(b.info.Replicas))
}

// Blocks lists the block metadata of a file, for split planning.
func (fs *FS) Blocks(name string) ([]BlockInfo, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	f, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("dfs: file %q not found", name)
	}
	out := make([]BlockInfo, len(f.blocks))
	for i, b := range f.blocks {
		info := b.info
		info.Replicas = append([]int(nil), b.info.Replicas...)
		out[i] = info
	}
	return out, nil
}

// ReadBlock returns one block's contents from any live replica.
func (fs *FS) ReadBlock(name string, index int) ([]byte, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	f, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("dfs: file %q not found", name)
	}
	if index < 0 || index >= len(f.blocks) {
		return nil, fmt.Errorf("dfs: block %d of %q out of range [0,%d)", index, name, len(f.blocks))
	}
	return fs.readBlockLocked(f.blocks[index])
}

// Delete removes a file.
func (fs *FS) Delete(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok {
		return fmt.Errorf("dfs: file %q not found", name)
	}
	fs.release(f)
	delete(fs.files, name)
	return nil
}

// List returns the file names in sorted order.
func (fs *FS) List() []string {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	out := make([]string, 0, len(fs.files))
	for n := range fs.files {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Size returns a file's size in bytes.
func (fs *FS) Size(name string) (int64, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	f, ok := fs.files[name]
	if !ok {
		return 0, fmt.Errorf("dfs: file %q not found", name)
	}
	return int64(f.size), nil
}

// FailNode marks a storage node as failed; its replicas become
// unreadable until RecoverNode.
func (fs *FS) FailNode(id int) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.down[id] = true
}

// RecoverNode brings a failed node back.
func (fs *FS) RecoverNode(id int) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	delete(fs.down, id)
}

// UsedBytes reports the bytes stored per node (replicas included).
func (fs *FS) UsedBytes() map[int]int64 {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	out := make(map[int]int64, len(fs.used))
	for n, b := range fs.used {
		if b != 0 {
			out[n] = b
		}
	}
	return out
}
