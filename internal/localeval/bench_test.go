package localeval

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/casm-project/casm/internal/cube"
	"github.com/casm-project/casm/internal/measure"
	"github.com/casm-project/casm/internal/workflow"
)

// benchEvaluator builds the workflow the benchmarks run: two basics at
// the minute grain, an hour-level basic, a self ratio and a rollup —
// optionally plus a sliding window, the probe-heaviest measure kind.
func benchEvaluator(tb testing.TB, withWindow bool) *Evaluator {
	tb.Helper()
	s := testSchema(tb)
	w := workflow.New(s)
	gMin := s.MustGrain(cube.GrainSpec{Attr: "k", Level: "word"}, cube.GrainSpec{Attr: "t", Level: "minute"})
	gHour := s.MustGrain(cube.GrainSpec{Attr: "k", Level: "word"}, cube.GrainSpec{Attr: "t", Level: "hour"})
	ti, _ := s.AttrIndex("t")
	must := func(err error) {
		tb.Helper()
		if err != nil {
			tb.Fatal(err)
		}
	}
	must(w.AddBasic("sum", gMin, measure.Spec{Func: measure.Sum}, "v"))
	must(w.AddBasic("cnt", gMin, measure.Spec{Func: measure.Count}, ""))
	must(w.AddBasic("hourly", gHour, measure.Spec{Func: measure.Sum}, "v"))
	must(w.AddSelf("ratio", gMin, measure.Ratio(), "sum", "hourly"))
	must(w.AddRollup("peak", gHour, measure.Spec{Func: measure.Max}, "sum"))
	if withWindow {
		must(w.AddSliding("mov", gMin, measure.Spec{Func: measure.Sum}, "sum",
			workflow.RangeAnn{Attr: ti, Low: -3, High: 0}))
	}
	e, err := New(w)
	if err != nil {
		tb.Fatal(err)
	}
	return e
}

// benchBlock generates one block of n records over 10 keys and 4 hours.
// Clustered blocks arrive pre-sorted (the combined-key delivery order);
// shuffled blocks arrive in random order and pay the in-block sort.
func benchBlock(n int, clustered bool) []cube.Record {
	rng := rand.New(rand.NewSource(42))
	records := make([]cube.Record, n)
	for i := range records {
		records[i] = rec(rng.Int63n(10), rng.Int63n(1000), rng.Int63n(4*3600))
	}
	if clustered {
		SortRecords(records)
	}
	return records
}

// BenchmarkEvaluate measures one session evaluating a 4096-record block,
// the reduce-side inner loop. Run with -benchmem: steady-state allocs/op
// stay proportional to the distinct region count (~2.4k here), not the
// record count.
func BenchmarkEvaluate(b *testing.B) {
	for _, win := range []struct {
		name string
		on   bool
	}{{"plain", false}, {"window", true}} {
		e := benchEvaluator(b, win.on)
		for _, layout := range []struct {
			name      string
			clustered bool
		}{{"clustered", true}, {"shuffled", false}} {
			records := benchBlock(4096, layout.clustered)
			b.Run(fmt.Sprintf("%s/%s", win.name, layout.name), func(b *testing.B) {
				ss := e.NewSession()
				run := func() {
					for _, r := range records {
						ss.AppendRecord(r)
					}
					if _, _, err := ss.EvaluateBlock(Options{SkipSort: layout.clustered}); err != nil {
						b.Fatal(err)
					}
				}
				run() // warm the arena, maps, and aggregator pool
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					run()
				}
			})
		}
	}
}

// TestEvaluateAllocsIndependentOfRecordCount pins the headline property
// of the arena session: with the region set held fixed, a warmed session
// allocates the same amount per block whether the block has 2k or 20k
// records — steady-state allocations are O(regions), not O(records).
func TestEvaluateAllocsIndependentOfRecordCount(t *testing.T) {
	e := benchEvaluator(t, true)
	ss := e.NewSession()
	// i mod 10 and i mod 120 lock every block onto the same 120 (k,
	// minute) regions regardless of length.
	load := func(n int) {
		for i := 0; i < n; i++ {
			ss.AppendRecord(rec(int64(i%10), int64(i%1000), int64((i%120)*60)))
		}
	}
	perBlock := func(n int) float64 {
		return testing.AllocsPerRun(10, func() {
			load(n)
			if _, _, err := ss.EvaluateBlock(Options{}); err != nil {
				t.Fatal(err)
			}
		})
	}
	perBlock(20_000) // warm at the largest size first
	small := perBlock(2_000)
	large := perBlock(20_000)
	if large > small*1.5+16 {
		t.Errorf("allocs grew with record count: %.0f allocs at 2k records, %.0f at 20k", small, large)
	}
	t.Logf("allocs/block: %.0f at 2k records, %.0f at 20k", small, large)
}
