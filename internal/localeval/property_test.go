package localeval

import (
	"fmt"
	"math"
	"math/rand"
	"slices"
	"testing"

	"github.com/casm-project/casm/internal/cube"
	"github.com/casm-project/casm/internal/measure"
	"github.com/casm-project/casm/internal/workflow"
)

// randomLocalWorkflow builds a random but valid workflow over testSchema:
// 1–3 basics at random grains plus 0–4 composites. Rollup aggregates are
// restricted to order-independent functions (count/min/max): rollups fold
// their source regions in map-iteration order, so order-sensitive float
// sums could differ in the last bit between two correct evaluators, and
// these tests demand byte-identical output.
func randomLocalWorkflow(t *testing.T, s *cube.Schema, rng *rand.Rand) *workflow.Workflow {
	t.Helper()
	w := workflow.New(s)
	randGrain := func() cube.Grain {
		g := make(cube.Grain, s.NumAttrs())
		for i := range g {
			n := s.Attr(i).NumLevels()
			g[i] = n - 1 - rng.Intn(2)
			if rng.Intn(4) == 0 {
				g[i] = rng.Intn(n)
			}
		}
		return g
	}
	aggs := []measure.Spec{
		{Func: measure.Sum}, {Func: measure.Count}, {Func: measure.Avg},
		{Func: measure.Min}, {Func: measure.Max}, {Func: measure.Median},
		{Func: measure.StdDev}, {Func: measure.Quantile, Arg: 0.75},
	}
	stableAggs := []measure.Spec{
		{Func: measure.Count}, {Func: measure.Min}, {Func: measure.Max},
	}
	inputs := []string{"v", "k", ""}

	nBasics := 1 + rng.Intn(3)
	var names []string
	for i := 0; i < nBasics; i++ {
		name := fmt.Sprintf("b%d", i)
		agg := aggs[rng.Intn(len(aggs))]
		in := inputs[rng.Intn(len(inputs))]
		if in == "" {
			agg = measure.Spec{Func: measure.Count}
		}
		if err := w.AddBasic(name, randGrain(), agg, in); err != nil {
			t.Fatalf("basic: %v", err)
		}
		names = append(names, name)
	}

	nComposites := rng.Intn(5)
	for i := 0; i < nComposites; i++ {
		name := fmt.Sprintf("c%d", i)
		src := names[rng.Intn(len(names))]
		sm, _ := w.Measure(src)
		var err error
		switch rng.Intn(4) {
		case 0: // self over 1–2 sources at the meet of their grains
			src2 := names[rng.Intn(len(names))]
			sm2, _ := w.Measure(src2)
			grain := s.Meet(sm.Grain, sm2.Grain)
			if rng.Intn(2) == 0 {
				err = w.AddSelf(name, grain, measure.Ratio(), src, src2)
			} else {
				err = w.AddSelf(name, grain, measure.Add(), src, src2)
			}
		case 1: // rollup to a strictly coarser grain
			grain := sm.Grain.Clone()
			coarsened := false
			for a := range grain {
				if grain[a] < s.Attr(a).AllIndex() && rng.Intn(2) == 0 {
					grain[a] = s.Attr(a).AllIndex()
					coarsened = true
				}
			}
			if !coarsened {
				for a := range grain {
					if grain[a] < s.Attr(a).AllIndex() {
						grain[a]++
						coarsened = true
						break
					}
				}
			}
			if !coarsened {
				continue
			}
			err = w.AddRollup(name, grain, stableAggs[rng.Intn(len(stableAggs))], src)
		case 2: // inherit to a strictly finer grain
			grain := sm.Grain.Clone()
			refined := false
			for a := range grain {
				if grain[a] > 0 {
					grain[a] = rng.Intn(grain[a])
					refined = true
					break
				}
			}
			if !refined {
				continue
			}
			err = w.AddInherit(name, grain, src)
		default: // sliding window over an ordered, non-ALL attribute
			var attrs []int
			for a := 0; a < s.NumAttrs(); a++ {
				if s.Attr(a).Kind() != cube.Nominal && sm.Grain[a] != s.Attr(a).AllIndex() {
					attrs = append(attrs, a)
				}
			}
			if len(attrs) == 0 {
				continue
			}
			a := attrs[rng.Intn(len(attrs))]
			low := -int64(rng.Intn(6))
			high := low + int64(rng.Intn(5))
			if high > 3 {
				high = 3
			}
			err = w.AddSliding(name, sm.Grain, measure.Spec{Func: measure.Sum}, src,
				workflow.RangeAnn{Attr: a, Low: low, High: high})
		}
		if err != nil {
			t.Fatalf("composite %d: %v", i, err)
		}
		names = append(names, name)
	}
	return w
}

func randomRecords(rng *rand.Rand, n int) []cube.Record {
	records := make([]cube.Record, n)
	for i := range records {
		records[i] = rec(rng.Int63n(10), rng.Int63n(1000), rng.Int63n(2*86400))
	}
	return records
}

func cloneRecords(records []cube.Record) []cube.Record {
	out := make([]cube.Record, len(records))
	for i, r := range records {
		out[i] = r.Clone()
	}
	return out
}

// sameResults demands byte-identical output: same element order, same
// measure names, same coordinates, same float bits.
func sameResults(t *testing.T, label string, want, got []Result) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d results, reference has %d", label, len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if w.Measure != g.Measure ||
			!slices.Equal(w.Region.Grain, g.Region.Grain) ||
			!slices.Equal(w.Region.Coord, g.Region.Coord) ||
			math.Float64bits(w.Value) != math.Float64bits(g.Value) {
			t.Fatalf("%s: result %d differs\nwant %s %v = %x\ngot  %s %v = %x",
				label, i,
				w.Measure, w.Region.Coord, math.Float64bits(w.Value),
				g.Measure, g.Region.Coord, math.Float64bits(g.Value))
		}
	}
}

// TestSessionMatchesReferenceByteIdentical is the arena evaluator's
// equivalence property: across random workflows, one Session reused over
// many blocks must reproduce the seed evaluator's output bit for bit
// under every scan mode and sort option.
func TestSessionMatchesReferenceByteIdentical(t *testing.T) {
	s := testSchema(t)
	seeds := 30
	if testing.Short() {
		seeds = 8
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(4000 + seed)))
			w := randomLocalWorkflow(t, s, rng)
			e, err := New(w)
			if err != nil {
				t.Fatal(err)
			}
			ss := e.NewSession() // one session across every block below
			for blk := 0; blk < 3; blk++ {
				records := randomRecords(rng, 50+rng.Intn(250))
				for _, opt := range []Options{
					{Scan: HashScan},
					{Scan: HashScan, SkipSort: true},
					{Scan: ChainScan},
				} {
					label := fmt.Sprintf("block %d scan=%v skip=%v", blk, opt.Scan, opt.SkipSort)
					want, refStats := refEvaluate(t, e, cloneRecords(records), opt)
					for _, r := range records {
						ss.AppendRecord(r)
					}
					got, stats, err := ss.EvaluateBlock(opt)
					if err != nil {
						t.Fatal(err)
					}
					sameResults(t, label, want, got)
					if stats.ScannedRecords != int64(len(records)) {
						t.Fatalf("%s: scanned %d, want %d", label, stats.ScannedRecords, len(records))
					}
					if stats.SortedItems != refStats.SortedItems {
						t.Fatalf("%s: sorted %d, reference sorted %d", label, stats.SortedItems, refStats.SortedItems)
					}
				}
			}
		})
	}
}

// TestSessionFromBasicsMatchesReference repeats the equivalence property
// on the early-aggregation entry point, with the session reused across
// calls and input aggregators rebuilt per run (both implementations take
// ownership of them).
func TestSessionFromBasicsMatchesReference(t *testing.T) {
	s := testSchema(t)
	gMin := s.MustGrain(cube.GrainSpec{Attr: "k", Level: "word"}, cube.GrainSpec{Attr: "t", Level: "minute"})
	gHour := s.MustGrain(cube.GrainSpec{Attr: "k", Level: "word"}, cube.GrainSpec{Attr: "t", Level: "hour"})
	ti, _ := s.AttrIndex("t")
	vi, _ := s.AttrIndex("v")
	for seed := 0; seed < 10; seed++ {
		rng := rand.New(rand.NewSource(int64(5000 + seed)))
		w := workflow.New(s)
		must := func(err error) {
			t.Helper()
			if err != nil {
				t.Fatal(err)
			}
		}
		must(w.AddBasic("b1", gMin, measure.Spec{Func: measure.Sum}, "v"))
		must(w.AddBasic("b2", gHour, measure.Spec{Func: measure.Avg}, "v"))
		must(w.AddSelf("r", gMin, measure.Ratio(), "b1", "b2"))
		must(w.AddRollup("roll", gHour, measure.Spec{Func: measure.Max}, "b1"))
		must(w.AddSliding("mov", gMin, measure.Spec{Func: measure.Sum}, "b1",
			workflow.RangeAnn{Attr: ti, Low: -int64(1 + rng.Intn(3)), High: 0}))
		e, err := New(w)
		if err != nil {
			t.Fatal(err)
		}
		records := randomRecords(rng, 200+rng.Intn(400))

		// buildBasics partially aggregates 3 simulated mapper shards into
		// fresh aggregator instances, in deterministic group order.
		buildBasics := func() map[string][]BasicGroup {
			basics := map[string][]BasicGroup{}
			grains := []struct {
				name string
				g    cube.Grain
				spec measure.Spec
			}{
				{"b1", gMin, measure.Spec{Func: measure.Sum}},
				{"b2", gHour, measure.Spec{Func: measure.Avg}},
			}
			for shard := 0; shard < 3; shard++ {
				for _, gr := range grains {
					idx := map[string]int{}
					var groups []BasicGroup
					for i, r := range records {
						if i%3 != shard {
							continue
						}
						reg := s.RegionOf(r, gr.g)
						k := reg.Key()
						gi, ok := idx[k]
						if !ok {
							gi = len(groups)
							idx[k] = gi
							groups = append(groups, BasicGroup{Coords: reg.Coord, Agg: gr.spec.New()})
						}
						groups[gi].Agg.Add(float64(r[vi]))
					}
					basics[gr.name] = append(basics[gr.name], groups...)
				}
			}
			return basics
		}

		ss := e.NewSession()
		for round := 0; round < 2; round++ { // session reuse across calls
			want, _ := refEvaluateFromBasics(t, e, buildBasics())
			got, _, err := ss.EvaluateFromBasics(buildBasics())
			if err != nil {
				t.Fatal(err)
			}
			sameResults(t, fmt.Sprintf("seed %d round %d", seed, round), want, got)
		}
	}
}

// TestWindowScanDomainBound pins the sliding-window probe bound: sibling
// coordinates past the annotated attribute's domain (here the last minute
// of the 2-day time attribute) are skipped without a lookup, while the
// seed evaluator probed them uselessly. Results must be unaffected.
func TestWindowScanDomainBound(t *testing.T) {
	s := testSchema(t)
	w := workflow.New(s)
	gMin := s.MustGrain(cube.GrainSpec{Attr: "t", Level: "minute"})
	ti, _ := s.AttrIndex("t")
	if err := w.AddBasic("perMin", gMin, measure.Spec{Func: measure.Sum}, "v"); err != nil {
		t.Fatal(err)
	}
	if err := w.AddSliding("mov", gMin, measure.Spec{Func: measure.Sum}, "perMin",
		workflow.RangeAnn{Attr: ti, Low: -1, High: 2}); err != nil {
		t.Fatal(err)
	}
	e, err := New(w)
	if err != nil {
		t.Fatal(err)
	}
	lastMinute := int64(2*1440 - 1) // domain: minutes 0..2879
	records := []cube.Record{rec(0, 10, 0), rec(0, 20, lastMinute * 60)}

	got, stats, err := e.Evaluate(cloneRecords(records), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Minute 0 probes {0,1,2} (offset -1 below domain); minute 2879 probes
	// {2878,2879} (offsets +1,+2 past the domain edge are skipped).
	if stats.WindowLookups != 5 {
		t.Errorf("WindowLookups = %d, want 5 (domain-bounded)", stats.WindowLookups)
	}
	want, refStats := refEvaluate(t, e, cloneRecords(records), Options{})
	if refStats.WindowLookups != 7 {
		t.Errorf("reference WindowLookups = %d, want 7 (probes past the edge)", refStats.WindowLookups)
	}
	sameResults(t, "window edge", want, got)
}
