package localeval

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"github.com/casm-project/casm/internal/cube"
	"github.com/casm-project/casm/internal/measure"
	"github.com/casm-project/casm/internal/workflow"
)

// This file is a faithful port of the pre-arena ("seed") evaluator: one
// allocation-heavy pass with string-keyed maps built from scratch on
// every call. The property tests pin the Session implementation to it
// byte for byte, so any behavioural drift in the arena/columnar rewrite
// shows up as a float-bit or region-set diff.

type refRegionIndex struct {
	coords map[string][]int64
}

type refMeasureState struct {
	values map[string]float64
}

func refEvaluate(t *testing.T, e *Evaluator, records []cube.Record, opt Options) ([]Result, Stats) {
	t.Helper()
	var stats Stats
	occupancy := make([]refRegionIndex, len(e.grains))
	for i := range occupancy {
		occupancy[i] = refRegionIndex{coords: make(map[string][]int64)}
	}
	basicAggs := make(map[string]map[string]measure.Aggregator)
	if opt.Scan == ChainScan {
		refScanChain(e, records, occupancy, basicAggs, &stats)
	} else {
		refScanHash(e, records, opt, occupancy, basicAggs, &stats)
	}
	out, err := refFinish(e, occupancy, basicAggs, &stats)
	if err != nil {
		t.Fatal(err)
	}
	return out, stats
}

func refScanHash(e *Evaluator, records []cube.Record, opt Options, occupancy []refRegionIndex, basicAggs map[string]map[string]measure.Aggregator, stats *Stats) {
	s := e.schema
	if !opt.SkipSort {
		SortRecords(records)
		stats.SortedItems = int64(len(records))
	}
	type basicAgg struct {
		m    *workflow.Measure
		aggs map[string]measure.Aggregator
		gi   int
	}
	var basics []*basicAgg
	for oi, m := range e.order {
		if m.Kind == workflow.Basic {
			aggs := make(map[string]measure.Aggregator)
			basicAggs[m.Name] = aggs
			basics = append(basics, &basicAgg{m: m, aggs: aggs, gi: e.gidxOf[oi]})
		}
	}
	coord := make([]int64, s.NumAttrs())
	keys := make([]string, len(e.grains))
	for _, rec := range records {
		stats.ScannedRecords++
		for gi, g := range e.grains {
			s.CoordOf(rec, g, coord)
			k := cube.EncodeCoords(coord)
			keys[gi] = k
			if _, ok := occupancy[gi].coords[k]; !ok {
				occupancy[gi].coords[k] = append([]int64(nil), coord...)
			}
		}
		for _, b := range basics {
			k := keys[b.gi]
			agg, ok := b.aggs[k]
			if !ok {
				agg = b.m.Agg.New()
				b.aggs[k] = agg
			}
			if b.m.InputAttr >= 0 {
				agg.Add(float64(rec[b.m.InputAttr]))
			} else {
				agg.Add(0)
			}
		}
	}
}

type refChainState struct {
	gi     int
	grain  cube.Grain
	open   bool
	coords []int64
	basics []*refChainBasic
	occ    *refRegionIndex
}

type refChainBasic struct {
	m    *workflow.Measure
	aggs map[string]measure.Aggregator
	cur  measure.Aggregator
}

func (cs *refChainState) boundary(coords []int64) bool {
	if !cs.open {
		return true
	}
	for i, c := range coords {
		if cs.coords[i] != c {
			return true
		}
	}
	return false
}

func (cs *refChainState) flush() {
	if !cs.open {
		return
	}
	k := cube.EncodeCoords(cs.coords)
	if _, seen := cs.occ.coords[k]; !seen {
		cs.occ.coords[k] = append([]int64(nil), cs.coords...)
	}
	for _, b := range cs.basics {
		if b.cur != nil {
			b.aggs[k] = b.cur
			b.cur = nil
		}
	}
	cs.open = false
}

func (cs *refChainState) openGroup(coords []int64) {
	copy(cs.coords, coords)
	cs.open = true
	for _, b := range cs.basics {
		b.cur = b.m.Agg.New()
	}
}

func refScanChain(e *Evaluator, records []cube.Record, occupancy []refRegionIndex, basicAggs map[string]map[string]measure.Aggregator, stats *Stats) {
	s := e.schema
	perm := chainPermutation(s, e.grains)
	sort.Slice(records, func(i, j int) bool {
		a, b := records[i], records[j]
		for _, k := range perm {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	stats.SortedItems = int64(len(records))

	basicsByGrain := make([][]*workflow.Measure, len(e.grains))
	for oi, m := range e.order {
		if m.Kind == workflow.Basic {
			basicAggs[m.Name] = make(map[string]measure.Aggregator)
			basicsByGrain[e.gidxOf[oi]] = append(basicsByGrain[e.gidxOf[oi]], m)
		}
	}
	var chains []*refChainState
	var hashed []int
	for gi, g := range e.grains {
		if chainCompatible(s, g, perm) {
			cs := &refChainState{gi: gi, grain: g, coords: make([]int64, s.NumAttrs()), occ: &occupancy[gi]}
			for _, m := range basicsByGrain[gi] {
				cs.basics = append(cs.basics, &refChainBasic{m: m, aggs: basicAggs[m.Name]})
			}
			chains = append(chains, cs)
		} else {
			hashed = append(hashed, gi)
		}
	}

	coord := make([]int64, s.NumAttrs())
	for _, rec := range records {
		stats.ScannedRecords++
		for _, cs := range chains {
			s.CoordOf(rec, cs.grain, coord)
			if cs.boundary(coord) {
				cs.flush()
				cs.openGroup(coord)
			}
			for _, b := range cs.basics {
				if b.m.InputAttr >= 0 {
					b.cur.Add(float64(rec[b.m.InputAttr]))
				} else {
					b.cur.Add(0)
				}
			}
		}
		for _, gi := range hashed {
			g := e.grains[gi]
			s.CoordOf(rec, g, coord)
			k := cube.EncodeCoords(coord)
			if _, ok := occupancy[gi].coords[k]; !ok {
				occupancy[gi].coords[k] = append([]int64(nil), coord...)
			}
			for _, m := range basicsByGrain[gi] {
				aggs := basicAggs[m.Name]
				agg, ok := aggs[k]
				if !ok {
					agg = m.Agg.New()
					aggs[k] = agg
				}
				if m.InputAttr >= 0 {
					agg.Add(float64(rec[m.InputAttr]))
				} else {
					agg.Add(0)
				}
			}
		}
	}
	for _, cs := range chains {
		cs.flush()
	}
}

func refEvaluateFromBasics(t *testing.T, e *Evaluator, basics map[string][]BasicGroup) ([]Result, Stats) {
	t.Helper()
	var stats Stats
	if err := e.SupportsEarlyAggregation(); err != nil {
		t.Fatal(err)
	}
	s := e.schema
	occupancy := make([]refRegionIndex, len(e.grains))
	for i := range occupancy {
		occupancy[i] = refRegionIndex{coords: make(map[string][]int64)}
	}
	basicAggs := make(map[string]map[string]measure.Aggregator, len(basics))
	for _, m := range e.order {
		if m.Kind != workflow.Basic {
			continue
		}
		groups, ok := basics[m.Name]
		if !ok {
			t.Fatalf("missing basic %q", m.Name)
		}
		aggs := make(map[string]measure.Aggregator, len(groups))
		basicAggs[m.Name] = aggs
		coord := make([]int64, s.NumAttrs())
		for _, g := range groups {
			k := cube.EncodeCoords(g.Coords)
			if prev, dup := aggs[k]; dup {
				if err := prev.MergeState(g.Agg.State()); err != nil {
					t.Fatal(err)
				}
			} else {
				aggs[k] = g.Agg
			}
			for gi, grain := range e.grains {
				if !grain.GeneralizationOf(m.Grain) {
					continue
				}
				for i := range coord {
					coord[i] = s.Attr(i).RollBetween(g.Coords[i], m.Grain[i], grain[i])
				}
				ck := cube.EncodeCoords(coord)
				if _, seen := occupancy[gi].coords[ck]; !seen {
					occupancy[gi].coords[ck] = append([]int64(nil), coord...)
				}
			}
		}
	}
	out, err := refFinish(e, occupancy, basicAggs, &stats)
	if err != nil {
		t.Fatal(err)
	}
	return out, stats
}

func refFinish(e *Evaluator, occupancy []refRegionIndex, basicAggs map[string]map[string]measure.Aggregator, stats *Stats) ([]Result, error) {
	states := make(map[string]*refMeasureState, len(e.order))
	for _, m := range e.order {
		st := &refMeasureState{values: make(map[string]float64)}
		states[m.Name] = st
		switch m.Kind {
		case workflow.Basic:
			for k, agg := range basicAggs[m.Name] {
				if v := agg.Result(); !math.IsNaN(v) {
					st.values[k] = v
				}
			}
		case workflow.Self:
			if err := refEvalSelf(e, m, st, states, occupancy); err != nil {
				return nil, err
			}
		case workflow.Inherit:
			if err := refEvalInherit(e, m, st, states, occupancy); err != nil {
				return nil, err
			}
		case workflow.Rollup:
			if err := refEvalRollup(e, m, st, states, occupancy); err != nil {
				return nil, err
			}
		case workflow.Sliding:
			if err := refEvalSliding(e, m, st, states, occupancy, stats); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("unknown kind %v", m.Kind)
		}
	}
	var out []Result
	for _, m := range e.order {
		st := states[m.Name]
		gi := e.grainIndex(m.Grain)
		keys := make([]string, 0, len(st.values))
		for k := range st.values {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			out = append(out, Result{
				Measure: m.Name,
				Region:  cube.Region{Grain: m.Grain, Coord: occupancy[gi].coords[k]},
				Value:   st.values[k],
			})
		}
	}
	stats.Results = int64(len(out))
	return out, nil
}

func refLookupAt(e *Evaluator, src *workflow.Measure, st *refMeasureState, coords []int64, g cube.Grain) (float64, bool) {
	s := e.schema
	buf := make([]int64, len(coords))
	for i := range coords {
		buf[i] = s.Attr(i).RollBetween(coords[i], g[i], src.Grain[i])
	}
	v, ok := st.values[cube.EncodeCoords(buf)]
	return v, ok
}

func refEvalSelf(e *Evaluator, m *workflow.Measure, st *refMeasureState, states map[string]*refMeasureState, occ []refRegionIndex) error {
	gi := e.grainIndex(m.Grain)
	srcs := make([]*workflow.Measure, len(m.Sources))
	for i, name := range m.Sources {
		sm, ok := e.w.Measure(name)
		if !ok {
			return fmt.Errorf("missing source %q", name)
		}
		srcs[i] = sm
	}
	args := make([]float64, len(srcs))
	for k, coords := range occ[gi].coords {
		for i, sm := range srcs {
			v, ok := refLookupAt(e, sm, states[sm.Name], coords, m.Grain)
			if !ok {
				v = math.NaN()
			}
			args[i] = v
		}
		if v := m.Expr.Eval(args); !math.IsNaN(v) {
			st.values[k] = v
		}
	}
	return nil
}

func refEvalInherit(e *Evaluator, m *workflow.Measure, st *refMeasureState, states map[string]*refMeasureState, occ []refRegionIndex) error {
	gi := e.grainIndex(m.Grain)
	sm, ok := e.w.Measure(m.Sources[0])
	if !ok {
		return fmt.Errorf("missing source %q", m.Sources[0])
	}
	for k, coords := range occ[gi].coords {
		if v, ok := refLookupAt(e, sm, states[sm.Name], coords, m.Grain); ok && !math.IsNaN(v) {
			st.values[k] = v
		}
	}
	return nil
}

func refEvalRollup(e *Evaluator, m *workflow.Measure, st *refMeasureState, states map[string]*refMeasureState, occ []refRegionIndex) error {
	s := e.schema
	sm, ok := e.w.Measure(m.Sources[0])
	if !ok {
		return fmt.Errorf("missing source %q", m.Sources[0])
	}
	sgi := e.grainIndex(sm.Grain)
	aggs := make(map[string]measure.Aggregator)
	parent := make([]int64, s.NumAttrs())
	for k, v := range states[sm.Name].values {
		coords := occ[sgi].coords[k]
		for i := range coords {
			parent[i] = s.Attr(i).RollBetween(coords[i], sm.Grain[i], m.Grain[i])
		}
		pk := cube.EncodeCoords(parent)
		agg, ok := aggs[pk]
		if !ok {
			agg = m.Agg.New()
			aggs[pk] = agg
			gi := e.grainIndex(m.Grain)
			if _, seen := occ[gi].coords[pk]; !seen {
				occ[gi].coords[pk] = append([]int64(nil), parent...)
			}
		}
		agg.Add(v)
	}
	for pk, agg := range aggs {
		if v := agg.Result(); !math.IsNaN(v) {
			st.values[pk] = v
		}
	}
	return nil
}

func refEvalSliding(e *Evaluator, m *workflow.Measure, st *refMeasureState, states map[string]*refMeasureState, occ []refRegionIndex, stats *Stats) error {
	gi := e.grainIndex(m.Grain)
	sm, ok := e.w.Measure(m.Sources[0])
	if !ok {
		return fmt.Errorf("missing source %q", m.Sources[0])
	}
	src := states[sm.Name]
	probe := make([]int64, e.schema.NumAttrs())
	for k, coords := range occ[gi].coords {
		agg := m.Agg.New()
		refWindowScan(m.Window, 0, coords, probe, func() {
			stats.WindowLookups++
			if v, ok := src.values[cube.EncodeCoords(probe)]; ok {
				agg.Add(v)
			}
		})
		if agg.N() == 0 {
			continue
		}
		if v := agg.Result(); !math.IsNaN(v) {
			st.values[k] = v
		}
	}
	return nil
}

// refWindowScan keeps the seed's domain handling: only negative
// coordinates are skipped, so upper-edge regions probe past the domain.
// Results are unchanged by the Session's tighter bound (out-of-domain
// coordinates are never occupied); only WindowLookups differs.
func refWindowScan(window []workflow.RangeAnn, i int, base, probe []int64, visit func()) {
	if i == 0 {
		copy(probe, base)
	}
	if i == len(window) {
		visit()
		return
	}
	ann := window[i]
	for off := ann.Low; off <= ann.High; off++ {
		c := base[ann.Attr] + off
		if c < 0 {
			continue
		}
		probe[ann.Attr] = c
		refWindowScan(window, i+1, base, probe, visit)
	}
	probe[ann.Attr] = base[ann.Attr]
}
