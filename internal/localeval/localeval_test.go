package localeval

import (
	"math"
	"math/rand"
	"testing"

	"github.com/casm-project/casm/internal/cube"
	"github.com/casm-project/casm/internal/measure"
	"github.com/casm-project/casm/internal/workflow"
)

// schema: one nominal key (k), one value attribute (v), one time attribute
// with minute/hour/day hierarchy over 2 days.
func testSchema(t testing.TB) *cube.Schema {
	t.Helper()
	return cube.MustSchema(
		cube.MustAttribute("k", cube.Nominal, 10,
			cube.Level{Name: "word", Span: 1},
			cube.Level{Name: "group", Span: 5},
		),
		cube.MustAttribute("v", cube.Numeric, 1000, cube.Level{Name: "value", Span: 1}),
		cube.TimeAttribute("t", 2),
	)
}

// rec builds a record (k, v, t) with t given in seconds.
func rec(k, v, tsec int64) cube.Record { return cube.Record{k, v, tsec} }

func results(t *testing.T, w *workflow.Workflow, records []cube.Record) map[string]map[string]float64 {
	t.Helper()
	e, err := New(w)
	if err != nil {
		t.Fatal(err)
	}
	out, stats, err := e.Evaluate(records, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.ScannedRecords != int64(len(records)) {
		t.Fatalf("scanned %d, want %d", stats.ScannedRecords, len(records))
	}
	if stats.Results != int64(len(out)) {
		t.Fatalf("stats.Results %d != len(out) %d", stats.Results, len(out))
	}
	byMeasure := map[string]map[string]float64{}
	for _, r := range out {
		mm := byMeasure[r.Measure]
		if mm == nil {
			mm = map[string]float64{}
			byMeasure[r.Measure] = mm
		}
		key := r.Region.Key()
		if _, dup := mm[key]; dup {
			t.Fatalf("duplicate result for %s %v", r.Measure, r.Region)
		}
		mm[key] = r.Value
	}
	return byMeasure
}

func regionKey(s *cube.Schema, g cube.Grain, sample cube.Record) string {
	return s.RegionOf(sample, g).Key()
}

func TestBasicAggregation(t *testing.T) {
	s := testSchema(t)
	w := workflow.New(s)
	g := s.MustGrain(cube.GrainSpec{Attr: "k", Level: "word"}, cube.GrainSpec{Attr: "t", Level: "minute"})
	if err := w.AddBasic("sum", g, measure.Spec{Func: measure.Sum}, "v"); err != nil {
		t.Fatal(err)
	}
	if err := w.AddBasic("cnt", g, measure.Spec{Func: measure.Count}, ""); err != nil {
		t.Fatal(err)
	}
	records := []cube.Record{
		rec(1, 10, 0), rec(1, 20, 30), // same k, same minute
		rec(1, 5, 61), // next minute
		rec(2, 7, 10), // other k
	}
	res := results(t, w, records)
	k1m0 := regionKey(s, g, rec(1, 0, 0))
	k1m1 := regionKey(s, g, rec(1, 0, 61))
	k2m0 := regionKey(s, g, rec(2, 0, 10))
	if got := res["sum"][k1m0]; got != 30 {
		t.Errorf("sum(k1,m0) = %v, want 30", got)
	}
	if got := res["sum"][k1m1]; got != 5 {
		t.Errorf("sum(k1,m1) = %v, want 5", got)
	}
	if got := res["sum"][k2m0]; got != 7 {
		t.Errorf("sum(k2,m0) = %v, want 7", got)
	}
	if got := res["cnt"][k1m0]; got != 2 {
		t.Errorf("cnt(k1,m0) = %v, want 2", got)
	}
	if len(res["sum"]) != 3 || len(res["cnt"]) != 3 {
		t.Errorf("region counts: sum=%d cnt=%d, want 3", len(res["sum"]), len(res["cnt"]))
	}
}

func TestSelfRatioWithParentLookup(t *testing.T) {
	// The weblog M3 pattern: ratio of a minute-level median to an
	// hour-level median.
	s := testSchema(t)
	w := workflow.New(s)
	gMin := s.MustGrain(cube.GrainSpec{Attr: "k", Level: "word"}, cube.GrainSpec{Attr: "t", Level: "minute"})
	gHour := s.MustGrain(cube.GrainSpec{Attr: "k", Level: "word"}, cube.GrainSpec{Attr: "t", Level: "hour"})
	if err := w.AddBasic("m1", gMin, measure.Spec{Func: measure.Sum}, "v"); err != nil {
		t.Fatal(err)
	}
	if err := w.AddBasic("m2", gHour, measure.Spec{Func: measure.Sum}, "v"); err != nil {
		t.Fatal(err)
	}
	if err := w.AddSelf("m3", gMin, measure.Ratio(), "m1", "m2"); err != nil {
		t.Fatal(err)
	}
	records := []cube.Record{
		rec(1, 10, 0),    // minute 0, hour 0
		rec(1, 30, 60),   // minute 1, hour 0
		rec(1, 40, 3600), // minute 60, hour 1
	}
	res := results(t, w, records)
	m0 := regionKey(s, gMin, records[0])
	m1 := regionKey(s, gMin, records[1])
	m60 := regionKey(s, gMin, records[2])
	if got := res["m3"][m0]; math.Abs(got-10.0/40.0) > 1e-12 {
		t.Errorf("m3(minute0) = %v, want 0.25", got)
	}
	if got := res["m3"][m1]; math.Abs(got-30.0/40.0) > 1e-12 {
		t.Errorf("m3(minute1) = %v, want 0.75", got)
	}
	if got := res["m3"][m60]; math.Abs(got-1) > 1e-12 {
		t.Errorf("m3(minute60) = %v, want 1", got)
	}
}

func TestSelfSuppressesNaN(t *testing.T) {
	// Ratio with a zero denominator must suppress the result entirely.
	s := testSchema(t)
	w := workflow.New(s)
	g := s.MustGrain(cube.GrainSpec{Attr: "k", Level: "word"})
	if err := w.AddBasic("num", g, measure.Spec{Func: measure.Sum}, "v"); err != nil {
		t.Fatal(err)
	}
	if err := w.AddBasic("den", g, measure.Spec{Func: measure.Min}, "v"); err != nil {
		t.Fatal(err)
	}
	if err := w.AddSelf("ratio", g, measure.Ratio(), "num", "den"); err != nil {
		t.Fatal(err)
	}
	records := []cube.Record{rec(1, 0, 0), rec(2, 5, 0)}
	res := results(t, w, records)
	if len(res["ratio"]) != 1 {
		t.Fatalf("ratio results = %d, want 1 (k=1 suppressed: min=0)", len(res["ratio"]))
	}
	k2 := regionKey(s, g, rec(2, 0, 0))
	if got := res["ratio"][k2]; got != 1 {
		t.Errorf("ratio(k2) = %v, want 1", got)
	}
}

func TestRollup(t *testing.T) {
	s := testSchema(t)
	w := workflow.New(s)
	gMin := s.MustGrain(cube.GrainSpec{Attr: "t", Level: "minute"})
	gHour := s.MustGrain(cube.GrainSpec{Attr: "t", Level: "hour"})
	if err := w.AddBasic("perMin", gMin, measure.Spec{Func: measure.Sum}, "v"); err != nil {
		t.Fatal(err)
	}
	if err := w.AddRollup("maxMin", gHour, measure.Spec{Func: measure.Max}, "perMin"); err != nil {
		t.Fatal(err)
	}
	records := []cube.Record{
		rec(0, 5, 0), rec(0, 7, 10), // minute 0: sum 12
		rec(0, 9, 70),     // minute 1: sum 9
		rec(0, 100, 3700), // hour 1, minute 61: sum 100
	}
	res := results(t, w, records)
	h0 := regionKey(s, gHour, rec(0, 0, 0))
	h1 := regionKey(s, gHour, rec(0, 0, 3700))
	if got := res["maxMin"][h0]; got != 12 {
		t.Errorf("maxMin(hour0) = %v, want 12", got)
	}
	if got := res["maxMin"][h1]; got != 100 {
		t.Errorf("maxMin(hour1) = %v, want 100", got)
	}
}

func TestInherit(t *testing.T) {
	s := testSchema(t)
	w := workflow.New(s)
	gMin := s.MustGrain(cube.GrainSpec{Attr: "t", Level: "minute"})
	gDay := s.MustGrain(cube.GrainSpec{Attr: "t", Level: "day"})
	if err := w.AddBasic("daily", gDay, measure.Spec{Func: measure.Count}, ""); err != nil {
		t.Fatal(err)
	}
	if err := w.AddInherit("dailyAtMin", gMin, "daily"); err != nil {
		t.Fatal(err)
	}
	records := []cube.Record{
		rec(0, 1, 0), rec(0, 1, 60), rec(0, 1, 120), // day 0, minutes 0..2
		rec(0, 1, 86400), // day 1
	}
	res := results(t, w, records)
	if len(res["dailyAtMin"]) != 4 {
		t.Fatalf("inherit results = %d, want 4", len(res["dailyAtMin"]))
	}
	for i, want := range []float64{3, 3, 3, 1} {
		k := regionKey(s, gMin, records[i])
		if got := res["dailyAtMin"][k]; got != want {
			t.Errorf("dailyAtMin(rec %d) = %v, want %v", i, got, want)
		}
	}
}

func TestSlidingWindow(t *testing.T) {
	s := testSchema(t)
	w := workflow.New(s)
	gMin := s.MustGrain(cube.GrainSpec{Attr: "t", Level: "minute"})
	ti, _ := s.AttrIndex("t")
	if err := w.AddBasic("perMin", gMin, measure.Spec{Func: measure.Sum}, "v"); err != nil {
		t.Fatal(err)
	}
	if err := w.AddSliding("mov", gMin, measure.Spec{Func: measure.Sum}, "perMin",
		workflow.RangeAnn{Attr: ti, Low: -2, High: 0}); err != nil {
		t.Fatal(err)
	}
	// Minutes 0,1,2,4 have sums 1,2,3,5 (minute 3 empty).
	records := []cube.Record{
		rec(0, 1, 0), rec(0, 2, 60), rec(0, 3, 120), rec(0, 5, 240),
	}
	res := results(t, w, records)
	want := map[int]float64{
		0: 1, // window {-2..0} of minute 0: only m0
		1: 3, // m0+m1
		2: 6, // m0+m1+m2
		4: 8, // m2+m4 (m3 missing)
	}
	for min, wv := range want {
		k := regionKey(s, gMin, rec(0, 0, int64(min)*60))
		got, ok := res["mov"][k]
		if !ok {
			t.Errorf("mov(minute %d) missing", min)
			continue
		}
		if got != wv {
			t.Errorf("mov(minute %d) = %v, want %v", min, got, wv)
		}
	}
	if len(res["mov"]) != 4 {
		t.Errorf("mov results = %d, want 4 (only occupied minutes)", len(res["mov"]))
	}
}

func TestSlidingWindowAverageWeblogStyle(t *testing.T) {
	// Full M1→M3→M4 chain with a moving average.
	s := testSchema(t)
	w := workflow.New(s)
	gMin := s.MustGrain(cube.GrainSpec{Attr: "k", Level: "word"}, cube.GrainSpec{Attr: "t", Level: "minute"})
	gHour := s.MustGrain(cube.GrainSpec{Attr: "k", Level: "word"}, cube.GrainSpec{Attr: "t", Level: "hour"})
	ti, _ := s.AttrIndex("t")
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(w.AddBasic("m1", gMin, measure.Spec{Func: measure.Median}, "v"))
	must(w.AddBasic("m2", gHour, measure.Spec{Func: measure.Median}, "v"))
	must(w.AddSelf("m3", gMin, measure.Ratio(), "m1", "m2"))
	must(w.AddSliding("m4", gMin, measure.Spec{Func: measure.Avg}, "m3",
		workflow.RangeAnn{Attr: ti, Low: -1, High: 0}))
	records := []cube.Record{
		rec(3, 10, 0),  // k3 minute 0
		rec(3, 30, 60), // k3 minute 1
	}
	// m2(hour0) = median{10,30} = 20; m3(min0)=0.5, m3(min1)=1.5;
	// m4(min0)=avg{0.5}=0.5, m4(min1)=avg{0.5,1.5}=1.0.
	res := results(t, w, records)
	k0 := regionKey(s, gMin, records[0])
	k1 := regionKey(s, gMin, records[1])
	if got := res["m4"][k0]; math.Abs(got-0.5) > 1e-12 {
		t.Errorf("m4(min0) = %v, want 0.5", got)
	}
	if got := res["m4"][k1]; math.Abs(got-1.0) > 1e-12 {
		t.Errorf("m4(min1) = %v, want 1.0", got)
	}
}

func TestSkipSortOption(t *testing.T) {
	s := testSchema(t)
	w := workflow.New(s)
	g := s.MustGrain(cube.GrainSpec{Attr: "k", Level: "word"})
	if err := w.AddBasic("c", g, measure.Spec{Func: measure.Count}, ""); err != nil {
		t.Fatal(err)
	}
	e, err := New(w)
	if err != nil {
		t.Fatal(err)
	}
	records := []cube.Record{rec(2, 0, 5), rec(1, 0, 3), rec(2, 0, 1)}
	out1, st1, err := e.Evaluate(append([]cube.Record(nil), records...), Options{})
	if err != nil {
		t.Fatal(err)
	}
	out2, st2, err := e.Evaluate(append([]cube.Record(nil), records...), Options{SkipSort: true})
	if err != nil {
		t.Fatal(err)
	}
	if st1.SortedItems != 3 || st2.SortedItems != 0 {
		t.Errorf("sort stats: %d, %d", st1.SortedItems, st2.SortedItems)
	}
	if len(out1) != len(out2) {
		t.Fatalf("result counts differ: %d vs %d", len(out1), len(out2))
	}
	for i := range out1 {
		if out1[i].Value != out2[i].Value || out1[i].Region.Key() != out2[i].Region.Key() {
			t.Fatalf("result %d differs between sorted and unsorted evaluation", i)
		}
	}
}

func TestEmptyBlock(t *testing.T) {
	s := testSchema(t)
	w := workflow.New(s)
	g := s.MustGrain(cube.GrainSpec{Attr: "k", Level: "word"})
	if err := w.AddBasic("c", g, measure.Spec{Func: measure.Count}, ""); err != nil {
		t.Fatal(err)
	}
	e, err := New(w)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := e.Evaluate(nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Errorf("empty block produced %d results", len(out))
	}
}

func TestNewRejectsEmptyWorkflow(t *testing.T) {
	if _, err := New(workflow.New(testSchema(t))); err == nil {
		t.Error("empty workflow accepted")
	}
}

// TestBlockAdditivity: evaluating the union of two disjoint keyword
// partitions must equal the union of per-partition evaluations when the
// partition key is feasible (here: everything grouped by k at word level,
// so <k:word> partitioning is feasible for all measures).
func TestBlockAdditivity(t *testing.T) {
	s := testSchema(t)
	w := workflow.New(s)
	gMin := s.MustGrain(cube.GrainSpec{Attr: "k", Level: "word"}, cube.GrainSpec{Attr: "t", Level: "minute"})
	gHour := s.MustGrain(cube.GrainSpec{Attr: "k", Level: "word"}, cube.GrainSpec{Attr: "t", Level: "hour"})
	ti, _ := s.AttrIndex("t")
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(w.AddBasic("b", gMin, measure.Spec{Func: measure.Sum}, "v"))
	must(w.AddRollup("r", gHour, measure.Spec{Func: measure.Avg}, "b"))
	must(w.AddSliding("sl", gMin, measure.Spec{Func: measure.Sum}, "b",
		workflow.RangeAnn{Attr: ti, Low: -3, High: 0}))
	e, err := New(w)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	var all, part0, part1 []cube.Record
	for i := 0; i < 500; i++ {
		r := rec(rng.Int63n(10), rng.Int63n(1000), rng.Int63n(2*86400))
		all = append(all, r)
		if r[0] < 5 {
			part0 = append(part0, r.Clone())
		} else {
			part1 = append(part1, r.Clone())
		}
	}
	whole, _, err := e.Evaluate(all, Options{})
	if err != nil {
		t.Fatal(err)
	}
	o0, _, err := e.Evaluate(part0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	o1, _, err := e.Evaluate(part1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	index := func(rs []Result) map[string]float64 {
		m := map[string]float64{}
		for _, r := range rs {
			m[r.Measure+"/"+r.Region.Key()] = r.Value
		}
		return m
	}
	wm := index(whole)
	um := index(o0)
	for k, v := range index(o1) {
		if _, dup := um[k]; dup {
			t.Fatalf("overlapping result %s between disjoint partitions", k)
		}
		um[k] = v
	}
	if len(wm) != len(um) {
		t.Fatalf("whole has %d results, union has %d", len(wm), len(um))
	}
	for k, v := range wm {
		if math.Abs(um[k]-v) > 1e-9 {
			t.Fatalf("result %s: whole %v, union %v", k, v, um[k])
		}
	}
}

func TestEvaluateFromBasicsEquivalence(t *testing.T) {
	s := testSchema(t)
	w := workflow.New(s)
	gMin := s.MustGrain(cube.GrainSpec{Attr: "k", Level: "word"}, cube.GrainSpec{Attr: "t", Level: "minute"})
	gHour := s.MustGrain(cube.GrainSpec{Attr: "k", Level: "word"}, cube.GrainSpec{Attr: "t", Level: "hour"})
	ti, _ := s.AttrIndex("t")
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(w.AddBasic("b1", gMin, measure.Spec{Func: measure.Sum}, "v"))
	must(w.AddBasic("b2", gHour, measure.Spec{Func: measure.Avg}, "v"))
	must(w.AddSelf("r", gMin, measure.Ratio(), "b1", "b2"))
	must(w.AddRollup("roll", gHour, measure.Spec{Func: measure.Max}, "b1"))
	must(w.AddSliding("mov", gMin, measure.Spec{Func: measure.Sum}, "b1",
		workflow.RangeAnn{Attr: ti, Low: -3, High: 0}))
	e, err := New(w)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SupportsEarlyAggregation(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	var records []cube.Record
	for i := 0; i < 400; i++ {
		records = append(records, rec(rng.Int63n(10), rng.Int63n(1000), rng.Int63n(2*86400)))
	}
	direct, _, err := e.Evaluate(append([]cube.Record(nil), records...), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Simulate early aggregation: partition records into 3 mapper shards,
	// partially aggregate per shard, then feed the merged groups.
	basics := map[string][]BasicGroup{}
	for shard := 0; shard < 3; shard++ {
		type ba struct {
			coords []int64
			agg    measure.Aggregator
		}
		perMeasure := map[string]map[string]*ba{"b1": {}, "b2": {}}
		grains := map[string]cube.Grain{"b1": gMin, "b2": gHour}
		for i, r := range records {
			if i%3 != shard {
				continue
			}
			for name, g := range grains {
				reg := s.RegionOf(r, g)
				k := reg.Key()
				b, ok := perMeasure[name][k]
				if !ok {
					spec := measure.Spec{Func: measure.Sum}
					if name == "b2" {
						spec = measure.Spec{Func: measure.Avg}
					}
					b = &ba{coords: reg.Coord, agg: spec.New()}
					perMeasure[name][k] = b
				}
				vi, _ := s.AttrIndex("v")
				b.agg.Add(float64(r[vi]))
			}
		}
		for name, groups := range perMeasure {
			for _, b := range groups {
				basics[name] = append(basics[name], BasicGroup{Coords: b.coords, Agg: b.agg})
			}
		}
	}
	early, _, err := e.EvaluateFromBasics(basics)
	if err != nil {
		t.Fatal(err)
	}
	index := func(rs []Result) map[string]float64 {
		m := map[string]float64{}
		for _, r := range rs {
			m[r.Measure+"/"+r.Region.Key()] = r.Value
		}
		return m
	}
	dm, em := index(direct), index(early)
	if len(dm) != len(em) {
		t.Fatalf("direct %d results, early %d", len(dm), len(em))
	}
	for k, v := range dm {
		if math.Abs(em[k]-v) > 1e-9 {
			t.Fatalf("result %s: direct %v, early %v", k, v, em[k])
		}
	}
}

func TestSupportsEarlyAggregationRejections(t *testing.T) {
	s := testSchema(t)
	gMin := s.MustGrain(cube.GrainSpec{Attr: "t", Level: "minute"})
	gDay := s.MustGrain(cube.GrainSpec{Attr: "t", Level: "day"})

	// Holistic basic measure: rejected.
	w1 := workflow.New(s)
	if err := w1.AddBasic("med", gMin, measure.Spec{Func: measure.Median}, "v"); err != nil {
		t.Fatal(err)
	}
	e1, err := New(w1)
	if err != nil {
		t.Fatal(err)
	}
	if err := e1.SupportsEarlyAggregation(); err == nil {
		t.Error("holistic basic accepted")
	}

	// Inherit to a finer grain with no basic there: rejected (occupancy
	// at minute cannot be reconstructed from day-level aggregates).
	w2 := workflow.New(s)
	if err := w2.AddBasic("daily", gDay, measure.Spec{Func: measure.Sum}, "v"); err != nil {
		t.Fatal(err)
	}
	if err := w2.AddInherit("atMin", gMin, "daily"); err != nil {
		t.Fatal(err)
	}
	e2, err := New(w2)
	if err != nil {
		t.Fatal(err)
	}
	if err := e2.SupportsEarlyAggregation(); err == nil {
		t.Error("uncovered fine grain accepted")
	}
	if _, _, err := e2.EvaluateFromBasics(nil); err == nil {
		t.Error("EvaluateFromBasics did not enforce the coverage check")
	}
}
