// Package localeval implements the local evaluation subroutine the paper
// inherits from its VLDB'06 predecessor [4]: given all records of one
// distribution block, compute every measure of a composite subset measure
// query in a single pass of sorting and scanning, following the
// aggregation workflow's topological order.
//
// Concretely the evaluator sorts the block (the reducer-side "second
// sort" quantified in Figure 4(d); it can be skipped when the framework
// delivered the records pre-sorted under a combined key), then performs
// one scan that simultaneously builds every basic measure's groups and
// the per-grain occupancy index, and finally derives composite measures
// grain by grain: self measures join on the same (or parent) region,
// rollups aggregate child regions, inherits copy parent values down, and
// sibling measures aggregate a window of neighbouring regions.
//
// A measure value of NaN means "undefined" (e.g. a ratio over a missing
// source); undefined results are suppressed — they are neither output nor
// visible to downstream measures. Composite measures are evaluated at the
// *occupied* regions of their grain (regions containing at least one raw
// record), so result sets are always data-driven.
package localeval

import (
	"fmt"
	"math"
	"sort"

	"github.com/casm-project/casm/internal/cube"
	"github.com/casm-project/casm/internal/measure"
	"github.com/casm-project/casm/internal/workflow"
)

// Result is one measure record <region, value>.
type Result struct {
	Measure string
	Region  cube.Region
	Value   float64
}

// Stats counts the evaluator's work for cost accounting.
type Stats struct {
	SortedItems    int64 // records sorted by the in-block sort (0 if skipped)
	ScannedRecords int64 // records scanned
	WindowLookups  int64 // sibling-window probes
	Results        int64 // measure records produced
}

// Options tune one evaluation.
type Options struct {
	// SkipSort indicates the records already arrive in a total order
	// (the combined-key optimization of Section III-D). Ignored by
	// ChainScan, which requires its own attribute-permuted order.
	SkipSort bool
	// Scan selects the group-construction strategy (see ScanMode).
	Scan ScanMode
}

// Evaluator evaluates one workflow over blocks of records. It is
// stateless across Evaluate calls and safe for concurrent use.
type Evaluator struct {
	w      *workflow.Workflow
	schema *cube.Schema
	order  []*workflow.Measure
	grains []cube.Grain // distinct grains, indexed by grainIdx
	gidx   map[string]int
}

// New validates the workflow and builds an evaluator.
func New(w *workflow.Workflow) (*Evaluator, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	order, err := w.TopoOrder()
	if err != nil {
		return nil, err
	}
	e := &Evaluator{w: w, schema: w.Schema(), order: order, gidx: make(map[string]int)}
	for _, m := range order {
		e.grainIndex(m.Grain)
	}
	return e, nil
}

func grainKey(g cube.Grain) string {
	b := make([]byte, len(g))
	for i, l := range g {
		b[i] = byte(l)
	}
	return string(b)
}

func (e *Evaluator) grainIndex(g cube.Grain) int {
	k := grainKey(g)
	if i, ok := e.gidx[k]; ok {
		return i
	}
	e.gidx[k] = len(e.grains)
	e.grains = append(e.grains, g.Clone())
	return len(e.grains) - 1
}

// regionIndex records which regions of a grain are occupied, with their
// coordinates.
type regionIndex struct {
	coords map[string][]int64
}

// measureState holds one measure's computed (non-NaN) values by region
// key at the measure's grain.
type measureState struct {
	values map[string]float64
}

// Evaluate computes all measures over the block's records.
func (e *Evaluator) Evaluate(records []cube.Record, opt Options) ([]Result, Stats, error) {
	var stats Stats
	occupancy := make([]regionIndex, len(e.grains))
	for i := range occupancy {
		occupancy[i] = regionIndex{coords: make(map[string][]int64)}
	}
	basicAggs := make(map[string]map[string]measure.Aggregator)
	if opt.Scan == ChainScan {
		e.scanChain(records, occupancy, basicAggs, &stats)
	} else {
		e.scanHash(records, opt, occupancy, basicAggs, &stats)
	}
	out, err := e.finish(occupancy, basicAggs, &stats)
	return out, stats, err
}

// scanHash builds every grain's occupancy and every basic measure's
// aggregators through hash tables in a single scan.
func (e *Evaluator) scanHash(records []cube.Record, opt Options, occupancy []regionIndex, basicAggs map[string]map[string]measure.Aggregator, stats *Stats) {
	s := e.schema
	if !opt.SkipSort {
		SortRecords(records)
		stats.SortedItems = int64(len(records))
	}
	type basicAgg struct {
		m    *workflow.Measure
		aggs map[string]measure.Aggregator
		gi   int
	}
	var basics []*basicAgg
	for _, m := range e.order {
		if m.Kind == workflow.Basic {
			aggs := make(map[string]measure.Aggregator)
			basicAggs[m.Name] = aggs
			basics = append(basics, &basicAgg{m: m, aggs: aggs, gi: e.grainIndex(m.Grain)})
		}
	}
	coord := make([]int64, s.NumAttrs())
	keys := make([]string, len(e.grains))
	for _, rec := range records {
		stats.ScannedRecords++
		for gi, g := range e.grains {
			s.CoordOf(rec, g, coord)
			k := cube.EncodeCoords(coord)
			keys[gi] = k
			if _, ok := occupancy[gi].coords[k]; !ok {
				occupancy[gi].coords[k] = append([]int64(nil), coord...)
			}
		}
		for _, b := range basics {
			k := keys[b.gi]
			agg, ok := b.aggs[k]
			if !ok {
				agg = b.m.Agg.New()
				b.aggs[k] = agg
			}
			if b.m.InputAttr >= 0 {
				agg.Add(float64(rec[b.m.InputAttr]))
			} else {
				agg.Add(0)
			}
		}
	}
}

// scanChain sorts by a grain-derived attribute permutation and streams
// contiguous groups for every chain-compatible grain, hashing only the
// rest (see ScanMode).
func (e *Evaluator) scanChain(records []cube.Record, occupancy []regionIndex, basicAggs map[string]map[string]measure.Aggregator, stats *Stats) {
	s := e.schema
	perm := chainPermutation(s, e.grains)
	sortRecordsByPerm(records, perm)
	stats.SortedItems = int64(len(records))

	// Group the basic measures by grain and split grains into streamed
	// and hashed sets.
	basicsByGrain := make([][]*workflow.Measure, len(e.grains))
	for _, m := range e.order {
		if m.Kind == workflow.Basic {
			basicAggs[m.Name] = make(map[string]measure.Aggregator)
			gi := e.grainIndex(m.Grain)
			basicsByGrain[gi] = append(basicsByGrain[gi], m)
		}
	}
	var chains []*chainState
	var hashed []int // grain indices aggregated through hashing
	for gi, g := range e.grains {
		if chainCompatible(s, g, perm) {
			cs := &chainState{gi: gi, grain: g, coords: make([]int64, s.NumAttrs()), occ: &occupancy[gi]}
			for _, m := range basicsByGrain[gi] {
				cs.basics = append(cs.basics, &chainBasic{m: m, aggs: basicAggs[m.Name]})
			}
			chains = append(chains, cs)
		} else {
			hashed = append(hashed, gi)
		}
	}

	coord := make([]int64, s.NumAttrs())
	for _, rec := range records {
		stats.ScannedRecords++
		for _, cs := range chains {
			s.CoordOf(rec, cs.grain, coord)
			if cs.boundary(coord) {
				cs.flush()
				cs.openGroup(coord)
			}
			for _, b := range cs.basics {
				if b.m.InputAttr >= 0 {
					b.cur.Add(float64(rec[b.m.InputAttr]))
				} else {
					b.cur.Add(0)
				}
			}
		}
		for _, gi := range hashed {
			g := e.grains[gi]
			s.CoordOf(rec, g, coord)
			k := cube.EncodeCoords(coord)
			if _, ok := occupancy[gi].coords[k]; !ok {
				occupancy[gi].coords[k] = append([]int64(nil), coord...)
			}
			for _, m := range basicsByGrain[gi] {
				aggs := basicAggs[m.Name]
				agg, ok := aggs[k]
				if !ok {
					agg = m.Agg.New()
					aggs[k] = agg
				}
				if m.InputAttr >= 0 {
					agg.Add(float64(rec[m.InputAttr]))
				} else {
					agg.Add(0)
				}
			}
		}
	}
	for _, cs := range chains {
		cs.flush()
	}
}

// BasicGroup is one pre-aggregated basic-measure group, used when early
// aggregation shipped partial states instead of raw records.
type BasicGroup struct {
	// Coords are the region's coordinates at the basic measure's grain.
	Coords []int64
	// Agg is the merged partial aggregate for the region.
	Agg measure.Aggregator
}

// EvaluateFromBasics computes all measures from pre-merged basic-measure
// aggregates (the early-aggregation path of Section III-D). Every basic
// measure must be present in basics. The per-grain occupancy index is
// reconstructed from basic measures at equal or finer grains, so the
// workflow must satisfy the coverage condition checked by
// SupportsEarlyAggregation.
func (e *Evaluator) EvaluateFromBasics(basics map[string][]BasicGroup) ([]Result, Stats, error) {
	var stats Stats
	if err := e.SupportsEarlyAggregation(); err != nil {
		return nil, stats, err
	}
	s := e.schema
	occupancy := make([]regionIndex, len(e.grains))
	for i := range occupancy {
		occupancy[i] = regionIndex{coords: make(map[string][]int64)}
	}
	basicAggs := make(map[string]map[string]measure.Aggregator, len(basics))
	for _, m := range e.order {
		if m.Kind != workflow.Basic {
			continue
		}
		groups, ok := basics[m.Name]
		if !ok {
			return nil, stats, fmt.Errorf("localeval: missing basic measure %q in pre-aggregated input", m.Name)
		}
		aggs := make(map[string]measure.Aggregator, len(groups))
		basicAggs[m.Name] = aggs
		coord := make([]int64, s.NumAttrs())
		for _, g := range groups {
			k := cube.EncodeCoords(g.Coords)
			if prev, dup := aggs[k]; dup {
				if err := prev.MergeState(g.Agg.State()); err != nil {
					return nil, stats, err
				}
			} else {
				aggs[k] = g.Agg
			}
			// Populate occupancy at every grain this basic's grain
			// specializes, by rolling the region coordinates up.
			for gi, grain := range e.grains {
				if !grain.GeneralizationOf(m.Grain) {
					continue
				}
				for i := range coord {
					coord[i] = s.Attr(i).RollBetween(g.Coords[i], m.Grain[i], grain[i])
				}
				ck := cube.EncodeCoords(coord)
				if _, seen := occupancy[gi].coords[ck]; !seen {
					occupancy[gi].coords[ck] = append([]int64(nil), coord...)
				}
			}
		}
	}
	out, err := e.finish(occupancy, basicAggs, &stats)
	return out, stats, err
}

// SupportsEarlyAggregation reports whether the paper's early-aggregation
// conditions hold for this workflow: every basic measure's aggregate is
// algebraic or distributive, and every measure grain is covered by some
// basic measure at an equal or finer grain (so occupancy can be
// reconstructed from partial aggregates alone).
func (e *Evaluator) SupportsEarlyAggregation() error {
	for _, m := range e.order {
		if m.Kind == workflow.Basic && !m.Agg.Mergeable() {
			return fmt.Errorf("localeval: basic measure %q is %s (holistic); early aggregation needs algebraic or distributive functions",
				m.Name, m.Agg)
		}
	}
	for _, m := range e.order {
		covered := false
		for _, b := range e.order {
			if b.Kind == workflow.Basic && m.Grain.GeneralizationOf(b.Grain) {
				covered = true
				break
			}
		}
		if !covered {
			return fmt.Errorf("localeval: measure %q grain %s has no basic measure at an equal or finer grain; occupancy cannot be reconstructed",
				m.Name, e.schema.FormatGrain(m.Grain))
		}
	}
	return nil
}

// finish derives every measure in topological order from the occupancy
// index and the basic aggregates, then materializes results.
func (e *Evaluator) finish(occupancy []regionIndex, basicAggs map[string]map[string]measure.Aggregator, stats *Stats) ([]Result, error) {
	states := make(map[string]*measureState, len(e.order))
	for _, m := range e.order {
		st := &measureState{values: make(map[string]float64)}
		states[m.Name] = st
		switch m.Kind {
		case workflow.Basic:
			for k, agg := range basicAggs[m.Name] {
				if v := agg.Result(); !math.IsNaN(v) {
					st.values[k] = v
				}
			}
		case workflow.Self:
			if err := e.evalSelf(m, st, states, occupancy); err != nil {
				return nil, err
			}
		case workflow.Inherit:
			if err := e.evalInherit(m, st, states, occupancy); err != nil {
				return nil, err
			}
		case workflow.Rollup:
			if err := e.evalRollup(m, st, states, occupancy); err != nil {
				return nil, err
			}
		case workflow.Sliding:
			if err := e.evalSliding(m, st, states, occupancy, stats); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("localeval: unknown kind %v", m.Kind)
		}
	}

	// Materialize results in deterministic order.
	var out []Result
	for _, m := range e.order {
		st := states[m.Name]
		gi := e.grainIndex(m.Grain)
		keys := make([]string, 0, len(st.values))
		for k := range st.values {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			out = append(out, Result{
				Measure: m.Name,
				Region:  cube.Region{Grain: m.Grain, Coord: occupancy[gi].coords[k]},
				Value:   st.values[k],
			})
		}
	}
	stats.Results = int64(len(out))
	return out, nil
}

// lookupAt resolves a source measure's value for the region with the given
// coordinates at grain g, rolling up to the source's grain as needed.
func (e *Evaluator) lookupAt(src *workflow.Measure, st *measureState, coords []int64, g cube.Grain) (float64, bool) {
	s := e.schema
	buf := make([]int64, len(coords))
	for i := range coords {
		buf[i] = s.Attr(i).RollBetween(coords[i], g[i], src.Grain[i])
	}
	v, ok := st.values[cube.EncodeCoords(buf)]
	return v, ok
}

func (e *Evaluator) evalSelf(m *workflow.Measure, st *measureState, states map[string]*measureState, occ []regionIndex) error {
	gi := e.grainIndex(m.Grain)
	srcs := make([]*workflow.Measure, len(m.Sources))
	for i, name := range m.Sources {
		sm, ok := e.w.Measure(name)
		if !ok {
			return fmt.Errorf("localeval: missing source %q", name)
		}
		srcs[i] = sm
	}
	args := make([]float64, len(srcs))
	for k, coords := range occ[gi].coords {
		for i, sm := range srcs {
			v, ok := e.lookupAt(sm, states[sm.Name], coords, m.Grain)
			if !ok {
				v = math.NaN()
			}
			args[i] = v
		}
		if v := m.Expr.Eval(args); !math.IsNaN(v) {
			st.values[k] = v
		}
	}
	return nil
}

func (e *Evaluator) evalInherit(m *workflow.Measure, st *measureState, states map[string]*measureState, occ []regionIndex) error {
	gi := e.grainIndex(m.Grain)
	sm, ok := e.w.Measure(m.Sources[0])
	if !ok {
		return fmt.Errorf("localeval: missing source %q", m.Sources[0])
	}
	for k, coords := range occ[gi].coords {
		if v, ok := e.lookupAt(sm, states[sm.Name], coords, m.Grain); ok && !math.IsNaN(v) {
			st.values[k] = v
		}
	}
	return nil
}

func (e *Evaluator) evalRollup(m *workflow.Measure, st *measureState, states map[string]*measureState, occ []regionIndex) error {
	s := e.schema
	sm, ok := e.w.Measure(m.Sources[0])
	if !ok {
		return fmt.Errorf("localeval: missing source %q", m.Sources[0])
	}
	sgi := e.grainIndex(sm.Grain)
	aggs := make(map[string]measure.Aggregator)
	parent := make([]int64, s.NumAttrs())
	for k, v := range states[sm.Name].values {
		coords := occ[sgi].coords[k]
		for i := range coords {
			parent[i] = s.Attr(i).RollBetween(coords[i], sm.Grain[i], m.Grain[i])
		}
		pk := cube.EncodeCoords(parent)
		agg, ok := aggs[pk]
		if !ok {
			agg = m.Agg.New()
			aggs[pk] = agg
			// Record the parent's coordinates so results can name the
			// region even if no measure grain matched it during the scan.
			gi := e.grainIndex(m.Grain)
			if _, seen := occ[gi].coords[pk]; !seen {
				occ[gi].coords[pk] = append([]int64(nil), parent...)
			}
		}
		agg.Add(v)
	}
	for pk, agg := range aggs {
		if v := agg.Result(); !math.IsNaN(v) {
			st.values[pk] = v
		}
	}
	return nil
}

func (e *Evaluator) evalSliding(m *workflow.Measure, st *measureState, states map[string]*measureState, occ []regionIndex, stats *Stats) error {
	gi := e.grainIndex(m.Grain)
	sm, ok := e.w.Measure(m.Sources[0])
	if !ok {
		return fmt.Errorf("localeval: missing source %q", m.Sources[0])
	}
	src := states[sm.Name]
	probe := make([]int64, e.schema.NumAttrs())
	for k, coords := range occ[gi].coords {
		agg := m.Agg.New()
		e.windowScan(m.Window, 0, coords, probe, func() {
			stats.WindowLookups++
			if v, ok := src.values[cube.EncodeCoords(probe)]; ok {
				agg.Add(v)
			}
		})
		if agg.N() == 0 {
			continue
		}
		if v := agg.Result(); !math.IsNaN(v) {
			st.values[k] = v
		}
	}
	return nil
}

// windowScan enumerates the cross product of window offsets, filling
// probe with each sibling's coordinates and invoking visit. Coordinates
// outside the attribute's domain are skipped.
func (e *Evaluator) windowScan(window []workflow.RangeAnn, i int, base, probe []int64, visit func()) {
	if i == 0 {
		copy(probe, base)
	}
	if i == len(window) {
		visit()
		return
	}
	ann := window[i]
	// The grain level of the annotated attribute is the measure's grain
	// level; base coords are at that grain already.
	for off := ann.Low; off <= ann.High; off++ {
		c := base[ann.Attr] + off
		if c < 0 {
			continue
		}
		probe[ann.Attr] = c
		e.windowScan(window, i+1, base, probe, visit)
	}
	probe[ann.Attr] = base[ann.Attr]
}

// SortRecords orders records lexicographically by their finest-level
// values; any total order works for the hash-based group construction,
// and a deterministic one makes runs reproducible (this is the in-group
// sort whose cost Figure 4(d) isolates).
func SortRecords(records []cube.Record) {
	sort.Slice(records, func(i, j int) bool {
		a, b := records[i], records[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}
