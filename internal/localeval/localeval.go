// Package localeval implements the local evaluation subroutine the paper
// inherits from its VLDB'06 predecessor [4]: given all records of one
// distribution block, compute every measure of a composite subset measure
// query in a single pass of sorting and scanning, following the
// aggregation workflow's topological order.
//
// Concretely the evaluator sorts the block (the reducer-side "second
// sort" quantified in Figure 4(d); it can be skipped when the framework
// delivered the records pre-sorted under a combined key), then performs
// one scan that simultaneously builds every basic measure's groups and
// the per-grain occupancy index, and finally derives composite measures
// grain by grain: self measures join on the same (or parent) region,
// rollups aggregate child regions, inherits copy parent values down, and
// sibling measures aggregate a window of neighbouring regions.
//
// A measure value of NaN means "undefined" (e.g. a ratio over a missing
// source); undefined results are suppressed — they are neither output nor
// visible to downstream measures. Composite measures are evaluated at the
// *occupied* regions of their grain (regions containing at least one raw
// record), so result sets are always data-driven.
//
// The hot path is Session (see session.go): a per-reduce-task arena that
// holds the block's records as fixed-stride rows in one flat []int64,
// probes every string-keyed index through reused encode scratch, and
// recycles aggregators across groups. Evaluator.Evaluate remains as a
// convenience wrapper that runs a fresh session per call.
package localeval

import (
	"fmt"
	"sort"

	"github.com/casm-project/casm/internal/cube"
	"github.com/casm-project/casm/internal/measure"
	"github.com/casm-project/casm/internal/workflow"
)

// Result is one measure record <region, value>.
type Result struct {
	Measure string
	Region  cube.Region
	Value   float64
}

// Stats counts the evaluator's work for cost accounting.
type Stats struct {
	SortedItems    int64 // records sorted by the in-block sort (0 if skipped)
	ScannedRecords int64 // records scanned
	WindowLookups  int64 // sibling-window probes
	Results        int64 // measure records produced
}

// Options tune one evaluation.
type Options struct {
	// SkipSort indicates the records already arrive in a total order
	// (the combined-key optimization of Section III-D). Ignored by
	// ChainScan, which requires its own attribute-permuted order.
	SkipSort bool
	// Scan selects the group-construction strategy (see ScanMode).
	Scan ScanMode
}

// Evaluator holds the workflow-derived read-only plan for evaluating
// blocks: the topological measure order, the distinct grains, source and
// grain indices resolved to array offsets, the chain-scan permutation and
// per-grain compatibility, and each sliding window's domain bounds. It is
// immutable after New and safe for concurrent use; all mutable evaluation
// state lives in Session.
type Evaluator struct {
	w      *workflow.Workflow
	schema *cube.Schema
	order  []*workflow.Measure
	grains []cube.Grain // distinct grains, indexed by grainIdx
	gidx   map[string]int

	arity      int
	gidxOf     []int     // gidxOf[oi] = grain index of order[oi].Grain
	srcIdx     [][]int   // srcIdx[oi] = order indices of order[oi].Sources
	basicOrder []int     // order indices of Basic measures, in topo order
	basicsAt   [][]int   // basicsAt[gi] = order indices of Basic measures at grain gi
	winMax     [][]int64 // winMax[oi][j] = max in-domain coordinate of order[oi].Window[j] (Sliding only)
	perm       []int     // chain-scan attribute permutation
	chainOK    []bool    // chainOK[gi]: grain gi streams contiguously under perm
}

// New validates the workflow and builds an evaluator.
func New(w *workflow.Workflow) (*Evaluator, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	order, err := w.TopoOrder()
	if err != nil {
		return nil, err
	}
	e := &Evaluator{w: w, schema: w.Schema(), order: order, gidx: make(map[string]int)}
	e.arity = e.schema.NumAttrs()
	midx := make(map[string]int, len(order))
	for oi, m := range order {
		midx[m.Name] = oi
	}
	e.gidxOf = make([]int, len(order))
	e.srcIdx = make([][]int, len(order))
	e.winMax = make([][]int64, len(order))
	for oi, m := range order {
		e.gidxOf[oi] = e.grainIndex(m.Grain)
		if len(m.Sources) > 0 {
			idx := make([]int, len(m.Sources))
			for i, name := range m.Sources {
				si, ok := midx[name]
				if !ok {
					return nil, fmt.Errorf("localeval: missing source %q", name)
				}
				idx[i] = si
			}
			e.srcIdx[oi] = idx
		}
		if m.Kind == workflow.Sliding {
			maxC := make([]int64, len(m.Window))
			for j, ann := range m.Window {
				maxC[j] = e.schema.Attr(ann.Attr).CardAt(m.Grain[ann.Attr]) - 1
			}
			e.winMax[oi] = maxC
		}
	}
	e.basicsAt = make([][]int, len(e.grains))
	for oi, m := range order {
		if m.Kind == workflow.Basic {
			e.basicOrder = append(e.basicOrder, oi)
			gi := e.gidxOf[oi]
			e.basicsAt[gi] = append(e.basicsAt[gi], oi)
		}
	}
	e.perm = chainPermutation(e.schema, e.grains)
	e.chainOK = make([]bool, len(e.grains))
	for gi, g := range e.grains {
		e.chainOK[gi] = chainCompatible(e.schema, g, e.perm)
	}
	return e, nil
}

func grainKey(g cube.Grain) string {
	b := make([]byte, len(g))
	for i, l := range g {
		b[i] = byte(l)
	}
	return string(b)
}

// grainIndex registers a grain during construction. The grain set is
// frozen after New; sessions index it through Evaluator.gidxOf.
func (e *Evaluator) grainIndex(g cube.Grain) int {
	k := grainKey(g)
	if i, ok := e.gidx[k]; ok {
		return i
	}
	e.gidx[k] = len(e.grains)
	e.grains = append(e.grains, g.Clone())
	return len(e.grains) - 1
}

// Evaluate computes all measures over the block's records. It is a
// convenience wrapper that runs a fresh Session per call, so the returned
// results are owned by the caller; reduce tasks that evaluate many groups
// should hold one Session and call Session.EvaluateBlock instead.
func (e *Evaluator) Evaluate(records []cube.Record, opt Options) ([]Result, Stats, error) {
	ss := e.NewSession()
	for _, rec := range records {
		ss.AppendRecord(rec)
	}
	return ss.EvaluateBlock(opt)
}

// BasicGroup is one pre-aggregated basic-measure group, used when early
// aggregation shipped partial states instead of raw records.
type BasicGroup struct {
	// Coords are the region's coordinates at the basic measure's grain.
	Coords []int64
	// Agg is the merged partial aggregate for the region.
	Agg measure.Aggregator
}

// EvaluateFromBasics computes all measures from pre-merged basic-measure
// aggregates (the early-aggregation path of Section III-D). It runs a
// fresh Session per call; see Session.EvaluateFromBasics.
func (e *Evaluator) EvaluateFromBasics(basics map[string][]BasicGroup) ([]Result, Stats, error) {
	return e.NewSession().EvaluateFromBasics(basics)
}

// SupportsEarlyAggregation reports whether the paper's early-aggregation
// conditions hold for this workflow: every basic measure's aggregate is
// algebraic or distributive, and every measure grain is covered by some
// basic measure at an equal or finer grain (so occupancy can be
// reconstructed from partial aggregates alone).
func (e *Evaluator) SupportsEarlyAggregation() error {
	for _, m := range e.order {
		if m.Kind == workflow.Basic && !m.Agg.Mergeable() {
			return fmt.Errorf("localeval: basic measure %q is %s (holistic); early aggregation needs algebraic or distributive functions",
				m.Name, m.Agg)
		}
	}
	for _, m := range e.order {
		covered := false
		for _, b := range e.order {
			if b.Kind == workflow.Basic && m.Grain.GeneralizationOf(b.Grain) {
				covered = true
				break
			}
		}
		if !covered {
			return fmt.Errorf("localeval: measure %q grain %s has no basic measure at an equal or finer grain; occupancy cannot be reconstructed",
				m.Name, e.schema.FormatGrain(m.Grain))
		}
	}
	return nil
}

// SortRecords orders records lexicographically by their finest-level
// values; any total order works for the hash-based group construction,
// and a deterministic one makes runs reproducible (this is the in-group
// sort whose cost Figure 4(d) isolates). Session.SortLoaded is the
// arena-backed equivalent used by reduce tasks: it permutes row indices
// over the flat block arena instead of swapping record headers.
func SortRecords(records []cube.Record) {
	sort.Slice(records, func(i, j int) bool {
		a, b := records[i], records[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}
