package localeval

import (
	"fmt"
	"math"
	"slices"
	"sort"

	"github.com/casm-project/casm/internal/cube"
	"github.com/casm-project/casm/internal/measure"
	"github.com/casm-project/casm/internal/recio"
	"github.com/casm-project/casm/internal/workflow"
)

// maxPooledAggs bounds each aggregate kind's free list so one huge group
// cannot pin unbounded aggregator memory for the rest of the task.
const maxPooledAggs = 1 << 16

// Session is the per-reduce-task evaluation state: the reduce-side twin
// of distkey.Session. One session is created per reduce task (through
// mr.Config.NewReduceLocal) and reused across every group the task
// evaluates, so all block-sized buffers — the columnar record arena, the
// per-grain occupancy maps, the basic-aggregate and value maps, encode
// scratch, and the aggregator free lists — are allocated once and
// recycled.
//
// Records are held as fixed-stride rows in one flat []int64 arena
// (AppendRaw decodes shuffled payloads straight into it); sorting
// permutes an []int32 row index instead of swapping record headers. All
// string-keyed indexes are probed through reused encode scratch via the
// map[string(bytes)] compiler optimization, so steady-state evaluation
// allocates only the key string and saved coordinates of each *new*
// distinct region — O(regions), independent of record count.
//
// Value ownership: the []Result returned by EvaluateBlock and
// EvaluateFromBasics, including each Result.Region.Coord, aliases session
// storage and is valid only until the next Append*/Sort*/Evaluate* call
// on the same session. Callers that need results beyond that must copy.
// A Session is not safe for concurrent use; the shared Evaluator is.
type Session struct {
	e *Evaluator

	// Columnar block arena: rows*arity values, plus the row permutation.
	data []int64
	rows []int32

	// Per-evaluate indexes, cleared (buckets retained) between groups.
	occ    []map[string][]int64            // occ[gi]: occupied regions of grain gi
	aggs   []map[string]measure.Aggregator // aggs[oi]: Basic measures only, else nil
	values []map[string]float64            // values[oi]: computed non-NaN values
	rollup map[string]measure.Aggregator   // scratch map for evalRollup
	pooled bool                            // whether aggs currently holds pool-owned aggregators

	// coordStore backs every saved region coordinate slice. Growth may
	// reallocate, but previously returned sub-slices stay valid (they
	// alias the old backing array); reset only truncates.
	coordStore []int64

	chain []chainRun // per-grain chain-scan streaming state

	// Scratch buffers.
	coord   []int64  // CoordOf target
	roll    []int64  // RollBetween target for lookups
	probe   []int64  // windowScan sibling coordinates
	encG    [][]byte // per-grain encoded key of the current record
	enc     []byte   // general encode scratch
	args    []float64
	keybuf  []string
	results []Result

	// pool holds reset aggregators for reuse, keyed by aggregate kind.
	pool map[measure.Spec][]measure.Aggregator

	// ArenaBytes is the high-water footprint of the session's arenas
	// (record data + row index + saved coordinates), in bytes.
	ArenaBytes int64
	// PoolHits / PoolMisses count aggregator pool recycling.
	PoolHits   int64
	PoolMisses int64
}

// NewSession returns an empty session for the evaluator. Sessions are
// cheap relative to a reduce task but not to a group: create one per
// task and reuse it.
func (e *Evaluator) NewSession() *Session {
	ss := &Session{
		e:      e,
		coord:  make([]int64, e.arity),
		roll:   make([]int64, e.arity),
		probe:  make([]int64, e.arity),
		occ:    make([]map[string][]int64, len(e.grains)),
		encG:   make([][]byte, len(e.grains)),
		aggs:   make([]map[string]measure.Aggregator, len(e.order)),
		values: make([]map[string]float64, len(e.order)),
		rollup: make(map[string]measure.Aggregator),
		pool:   make(map[measure.Spec][]measure.Aggregator),
	}
	for gi := range ss.occ {
		ss.occ[gi] = make(map[string][]int64)
	}
	for oi, m := range e.order {
		if m.Kind == workflow.Basic {
			ss.aggs[oi] = make(map[string]measure.Aggregator)
		}
		ss.values[oi] = make(map[string]float64)
	}
	return ss
}

// AppendRaw decodes one shuffled record payload into the block arena.
func (ss *Session) AppendRaw(payload []byte) error {
	n := len(ss.data)
	arena, err := recio.DecodeRecordAppend(payload, ss.e.arity, ss.data)
	if err != nil {
		ss.data = ss.data[:n]
		return err
	}
	ss.data = arena
	ss.rows = append(ss.rows, int32(len(ss.rows)))
	return nil
}

// AppendRecord copies one decoded record into the block arena. rec must
// have the schema's arity.
func (ss *Session) AppendRecord(rec cube.Record) {
	ss.data = append(ss.data, rec...)
	ss.rows = append(ss.rows, int32(len(ss.rows)))
}

// Rows reports how many records are loaded in the arena.
func (ss *Session) Rows() int { return len(ss.rows) }

// row returns the r-th loaded record (in arrival order) as an arena view.
func (ss *Session) row(ri int32) cube.Record {
	a := ss.e.arity
	return cube.Record(ss.data[int(ri)*a : int(ri)*a+a])
}

// SortLoaded sorts the loaded rows lexicographically (the isolated
// in-group sort of the paper's StageSort runs), then discards the block.
// It returns the number of rows sorted.
func (ss *Session) SortLoaded() int {
	n := len(ss.rows)
	ss.sortRows(nil)
	ss.data = ss.data[:0]
	ss.rows = ss.rows[:0]
	ss.noteArena()
	return n
}

// sortRows permutes the row index so rows compare lexicographically by
// the attributes in perm order (nil means natural attribute order).
// Ties are fully identical records, so an unstable sort is fine.
func (ss *Session) sortRows(perm []int) {
	a := ss.e.arity
	data := ss.data
	if perm == nil {
		slices.SortFunc(ss.rows, func(x, y int32) int {
			return slices.Compare(data[int(x)*a:int(x)*a+a], data[int(y)*a:int(y)*a+a])
		})
		return
	}
	slices.SortFunc(ss.rows, func(x, y int32) int {
		ra := data[int(x)*a : int(x)*a+a]
		rb := data[int(y)*a : int(y)*a+a]
		for _, k := range perm {
			if ra[k] != rb[k] {
				if ra[k] < rb[k] {
					return -1
				}
				return 1
			}
		}
		return 0
	})
}

// begin resets the per-evaluate indexes, returning the previous group's
// pooled aggregators to the free lists. The previous group's results
// become invalid here (see the ownership note on Session).
func (ss *Session) begin() {
	for gi := range ss.occ {
		clear(ss.occ[gi])
	}
	for oi, m := range ss.aggs {
		if m == nil {
			continue
		}
		if ss.pooled {
			spec := ss.e.order[oi].Agg
			for _, agg := range m {
				ss.putAgg(spec, agg)
			}
		}
		clear(m)
	}
	for oi := range ss.values {
		clear(ss.values[oi])
	}
	ss.coordStore = ss.coordStore[:0]
	ss.results = ss.results[:0]
}

// noteArena updates the high-water arena footprint counter.
func (ss *Session) noteArena() {
	fp := int64(cap(ss.data)+cap(ss.coordStore))*8 + int64(cap(ss.rows))*4
	if fp > ss.ArenaBytes {
		ss.ArenaBytes = fp
	}
}

// getAgg takes an aggregator of the given kind from the pool, or builds
// a fresh one.
func (ss *Session) getAgg(spec measure.Spec) measure.Aggregator {
	if l := ss.pool[spec]; len(l) > 0 {
		agg := l[len(l)-1]
		ss.pool[spec] = l[:len(l)-1]
		ss.PoolHits++
		return agg
	}
	ss.PoolMisses++
	return spec.New()
}

// putAgg resets an aggregator and returns it to the pool.
func (ss *Session) putAgg(spec measure.Spec, agg measure.Aggregator) {
	if len(ss.pool[spec]) >= maxPooledAggs {
		return
	}
	agg.Reset()
	ss.pool[spec] = append(ss.pool[spec], agg)
}

// saveCoords copies a region's coordinates into the coordinate arena and
// returns a capped view.
func (ss *Session) saveCoords(coord []int64) []int64 {
	n := len(ss.coordStore)
	ss.coordStore = append(ss.coordStore, coord...)
	return ss.coordStore[n:len(ss.coordStore):len(ss.coordStore)]
}

// insertRegion registers a newly seen region of grain gi: it materializes
// the key string exactly once, records the coordinates, and creates one
// pooled aggregator per basic measure at the grain. After insertion the
// scan invariant holds: a key present in occ[gi] is present in every
// aggs[oi] with oi ∈ basicsAt[gi], so scan-time probes never miss.
func (ss *Session) insertRegion(gi int, enc []byte, coord []int64) {
	k := string(enc)
	ss.occ[gi][k] = ss.saveCoords(coord)
	for _, oi := range ss.e.basicsAt[gi] {
		ss.aggs[oi][k] = ss.getAgg(ss.e.order[oi].Agg)
	}
}

// EvaluateBlock computes all measures over the loaded rows and resets the
// arena for the next group. The returned results alias session storage
// (see the ownership note on Session).
func (ss *Session) EvaluateBlock(opt Options) ([]Result, Stats, error) {
	var stats Stats
	ss.begin()
	ss.pooled = true
	if opt.Scan == ChainScan {
		ss.scanChain(&stats)
	} else {
		ss.scanHash(opt, &stats)
	}
	out, err := ss.finish(&stats)
	ss.data = ss.data[:0]
	ss.rows = ss.rows[:0]
	ss.noteArena()
	return out, stats, err
}

// scanHash builds every grain's occupancy and every basic measure's
// aggregators through hash tables in a single scan of the arena rows.
func (ss *Session) scanHash(opt Options, stats *Stats) {
	e, s := ss.e, ss.e.schema
	if !opt.SkipSort {
		ss.sortRows(nil)
		stats.SortedItems = int64(len(ss.rows))
	}
	for _, ri := range ss.rows {
		rec := ss.row(ri)
		stats.ScannedRecords++
		for gi := range e.grains {
			s.CoordOf(rec, e.grains[gi], ss.coord)
			enc := cube.AppendCoords(ss.encG[gi][:0], ss.coord)
			ss.encG[gi] = enc
			if _, ok := ss.occ[gi][string(enc)]; !ok {
				ss.insertRegion(gi, enc, ss.coord)
			}
		}
		for _, oi := range e.basicOrder {
			m := e.order[oi]
			agg := ss.aggs[oi][string(ss.encG[e.gidxOf[oi]])]
			if m.InputAttr >= 0 {
				agg.Add(float64(rec[m.InputAttr]))
			} else {
				agg.Add(0)
			}
		}
	}
}

// EvaluateFromBasics computes all measures from pre-merged basic-measure
// aggregates (the early-aggregation path of Section III-D). Every basic
// measure must be present in basics; the per-grain occupancy index is
// reconstructed from basic measures at equal or finer grains, so the
// workflow must satisfy SupportsEarlyAggregation. The aggregators in
// basics remain caller-owned: the session never pools or resets them.
// The returned results alias session storage (see Session).
func (ss *Session) EvaluateFromBasics(basics map[string][]BasicGroup) ([]Result, Stats, error) {
	var stats Stats
	e, s := ss.e, ss.e.schema
	if err := e.SupportsEarlyAggregation(); err != nil {
		return nil, stats, err
	}
	ss.begin()
	ss.pooled = false
	for oi, m := range e.order {
		if m.Kind != workflow.Basic {
			continue
		}
		groups, ok := basics[m.Name]
		if !ok {
			return nil, stats, fmt.Errorf("localeval: missing basic measure %q in pre-aggregated input", m.Name)
		}
		aggs := ss.aggs[oi]
		for _, g := range groups {
			enc := cube.AppendCoords(ss.enc[:0], g.Coords)
			ss.enc = enc
			if prev, dup := aggs[string(enc)]; dup {
				if err := prev.MergeState(g.Agg.State()); err != nil {
					return nil, stats, err
				}
			} else {
				aggs[string(enc)] = g.Agg
			}
			// Populate occupancy at every grain this basic's grain
			// specializes, by rolling the region coordinates up.
			for gi, grain := range e.grains {
				if !grain.GeneralizationOf(m.Grain) {
					continue
				}
				for i := range ss.coord {
					ss.coord[i] = s.Attr(i).RollBetween(g.Coords[i], m.Grain[i], grain[i])
				}
				enc := cube.AppendCoords(ss.enc[:0], ss.coord)
				ss.enc = enc
				if _, seen := ss.occ[gi][string(enc)]; !seen {
					ss.occ[gi][string(enc)] = ss.saveCoords(ss.coord)
				}
			}
		}
	}
	out, err := ss.finish(&stats)
	ss.noteArena()
	return out, stats, err
}

// finish derives every measure in topological order from the occupancy
// index and the basic aggregates, then materializes results.
func (ss *Session) finish(stats *Stats) ([]Result, error) {
	e := ss.e
	for oi, m := range e.order {
		vm := ss.values[oi]
		switch m.Kind {
		case workflow.Basic:
			for k, agg := range ss.aggs[oi] {
				if v := agg.Result(); !math.IsNaN(v) {
					vm[k] = v
				}
			}
		case workflow.Self:
			ss.evalSelf(oi, m, vm)
		case workflow.Inherit:
			ss.evalInherit(oi, m, vm)
		case workflow.Rollup:
			ss.evalRollup(oi, m, vm)
		case workflow.Sliding:
			ss.evalSliding(oi, m, vm, stats)
		default:
			return nil, fmt.Errorf("localeval: unknown kind %v", m.Kind)
		}
	}

	// Materialize results in deterministic order.
	keys := ss.keybuf[:0]
	for oi, m := range e.order {
		vm := ss.values[oi]
		gi := e.gidxOf[oi]
		keys = keys[:0]
		for k := range vm {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			ss.results = append(ss.results, Result{
				Measure: m.Name,
				Region:  cube.Region{Grain: m.Grain, Coord: ss.occ[gi][k]},
				Value:   vm[k],
			})
		}
	}
	ss.keybuf = keys[:0]
	stats.Results = int64(len(ss.results))
	return ss.results, nil
}

// lookupAt resolves source measure order[si]'s value for the region with
// the given coordinates at grain g, rolling up to the source's grain as
// needed. It probes through session scratch and never allocates.
func (ss *Session) lookupAt(si int, coords []int64, g cube.Grain) (float64, bool) {
	s := ss.e.schema
	sg := ss.e.order[si].Grain
	for i := range coords {
		ss.roll[i] = s.Attr(i).RollBetween(coords[i], g[i], sg[i])
	}
	enc := cube.AppendCoords(ss.enc[:0], ss.roll)
	ss.enc = enc
	v, ok := ss.values[si][string(enc)]
	return v, ok
}

func (ss *Session) evalSelf(oi int, m *workflow.Measure, vm map[string]float64) {
	gi := ss.e.gidxOf[oi]
	srcs := ss.e.srcIdx[oi]
	if cap(ss.args) < len(srcs) {
		ss.args = make([]float64, len(srcs))
	}
	args := ss.args[:len(srcs)]
	for k, coords := range ss.occ[gi] {
		for i, si := range srcs {
			v, ok := ss.lookupAt(si, coords, m.Grain)
			if !ok {
				v = math.NaN()
			}
			args[i] = v
		}
		if v := m.Expr.Eval(args); !math.IsNaN(v) {
			vm[k] = v
		}
	}
}

func (ss *Session) evalInherit(oi int, m *workflow.Measure, vm map[string]float64) {
	gi := ss.e.gidxOf[oi]
	si := ss.e.srcIdx[oi][0]
	for k, coords := range ss.occ[gi] {
		if v, ok := ss.lookupAt(si, coords, m.Grain); ok && !math.IsNaN(v) {
			vm[k] = v
		}
	}
}

func (ss *Session) evalRollup(oi int, m *workflow.Measure, vm map[string]float64) {
	e, s := ss.e, ss.e.schema
	si := e.srcIdx[oi][0]
	sm := e.order[si]
	sgi := e.gidxOf[si]
	gi := e.gidxOf[oi]
	aggs := ss.rollup
	// Fold source regions in sorted-key order: rollup aggregates like SUM
	// and AVG are order-sensitive in their final float bits, and map
	// iteration order would make repeated runs differ in the last ulp.
	keys := ss.keybuf[:0]
	for k := range ss.values[si] {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		v := ss.values[si][k]
		coords := ss.occ[sgi][k]
		for i := range coords {
			ss.roll[i] = s.Attr(i).RollBetween(coords[i], sm.Grain[i], m.Grain[i])
		}
		enc := cube.AppendCoords(ss.enc[:0], ss.roll)
		ss.enc = enc
		agg, ok := aggs[string(enc)]
		if !ok {
			agg = ss.getAgg(m.Agg)
			pk := string(enc)
			aggs[pk] = agg
			// Record the parent's coordinates so results can name the
			// region even if no measure grain matched it during the scan.
			if _, seen := ss.occ[gi][pk]; !seen {
				ss.occ[gi][pk] = ss.saveCoords(ss.roll)
			}
		}
		agg.Add(v)
	}
	ss.keybuf = keys[:0]
	for pk, agg := range aggs {
		if v := agg.Result(); !math.IsNaN(v) {
			vm[pk] = v
		}
		ss.putAgg(m.Agg, agg)
	}
	clear(aggs)
}

func (ss *Session) evalSliding(oi int, m *workflow.Measure, vm map[string]float64, stats *Stats) {
	e := ss.e
	gi := e.gidxOf[oi]
	si := e.srcIdx[oi][0]
	srcVals := ss.values[si]
	maxC := e.winMax[oi]
	agg := ss.getAgg(m.Agg)
	visit := func() {
		stats.WindowLookups++
		enc := cube.AppendCoords(ss.enc[:0], ss.probe)
		ss.enc = enc
		if v, ok := srcVals[string(enc)]; ok {
			agg.Add(v)
		}
	}
	for k, coords := range ss.occ[gi] {
		agg.Reset()
		ss.windowScan(m.Window, maxC, 0, coords, visit)
		if agg.N() == 0 {
			continue
		}
		if v := agg.Result(); !math.IsNaN(v) {
			vm[k] = v
		}
	}
	ss.putAgg(m.Agg, agg)
}

// windowScan enumerates the cross product of window offsets, filling
// ss.probe with each sibling's coordinates and invoking visit.
// Coordinates outside the attribute's domain — below zero or above the
// level's cardinality (maxC[i], precomputed per annotation) — can never
// be occupied and are skipped without a lookup.
func (ss *Session) windowScan(window []workflow.RangeAnn, maxC []int64, i int, base []int64, visit func()) {
	if i == 0 {
		copy(ss.probe, base)
	}
	if i == len(window) {
		visit()
		return
	}
	ann := window[i]
	// The grain level of the annotated attribute is the measure's grain
	// level; base coords are at that grain already.
	for off := ann.Low; off <= ann.High; off++ {
		c := base[ann.Attr] + off
		if c < 0 || c > maxC[i] {
			continue
		}
		ss.probe[ann.Attr] = c
		ss.windowScan(window, maxC, i+1, base, visit)
	}
	ss.probe[ann.Attr] = base[ann.Attr]
}
