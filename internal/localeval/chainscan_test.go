package localeval

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"github.com/casm-project/casm/internal/cube"
	"github.com/casm-project/casm/internal/measure"
	"github.com/casm-project/casm/internal/workflow"
)

func TestChainCompatible(t *testing.T) {
	s := testSchema(t) // attrs: k(word,group,ALL), v(value,ALL), t(sec..day,ALL)
	ki, _ := s.AttrIndex("k")
	vi, _ := s.AttrIndex("v")
	ti, _ := s.AttrIndex("t")
	all := s.GrainAll()
	perm := []int{ki, vi, ti}

	mk := func(levels map[int]int) cube.Grain {
		g := all.Clone()
		for a, l := range levels {
			g[a] = l
		}
		return g
	}
	hour, _ := s.Attr(ti).LevelIndex("hour")
	group, _ := s.Attr(ki).LevelIndex("group")

	cases := []struct {
		g    cube.Grain
		want bool
	}{
		{all, true},                        // single group
		{mk(map[int]int{ki: 0}), true},     // finest prefix
		{mk(map[int]int{ki: group}), true}, // coarse at last non-ALL position
		{mk(map[int]int{ki: 0, vi: 0, ti: hour}), true},
		{mk(map[int]int{ki: group, ti: hour}), false}, // coarse before a later non-ALL
		{mk(map[int]int{ti: hour}), false},            // ALL gap before t (k, v at ALL precede it)
		{mk(map[int]int{ki: 0, ti: hour}), false},     // v at ALL between non-ALL attrs
	}
	for i, c := range cases {
		if got := chainCompatible(s, c.g, perm); got != c.want {
			t.Errorf("case %d (%s): chainCompatible = %v, want %v", i, s.FormatGrain(c.g), got, c.want)
		}
	}
}

func TestChainPermutationPrefersUsedAttrs(t *testing.T) {
	s := testSchema(t)
	ki, _ := s.AttrIndex("k")
	ti, _ := s.AttrIndex("t")
	minute, _ := s.Attr(ti).LevelIndex("minute")
	g1 := s.GrainAll()
	g1[ti] = minute
	g2 := g1.Clone()
	g2[ki] = 0
	perm := chainPermutation(s, []cube.Grain{g1, g2})
	if perm[0] != ti {
		t.Errorf("perm = %v; t (used by both grains) should come first", perm)
	}
}

// TestChainScanEquivalence: on random workflows and data, ChainScan must
// produce exactly the HashScan results (it is a pure optimization).
func TestChainScanEquivalence(t *testing.T) {
	s := testSchema(t)
	rng := rand.New(rand.NewSource(5))
	ti, _ := s.AttrIndex("t")
	hour, _ := s.Attr(ti).LevelIndex("hour")

	for trial := 0; trial < 20; trial++ {
		w := workflow.New(s)
		// Mix of chain-friendly and chain-hostile grains.
		grains := []cube.Grain{
			s.MustGrain(cube.GrainSpec{Attr: "k", Level: "word"}, cube.GrainSpec{Attr: "t", Level: "minute"}),
			s.MustGrain(cube.GrainSpec{Attr: "k", Level: "group"}, cube.GrainSpec{Attr: "t", Level: "hour"}),
			s.MustGrain(cube.GrainSpec{Attr: "v", Level: "value"}),
			s.MustGrain(cube.GrainSpec{Attr: "t", Level: "day"}),
		}
		aggs := []measure.Spec{{Func: measure.Sum}, {Func: measure.Median}, {Func: measure.Avg}, {Func: measure.CountDistinct}}
		n := 1 + rng.Intn(4)
		for i := 0; i < n; i++ {
			name := fmt.Sprintf("b%d", i)
			if err := w.AddBasic(name, grains[rng.Intn(len(grains))], aggs[rng.Intn(len(aggs))], "v"); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.AddSliding("sl", grains[1], measure.Spec{Func: measure.Sum}, "b0",
			workflow.RangeAnn{Attr: ti, Low: -2, High: 0}); err != nil {
			// b0's grain may differ from grains[1]; skip the window then.
			_ = hour
		}
		e, err := New(w)
		if err != nil {
			t.Fatal(err)
		}
		records := make([]cube.Record, 300+rng.Intn(500))
		for i := range records {
			records[i] = rec(rng.Int63n(10), rng.Int63n(1000), rng.Int63n(2*86400))
		}
		hashOut, hs, err := e.Evaluate(append([]cube.Record(nil), records...), Options{Scan: HashScan})
		if err != nil {
			t.Fatal(err)
		}
		chainOut, cs, err := e.Evaluate(append([]cube.Record(nil), records...), Options{Scan: ChainScan})
		if err != nil {
			t.Fatal(err)
		}
		if hs.ScannedRecords != cs.ScannedRecords || cs.SortedItems != int64(len(records)) {
			t.Fatalf("stats mismatch: %+v vs %+v", hs, cs)
		}
		if len(hashOut) != len(chainOut) {
			t.Fatalf("trial %d: %d vs %d results", trial, len(hashOut), len(chainOut))
		}
		for i := range hashOut {
			h, c := hashOut[i], chainOut[i]
			if h.Measure != c.Measure || h.Region.Key() != c.Region.Key() ||
				(h.Value != c.Value && !(math.IsNaN(h.Value) && math.IsNaN(c.Value))) {
				t.Fatalf("trial %d result %d: %+v vs %+v", trial, i, h, c)
			}
		}
	}
}

func BenchmarkScanModes(b *testing.B) {
	s := testSchema(b)
	w := workflow.New(s)
	gFine := s.MustGrain(cube.GrainSpec{Attr: "k", Level: "word"}, cube.GrainSpec{Attr: "t", Level: "minute"})
	gCoarse := s.MustGrain(cube.GrainSpec{Attr: "k", Level: "group"}, cube.GrainSpec{Attr: "t", Level: "hour"})
	if err := w.AddBasic("fine", gFine, measure.Spec{Func: measure.Sum}, "v"); err != nil {
		b.Fatal(err)
	}
	if err := w.AddBasic("coarse", gCoarse, measure.Spec{Func: measure.Avg}, "v"); err != nil {
		b.Fatal(err)
	}
	e, err := New(w)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	records := make([]cube.Record, 50_000)
	for i := range records {
		records[i] = rec(rng.Int63n(10), rng.Int63n(1000), rng.Int63n(2*86400))
	}
	for _, mode := range []struct {
		name string
		scan ScanMode
	}{{"hash", HashScan}, {"chain", ChainScan}} {
		b.Run(mode.name, func(b *testing.B) {
			cp := make([]cube.Record, len(records))
			for i := 0; i < b.N; i++ {
				copy(cp, records)
				if _, _, err := e.Evaluate(cp, Options{Scan: mode.scan}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(records)*b.N)/b.Elapsed().Seconds(), "records/s")
		})
	}
}
