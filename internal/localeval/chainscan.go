package localeval

import (
	"sort"

	"github.com/casm-project/casm/internal/cube"
	"github.com/casm-project/casm/internal/measure"
	"github.com/casm-project/casm/internal/workflow"
)

// ScanMode selects how the block scan builds groups.
type ScanMode int

const (
	// HashScan aggregates every grain through a hash table (robust
	// default; order-insensitive).
	HashScan ScanMode = iota
	// ChainScan follows [4]'s single-sort-single-scan idea more closely:
	// records are sorted by a permutation of the attributes chosen from
	// the workflow's grains, and every grain that is *chain-compatible*
	// with that order is aggregated by streaming over contiguous groups —
	// one group-boundary comparison per record instead of a hash probe.
	// Grains off the chain fall back to hashing. Results are identical to
	// HashScan; only the constant factor changes.
	ChainScan
)

// chainPermutation orders attributes so that as many grains as possible
// become chain-compatible: attributes used (non-ALL) by many grains come
// first, with finer average levels preferred earlier.
func chainPermutation(s *cube.Schema, grains []cube.Grain) []int {
	type score struct {
		attr   int
		used   int // number of grains with this attribute below ALL
		levels int // sum of levels (finer = smaller)
	}
	scores := make([]score, s.NumAttrs())
	for i := range scores {
		scores[i].attr = i
	}
	for _, g := range grains {
		for i, li := range g {
			if li != s.Attr(i).AllIndex() {
				scores[i].used++
				scores[i].levels += li
			}
		}
	}
	sort.SliceStable(scores, func(a, b int) bool {
		if scores[a].used != scores[b].used {
			return scores[a].used > scores[b].used
		}
		return scores[a].levels < scores[b].levels
	})
	perm := make([]int, len(scores))
	for i, sc := range scores {
		perm[i] = sc.attr
	}
	return perm
}

// chainCompatible reports whether grain g has contiguous groups when
// records are sorted lexicographically by their finest values in perm
// order: every permuted attribute before g's last non-ALL attribute must
// be at the finest level (so equal sort prefixes imply equal group
// coordinates), and the last non-ALL attribute may be at any level
// (roll-up is monotone, so its groups stay contiguous).
func chainCompatible(s *cube.Schema, g cube.Grain, perm []int) bool {
	lastNonAll := -1
	for i := len(perm) - 1; i >= 0; i-- {
		if g[perm[i]] != s.Attr(perm[i]).AllIndex() {
			lastNonAll = i
			break
		}
	}
	for i := 0; i < lastNonAll; i++ {
		if g[perm[i]] != 0 {
			return false
		}
	}
	// Mapped attributes roll up through tables that need not be monotone
	// in the finest value, so a coarse mapped level cannot anchor a chain.
	if lastNonAll >= 0 {
		a := perm[lastNonAll]
		if s.Attr(a).Mapped() && g[a] != 0 {
			return false
		}
	}
	return true
}

// sortRecordsByPerm orders records lexicographically by their values in
// perm order.
func sortRecordsByPerm(records []cube.Record, perm []int) {
	sort.Slice(records, func(i, j int) bool {
		a, b := records[i], records[j]
		for _, k := range perm {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}

// chainState streams one chain-compatible grain: it keeps the open
// group's coordinates and (for basic measures on that grain) open
// aggregators, flushing on group boundaries.
type chainState struct {
	gi     int
	grain  cube.Grain
	open   bool
	coords []int64
	basics []*chainBasic
	occ    *regionIndex
}

type chainBasic struct {
	m    *workflow.Measure
	aggs map[string]measure.Aggregator
	cur  measure.Aggregator
}

func (cs *chainState) boundary(coords []int64) bool {
	if !cs.open {
		return true
	}
	for i, c := range coords {
		if cs.coords[i] != c {
			return true
		}
	}
	return false
}

func (cs *chainState) flush() {
	if !cs.open {
		return
	}
	k := cube.EncodeCoords(cs.coords)
	if _, seen := cs.occ.coords[k]; !seen {
		cs.occ.coords[k] = append([]int64(nil), cs.coords...)
	}
	for _, b := range cs.basics {
		if b.cur != nil {
			b.aggs[k] = b.cur
			b.cur = nil
		}
	}
	cs.open = false
}

func (cs *chainState) openGroup(coords []int64) {
	copy(cs.coords, coords)
	cs.open = true
	for _, b := range cs.basics {
		b.cur = b.m.Agg.New()
	}
}
