package localeval

import (
	"sort"

	"github.com/casm-project/casm/internal/cube"
	"github.com/casm-project/casm/internal/measure"
)

// ScanMode selects how the block scan builds groups.
type ScanMode int

const (
	// HashScan aggregates every grain through a hash table (robust
	// default; order-insensitive).
	HashScan ScanMode = iota
	// ChainScan follows [4]'s single-sort-single-scan idea more closely:
	// records are sorted by a permutation of the attributes chosen from
	// the workflow's grains, and every grain that is *chain-compatible*
	// with that order is aggregated by streaming over contiguous groups —
	// one group-boundary comparison per record instead of a hash probe.
	// Grains off the chain fall back to hashing. Results are identical to
	// HashScan; only the constant factor changes.
	ChainScan
)

// chainPermutation orders attributes so that as many grains as possible
// become chain-compatible: attributes used (non-ALL) by many grains come
// first, with finer average levels preferred earlier.
func chainPermutation(s *cube.Schema, grains []cube.Grain) []int {
	type score struct {
		attr   int
		used   int // number of grains with this attribute below ALL
		levels int // sum of levels (finer = smaller)
	}
	scores := make([]score, s.NumAttrs())
	for i := range scores {
		scores[i].attr = i
	}
	for _, g := range grains {
		for i, li := range g {
			if li != s.Attr(i).AllIndex() {
				scores[i].used++
				scores[i].levels += li
			}
		}
	}
	sort.SliceStable(scores, func(a, b int) bool {
		if scores[a].used != scores[b].used {
			return scores[a].used > scores[b].used
		}
		return scores[a].levels < scores[b].levels
	})
	perm := make([]int, len(scores))
	for i, sc := range scores {
		perm[i] = sc.attr
	}
	return perm
}

// chainCompatible reports whether grain g has contiguous groups when
// records are sorted lexicographically by their finest values in perm
// order: every permuted attribute before g's last non-ALL attribute must
// be at the finest level (so equal sort prefixes imply equal group
// coordinates), and the last non-ALL attribute may be at any level
// (roll-up is monotone, so its groups stay contiguous).
func chainCompatible(s *cube.Schema, g cube.Grain, perm []int) bool {
	lastNonAll := -1
	for i := len(perm) - 1; i >= 0; i-- {
		if g[perm[i]] != s.Attr(perm[i]).AllIndex() {
			lastNonAll = i
			break
		}
	}
	for i := 0; i < lastNonAll; i++ {
		if g[perm[i]] != 0 {
			return false
		}
	}
	// Mapped attributes roll up through tables that need not be monotone
	// in the finest value, so a coarse mapped level cannot anchor a chain.
	if lastNonAll >= 0 {
		a := perm[lastNonAll]
		if s.Attr(a).Mapped() && g[a] != 0 {
			return false
		}
	}
	return true
}

// chainRun streams one chain-compatible grain: it keeps the open group's
// coordinates and (for basic measures on that grain) open aggregators,
// flushing on group boundaries. The per-grain runs live on the Session
// and are reused across groups.
type chainRun struct {
	open   bool
	coords []int64
	aggs   []measure.Aggregator // parallel to Evaluator.basicsAt[gi]
}

func (cr *chainRun) boundary(coords []int64) bool {
	if !cr.open {
		return true
	}
	for i, c := range coords {
		if cr.coords[i] != c {
			return true
		}
	}
	return false
}

// scanChain sorts the arena rows by the evaluator's precomputed attribute
// permutation (reusing the index-permutation sort) and streams contiguous
// groups for every chain-compatible grain, hashing only the rest.
func (ss *Session) scanChain(stats *Stats) {
	e, s := ss.e, ss.e.schema
	ss.sortRows(e.perm)
	stats.SortedItems = int64(len(ss.rows))
	if ss.chain == nil {
		ss.chain = make([]chainRun, len(e.grains))
		for gi := range ss.chain {
			ss.chain[gi].coords = make([]int64, e.arity)
			ss.chain[gi].aggs = make([]measure.Aggregator, len(e.basicsAt[gi]))
		}
	}
	for gi := range ss.chain {
		ss.chain[gi].open = false
	}
	for _, ri := range ss.rows {
		rec := ss.row(ri)
		stats.ScannedRecords++
		for gi := range e.grains {
			if !e.chainOK[gi] {
				continue
			}
			cr := &ss.chain[gi]
			s.CoordOf(rec, e.grains[gi], ss.coord)
			if cr.boundary(ss.coord) {
				ss.flushChain(gi)
				ss.openChain(gi, ss.coord)
			}
			for bi, oi := range e.basicsAt[gi] {
				m := e.order[oi]
				if m.InputAttr >= 0 {
					cr.aggs[bi].Add(float64(rec[m.InputAttr]))
				} else {
					cr.aggs[bi].Add(0)
				}
			}
		}
		for gi := range e.grains {
			if e.chainOK[gi] {
				continue
			}
			s.CoordOf(rec, e.grains[gi], ss.coord)
			enc := cube.AppendCoords(ss.encG[gi][:0], ss.coord)
			ss.encG[gi] = enc
			if _, ok := ss.occ[gi][string(enc)]; !ok {
				ss.insertRegion(gi, enc, ss.coord)
			}
			for _, oi := range e.basicsAt[gi] {
				m := e.order[oi]
				agg := ss.aggs[oi][string(enc)]
				if m.InputAttr >= 0 {
					agg.Add(float64(rec[m.InputAttr]))
				} else {
					agg.Add(0)
				}
			}
		}
	}
	for gi := range e.grains {
		if e.chainOK[gi] {
			ss.flushChain(gi)
		}
	}
}

// flushChain closes grain gi's open group, registering its region and
// handing the open aggregators to the basic-aggregate maps.
func (ss *Session) flushChain(gi int) {
	cr := &ss.chain[gi]
	if !cr.open {
		return
	}
	enc := cube.AppendCoords(ss.enc[:0], cr.coords)
	ss.enc = enc
	k := string(enc)
	if _, seen := ss.occ[gi][k]; !seen {
		ss.occ[gi][k] = ss.saveCoords(cr.coords)
	}
	for bi, oi := range ss.e.basicsAt[gi] {
		ss.aggs[oi][k] = cr.aggs[bi]
		cr.aggs[bi] = nil
	}
	cr.open = false
}

// openChain starts a new group for grain gi with pooled aggregators.
func (ss *Session) openChain(gi int, coords []int64) {
	cr := &ss.chain[gi]
	copy(cr.coords, coords)
	cr.open = true
	for bi, oi := range ss.e.basicsAt[gi] {
		cr.aggs[bi] = ss.getAgg(ss.e.order[oi].Agg)
	}
}
