package distkey

import (
	"math/rand"
	"testing"

	"github.com/casm-project/casm/internal/cube"
	"github.com/casm-project/casm/internal/measure"
	"github.com/casm-project/casm/internal/workflow"
)

// weblogSchema mirrors the paper's motivating example.
func weblogSchema(t testing.TB) *cube.Schema {
	t.Helper()
	return cube.MustSchema(
		cube.MustAttribute("keyword", cube.Nominal, 1000,
			cube.Level{Name: "word", Span: 1},
			cube.Level{Name: "group", Span: 50},
		),
		cube.MustAttribute("pagecount", cube.Numeric, 201,
			cube.Level{Name: "value", Span: 1},
			cube.Level{Name: "level", Span: 67},
		),
		cube.MustAttribute("adcount", cube.Numeric, 201,
			cube.Level{Name: "value", Span: 1},
			cube.Level{Name: "level", Span: 67},
		),
		cube.TimeAttribute("time", 2),
	)
}

// weblogWorkflow builds the paper's M1–M4 query.
func weblogWorkflow(t testing.TB, withM4 bool) *workflow.Workflow {
	t.Helper()
	s := weblogSchema(t)
	w := workflow.New(s)
	kwMinute := s.MustGrain(cube.GrainSpec{Attr: "keyword", Level: "word"}, cube.GrainSpec{Attr: "time", Level: "minute"})
	kwHour := s.MustGrain(cube.GrainSpec{Attr: "keyword", Level: "word"}, cube.GrainSpec{Attr: "time", Level: "hour"})
	ti, _ := s.AttrIndex("time")
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(w.AddBasic("M1", kwMinute, measure.Spec{Func: measure.Median}, "pagecount"))
	must(w.AddBasic("M2", kwHour, measure.Spec{Func: measure.Median}, "adcount"))
	must(w.AddSelf("M3", kwMinute, measure.Ratio(), "M1", "M2"))
	if withM4 {
		must(w.AddSliding("M4", kwMinute, measure.Spec{Func: measure.Avg}, "M3",
			workflow.RangeAnn{Attr: ti, Low: -9, High: 0}))
	}
	return w
}

func TestDeriveNoSiblingIsLCA(t *testing.T) {
	// Theorem 2: without sibling relationships the minimal feasible key is
	// the LCA of all measure granularities, unannotated. For M1–M3 the
	// paper states this key is <K:keyword, T:hour>.
	w := weblogWorkflow(t, false)
	s := w.Schema()
	key, per, err := Derive(w)
	if err != nil {
		t.Fatal(err)
	}
	if key.IsOverlapping() {
		t.Fatalf("no-sibling key is annotated: %s", key.Format(s))
	}
	want := s.MustGrain(cube.GrainSpec{Attr: "keyword", Level: "word"}, cube.GrainSpec{Attr: "time", Level: "hour"})
	if !key.Grain.Equal(want) {
		t.Fatalf("key = %s, want <keyword:word, time:hour>", key.Format(s))
	}
	// Per-measure keys: M1's is its own grain.
	m1 := per["M1"]
	g1 := s.MustGrain(cube.GrainSpec{Attr: "keyword", Level: "word"}, cube.GrainSpec{Attr: "time", Level: "minute"})
	if !m1.Grain.Equal(g1) || m1.IsOverlapping() {
		t.Errorf("M1 key = %s", m1.Format(s))
	}
}

func TestDeriveWeblogWithSliding(t *testing.T) {
	// Adding M4 (10-minute window) forces an overlapping key. M3's key is
	// at the hour level, so the window converts to hour offsets (-1, 0):
	// <keyword:word, time:hour(-1,0)>.
	w := weblogWorkflow(t, true)
	s := w.Schema()
	key, per, err := Derive(w)
	if err != nil {
		t.Fatal(err)
	}
	ti, _ := s.AttrIndex("time")
	hour, _ := s.Attr(ti).LevelIndex("hour")
	if key.Grain[ti] != hour {
		t.Fatalf("key time level = %d, want hour; key = %s", key.Grain[ti], key.Format(s))
	}
	if got := key.Anns[ti]; got != (Ann{Low: -1, High: 0}) {
		t.Fatalf("key time annotation = %+v, want (-1,0); key = %s", got, key.Format(s))
	}
	if got := key.Width(); got != 1 {
		t.Errorf("d = %d, want 1", got)
	}
	// The sliding measure's own key matches the query key here.
	if !per["M4"].Equal(key) {
		t.Errorf("M4 key %s != query key %s", per["M4"].Format(s), key.Format(s))
	}
}

func TestDeriveRollupAndInherit(t *testing.T) {
	s := weblogSchema(t)
	w := workflow.New(s)
	minuteG := s.MustGrain(cube.GrainSpec{Attr: "time", Level: "minute"})
	dayG := s.MustGrain(cube.GrainSpec{Attr: "time", Level: "day"})
	if err := w.AddBasic("b", minuteG, measure.Spec{Func: measure.Count}, ""); err != nil {
		t.Fatal(err)
	}
	if err := w.AddRollup("r", dayG, measure.Spec{Func: measure.Sum}, "b"); err != nil {
		t.Fatal(err)
	}
	if err := w.AddInherit("i", minuteG, "r"); err != nil {
		t.Fatal(err)
	}
	key, _, err := Derive(w)
	if err != nil {
		t.Fatal(err)
	}
	ti, _ := s.AttrIndex("time")
	day, _ := s.Attr(ti).LevelIndex("day")
	if key.Grain[ti] != day || key.IsOverlapping() {
		t.Errorf("key = %s, want <time:day> unannotated", key.Format(s))
	}
}

func TestOpConvertAddsWindowAtKeyLevel(t *testing.T) {
	s := weblogSchema(t)
	ti, _ := s.AttrIndex("time")
	minute, _ := s.Attr(ti).LevelIndex("minute")
	grain := s.MustGrain(cube.GrainSpec{Attr: "time", Level: "minute"})
	k := FromGrain(grain)
	out := OpConvert(s, k, grain, []workflow.RangeAnn{{Attr: ti, Low: -9, High: 0}})
	if out.Grain[ti] != minute {
		t.Fatalf("level changed: %s", out.Format(s))
	}
	if out.Anns[ti] != (Ann{Low: -9, High: 0}) {
		t.Fatalf("ann = %+v", out.Anns[ti])
	}
	// Key at ALL: no annotation needed.
	kAll := FromGrain(s.GrainAll())
	out2 := OpConvert(s, kAll, grain, []workflow.RangeAnn{{Attr: ti, Low: -9, High: 0}})
	if out2.IsOverlapping() {
		t.Errorf("ALL-level key got annotated: %s", out2.Format(s))
	}
	// Existing annotation accumulates.
	k3 := FromGrain(grain)
	k3.Anns[ti] = Ann{Low: -5, High: 2}
	out3 := OpConvert(s, k3, grain, []workflow.RangeAnn{{Attr: ti, Low: -9, High: 0}})
	if out3.Anns[ti] != (Ann{Low: -14, High: 2}) {
		t.Errorf("accumulated ann = %+v, want (-14,2)", out3.Anns[ti])
	}
}

func TestConvertAnnPaperExamples(t *testing.T) {
	// Regular-span analogue of the paper's day→month discussion with a
	// 60-minute "month": a (0,10)-minute window converts to (0,1) hours;
	// a (0,60)-minute window converts to (0,1) hours exactly and
	// (0,61) → (0,2).
	s := weblogSchema(t)
	ti, _ := s.AttrIndex("time")
	minute, _ := s.Attr(ti).LevelIndex("minute")
	hour, _ := s.Attr(ti).LevelIndex("hour")
	cases := []struct {
		in   Ann
		want Ann
	}{
		{Ann{0, 10}, Ann{0, 1}},
		{Ann{0, 60}, Ann{0, 1}},
		{Ann{0, 61}, Ann{0, 2}},
		{Ann{-10, 0}, Ann{-1, 0}},
		{Ann{-60, 0}, Ann{-1, 0}},
		{Ann{-61, 0}, Ann{-2, 0}},
		{Ann{0, 0}, Ann{0, 0}},
	}
	for _, c := range cases {
		if got := ConvertAnn(s, ti, c.in, minute, hour); got != c.want {
			t.Errorf("ConvertAnn(%+v) = %+v, want %+v", c.in, got, c.want)
		}
	}
	// To ALL: always zero.
	if got := ConvertAnn(s, ti, Ann{-100, 100}, minute, s.Attr(ti).AllIndex()); !got.IsZero() {
		t.Errorf("ALL conversion = %+v", got)
	}
}

func TestConvertAnnConservativeProperty(t *testing.T) {
	// For every alignment t and offset j in [low, high], the coarse region
	// of t+j must lie within [T+low', T+high'] where T is t's coarse region.
	s := weblogSchema(t)
	ti, _ := s.AttrIndex("time")
	at := s.Attr(ti)
	rng := rand.New(rand.NewSource(23))
	levels := []string{"second", "minute", "hour", "day"}
	for iter := 0; iter < 2000; iter++ {
		fi := rng.Intn(len(levels) - 1)
		ci := fi + 1 + rng.Intn(len(levels)-fi-1)
		from, _ := at.LevelIndex(levels[fi])
		to, _ := at.LevelIndex(levels[ci])
		span := at.SpanBetween(from, to)
		low := rng.Int63n(200) - 100
		high := low + rng.Int63n(150)
		conv := ConvertAnn(s, ti, Ann{low, high}, from, to)
		// Random alignment within coarse region.
		t0 := rng.Int63n(at.CardAt(from))
		T := t0 / span
		for _, j := range []int64{low, high, (low + high) / 2} {
			c := (t0 + j) / span
			if t0+j < 0 {
				c = floorDiv(t0+j, span)
			}
			if c < T+conv.Low || c > T+conv.High {
				t.Fatalf("not conservative: span=%d ann=(%d,%d) conv=%+v t=%d j=%d: coarse %d outside [%d,%d]",
					span, low, high, conv, t0, j, c, T+conv.Low, T+conv.High)
			}
		}
	}
}

func TestOpCombineUnionsAnnotations(t *testing.T) {
	s := weblogSchema(t)
	ti, _ := s.AttrIndex("time")
	minuteG := s.MustGrain(cube.GrainSpec{Attr: "time", Level: "minute"})
	hourG := s.MustGrain(cube.GrainSpec{Attr: "time", Level: "hour"})
	k1 := FromGrain(minuteG)
	k1.Anns[ti] = Ann{Low: -120, High: 0} // two hours back, in minutes
	k2 := FromGrain(hourG)
	k2.Anns[ti] = Ann{Low: 0, High: 3}
	out := OpCombine(s, k1, k2)
	hour, _ := s.Attr(ti).LevelIndex("hour")
	if out.Grain[ti] != hour {
		t.Fatalf("combined level not hour: %s", out.Format(s))
	}
	// k1 at hour level: (-2, 0); union with (0,3) = (-2,3).
	if out.Anns[ti] != (Ann{Low: -2, High: 3}) {
		t.Errorf("combined ann = %+v, want (-2,3)", out.Anns[ti])
	}
	// Combining with an ALL-grain key keeps annotations of the finer one.
	out2 := OpCombine(s, k2, FromGrain(s.GrainAll()))
	if !out2.Grain.Equal(s.GrainAll()) || out2.IsOverlapping() {
		t.Errorf("combine with ALL = %s", out2.Format(s))
	}
	// Zero keys: finest grain.
	out3 := OpCombine(s)
	if !out3.Grain.Equal(s.GrainFinest()) {
		t.Errorf("empty combine = %s", out3.Format(s))
	}
}

func TestGeneralizesTheorem1(t *testing.T) {
	// Theorem 1: every generalization of a feasible key is feasible.
	// RollUpAttr and CoarsenAttr must produce keys that Generalize the
	// original; Generalizes must be reflexive and transitive.
	w := weblogWorkflow(t, true)
	s := w.Schema()
	key, _, err := Derive(w)
	if err != nil {
		t.Fatal(err)
	}
	if !Generalizes(s, key, key) {
		t.Error("Generalizes not reflexive")
	}
	ti, _ := s.AttrIndex("time")
	ki, _ := s.AttrIndex("keyword")
	up := RollUpAttr(s, key, ki)
	if !Generalizes(s, up, key) {
		t.Errorf("rolled-up key %s does not generalize %s", up.Format(s), key.Format(s))
	}
	if Generalizes(s, key, up) {
		t.Error("generalization order is backwards")
	}
	day, _ := s.Attr(ti).LevelIndex("day")
	coarse := CoarsenAttr(s, key, ti, day)
	if !Generalizes(s, coarse, key) {
		t.Errorf("coarsened key %s does not generalize %s", coarse.Format(s), key.Format(s))
	}
	both := RollUpAttr(s, coarse, ki)
	if !Generalizes(s, both, key) || !Generalizes(s, both, coarse) || !Generalizes(s, both, up) {
		t.Error("transitivity broken")
	}
	// Narrowing an annotation breaks generalization.
	narrow := key.Clone()
	narrow.Anns[ti] = Ann{Low: 0, High: 0}
	if Generalizes(s, narrow, key) {
		t.Error("narrower annotation claimed to generalize")
	}
}

func TestKeyFormat(t *testing.T) {
	w := weblogWorkflow(t, true)
	s := w.Schema()
	key, _, _ := Derive(w)
	if got := key.Format(s); got != "<keyword:word, time:hour(-1,0)>" {
		t.Errorf("format = %q", got)
	}
	if got := FromGrain(s.GrainAll()).Format(s); got != "<ALL>" {
		t.Errorf("ALL format = %q", got)
	}
}

func TestCoarsenAttrPanicsOnFiner(t *testing.T) {
	s := weblogSchema(t)
	ti, _ := s.AttrIndex("time")
	hourG := s.MustGrain(cube.GrainSpec{Attr: "time", Level: "hour"})
	k := FromGrain(hourG)
	defer func() {
		if recover() == nil {
			t.Error("no panic on finer CoarsenAttr")
		}
	}()
	CoarsenAttr(s, k, ti, 0)
}

func TestFloorDiv(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{7, 2, 3}, {-7, 2, -4}, {-4, 2, -2}, {0, 5, 0}, {-1, 60, -1}, {59, 60, 0},
	}
	for _, c := range cases {
		if got := floorDiv(c.a, c.b); got != c.want {
			t.Errorf("floorDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}
