package distkey

import (
	"math/rand"
	"testing"

	"github.com/casm-project/casm/internal/cube"
)

func blockSchema(t testing.TB) *cube.Schema {
	t.Helper()
	return cube.MustSchema(
		cube.MustAttribute("k", cube.Nominal, 100,
			cube.Level{Name: "word", Span: 1},
			cube.Level{Name: "group", Span: 10},
		),
		cube.TimeAttribute("t", 4),
	)
}

func TestNewBlockMapperValidation(t *testing.T) {
	s := blockSchema(t)
	ti, _ := s.AttrIndex("t")
	ki, _ := s.AttrIndex("k")
	hourG := s.MustGrain(cube.GrainSpec{Attr: "t", Level: "hour"})
	plain := FromGrain(hourG)

	if _, err := NewBlockMapper(s, plain, 1); err != nil {
		t.Errorf("plain key rejected: %v", err)
	}
	if _, err := NewBlockMapper(s, plain, 0); err == nil {
		t.Error("cf=0 accepted")
	}
	if _, err := NewBlockMapper(s, plain, 5); err == nil {
		t.Error("cf>1 without annotation accepted")
	}
	ann := plain.Clone()
	ann.Anns[ti] = Ann{Low: -2, High: 0}
	if _, err := NewBlockMapper(s, ann, 5); err != nil {
		t.Errorf("annotated key rejected: %v", err)
	}
	nom := plain.Clone()
	nom.Grain[ki] = 0
	nom.Anns[ki] = Ann{Low: 0, High: 1}
	nom.Anns[ti] = Ann{}
	if _, err := NewBlockMapper(s, nom, 1); err == nil {
		t.Error("nominal annotation accepted")
	}
	short := Key{Grain: cube.Grain{0}, Anns: []Ann{{}}}
	if _, err := NewBlockMapper(s, short, 1); err == nil {
		t.Error("wrong arity accepted")
	}
}

func TestNonOverlappingSingleBlock(t *testing.T) {
	s := blockSchema(t)
	key := FromGrain(s.MustGrain(cube.GrainSpec{Attr: "k", Level: "group"}, cube.GrainSpec{Attr: "t", Level: "day"}))
	bm, err := NewBlockMapper(s, key, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		rec := cube.Record{rng.Int63n(100), rng.Int63n(4 * 86400)}
		var blocks []string
		bm.BlocksFor(rec, func(b string) { blocks = append(blocks, b) })
		if len(blocks) != 1 {
			t.Fatalf("non-overlapping emitted %d blocks", len(blocks))
		}
		if blocks[0] != bm.HomeBlock(rec) {
			t.Fatal("first block is not home block")
		}
		// Ownership of the record's own fine region must be the home block.
		r := s.RegionOf(rec, s.GrainFinest())
		if bm.Owner(r) != blocks[0] {
			t.Fatal("owner of record's region differs from home block")
		}
	}
	if bm.ReplicationFactor() != 1 {
		t.Errorf("replication = %v", bm.ReplicationFactor())
	}
	if got := bm.NumBlocks(); got != 10*4 {
		t.Errorf("NumBlocks = %d, want 40", got)
	}
}

// TestOverlapCoverageProperty is the core correctness property of
// overlapping distribution (Section III-B.2): for every record and every
// output key-coordinate c whose window [c+Low, c+High] includes the
// record's key coordinate, the block owning c must be among the blocks the
// record is dispatched to — otherwise some reducer could not compute its
// local results. Conversely no extra blocks may be emitted.
func TestOverlapCoverageProperty(t *testing.T) {
	s := blockSchema(t)
	ti, _ := s.AttrIndex("t")
	at := s.Attr(ti)
	hour, _ := at.LevelIndex("hour")
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 100; iter++ {
		low := rng.Int63n(7) - 6 // [-6, 0]
		high := low + rng.Int63n(6)
		if high > 0 {
			high = 0
		}
		if rng.Intn(3) == 0 {
			high = rng.Int63n(3) // sometimes forward windows
		}
		if low == 0 && high == 0 {
			low = -1 // keep the key genuinely overlapping
		}
		cf := int64(1 + rng.Intn(8))
		key := FromGrain(s.MustGrain(cube.GrainSpec{Attr: "k", Level: "group"}, cube.GrainSpec{Attr: "t", Level: "hour"}))
		key.Anns[ti] = Ann{Low: low, High: high}
		bm, err := NewBlockMapper(s, key, cf)
		if err != nil {
			t.Fatal(err)
		}
		card := at.CardAt(hour)
		for trial := 0; trial < 30; trial++ {
			rec := cube.Record{rng.Int63n(100), rng.Int63n(at.Card())}
			emitted := map[string]bool{}
			bm.BlocksFor(rec, func(b string) {
				if emitted[b] {
					t.Fatalf("duplicate block emitted")
				}
				emitted[b] = true
			})
			tc := at.Roll(rec[ti], hour)
			want := map[string]bool{}
			// Home block always wanted.
			want[bm.HomeBlock(rec)] = true
			for c := tc - high; c <= tc-low; c++ {
				if c < 0 || c >= card {
					continue
				}
				r := s.RegionOf(rec, key.Grain)
				r.Coord[ti] = c
				want[bm.Owner(r)] = true
			}
			if len(emitted) != len(want) {
				t.Fatalf("ann=(%d,%d) cf=%d: emitted %d blocks, want %d", low, high, cf, len(emitted), len(want))
			}
			for b := range want {
				if !emitted[b] {
					t.Fatalf("ann=(%d,%d) cf=%d: missing block for needed output", low, high, cf)
				}
			}
		}
	}
}

func TestClusteringReducesDuplication(t *testing.T) {
	// The motivation for the clustering factor (Section III-C): with
	// d = 9 and cf = 1, each record lands in ~10 blocks; with cf = 10,
	// in at most 2. Measure total emitted pairs over a dataset.
	s := blockSchema(t)
	ti, _ := s.AttrIndex("t")
	key := FromGrain(s.MustGrain(cube.GrainSpec{Attr: "t", Level: "minute"}))
	key.Anns[ti] = Ann{Low: -9, High: 0}
	count := func(cf int64) int {
		bm, err := NewBlockMapper(s, key, cf)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(3))
		total := 0
		for i := 0; i < 2000; i++ {
			rec := cube.Record{0, rng.Int63n(s.Attr(ti).Card())}
			bm.BlocksFor(rec, func(string) { total++ })
		}
		return total
	}
	c1, c10 := count(1), count(10)
	if c1 < 9*2000 {
		t.Errorf("cf=1 emitted %d pairs, expected near 10x input", c1)
	}
	if c10 > 2*2000+200 {
		t.Errorf("cf=10 emitted %d pairs, expected near 1.9x input", c10)
	}
	bm10, _ := NewBlockMapper(s, key, 10)
	if rf := bm10.ReplicationFactor(); rf != 1.9 {
		t.Errorf("replication factor = %v, want 1.9", rf)
	}
	bm1, _ := NewBlockMapper(s, key, 1)
	if rf := bm1.ReplicationFactor(); rf != 10 {
		t.Errorf("replication factor = %v, want 10", rf)
	}
}

func TestNumBlocksWithClustering(t *testing.T) {
	s := blockSchema(t)
	ti, _ := s.AttrIndex("t")
	key := FromGrain(s.MustGrain(cube.GrainSpec{Attr: "k", Level: "group"}, cube.GrainSpec{Attr: "t", Level: "day"}))
	key.Anns[ti] = Ann{Low: -1, High: 0}
	bm, err := NewBlockMapper(s, key, 3)
	if err != nil {
		t.Fatal(err)
	}
	// 10 keyword groups x ceil(4 days / 3) = 10 x 2 = 20.
	if got := bm.NumBlocks(); got != 20 {
		t.Errorf("NumBlocks = %d, want 20", got)
	}
}

func TestOwnerConsistentAcrossGrains(t *testing.T) {
	// A measure record's owner must not depend on the grain it is stated
	// at, as long as the grains are specializations of the key grain.
	s := blockSchema(t)
	ti, _ := s.AttrIndex("t")
	key := FromGrain(s.MustGrain(cube.GrainSpec{Attr: "k", Level: "group"}, cube.GrainSpec{Attr: "t", Level: "hour"}))
	key.Anns[ti] = Ann{Low: -2, High: 0}
	bm, err := NewBlockMapper(s, key, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	fine := s.GrainFinest()
	mid := s.MustGrain(cube.GrainSpec{Attr: "k", Level: "word"}, cube.GrainSpec{Attr: "t", Level: "minute"})
	for i := 0; i < 200; i++ {
		rec := cube.Record{rng.Int63n(100), rng.Int63n(4 * 86400)}
		o1 := bm.Owner(s.RegionOf(rec, fine))
		o2 := bm.Owner(s.RegionOf(rec, mid))
		o3 := bm.Owner(s.RegionOf(rec, key.Grain))
		if o1 != o2 || o2 != o3 {
			t.Fatalf("owner differs across grains")
		}
	}
}

// TestMultiAnnotationCoverageProperty extends the coverage property to
// keys with two annotated attributes (the mapper generalizes beyond the
// paper's single-annotation implementation): for every record and every
// output region whose windows cover it along *both* annotated attributes,
// the record must reach the block owning that region.
func TestMultiAnnotationCoverageProperty(t *testing.T) {
	s := cube.MustSchema(
		cube.MustAttribute("v", cube.Numeric, 60,
			cube.Level{Name: "value", Span: 1},
			cube.Level{Name: "band", Span: 6},
		),
		cube.TimeAttribute("t", 1),
	)
	vi, _ := s.AttrIndex("v")
	ti, _ := s.AttrIndex("t")
	hour, _ := s.Attr(ti).LevelIndex("hour")
	key := FromGrain(s.MustGrain(
		cube.GrainSpec{Attr: "v", Level: "band"},
		cube.GrainSpec{Attr: "t", Level: "hour"},
	))
	key.Anns[vi] = Ann{Low: -1, High: 1}
	key.Anns[ti] = Ann{Low: -3, High: 0}

	rng := rand.New(rand.NewSource(77))
	for _, cf := range []int64{1, 2, 4} {
		bm, err := NewBlockMapper(s, key, cf)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := bm.ReplicationFactor(), float64(2+cf)/float64(cf)*float64(3+cf)/float64(cf); got != want {
			t.Errorf("cf=%d replication = %v, want %v", cf, got, want)
		}
		vCard := s.Attr(vi).CardAt(key.Grain[vi])
		tCard := s.Attr(ti).CardAt(hour)
		for trial := 0; trial < 80; trial++ {
			rec := cube.Record{rng.Int63n(60), rng.Int63n(86400)}
			emitted := map[string]bool{}
			bm.BlocksFor(rec, func(b string) {
				if emitted[b] {
					t.Fatalf("duplicate block emitted")
				}
				emitted[b] = true
			})
			vc := s.Attr(vi).Roll(rec[vi], key.Grain[vi])
			tc := s.Attr(ti).Roll(rec[ti], hour)
			want := map[string]bool{bm.HomeBlock(rec): true}
			for cv := vc - 1; cv <= vc+1; cv++ {
				if cv < 0 || cv >= vCard {
					continue
				}
				for ct := tc; ct <= tc+3; ct++ {
					if ct < 0 || ct >= tCard {
						continue
					}
					r := s.RegionOf(rec, key.Grain)
					r.Coord[vi], r.Coord[ti] = cv, ct
					want[bm.Owner(r)] = true
				}
			}
			if len(emitted) != len(want) {
				t.Fatalf("cf=%d: emitted %d blocks, want %d", cf, len(emitted), len(want))
			}
			for b := range want {
				if !emitted[b] {
					t.Fatalf("cf=%d: missing block", cf)
				}
			}
		}
	}
	// NumBlocks: ceil(10/cf) bands x ceil(24/cf) hours.
	bm, _ := NewBlockMapper(s, key, 4)
	if got := bm.NumBlocks(); got != 3*6 {
		t.Errorf("NumBlocks = %d, want 18", got)
	}
}

// TestSessionMatchesPerCall pins the session refactor: a single Session
// reused across a whole record stream must produce exactly the key
// sequences of the allocating per-call forms, for plain, single- and
// multi-annotated keys, clustered or not — the intern cache and scratch
// reuse must never leak state between calls.
func TestSessionMatchesPerCall(t *testing.T) {
	s := blockSchema(t)
	ti, _ := s.AttrIndex("t")
	rng := rand.New(rand.NewSource(5))
	cases := []struct {
		name string
		ann  Ann
		cf   int64
	}{
		{"plain", Ann{}, 1},
		{"overlap", Ann{Low: -5, High: 1}, 1},
		{"overlap_clustered", Ann{Low: -9, High: 0}, 7},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			key := FromGrain(s.MustGrain(cube.GrainSpec{Attr: "k", Level: "group"}, cube.GrainSpec{Attr: "t", Level: "hour"}))
			key.Anns[ti] = c.ann
			bm, err := NewBlockMapper(s, key, c.cf)
			if err != nil {
				t.Fatal(err)
			}
			ss := bm.NewSession()
			distinct := map[string]bool{}
			var interns int64
			for i := 0; i < 500; i++ {
				rec := cube.Record{rng.Int63n(100), rng.Int63n(4 * 86400)}
				var want []string
				bm.BlocksFor(rec, func(b string) { want = append(want, b) })
				got := ss.Blocks(rec)
				if len(got) != len(want) {
					t.Fatalf("record %d: session emitted %d blocks, per-call %d", i, len(got), len(want))
				}
				for j := range got {
					if string(got[j]) != want[j] {
						t.Fatalf("record %d block %d: session %q, per-call %q", i, j, got[j], want[j])
					}
					distinct[string(got[j])] = true
				}
				interns += int64(len(got))
				if h, w := string(ss.HomeBlock(rec)), bm.HomeBlock(rec); h != w {
					t.Fatalf("record %d: session home %q, per-call %q", i, h, w)
				}
				interns++
				r := s.RegionOf(rec, key.Grain)
				if o, w := string(ss.Owner(r)), bm.Owner(r); o != w {
					t.Fatalf("record %d: session owner %q, per-call %q", i, o, w)
				}
				interns++
			}
			// Accounting: misses happen exactly once per distinct key (no
			// cache overflow here), and the cache absorbs at least every
			// emitted key beyond first sight (Blocks interns the home block
			// once more than it emits, so hits can exceed emitted-minus-new).
			if ss.Misses != int64(len(distinct)) {
				t.Errorf("misses = %d, want one per distinct key %d", ss.Misses, len(distinct))
			}
			if ss.Hits < interns-ss.Misses-int64(len(distinct)) {
				t.Errorf("hits = %d, implausibly few for %d intern calls over %d keys", ss.Hits, interns, len(distinct))
			}
		})
	}
}

// TestSessionKeysStayValid pins the interning contract: key bytes
// returned by earlier Blocks calls must stay valid and byte-stable (the
// returned outer slice is reused, but the key bytes live in arena chunks
// that are never reallocated for the session's lifetime).
func TestSessionKeysStayValid(t *testing.T) {
	s := blockSchema(t)
	ti, _ := s.AttrIndex("t")
	key := FromGrain(s.MustGrain(cube.GrainSpec{Attr: "k", Level: "group"}, cube.GrainSpec{Attr: "t", Level: "hour"}))
	key.Anns[ti] = Ann{Low: -3, High: 0}
	bm, err := NewBlockMapper(s, key, 2)
	if err != nil {
		t.Fatal(err)
	}
	ss := bm.NewSession()
	rng := rand.New(rand.NewSource(6))
	recs := make([]cube.Record, 300)
	saved := make([][][]byte, len(recs))
	for i := range recs {
		recs[i] = cube.Record{rng.Int63n(100), rng.Int63n(4 * 86400)}
		saved[i] = append([][]byte(nil), ss.Blocks(recs[i])...)
	}
	for i, rec := range recs {
		var want []string
		bm.BlocksFor(rec, func(b string) { want = append(want, b) })
		for j := range want {
			if string(saved[i][j]) != want[j] {
				t.Fatalf("record %d block %d changed after later session use", i, j)
			}
		}
	}
}
