package distkey

import (
	"fmt"

	"github.com/casm-project/casm/internal/cube"
)

// BlockMapper turns the chosen execution plan — a distribution key plus a
// clustering factor — into the mapper- and reducer-side key logic of
// Sections III-B.2 and III-C:
//
//   - BlocksFor enumerates the distribution blocks a raw record must be
//     dispatched to (one block normally; several when overlapping
//     distribution duplicates the record into neighbouring blocks);
//   - Owner identifies the unique block allowed to output a given result
//     region, implementing the reducer-side filter that removes duplicated
//     and incorrect results ("we only output a measure record in the
//     reducer when its associated region resides in the region specified
//     by the current group").
//
// With clustering factor cf, cf neighbouring key regions along each
// annotated attribute merge into one block: the region coordinate t maps
// to block coordinate t div cf, so "regions with neighboring time values
// will be assigned with the same key value".
//
// The paper's implementation (and its optimizer) restricts execution to a
// single annotated attribute; this mapper generalizes to several, taking
// the cross product of per-attribute block ranges, with the same
// clustering factor applied to every annotated attribute. The optimizer
// still emits single-annotated plans, but forced multi-annotated keys
// execute correctly.
type BlockMapper struct {
	schema   *cube.Schema
	key      Key
	cf       int64
	annAttrs []int   // annotated attribute indices (possibly empty)
	annCards []int64 // key-level cardinality per annotated attribute
}

// NewBlockMapper validates the plan and returns a mapper. cf must be ≥ 1
// and is only meaningful for overlapping keys (it must be 1 otherwise).
func NewBlockMapper(s *cube.Schema, key Key, cf int64) (*BlockMapper, error) {
	if len(key.Grain) != s.NumAttrs() || len(key.Anns) != s.NumAttrs() {
		return nil, fmt.Errorf("distkey: key arity does not match schema")
	}
	if cf < 1 {
		return nil, fmt.Errorf("distkey: clustering factor %d < 1", cf)
	}
	bm := &BlockMapper{schema: s, key: key.Clone(), cf: cf}
	for _, x := range key.AnnotatedAttrs() {
		if s.Attr(x).Kind() == cube.Nominal {
			return nil, fmt.Errorf("distkey: annotated attribute %q is nominal", s.Attr(x).Name())
		}
		bm.annAttrs = append(bm.annAttrs, x)
		bm.annCards = append(bm.annCards, s.Attr(x).CardAt(key.Grain[x]))
	}
	if len(bm.annAttrs) == 0 && cf != 1 {
		return nil, fmt.Errorf("distkey: clustering factor %d needs an annotated attribute", cf)
	}
	return bm, nil
}

// Key returns the plan's distribution key.
func (bm *BlockMapper) Key() Key { return bm.key }

// ClusteringFactor returns the plan's clustering factor.
func (bm *BlockMapper) ClusteringFactor() int64 { return bm.cf }

// AnnotatedAttr returns the first annotated attribute index, or -1 when
// the key is non-overlapping.
func (bm *BlockMapper) AnnotatedAttr() int {
	if len(bm.annAttrs) == 0 {
		return -1
	}
	return bm.annAttrs[0]
}

// NumBlocks returns the total number of distribution blocks the plan
// produces (the paper's n_G/cf for single-annotated overlapping keys).
func (bm *BlockMapper) NumBlocks() int64 {
	n := int64(1)
	ann := 0
	for i, li := range bm.key.Grain {
		card := bm.schema.Attr(i).CardAt(li)
		if ann < len(bm.annAttrs) && bm.annAttrs[ann] == i {
			card = (card + bm.cf - 1) / bm.cf
			ann++
		}
		n *= card
	}
	return n
}

// ReplicationFactor estimates how many blocks an average record is copied
// to: the product over annotated attributes of (d_i+cf)/cf.
func (bm *BlockMapper) ReplicationFactor() float64 {
	r := 1.0
	for _, x := range bm.annAttrs {
		d := bm.key.Anns[x].Width()
		r *= float64(d+bm.cf) / float64(bm.cf)
	}
	return r
}

// blockCoord fills dst with the block coordinates for key-grain
// coordinates src, applying the clustering division on every annotated
// attribute.
func (bm *BlockMapper) blockCoord(src, dst []int64) {
	copy(dst, src)
	for _, x := range bm.annAttrs {
		dst[x] = src[x] / bm.cf
	}
}

// BlocksFor calls emit with the block key of every distribution block
// record rec must be dispatched to. The first emitted block is always the
// record's home block (the one whose key is "generated without being
// adjusted with a delta value"); overlapping plans may emit further
// neighbouring blocks.
func (bm *BlockMapper) BlocksFor(rec cube.Record, emit func(blockKey string)) {
	coord := make([]int64, bm.schema.NumAttrs())
	bm.schema.CoordOf(rec, bm.key.Grain, coord)
	block := make([]int64, len(coord))
	bm.blockCoord(coord, block)
	home := cube.EncodeCoords(block)
	emit(home)
	if len(bm.annAttrs) == 0 {
		return
	}
	// Per annotated attribute X with annotation (Low, High): the record
	// at key coordinate t is input to output regions at key coordinates
	// c with t ∈ [c+Low, c+High], i.e. c ∈ [t−High, t−Low]; the blocks
	// covering those outputs form the per-attribute range below. The
	// record goes to the cross product of the ranges, skipping the home
	// block (already emitted).
	los := make([]int64, len(bm.annAttrs))
	his := make([]int64, len(bm.annAttrs))
	for i, x := range bm.annAttrs {
		ann := bm.key.Anns[x]
		t := coord[x]
		lo, hi := t-ann.High, t-ann.Low
		if lo < 0 {
			lo = 0
		}
		if max := bm.annCards[i] - 1; hi > max {
			hi = max
		}
		if lo > hi {
			// No valid output coordinate along this attribute: the record
			// contributes to nothing beyond its home block.
			return
		}
		los[i], his[i] = floorDiv(lo, bm.cf), floorDiv(hi, bm.cf)
	}
	var walk func(i int)
	walk = func(i int) {
		if i == len(bm.annAttrs) {
			k := cube.EncodeCoords(block)
			if k != home {
				emit(k)
			}
			return
		}
		for b := los[i]; b <= his[i]; b++ {
			block[bm.annAttrs[i]] = b
			walk(i + 1)
		}
	}
	walk(0)
}

// Owner returns the block key of the unique block allowed to output a
// measure record whose region is r. The region's grain must be at least
// as fine as the key's grain on every attribute (guaranteed for feasible
// keys, which generalize every measure grain).
func (bm *BlockMapper) Owner(r cube.Region) string {
	coord := make([]int64, bm.schema.NumAttrs())
	for i := range coord {
		coord[i] = bm.schema.Attr(i).RollBetween(r.Coord[i], r.Grain[i], bm.key.Grain[i])
	}
	block := make([]int64, len(coord))
	bm.blockCoord(coord, block)
	return cube.EncodeCoords(block)
}

// HomeBlock returns the block key of rec's home block (no delta
// adjustment), used by the non-overlapping fast path and by tests.
func (bm *BlockMapper) HomeBlock(rec cube.Record) string {
	coord := make([]int64, bm.schema.NumAttrs())
	bm.schema.CoordOf(rec, bm.key.Grain, coord)
	block := make([]int64, len(coord))
	bm.blockCoord(coord, block)
	return cube.EncodeCoords(block)
}
