package distkey

import (
	"bytes"
	"fmt"

	"github.com/casm-project/casm/internal/cube"
)

// BlockMapper turns the chosen execution plan — a distribution key plus a
// clustering factor — into the mapper- and reducer-side key logic of
// Sections III-B.2 and III-C:
//
//   - BlocksFor enumerates the distribution blocks a raw record must be
//     dispatched to (one block normally; several when overlapping
//     distribution duplicates the record into neighbouring blocks);
//   - Owner identifies the unique block allowed to output a given result
//     region, implementing the reducer-side filter that removes duplicated
//     and incorrect results ("we only output a measure record in the
//     reducer when its associated region resides in the region specified
//     by the current group").
//
// With clustering factor cf, cf neighbouring key regions along each
// annotated attribute merge into one block: the region coordinate t maps
// to block coordinate t div cf, so "regions with neighboring time values
// will be assigned with the same key value".
//
// The paper's implementation (and its optimizer) restricts execution to a
// single annotated attribute; this mapper generalizes to several, taking
// the cross product of per-attribute block ranges, with the same
// clustering factor applied to every annotated attribute. The optimizer
// still emits single-annotated plans, but forced multi-annotated keys
// execute correctly.
type BlockMapper struct {
	schema   *cube.Schema
	key      Key
	cf       int64
	annAttrs []int   // annotated attribute indices (possibly empty)
	annCards []int64 // key-level cardinality per annotated attribute
}

// NewBlockMapper validates the plan and returns a mapper. cf must be ≥ 1
// and is only meaningful for overlapping keys (it must be 1 otherwise).
func NewBlockMapper(s *cube.Schema, key Key, cf int64) (*BlockMapper, error) {
	if len(key.Grain) != s.NumAttrs() || len(key.Anns) != s.NumAttrs() {
		return nil, fmt.Errorf("distkey: key arity does not match schema")
	}
	if cf < 1 {
		return nil, fmt.Errorf("distkey: clustering factor %d < 1", cf)
	}
	bm := &BlockMapper{schema: s, key: key.Clone(), cf: cf}
	for _, x := range key.AnnotatedAttrs() {
		if s.Attr(x).Kind() == cube.Nominal {
			return nil, fmt.Errorf("distkey: annotated attribute %q is nominal", s.Attr(x).Name())
		}
		bm.annAttrs = append(bm.annAttrs, x)
		bm.annCards = append(bm.annCards, s.Attr(x).CardAt(key.Grain[x]))
	}
	if len(bm.annAttrs) == 0 && cf != 1 {
		return nil, fmt.Errorf("distkey: clustering factor %d needs an annotated attribute", cf)
	}
	return bm, nil
}

// Key returns the plan's distribution key.
func (bm *BlockMapper) Key() Key { return bm.key }

// ClusteringFactor returns the plan's clustering factor.
func (bm *BlockMapper) ClusteringFactor() int64 { return bm.cf }

// AnnotatedAttr returns the first annotated attribute index, or -1 when
// the key is non-overlapping.
func (bm *BlockMapper) AnnotatedAttr() int {
	if len(bm.annAttrs) == 0 {
		return -1
	}
	return bm.annAttrs[0]
}

// NumBlocks returns the total number of distribution blocks the plan
// produces (the paper's n_G/cf for single-annotated overlapping keys).
func (bm *BlockMapper) NumBlocks() int64 {
	n := int64(1)
	ann := 0
	for i, li := range bm.key.Grain {
		card := bm.schema.Attr(i).CardAt(li)
		if ann < len(bm.annAttrs) && bm.annAttrs[ann] == i {
			card = (card + bm.cf - 1) / bm.cf
			ann++
		}
		n *= card
	}
	return n
}

// ReplicationFactor estimates how many blocks an average record is copied
// to: the product over annotated attributes of (d_i+cf)/cf.
func (bm *BlockMapper) ReplicationFactor() float64 {
	r := 1.0
	for _, x := range bm.annAttrs {
		d := bm.key.Anns[x].Width()
		r *= float64(d+bm.cf) / float64(bm.cf)
	}
	return r
}

// blockCoord fills dst with the block coordinates for key-grain
// coordinates src, applying the clustering division on every annotated
// attribute.
func (bm *BlockMapper) blockCoord(src, dst []int64) {
	copy(dst, src)
	for _, x := range bm.annAttrs {
		dst[x] = src[x] / bm.cf
	}
}

// BlocksFor calls emit with the block key of every distribution block
// record rec must be dispatched to. The first emitted block is always the
// record's home block (the one whose key is "generated without being
// adjusted with a delta value"); overlapping plans may emit further
// neighbouring blocks.
//
// This convenience form allocates scratch per call; hot loops should hold
// a Session and use Session.Blocks instead.
func (bm *BlockMapper) BlocksFor(rec cube.Record, emit func(blockKey string)) {
	ss := bm.NewSession()
	for _, k := range ss.Blocks(rec) {
		emit(string(k))
	}
}

// Owner returns the block key of the unique block allowed to output a
// measure record whose region is r. The region's grain must be at least
// as fine as the key's grain on every attribute (guaranteed for feasible
// keys, which generalize every measure grain). Allocating form of
// Session.Owner.
func (bm *BlockMapper) Owner(r cube.Region) string {
	return string(bm.NewSession().Owner(r))
}

// HomeBlock returns the block key of rec's home block (no delta
// adjustment), used by the non-overlapping fast path and by tests.
// Allocating form of Session.HomeBlock.
func (bm *BlockMapper) HomeBlock(rec cube.Record) string {
	return string(bm.NewSession().HomeBlock(rec))
}

// maxInterned bounds a session's intern cache. A mapper task normally
// touches far fewer distinct blocks than this; the bound only guards
// pathological plans (huge block counts with adversarial record order)
// from growing the cache without limit. On overflow the cache is reset
// wholesale — correctness is unaffected, later keys just re-allocate.
const maxInterned = 1 << 17

// Session is the per-task scratch state for one BlockMapper user: the
// coordinate/block buffers that BlocksFor, Owner and HomeBlock would
// otherwise allocate per call, plus an intern cache of arena-backed
// block-key byte slices. Records arrive clustered in practice, so a
// last-block fast path and a small map keyed by the encoded block
// coordinates turn the per-record key encoding into a cache hit; a miss
// copies the key into the session's arena exactly once.
//
// Interning contract: the returned key slices are SHARED across calls
// (and with every other consumer of the same session) — callers must
// treat them as immutable and must never assume a fresh allocation. The
// arena is chunked and chunks are never reallocated or reused, so every
// key the session has ever returned stays valid (and byte-stable) for
// the session's lifetime — shuffle batches may retain them for the whole
// job. A Session is single-goroutine; the BlockMapper itself stays
// read-only and may be shared by any number of sessions.
type Session struct {
	bm *BlockMapper

	coord, block []int64
	los, his     []int64
	keys         [][]byte // reused Blocks output slice
	enc          []byte   // reused block-coord encode buffer
	lastKey      []byte   // intern fast path: key of the last encoded block
	interned     map[string][]byte
	arena        []byte // current arena chunk; old chunks stay live via interned keys
	arenaNext    int    // next chunk's capacity (geometric growth, capped)

	// Hits counts intern-cache hits (last-block fast path included);
	// Misses counts keys that had to be allocated. The engine surfaces
	// Hits as TaskStats.KeyCacheHits.
	Hits, Misses int64
}

// NewSession returns fresh per-task scratch state for bm.
func (bm *BlockMapper) NewSession() *Session {
	n := bm.schema.NumAttrs()
	return &Session{
		bm:       bm,
		coord:    make([]int64, n),
		block:    make([]int64, n),
		los:      make([]int64, len(bm.annAttrs)),
		his:      make([]int64, len(bm.annAttrs)),
		enc:      make([]byte, 0, n*3),
		interned: make(map[string][]byte),
	}
}

// Arena chunks grow geometrically from arenaChunkMin to arenaChunkMax:
// a session interning a handful of keys (short-lived per-task sessions
// dominate numerically) costs hundreds of bytes instead of a fixed
// 64KiB, while a key-dense session still converges to one make per 64KiB
// of distinct key bytes.
const (
	arenaChunkMin = 256
	arenaChunkMax = 1 << 16
)

// arenaCopy copies b into the session arena and returns the stable copy.
// A full chunk is abandoned (kept alive by the keys pointing into it)
// and a fresh one started — chunks never grow in place, so handed-out
// key slices can never be moved or logically extended.
func (ss *Session) arenaCopy(b []byte) []byte {
	if cap(ss.arena)-len(ss.arena) < len(b) {
		size := ss.arenaNext
		if size < arenaChunkMin {
			size = arenaChunkMin
		}
		if next := size * 2; next <= arenaChunkMax {
			ss.arenaNext = next
		} else {
			ss.arenaNext = arenaChunkMax
		}
		if len(b) > size {
			size = len(b)
		}
		ss.arena = make([]byte, 0, size)
	}
	start := len(ss.arena)
	ss.arena = append(ss.arena, b...)
	return ss.arena[start:len(ss.arena):len(ss.arena)]
}

// intern returns the canonical key bytes for the block coordinates in
// ss.block, copying into the arena only on first sight.
func (ss *Session) intern() []byte {
	ss.enc = cube.AppendCoords(ss.enc[:0], ss.block)
	// Last-block fast path: consecutive records overwhelmingly map to the
	// same block when the data is clustered along the annotated attribute.
	if len(ss.lastKey) > 0 && bytes.Equal(ss.enc, ss.lastKey) {
		ss.Hits++
		return ss.lastKey
	}
	if k, ok := ss.interned[string(ss.enc)]; ok {
		ss.Hits++
		ss.lastKey = k
		return k
	}
	if len(ss.interned) >= maxInterned {
		clear(ss.interned)
	}
	k := ss.arenaCopy(ss.enc)
	ss.interned[string(k)] = k
	ss.Misses++
	ss.lastKey = k
	return k
}

// Blocks returns the block keys record rec must be dispatched to, home
// block first (the semantics of BlockMapper.BlocksFor). The returned
// outer slice is reused by the next Blocks call; the key byte slices are
// interned in the session arena and stay valid for the session's
// lifetime.
func (ss *Session) Blocks(rec cube.Record) [][]byte {
	bm := ss.bm
	bm.schema.CoordOf(rec, bm.key.Grain, ss.coord)
	bm.blockCoord(ss.coord, ss.block)
	home := ss.intern()
	ss.keys = append(ss.keys[:0], home)
	if len(bm.annAttrs) == 0 {
		return ss.keys
	}
	// Per annotated attribute X with annotation (Low, High): the record
	// at key coordinate t is input to output regions at key coordinates
	// c with t ∈ [c+Low, c+High], i.e. c ∈ [t−High, t−Low]; the blocks
	// covering those outputs form the per-attribute range below. The
	// record goes to the cross product of the ranges, skipping the home
	// block (already emitted).
	for i, x := range bm.annAttrs {
		ann := bm.key.Anns[x]
		t := ss.coord[x]
		lo, hi := t-ann.High, t-ann.Low
		if lo < 0 {
			lo = 0
		}
		if max := bm.annCards[i] - 1; hi > max {
			hi = max
		}
		if lo > hi {
			// No valid output coordinate along this attribute: the record
			// contributes to nothing beyond its home block.
			return ss.keys
		}
		ss.los[i], ss.his[i] = floorDiv(lo, bm.cf), floorDiv(hi, bm.cf)
	}
	// Odometer walk over the cross product of the per-attribute ranges
	// (last annotated attribute varies fastest, matching the recursive
	// enumeration this replaces), skipping the home block.
	for i, x := range bm.annAttrs {
		ss.block[x] = ss.los[i]
	}
	for {
		// Interned keys are canonical, so pointer identity (&k[0] ==
		// &home[0]) would suffice; bytes.Equal is as cheap and clearer.
		if k := ss.intern(); !bytes.Equal(k, home) {
			ss.keys = append(ss.keys, k)
		}
		i := len(bm.annAttrs) - 1
		for ; i >= 0; i-- {
			x := bm.annAttrs[i]
			if ss.block[x] < ss.his[i] {
				ss.block[x]++
				break
			}
			ss.block[x] = ss.los[i]
		}
		if i < 0 {
			return ss.keys
		}
	}
}

// Owner is the allocation-free form of BlockMapper.Owner: the returned
// key is interned in the session's cache (the reduce-side ownership
// filter probes the same few block keys over and over).
func (ss *Session) Owner(r cube.Region) []byte {
	bm := ss.bm
	for i := range ss.coord {
		ss.coord[i] = bm.schema.Attr(i).RollBetween(r.Coord[i], r.Grain[i], bm.key.Grain[i])
	}
	bm.blockCoord(ss.coord, ss.block)
	return ss.intern()
}

// HomeBlock is the allocation-free form of BlockMapper.HomeBlock.
func (ss *Session) HomeBlock(rec cube.Record) []byte {
	bm := ss.bm
	bm.schema.CoordOf(rec, bm.key.Grain, ss.coord)
	bm.blockCoord(ss.coord, ss.block)
	return ss.intern()
}
