// Package distkey implements the paper's (possibly overlapping)
// distribution keys and the algorithms that derive a minimal feasible key
// for a composite subset measure query (ICDE'08, Section III-B, Tables III
// and IV).
//
// A distribution key is a granularity with an optional range annotation
// per attribute: <X1:D1(l1,h1), …, Xd:Dd(ld,hd)>. The key is feasible for
// a query when, for every measure record in the result, some key region
// (extended by the annotations) contains the record's entire coverage set,
// so the measure can be computed locally inside one distribution block.
package distkey

import (
	"fmt"
	"strings"

	"github.com/casm-project/casm/internal/cube"
	"github.com/casm-project/casm/internal/workflow"
)

// Ann is a range annotation on one key attribute: a block responsible for
// key coordinate c also carries the data of key regions c+Low … c+High.
// The zero value means no annotation.
type Ann struct {
	Low  int64
	High int64
}

// IsZero reports whether the annotation is absent.
func (a Ann) IsZero() bool { return a.Low == 0 && a.High == 0 }

// Width returns the paper's d = High − Low: how many extra neighbouring
// regions each block must carry.
func (a Ann) Width() int64 { return a.High - a.Low }

// Key is a distribution key: a grain plus one annotation per attribute.
type Key struct {
	Grain cube.Grain
	Anns  []Ann
}

// FromGrain returns the unannotated key of grain g.
func FromGrain(g cube.Grain) Key {
	return Key{Grain: g.Clone(), Anns: make([]Ann, len(g))}
}

// Clone returns an independent copy of k.
func (k Key) Clone() Key {
	return Key{Grain: k.Grain.Clone(), Anns: append([]Ann(nil), k.Anns...)}
}

// Equal reports whether the keys are identical.
func (k Key) Equal(o Key) bool {
	if !k.Grain.Equal(o.Grain) || len(k.Anns) != len(o.Anns) {
		return false
	}
	for i := range k.Anns {
		if k.Anns[i] != o.Anns[i] {
			return false
		}
	}
	return true
}

// AnnotatedAttrs returns the indices of attributes carrying a non-zero
// annotation.
func (k Key) AnnotatedAttrs() []int {
	var out []int
	for i, a := range k.Anns {
		if !a.IsZero() {
			out = append(out, i)
		}
	}
	return out
}

// IsOverlapping reports whether any attribute is annotated.
func (k Key) IsOverlapping() bool { return len(k.AnnotatedAttrs()) > 0 }

// Width returns the paper's d for the single annotated attribute, or 0
// when the key does not overlap.
func (k Key) Width() int64 {
	var d int64
	for _, a := range k.Anns {
		if w := a.Width(); w > d {
			d = w
		}
	}
	return d
}

// Format renders the key in the paper's notation, e.g.
// <keyword:word, time:minute(0,10)>.
func (k Key) Format(s *cube.Schema) string {
	var parts []string
	for i, li := range k.Grain {
		attr := s.Attr(i)
		if li == attr.AllIndex() && k.Anns[i].IsZero() {
			continue
		}
		p := fmt.Sprintf("%s:%s", attr.Name(), attr.Level(li).Name)
		if !k.Anns[i].IsZero() {
			p += fmt.Sprintf("(%d,%d)", k.Anns[i].Low, k.Anns[i].High)
		}
		parts = append(parts, p)
	}
	if len(parts) == 0 {
		return "<ALL>"
	}
	return "<" + strings.Join(parts, ", ") + ">"
}

// floorDiv divides rounding toward negative infinity, the division needed
// for correct window arithmetic on negative offsets.
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// convertLow converts a low window offset from a fine level into units of
// a coarser level with span s fine units per coarse unit, conservatively
// (the converted window always covers the original): a window reaching l
// fine units below some fine region can reach at most floor(l/s) coarse
// regions below the enclosing coarse region.
func convertLow(l, s int64) int64 {
	if s <= 1 {
		return l
	}
	return floorDiv(l, s)
}

// convertHigh is the conservative upper-bound counterpart: a window
// reaching h fine units above can reach floor((h+s−1)/s) coarse regions
// above (worst case when the fine region sits at the end of its coarse
// region). The paper's example: a 60-day window spans at most
// floor((60+30)/31) = 2 months beyond the current one.
func convertHigh(h, s int64) int64 {
	if s <= 1 {
		return h
	}
	return floorDiv(h+s-1, s)
}

// ConvertAnn converts an annotation expressed in units of attribute
// attr's level `from` into (conservative) units of the coarser level `to`.
// Converting to ALL always yields the zero annotation: the single ALL
// region covers every sibling.
func ConvertAnn(s *cube.Schema, attr int, a Ann, from, to int) Ann {
	at := s.Attr(attr)
	if to == at.AllIndex() || a.IsZero() {
		// No annotation to convert (nominal — possibly irregular —
		// attributes always take this path, since they cannot carry
		// annotations).
		return Ann{}
	}
	if from == to {
		return a
	}
	span := at.SpanBetween(from, to)
	return Ann{Low: convertLow(a.Low, span), High: convertHigh(a.High, span)}
}

// OpConvert is the paper's Table III: given the feasible distribution key
// k of a sliding measure's source and the sibling condition (range
// annotations expressed at the measure's grain), produce a key feasible
// for the target measure. For each annotated attribute the window offsets
// are converted into the key's level and added onto the key's existing
// annotation; unannotated attributes are unchanged.
func OpConvert(s *cube.Schema, k Key, measureGrain cube.Grain, window []workflow.RangeAnn) Key {
	out := k.Clone()
	for _, w := range window {
		at := s.Attr(w.Attr)
		keyLevel := k.Grain[w.Attr]
		if keyLevel == at.AllIndex() {
			// The key already keeps the whole domain together; the window
			// needs no annotation.
			continue
		}
		span := at.SpanBetween(measureGrain[w.Attr], keyLevel)
		out.Anns[w.Attr] = Ann{
			Low:  k.Anns[w.Attr].Low + convertLow(w.Low, span),
			High: k.Anns[w.Attr].High + convertHigh(w.High, span),
		}
	}
	return out
}

// OpCombine is the paper's Table IV: the least feasible key subsuming all
// the given keys. Per attribute it takes the common generalization
// (coarsest level) of the inputs' levels, converts every input's
// annotation into that level, and takes the union of the converted ranges.
func OpCombine(s *cube.Schema, keys ...Key) Key {
	if len(keys) == 0 {
		return FromGrain(s.GrainFinest())
	}
	grains := make([]cube.Grain, len(keys))
	for i, k := range keys {
		grains[i] = k.Grain
	}
	out := FromGrain(s.LCA(grains...))
	for x := 0; x < s.NumAttrs(); x++ {
		if out.Grain[x] == s.Attr(x).AllIndex() {
			continue // ALL needs no annotation
		}
		var low, high int64
		for _, k := range keys {
			a := ConvertAnn(s, x, k.Anns[x], k.Grain[x], out.Grain[x])
			if a.Low < low {
				low = a.Low
			}
			if a.High > high {
				high = a.High
			}
		}
		out.Anns[x] = Ann{Low: low, High: high}
	}
	return out
}

// Derive computes the minimal feasible distribution key for the workflow
// by walking measures in topological order (Section III-B.2): a basic
// measure's key is its grain; a composite measure's key is the OpCombine
// of its sources' keys (run through OpConvert when the dependency is a
// sibling relationship) together with the measure's own grain. The query's
// key is the OpCombine of all per-measure keys.
//
// The second return value maps each measure name to its individual
// feasible key, which the optimizer and EXPLAIN output use.
func Derive(w *workflow.Workflow) (Key, map[string]Key, error) {
	s := w.Schema()
	order, err := w.TopoOrder()
	if err != nil {
		return Key{}, nil, err
	}
	perMeasure := make(map[string]Key, len(order))
	for _, m := range order {
		switch m.Kind {
		case workflow.Basic:
			perMeasure[m.Name] = FromGrain(m.Grain)
		case workflow.Self, workflow.Rollup, workflow.Inherit:
			args := []Key{FromGrain(m.Grain)}
			for _, src := range m.Sources {
				args = append(args, perMeasure[src])
			}
			perMeasure[m.Name] = OpCombine(s, args...)
		case workflow.Sliding:
			src := perMeasure[m.Sources[0]]
			conv := OpConvert(s, src, m.Grain, m.Window)
			perMeasure[m.Name] = OpCombine(s, FromGrain(m.Grain), conv)
		default:
			return Key{}, nil, fmt.Errorf("distkey: unknown measure kind %v", m.Kind)
		}
	}
	all := make([]Key, 0, len(order))
	for _, m := range order {
		all = append(all, perMeasure[m.Name])
	}
	return OpCombine(s, all...), perMeasure, nil
}

// Generalizes reports whether key a subsumes key b: any block layout of a
// keeps together at least the data that b's layout keeps together, so by
// Theorem 1 feasibility of b implies feasibility of a. Per attribute, a's
// level must be equal or coarser and a's annotation must cover b's
// annotation converted to a's level.
func Generalizes(s *cube.Schema, a, b Key) bool {
	if !a.Grain.GeneralizationOf(b.Grain) {
		return false
	}
	for x := 0; x < s.NumAttrs(); x++ {
		if a.Grain[x] == s.Attr(x).AllIndex() {
			continue
		}
		conv := ConvertAnn(s, x, b.Anns[x], b.Grain[x], a.Grain[x])
		if a.Anns[x].Low > conv.Low || a.Anns[x].High < conv.High {
			return false
		}
	}
	return true
}

// RollUpAttr returns k with attribute x rolled up to ALL (annotation
// dropped): the paper's move for producing single-annotated candidate
// keys.
func RollUpAttr(s *cube.Schema, k Key, x int) Key {
	out := k.Clone()
	out.Grain[x] = s.Attr(x).AllIndex()
	out.Anns[x] = Ann{}
	return out
}

// CoarsenAttr returns k with attribute x coarsened to the given level and
// its annotation conservatively converted. It panics if level is finer
// than k's current level for x.
func CoarsenAttr(s *cube.Schema, k Key, x, level int) Key {
	if level < k.Grain[x] {
		panic(fmt.Sprintf("distkey: CoarsenAttr to finer level %d < %d", level, k.Grain[x]))
	}
	out := k.Clone()
	out.Anns[x] = ConvertAnn(s, x, k.Anns[x], k.Grain[x], level)
	out.Grain[x] = level
	return out
}
