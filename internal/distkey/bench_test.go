package distkey

import (
	"math/rand"
	"testing"

	"github.com/casm-project/casm/internal/cube"
)

// BenchmarkBlocksFor measures the mapper's key-generation hot path.
func BenchmarkBlocksFor(b *testing.B) {
	s := blockSchema(b)
	ti, _ := s.AttrIndex("t")
	rng := rand.New(rand.NewSource(1))
	records := make([]cube.Record, 10_000)
	for i := range records {
		records[i] = cube.Record{rng.Int63n(100), rng.Int63n(4 * 86400)}
	}
	cases := []struct {
		name string
		ann  Ann
		cf   int64
	}{
		{"plain", Ann{}, 1},
		{"overlap_d9_cf1", Ann{Low: -9, High: 0}, 1},
		{"overlap_d9_cf10", Ann{Low: -9, High: 0}, 10},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			key := FromGrain(s.MustGrain(cube.GrainSpec{Attr: "k", Level: "group"}, cube.GrainSpec{Attr: "t", Level: "hour"}))
			key.Anns[ti] = c.ann
			bm, err := NewBlockMapper(s, key, c.cf)
			if err != nil {
				b.Fatal(err)
			}
			var emitted int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, rec := range records {
					bm.BlocksFor(rec, func(string) { emitted++ })
				}
			}
			b.ReportMetric(float64(emitted)/float64(b.N*len(records)), "pairs/record")
		})
	}
}

// BenchmarkDerive measures minimal-key derivation on a weblog-style
// workflow.
func BenchmarkDerive(b *testing.B) {
	w := weblogWorkflow(b, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Derive(w); err != nil {
			b.Fatal(err)
		}
	}
}
