package distkey

import (
	"math/rand"
	"slices"
	"testing"

	"github.com/casm-project/casm/internal/cube"
)

// blocksForCases are the key shapes the mapper benchmark sweeps: the
// non-overlapping fast path, a wide overlapping annotation, and the same
// annotation tamed by clustering.
var blocksForCases = []struct {
	name string
	ann  Ann
	cf   int64
}{
	{"plain", Ann{}, 1},
	{"overlap_d9_cf1", Ann{Low: -9, High: 0}, 1},
	{"overlap_d9_cf10", Ann{Low: -9, High: 0}, 10},
}

// benchRecords builds the benchmark's record stream. Clustered order
// (ascending along t, how a sorted fact table arrives) exercises the
// session's last-block fast path; shuffled order falls back to the intern
// map.
func benchRecords(b *testing.B, clustered bool) []cube.Record {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	records := make([]cube.Record, 10_000)
	for i := range records {
		records[i] = cube.Record{rng.Int63n(100), rng.Int63n(4 * 86400)}
	}
	if clustered {
		slices.SortFunc(records, func(a, c cube.Record) int {
			if a[1] != c[1] {
				return int(a[1] - c[1])
			}
			return int(a[0] - c[0])
		})
	}
	return records
}

func benchMapper(b *testing.B, s *cube.Schema, ann Ann, cf int64) *BlockMapper {
	b.Helper()
	ti, _ := s.AttrIndex("t")
	key := FromGrain(s.MustGrain(cube.GrainSpec{Attr: "k", Level: "group"}, cube.GrainSpec{Attr: "t", Level: "hour"}))
	key.Anns[ti] = ann
	bm, err := NewBlockMapper(s, key, cf)
	if err != nil {
		b.Fatal(err)
	}
	return bm
}

// BenchmarkBlocksFor measures the mapper's key-generation hot path: one
// Session held across the record stream, the shape core's map tasks use.
// Run with -benchmem; the overlapping variants are the ones the interned
// session path is meant to flatten.
func BenchmarkBlocksFor(b *testing.B) {
	s := blockSchema(b)
	for _, c := range blocksForCases {
		for _, order := range []string{"clustered", "shuffled"} {
			b.Run(c.name+"/"+order, func(b *testing.B) {
				bm := benchMapper(b, s, c.ann, c.cf)
				records := benchRecords(b, order == "clustered")
				ss := bm.NewSession()
				var emitted int
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for _, rec := range records {
						emitted += len(ss.Blocks(rec))
					}
				}
				b.ReportMetric(float64(emitted)/float64(b.N*len(records)), "pairs/record")
				b.ReportMetric(float64(ss.Hits)/float64(ss.Hits+ss.Misses), "cache-hit-rate")
			})
		}
	}
}

// BenchmarkBlocksForPerCall measures the allocating convenience form (a
// fresh Session per record), the shape this package's session refactor
// replaced — kept as the comparison baseline.
func BenchmarkBlocksForPerCall(b *testing.B) {
	s := blockSchema(b)
	for _, c := range blocksForCases {
		b.Run(c.name, func(b *testing.B) {
			bm := benchMapper(b, s, c.ann, c.cf)
			records := benchRecords(b, false)
			var emitted int
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, rec := range records {
					bm.BlocksFor(rec, func(string) { emitted++ })
				}
			}
			b.ReportMetric(float64(emitted)/float64(b.N*len(records)), "pairs/record")
		})
	}
}

// BenchmarkDerive measures minimal-key derivation on a weblog-style
// workflow.
func BenchmarkDerive(b *testing.B) {
	w := weblogWorkflow(b, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Derive(w); err != nil {
			b.Fatal(err)
		}
	}
}
