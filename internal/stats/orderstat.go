// Package stats provides the statistical machinery behind the paper's cost
// model (ICDE'08, Section IV): approximations for the first moment of the
// largest order statistic of a multinomial distribution, plus general
// samplers and summaries used by the workload generators and the skew
// detector.
package stats

import "math"

// EulerGamma is the Euler–Mascheroni constant, the "alpha = 0.5772"
// parameter of the paper's Formula (2).
const EulerGamma = 0.57721566490153286060651209008240243

// NormalMaxMean approximates the expected value of the maximum of m
// independent standard normal variables:
//
//	E[max] ≈ sqrt(2 ln m) − (ln(ln m) + ln(4π) − 2γ) / (2 sqrt(2 ln m))
//
// This is the classical extreme-order-statistic expansion the paper cites
// ([9], [10]). It is accurate to a few percent for m ≥ 3 and exact enough
// for plan choice everywhere we use it. For m ≤ 1 the maximum of zero or
// one standard normals has mean 0.
func NormalMaxMean(m int) float64 {
	if m <= 1 {
		return 0
	}
	ln := math.Log(float64(m))
	root := math.Sqrt(2 * ln)
	if m == 2 {
		// The expansion misbehaves for ln(ln 2) < 0; the exact value for
		// m = 2 is 1/sqrt(pi).
		return 1 / math.Sqrt(math.Pi)
	}
	return root - (math.Log(ln)+math.Log(4*math.Pi)-2*EulerGamma)/(2*root)
}

// ExpectedMaxBinCount approximates the expected value of the largest bin
// count when n balls are thrown uniformly at random into m bins
// (the first moment of the largest order statistic of Multinomial(n, 1/m)).
//
// Each bin count is approximately Normal(n/m, n·(1/m)(1−1/m)); combining
// with NormalMaxMean gives
//
//	E[max_j C_j] ≈ n/m + sqrt(n·(1/m)(1−1/m)) · z(m).
func ExpectedMaxBinCount(n, m int) float64 {
	if m <= 0 || n <= 0 {
		return 0
	}
	if m == 1 {
		return float64(n)
	}
	fn, fm := float64(n), float64(m)
	mean := fn / fm
	sd := math.Sqrt(fn * (1 / fm) * (1 - 1/fm))
	v := mean + sd*NormalMaxMean(m)
	// The normal approximation can dip below the trivial lower bounds
	// max ≥ ceil(n/m) and max ≥ 1 when there are fewer balls than bins;
	// clamp so downstream plan comparisons stay sane.
	if lower := math.Ceil(mean); v < lower {
		v = lower
	}
	return math.Min(v, fn)
}

// HeaviestWorkload evaluates the paper's Formula (2): the expected number
// of data records assigned to the most loaded of m reducers when nG
// equal-sized regions holding N records in total are placed on reducers
// uniformly at random. Each region carries N/nG records, so the heaviest
// workload is (N/nG) · E[max bin count of Multinomial(nG, 1/m)].
//
// The returned value decreases monotonically as nG grows (finer
// granularities balance better), which is the property the optimizer
// exploits when it prefers the minimal feasible distribution key.
func HeaviestWorkload(totalRecords, numRegions, numReducers int) float64 {
	if numRegions <= 0 || totalRecords <= 0 || numReducers <= 0 {
		return 0
	}
	perRegion := float64(totalRecords) / float64(numRegions)
	return perRegion * ExpectedMaxBinCount(numRegions, numReducers)
}

// OverlapHeaviestWorkload evaluates the paper's Formula (4): the expected
// heaviest reducer workload under an overlapping distribution key whose
// annotated attribute has range width d (= high − low, in regions of the
// key's granularity) and clustering factor cf.
//
// Merging cf neighbouring regions into one block means each block carries
// d+cf regions' worth of data (d of them duplicated from neighbours) and
// only nG/cf blocks exist. Formula (4) is Formula (2) with
// N → N·(d+cf)/cf and nG → nG/cf.
func OverlapHeaviestWorkload(totalRecords, numRegions, numReducers, d, cf int) float64 {
	if cf < 1 {
		cf = 1
	}
	if d < 0 {
		d = 0
	}
	blocks := numRegions / cf
	if blocks < 1 {
		blocks = 1
	}
	inflated := float64(totalRecords) * float64(d+cf) / float64(cf)
	perBlock := inflated / float64(blocks)
	return perBlock * ExpectedMaxBinCount(blocks, numReducers)
}

// OptimalClusteringFactor minimizes Formula (4) over integer clustering
// factors in [1, maxCF]. The paper derives the optimum as a root of a cubic
// obtained by zeroing the derivative of Formula (4); because the search
// space is a small integer range we evaluate the (unimodal) objective
// directly and return the exact integer argmin together with its predicted
// heaviest workload.
func OptimalClusteringFactor(totalRecords, numRegions, numReducers, d, maxCF int) (cf int, workload float64) {
	if maxCF < 1 {
		maxCF = 1
	}
	best, bestW := 1, math.Inf(1)
	for c := 1; c <= maxCF; c++ {
		w := OverlapHeaviestWorkload(totalRecords, numRegions, numReducers, d, c)
		if w < bestW {
			best, bestW = c, w
		}
	}
	return best, bestW
}
