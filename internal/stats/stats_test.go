package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNormalMaxMeanMonotone(t *testing.T) {
	prev := 0.0
	for m := 2; m <= 4096; m *= 2 {
		v := NormalMaxMean(m)
		if v <= prev {
			t.Fatalf("NormalMaxMean not increasing at m=%d: %v <= %v", m, v, prev)
		}
		prev = v
	}
}

func TestNormalMaxMeanSmall(t *testing.T) {
	if got := NormalMaxMean(0); got != 0 {
		t.Errorf("NormalMaxMean(0) = %v, want 0", got)
	}
	if got := NormalMaxMean(1); got != 0 {
		t.Errorf("NormalMaxMean(1) = %v, want 0", got)
	}
	want := 1 / math.Sqrt(math.Pi)
	if got := NormalMaxMean(2); math.Abs(got-want) > 1e-12 {
		t.Errorf("NormalMaxMean(2) = %v, want %v", got, want)
	}
}

func TestExpectedMaxBinCountAgainstMonteCarlo(t *testing.T) {
	cases := []struct{ n, m int }{
		{1000, 10},
		{5000, 50},
		{20000, 100},
		{500, 5},
	}
	for _, c := range cases {
		approx := ExpectedMaxBinCount(c.n, c.m)
		mc := MonteCarloMaxBinCount(c.n, c.m, 300, 42)
		rel := math.Abs(approx-mc) / mc
		if rel > 0.10 {
			t.Errorf("n=%d m=%d: approx %.1f vs monte carlo %.1f (rel err %.3f)",
				c.n, c.m, approx, mc, rel)
		}
	}
}

func TestExpectedMaxBinCountBounds(t *testing.T) {
	if got := ExpectedMaxBinCount(100, 1); got != 100 {
		t.Errorf("single bin: got %v, want 100", got)
	}
	if got := ExpectedMaxBinCount(0, 10); got != 0 {
		t.Errorf("no balls: got %v, want 0", got)
	}
	// Expected max is at least the mean and at most n.
	if got := ExpectedMaxBinCount(1000, 10); got < 100 || got > 1000 {
		t.Errorf("out of bounds: %v", got)
	}
}

func TestHeaviestWorkloadMonotoneInRegions(t *testing.T) {
	// Paper Section IV-A: Formula (2) decreases monotonically as n_G grows,
	// which justifies preferring the most specific feasible key.
	const N, m = 1_000_000, 50
	prev := math.Inf(1)
	for _, nG := range []int{100, 500, 1000, 5000, 50_000, 500_000} {
		w := HeaviestWorkload(N, nG, m)
		if w > prev+1e-9 {
			t.Fatalf("workload increased at nG=%d: %v > %v", nG, w, prev)
		}
		if w < float64(N)/float64(m)-1e-9 {
			t.Fatalf("workload below perfect balance at nG=%d: %v", nG, w)
		}
		prev = w
	}
}

func TestOverlapHeaviestWorkloadUShape(t *testing.T) {
	// Formula (4) should be high at cf=1 (duplication) and high again at
	// very large cf (lost parallelism), with an interior optimum.
	const N, nG, m, d = 1_000_000, 2000, 50, 9
	w1 := OverlapHeaviestWorkload(N, nG, m, d, 1)
	wBig := OverlapHeaviestWorkload(N, nG, m, d, nG/2)
	cf, wOpt := OptimalClusteringFactor(N, nG, m, d, nG)
	if cf <= 1 || cf >= nG/2 {
		t.Fatalf("optimal cf = %d not interior", cf)
	}
	if !(wOpt < w1 && wOpt < wBig) {
		t.Fatalf("optimum %v not below endpoints %v, %v", wOpt, w1, wBig)
	}
	// The paper observes cf=1 about 2x slower than the optimum for its
	// workload; for this parameterization the ratio should be well above 1.
	if w1/wOpt < 1.5 {
		t.Errorf("cf=1 / optimum ratio = %.2f, want > 1.5", w1/wOpt)
	}
}

func TestOverlapReducesToNonOverlap(t *testing.T) {
	// With d=0 and cf=1, Formula (4) must equal Formula (2).
	const N, nG, m = 500_000, 1000, 20
	got := OverlapHeaviestWorkload(N, nG, m, 0, 1)
	want := HeaviestWorkload(N, nG, m)
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestReservoirUniformity(t *testing.T) {
	// Sample 100 of 10000 and check the sample mean is near the stream mean.
	r := NewReservoir[int](200, 7)
	for i := 0; i < 10000; i++ {
		r.Add(i)
	}
	if r.Seen() != 10000 {
		t.Fatalf("seen = %d", r.Seen())
	}
	s := r.Sample()
	if len(s) != 200 {
		t.Fatalf("sample size = %d", len(s))
	}
	var sum float64
	for _, v := range s {
		sum += float64(v)
	}
	mean := sum / float64(len(s))
	if mean < 3500 || mean > 6500 {
		t.Errorf("sample mean %v implausible for uniform sample of 0..9999", mean)
	}
}

func TestReservoirSmallStream(t *testing.T) {
	r := NewReservoir[string](10, 1)
	r.Add("a")
	r.Add("b")
	if got := len(r.Sample()); got != 2 {
		t.Errorf("sample size = %d, want 2", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.Count != 8 || s.Min != 2 || s.Max != 9 {
		t.Fatalf("bad extremes: %+v", s)
	}
	if math.Abs(s.Mean-5) > 1e-12 {
		t.Errorf("mean = %v, want 5", s.Mean)
	}
	if math.Abs(s.StdDev-2) > 1e-12 {
		t.Errorf("stddev = %v, want 2", s.StdDev)
	}
	if z := Summarize(nil); z.Count != 0 || z.Mean != 0 {
		t.Errorf("empty summary not zero: %+v", z)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {10, 1}, {50, 5}, {90, 9}, {100, 10},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); got != c.want {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("empty percentile = %v", got)
	}
}

func TestSkewRatio(t *testing.T) {
	if r := SkewRatio([]float64{10, 10, 10, 10}); math.Abs(r-1) > 1e-12 {
		t.Errorf("balanced ratio = %v, want 1", r)
	}
	if r := SkewRatio([]float64{40, 0, 0, 0}); math.Abs(r-4) > 1e-12 {
		t.Errorf("skewed ratio = %v, want 4", r)
	}
	if r := SkewRatio(nil); r != 1 {
		t.Errorf("empty ratio = %v, want 1", r)
	}
}

func TestPercentileSortedProperty(t *testing.T) {
	// Percentile must be monotone in p.
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		for i := range raw {
			if math.IsNaN(raw[i]) || math.IsInf(raw[i], 0) {
				raw[i] = 0
			}
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 10 {
			v := Percentile(raw, p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
