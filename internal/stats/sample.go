package stats

import (
	"math"
	"math/rand"
	"sort"
)

// Reservoir maintains a fixed-size uniform random sample of a stream using
// Vitter's algorithm R. The skew detector (paper Section V) uses it on each
// mapper to sample the records it acquires before the simulated dispatch.
type Reservoir[T any] struct {
	items []T
	cap   int
	seen  int64
	rng   *rand.Rand
}

// NewReservoir returns a reservoir sampler holding at most capacity items,
// driven by the given seed (deterministic across runs).
func NewReservoir[T any](capacity int, seed int64) *Reservoir[T] {
	if capacity < 1 {
		capacity = 1
	}
	return &Reservoir[T]{cap: capacity, rng: rand.New(rand.NewSource(seed))}
}

// Add offers one stream element to the reservoir.
func (r *Reservoir[T]) Add(item T) {
	r.seen++
	if len(r.items) < r.cap {
		r.items = append(r.items, item)
		return
	}
	if j := r.rng.Int63n(r.seen); j < int64(r.cap) {
		r.items[j] = item
	}
}

// Sample returns the current sample. The slice aliases the reservoir's
// internal storage and must not be mutated while sampling continues.
func (r *Reservoir[T]) Sample() []T { return r.items }

// Seen reports how many elements have been offered so far.
func (r *Reservoir[T]) Seen() int64 { return r.seen }

// Summary holds basic descriptive statistics of a numeric series, used in
// bench reports and skew diagnostics.
type Summary struct {
	Count  int
	Min    float64
	Max    float64
	Mean   float64
	StdDev float64
}

// Summarize computes a Summary of xs. An empty series yields a zero
// Summary.
func Summarize(xs []float64) Summary {
	var s Summary
	s.Count = len(xs)
	if s.Count == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.Count)
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	s.StdDev = math.Sqrt(ss / float64(s.Count))
	return s
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using
// nearest-rank on a sorted copy. It returns 0 for an empty series.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if p <= 0 {
		return cp[0]
	}
	if p >= 100 {
		return cp[len(cp)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(cp))))
	if rank < 1 {
		rank = 1
	}
	return cp[rank-1]
}

// SkewRatio quantifies load imbalance as max/mean of the per-bucket loads;
// 1.0 means perfectly balanced. The skew detector flags a plan when the
// estimated ratio exceeds a threshold.
func SkewRatio(loads []float64) float64 {
	s := Summarize(loads)
	if s.Mean == 0 {
		return 1
	}
	return s.Max / s.Mean
}

// MonteCarloMaxBinCount estimates E[max bin count] for n balls in m bins by
// simulation with the given number of trials. Tests use it to validate
// ExpectedMaxBinCount; the optimizer never calls it.
func MonteCarloMaxBinCount(n, m, trials int, seed int64) float64 {
	if n <= 0 || m <= 0 || trials <= 0 {
		return 0
	}
	rng := rand.New(rand.NewSource(seed))
	counts := make([]int, m)
	var total float64
	for t := 0; t < trials; t++ {
		for i := range counts {
			counts[i] = 0
		}
		for i := 0; i < n; i++ {
			counts[rng.Intn(m)]++
		}
		mx := 0
		for _, c := range counts {
			if c > mx {
				mx = c
			}
		}
		total += float64(mx)
	}
	return total / float64(trials)
}
