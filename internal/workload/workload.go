// Package workload reproduces the paper's experimental setup (Section
// VI): the synthetic schema — four integer attributes drawn from [0, 255]
// with a four-level domain hierarchy plus two temporal attributes whose
// hierarchy is second < minute < hour < day over a twenty-day period —
// the uniform and temporally skewed data distributions, and the query
// suite Q1–Q6 and DS0–DS2.
package workload

import (
	"fmt"
	"math/rand"

	"github.com/casm-project/casm/internal/cube"
	"github.com/casm-project/casm/internal/dfs"
	"github.com/casm-project/casm/internal/measure"
	"github.com/casm-project/casm/internal/recio"
	"github.com/casm-project/casm/internal/workflow"
)

// Days is the temporal span of the paper's datasets.
const Days = 20

// SkewDays is the span actually populated by the skewed distribution
// ("the values of the temporal attributes are picked from the first five
// days of the twenty-day range").
const SkewDays = 5

// Suite bundles the paper's schema with its query constructors.
type Suite struct {
	Schema *cube.Schema
}

// NewSuite builds the Section VI schema.
func NewSuite() *Suite {
	intAttr := func(name string) *cube.Attribute {
		return cube.MustAttribute(name, cube.Numeric, 256,
			cube.Level{Name: "value", Span: 1},
			cube.Level{Name: "low", Span: 4},
			cube.Level{Name: "mid", Span: 4},
			cube.Level{Name: "high", Span: 4},
		)
	}
	return &Suite{Schema: cube.MustSchema(
		intAttr("a1"), intAttr("a2"), intAttr("a3"), intAttr("a4"),
		cube.TimeAttribute("t1", Days),
		cube.TimeAttribute("t2", Days),
	)}
}

// Distribution selects a data distribution.
type Distribution int

const (
	// Uniform draws every attribute uniformly over its domain.
	Uniform Distribution = iota
	// SkewedTime draws the temporal attributes from the first five days
	// only; integer attributes stay uniform.
	SkewedTime
)

// String names the distribution.
func (d Distribution) String() string {
	if d == SkewedTime {
		return "skewed"
	}
	return "uniform"
}

// Generate produces n records under the distribution, deterministically
// per seed.
func (s *Suite) Generate(n int, dist Distribution, seed int64) []cube.Record {
	rng := rand.New(rand.NewSource(seed))
	tSpan := int64(Days * 86400)
	if dist == SkewedTime {
		tSpan = SkewDays * 86400
	}
	out := make([]cube.Record, n)
	for i := range out {
		out[i] = cube.Record{
			rng.Int63n(256), rng.Int63n(256), rng.Int63n(256), rng.Int63n(256),
			rng.Int63n(tSpan), rng.Int63n(tSpan),
		}
	}
	return out
}

// WriteDFS packs records into aligned blocks and stores them as a DFS
// file ready to serve as MapReduce input.
func WriteDFS(fs *dfs.FS, name string, records []cube.Record, blockSize int) error {
	data, err := recio.PackAligned(records, blockSize)
	if err != nil {
		return err
	}
	return fs.Write(name, data)
}

func (s *Suite) grain(specs ...cube.GrainSpec) cube.Grain { return s.Schema.MustGrain(specs...) }

func must(err error) {
	if err != nil {
		panic(err)
	}
}

// Query returns the n-th evaluation query (1–6).
func (s *Suite) Query(n int) (*workflow.Workflow, error) {
	switch n {
	case 1:
		return s.Q1(), nil
	case 2:
		return s.Q2(), nil
	case 3:
		return s.Q3(), nil
	case 4:
		return s.Q4(), nil
	case 5:
		return s.Q5(), nil
	case 6:
		return s.Q6(), nil
	default:
		return nil, fmt.Errorf("workload: no query Q%d", n)
	}
}

// Q1: three independent measures defined over different region sets with
// fine granularities. The region sets share a fine a1/t1 core so that the
// least common ancestor — the distribution key — is itself fine and the
// query parallelizes well (Theorem 2).
func (s *Suite) Q1() *workflow.Workflow {
	w := workflow.New(s.Schema)
	must(w.AddBasic("q1a", s.grain(cube.GrainSpec{Attr: "a1", Level: "value"}, cube.GrainSpec{Attr: "t1", Level: "minute"}),
		measure.Spec{Func: measure.Sum}, "a2"))
	must(w.AddBasic("q1b", s.grain(cube.GrainSpec{Attr: "a1", Level: "value"}, cube.GrainSpec{Attr: "a2", Level: "low"}, cube.GrainSpec{Attr: "t1", Level: "minute"}),
		measure.Spec{Func: measure.Count}, ""))
	must(w.AddBasic("q1c", s.grain(cube.GrainSpec{Attr: "a1", Level: "value"}, cube.GrainSpec{Attr: "t1", Level: "hour"}),
		measure.Spec{Func: measure.Avg}, "a4"))
	return w
}

// Q2: two measures where the parent regions' measures are generated from
// those of the children regions.
func (s *Suite) Q2() *workflow.Workflow {
	w := workflow.New(s.Schema)
	must(w.AddBasic("q2base", s.grain(cube.GrainSpec{Attr: "a1", Level: "value"}, cube.GrainSpec{Attr: "t1", Level: "hour"}),
		measure.Spec{Func: measure.Sum}, "a2"))
	must(w.AddRollup("q2roll", s.grain(cube.GrainSpec{Attr: "a1", Level: "low"}, cube.GrainSpec{Attr: "t1", Level: "day"}),
		measure.Spec{Func: measure.Avg}, "q2base"))
	return w
}

// Q3: five measures; the parent region set's measures aggregate two
// different measures, both computed by aggregating their children.
func (s *Suite) Q3() *workflow.Workflow {
	w := workflow.New(s.Schema)
	fine := s.grain(cube.GrainSpec{Attr: "a1", Level: "low"}, cube.GrainSpec{Attr: "t1", Level: "hour"})
	coarse := s.grain(cube.GrainSpec{Attr: "a1", Level: "mid"}, cube.GrainSpec{Attr: "t1", Level: "day"})
	must(w.AddBasic("q3b1", fine, measure.Spec{Func: measure.Sum}, "a2"))
	must(w.AddBasic("q3b2", fine, measure.Spec{Func: measure.Count}, ""))
	must(w.AddRollup("q3c1", coarse, measure.Spec{Func: measure.Sum}, "q3b1"))
	must(w.AddRollup("q3c2", coarse, measure.Spec{Func: measure.Sum}, "q3b2"))
	must(w.AddSelf("q3top", coarse, measure.Add(), "q3c1", "q3c2"))
	return w
}

// Q4: a measure computed by combining the measure for the same region and
// children regions.
func (s *Suite) Q4() *workflow.Workflow {
	w := workflow.New(s.Schema)
	fine := s.grain(cube.GrainSpec{Attr: "a1", Level: "low"}, cube.GrainSpec{Attr: "t1", Level: "hour"})
	coarse := s.grain(cube.GrainSpec{Attr: "a1", Level: "mid"}, cube.GrainSpec{Attr: "t1", Level: "day"})
	must(w.AddBasic("q4fine", fine, measure.Spec{Func: measure.Sum}, "a2"))
	must(w.AddBasic("q4same", coarse, measure.Spec{Func: measure.Count}, ""))
	must(w.AddRollup("q4roll", coarse, measure.Spec{Func: measure.Max}, "q4fine"))
	must(w.AddSelf("q4top", coarse, measure.Ratio(), "q4roll", "q4same"))
	return w
}

// Q5: sibling relations — the composite measure for each hour summarizes
// the measures of the previous hours.
func (s *Suite) Q5() *workflow.Workflow {
	w := workflow.New(s.Schema)
	g := s.grain(cube.GrainSpec{Attr: "a1", Level: "high"}, cube.GrainSpec{Attr: "t1", Level: "hour"})
	t1, _ := s.Schema.AttrIndex("t1")
	must(w.AddBasic("q5base", g, measure.Spec{Func: measure.Sum}, "a2"))
	must(w.AddSliding("q5win", g, measure.Spec{Func: measure.Sum}, "q5base",
		workflow.RangeAnn{Attr: t1, Low: -5, High: 0}))
	return w
}

// Q6: a mixture of all four relationships with a sliding time window
// aggregation as the top measure; the window is large and at a coarse
// granularity, which limits the clustering factor and increases overlap.
func (s *Suite) Q6() *workflow.Workflow {
	w := workflow.New(s.Schema)
	// a2:high has only four values, so the non-overlapping fallback key
	// (time rolled to ALL) leaves almost no parallelism and the optimizer
	// must pick the overlapping day-level key.
	hourG := s.grain(cube.GrainSpec{Attr: "a2", Level: "high"}, cube.GrainSpec{Attr: "t1", Level: "hour"})
	dayG := s.grain(cube.GrainSpec{Attr: "a2", Level: "high"}, cube.GrainSpec{Attr: "t1", Level: "day"})
	t1, _ := s.Schema.AttrIndex("t1")
	must(w.AddBasic("q6m1", hourG, measure.Spec{Func: measure.Median}, "a1"))
	must(w.AddBasic("q6m2", dayG, measure.Spec{Func: measure.Avg}, "a2"))
	must(w.AddSelf("q6m3", hourG, measure.Ratio(), "q6m1", "q6m2"))
	must(w.AddRollup("q6m4", dayG, measure.Spec{Func: measure.Sum}, "q6m3"))
	must(w.AddInherit("q6m5", hourG, "q6m4"))
	// A week-long window over the 20-day domain: the coarse day
	// granularity leaves few sibling coordinates, so the clustering
	// factor stays small and the overlap ratio (d+cf)/cf large.
	must(w.AddSliding("q6top", dayG, measure.Spec{Func: measure.Avg}, "q6m4",
		workflow.RangeAnn{Attr: t1, Low: -6, High: 0}))
	return w
}

// DS returns the early-aggregation study's queries: DS0 groups at a very
// coarse granularity, DS1 intermediate, DS2 fine (Section VI, Figure
// 4(e)). Each consists of one basic measure and composite measures on
// top, with all basic aggregates algebraic or distributive so the
// combiner applies.
func (s *Suite) DS(i int) (*workflow.Workflow, error) {
	w := workflow.New(s.Schema)
	var base cube.Grain
	var roll cube.Grain
	switch i {
	case 0: // coarse: 4 x 20 groups
		base = s.grain(cube.GrainSpec{Attr: "a1", Level: "high"}, cube.GrainSpec{Attr: "t1", Level: "day"})
		roll = s.grain(cube.GrainSpec{Attr: "t1", Level: "day"})
	case 1: // intermediate: 16 x 480 groups
		base = s.grain(cube.GrainSpec{Attr: "a1", Level: "mid"}, cube.GrainSpec{Attr: "t1", Level: "hour"})
		roll = s.grain(cube.GrainSpec{Attr: "t1", Level: "hour"})
	case 2: // fine: 256 x 256 x 28800 potential groups — no size reduction
		base = s.grain(cube.GrainSpec{Attr: "a1", Level: "value"},
			cube.GrainSpec{Attr: "a2", Level: "value"}, cube.GrainSpec{Attr: "t1", Level: "minute"})
		roll = s.grain(cube.GrainSpec{Attr: "a1", Level: "value"}, cube.GrainSpec{Attr: "t1", Level: "minute"})
	default:
		return nil, fmt.Errorf("workload: no query DS%d", i)
	}
	name := fmt.Sprintf("ds%d", i)
	must(w.AddBasic(name+"base", base, measure.Spec{Func: measure.Sum}, "a3"))
	must(w.AddRollup(name+"roll", roll, measure.Spec{Func: measure.Avg}, name+"base"))
	must(w.AddSelf(name+"norm", base, measure.Ratio(), name+"base", name+"roll"))
	return w, nil
}
