// Package workload reproduces the paper's experimental setup (Section
// VI): the synthetic schema — four integer attributes drawn from [0, 255]
// with a four-level domain hierarchy plus two temporal attributes whose
// hierarchy is second < minute < hour < day over a twenty-day period —
// the uniform and temporally skewed data distributions, and the query
// suite Q1–Q6 and DS0–DS2.
package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/casm-project/casm/internal/blockstore"
	"github.com/casm-project/casm/internal/cube"
	"github.com/casm-project/casm/internal/measure"
	"github.com/casm-project/casm/internal/workflow"
)

// Days is the temporal span of the paper's datasets.
const Days = 20

// SkewDays is the span actually populated by the skewed distribution
// ("the values of the temporal attributes are picked from the first five
// days of the twenty-day range").
const SkewDays = 5

// Suite bundles the paper's schema with its query constructors.
type Suite struct {
	Schema *cube.Schema
}

// NewSuite builds the Section VI schema.
func NewSuite() *Suite {
	intAttr := func(name string) *cube.Attribute {
		return cube.MustAttribute(name, cube.Numeric, 256,
			cube.Level{Name: "value", Span: 1},
			cube.Level{Name: "low", Span: 4},
			cube.Level{Name: "mid", Span: 4},
			cube.Level{Name: "high", Span: 4},
		)
	}
	return &Suite{Schema: cube.MustSchema(
		intAttr("a1"), intAttr("a2"), intAttr("a3"), intAttr("a4"),
		cube.TimeAttribute("t1", Days),
		cube.TimeAttribute("t2", Days),
	)}
}

// Distribution selects a data distribution.
type Distribution int

const (
	// Uniform draws every attribute uniformly over its domain.
	Uniform Distribution = iota
	// SkewedTime draws the temporal attributes from the first five days
	// only; integer attributes stay uniform.
	SkewedTime
)

// String names the distribution.
func (d Distribution) String() string {
	if d == SkewedTime {
		return "skewed"
	}
	return "uniform"
}

// Generate produces n records under the distribution, deterministically
// per seed.
func (s *Suite) Generate(n int, dist Distribution, seed int64) []cube.Record {
	out, err := s.GenerateOpts(GenOpts{N: n, Dist: dist, Seed: seed})
	if err != nil {
		panic(err) // unreachable: the zero GenOpts knobs are always valid
	}
	return out
}

// Layout arranges generated records within the file, controlling how
// value skew maps onto input splits.
type Layout int

const (
	// LayoutShuffled keeps generation order: skewed values interleave
	// uniformly, so every split carries a fair share of the hot keys.
	LayoutShuffled Layout = iota
	// LayoutClustered sorts records by value, so each hot key's records
	// form one contiguous run — the clustered blocks of the paper's §V
	// skew experiments, where whole splits land on a single hot key.
	LayoutClustered
	// LayoutAdversarial clusters like LayoutClustered but orders the
	// clusters by ascending a1-frequency, parking the hottest (largest)
	// runs at the end of the file: the final splits are the densest, the
	// worst case for any scheduler that assigns splits in file order.
	LayoutAdversarial
)

// String names the layout (the casmgen flag values).
func (l Layout) String() string {
	switch l {
	case LayoutClustered:
		return "clustered"
	case LayoutAdversarial:
		return "adversarial"
	default:
		return "shuffled"
	}
}

// ParseLayout parses a layout name as accepted by casmgen -layout.
func ParseLayout(s string) (Layout, error) {
	switch s {
	case "shuffled", "":
		return LayoutShuffled, nil
	case "clustered":
		return LayoutClustered, nil
	case "adversarial":
		return LayoutAdversarial, nil
	default:
		return 0, fmt.Errorf("workload: unknown layout %q (want shuffled, clustered, or adversarial)", s)
	}
}

// GenOpts parameterizes record generation for the skew studies.
type GenOpts struct {
	// N is the number of records.
	N int
	// Dist is the paper's temporal distribution (Uniform or SkewedTime).
	Dist Distribution
	// Seed drives generation; runs are deterministic per (Seed, knobs).
	Seed int64
	// Zipf, when > 1, draws the integer attributes a1..a4 zipf-distributed
	// over [0,255] with this exponent instead of uniformly (rand.Zipf
	// requires s > 1; larger = more skew — 1.5 is mild, 3 makes a handful
	// of values dominate). 0 keeps the uniform draw.
	Zipf float64
	// Layout arranges the records (default LayoutShuffled).
	Layout Layout
}

// GenerateOpts produces records under the given knobs, deterministically
// per options.
func (s *Suite) GenerateOpts(opts GenOpts) ([]cube.Record, error) {
	if opts.Zipf != 0 && opts.Zipf <= 1 {
		return nil, fmt.Errorf("workload: zipf exponent must be > 1, got %g", opts.Zipf)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	tSpan := int64(Days * 86400)
	if opts.Dist == SkewedTime {
		tSpan = SkewDays * 86400
	}
	var zipf *rand.Zipf
	if opts.Zipf > 1 {
		zipf = rand.NewZipf(rng, opts.Zipf, 1, 255)
	}
	attr := func() int64 {
		if zipf != nil {
			return int64(zipf.Uint64())
		}
		return rng.Int63n(256)
	}
	out := make([]cube.Record, opts.N)
	for i := range out {
		out[i] = cube.Record{
			attr(), attr(), attr(), attr(),
			rng.Int63n(tSpan), rng.Int63n(tSpan),
		}
	}
	switch opts.Layout {
	case LayoutShuffled:
	case LayoutClustered:
		sortRecords(out, nil)
	case LayoutAdversarial:
		freq := make(map[int64]int)
		for _, r := range out {
			freq[r[0]]++
		}
		sortRecords(out, freq)
	default:
		return nil, fmt.Errorf("workload: unknown layout %d", opts.Layout)
	}
	return out, nil
}

// sortRecords orders records lexicographically by attribute values; with
// freq non-nil, primarily by ascending a1-frequency so the biggest
// clusters sort last. Full-record lexicographic tiebreak keeps the order
// deterministic for any input.
func sortRecords(recs []cube.Record, freq map[int64]int) {
	sort.Slice(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		if freq != nil && freq[a[0]] != freq[b[0]] {
			return freq[a[0]] < freq[b[0]]
		}
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}

// WriteStore ingests records into a block-store file ready to serve as
// MapReduce input, recording the schema digest in store metadata so a
// reopened store can re-register the dataset without recounting.
func WriteStore(st *blockstore.Store, name string, s *cube.Schema, records []cube.Record) error {
	return st.WriteRecords(name, s.NumAttrs(), workflow.SchemaDigest(s), records)
}

func (s *Suite) grain(specs ...cube.GrainSpec) cube.Grain { return s.Schema.MustGrain(specs...) }

func must(err error) {
	if err != nil {
		panic(err)
	}
}

// Query returns the n-th evaluation query (1–6).
func (s *Suite) Query(n int) (*workflow.Workflow, error) {
	switch n {
	case 1:
		return s.Q1(), nil
	case 2:
		return s.Q2(), nil
	case 3:
		return s.Q3(), nil
	case 4:
		return s.Q4(), nil
	case 5:
		return s.Q5(), nil
	case 6:
		return s.Q6(), nil
	default:
		return nil, fmt.Errorf("workload: no query Q%d", n)
	}
}

// Q1: three independent measures defined over different region sets with
// fine granularities. The region sets share a fine a1/t1 core so that the
// least common ancestor — the distribution key — is itself fine and the
// query parallelizes well (Theorem 2).
func (s *Suite) Q1() *workflow.Workflow {
	w := workflow.New(s.Schema)
	must(w.AddBasic("q1a", s.grain(cube.GrainSpec{Attr: "a1", Level: "value"}, cube.GrainSpec{Attr: "t1", Level: "minute"}),
		measure.Spec{Func: measure.Sum}, "a2"))
	must(w.AddBasic("q1b", s.grain(cube.GrainSpec{Attr: "a1", Level: "value"}, cube.GrainSpec{Attr: "a2", Level: "low"}, cube.GrainSpec{Attr: "t1", Level: "minute"}),
		measure.Spec{Func: measure.Count}, ""))
	must(w.AddBasic("q1c", s.grain(cube.GrainSpec{Attr: "a1", Level: "value"}, cube.GrainSpec{Attr: "t1", Level: "hour"}),
		measure.Spec{Func: measure.Avg}, "a4"))
	return w
}

// Q2: two measures where the parent regions' measures are generated from
// those of the children regions.
func (s *Suite) Q2() *workflow.Workflow {
	w := workflow.New(s.Schema)
	must(w.AddBasic("q2base", s.grain(cube.GrainSpec{Attr: "a1", Level: "value"}, cube.GrainSpec{Attr: "t1", Level: "hour"}),
		measure.Spec{Func: measure.Sum}, "a2"))
	must(w.AddRollup("q2roll", s.grain(cube.GrainSpec{Attr: "a1", Level: "low"}, cube.GrainSpec{Attr: "t1", Level: "day"}),
		measure.Spec{Func: measure.Avg}, "q2base"))
	return w
}

// Q3: five measures; the parent region set's measures aggregate two
// different measures, both computed by aggregating their children.
func (s *Suite) Q3() *workflow.Workflow {
	w := workflow.New(s.Schema)
	fine := s.grain(cube.GrainSpec{Attr: "a1", Level: "low"}, cube.GrainSpec{Attr: "t1", Level: "hour"})
	coarse := s.grain(cube.GrainSpec{Attr: "a1", Level: "mid"}, cube.GrainSpec{Attr: "t1", Level: "day"})
	must(w.AddBasic("q3b1", fine, measure.Spec{Func: measure.Sum}, "a2"))
	must(w.AddBasic("q3b2", fine, measure.Spec{Func: measure.Count}, ""))
	must(w.AddRollup("q3c1", coarse, measure.Spec{Func: measure.Sum}, "q3b1"))
	must(w.AddRollup("q3c2", coarse, measure.Spec{Func: measure.Sum}, "q3b2"))
	must(w.AddSelf("q3top", coarse, measure.Add(), "q3c1", "q3c2"))
	return w
}

// Q4: a measure computed by combining the measure for the same region and
// children regions.
func (s *Suite) Q4() *workflow.Workflow {
	w := workflow.New(s.Schema)
	fine := s.grain(cube.GrainSpec{Attr: "a1", Level: "low"}, cube.GrainSpec{Attr: "t1", Level: "hour"})
	coarse := s.grain(cube.GrainSpec{Attr: "a1", Level: "mid"}, cube.GrainSpec{Attr: "t1", Level: "day"})
	must(w.AddBasic("q4fine", fine, measure.Spec{Func: measure.Sum}, "a2"))
	must(w.AddBasic("q4same", coarse, measure.Spec{Func: measure.Count}, ""))
	must(w.AddRollup("q4roll", coarse, measure.Spec{Func: measure.Max}, "q4fine"))
	must(w.AddSelf("q4top", coarse, measure.Ratio(), "q4roll", "q4same"))
	return w
}

// Q5: sibling relations — the composite measure for each hour summarizes
// the measures of the previous hours.
func (s *Suite) Q5() *workflow.Workflow {
	w := workflow.New(s.Schema)
	g := s.grain(cube.GrainSpec{Attr: "a1", Level: "high"}, cube.GrainSpec{Attr: "t1", Level: "hour"})
	t1, _ := s.Schema.AttrIndex("t1")
	must(w.AddBasic("q5base", g, measure.Spec{Func: measure.Sum}, "a2"))
	must(w.AddSliding("q5win", g, measure.Spec{Func: measure.Sum}, "q5base",
		workflow.RangeAnn{Attr: t1, Low: -5, High: 0}))
	return w
}

// Q6: a mixture of all four relationships with a sliding time window
// aggregation as the top measure; the window is large and at a coarse
// granularity, which limits the clustering factor and increases overlap.
func (s *Suite) Q6() *workflow.Workflow {
	w := workflow.New(s.Schema)
	// a2:high has only four values, so the non-overlapping fallback key
	// (time rolled to ALL) leaves almost no parallelism and the optimizer
	// must pick the overlapping day-level key.
	hourG := s.grain(cube.GrainSpec{Attr: "a2", Level: "high"}, cube.GrainSpec{Attr: "t1", Level: "hour"})
	dayG := s.grain(cube.GrainSpec{Attr: "a2", Level: "high"}, cube.GrainSpec{Attr: "t1", Level: "day"})
	t1, _ := s.Schema.AttrIndex("t1")
	must(w.AddBasic("q6m1", hourG, measure.Spec{Func: measure.Median}, "a1"))
	must(w.AddBasic("q6m2", dayG, measure.Spec{Func: measure.Avg}, "a2"))
	must(w.AddSelf("q6m3", hourG, measure.Ratio(), "q6m1", "q6m2"))
	must(w.AddRollup("q6m4", dayG, measure.Spec{Func: measure.Sum}, "q6m3"))
	must(w.AddInherit("q6m5", hourG, "q6m4"))
	// A week-long window over the 20-day domain: the coarse day
	// granularity leaves few sibling coordinates, so the clustering
	// factor stays small and the overlap ratio (d+cf)/cf large.
	must(w.AddSliding("q6top", dayG, measure.Spec{Func: measure.Avg}, "q6m4",
		workflow.RangeAnn{Attr: t1, Low: -6, High: 0}))
	return w
}

// DS returns the early-aggregation study's queries: DS0 groups at a very
// coarse granularity, DS1 intermediate, DS2 fine (Section VI, Figure
// 4(e)). Each consists of one basic measure and composite measures on
// top, with all basic aggregates algebraic or distributive so the
// combiner applies.
func (s *Suite) DS(i int) (*workflow.Workflow, error) {
	w := workflow.New(s.Schema)
	var base cube.Grain
	var roll cube.Grain
	switch i {
	case 0: // coarse: 4 x 20 groups
		base = s.grain(cube.GrainSpec{Attr: "a1", Level: "high"}, cube.GrainSpec{Attr: "t1", Level: "day"})
		roll = s.grain(cube.GrainSpec{Attr: "t1", Level: "day"})
	case 1: // intermediate: 16 x 480 groups
		base = s.grain(cube.GrainSpec{Attr: "a1", Level: "mid"}, cube.GrainSpec{Attr: "t1", Level: "hour"})
		roll = s.grain(cube.GrainSpec{Attr: "t1", Level: "hour"})
	case 2: // fine: 256 x 256 x 28800 potential groups — no size reduction
		base = s.grain(cube.GrainSpec{Attr: "a1", Level: "value"},
			cube.GrainSpec{Attr: "a2", Level: "value"}, cube.GrainSpec{Attr: "t1", Level: "minute"})
		roll = s.grain(cube.GrainSpec{Attr: "a1", Level: "value"}, cube.GrainSpec{Attr: "t1", Level: "minute"})
	default:
		return nil, fmt.Errorf("workload: no query DS%d", i)
	}
	name := fmt.Sprintf("ds%d", i)
	must(w.AddBasic(name+"base", base, measure.Spec{Func: measure.Sum}, "a3"))
	must(w.AddRollup(name+"roll", roll, measure.Spec{Func: measure.Avg}, name+"base"))
	must(w.AddSelf(name+"norm", base, measure.Ratio(), name+"base", name+"roll"))
	return w, nil
}
