package workload

import (
	"fmt"
	"testing"

	"github.com/casm-project/casm/internal/blockstore"
	"github.com/casm-project/casm/internal/cube"
	"github.com/casm-project/casm/internal/distkey"
	"github.com/casm-project/casm/internal/recio"
	"github.com/casm-project/casm/internal/workflow"
)

func TestSchemaShape(t *testing.T) {
	s := NewSuite().Schema
	if s.NumAttrs() != 6 {
		t.Fatalf("attrs = %d", s.NumAttrs())
	}
	a1, _ := s.AttrIndex("a1")
	if got := s.Attr(a1).Card(); got != 256 {
		t.Errorf("a1 card = %d", got)
	}
	if got := s.Attr(a1).NumLevels(); got != 5 { // value,low,mid,high,ALL
		t.Errorf("a1 levels = %d", got)
	}
	hi, _ := s.Attr(a1).LevelIndex("high")
	if got := s.Attr(a1).CardAt(hi); got != 4 {
		t.Errorf("a1 high card = %d", got)
	}
	t1, _ := s.AttrIndex("t1")
	if got := s.Attr(t1).Card(); got != 20*86400 {
		t.Errorf("t1 card = %d", got)
	}
}

func TestGenerateDistributions(t *testing.T) {
	su := NewSuite()
	uni := su.Generate(5000, Uniform, 1)
	skew := su.Generate(5000, SkewedTime, 1)
	if len(uni) != 5000 || len(skew) != 5000 {
		t.Fatal("wrong sizes")
	}
	for _, r := range append(uni, skew...) {
		if err := su.Schema.Validate(r); err != nil {
			t.Fatalf("invalid record: %v", err)
		}
	}
	t1, _ := su.Schema.AttrIndex("t1")
	lateUni, lateSkew := 0, 0
	for i := range uni {
		if uni[i][t1] >= SkewDays*86400 {
			lateUni++
		}
		if skew[i][t1] >= SkewDays*86400 {
			lateSkew++
		}
	}
	if lateSkew != 0 {
		t.Errorf("skewed data has %d records after day %d", lateSkew, SkewDays)
	}
	if lateUni < 3000 { // expect ~75%
		t.Errorf("uniform data suspiciously early: %d/5000 late", lateUni)
	}
	// Determinism.
	again := su.Generate(5000, Uniform, 1)
	for i := range uni {
		for j := range uni[i] {
			if uni[i][j] != again[i][j] {
				t.Fatal("generation not deterministic")
			}
		}
	}
}

func TestAllQueriesValidate(t *testing.T) {
	su := NewSuite()
	for n := 1; n <= 6; n++ {
		w, err := su.Query(n)
		if err != nil {
			t.Fatalf("Q%d: %v", n, err)
		}
		if err := w.Validate(); err != nil {
			t.Errorf("Q%d invalid: %v", n, err)
		}
		if _, _, err := distkey.Derive(w); err != nil {
			t.Errorf("Q%d key derivation: %v", n, err)
		}
	}
	if _, err := su.Query(7); err == nil {
		t.Error("Q7 accepted")
	}
	for i := 0; i <= 2; i++ {
		w, err := su.DS(i)
		if err != nil {
			t.Fatalf("DS%d: %v", i, err)
		}
		if err := w.Validate(); err != nil {
			t.Errorf("DS%d invalid: %v", i, err)
		}
	}
	if _, err := su.DS(3); err == nil {
		t.Error("DS3 accepted")
	}
}

func TestQueryShapes(t *testing.T) {
	su := NewSuite()
	if su.Q1().HasSibling() || su.Q2().HasSibling() || su.Q3().HasSibling() || su.Q4().HasSibling() {
		t.Error("Q1-Q4 must not contain sibling relations")
	}
	if !su.Q5().HasSibling() || !su.Q6().HasSibling() {
		t.Error("Q5/Q6 must contain sibling relations")
	}
	if got := len(su.Q3().Measures()); got != 5 {
		t.Errorf("Q3 has %d measures, want 5", got)
	}
	// Q6 exercises all four composite relationships.
	kinds := map[workflow.Kind]bool{}
	for _, m := range su.Q6().Measures() {
		kinds[m.Kind] = true
	}
	for _, k := range []workflow.Kind{workflow.Basic, workflow.Self, workflow.Rollup, workflow.Inherit, workflow.Sliding} {
		if !kinds[k] {
			t.Errorf("Q6 missing relationship %v", k)
		}
	}
	// Q5/Q6 minimal keys must be overlapping.
	for _, q := range []int{5, 6} {
		w, _ := su.Query(q)
		key, _, err := distkey.Derive(w)
		if err != nil {
			t.Fatal(err)
		}
		if !key.IsOverlapping() {
			t.Errorf("Q%d minimal key not overlapping: %s", q, key.Format(su.Schema))
		}
	}
}

func TestWriteStoreRoundTrip(t *testing.T) {
	su := NewSuite()
	records := su.Generate(2000, Uniform, 3)
	st, err := blockstore.Open(blockstore.Config{Dir: t.TempDir(), BlockSize: 4096, Replication: 2, NumNodes: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := WriteStore(st, "data", su.Schema, records); err != nil {
		t.Fatal(err)
	}
	info, err := st.FileInfo("data")
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != int64(len(records)) {
		t.Fatalf("store holds %d records, want %d", info.Records, len(records))
	}
	if info.SchemaDigest != workflow.SchemaDigest(su.Schema) {
		t.Fatalf("schema digest %q not recorded", info.SchemaDigest)
	}
	arity := su.Schema.NumAttrs()
	var back int
	blocks, err := st.Blocks("data")
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range blocks {
		data, err := st.ReadBlock("data", b.Index)
		if err != nil {
			t.Fatal(err)
		}
		fr := recio.NewFrameReader(data)
		for {
			payload, ok, err := fr.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			if _, err := recio.DecodeRecord(payload, arity); err != nil {
				t.Fatal(err)
			}
			back++
		}
	}
	if back != len(records) {
		t.Fatalf("got %d records back, want %d", back, len(records))
	}
}

func TestGenerateOptsZipf(t *testing.T) {
	su := NewSuite()
	recs, err := su.GenerateOpts(GenOpts{N: 10000, Seed: 7, Zipf: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := su.Schema.Validate(r); err != nil {
			t.Fatalf("invalid record: %v", err)
		}
	}
	// Zipf with exponent 2 concentrates mass heavily: the single hottest
	// a1 value must dwarf a uniform share (10000/256 ≈ 39).
	freq := map[int64]int{}
	for _, r := range recs {
		freq[r[0]]++
	}
	max := 0
	for _, c := range freq {
		if c > max {
			max = c
		}
	}
	if max < 1000 {
		t.Errorf("hottest a1 value has %d/10000 records; zipf(2) should concentrate far more", max)
	}
	// Determinism.
	again, _ := su.GenerateOpts(GenOpts{N: 10000, Seed: 7, Zipf: 2})
	for i := range recs {
		for j := range recs[i] {
			if recs[i][j] != again[i][j] {
				t.Fatal("zipf generation not deterministic")
			}
		}
	}
	// Invalid exponents are rejected, not silently accepted.
	if _, err := su.GenerateOpts(GenOpts{N: 10, Zipf: 0.5}); err == nil {
		t.Error("zipf 0.5 accepted")
	}
	if _, err := su.GenerateOpts(GenOpts{N: 10, Zipf: 1}); err == nil {
		t.Error("zipf 1 accepted")
	}
}

func TestGenerateOptsLayouts(t *testing.T) {
	su := NewSuite()
	opts := GenOpts{N: 5000, Seed: 3, Zipf: 1.5}

	clustered, err := su.GenerateOpts(GenOpts{N: opts.N, Seed: opts.Seed, Zipf: opts.Zipf, Layout: LayoutClustered})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(clustered); i++ {
		if clustered[i][0] < clustered[i-1][0] {
			t.Fatal("clustered layout not sorted by a1")
		}
	}

	adv, err := su.GenerateOpts(GenOpts{N: opts.N, Seed: opts.Seed, Zipf: opts.Zipf, Layout: LayoutAdversarial})
	if err != nil {
		t.Fatal(err)
	}
	// Hottest cluster last: the final record's a1 value must be the most
	// frequent one, and frequencies must be non-decreasing along the file.
	freq := map[int64]int{}
	for _, r := range adv {
		freq[r[0]]++
	}
	for i := 1; i < len(adv); i++ {
		if freq[adv[i][0]] < freq[adv[i-1][0]] {
			t.Fatal("adversarial layout not ordered by ascending a1 frequency")
		}
	}
	best := int64(-1)
	for v, c := range freq {
		if best < 0 || c > freq[best] {
			best = v
		}
	}
	if adv[len(adv)-1][0] != best {
		t.Errorf("last record's a1 = %d, want hottest value %d", adv[len(adv)-1][0], best)
	}

	// Layouts permute, never alter, the record multiset.
	shuffled, _ := su.GenerateOpts(GenOpts{N: opts.N, Seed: opts.Seed, Zipf: opts.Zipf})
	count := func(recs []cube.Record) map[string]int {
		m := map[string]int{}
		for _, r := range recs {
			m[fmt.Sprint([]int64(r))]++
		}
		return m
	}
	want := count(shuffled)
	for name, got := range map[string]map[string]int{"clustered": count(clustered), "adversarial": count(adv)} {
		if len(got) != len(want) {
			t.Fatalf("%s layout changed the record multiset", name)
		}
		for k, v := range want {
			if got[k] != v {
				t.Fatalf("%s layout changed the record multiset at %s", name, k)
			}
		}
	}
}

func TestParseLayout(t *testing.T) {
	for s, want := range map[string]Layout{"shuffled": LayoutShuffled, "": LayoutShuffled, "clustered": LayoutClustered, "adversarial": LayoutAdversarial} {
		got, err := ParseLayout(s)
		if err != nil || got != want {
			t.Errorf("ParseLayout(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseLayout("sorted"); err == nil {
		t.Error("bogus layout accepted")
	}
}
