package workload

import (
	"testing"

	"github.com/casm-project/casm/internal/dfs"
	"github.com/casm-project/casm/internal/distkey"
	"github.com/casm-project/casm/internal/recio"
	"github.com/casm-project/casm/internal/workflow"
)

func TestSchemaShape(t *testing.T) {
	s := NewSuite().Schema
	if s.NumAttrs() != 6 {
		t.Fatalf("attrs = %d", s.NumAttrs())
	}
	a1, _ := s.AttrIndex("a1")
	if got := s.Attr(a1).Card(); got != 256 {
		t.Errorf("a1 card = %d", got)
	}
	if got := s.Attr(a1).NumLevels(); got != 5 { // value,low,mid,high,ALL
		t.Errorf("a1 levels = %d", got)
	}
	hi, _ := s.Attr(a1).LevelIndex("high")
	if got := s.Attr(a1).CardAt(hi); got != 4 {
		t.Errorf("a1 high card = %d", got)
	}
	t1, _ := s.AttrIndex("t1")
	if got := s.Attr(t1).Card(); got != 20*86400 {
		t.Errorf("t1 card = %d", got)
	}
}

func TestGenerateDistributions(t *testing.T) {
	su := NewSuite()
	uni := su.Generate(5000, Uniform, 1)
	skew := su.Generate(5000, SkewedTime, 1)
	if len(uni) != 5000 || len(skew) != 5000 {
		t.Fatal("wrong sizes")
	}
	for _, r := range append(uni, skew...) {
		if err := su.Schema.Validate(r); err != nil {
			t.Fatalf("invalid record: %v", err)
		}
	}
	t1, _ := su.Schema.AttrIndex("t1")
	lateUni, lateSkew := 0, 0
	for i := range uni {
		if uni[i][t1] >= SkewDays*86400 {
			lateUni++
		}
		if skew[i][t1] >= SkewDays*86400 {
			lateSkew++
		}
	}
	if lateSkew != 0 {
		t.Errorf("skewed data has %d records after day %d", lateSkew, SkewDays)
	}
	if lateUni < 3000 { // expect ~75%
		t.Errorf("uniform data suspiciously early: %d/5000 late", lateUni)
	}
	// Determinism.
	again := su.Generate(5000, Uniform, 1)
	for i := range uni {
		for j := range uni[i] {
			if uni[i][j] != again[i][j] {
				t.Fatal("generation not deterministic")
			}
		}
	}
}

func TestAllQueriesValidate(t *testing.T) {
	su := NewSuite()
	for n := 1; n <= 6; n++ {
		w, err := su.Query(n)
		if err != nil {
			t.Fatalf("Q%d: %v", n, err)
		}
		if err := w.Validate(); err != nil {
			t.Errorf("Q%d invalid: %v", n, err)
		}
		if _, _, err := distkey.Derive(w); err != nil {
			t.Errorf("Q%d key derivation: %v", n, err)
		}
	}
	if _, err := su.Query(7); err == nil {
		t.Error("Q7 accepted")
	}
	for i := 0; i <= 2; i++ {
		w, err := su.DS(i)
		if err != nil {
			t.Fatalf("DS%d: %v", i, err)
		}
		if err := w.Validate(); err != nil {
			t.Errorf("DS%d invalid: %v", i, err)
		}
	}
	if _, err := su.DS(3); err == nil {
		t.Error("DS3 accepted")
	}
}

func TestQueryShapes(t *testing.T) {
	su := NewSuite()
	if su.Q1().HasSibling() || su.Q2().HasSibling() || su.Q3().HasSibling() || su.Q4().HasSibling() {
		t.Error("Q1-Q4 must not contain sibling relations")
	}
	if !su.Q5().HasSibling() || !su.Q6().HasSibling() {
		t.Error("Q5/Q6 must contain sibling relations")
	}
	if got := len(su.Q3().Measures()); got != 5 {
		t.Errorf("Q3 has %d measures, want 5", got)
	}
	// Q6 exercises all four composite relationships.
	kinds := map[workflow.Kind]bool{}
	for _, m := range su.Q6().Measures() {
		kinds[m.Kind] = true
	}
	for _, k := range []workflow.Kind{workflow.Basic, workflow.Self, workflow.Rollup, workflow.Inherit, workflow.Sliding} {
		if !kinds[k] {
			t.Errorf("Q6 missing relationship %v", k)
		}
	}
	// Q5/Q6 minimal keys must be overlapping.
	for _, q := range []int{5, 6} {
		w, _ := su.Query(q)
		key, _, err := distkey.Derive(w)
		if err != nil {
			t.Fatal(err)
		}
		if !key.IsOverlapping() {
			t.Errorf("Q%d minimal key not overlapping: %s", q, key.Format(su.Schema))
		}
	}
}

func TestWriteDFSRoundTrip(t *testing.T) {
	su := NewSuite()
	records := su.Generate(2000, Uniform, 3)
	fs, err := dfs.New(dfs.Config{BlockSize: 4096, Replication: 2, NumNodes: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteDFS(fs, "data", records, 4096); err != nil {
		t.Fatal(err)
	}
	data, err := fs.Read("data")
	if err != nil {
		t.Fatal(err)
	}
	back, err := recio.DecodeAll(data, 4096, su.Schema.NumAttrs())
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(records) {
		t.Fatalf("got %d records back, want %d", len(back), len(records))
	}
}
