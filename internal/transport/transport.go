// Package transport moves shuffled key/value pairs from mappers to
// reducers. Two implementations are provided: an in-memory channel
// transport (the default for tests and benchmarks) and a real TCP
// transport using encoding/gob framing, which exercises the same code
// paths a multi-node deployment would ("the result pairs are shuffled and
// dispatched to reducers").
//
// A Transport instance serves one job execution: mappers call Send
// concurrently, then the driver calls CloseSend exactly once; each reducer
// drains its Receive channel until it is closed.
package transport

import (
	"fmt"
	"sync/atomic"
)

// Pair is one shuffled key/value pair. Key is the distribution block key;
// Value is an opaque payload (a serialized record or partial aggregate).
type Pair struct {
	Key   string
	Value []byte
}

// Size returns the pair's payload size in bytes, the unit of the cost
// model's transfer term.
func (p Pair) Size() int64 { return int64(len(p.Key) + len(p.Value)) }

// Transport delivers pairs to numbered reducers.
type Transport interface {
	// Send delivers a pair to reducer r. Safe for concurrent use by many
	// mapper goroutines. It fails after CloseSend.
	Send(r int, p Pair) error
	// CloseSend signals that no more pairs will be sent. Receive channels
	// close once their in-flight pairs are drained.
	CloseSend() error
	// Receive returns reducer r's input channel.
	Receive(r int) <-chan Pair
	// BytesSent reports the total payload bytes sent so far.
	BytesSent() int64
	// Close releases resources. Call after all receivers are drained.
	Close() error
}

// Factory creates a transport for a job with the given reducer count.
type Factory func(numReducers int) (Transport, error)

// channelTransport is the in-memory implementation.
type channelTransport struct {
	chans  []chan Pair
	bytes  atomic.Int64
	closed atomic.Bool
}

// NewChannel returns an in-memory transport with the given per-reducer
// buffer (a buffer < 1 defaults to 1024).
func NewChannel(numReducers, buffer int) (Transport, error) {
	if numReducers < 1 {
		return nil, fmt.Errorf("transport: reducer count %d < 1", numReducers)
	}
	if buffer < 1 {
		buffer = 1024
	}
	t := &channelTransport{chans: make([]chan Pair, numReducers)}
	for i := range t.chans {
		t.chans[i] = make(chan Pair, buffer)
	}
	return t, nil
}

// ChannelFactory returns a Factory producing in-memory transports.
func ChannelFactory(buffer int) Factory {
	return func(n int) (Transport, error) { return NewChannel(n, buffer) }
}

func (t *channelTransport) Send(r int, p Pair) error {
	if t.closed.Load() {
		return fmt.Errorf("transport: send after CloseSend")
	}
	if r < 0 || r >= len(t.chans) {
		return fmt.Errorf("transport: reducer %d out of range [0,%d)", r, len(t.chans))
	}
	t.bytes.Add(p.Size())
	t.chans[r] <- p
	return nil
}

func (t *channelTransport) CloseSend() error {
	if t.closed.Swap(true) {
		return fmt.Errorf("transport: CloseSend called twice")
	}
	for _, c := range t.chans {
		close(c)
	}
	return nil
}

func (t *channelTransport) Receive(r int) <-chan Pair { return t.chans[r] }
func (t *channelTransport) BytesSent() int64          { return t.bytes.Load() }
func (t *channelTransport) Close() error              { return nil }
