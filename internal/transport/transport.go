// Package transport moves shuffled key/value pairs from mappers to
// reducers. Two implementations are provided: an in-memory channel
// transport (the default for tests and benchmarks) and a real TCP
// transport using length-prefixed binary framing, which exercises the
// same code paths a multi-node deployment would ("the result pairs are
// shuffled and dispatched to reducers").
//
// A Transport instance serves one job execution: mappers call Send or
// SendBatch concurrently, then the driver calls CloseSend exactly once;
// each reducer drains its Receive channel until it is closed.
//
// Sends are context-aware: a sender blocked on reducer backpressure
// unblocks with ctx.Err() as soon as its context is cancelled, so a
// cancelled job's map tasks never deadlock against collectors that have
// stopped consuming. CloseSend also takes the context, but performs its
// channel-closing side even when the context is already cancelled —
// teardown must always run so receivers terminate.
//
// Delivery is batch-framed end to end: the channel transport moves one
// []Pair slice per channel operation and the TCP transport encodes one
// binary frame per batch, so both the synchronization and the round-trip
// count drop by the batch factor. Senders that emit pair-at-a-time use a
// BatchWriter to accumulate per-reducer batches.
//
// Ownership: a batch slice passed to SendBatch is handed off to the
// transport (and, for the channel transport, surfaces unchanged at the
// receiver) — the caller must not reuse or mutate it, nor the Key/Value
// bytes it references, for the life of the job. Symmetrically, the bytes
// a receiver sees stay valid and unmodified for the life of the job: the
// channel transport hands the sender's batch through untouched, and the
// TCP transport decodes each frame into a fresh buffer that the frame's
// pairs alias and that nothing overwrites afterwards. Reducer-side
// collectors may therefore retain received Key/Value slices without
// copying.
package transport

import (
	"context"
	"fmt"
	"sync/atomic"
)

// Pair is one shuffled key/value pair. Key is the distribution block key
// and Value an opaque payload (a serialized record or partial aggregate);
// both are raw byte slices so the record data plane never round-trips
// through string allocations (see the package comment for ownership).
type Pair struct {
	Key   []byte
	Value []byte
}

// Size returns the pair's payload size in bytes, the unit of the cost
// model's transfer term.
func (p Pair) Size() int64 { return int64(len(p.Key) + len(p.Value)) }

// Transport delivers pairs to numbered reducers.
type Transport interface {
	// Send delivers a single pair to reducer r; equivalent to a one-pair
	// SendBatch. Safe for concurrent use by many mapper goroutines. It
	// fails after CloseSend, and returns ctx.Err() (without delivering)
	// once ctx is cancelled.
	Send(ctx context.Context, r int, p Pair) error
	// SendBatch delivers a batch of pairs to reducer r in one framed
	// operation. The transport takes ownership of ps (see the package
	// comment). Empty batches are a no-op. Safe for concurrent use; it
	// fails after CloseSend. A sender blocked on backpressure unblocks
	// with ctx.Err() when ctx is cancelled.
	SendBatch(ctx context.Context, r int, ps []Pair) error
	// CloseSend signals that no more pairs will be sent. Receive channels
	// close once their in-flight batches are drained. It always performs
	// teardown (closing the receive side); a cancelled ctx only lets the
	// implementation skip non-essential flushing of buffered data.
	CloseSend(ctx context.Context) error
	// Receive returns reducer r's input channel of batches. Each batch
	// holds at least one pair.
	Receive(r int) <-chan []Pair
	// BytesSent reports the total payload bytes sent so far.
	BytesSent() int64
	// BatchesSent reports the number of framed batch deliveries so far
	// (single-pair Sends count as one batch each).
	BatchesSent() int64
	// Close releases resources. Call after all receivers are drained.
	Close() error
}

// Factory creates a transport for a job with the given reducer count.
type Factory func(numReducers int) (Transport, error)

// channelTransport is the in-memory implementation.
type channelTransport struct {
	chans   []chan []Pair
	bytes   atomic.Int64
	batches atomic.Int64
	closed  atomic.Bool
}

// NewChannel returns an in-memory transport with the given per-reducer
// buffer in batches (a buffer < 1 defaults to 1024).
func NewChannel(numReducers, buffer int) (Transport, error) {
	if numReducers < 1 {
		return nil, fmt.Errorf("transport: reducer count %d < 1", numReducers)
	}
	if buffer < 1 {
		buffer = 1024
	}
	t := &channelTransport{chans: make([]chan []Pair, numReducers)}
	for i := range t.chans {
		t.chans[i] = make(chan []Pair, buffer)
	}
	return t, nil
}

// ChannelFactory returns a Factory producing in-memory transports.
func ChannelFactory(buffer int) Factory {
	return func(n int) (Transport, error) { return NewChannel(n, buffer) }
}

func (t *channelTransport) Send(ctx context.Context, r int, p Pair) error {
	return t.SendBatch(ctx, r, []Pair{p})
}

func (t *channelTransport) SendBatch(ctx context.Context, r int, ps []Pair) error {
	if len(ps) == 0 {
		return nil
	}
	if t.closed.Load() {
		return fmt.Errorf("transport: send after CloseSend")
	}
	if r < 0 || r >= len(t.chans) {
		return fmt.Errorf("transport: reducer %d out of range [0,%d)", r, len(t.chans))
	}
	// Cancellation check before committing the counters: a cancelled
	// sender reports nothing delivered.
	if err := ctx.Err(); err != nil {
		return err
	}
	var bytes int64
	for i := range ps {
		bytes += ps[i].Size()
	}
	select {
	case t.chans[r] <- ps:
	case <-ctx.Done():
		// Blocked on backpressure when the job died: unblock without
		// delivering (the receiver may have stopped draining for good).
		return ctx.Err()
	}
	t.bytes.Add(bytes)
	t.batches.Add(1)
	return nil
}

func (t *channelTransport) CloseSend(ctx context.Context) error {
	if t.closed.Swap(true) {
		return fmt.Errorf("transport: CloseSend called twice")
	}
	// Closing the channels is teardown, not delivery: it runs even when
	// ctx is already cancelled, so receivers always terminate.
	for _, c := range t.chans {
		close(c)
	}
	return nil
}

func (t *channelTransport) Receive(r int) <-chan []Pair { return t.chans[r] }
func (t *channelTransport) BytesSent() int64            { return t.bytes.Load() }
func (t *channelTransport) BatchesSent() int64          { return t.batches.Load() }
func (t *channelTransport) Close() error                { return nil }
