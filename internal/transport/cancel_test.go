package transport

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestChannelSendUnblocksOnCancel parks a sender on a full channel and
// verifies cancellation unblocks it with ctx.Err() — the guarantee mr's
// teardown relies on when collectors stop draining.
func TestChannelSendUnblocksOnCancel(t *testing.T) {
	tr, err := NewChannel(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	cctx, cancel := context.WithCancel(context.Background())
	// Fill the single-batch buffer; nobody is receiving.
	if err := tr.Send(cctx, 0, pairS("a", nil)); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- tr.Send(cctx, 0, pairS("b", nil)) }()
	select {
	case err := <-done:
		t.Fatalf("send returned %v before cancel on a full buffer", err)
	case <-time.After(20 * time.Millisecond):
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("send did not unblock on cancel")
	}
}

// TestSendOnCancelledContextFails covers the between-frames check on both
// implementations.
func TestSendOnCancelledContextFails(t *testing.T) {
	for name, f := range map[string]Factory{"channel": ChannelFactory(4), "tcp": TCPFactory(4)} {
		t.Run(name, func(t *testing.T) {
			tr, err := f(1)
			if err != nil {
				t.Fatal(err)
			}
			defer tr.Close()
			cctx, cancel := context.WithCancel(context.Background())
			cancel()
			if err := tr.Send(cctx, 0, pairS("a", nil)); !errors.Is(err, context.Canceled) {
				t.Fatalf("want context.Canceled, got %v", err)
			}
			if got := tr.BytesSent(); got != 0 {
				t.Fatalf("cancelled send accounted %d bytes", got)
			}
			// Teardown still runs on a dead context: receivers terminate.
			if err := tr.CloseSend(cctx); err != nil {
				t.Fatal(err)
			}
			for range tr.Receive(0) {
			}
		})
	}
}
