package transport

import "context"

// BatchWriter accumulates pairs into per-reducer batches for one sender
// (one map task) and ships each batch with a single SendBatch call when it
// reaches batchSize. It is NOT safe for concurrent use — each sending
// goroutine owns its own BatchWriter; the underlying transport handles the
// cross-sender concurrency.
//
// Ownership follows SendBatch: buffered pairs (and the bytes their Keys
// and Values reference) are handed off at flush time, so callers must
// treat every pair given to Send as owned by the transport from that
// point on.
type BatchWriter struct {
	ctx     context.Context
	tr      Transport
	size    int
	bufs    [][]Pair
	batches int64
}

// NewBatchWriter returns a writer shipping batches of batchSize pairs to
// tr under ctx: every flush is a context-aware SendBatch, so a sender
// blocked on backpressure unblocks when ctx is cancelled. The writer is
// owned by one sending task, whose lifetime the context spans — storing
// it here keeps the per-pair Send signature alloc-free. A batchSize < 2
// degenerates to one SendBatch per pair (batching disabled).
func NewBatchWriter(ctx context.Context, tr Transport, numReducers, batchSize int) *BatchWriter {
	if batchSize < 1 {
		batchSize = 1
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return &BatchWriter{ctx: ctx, tr: tr, size: batchSize, bufs: make([][]Pair, numReducers)}
}

// Send buffers one pair for reducer r, flushing that reducer's batch if it
// is full.
func (w *BatchWriter) Send(r int, p Pair) error {
	if w.size <= 1 {
		w.batches++
		return w.tr.Send(w.ctx, r, p)
	}
	if w.bufs[r] == nil {
		w.bufs[r] = GetBatch(w.size)
	}
	w.bufs[r] = append(w.bufs[r], p)
	if len(w.bufs[r]) >= w.size {
		return w.flushReducer(r)
	}
	return nil
}

func (w *BatchWriter) flushReducer(r int) error {
	ps := w.bufs[r]
	w.bufs[r] = nil // the transport owns ps now; next batch gets a fresh buffer
	if len(ps) == 0 {
		return nil
	}
	w.batches++
	return w.tr.SendBatch(w.ctx, r, ps)
}

// Flush ships every non-empty buffered batch. Call once at the end of the
// sender's emit stream, before the driver's CloseSend.
func (w *BatchWriter) Flush() error {
	for r := range w.bufs {
		if err := w.flushReducer(r); err != nil {
			return err
		}
	}
	return nil
}

// Batches reports how many batches this writer has shipped.
func (w *BatchWriter) Batches() int64 { return w.batches }
