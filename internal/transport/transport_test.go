package transport

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// ctx is the do-nothing context threaded through test sends; cancellation
// behavior gets its own tests.
var ctx = context.Background()

// pairS builds a Pair from a string key; test convenience only (the
// exported PairS shim is deprecated and has no internal callers).
func pairS(key string, value []byte) Pair {
	return Pair{Key: []byte(key), Value: value}
}

// exercise sends pairs from several concurrent "mappers" and verifies each
// reducer receives exactly the pairs addressed to it.
func exercise(t *testing.T, factory Factory, reducers, mappers, pairsPerMapper int) {
	t.Helper()
	tr, err := factory(reducers)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	type addressed struct {
		r int
		p Pair
	}
	var mu sync.Mutex
	sent := make(map[int][]string) // reducer -> sorted payload strings

	var recvWG sync.WaitGroup
	received := make([][]string, reducers)
	for r := 0; r < reducers; r++ {
		r := r
		recvWG.Add(1)
		go func() {
			defer recvWG.Done()
			for ps := range tr.Receive(r) {
				for _, p := range ps {
					received[r] = append(received[r], string(p.Key)+"="+string(p.Value))
				}
			}
		}()
	}

	var sendWG sync.WaitGroup
	for m := 0; m < mappers; m++ {
		m := m
		sendWG.Add(1)
		go func() {
			defer sendWG.Done()
			rng := rand.New(rand.NewSource(int64(m)))
			for i := 0; i < pairsPerMapper; i++ {
				a := addressed{
					r: rng.Intn(reducers),
					p: pairS(fmt.Sprintf("k%d", rng.Intn(10)), []byte(fmt.Sprintf("m%d-i%d", m, i))),
				}
				if err := tr.Send(ctx, a.r, a.p); err != nil {
					t.Errorf("send: %v", err)
					return
				}
				mu.Lock()
				sent[a.r] = append(sent[a.r], string(a.p.Key)+"="+string(a.p.Value))
				mu.Unlock()
			}
		}()
	}
	sendWG.Wait()
	if err := tr.CloseSend(ctx); err != nil {
		t.Fatal(err)
	}
	recvWG.Wait()

	total := int64(0)
	for r := 0; r < reducers; r++ {
		got := append([]string(nil), received[r]...)
		want := append([]string(nil), sent[r]...)
		sort.Strings(got)
		sort.Strings(want)
		if len(got) != len(want) {
			t.Fatalf("reducer %d: got %d pairs, want %d", r, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("reducer %d: pair %d = %q, want %q", r, i, got[i], want[i])
			}
		}
		total += int64(len(got))
	}
	if total != int64(mappers*pairsPerMapper) {
		t.Fatalf("total pairs %d, want %d", total, mappers*pairsPerMapper)
	}
	if tr.BytesSent() <= 0 {
		t.Error("BytesSent not accounted")
	}
}

func TestChannelTransport(t *testing.T) {
	exercise(t, ChannelFactory(16), 4, 8, 500)
}

func TestTCPTransport(t *testing.T) {
	exercise(t, TCPFactory(16), 4, 8, 500)
}

func TestTCPSingleReducer(t *testing.T) {
	exercise(t, TCPFactory(0), 1, 2, 100)
}

func TestSendAfterCloseFails(t *testing.T) {
	for name, f := range map[string]Factory{"channel": ChannelFactory(4), "tcp": TCPFactory(4)} {
		t.Run(name, func(t *testing.T) {
			tr, err := f(2)
			if err != nil {
				t.Fatal(err)
			}
			defer tr.Close()
			go func() {
				for range tr.Receive(0) {
				}
			}()
			go func() {
				for range tr.Receive(1) {
				}
			}()
			if err := tr.Send(ctx, 0, pairS("a", []byte("b"))); err != nil {
				t.Fatal(err)
			}
			if err := tr.CloseSend(ctx); err != nil {
				t.Fatal(err)
			}
			if err := tr.Send(ctx, 0, pairS("a", nil)); err == nil {
				t.Error("send after CloseSend succeeded")
			}
			if err := tr.CloseSend(ctx); err == nil {
				t.Error("double CloseSend succeeded")
			}
		})
	}
}

func TestSendValidation(t *testing.T) {
	tr, err := NewChannel(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Send(ctx, -1, Pair{}); err == nil {
		t.Error("negative reducer accepted")
	}
	if err := tr.Send(ctx, 2, Pair{}); err == nil {
		t.Error("out-of-range reducer accepted")
	}
	if _, err := NewChannel(0, 4); err == nil {
		t.Error("zero reducers accepted")
	}
	if _, err := NewTCP(0, 4); err == nil {
		t.Error("zero reducers accepted (tcp)")
	}
}

func TestPairSize(t *testing.T) {
	p := pairS("abc", []byte("defg"))
	if p.Size() != 7 {
		t.Errorf("size = %d", p.Size())
	}
}

func TestChannelBytesSentExact(t *testing.T) {
	tr, _ := NewChannel(1, 8)
	go func() {
		for range tr.Receive(0) {
		}
	}()
	tr.Send(ctx, 0, pairS("ab", []byte("cd")))
	tr.Send(ctx, 0, pairS("x", nil))
	if got := tr.BytesSent(); got != 5 {
		t.Errorf("BytesSent = %d, want 5", got)
	}
	tr.CloseSend(ctx)
}

func TestTCPCloseBeforeCloseSend(t *testing.T) {
	// Closing a transport that never shipped anything must release the
	// listeners and connections without hanging.
	tr, err := NewTCP(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTCPConcurrentSendersInterleave(t *testing.T) {
	// Many goroutines writing to the same reducer share one framed stream;
	// frames must never corrupt each other.
	tr, err := NewTCP(1, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	var recvWG sync.WaitGroup
	seen := map[string]int{}
	recvWG.Add(1)
	go func() {
		defer recvWG.Done()
		for ps := range tr.Receive(0) {
			for _, p := range ps {
				seen[string(p.Value)]++
			}
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			payload := []byte(fmt.Sprintf("sender-%d", g))
			for i := 0; i < 200; i++ {
				if err := tr.Send(ctx, 0, Pair{Key: []byte("k"), Value: payload}); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := tr.CloseSend(ctx); err != nil {
		t.Fatal(err)
	}
	recvWG.Wait()
	if len(seen) != 16 {
		t.Fatalf("distinct payloads = %d", len(seen))
	}
	for k, n := range seen {
		if n != 200 {
			t.Errorf("%s delivered %d times", k, n)
		}
	}
}
