package transport

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// collectAll drains every reducer channel concurrently and returns the
// multiset of delivered pairs per reducer, formatted "key=value".
func collectAll(tr Transport, reducers int) [][]string {
	received := make([][]string, reducers)
	var wg sync.WaitGroup
	for r := 0; r < reducers; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ps := range tr.Receive(r) {
				for _, p := range ps {
					received[r] = append(received[r], string(p.Key)+"="+string(p.Value))
				}
			}
		}()
	}
	wg.Wait()
	for r := range received {
		sort.Strings(received[r])
	}
	return received
}

// TestBatchedEqualsPerPair is the batching equivalence property: routing a
// pair stream through a BatchWriter (any batch size) must deliver exactly
// the same multiset of pairs to each reducer as sending pair-at-a-time.
func TestBatchedEqualsPerPair(t *testing.T) {
	const reducers, senders, pairsPerSender = 3, 4, 400

	// Deterministic pair stream per sender.
	pairStream := func(s int) []Pair {
		rng := rand.New(rand.NewSource(int64(100 + s)))
		ps := make([]Pair, pairsPerSender)
		for i := range ps {
			ps[i] = pairS(fmt.Sprintf("k%d", rng.Intn(50)), []byte(fmt.Sprintf("s%d-i%d", s, i)))
		}
		return ps
	}
	route := func(p Pair) int { return int(p.Key[1]-'0') % reducers }

	run := func(t *testing.T, factory Factory, batchSize int) [][]string {
		t.Helper()
		tr, err := factory(reducers)
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Close()
		var recvResult [][]string
		var recvWG sync.WaitGroup
		recvWG.Add(1)
		go func() {
			defer recvWG.Done()
			recvResult = collectAll(tr, reducers)
		}()
		var sendWG sync.WaitGroup
		for s := 0; s < senders; s++ {
			s := s
			sendWG.Add(1)
			go func() {
				defer sendWG.Done()
				bw := NewBatchWriter(ctx, tr, reducers, batchSize)
				for _, p := range pairStream(s) {
					if err := bw.Send(route(p), p); err != nil {
						t.Errorf("send: %v", err)
						return
					}
				}
				if err := bw.Flush(); err != nil {
					t.Errorf("flush: %v", err)
				}
			}()
		}
		sendWG.Wait()
		if err := tr.CloseSend(ctx); err != nil {
			t.Fatal(err)
		}
		recvWG.Wait()
		return recvResult
	}

	for name, factory := range map[string]Factory{"channel": ChannelFactory(8), "tcp": TCPFactory(8)} {
		t.Run(name, func(t *testing.T) {
			baseline := run(t, factory, 1) // per-pair: BatchWriter passthrough
			for _, size := range []int{2, 3, 16, 256, 1024} {
				got := run(t, factory, size)
				for r := 0; r < reducers; r++ {
					if len(got[r]) != len(baseline[r]) {
						t.Fatalf("size %d reducer %d: %d pairs, want %d",
							size, r, len(got[r]), len(baseline[r]))
					}
					for i := range got[r] {
						if got[r][i] != baseline[r][i] {
							t.Fatalf("size %d reducer %d pair %d: %q != %q",
								size, r, i, got[r][i], baseline[r][i])
						}
					}
				}
			}
		})
	}
}

func TestSendBatchEmptyIsNoOp(t *testing.T) {
	tr, err := NewChannel(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	done := make(chan int)
	go func() {
		n := 0
		for ps := range tr.Receive(0) {
			n += len(ps)
		}
		done <- n
	}()
	if err := tr.SendBatch(ctx, 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := tr.SendBatch(ctx, 0, []Pair{}); err != nil {
		t.Fatal(err)
	}
	if err := tr.SendBatch(ctx, 0, []Pair{pairS("a", []byte("b"))}); err != nil {
		t.Fatal(err)
	}
	if err := tr.CloseSend(ctx); err != nil {
		t.Fatal(err)
	}
	if n := <-done; n != 1 {
		t.Errorf("delivered %d pairs, want 1", n)
	}
	if tr.BatchesSent() != 1 {
		t.Errorf("BatchesSent = %d, want 1", tr.BatchesSent())
	}
}

func TestBatchWriterCounts(t *testing.T) {
	tr, err := NewChannel(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range tr.Receive(r) {
			}
		}()
	}
	bw := NewBatchWriter(ctx, tr, 2, 4)
	for i := 0; i < 10; i++ { // reducer 0: 10 pairs -> 2 full + 1 partial
		if err := bw.Send(0, Pair{Key: []byte("k"), Value: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Send(1, pairS("k", nil)); err != nil { // reducer 1: 1 partial
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := bw.Batches(); got != 4 {
		t.Errorf("Batches = %d, want 4 (2 full + 2 residual)", got)
	}
	if err := tr.CloseSend(ctx); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if tr.BatchesSent() != 4 {
		t.Errorf("transport BatchesSent = %d, want 4", tr.BatchesSent())
	}
}
