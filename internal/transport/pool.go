package transport

import "sync"

// batchPool recycles the []Pair batch slices that carry pairs through
// the shuffle and the job output stream. Batches are the data plane's
// highest-volume allocation (one slice per 256 pairs, for the whole
// job): pooling them turns the per-batch make into a near-free reuse.
// Only the slices cycle through the pool — the Key/Value bytes the pairs
// reference are never pooled and keep their documented job-lifetime
// validity.
var batchPool = sync.Pool{New: func() any { b := make([]Pair, 0, DefaultBatchPairs); return &b }}

// DefaultBatchPairs sizes pooled batch slices; callers asking GetBatch
// for at most this capacity always get a pooled slice back.
const DefaultBatchPairs = 256

// GetBatch returns an empty batch slice with capacity ≥ n, reusing a
// recycled one when possible. The caller owns it until it is handed to
// SendBatch (whereafter the receiver owns it) or RecycleBatch.
func GetBatch(n int) []Pair {
	p := batchPool.Get().(*[]Pair)
	if cap(*p) >= n {
		return (*p)[:0]
	}
	batchPool.Put(p)
	return make([]Pair, 0, n)
}

// RecycleBatch returns a consumed batch slice to the pool. Callers must
// have taken every pair they need out of ps first: the slice may be
// reused for a later batch at any moment. Recycling is strictly optional
// — batches that escape (held by a consumer, crossed a test boundary)
// are simply collected by the GC. The pair structs are cleared so a
// pooled slice does not pin the previous job's key/value bytes.
func RecycleBatch(ps []Pair) {
	if cap(ps) == 0 {
		return
	}
	ps = ps[:cap(ps)]
	for i := range ps {
		ps[i] = Pair{}
	}
	ps = ps[:0]
	batchPool.Put(&ps)
}
