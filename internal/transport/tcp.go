package transport

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
)

// tcpTransport shuffles pairs over real loopback TCP connections with gob
// framing. Each reducer owns one listener; the transport dials one
// connection per reducer up front (all mapper goroutines in this process
// share it), so a job uses numReducers connections. One gob frame carries
// one batch ([]Pair), so the encode/decode round-trip count drops by the
// batch factor relative to pair-at-a-time framing.
type tcpTransport struct {
	recv    []chan []Pair
	conns   []*tcpConn
	lns     []net.Listener
	bytes   atomic.Int64
	batches atomic.Int64
	closed  atomic.Bool
}

type tcpConn struct {
	mu   sync.Mutex
	conn net.Conn
	bw   *bufio.Writer
	enc  *gob.Encoder
}

// NewTCP returns a transport shuffling over loopback TCP. buffer sizes the
// per-reducer receive channel in batches (< 1 defaults to 1024).
func NewTCP(numReducers, buffer int) (Transport, error) {
	if numReducers < 1 {
		return nil, fmt.Errorf("transport: reducer count %d < 1", numReducers)
	}
	if buffer < 1 {
		buffer = 1024
	}
	t := &tcpTransport{
		recv:  make([]chan []Pair, numReducers),
		conns: make([]*tcpConn, numReducers),
		lns:   make([]net.Listener, numReducers),
	}
	for r := 0; r < numReducers; r++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("transport: listen: %w", err)
		}
		t.lns[r] = ln
		t.recv[r] = make(chan []Pair, buffer)
	}
	// Accept one inbound connection per reducer and decode batches from it
	// until EOF, then close the reducer's receive channel.
	var errMu sync.Mutex
	var acceptErr error
	var wg sync.WaitGroup
	for r := 0; r < numReducers; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := t.lns[r].Accept()
			if err != nil {
				errMu.Lock()
				acceptErr = err
				errMu.Unlock()
				close(t.recv[r])
				return
			}
			go func() {
				defer close(t.recv[r])
				defer conn.Close()
				dec := gob.NewDecoder(bufio.NewReaderSize(conn, 1<<16))
				for {
					var ps []Pair
					if err := dec.Decode(&ps); err != nil {
						if err != io.EOF {
							// A decode error mid-stream means the sender
							// died; the reducer sees a short channel, and
							// the job driver detects the loss by counters.
							_ = err
						}
						return
					}
					if len(ps) > 0 {
						t.recv[r] <- ps
					}
				}
			}()
		}()
	}
	// Dial every reducer so the accepts above complete before New returns.
	for r := 0; r < numReducers; r++ {
		conn, err := net.Dial("tcp", t.lns[r].Addr().String())
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("transport: dial reducer %d: %w", r, err)
		}
		bw := bufio.NewWriterSize(conn, 1<<16)
		t.conns[r] = &tcpConn{conn: conn, bw: bw, enc: gob.NewEncoder(bw)}
	}
	wg.Wait()
	if acceptErr != nil {
		t.Close()
		return nil, fmt.Errorf("transport: accept: %w", acceptErr)
	}
	return t, nil
}

// TCPFactory returns a Factory producing loopback TCP transports.
func TCPFactory(buffer int) Factory {
	return func(n int) (Transport, error) { return NewTCP(n, buffer) }
}

func (t *tcpTransport) Send(r int, p Pair) error {
	return t.SendBatch(r, []Pair{p})
}

func (t *tcpTransport) SendBatch(r int, ps []Pair) error {
	if len(ps) == 0 {
		return nil
	}
	if t.closed.Load() {
		return fmt.Errorf("transport: send after CloseSend")
	}
	if r < 0 || r >= len(t.conns) {
		return fmt.Errorf("transport: reducer %d out of range [0,%d)", r, len(t.conns))
	}
	c := t.conns[r]
	c.mu.Lock()
	err := c.enc.Encode(ps)
	c.mu.Unlock()
	if err != nil {
		return fmt.Errorf("transport: send to reducer %d: %w", r, err)
	}
	var bytes int64
	for i := range ps {
		bytes += ps[i].Size()
	}
	t.bytes.Add(bytes)
	t.batches.Add(1)
	return nil
}

func (t *tcpTransport) CloseSend() error {
	if t.closed.Swap(true) {
		return fmt.Errorf("transport: CloseSend called twice")
	}
	var first error
	for _, c := range t.conns {
		c.mu.Lock()
		if err := c.bw.Flush(); err != nil && first == nil {
			first = err
		}
		if err := c.conn.Close(); err != nil && first == nil {
			first = err
		}
		c.mu.Unlock()
	}
	return first
}

func (t *tcpTransport) Receive(r int) <-chan []Pair { return t.recv[r] }
func (t *tcpTransport) BytesSent() int64            { return t.bytes.Load() }
func (t *tcpTransport) BatchesSent() int64          { return t.batches.Load() }

func (t *tcpTransport) Close() error {
	for _, ln := range t.lns {
		if ln != nil {
			ln.Close()
		}
	}
	if !t.closed.Load() {
		for _, c := range t.conns {
			if c != nil {
				c.conn.Close()
			}
		}
	}
	return nil
}
