package transport

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
)

// tcpTransport shuffles pairs over real loopback TCP connections with
// length-prefixed binary framing. Each reducer owns one listener; the
// transport dials one connection per reducer up front (all mapper
// goroutines in this process share it), so a job uses numReducers
// connections. One frame carries one batch ([]Pair), so the encode/decode
// round-trip count drops by the batch factor relative to pair-at-a-time
// framing.
//
// Wire format, all integers unsigned varints:
//
//	frame  := payloadLen payload
//	payload := pairCount pair*
//	pair   := keyLen keyBytes valueLen valueBytes
//
// The sender serializes a batch into a per-connection scratch buffer
// reused across frames (guarded by the connection mutex), so steady-state
// sending allocates nothing. The receiver reads each payload into a
// fresh buffer that the decoded pairs alias; because the buffer is
// per-frame and never recycled, received Key/Value bytes remain valid
// for the life of the job, matching the channel transport's contract.
type tcpTransport struct {
	recv    []chan []Pair
	conns   []*tcpConn
	lns     []net.Listener
	bytes   atomic.Int64
	batches atomic.Int64
	closed  atomic.Bool
}

type tcpConn struct {
	mu      sync.Mutex
	conn    net.Conn
	bw      *bufio.Writer
	scratch []byte // reused frame-encode buffer
}

// NewTCP returns a transport shuffling over loopback TCP. buffer sizes the
// per-reducer receive channel in batches (< 1 defaults to 1024).
func NewTCP(numReducers, buffer int) (Transport, error) {
	if numReducers < 1 {
		return nil, fmt.Errorf("transport: reducer count %d < 1", numReducers)
	}
	if buffer < 1 {
		buffer = 1024
	}
	t := &tcpTransport{
		recv:  make([]chan []Pair, numReducers),
		conns: make([]*tcpConn, numReducers),
		lns:   make([]net.Listener, numReducers),
	}
	for r := 0; r < numReducers; r++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("transport: listen: %w", err)
		}
		t.lns[r] = ln
		t.recv[r] = make(chan []Pair, buffer)
	}
	// Accept one inbound connection per reducer and decode frames from it
	// until EOF, then close the reducer's receive channel.
	var errMu sync.Mutex
	var acceptErr error
	var wg sync.WaitGroup
	for r := 0; r < numReducers; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := t.lns[r].Accept()
			if err != nil {
				errMu.Lock()
				acceptErr = err
				errMu.Unlock()
				close(t.recv[r])
				return
			}
			go func() {
				defer close(t.recv[r])
				defer conn.Close()
				br := bufio.NewReaderSize(conn, 1<<16)
				for {
					ps, err := readFrame(br)
					if err != nil {
						if err != io.EOF {
							// A decode error mid-stream means the sender
							// died; the reducer sees a short channel, and
							// the job driver detects the loss by counters.
							_ = err
						}
						return
					}
					if len(ps) > 0 {
						t.recv[r] <- ps
					}
				}
			}()
		}()
	}
	// Dial every reducer so the accepts above complete before New returns.
	for r := 0; r < numReducers; r++ {
		conn, err := net.Dial("tcp", t.lns[r].Addr().String())
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("transport: dial reducer %d: %w", r, err)
		}
		t.conns[r] = &tcpConn{conn: conn, bw: bufio.NewWriterSize(conn, 1<<16)}
	}
	wg.Wait()
	if acceptErr != nil {
		t.Close()
		return nil, fmt.Errorf("transport: accept: %w", acceptErr)
	}
	return t, nil
}

// readFrame reads one length-prefixed frame and decodes its pairs into a
// batch slice (drawn from the batch pool — consumers recycle it once the
// pairs are collected). Key and Value slices alias the frame's payload
// buffer, which is freshly allocated per frame and never reused, so the
// bytes stay valid for the job even after the slice is recycled.
func readFrame(br *bufio.Reader) ([]Pair, error) {
	payloadLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, payloadLen)
	if _, err := io.ReadFull(br, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	count, off := binary.Uvarint(buf)
	if off <= 0 {
		return nil, fmt.Errorf("transport: corrupt frame header")
	}
	ps := GetBatch(int(count))
	for i := uint64(0); i < count; i++ {
		key, n, err := readChunk(buf, off)
		if err != nil {
			return nil, err
		}
		off = n
		val, n, err := readChunk(buf, off)
		if err != nil {
			return nil, err
		}
		off = n
		ps = append(ps, Pair{Key: key, Value: val})
	}
	return ps, nil
}

// readChunk decodes one uvarint-prefixed byte chunk from buf at off,
// returning the chunk (aliasing buf) and the new offset. A zero-length
// chunk decodes as nil so round-tripped pairs compare deep-equal.
func readChunk(buf []byte, off int) ([]byte, int, error) {
	n, sz := binary.Uvarint(buf[off:])
	if sz <= 0 {
		return nil, 0, fmt.Errorf("transport: corrupt chunk length")
	}
	off += sz
	end := off + int(n)
	if end > len(buf) {
		return nil, 0, fmt.Errorf("transport: chunk overruns frame")
	}
	if n == 0 {
		return nil, off, nil
	}
	return buf[off:end:end], end, nil
}

// TCPFactory returns a Factory producing loopback TCP transports.
func TCPFactory(buffer int) Factory {
	return func(n int) (Transport, error) { return NewTCP(n, buffer) }
}

func (t *tcpTransport) Send(ctx context.Context, r int, p Pair) error {
	return t.SendBatch(ctx, r, []Pair{p})
}

func (t *tcpTransport) SendBatch(ctx context.Context, r int, ps []Pair) error {
	if len(ps) == 0 {
		return nil
	}
	if t.closed.Load() {
		return fmt.Errorf("transport: send after CloseSend")
	}
	if r < 0 || r >= len(t.conns) {
		return fmt.Errorf("transport: reducer %d out of range [0,%d)", r, len(t.conns))
	}
	// Cancellation: the check here catches senders between frames; a
	// sender blocked inside the kernel write (TCP backpressure) is
	// unblocked by Close, which closes every connection when the job is
	// torn down.
	if err := ctx.Err(); err != nil {
		return err
	}
	c := t.conns[r]
	c.mu.Lock()
	buf := c.scratch[:0]
	buf = binary.AppendUvarint(buf, uint64(len(ps)))
	for i := range ps {
		buf = binary.AppendUvarint(buf, uint64(len(ps[i].Key)))
		buf = append(buf, ps[i].Key...)
		buf = binary.AppendUvarint(buf, uint64(len(ps[i].Value)))
		buf = append(buf, ps[i].Value...)
	}
	c.scratch = buf
	var hdr [binary.MaxVarintLen64]byte
	_, err := c.bw.Write(hdr[:binary.PutUvarint(hdr[:], uint64(len(buf)))])
	if err == nil {
		_, err = c.bw.Write(buf)
	}
	c.mu.Unlock()
	if err != nil {
		return fmt.Errorf("transport: send to reducer %d: %w", r, err)
	}
	var bytes int64
	for i := range ps {
		bytes += ps[i].Size()
	}
	t.bytes.Add(bytes)
	t.batches.Add(1)
	return nil
}

func (t *tcpTransport) CloseSend(ctx context.Context) error {
	if t.closed.Swap(true) {
		return fmt.Errorf("transport: CloseSend called twice")
	}
	var first error
	for _, c := range t.conns {
		c.mu.Lock()
		// Flushing buffered frames is delivery work — skip it when the
		// job is cancelled; closing the connections is teardown and
		// always runs (it is what terminates the receiver goroutines).
		if ctx.Err() == nil {
			if err := c.bw.Flush(); err != nil && first == nil {
				first = err
			}
		}
		if err := c.conn.Close(); err != nil && first == nil {
			first = err
		}
		c.mu.Unlock()
	}
	return first
}

func (t *tcpTransport) Receive(r int) <-chan []Pair { return t.recv[r] }
func (t *tcpTransport) BytesSent() int64            { return t.bytes.Load() }
func (t *tcpTransport) BatchesSent() int64          { return t.batches.Load() }

func (t *tcpTransport) Close() error {
	for _, ln := range t.lns {
		if ln != nil {
			ln.Close()
		}
	}
	if !t.closed.Load() {
		for _, c := range t.conns {
			if c != nil {
				c.conn.Close()
			}
		}
	}
	return nil
}
