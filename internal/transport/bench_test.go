package transport

import (
	"fmt"
	"sync"
	"testing"
)

// BenchmarkShuffleSubstrate isolates the transport cost from map/reduce
// work: pre-built pairs are pushed through a BatchWriter at batch size 1
// (pair-at-a-time framing) and at the default batch size, so the delta is
// purely the per-frame channel/framing overhead that batching amortizes.
func BenchmarkShuffleSubstrate(b *testing.B) {
	const reducers = 4
	pairs := make([]Pair, 100_000)
	for i := range pairs {
		pairs[i] = pairS(fmt.Sprintf("g%d", i%997), []byte(fmt.Sprintf("%d", i)))
	}
	for _, c := range []struct {
		name    string
		factory Factory
	}{
		{"channel", ChannelFactory(64)},
		{"tcp", TCPFactory(64)},
	} {
		for _, size := range []int{1, 256} {
			b.Run(fmt.Sprintf("%s/batch=%d", c.name, size), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					tr, err := c.factory(reducers)
					if err != nil {
						b.Fatal(err)
					}
					var wg sync.WaitGroup
					var got int64
					var mu sync.Mutex
					for r := 0; r < reducers; r++ {
						r := r
						wg.Add(1)
						go func() {
							defer wg.Done()
							n := int64(0)
							for ps := range tr.Receive(r) {
								n += int64(len(ps))
							}
							mu.Lock()
							got += n
							mu.Unlock()
						}()
					}
					bw := NewBatchWriter(ctx, tr, reducers, size)
					for j, p := range pairs {
						if err := bw.Send(j%reducers, p); err != nil {
							b.Fatal(err)
						}
					}
					if err := bw.Flush(); err != nil {
						b.Fatal(err)
					}
					if err := tr.CloseSend(ctx); err != nil {
						b.Fatal(err)
					}
					wg.Wait()
					if got != int64(len(pairs)) {
						b.Fatalf("delivered %d pairs", got)
					}
					tr.Close()
				}
				b.ReportMetric(float64(len(pairs)*b.N)/b.Elapsed().Seconds(), "pairs/s")
			})
		}
	}
}
