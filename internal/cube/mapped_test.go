package cube

import (
	"math/rand"
	"testing"
)

// products: 8 SKUs grouped irregularly into 3 categories and 2 divisions.
func mappedAttr(t testing.TB) *Attribute {
	t.Helper()
	return MustMappedAttribute("product", 8,
		MappedLevel{Name: "category", Assign: []int64{0, 0, 0, 1, 1, 2, 2, 2}},
		MappedLevel{Name: "division", Assign: []int64{0, 0, 0, 0, 0, 1, 1, 1}},
	)
}

func TestMappedAttributeBasics(t *testing.T) {
	a := mappedAttr(t)
	if !a.Mapped() || a.Kind() != Nominal || a.Card() != 8 {
		t.Fatalf("attr = %v", a)
	}
	if got := a.NumLevels(); got != 4 { // value, category, division, ALL
		t.Fatalf("levels = %d", got)
	}
	cat, _ := a.LevelIndex("category")
	div, _ := a.LevelIndex("division")
	if a.CardAt(cat) != 3 || a.CardAt(div) != 2 || a.CardAt(0) != 8 || a.CardAt(a.AllIndex()) != 1 {
		t.Errorf("cards: %d %d %d %d", a.CardAt(0), a.CardAt(cat), a.CardAt(div), a.CardAt(a.AllIndex()))
	}
	cases := []struct {
		v, cat, div int64
	}{
		{0, 0, 0}, {2, 0, 0}, {3, 1, 0}, {4, 1, 0}, {5, 2, 1}, {7, 2, 1},
	}
	for _, c := range cases {
		if got := a.Roll(c.v, cat); got != c.cat {
			t.Errorf("Roll(%d, category) = %d, want %d", c.v, got, c.cat)
		}
		if got := a.Roll(c.v, div); got != c.div {
			t.Errorf("Roll(%d, division) = %d, want %d", c.v, got, c.div)
		}
		if got := a.Roll(c.v, a.AllIndex()); got != 0 {
			t.Errorf("Roll(%d, ALL) = %d", c.v, got)
		}
	}
	// RollBetween composes consistently with Roll.
	for v := int64(0); v < 8; v++ {
		for from := 0; from < a.NumLevels(); from++ {
			cf := a.Roll(v, from)
			for to := from; to < a.NumLevels(); to++ {
				if got, want := a.RollBetween(cf, from, to), a.Roll(v, to); got != want {
					t.Fatalf("RollBetween(%d, %d->%d) = %d, want %d", cf, from, to, got, want)
				}
			}
		}
	}
}

func TestMappedAttributeValidation(t *testing.T) {
	if _, err := NewMappedAttribute("", 4); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := NewMappedAttribute("a", 0); err == nil {
		t.Error("zero card accepted")
	}
	if _, err := NewMappedAttribute("a", 4, MappedLevel{Name: "ALL", Assign: []int64{0, 0, 0, 0}}); err == nil {
		t.Error("reserved level name accepted")
	}
	if _, err := NewMappedAttribute("a", 4, MappedLevel{Name: "g", Assign: []int64{0, 0}}); err == nil {
		t.Error("short assign table accepted")
	}
	if _, err := NewMappedAttribute("a", 4, MappedLevel{Name: "g", Assign: []int64{0, -1, 0, 0}}); err == nil {
		t.Error("negative coordinate accepted")
	}
	// A coarser level that splits a finer group is not a hierarchy.
	if _, err := NewMappedAttribute("a", 4,
		MappedLevel{Name: "g", Assign: []int64{0, 0, 1, 1}},
		MappedLevel{Name: "h", Assign: []int64{0, 1, 0, 0}}, // splits group 0
	); err == nil {
		t.Error("non-coarsening level accepted")
	}
	if _, err := NewMappedAttribute("a", 4,
		MappedLevel{Name: "g", Assign: []int64{0, 0, 1, 1}},
		MappedLevel{Name: "g", Assign: []int64{0, 0, 0, 0}},
	); err == nil {
		t.Error("duplicate level name accepted")
	}
}

func TestMappedSpanOperationsPanic(t *testing.T) {
	a := mappedAttr(t)
	for _, f := range []func(){
		func() { a.SpanBetween(0, 1) },
		func() { a.FinestUnits(1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("span operation on mapped attribute did not panic")
				}
			}()
			f()
		}()
	}
}

func TestMappedAttributeInSchema(t *testing.T) {
	// Mapped attributes must work through the schema-level operations the
	// engine uses: regions, containment, grain counting.
	s := MustSchema(mappedAttr(t), TimeAttribute("t", 2))
	g := s.MustGrain(GrainSpec{Attr: "product", Level: "category"}, GrainSpec{Attr: "t", Level: "hour"})
	if got := s.NumRegions(g); got != 3*48 {
		t.Errorf("regions = %d, want 144", got)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		rec := Record{rng.Int63n(8), rng.Int63n(2 * 86400)}
		r := s.RegionOf(rec, g)
		if !s.Contains(r, rec) {
			t.Fatal("region does not contain its record")
		}
		parent := s.ParentRegion(r, s.MustGrain(GrainSpec{Attr: "product", Level: "division"}))
		if !s.ContainsRegion(parent, r) {
			t.Fatal("parent does not contain child")
		}
	}
}
