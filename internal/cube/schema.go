package cube

import (
	"fmt"
	"strings"
)

// Record is one data record: a finest-level coordinate per schema
// attribute, in schema order. Records are the unit of redistribution; the
// paper's mapper emits key/value pairs whose value is "the exact copy of
// the original data record".
type Record []int64

// Clone returns an independent copy of r.
func (r Record) Clone() Record { return append(Record(nil), r...) }

// Schema is an ordered collection of attributes defining cube space.
type Schema struct {
	attrs  []*Attribute
	byName map[string]int
}

// NewSchema builds a schema from the given attributes. Attribute names
// must be unique.
func NewSchema(attrs ...*Attribute) (*Schema, error) {
	if len(attrs) == 0 {
		return nil, fmt.Errorf("cube: schema needs at least one attribute")
	}
	s := &Schema{byName: make(map[string]int, len(attrs))}
	for i, a := range attrs {
		if a == nil {
			return nil, fmt.Errorf("cube: nil attribute at position %d", i)
		}
		if _, dup := s.byName[a.Name()]; dup {
			return nil, fmt.Errorf("cube: duplicate attribute %q", a.Name())
		}
		s.attrs = append(s.attrs, a)
		s.byName[a.Name()] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error.
func MustSchema(attrs ...*Attribute) *Schema {
	s, err := NewSchema(attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// NumAttrs returns the number of attributes.
func (s *Schema) NumAttrs() int { return len(s.attrs) }

// Attr returns the i-th attribute.
func (s *Schema) Attr(i int) *Attribute { return s.attrs[i] }

// AttrIndex looks an attribute up by name.
func (s *Schema) AttrIndex(name string) (int, bool) {
	i, ok := s.byName[name]
	return i, ok
}

// Validate checks that rec has the right arity and every value is within
// its attribute's domain.
func (s *Schema) Validate(rec Record) error {
	if len(rec) != len(s.attrs) {
		return fmt.Errorf("cube: record arity %d, schema has %d attributes", len(rec), len(s.attrs))
	}
	for i, v := range rec {
		if v < 0 || v >= s.attrs[i].Card() {
			return fmt.Errorf("cube: attribute %q value %d outside [0, %d)", s.attrs[i].Name(), v, s.attrs[i].Card())
		}
	}
	return nil
}

// GrainSpec names one attribute's level; a slice of them concisely
// specifies a Grain (attributes not mentioned default to ALL).
type GrainSpec struct {
	Attr  string
	Level string
}

// MakeGrain builds a Grain from specs; unmentioned attributes are ALL.
func (s *Schema) MakeGrain(specs ...GrainSpec) (Grain, error) {
	g := s.GrainAll()
	for _, sp := range specs {
		ai, ok := s.AttrIndex(sp.Attr)
		if !ok {
			return nil, fmt.Errorf("cube: unknown attribute %q", sp.Attr)
		}
		li, ok := s.attrs[ai].LevelIndex(sp.Level)
		if !ok {
			return nil, fmt.Errorf("cube: attribute %q has no level %q", sp.Attr, sp.Level)
		}
		g[ai] = li
	}
	return g, nil
}

// MustGrain is MakeGrain that panics on error.
func (s *Schema) MustGrain(specs ...GrainSpec) Grain {
	g, err := s.MakeGrain(specs...)
	if err != nil {
		panic(err)
	}
	return g
}

// GrainAll returns the most general grain (every attribute at ALL).
func (s *Schema) GrainAll() Grain {
	g := make(Grain, len(s.attrs))
	for i, a := range s.attrs {
		g[i] = a.AllIndex()
	}
	return g
}

// GrainFinest returns the most specific grain (every attribute at its
// finest level).
func (s *Schema) GrainFinest() Grain {
	return make(Grain, len(s.attrs))
}

// FormatGrain renders a grain in the paper's <A:level, ...> notation,
// omitting attributes at ALL (or "<ALL>" if every attribute is at ALL).
func (s *Schema) FormatGrain(g Grain) string {
	var parts []string
	for i, li := range g {
		if li == s.attrs[i].AllIndex() {
			continue
		}
		parts = append(parts, fmt.Sprintf("%s:%s", s.attrs[i].Name(), s.attrs[i].Level(li).Name))
	}
	if len(parts) == 0 {
		return "<ALL>"
	}
	return "<" + strings.Join(parts, ", ") + ">"
}
