package cube

// Grain identifies a region set: one level index per schema attribute
// (0 = finest, Attribute.AllIndex() = ALL). In the paper's terms a grain
// is a "granularity": the region set of all regions with that granularity.
type Grain []int

// Clone returns an independent copy of g.
func (g Grain) Clone() Grain { return append(Grain(nil), g...) }

// Equal reports whether g and h are the same grain.
func (g Grain) Equal(h Grain) bool {
	if len(g) != len(h) {
		return false
	}
	for i := range g {
		if g[i] != h[i] {
			return false
		}
	}
	return true
}

// GeneralizationOf reports whether g is equal to or more general than h:
// every attribute of g is at an equal or coarser level than in h. If g is
// a generalization of h, every region of h has a unique parent region of
// grain g (paper Section II), and by Theorem 1 feasibility of h as a
// distribution key implies feasibility of g.
func (g Grain) GeneralizationOf(h Grain) bool {
	if len(g) != len(h) {
		return false
	}
	for i := range g {
		if g[i] < h[i] {
			return false
		}
	}
	return true
}

// LCA returns the least common ancestor granularity of the given grains:
// per attribute, the finest level that is at least as coarse as every
// input's level. With no inputs it returns the schema's finest grain.
// This is the key object of the paper's Theorem 2: absent sibling
// relationships, the LCA of all measure granularities is the minimal
// feasible distribution key.
func (s *Schema) LCA(grains ...Grain) Grain {
	out := s.GrainFinest()
	for _, g := range grains {
		for i := range out {
			if g[i] > out[i] {
				out[i] = g[i]
			}
		}
	}
	return out
}

// Meet returns the greatest common descendant granularity: per attribute,
// the coarsest level at least as fine as every input's level. The local
// evaluator sorts block records at the meet of the workflow's grains so
// that every grain's groups are contiguous prefixes of the sort key.
func (s *Schema) Meet(grains ...Grain) Grain {
	out := s.GrainAll()
	for _, g := range grains {
		for i := range out {
			if g[i] < out[i] {
				out[i] = g[i]
			}
		}
	}
	return out
}

// NumRegions returns the number of regions in the region set of grain g
// (the paper's n_G), i.e. the product of per-attribute cardinalities at
// the grain's levels.
func (s *Schema) NumRegions(g Grain) int64 {
	n := int64(1)
	for i, li := range g {
		n *= s.attrs[i].CardAt(li)
		if n < 0 { // overflow guard: saturate
			return 1<<63 - 1
		}
	}
	return n
}
