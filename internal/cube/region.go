package cube

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// Region is a hyper-rectangle of cube space: a grain plus one coordinate
// per attribute at that grain's level. A record is contained in a region
// iff rolling the record up to the region's grain yields the region's
// coordinates.
type Region struct {
	Grain Grain
	Coord []int64
}

// RegionOf returns the region of grain g that contains rec.
func (s *Schema) RegionOf(rec Record, g Grain) Region {
	coord := make([]int64, len(g))
	for i, li := range g {
		coord[i] = s.attrs[i].Roll(rec[i], li)
	}
	return Region{Grain: g, Coord: coord}
}

// CoordOf fills dst (which must have schema arity) with the coordinates of
// rec at grain g, avoiding allocation on hot paths.
func (s *Schema) CoordOf(rec Record, g Grain, dst []int64) {
	for i, li := range g {
		dst[i] = s.attrs[i].Roll(rec[i], li)
	}
}

// Contains reports whether rec lies inside region r.
func (s *Schema) Contains(r Region, rec Record) bool {
	for i, li := range r.Grain {
		if s.attrs[i].Roll(rec[i], li) != r.Coord[i] {
			return false
		}
	}
	return true
}

// ParentRegion returns the region of the (coarser or equal) grain parent
// that contains r. It panics if parent is not a generalization of r.Grain.
func (s *Schema) ParentRegion(r Region, parent Grain) Region {
	if !parent.GeneralizationOf(r.Grain) {
		panic(fmt.Sprintf("cube: %v is not a generalization of %v", parent, r.Grain))
	}
	coord := make([]int64, len(parent))
	for i := range parent {
		coord[i] = s.attrs[i].RollBetween(r.Coord[i], r.Grain[i], parent[i])
	}
	return Region{Grain: parent, Coord: coord}
}

// ContainsRegion reports whether every record contained in child is also
// contained in r (child/parent relationship of Section II). This requires
// r's grain to be a generalization of child's grain and the rolled-up
// coordinates to match.
func (s *Schema) ContainsRegion(r, child Region) bool {
	if !r.Grain.GeneralizationOf(child.Grain) {
		return false
	}
	for i := range r.Grain {
		if s.attrs[i].RollBetween(child.Coord[i], child.Grain[i], r.Grain[i]) != r.Coord[i] {
			return false
		}
	}
	return true
}

// AppendCoords appends the compact varint encoding of coord to dst and
// returns the extended slice. It is the allocation-free (append-style)
// form of EncodeCoords: hot paths encode into a reused scratch buffer and
// use the string([]byte) map-lookup optimization to avoid materializing a
// string per record.
func AppendCoords(dst []byte, coord []int64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	for _, c := range coord {
		n := binary.PutUvarint(tmp[:], uint64(c))
		dst = append(dst, tmp[:n]...)
	}
	return dst
}

// EncodeCoords packs coordinates into a compact string usable as a map
// key. Coordinates are non-negative, so varint encoding is unambiguous.
func EncodeCoords(coord []int64) string {
	return string(AppendCoords(make([]byte, 0, len(coord)*3), coord))
}

// DecodeCoords reverses EncodeCoords given the expected arity.
func DecodeCoords(key string, arity int) ([]int64, error) {
	coord := make([]int64, arity)
	if err := DecodeCoordsInto([]byte(key), coord); err != nil {
		return nil, err
	}
	return coord, nil
}

// DecodeCoordsInto decodes an encoded coordinate key into coord (whose
// length is the expected arity) without allocating: the byte-slice form
// for hot paths that hold encoded keys as []byte and reuse the
// destination.
func DecodeCoordsInto(b []byte, coord []int64) error {
	for i := range coord {
		v, n := binary.Uvarint(b)
		if n <= 0 {
			return fmt.Errorf("cube: truncated coordinate key at position %d", i)
		}
		coord[i] = int64(v)
		b = b[n:]
	}
	if len(b) != 0 {
		return fmt.Errorf("cube: %d trailing bytes in coordinate key", len(b))
	}
	return nil
}

// Key returns a compact map key unique among regions of the same grain.
func (r Region) Key() string { return EncodeCoords(r.Coord) }

// FormatRegion renders a region in a readable [attr=coord@level, ...]
// form, omitting ALL attributes.
func (s *Schema) FormatRegion(r Region) string {
	var parts []string
	for i, li := range r.Grain {
		if li == s.attrs[i].AllIndex() {
			continue
		}
		parts = append(parts, fmt.Sprintf("%s=%d@%s", s.attrs[i].Name(), r.Coord[i], s.attrs[i].Level(li).Name))
	}
	if len(parts) == 0 {
		return "[ALL]"
	}
	return "[" + strings.Join(parts, ", ") + "]"
}
