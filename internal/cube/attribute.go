// Package cube models the multidimensional "cube space" of the paper
// (ICDE'08, Section II): attributes with hierarchical value domains,
// granularities (region sets), and regions. Every record maps to a point in
// cube space; every measure of a composite subset measure query is defined
// over a set of regions of one granularity.
//
// Values are stored at each attribute's finest level as int64 coordinates
// in [0, Card). Coarser levels are deterministic roll-ups; for the regular
// hierarchies used throughout the paper a level is a fixed-span grouping of
// the next finer level (e.g. minute = 60 seconds), which makes roll-up an
// integer division by the cumulative span.
package cube

import (
	"fmt"
	"strings"
)

// Kind classifies an attribute's domain. Only numeric and temporal
// attributes may carry range annotations on distribution keys (the paper
// notes "we cannot add an annotation to a nominal attribute because the
// meaning of closeness is not defined").
type Kind int

const (
	// Nominal domains have no order; siblings/windows are undefined.
	Nominal Kind = iota
	// Numeric domains are ordered integers; windows are meaningful.
	Numeric
	// Temporal domains are ordered time units; windows are meaningful.
	Temporal
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case Nominal:
		return "nominal"
	case Numeric:
		return "numeric"
	case Temporal:
		return "temporal"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// AllLevel is the name of the implicit most-general level present on every
// attribute; it contains the single value ALL (coordinate 0).
const AllLevel = "ALL"

// Level is one level of an attribute's domain hierarchy. Span is the
// number of units of the next finer level grouped into one unit of this
// level; the finest level has Span 1.
type Level struct {
	Name string
	Span int64
}

// Attribute is one dimension of cube space together with its domain
// hierarchy. The zero value is not usable; construct with NewAttribute or
// one of the convenience constructors.
type Attribute struct {
	name    string
	kind    Kind
	card    int64   // finest-level domain size; values are in [0, card)
	levels  []Level // finest → coarsest, with ALL appended last
	cumSpan []int64 // cumSpan[i] = finest units per unit of level i
	byName  map[string]int

	// Irregular (table-driven) hierarchies; see NewMappedAttribute.
	mapped bool
	assign [][]int64 // assign[i][v] = level-i coordinate of finest value v
	up     [][]int64 // up[i][c] = level-(i+1) coordinate of level-i coord c
	cards  []int64   // cards[i] = CardAt(i) for mapped attributes
}

// NewAttribute builds an attribute named name of the given kind whose
// finest level holds card distinct values, with the supplied hierarchy
// levels ordered finest first. The finest level must have Span 1; an ALL
// level is appended automatically. At least one level is required.
func NewAttribute(name string, kind Kind, card int64, levels ...Level) (*Attribute, error) {
	if name == "" {
		return nil, fmt.Errorf("cube: attribute name must be non-empty")
	}
	if card < 1 {
		return nil, fmt.Errorf("cube: attribute %q: cardinality %d < 1", name, card)
	}
	if len(levels) == 0 {
		return nil, fmt.Errorf("cube: attribute %q: at least one level required", name)
	}
	if levels[0].Span != 1 {
		return nil, fmt.Errorf("cube: attribute %q: finest level %q must have span 1, got %d",
			name, levels[0].Name, levels[0].Span)
	}
	a := &Attribute{name: name, kind: kind, card: card, byName: make(map[string]int)}
	cum := int64(1)
	for i, lv := range levels {
		if lv.Name == "" || lv.Name == AllLevel {
			return nil, fmt.Errorf("cube: attribute %q: invalid level name %q", name, lv.Name)
		}
		if i > 0 {
			if lv.Span < 2 {
				return nil, fmt.Errorf("cube: attribute %q: level %q span %d < 2", name, lv.Name, lv.Span)
			}
			cum *= lv.Span
		}
		if _, dup := a.byName[lv.Name]; dup {
			return nil, fmt.Errorf("cube: attribute %q: duplicate level %q", name, lv.Name)
		}
		a.levels = append(a.levels, lv)
		a.cumSpan = append(a.cumSpan, cum)
		a.byName[lv.Name] = i
	}
	if cum > card {
		return nil, fmt.Errorf("cube: attribute %q: hierarchy spans %d values but cardinality is %d", name, cum, card)
	}
	// The implicit ALL level groups everything into coordinate 0.
	a.levels = append(a.levels, Level{Name: AllLevel, Span: 0})
	a.cumSpan = append(a.cumSpan, card)
	a.byName[AllLevel] = len(a.levels) - 1
	return a, nil
}

// MustAttribute is NewAttribute that panics on error; intended for
// statically known schemas in examples and tests.
func MustAttribute(name string, kind Kind, card int64, levels ...Level) *Attribute {
	a, err := NewAttribute(name, kind, card, levels...)
	if err != nil {
		panic(err)
	}
	return a
}

// TimeAttribute builds a temporal attribute covering the given number of
// days at second resolution with the classical hierarchy
// second < minute < hour < day (< ALL), as used in the paper's experiments.
func TimeAttribute(name string, days int64) *Attribute {
	return MustAttribute(name, Temporal, days*86400,
		Level{Name: "second", Span: 1},
		Level{Name: "minute", Span: 60},
		Level{Name: "hour", Span: 60},
		Level{Name: "day", Span: 24},
	)
}

// Name returns the attribute name.
func (a *Attribute) Name() string { return a.name }

// Kind returns the attribute's domain kind.
func (a *Attribute) Kind() Kind { return a.kind }

// Card returns the finest-level domain size.
func (a *Attribute) Card() int64 { return a.card }

// NumLevels returns the number of levels including ALL.
func (a *Attribute) NumLevels() int { return len(a.levels) }

// AllIndex returns the index of the ALL level (always the last).
func (a *Attribute) AllIndex() int { return len(a.levels) - 1 }

// Level returns the i-th level (0 = finest).
func (a *Attribute) Level(i int) Level { return a.levels[i] }

// LevelIndex looks a level up by name.
func (a *Attribute) LevelIndex(name string) (int, bool) {
	i, ok := a.byName[name]
	return i, ok
}

// FinestUnits returns the number of finest-level values covered by one
// unit of level i (the cumulative span). For ALL it equals Card. It
// panics for mapped attributes, whose levels have no uniform span.
func (a *Attribute) FinestUnits(i int) int64 {
	if a.mapped {
		panic(fmt.Sprintf("cube: attribute %q has irregular levels; FinestUnits is undefined", a.name))
	}
	return a.cumSpan[i]
}

// SpanBetween returns how many units of level `from` make up one unit of
// the coarser level `to`. It panics if from > to, and for mapped
// attributes (whose levels have no uniform span; mapped attributes are
// nominal, so nothing that needs spans — windows, annotations — applies
// to them).
func (a *Attribute) SpanBetween(from, to int) int64 {
	if a.mapped {
		panic(fmt.Sprintf("cube: attribute %q has irregular levels; SpanBetween is undefined", a.name))
	}
	if from > to {
		panic(fmt.Sprintf("cube: SpanBetween(%d, %d): from is coarser than to", from, to))
	}
	if to == a.AllIndex() {
		// One ALL unit covers everything.
		n := a.card / a.cumSpan[from]
		if a.card%a.cumSpan[from] != 0 {
			n++
		}
		return n
	}
	return a.cumSpan[to] / a.cumSpan[from]
}

// Roll maps a finest-level value to its coordinate at level i.
func (a *Attribute) Roll(v int64, i int) int64 {
	if i == a.AllIndex() {
		return 0
	}
	if a.mapped {
		return a.mappedRoll(v, i)
	}
	return v / a.cumSpan[i]
}

// RollBetween maps a coordinate at level `from` to the enclosing
// coordinate at the coarser level `to`.
func (a *Attribute) RollBetween(c int64, from, to int) int64 {
	if to == a.AllIndex() {
		return 0
	}
	if a.mapped {
		return a.mappedRollBetween(c, from, to)
	}
	return c / (a.cumSpan[to] / a.cumSpan[from])
}

// CardAt returns the number of distinct coordinates at level i.
func (a *Attribute) CardAt(i int) int64 {
	if i == a.AllIndex() {
		return 1
	}
	if a.mapped {
		return a.cards[i]
	}
	n := a.card / a.cumSpan[i]
	if a.card%a.cumSpan[i] != 0 {
		n++
	}
	return n
}

// String renders the attribute and its hierarchy for diagnostics.
func (a *Attribute) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s(%s, card=%d:", a.name, a.kind, a.card)
	for i, lv := range a.levels {
		if i > 0 {
			b.WriteString(" <")
		}
		b.WriteString(" " + lv.Name)
	}
	b.WriteString(")")
	return b.String()
}
