package cube

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// testSchema mirrors the paper's experimental schema: four integer
// attributes in [0,256) with a 4-level hierarchy, and two temporal
// attributes spanning twenty days at second resolution.
func testSchema(t testing.TB) *Schema {
	t.Helper()
	mk := func(name string) *Attribute {
		return MustAttribute(name, Numeric, 256,
			Level{Name: "value", Span: 1},
			Level{Name: "low", Span: 4},
			Level{Name: "mid", Span: 4},
			Level{Name: "high", Span: 4},
		)
	}
	return MustSchema(
		mk("a1"), mk("a2"), mk("a3"), mk("a4"),
		TimeAttribute("t1", 20),
		TimeAttribute("t2", 20),
	)
}

func TestNewAttributeValidation(t *testing.T) {
	cases := []struct {
		name   string
		card   int64
		levels []Level
	}{
		{"", 10, []Level{{Name: "v", Span: 1}}},
		{"a", 0, []Level{{Name: "v", Span: 1}}},
		{"a", 10, nil},
		{"a", 10, []Level{{Name: "v", Span: 2}}},                       // finest span != 1
		{"a", 10, []Level{{Name: "v", Span: 1}, {Name: "g", Span: 1}}}, // span < 2
		{"a", 10, []Level{{Name: "v", Span: 1}, {Name: "v", Span: 2}}}, // dup level
		{"a", 10, []Level{{Name: "ALL", Span: 1}}},                     // reserved name
		{"a", 3, []Level{{Name: "v", Span: 1}, {Name: "g", Span: 5}}},  // spans exceed card
	}
	for i, c := range cases {
		if _, err := NewAttribute(c.name, Numeric, c.card, c.levels...); err == nil {
			t.Errorf("case %d: expected error, got nil", i)
		}
	}
	if _, err := NewAttribute("ok", Numeric, 100,
		Level{Name: "v", Span: 1}, Level{Name: "ten", Span: 10}); err != nil {
		t.Errorf("valid attribute rejected: %v", err)
	}
}

func TestTimeAttributeHierarchy(t *testing.T) {
	a := TimeAttribute("t", 20)
	if a.Card() != 20*86400 {
		t.Fatalf("card = %d", a.Card())
	}
	day, ok := a.LevelIndex("day")
	if !ok {
		t.Fatal("no day level")
	}
	if got := a.CardAt(day); got != 20 {
		t.Errorf("days = %d, want 20", got)
	}
	minute, _ := a.LevelIndex("minute")
	if got := a.Roll(3*86400+125, minute); got != (3*86400+125)/60 {
		t.Errorf("minute roll = %d", got)
	}
	if got := a.SpanBetween(minute, day); got != 1440 {
		t.Errorf("minutes per day = %d, want 1440", got)
	}
	all := a.AllIndex()
	if got := a.Roll(12345, all); got != 0 {
		t.Errorf("ALL roll = %d, want 0", got)
	}
	if got := a.CardAt(all); got != 1 {
		t.Errorf("ALL card = %d, want 1", got)
	}
	if got := a.SpanBetween(day, all); got != 20 {
		t.Errorf("days per ALL = %d, want 20", got)
	}
}

func TestRollConsistency(t *testing.T) {
	// Rolling finest→coarse directly must equal finest→mid→coarse.
	a := MustAttribute("x", Numeric, 4096,
		Level{Name: "v", Span: 1},
		Level{Name: "l1", Span: 8},
		Level{Name: "l2", Span: 4},
		Level{Name: "l3", Span: 16},
	)
	f := func(raw int64) bool {
		v := raw % a.Card()
		if v < 0 {
			v = -v
		}
		for from := 0; from < a.NumLevels(); from++ {
			cf := a.Roll(v, from)
			for to := from; to < a.NumLevels(); to++ {
				if a.RollBetween(cf, from, to) != a.Roll(v, to) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSchemaValidate(t *testing.T) {
	s := testSchema(t)
	good := Record{1, 2, 3, 4, 100, 200}
	if err := s.Validate(good); err != nil {
		t.Errorf("valid record rejected: %v", err)
	}
	if err := s.Validate(Record{1, 2, 3}); err == nil {
		t.Error("wrong arity accepted")
	}
	bad := Record{1, 2, 3, 999, 100, 200}
	if err := s.Validate(bad); err == nil {
		t.Error("out-of-domain value accepted")
	}
	if err := s.Validate(Record{1, 2, 3, -1, 100, 200}); err == nil {
		t.Error("negative value accepted")
	}
}

func TestMakeGrainAndFormat(t *testing.T) {
	s := testSchema(t)
	g, err := s.MakeGrain(GrainSpec{"a1", "low"}, GrainSpec{"t1", "hour"})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.FormatGrain(g); got != "<a1:low, t1:hour>" {
		t.Errorf("format = %q", got)
	}
	if got := s.FormatGrain(s.GrainAll()); got != "<ALL>" {
		t.Errorf("ALL format = %q", got)
	}
	if _, err := s.MakeGrain(GrainSpec{"nope", "low"}); err == nil {
		t.Error("unknown attribute accepted")
	}
	if _, err := s.MakeGrain(GrainSpec{"a1", "nope"}); err == nil {
		t.Error("unknown level accepted")
	}
}

func TestGeneralizationAndLCA(t *testing.T) {
	s := testSchema(t)
	fineG := s.MustGrain(GrainSpec{"a1", "value"}, GrainSpec{"t1", "minute"})
	coarseG := s.MustGrain(GrainSpec{"a1", "mid"}, GrainSpec{"t1", "hour"})
	otherG := s.MustGrain(GrainSpec{"a2", "value"}, GrainSpec{"t1", "hour"})

	if !coarseG.GeneralizationOf(fineG) {
		t.Error("coarse should generalize fine")
	}
	if fineG.GeneralizationOf(coarseG) {
		t.Error("fine should not generalize coarse")
	}
	if !s.GrainAll().GeneralizationOf(fineG) {
		t.Error("ALL generalizes everything")
	}
	if coarseG.GeneralizationOf(otherG) {
		t.Error("unrelated grains should not generalize (a2 finer in other)")
	}

	lca := s.LCA(fineG, otherG)
	if !lca.GeneralizationOf(fineG) || !lca.GeneralizationOf(otherG) {
		t.Fatal("LCA must generalize all inputs")
	}
	// LCA must be minimal: a1 at value ∨ ALL → ALL? No: fineG has a1:value,
	// otherG has a1:ALL, so LCA a1 level = ALL; t1 = hour (max of minute,hour).
	a1, _ := s.AttrIndex("a1")
	t1, _ := s.AttrIndex("t1")
	if lca[a1] != s.Attr(a1).AllIndex() {
		t.Errorf("lca a1 level = %d, want ALL", lca[a1])
	}
	hour, _ := s.Attr(t1).LevelIndex("hour")
	if lca[t1] != hour {
		t.Errorf("lca t1 level = %d, want hour index %d", lca[t1], hour)
	}

	meet := s.Meet(fineG, otherG)
	if !fineG.GeneralizationOf(meet) || !otherG.GeneralizationOf(meet) {
		t.Fatal("inputs must generalize their Meet")
	}
}

func TestLCAProperty(t *testing.T) {
	s := testSchema(t)
	rng := rand.New(rand.NewSource(11))
	randGrain := func() Grain {
		g := make(Grain, s.NumAttrs())
		for i := range g {
			g[i] = rng.Intn(s.Attr(i).NumLevels())
		}
		return g
	}
	for iter := 0; iter < 200; iter++ {
		g, h := randGrain(), randGrain()
		l := s.LCA(g, h)
		if !l.GeneralizationOf(g) || !l.GeneralizationOf(h) {
			t.Fatalf("LCA(%v,%v)=%v not a common generalization", g, h, l)
		}
		// Minimality: any common generalization must generalize the LCA.
		c := randGrain()
		if c.GeneralizationOf(g) && c.GeneralizationOf(h) && !c.GeneralizationOf(l) {
			t.Fatalf("common generalization %v does not generalize LCA %v", c, l)
		}
	}
}

func TestNumRegions(t *testing.T) {
	s := testSchema(t)
	if got := s.NumRegions(s.GrainAll()); got != 1 {
		t.Errorf("ALL regions = %d", got)
	}
	g := s.MustGrain(GrainSpec{"a1", "high"}, GrainSpec{"t1", "day"})
	// a1 high: 256/64 = 4; t1 day: 20.
	if got := s.NumRegions(g); got != 4*20 {
		t.Errorf("regions = %d, want 80", got)
	}
}

func TestRegionOfAndContains(t *testing.T) {
	s := testSchema(t)
	g := s.MustGrain(GrainSpec{"a1", "low"}, GrainSpec{"t1", "hour"})
	rec := Record{13, 0, 0, 0, 2*86400 + 3*3600 + 59, 0}
	r := s.RegionOf(rec, g)
	a1, _ := s.AttrIndex("a1")
	t1, _ := s.AttrIndex("t1")
	if r.Coord[a1] != 13/4 {
		t.Errorf("a1 coord = %d", r.Coord[a1])
	}
	if r.Coord[t1] != 2*24+3 {
		t.Errorf("t1 coord = %d", r.Coord[t1])
	}
	if !s.Contains(r, rec) {
		t.Error("region must contain its defining record")
	}
	other := rec.Clone()
	other[t1] += 3600 // next hour
	if s.Contains(r, other) {
		t.Error("record from next hour contained")
	}
}

func TestParentAndContainsRegion(t *testing.T) {
	s := testSchema(t)
	fine := s.MustGrain(GrainSpec{"a1", "value"}, GrainSpec{"t1", "minute"})
	coarse := s.MustGrain(GrainSpec{"a1", "mid"}, GrainSpec{"t1", "day"})
	rec := Record{200, 1, 2, 3, 5*86400 + 7200, 0}
	child := s.RegionOf(rec, fine)
	parent := s.ParentRegion(child, coarse)
	if !s.ContainsRegion(parent, child) {
		t.Fatal("parent must contain child")
	}
	if s.ContainsRegion(child, parent) {
		t.Fatal("child cannot contain parent (grain direction)")
	}
	// A sibling child of a different day must not be contained.
	rec2 := rec.Clone()
	t1, _ := s.AttrIndex("t1")
	rec2[t1] += 86400
	sib := s.RegionOf(rec2, fine)
	if s.ContainsRegion(parent, sib) {
		t.Fatal("region from another day contained")
	}
}

func TestContainmentTransitivityProperty(t *testing.T) {
	s := testSchema(t)
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 300; iter++ {
		rec := make(Record, s.NumAttrs())
		for i := range rec {
			rec[i] = rng.Int63n(s.Attr(i).Card())
		}
		// Build a chain fine ⊆ mid ⊆ coarse of random grains.
		fine := make(Grain, s.NumAttrs())
		mid := make(Grain, s.NumAttrs())
		coarse := make(Grain, s.NumAttrs())
		for i := 0; i < s.NumAttrs(); i++ {
			n := s.Attr(i).NumLevels()
			a, b, c := rng.Intn(n), rng.Intn(n), rng.Intn(n)
			if a > b {
				a, b = b, a
			}
			if b > c {
				b, c = c, b
			}
			if a > b {
				a, b = b, a
			}
			fine[i], mid[i], coarse[i] = a, b, c
		}
		rf := s.RegionOf(rec, fine)
		rm := s.RegionOf(rec, mid)
		rc := s.RegionOf(rec, coarse)
		if !s.ContainsRegion(rm, rf) || !s.ContainsRegion(rc, rm) || !s.ContainsRegion(rc, rf) {
			t.Fatalf("containment chain broken for rec %v grains %v %v %v", rec, fine, mid, coarse)
		}
		if !s.Contains(rf, rec) || !s.Contains(rm, rec) || !s.Contains(rc, rec) {
			t.Fatalf("record containment broken")
		}
	}
}

func TestEncodeDecodeCoords(t *testing.T) {
	f := func(raw []int64) bool {
		coord := make([]int64, len(raw))
		for i, v := range raw {
			if v < 0 {
				v = -v
			}
			coord[i] = v
		}
		key := EncodeCoords(coord)
		back, err := DecodeCoords(key, len(coord))
		if err != nil {
			return false
		}
		for i := range coord {
			if back[i] != coord[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
	if _, err := DecodeCoords("", 2); err == nil {
		t.Error("truncated key accepted")
	}
	if _, err := DecodeCoords(EncodeCoords([]int64{1, 2, 3}), 2); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestEncodeCoordsUniqueness(t *testing.T) {
	// Distinct coordinate vectors must encode to distinct keys.
	seen := map[string][]int64{}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		c := []int64{rng.Int63n(1000), rng.Int63n(1000), rng.Int63n(100000)}
		k := EncodeCoords(c)
		if prev, ok := seen[k]; ok {
			same := prev[0] == c[0] && prev[1] == c[1] && prev[2] == c[2]
			if !same {
				t.Fatalf("collision: %v and %v -> %q", prev, c, k)
			}
		}
		seen[k] = c
	}
}

func TestSchemaErrors(t *testing.T) {
	if _, err := NewSchema(); err == nil {
		t.Error("empty schema accepted")
	}
	a := MustAttribute("a", Numeric, 10, Level{Name: "v", Span: 1})
	if _, err := NewSchema(a, a); err == nil {
		t.Error("duplicate attribute accepted")
	}
	if _, err := NewSchema(a, nil); err == nil {
		t.Error("nil attribute accepted")
	}
}
