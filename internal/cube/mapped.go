package cube

import "fmt"

// MappedLevel defines one level of an irregular hierarchy by an explicit
// assignment: Assign[v] is the level coordinate of finest-level value v.
// Real nominal hierarchies (keywords into topics, SKUs into categories)
// are rarely fixed-span; mapped attributes capture them exactly.
type MappedLevel struct {
	Name   string
	Assign []int64
}

// NewMappedAttribute builds a nominal attribute whose coarser levels are
// given by explicit mapping tables rather than fixed spans. The implicit
// finest level is named "value"; levels must be supplied from finer to
// coarser and each must be a true coarsening of the previous one (values
// grouped together at a finer level may not split apart at a coarser
// one). An ALL level is appended automatically.
//
// Mapped attributes are always Nominal: they carry no order, so sliding
// windows and distribution-key annotations are rejected elsewhere, and
// the span-based conversions never apply to them.
func NewMappedAttribute(name string, card int64, levels ...MappedLevel) (*Attribute, error) {
	if name == "" {
		return nil, fmt.Errorf("cube: attribute name must be non-empty")
	}
	if card < 1 {
		return nil, fmt.Errorf("cube: attribute %q: cardinality %d < 1", name, card)
	}
	a := &Attribute{
		name:   name,
		kind:   Nominal,
		card:   card,
		mapped: true,
		byName: make(map[string]int),
	}
	// Implicit identity finest level.
	a.levels = append(a.levels, Level{Name: "value", Span: 1})
	a.assign = append(a.assign, nil)
	a.cards = append(a.cards, card)
	a.byName["value"] = 0

	prev := identityAssign(card)
	for li, lv := range levels {
		if lv.Name == "" || lv.Name == AllLevel || lv.Name == "value" {
			return nil, fmt.Errorf("cube: attribute %q: invalid level name %q", name, lv.Name)
		}
		if _, dup := a.byName[lv.Name]; dup {
			return nil, fmt.Errorf("cube: attribute %q: duplicate level %q", name, lv.Name)
		}
		if int64(len(lv.Assign)) != card {
			return nil, fmt.Errorf("cube: attribute %q: level %q assigns %d values, want %d",
				name, lv.Name, len(lv.Assign), card)
		}
		var maxCoord int64 = -1
		for v, c := range lv.Assign {
			if c < 0 {
				return nil, fmt.Errorf("cube: attribute %q: level %q: negative coordinate for value %d", name, lv.Name, v)
			}
			if c > maxCoord {
				maxCoord = c
			}
		}
		// Consistency: this level must coarsen the previous one, i.e. the
		// previous level's coordinate determines this level's.
		up := make([]int64, maxAssign(prev)+1)
		for i := range up {
			up[i] = -1
		}
		for v := int64(0); v < card; v++ {
			pc, cc := prev[v], lv.Assign[v]
			if up[pc] == -1 {
				up[pc] = cc
			} else if up[pc] != cc {
				return nil, fmt.Errorf("cube: attribute %q: level %q splits a group of level %q (value %d)",
					name, lv.Name, a.levels[li].Name, v)
			}
		}
		// Groups never observed at the previous level cannot occur; map
		// them to 0 so the table is total.
		for i := range up {
			if up[i] == -1 {
				up[i] = 0
			}
		}
		a.levels = append(a.levels, Level{Name: lv.Name, Span: 0})
		a.assign = append(a.assign, append([]int64(nil), lv.Assign...))
		a.up = append(a.up, up)
		a.cards = append(a.cards, maxCoord+1)
		a.byName[lv.Name] = len(a.levels) - 1
		prev = lv.Assign
	}
	// Implicit ALL level.
	a.levels = append(a.levels, Level{Name: AllLevel, Span: 0})
	a.assign = append(a.assign, nil)
	a.cards = append(a.cards, 1)
	a.byName[AllLevel] = len(a.levels) - 1
	return a, nil
}

// MustMappedAttribute is NewMappedAttribute that panics on error.
func MustMappedAttribute(name string, card int64, levels ...MappedLevel) *Attribute {
	a, err := NewMappedAttribute(name, card, levels...)
	if err != nil {
		panic(err)
	}
	return a
}

func identityAssign(card int64) []int64 {
	out := make([]int64, card)
	for i := range out {
		out[i] = int64(i)
	}
	return out
}

func maxAssign(assign []int64) int64 {
	var m int64
	for _, c := range assign {
		if c > m {
			m = c
		}
	}
	return m
}

// Mapped reports whether the attribute uses table-driven levels.
func (a *Attribute) Mapped() bool { return a.mapped }

func (a *Attribute) mappedRoll(v int64, i int) int64 {
	if i == a.AllIndex() {
		return 0
	}
	if a.assign[i] == nil { // finest
		return v
	}
	return a.assign[i][v]
}

// mappedRollBetween composes the up-tables from level `from` to the
// coarser level `to`.
func (a *Attribute) mappedRollBetween(c int64, from, to int) int64 {
	if to == a.AllIndex() {
		return 0
	}
	for i := from; i < to; i++ {
		// up[i] maps level i+1... the table at index i maps coordinates
		// of level i to level i+1; up is indexed by the coarser level's
		// position minus one.
		c = a.up[i][c]
	}
	return c
}
