package groupx

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"

	"github.com/casm-project/casm/internal/transport"
)

// testCodec serializes pairs for the spill fallback (the same framing the
// mr substrate uses).
type testCodec struct{}

func (testCodec) EncodeTo(dst []byte, p transport.Pair) ([]byte, error) {
	dst = binary.AppendUvarint(dst, uint64(len(p.Key)))
	dst = append(dst, p.Key...)
	return append(dst, p.Value...), nil
}

func (testCodec) Decode(b []byte) (transport.Pair, error) {
	n, k := binary.Uvarint(b)
	if k <= 0 || uint64(len(b)-k) < n {
		return transport.Pair{}, fmt.Errorf("corrupt pair")
	}
	return transport.Pair{Key: b[k : k+int(n) : k+int(n)], Value: b[k+int(n):]}, nil
}

// drain materializes a collector's output (copying keys and values,
// which may alias reused read buffers).
func drain(t *testing.T, c Collector) []transport.Pair {
	t.Helper()
	it, err := c.Iterate()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	var out []transport.Pair
	for {
		p, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return out
		}
		out = append(out, transport.Pair{
			Key:   append([]byte(nil), p.Key...),
			Value: append([]byte(nil), p.Value...),
		})
	}
}

// randomPairs builds a shuffled stream over nKeys distinct keys; each
// value records its global arrival index.
func randomPairs(rng *rand.Rand, n, nKeys int) []transport.Pair {
	pairs := make([]transport.Pair, n)
	for i := range pairs {
		v := make([]byte, 8)
		binary.LittleEndian.PutUint64(v, uint64(i))
		pairs[i] = transport.Pair{Key: fmt.Appendf(nil, "k%03d", rng.Intn(nKeys)), Value: v}
	}
	return pairs
}

// TestHashMatchesSort is the collector-level equivalence property: for a
// random pair stream, the hash collector's output must be byte-identical
// to the sort collector's, across memory budgets from "everything fits"
// down to "spill every other pair".
func TestHashMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 50, 500} {
		for _, mem := range []int{0, 2, 7, 1000} {
			pairs := randomPairs(rng, n, 1+n/10)
			hash := NewHash(testCodec{}, t.TempDir(), mem)
			sorted := NewSort(testCodec{}, t.TempDir(), mem)
			for _, p := range pairs {
				if err := hash.Add(p); err != nil {
					t.Fatal(err)
				}
				if err := sorted.Add(p); err != nil {
					t.Fatal(err)
				}
			}
			got, want := drain(t, hash), drain(t, sorted)
			if len(got) != len(want) {
				t.Fatalf("n=%d mem=%d: hash yielded %d pairs, sort %d", n, mem, len(got), len(want))
			}
			for i := range got {
				if !bytes.Equal(got[i].Key, want[i].Key) || !bytes.Equal(got[i].Value, want[i].Value) {
					t.Fatalf("n=%d mem=%d: pair %d: hash (%q,%x), sort (%q,%x)",
						n, mem, i, got[i].Key, got[i].Value, want[i].Key, want[i].Value)
				}
			}
			if hs, ss := hash.Stats(), sorted.Stats(); hs.Items != ss.Items {
				t.Errorf("n=%d mem=%d: hash Items %d, sort Items %d", n, mem, hs.Items, ss.Items)
			}
		}
	}
}

// TestHashGroupsContiguousArrivalOrder pins the in-memory hash contract:
// groups come back ascending by key, and pairs within a group keep
// arrival order.
func TestHashGroupsContiguousArrivalOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := NewHash(testCodec{}, t.TempDir(), 0)
	pairs := randomPairs(rng, 300, 17)
	for _, p := range pairs {
		if err := c.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	out := drain(t, c)
	lastKey := ""
	lastArrival := int64(-1)
	seen := map[string]bool{}
	for _, p := range out {
		if string(p.Key) != lastKey {
			if seen[string(p.Key)] {
				t.Fatalf("group %q not contiguous", p.Key)
			}
			if string(p.Key) < lastKey {
				t.Fatalf("group %q after %q: not ascending", p.Key, lastKey)
			}
			seen[string(p.Key)] = true
			lastKey, lastArrival = string(p.Key), -1
		}
		a := int64(binary.LittleEndian.Uint64(p.Value))
		if a <= lastArrival {
			t.Fatalf("group %q: arrival %d after %d", p.Key, a, lastArrival)
		}
		lastArrival = a
	}
	st := c.Stats()
	if st.Groups != int64(len(seen)) {
		t.Errorf("Stats.Groups = %d, want %d", st.Groups, len(seen))
	}
	if st.Spills != 0 || st.Runs != 0 {
		t.Errorf("unbounded collector spilled: %+v", st)
	}
}

// TestHashSpillAccounting pins the stats of the degraded mode: overflow
// flushes count as Spills, the final residue flush does not, and run/byte
// counters surface from the fallback sorter.
func TestHashSpillAccounting(t *testing.T) {
	c := NewHash(testCodec{}, t.TempDir(), 4)
	for i := 0; i < 10; i++ { // 10 pairs, budget 4: two overflow flushes + residue
		v := []byte{byte(i)}
		if err := c.Add(transport.Pair{Key: fmt.Appendf(nil, "k%d", i%3), Value: v}); err != nil {
			t.Fatal(err)
		}
	}
	out := drain(t, c)
	if len(out) != 10 {
		t.Fatalf("drained %d pairs, want 10", len(out))
	}
	st := c.Stats()
	if st.Items != 10 {
		t.Errorf("Items = %d, want 10", st.Items)
	}
	if st.Spills != 2 {
		t.Errorf("Spills = %d, want 2 (residue flush must not count)", st.Spills)
	}
	if st.Runs == 0 || st.SpilledBytes == 0 {
		t.Errorf("spill run accounting missing: %+v", st)
	}
}
