// Package groupx collects a reducer's shuffled pairs and hands them back
// grouped. Two collectors implement the same Collector interface:
//
//   - the sort collector drains everything through a sortx external sort
//     (the classic Hadoop shape the paper assumes: "reducers collect
//     pairs and use external sorting to group pairs with the same key
//     value"), which a composite shuffle key needs because its suffix
//     carries a secondary order;
//   - the hash collector groups by hash instead (Leis et al.'s morsel
//     partitioned grouping, the Hespe et al. in-memory OLAP shape): when
//     reduce only needs pairs *grouped* — block grouping, early
//     aggregation — no total order is required, so pairs go straight
//     into a group → pairs table and the per-item comparison sort
//     disappears. When the buffered-pair budget is exceeded the table is
//     flushed into sorted runs and the collector degrades to exactly the
//     external-sort path, so memory stays bounded and the output stream
//     (groups ascending by key) is identical either way.
//
// Both collectors are single-goroutine: Add all pairs, then Iterate once.
package groupx

import (
	"bytes"
	"context"
	"slices"

	"github.com/casm-project/casm/internal/sortx"
	"github.com/casm-project/casm/internal/transport"
)

// Stats reports a collector's work, feeding TaskStats and the cost model.
type Stats struct {
	Items        int64 // pairs added
	Groups       int64 // distinct resident groups (hash collector; 0 sorted)
	Spills       int64 // hash-table flushes into the sorted-run fallback
	Runs         int   // spilled run files
	SpilledBytes int64 // bytes written to spill runs
	AllocsSaved  int64 // encode/decode ops served by reused buffers
}

// Iterator yields a collector's pairs, grouped, in ascending group-key
// order. A pair's Key and Value are only guaranteed valid until the
// following Next call (spilled pairs alias reused read buffers — the
// sortx contract).
type Iterator interface {
	Next() (transport.Pair, bool, error)
	Close()
}

// Collector accumulates shuffled pairs and yields them grouped.
type Collector interface {
	Add(p transport.Pair) error
	// Iterate finalizes the collector; it cannot be reused afterwards.
	Iterate() (Iterator, error)
	Stats() Stats
	// Close releases the collector's resources (spill-run descriptors,
	// buffered pairs) without iterating — the error/cancel teardown
	// hook. Idempotent; on the happy path the Iterator's Close already
	// released the runs and this is a no-op.
	Close()
}

// PairKeyCompare orders pairs by their full shuffle key, the comparison
// both collectors spill and merge under. bytes.Compare orders byte keys
// exactly as strings.Compare ordered their string forms, so the output
// stream is bit-identical to the string-keyed implementation.
func PairKeyCompare(a, b transport.Pair) int { return bytes.Compare(a.Key, b.Key) }

// --- sorted path ---

type sortCollector struct {
	s *sortx.Sorter[transport.Pair]
}

// NewSort returns the external-sort collector: pairs come back in full
// shuffle-key order, which both groups them and realizes a composite
// key's secondary sort.
func NewSort(codec sortx.Codec[transport.Pair], dir string, memItems int) Collector {
	return NewSortContext(context.Background(), codec, dir, memItems)
}

// NewSortContext is NewSort with a cancellation context threaded into
// the underlying sorter's spill and merge loops.
func NewSortContext(ctx context.Context, codec sortx.Codec[transport.Pair], dir string, memItems int) Collector {
	return &sortCollector{s: sortx.NewContext(ctx, PairKeyCompare, codec, dir, memItems)}
}

func (c *sortCollector) Add(p transport.Pair) error { return c.s.Add(p) }

func (c *sortCollector) Iterate() (Iterator, error) { return c.s.Iterate() }

func (c *sortCollector) Close() { c.s.Close() }

func (c *sortCollector) Stats() Stats {
	ss := c.s.Stats()
	return Stats{
		Items:        ss.Items,
		Runs:         ss.Runs,
		SpilledBytes: ss.SpilledBytes,
		AllocsSaved:  ss.AllocsSaved,
	}
}

// --- hash path ---

type hashGroup struct {
	key   []byte
	pairs []transport.Pair
}

type hashCollector struct {
	ctx      context.Context
	codec    sortx.Codec[transport.Pair]
	dir      string
	memItems int

	groups   map[string]*hashGroup
	buffered int
	stats    Stats

	// sorter is the spill fallback, created on the first flush. Flushes
	// feed it exactly memItems pairs in (group key, arrival) order — a
	// stable key sort of the flushed batch — so its run files are
	// byte-identical to the ones the sorted path would have written for
	// the same arrival sequence.
	sorter *sortx.Sorter[transport.Pair]
	done   bool
}

// NewHash returns the hash-grouped collector. memItems bounds the pairs
// buffered in the table before a flush to sorted runs (< 1 = unbounded,
// matching the sortx convention). codec and dir parameterize the spill
// fallback.
func NewHash(codec sortx.Codec[transport.Pair], dir string, memItems int) Collector {
	return NewHashContext(context.Background(), codec, dir, memItems)
}

// NewHashContext is NewHash with a cancellation context threaded into
// the spill-fallback sorter's spill and merge loops.
func NewHashContext(ctx context.Context, codec sortx.Codec[transport.Pair], dir string, memItems int) Collector {
	return &hashCollector{
		ctx:      ctx,
		codec:    codec,
		dir:      dir,
		memItems: memItems,
		groups:   make(map[string]*hashGroup),
	}
}

func (c *hashCollector) Add(p transport.Pair) error {
	// map[string(bytes)] probes without allocating; the map-key string
	// only materializes on first sight of a distinct group. p.Key doubles
	// as the group key — transport bytes stay valid for the job, so this
	// retains a borrowed slice, not a copy.
	g, ok := c.groups[string(p.Key)]
	if !ok {
		g = &hashGroup{key: p.Key}
		c.groups[string(p.Key)] = g
		c.stats.Groups++
	}
	g.pairs = append(g.pairs, p)
	c.buffered++
	c.stats.Items++
	if c.memItems > 0 && c.buffered >= c.memItems {
		return c.flush()
	}
	return nil
}

// sortedGroups drains the table into a slice ordered by group key.
func (c *hashCollector) sortedGroups() []*hashGroup {
	gs := make([]*hashGroup, 0, len(c.groups))
	for _, g := range c.groups {
		gs = append(gs, g)
	}
	slices.SortFunc(gs, func(a, b *hashGroup) int { return bytes.Compare(a.key, b.key) })
	return gs
}

// flush moves every buffered pair into the spill sorter in (group key,
// arrival) order and resets the table. Pairs carry their original key
// bytes straight into the byte-keyed spill codec — no string round-trip
// anywhere on the spill path.
func (c *hashCollector) flush() error {
	if c.sorter == nil {
		c.sorter = sortx.NewContext(c.ctx, PairKeyCompare, c.codec, c.dir, c.memItems)
	}
	for _, g := range c.sortedGroups() {
		for _, p := range g.pairs {
			if err := c.sorter.Add(p); err != nil {
				return err
			}
		}
	}
	c.stats.Spills++
	c.groups = make(map[string]*hashGroup, len(c.groups))
	c.buffered = 0
	return nil
}

func (c *hashCollector) Iterate() (Iterator, error) {
	c.done = true
	if c.sorter != nil {
		// Degraded mode: the residue joins the spilled runs and the
		// whole stream comes back merge-sorted, exactly like NewSort.
		if c.buffered > 0 {
			if err := c.flush(); err != nil {
				return nil, err
			}
			c.stats.Spills-- // the final residue flush is not a table overflow
		}
		return c.sorter.Iterate()
	}
	gs := c.sortedGroups()
	c.groups = nil
	gi, pi := 0, 0
	return &memIterator{next: func() (transport.Pair, bool, error) {
		for gi < len(gs) {
			if g := gs[gi]; pi < len(g.pairs) {
				p := g.pairs[pi]
				pi++
				return p, true, nil
			}
			gi, pi = gi+1, 0
		}
		return transport.Pair{}, false, nil
	}}, nil
}

func (c *hashCollector) Close() {
	if c.sorter != nil {
		c.sorter.Close()
	}
	c.groups = nil
	c.done = true
}

func (c *hashCollector) Stats() Stats {
	st := c.stats
	if c.sorter != nil {
		ss := c.sorter.Stats()
		st.Runs = ss.Runs
		st.SpilledBytes = ss.SpilledBytes
		st.AllocsSaved = ss.AllocsSaved
	}
	return st
}

type memIterator struct {
	next func() (transport.Pair, bool, error)
}

func (it *memIterator) Next() (transport.Pair, bool, error) { return it.next() }
func (it *memIterator) Close()                              {}
