package figures

import (
	"context"
	"fmt"
	"time"

	"github.com/casm-project/casm/internal/core"
	"github.com/casm-project/casm/internal/cube"
	"github.com/casm-project/casm/internal/measure"
	"github.com/casm-project/casm/internal/mr"
	"github.com/casm-project/casm/internal/optimizer"
	"github.com/casm-project/casm/internal/workflow"
	"github.com/casm-project/casm/internal/workload"
)

// SharedScan is the multi-query batching comparison: a marginals-style
// workload — six overlapping single-aggregate workflows over the same
// fine (a1:value, t1:minute) region set, the "many aggregates, one scan"
// scenario of Computing Marginals Using MapReduce — evaluated as six
// separate jobs (exactly what six Evaluate calls do) versus one
// EvaluateBatch call. The six plans agree on block geometry, so the
// batch shares the scan, the shuffle, and the reducer-side group builds;
// only the per-query aggregation itself fans out. Like MorselSkew this
// is not one of the paper's Figure 4 panels — it evaluates this
// reproduction's shared-scan extension — so casmbench emits it as a
// separate snapshot section that casmbenchdiff does not compare across
// commits.
//
// Both arms run for real over the same records with the same engine
// knobs; the per-query answers are byte-identical (the batch equivalence
// tests pin this down), so the comparison is purely about cost. Each
// arm's wall seconds are the best of two runs (back-to-back small runs
// on a shared host jitter; the counters are deterministic and come from
// the last run). The panel also times the keyed plan/decision cache on
// the repeated-submission pattern batching serves: planning every query
// cold under sampling-based skew planning (each plan pays a real sample
// pass) versus warm (cache primed), averaged over many rounds.
type SharedScan struct {
	Records int `json:"records"`
	// Queries names the workload's aggregates, all at the shared fine
	// grain.
	Queries []string `json:"queries"`
	// SharedQueries is how many of the queries the batch served from a
	// shared scan, Jobs how many jobs it ran, Groups how many distinct
	// block geometries those queries planned to (1 = the shuffle was
	// fully shared too).
	SharedQueries int `json:"shared_queries"`
	Jobs          int `json:"jobs"`
	Groups        int `json:"geometry_groups"`
	// SeqWall / BatchWall are real wall seconds summed over each arm's
	// jobs (best of two runs); SeqSeconds / BatchSeconds the simulated
	// seconds at paper magnitude.
	SeqWall      float64 `json:"sequential_wall_seconds"`
	BatchWall    float64 `json:"batched_wall_seconds"`
	SeqSeconds   float64 `json:"sequential_seconds"`
	BatchSeconds float64 `json:"batched_seconds"`
	// SeqBytes / BatchBytes are the input bytes each arm physically read;
	// BytesSaved is the batch's own SharedScanBytesSaved counter total,
	// which must account exactly for the difference.
	SeqBytes   int64 `json:"sequential_bytes_read"`
	BatchBytes int64 `json:"batched_bytes_read"`
	BytesSaved int64 `json:"shared_scan_bytes_saved"`
	// PlanCold / PlanWarm are average seconds to plan one query without
	// and with the decision cache; PlanCacheHits is the cache's hit count
	// after the warm rounds.
	PlanCold      float64 `json:"plan_cold_seconds"`
	PlanWarm      float64 `json:"plan_warm_seconds"`
	PlanCacheHits int64   `json:"plan_cache_hits"`
}

// planRounds is how many times the plan-cache timing re-plans the whole
// workload per arm; the average over many rounds is what makes the
// cold/warm ratio stable.
const planRounds = 10

// sharedScanWorkload builds the overlapping workflows: one basic
// aggregate each, all over the same (a1:value, t1:minute) region set, so
// every plan derives the same distribution key.
func sharedScanWorkload(su *workload.Suite) ([]*workflow.Workflow, []string, error) {
	g := su.Schema.MustGrain(
		cube.GrainSpec{Attr: "a1", Level: "value"},
		cube.GrainSpec{Attr: "t1", Level: "minute"},
	)
	specs := []struct {
		f    measure.Func
		attr string
	}{
		{measure.Sum, "a2"},
		{measure.Count, ""},
		{measure.Avg, "a4"},
		{measure.Max, "a3"},
		{measure.Min, "a2"},
		{measure.Sum, "a3"},
	}
	ws := make([]*workflow.Workflow, len(specs))
	names := make([]string, len(specs))
	for i, sp := range specs {
		w := workflow.New(su.Schema)
		if err := w.AddBasic("m", g, measure.Spec{Func: sp.f}, sp.attr); err != nil {
			return nil, nil, err
		}
		ws[i] = w
		names[i] = fmt.Sprintf("%s(%s)", sp.f, sp.attr)
	}
	return ws, names, nil
}

// SharedScanPanel runs the comparison.
func SharedScanPanel(ctx context.Context, cfg Config) (*SharedScan, error) {
	cfg = cfg.withDefaults()
	su := workload.NewSuite()
	p := &SharedScan{Records: cfg.n(200_000)}
	records := su.Generate(p.Records, workload.Uniform, cfg.Seed)
	ds := core.MemoryDataset(su.Schema, records, 4*cfg.Reducers)
	ds.Tag = "sharedscan"
	ws, names, err := sharedScanWorkload(su)
	if err != nil {
		return nil, err
	}
	p.Queries = names
	ecfg := core.Config{NumReducers: cfg.Reducers, TempDir: cfg.TempDir}

	for run := 0; run < 2; run++ {
		// Sequential arm: one engine run per query, the plan a client
		// without batching executes.
		var wall float64
		seqBytes := int64(0)
		var seqSim float64
		for j, w := range ws {
			eng, err := core.NewEngine(ecfg)
			if err != nil {
				return nil, err
			}
			res, err := eng.EvaluateContext(ctx, w, ds)
			if err != nil {
				return nil, fmt.Errorf("figures: sharedscan %s: %w", names[j], err)
			}
			wall += res.Stats.Wall.Seconds()
			seqSim += SimSeconds(res, cfg.Represent)
			seqBytes += jobBytesRead(res.Stats)
		}
		if run == 0 || wall < p.SeqWall {
			p.SeqWall = wall
		}
		p.SeqSeconds, p.SeqBytes = seqSim, seqBytes

		// Batched arm: one EvaluateBatch over the same queries and records.
		eng, err := core.NewEngine(ecfg)
		if err != nil {
			return nil, err
		}
		batch, err := eng.EvaluateBatchContext(ctx, ws, ds)
		if err != nil {
			return nil, fmt.Errorf("figures: sharedscan batch: %w", err)
		}
		p.SharedQueries = batch.SharedScanQueries()
		p.Jobs = len(batch.Jobs)
		wall = 0
		p.Groups, p.BatchSeconds, p.BatchBytes, p.BytesSaved = 0, 0, 0, 0
		for _, j := range batch.Jobs {
			wall += j.Stats.Wall.Seconds()
			p.Groups += len(j.Groups)
			p.BatchSeconds += SimSeconds(batch.Results[j.Queries[0]], cfg.Represent)
			p.BatchBytes += jobBytesRead(j.Stats)
			for _, t := range j.Stats.MapTasks {
				p.BytesSaved += t.SharedScanBytesSaved
			}
		}
		if run == 0 || wall < p.BatchWall {
			p.BatchWall = wall
		}
	}

	// Plan-cache timing under sampling-based skew planning: every cold
	// plan pays a real sample pass — the cost the keyed decision cache
	// exists to amortize. The cold arm re-plans from scratch each round;
	// the warm arm pays one priming round and then fingerprint + lookup +
	// clone.
	pcfg := ecfg
	pcfg.SkewMode = core.SkewSampling
	pcfg.SampleSize = 4000
	cold, err := core.NewEngine(pcfg)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	for r := 0; r < planRounds; r++ {
		for j, w := range ws {
			if _, err := cold.PlanContext(ctx, w, ds); err != nil {
				return nil, fmt.Errorf("figures: sharedscan cold plan %s: %w", names[j], err)
			}
		}
	}
	p.PlanCold = time.Since(start).Seconds() / float64(planRounds*len(ws))

	dcache := optimizer.NewDecisionCache(0)
	wcfg := pcfg
	wcfg.DecisionCache = dcache
	warm, err := core.NewEngine(wcfg)
	if err != nil {
		return nil, err
	}
	for _, w := range ws { // prime
		if _, err := warm.PlanContext(ctx, w, ds); err != nil {
			return nil, err
		}
	}
	start = time.Now()
	for r := 0; r < planRounds; r++ {
		for j, w := range ws {
			if _, err := warm.PlanContext(ctx, w, ds); err != nil {
				return nil, fmt.Errorf("figures: sharedscan warm plan %s: %w", names[j], err)
			}
		}
	}
	p.PlanWarm = time.Since(start).Seconds() / float64(planRounds*len(ws))
	p.PlanCacheHits = dcache.Hits()
	return p, nil
}

func jobBytesRead(js mr.JobStats) int64 {
	var n int64
	for _, t := range js.MapTasks {
		n += t.BytesRead
	}
	return n
}

// WallImprovement returns 1 - batched/sequential real wall seconds.
func (p *SharedScan) WallImprovement() float64 {
	if p.SeqWall == 0 {
		return 0
	}
	return 1 - p.BatchWall/p.SeqWall
}

// SimImprovement returns 1 - batched/sequential simulated seconds. The
// sharing counters are priced at zero, so this improvement comes
// entirely from the batch's smaller real counters — one scan and one
// shuffle instead of six — never from discounted prices; the Figure 4
// panels are untouched by construction.
func (p *SharedScan) SimImprovement() float64 {
	if p.SeqSeconds == 0 {
		return 0
	}
	return 1 - p.BatchSeconds/p.SeqSeconds
}

// PlanSpeedup returns cold/warm average planning seconds.
func (p *SharedScan) PlanSpeedup() float64 {
	if p.PlanWarm == 0 {
		return 0
	}
	return p.PlanCold / p.PlanWarm
}

// Table renders the comparison.
func (p *SharedScan) Table() Table {
	t := Table{
		Title: fmt.Sprintf("Shared-scan batching: %d overlapping queries over %d records (%d shared, %d geometry group(s), %d job(s))",
			len(p.Queries), p.Records, p.SharedQueries, p.Groups, p.Jobs),
		Columns: []string{"arm", "jobs", "input MB", "wall (s)", "simulated (s)"},
	}
	t.Rows = append(t.Rows,
		[]string{"sequential", fmt.Sprintf("%d", len(p.Queries)), f1(float64(p.SeqBytes) / mib), f2(p.SeqWall), f1(p.SeqSeconds)},
		[]string{"batched", fmt.Sprintf("%d", p.Jobs), f1(float64(p.BatchBytes) / mib), f2(p.BatchWall), f1(p.BatchSeconds)},
		[]string{"saving", "", fmt.Sprintf("%.1f (counted %.1f)", float64(p.SeqBytes-p.BatchBytes)/mib, float64(p.BytesSaved)/mib),
			fmt.Sprintf("%.0f%%", 100*p.WallImprovement()), fmt.Sprintf("%.0f%%", 100*p.SimImprovement())},
		[]string{"plan cold", "", "", fmt.Sprintf("%.3gms/query", 1e3*p.PlanCold), ""},
		[]string{"plan warm", "", "", fmt.Sprintf("%.3gms/query (%.0fx, %d hits)", 1e3*p.PlanWarm, p.PlanSpeedup(), p.PlanCacheHits), ""},
	)
	return t
}
