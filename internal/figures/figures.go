// Package figures regenerates every panel of the paper's Figure 4
// (Section VI). Each panel function executes real engine runs over
// scaled-down synthetic datasets and reports the simulated response time
// on the paper's 100-machine cluster, so the *shape* of each curve — who
// wins, where crossovers fall — is produced by the same mechanisms as in
// the paper while absolute sizes fit a development machine.
//
// The root bench_test.go and cmd/casmbench both drive this package.
package figures

import (
	"context"
	"fmt"
	"strings"

	"github.com/casm-project/casm/internal/core"
	"github.com/casm-project/casm/internal/costmodel"
	"github.com/casm-project/casm/internal/cube"
	"github.com/casm-project/casm/internal/exec"
	"github.com/casm-project/casm/internal/mr"
	"github.com/casm-project/casm/internal/optimizer"
	"github.com/casm-project/casm/internal/workload"
)

// Config scales and parameterizes the panel runs.
type Config struct {
	// Scale multiplies every dataset size (1.0 ≈ a few hundred thousand
	// records per run; raise it on bigger machines).
	Scale float64
	// Represent is the number of paper-records each real record stands
	// for when converting measured counters into simulated seconds: real
	// runs stay laptop-sized while the reported times correspond to the
	// paper's hundreds of millions to billions of records. Default 2500
	// (so the default 400k-record run represents 1B records). The curve
	// shapes come entirely from the real counters; Represent only sets
	// the magnitude.
	Represent int64
	// Reducers is the default reducer count (panels with their own sweep
	// ignore it). Default 16.
	Reducers int
	// TempDir hosts spill files.
	TempDir string
	// Seed drives data generation.
	Seed int64
	// Executor, when set, is a shared resident worker pool every panel run
	// executes on instead of building per-engine pools. Purely an
	// allocation-reuse knob: it never changes measured counters.
	Executor *exec.Executor
	// DecisionCache, when set, lets repeated panel runs of the same
	// (workflow, dataset, config) reuse the prior plan decision. Attached
	// only to skew-free runs: under SkewSampling, Panel F's uniform and
	// skewed datasets share an identity (no Tag, equal N), so a cache hit
	// would hand the uniform decision to the skewed run and zero its
	// sampling overhead — changing the published numbers.
	DecisionCache *optimizer.DecisionCache
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Represent <= 0 {
		c.Represent = 2500
	}
	if c.Reducers < 1 {
		c.Reducers = 16
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// SimSeconds converts a run's real counters into simulated seconds at
// paper magnitude: every per-task counter is multiplied by rep before the
// cost model is applied. The fixed sampling overhead is added as-is (the
// sample size does not grow with the dataset).
func SimSeconds(res *core.Result, rep int64) float64 {
	js := res.Stats
	scaled := mrStatsScaled(js, rep)
	est := core.EstimateFromStats(costmodel.DefaultCluster(), scaled)
	return est.Total() + res.SampleSeconds
}

func mrStatsScaled(js mr.JobStats, rep int64) mr.JobStats {
	out := mr.JobStats{Shuffled: js.Shuffled * rep}
	for _, t := range js.MapTasks {
		t.BytesRead *= rep
		t.Records *= rep
		t.PairsOut *= rep
		t.BytesOut *= rep
		t.BatchesSent *= rep
		t.CombineInputs *= rep
		t.CombineMerges *= rep
		t.KeyCacheHits *= rep
		t.MorselsDispatched *= rep
		t.MorselSteals *= rep
		t.LocalAggHits *= rep
		t.LocalAggSpills *= rep
		t.PlanCacheHits *= rep
		t.SharedScanQueries *= rep
		t.SharedScanBytesSaved *= rep
		out.MapTasks = append(out.MapTasks, t)
	}
	for _, t := range js.ReduceTasks {
		t.PairsIn *= rep
		t.BytesIn *= rep
		t.SortItems *= rep
		t.SpillBytes *= rep
		t.SortAllocsSaved *= rep
		t.SpillRuns *= rep
		t.KeyCacheHits *= rep
		t.HashGroups *= rep
		t.GroupSpills *= rep
		t.GroupSortItems *= rep
		t.GroupSpillBytes *= rep
		t.EvalRecords *= rep
		t.OutputRecords *= rep
		t.EvalArenaBytes *= rep
		t.AggPoolHits *= rep
		t.WindowLookups *= rep
		t.ResultCacheHits *= rep
		t.ResultCacheMisses *= rep
		t.ResultCacheBytes *= rep
		out.ReduceTasks = append(out.ReduceTasks, t)
	}
	return out
}

func (c Config) n(base int) int { return int(float64(base) * c.Scale) }

// Table is a rendered result table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// String renders the table with aligned columns.
func (t Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, cell := range r {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s ===\n", t.Title)
	for i, c := range t.Columns {
		fmt.Fprintf(&b, "%-*s  ", widths[i], c)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		for i, cell := range r {
			fmt.Fprintf(&b, "%-*s  ", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// runQuery executes one engine run and returns the simulated seconds at
// paper magnitude (see Config.Represent).
func runQuery(ctx context.Context, su *workload.Suite, records []cube.Record, cfg core.Config, q int, fc Config) (float64, *core.Result, error) {
	w, err := su.Query(q)
	if err != nil {
		return 0, nil, err
	}
	cfg.TempDir = fc.TempDir
	cfg.Executor = fc.Executor
	if cfg.SkewMode == core.SkewNone {
		cfg.DecisionCache = fc.DecisionCache
	}
	eng, err := core.NewEngine(cfg)
	if err != nil {
		return 0, nil, err
	}
	ds := core.MemoryDataset(su.Schema, records, 4*cfg.NumReducers)
	res, err := eng.EvaluateContext(ctx, w, ds)
	if err != nil {
		return 0, nil, err
	}
	return SimSeconds(res, fc.Represent), res, nil
}

// PanelA is Figure 4(a): scale-up — response time vs. data size for
// Q1–Q6.
type PanelA struct {
	Sizes   []int
	Queries []int
	// Seconds[i][j] is the simulated response time of Queries[j] at
	// Sizes[i].
	Seconds [][]float64
}

// Fig4a runs the scale-up experiment.
func Fig4a(ctx context.Context, cfg Config) (*PanelA, error) {
	cfg = cfg.withDefaults()
	su := workload.NewSuite()
	p := &PanelA{
		Sizes:   []int{cfg.n(50_000), cfg.n(100_000), cfg.n(200_000), cfg.n(400_000)},
		Queries: []int{1, 2, 3, 4, 5, 6},
	}
	for _, size := range p.Sizes {
		records := su.Generate(size, workload.Uniform, cfg.Seed)
		row := make([]float64, len(p.Queries))
		for j, q := range p.Queries {
			sec, _, err := runQuery(ctx, su, records, core.Config{NumReducers: cfg.Reducers}, q, cfg)
			if err != nil {
				return nil, fmt.Errorf("figures: 4a Q%d at %d: %w", q, size, err)
			}
			row[j] = sec
		}
		p.Seconds = append(p.Seconds, row)
	}
	return p, nil
}

// Table renders the panel.
func (p *PanelA) Table() Table {
	t := Table{Title: "Figure 4(a) — scale-up: simulated seconds vs. data size",
		Columns: []string{"records"}}
	for _, q := range p.Queries {
		t.Columns = append(t.Columns, fmt.Sprintf("Q%d", q))
	}
	for i, size := range p.Sizes {
		row := []string{fmt.Sprintf("%d", size)}
		for _, s := range p.Seconds[i] {
			row = append(row, f1(s))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// PanelB is Figure 4(b): speed-up — processing rate vs. reducer count for
// Q1, Q2, Q6.
type PanelB struct {
	Records  int
	Reducers []int
	Queries  []int
	// Rate[i][j] is records/simulated-second (millions) for Queries[j]
	// with Reducers[i].
	Rate [][]float64
}

// Fig4b runs the speed-up experiment.
func Fig4b(ctx context.Context, cfg Config) (*PanelB, error) {
	cfg = cfg.withDefaults()
	su := workload.NewSuite()
	p := &PanelB{
		Records:  cfg.n(300_000),
		Reducers: []int{4, 8, 16, 32, 50},
		Queries:  []int{1, 2, 6},
	}
	records := su.Generate(p.Records, workload.Uniform, cfg.Seed)
	for _, m := range p.Reducers {
		row := make([]float64, len(p.Queries))
		for j, q := range p.Queries {
			sec, _, err := runQuery(ctx, su, records, core.Config{NumReducers: m}, q, cfg)
			if err != nil {
				return nil, fmt.Errorf("figures: 4b Q%d m=%d: %w", q, m, err)
			}
			// Rate at paper magnitude: each real record represents
			// cfg.Represent paper records.
			row[j] = float64(p.Records) * float64(cfg.Represent) / sec / 1e6
		}
		p.Rate = append(p.Rate, row)
	}
	return p, nil
}

// Table renders the panel.
func (p *PanelB) Table() Table {
	t := Table{Title: fmt.Sprintf("Figure 4(b) — speed-up: processing rate (M records/s) vs. reducers, N=%d", p.Records),
		Columns: []string{"reducers"}}
	for _, q := range p.Queries {
		t.Columns = append(t.Columns, fmt.Sprintf("Q%d", q))
	}
	for i, m := range p.Reducers {
		row := []string{fmt.Sprintf("%d", m)}
		for _, r := range p.Rate[i] {
			row = append(row, f2(r))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}
