package figures

import (
	"context"
	"testing"
)

func TestMorselSkewPanel(t *testing.T) {
	cfg := Config{Scale: 0.05, TempDir: t.TempDir(), Seed: 1}
	p, err := MorselSkewPanel(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(p.Workers), 3; got != want {
		t.Fatalf("workers = %v", p.Workers)
	}
	for _, s := range [][]float64{p.FixedSeconds, p.MorselSeconds, p.FixedWall, p.MorselWall} {
		if len(s) != len(p.Workers) {
			t.Fatalf("ragged series: %v", p)
		}
	}
	if p.Splits < morselSkewSplits-2 || p.Splits > morselSkewSplits+2 {
		t.Errorf("splits = %d, want ~%d", p.Splits, morselSkewSplits)
	}
	// The headline claim: at 8 workers morsel-driven execution beats
	// split-granular scheduling by >=25% simulated map makespan, because
	// ~10 whole-block tasks quantize badly onto 8 slots while morsels
	// smooth the same records across all of them.
	if imp := p.Improvement(2); imp < 0.25 {
		t.Errorf("improvement at 8 workers = %.0f%%, want >= 25%%\nfixed=%v morsel=%v",
			100*imp, p.FixedSeconds, p.MorselSeconds)
	}
	// With real multi-worker pools and one hot clustered block, stealing
	// must actually occur at 8 workers.
	if p.Steals[2] == 0 {
		t.Errorf("no steals at 8 workers: %v", p.Steals)
	}
	if tb := p.Table(); len(tb.Rows) != len(p.Workers) {
		t.Errorf("table rows = %d", len(tb.Rows))
	}
}
