package figures

import (
	"context"
	"fmt"

	"github.com/casm-project/casm/internal/core"
	"github.com/casm-project/casm/internal/optimizer"
	"github.com/casm-project/casm/internal/workload"
)

// PanelC is Figure 4(c): execution time vs. clustering factor, with the
// analytic Formula (4) prediction overlaid.
type PanelC struct {
	Records   int
	Reducers  int
	Factors   []int64
	Measured  []float64 // simulated seconds per cf
	Predicted []float64 // Formula (4) workload normalized to seconds
	OptimalCF int64     // the optimizer's unconstrained choice
}

// Fig4c runs the clustering-factor sweep on the sliding-window query Q5.
func Fig4c(ctx context.Context, cfg Config) (*PanelC, error) {
	cfg = cfg.withDefaults()
	su := workload.NewSuite()
	p := &PanelC{
		Records:  cfg.n(300_000),
		Reducers: cfg.Reducers,
		Factors:  []int64{1, 2, 5, 10, 25, 50, 100, 250},
	}
	records := su.Generate(p.Records, workload.Uniform, cfg.Seed)
	w := su.Q5()
	optCfg := optimizer.Config{NumReducers: p.Reducers, TotalRecords: int64(p.Records)}
	plan, err := optimizer.Optimize(w, optCfg)
	if err != nil {
		return nil, err
	}
	p.OptimalCF = plan.ClusteringFactor
	raw := make([]float64, len(p.Factors))
	for i, cf := range p.Factors {
		sec, _, err := runQuery(ctx, su, records, core.Config{NumReducers: p.Reducers, ForceCF: cf}, 5, cfg)
		if err != nil {
			return nil, fmt.Errorf("figures: 4c cf=%d: %w", cf, err)
		}
		p.Measured = append(p.Measured, sec)
		raw[i] = optimizer.PredictWorkload(su.Schema, plan.Key, cf, optCfg)
	}
	// Normalize the predicted workload (records) onto the measured scale
	// so both series overlay, as in the paper's second axis.
	ref := 0
	for i := range p.Factors {
		if p.Measured[i] < p.Measured[ref] {
			ref = i
		}
	}
	for i := range raw {
		p.Predicted = append(p.Predicted, raw[i]/raw[ref]*p.Measured[ref])
	}
	return p, nil
}

// Table renders the panel.
func (p *PanelC) Table() Table {
	t := Table{
		Title:   fmt.Sprintf("Figure 4(c) — clustering factor (Q5, N=%d, m=%d; optimizer picks cf=%d)", p.Records, p.Reducers, p.OptimalCF),
		Columns: []string{"cf", "measured(s)", "model(s, relative)"},
	}
	for i, cf := range p.Factors {
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", cf), f1(p.Measured[i]), f1(p.Predicted[i])})
	}
	return t
}

// PanelD is Figure 4(d): the evaluation cost breakdown.
type PanelD struct {
	Records  int
	Stages   []string
	Seconds  []float64
	Combined float64 // Sort+Eval with the combined-key optimization
}

// Fig4d runs the stage-stop breakdown on Q6.
func Fig4d(ctx context.Context, cfg Config) (*PanelD, error) {
	cfg = cfg.withDefaults()
	su := workload.NewSuite()
	p := &PanelD{
		Records: cfg.n(200_000),
		Stages:  []string{"Map-Only", "MR", "Sort", "Sort+Eval"},
	}
	records := su.Generate(p.Records, workload.Uniform, cfg.Seed)
	for _, st := range []core.Stage{core.StageMapOnly, core.StageShuffle, core.StageSort, core.StageFull} {
		sec, _, err := runQuery(ctx, su, records, core.Config{NumReducers: cfg.Reducers, Stage: st}, 6, cfg)
		if err != nil {
			return nil, fmt.Errorf("figures: 4d stage %d: %w", st, err)
		}
		p.Seconds = append(p.Seconds, sec)
	}
	sec, _, err := runQuery(ctx, su, records,
		core.Config{NumReducers: cfg.Reducers, SortMode: core.CombinedKeySort}, 6, cfg)
	if err != nil {
		return nil, err
	}
	p.Combined = sec
	return p, nil
}

// Table renders the panel.
func (p *PanelD) Table() Table {
	t := Table{
		Title:   fmt.Sprintf("Figure 4(d) — cost breakdown (Q6, N=%d)", p.Records),
		Columns: []string{"stage", "simulated(s)"},
	}
	for i, s := range p.Stages {
		t.Rows = append(t.Rows, []string{s, f1(p.Seconds[i])})
	}
	t.Rows = append(t.Rows, []string{"Sort+Eval (combined key)", f1(p.Combined)})
	return t
}

// PanelE is Figure 4(e): early aggregation on DS0–DS2.
type PanelE struct {
	Records int
	With    []float64 // simulated seconds with early aggregation
	Without []float64
}

// Fig4e runs the early-aggregation comparison.
func Fig4e(ctx context.Context, cfg Config) (*PanelE, error) {
	cfg = cfg.withDefaults()
	su := workload.NewSuite()
	p := &PanelE{Records: cfg.n(300_000)}
	records := su.Generate(p.Records, workload.Uniform, cfg.Seed)
	for i := 0; i <= 2; i++ {
		w, err := su.DS(i)
		if err != nil {
			return nil, err
		}
		for _, early := range []core.EarlyAggMode{core.EarlyAggOn, core.EarlyAggOff} {
			eng, err := core.NewEngine(core.Config{
				NumReducers: cfg.Reducers, EarlyAggregation: early, TempDir: cfg.TempDir,
				Executor: cfg.Executor, DecisionCache: cfg.DecisionCache,
			})
			if err != nil {
				return nil, err
			}
			// Few, large splits: each mapper sees enough records for the
			// combiner's grouping to matter, as on the paper's cluster.
			ds := core.MemoryDataset(su.Schema, records, 8)
			res, err := eng.EvaluateContext(ctx, w, ds)
			if err != nil {
				return nil, fmt.Errorf("figures: 4e DS%d: %w", i, err)
			}
			if early == core.EarlyAggOn {
				p.With = append(p.With, SimSeconds(res, cfg.Represent))
			} else {
				p.Without = append(p.Without, SimSeconds(res, cfg.Represent))
			}
		}
	}
	return p, nil
}

// Table renders the panel.
func (p *PanelE) Table() Table {
	t := Table{
		Title:   fmt.Sprintf("Figure 4(e) — early aggregation (N=%d)", p.Records),
		Columns: []string{"query", "early agg(s)", "no early agg(s)"},
	}
	for i := range p.With {
		t.Rows = append(t.Rows, []string{fmt.Sprintf("DS%d", i), f1(p.With[i]), f1(p.Without[i])})
	}
	return t
}

// PanelF is Figure 4(f): skew handling.
type PanelF struct {
	Records int
	Plans   []string
	// Seconds[i][0] = uniform data, Seconds[i][1] = skewed data.
	Seconds        [][2]float64
	SampleOverhead float64 // simulated seconds the sampling pass adds
}

// Fig4f compares Normal / 2Blocks / 4Blocks / Sampling on uniform vs.
// temporally skewed data, using the sliding-window query Q5. The panel
// runs with 50 reducers so that the minimum-blocks heuristics actually
// constrain the clustering factor, as in the paper's cluster.
func Fig4f(ctx context.Context, cfg Config) (*PanelF, error) {
	cfg = cfg.withDefaults()
	su := workload.NewSuite()
	p := &PanelF{
		Records: cfg.n(300_000),
		Plans:   []string{"Normal", "2Blocks", "4Blocks", "Sampling"},
	}
	const m = 50
	uniform := su.Generate(p.Records, workload.Uniform, cfg.Seed)
	skewed := su.Generate(p.Records, workload.SkewedTime, cfg.Seed)
	configs := []core.Config{
		{NumReducers: m},
		{NumReducers: m, MinBlocksPerReducer: 2},
		{NumReducers: m, MinBlocksPerReducer: 4},
		{NumReducers: m, SkewMode: core.SkewSampling, SampleSize: 4000},
	}
	for i, c := range configs {
		var pair [2]float64
		// Run on uniform (index 0) and skewed (index 1).
		sec, res, err := runQuery(ctx, su, uniform, c, 5, cfg)
		if err != nil {
			return nil, fmt.Errorf("figures: 4f %s uniform: %w", p.Plans[i], err)
		}
		pair[0] = sec
		sec, res, err = runQuery(ctx, su, skewed, c, 5, cfg)
		if err != nil {
			return nil, fmt.Errorf("figures: 4f %s skewed: %w", p.Plans[i], err)
		}
		pair[1] = sec
		if c.SkewMode == core.SkewSampling && res.SampleSeconds > p.SampleOverhead {
			p.SampleOverhead = res.SampleSeconds
		}
		p.Seconds = append(p.Seconds, pair)
	}
	return p, nil
}

// Table renders the panel.
func (p *PanelF) Table() Table {
	t := Table{
		Title:   fmt.Sprintf("Figure 4(f) — skew handling (Q5, N=%d)", p.Records),
		Columns: []string{"plan", "no-skew(s)", "skew(s)"},
	}
	for i, plan := range p.Plans {
		t.Rows = append(t.Rows, []string{plan, f1(p.Seconds[i][0]), f1(p.Seconds[i][1])})
	}
	t.Rows = append(t.Rows, []string{"(sampling overhead)", f1(p.SampleOverhead), f1(p.SampleOverhead)})
	return t
}
