package figures

import (
	"context"
	"strings"
	"testing"
)

// tiny returns a configuration small enough for unit tests; panel shape
// assertions live in the root benchmarks, which run at a larger scale —
// these tests only guarantee the harness executes and renders.
func tiny(t *testing.T) Config {
	return Config{Scale: 0.02, Reducers: 4, TempDir: t.TempDir(), Seed: 1}
}

func TestFig4a(t *testing.T) {
	p, err := Fig4a(context.Background(), tiny(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Seconds) != len(p.Sizes) || len(p.Seconds[0]) != len(p.Queries) {
		t.Fatalf("shape: %dx%d", len(p.Seconds), len(p.Seconds[0]))
	}
	for i := range p.Seconds {
		for j := range p.Seconds[i] {
			if p.Seconds[i][j] <= 0 {
				t.Errorf("cell %d,%d not positive", i, j)
			}
		}
	}
	tab := p.Table().String()
	for _, want := range []string{"Figure 4(a)", "Q1", "Q6"} {
		if !strings.Contains(tab, want) {
			t.Errorf("table missing %q", want)
		}
	}
}

func TestFig4b(t *testing.T) {
	p, err := Fig4b(context.Background(), tiny(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rate) != len(p.Reducers) {
		t.Fatalf("rows = %d", len(p.Rate))
	}
	if !strings.Contains(p.Table().String(), "speed-up") {
		t.Error("table title missing")
	}
}

func TestFig4c(t *testing.T) {
	p, err := Fig4c(context.Background(), tiny(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Measured) != len(p.Factors) || len(p.Predicted) != len(p.Factors) {
		t.Fatal("series lengths differ")
	}
	if p.OptimalCF < 1 {
		t.Errorf("optimal cf = %d", p.OptimalCF)
	}
	if !strings.Contains(p.Table().String(), "clustering factor") {
		t.Error("table title missing")
	}
}

func TestFig4d(t *testing.T) {
	p, err := Fig4d(context.Background(), tiny(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Seconds) != 4 || p.Combined <= 0 {
		t.Fatalf("%+v", p)
	}
	if !strings.Contains(p.Table().String(), "Map-Only") {
		t.Error("table missing stage")
	}
}

func TestFig4e(t *testing.T) {
	p, err := Fig4e(context.Background(), tiny(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.With) != 3 || len(p.Without) != 3 {
		t.Fatalf("%+v", p)
	}
	if !strings.Contains(p.Table().String(), "DS2") {
		t.Error("table missing DS2")
	}
}

func TestFig4f(t *testing.T) {
	p, err := Fig4f(context.Background(), tiny(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Seconds) != 4 {
		t.Fatalf("%+v", p)
	}
	if p.SampleOverhead <= 0 {
		t.Error("sampling overhead not recorded")
	}
	if !strings.Contains(p.Table().String(), "Sampling") {
		t.Error("table missing Sampling row")
	}
}

func TestTableRendering(t *testing.T) {
	tab := Table{
		Title:   "demo",
		Columns: []string{"a", "long-column"},
		Rows:    [][]string{{"1", "2"}, {"333333", "4"}},
	}
	s := tab.String()
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "=== demo") {
		t.Errorf("title line %q", lines[0])
	}
}
