package figures

import (
	"context"
	"fmt"
	"os"

	"github.com/casm-project/casm/internal/blockstore"
	"github.com/casm-project/casm/internal/core"
	"github.com/casm-project/casm/internal/mr"
	"github.com/casm-project/casm/internal/workload"
)

// ResultReuse is the cold-vs-warm materialized-result study: the same
// query runs twice against a persistent store-backed dataset with the
// result cache enabled. The cold run executes the full job and fills
// per-(block, fingerprint) entries plus a whole-query manifest; the warm
// run assembles the answer from the manifest without scanning any input.
// Like MorselSkew and SharedScan, it is a reproduction-extension study —
// casmbench emits it outside the Panels map so casmbenchdiff never
// compares it across commits.
type ResultReuse struct {
	Records int    `json:"records"`
	Query   string `json:"query"`
	// ColdSeconds / WarmSeconds are simulated response times at paper
	// magnitude (counters scaled by Config.Represent, like the Figure 4
	// panels); the warm run pays one task overhead to assemble from
	// cache instead of a full map/shuffle/reduce.
	ColdSeconds float64 `json:"cold_seconds"`
	WarmSeconds float64 `json:"warm_seconds"`
	// ColdInputBytes / WarmInputBytes are the real bytes scanned from the
	// store; a manifest-served warm run reads zero.
	ColdInputBytes int64                  `json:"cold_input_bytes"`
	WarmInputBytes int64                  `json:"warm_input_bytes"`
	ColdWall       float64                `json:"cold_wall_seconds"`
	WarmWall       float64                `json:"warm_wall_seconds"`
	Speedup        float64                `json:"speedup"`
	Reused         bool                   `json:"reused"`
	Identical      bool                   `json:"identical"`
	Cache          *blockstore.CacheStats `json:"result_cache"`
}

// ResultReusePanel runs q2 cold then warm over a store-backed dataset.
func ResultReusePanel(ctx context.Context, cfg Config) (*ResultReuse, error) {
	cfg = cfg.withDefaults()
	su := workload.NewSuite()
	p := &ResultReuse{Records: cfg.n(240_000), Query: "q2"}
	records, err := su.GenerateOpts(workload.GenOpts{N: p.Records, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp(cfg.TempDir, "casm-resultreuse")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	st, err := blockstore.Open(blockstore.Config{Dir: dir, BlockSize: 1 << 20, Replication: 2, NumNodes: 4, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	defer st.Close()
	if err := workload.WriteStore(st, "reuse", su.Schema, records); err != nil {
		return nil, err
	}
	ds := &core.Dataset{
		Schema:     su.Schema,
		Input:      mr.NewStoreInput(st, "reuse"),
		NumRecords: int64(len(records)),
		Tag:        "store:reuse",
	}
	rc, err := blockstore.NewResultCache(st, 0)
	if err != nil {
		return nil, err
	}
	defer rc.Close()
	eng, err := core.NewEngine(core.Config{
		NumReducers: cfg.Reducers,
		Executor:    cfg.Executor,
		TempDir:     cfg.TempDir,
		ResultCache: rc,
	})
	if err != nil {
		return nil, err
	}
	w, err := su.Query(2)
	if err != nil {
		return nil, err
	}

	cold, err := eng.EvaluateContext(ctx, w, ds)
	if err != nil {
		return nil, err
	}
	warm, err := eng.EvaluateContext(ctx, w, ds)
	if err != nil {
		return nil, err
	}
	p.ColdSeconds = SimSeconds(cold, cfg.Represent)
	p.WarmSeconds = SimSeconds(warm, cfg.Represent)
	p.ColdInputBytes = inputBytes(cold.Stats)
	p.WarmInputBytes = inputBytes(warm.Stats)
	p.ColdWall = cold.Stats.Wall.Seconds()
	p.WarmWall = warm.Stats.Wall.Seconds()
	if p.WarmSeconds > 0 {
		p.Speedup = p.ColdSeconds / p.WarmSeconds
	}
	p.Reused = warm.ResultReused
	p.Identical = sameMeasures(cold, warm)
	cs := rc.Stats()
	p.Cache = &cs
	return p, nil
}

func inputBytes(js mr.JobStats) int64 {
	var n int64
	for _, t := range js.MapTasks {
		n += t.BytesRead
	}
	return n
}

// sameMeasures checks the warm result carries exactly the cold result's
// measure records, in the same canonical order with identical values.
func sameMeasures(a, b *core.Result) bool {
	if len(a.Measures) != len(b.Measures) {
		return false
	}
	for name, am := range a.Measures {
		bm, ok := b.Measures[name]
		if !ok || len(am) != len(bm) {
			return false
		}
		for i := range am {
			if am[i].Value != bm[i].Value {
				return false
			}
			ac, bc := am[i].Region.Coord, bm[i].Region.Coord
			if len(ac) != len(bc) {
				return false
			}
			for j := range ac {
				if ac[j] != bc[j] {
					return false
				}
			}
		}
	}
	return true
}

// Table renders the comparison.
func (p *ResultReuse) Table() Table {
	t := Table{
		Title: fmt.Sprintf("Materialized result reuse, %s over %d records (cold vs warm, simulated seconds)",
			p.Query, p.Records),
		Columns: []string{"run", "simulated (s)", "input MB", "wall (s)", "reused"},
	}
	t.Rows = append(t.Rows, []string{
		"cold", fmt.Sprintf("%.1f", p.ColdSeconds),
		fmt.Sprintf("%.1f", float64(p.ColdInputBytes)/(1<<20)),
		fmt.Sprintf("%.2f", p.ColdWall), "no",
	})
	reused := "no"
	if p.Reused {
		reused = "yes"
	}
	t.Rows = append(t.Rows, []string{
		"warm", fmt.Sprintf("%.1f", p.WarmSeconds),
		fmt.Sprintf("%.1f", float64(p.WarmInputBytes)/(1<<20)),
		fmt.Sprintf("%.2f", p.WarmWall), reused,
	})
	t.Rows = append(t.Rows, []string{
		"speedup", fmt.Sprintf("%.1fx", p.Speedup), "", "",
		fmt.Sprintf("identical=%v hits=%d", p.Identical, p.Cache.Hits),
	})
	return t
}
