package figures

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/casm-project/casm/internal/core"
	"github.com/casm-project/casm/internal/cql"
	"github.com/casm-project/casm/internal/serve"
	"github.com/casm-project/casm/internal/workload"
)

// ServeLoad is the resident-service concurrency study: a real casmserve
// stack — core.Service behind the serve HTTP handlers on a loopback
// listener — driven by concurrent clients under two tenant identities.
// Like MorselSkew and SharedScan this is not one of the paper's Figure 4
// panels; it evaluates this reproduction's resident-service extension
// (admission control, shared executor, shared decision cache), so
// casmbench emits it as a separate snapshot section that casmbenchdiff
// does not compare across commits. Every number here is host wall-clock.
type ServeLoad struct {
	Records   int      `json:"records"`
	Clients   int      `json:"clients"`
	Tenants   int      `json:"tenants"`
	PerClient int      `json:"queries_per_client"`
	Queries   []string `json:"queries"`
	// Total is the measured request count (warmups excluded); QPS the
	// completed queries per wall second over the loaded window.
	Total float64 `json:"total_queries"`
	QPS   float64 `json:"qps"`
	// P50/P95/P99/Max are end-to-end HTTP request latencies in
	// milliseconds, admission queueing included.
	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
	MaxMS float64 `json:"max_ms"`
	// PlanCacheHits/Misses come from the service's /stats endpoint after
	// the run: with one warmup per distinct query, every measured request
	// must be a hit.
	PlanCacheHits   int64 `json:"plan_cache_hits"`
	PlanCacheMisses int64 `json:"plan_cache_misses"`
	// TenantPeak is the highest concurrent in-flight count any tenant
	// reached — bounded by the admission limit however many clients pile
	// on.
	TenantPeak int `json:"tenant_peak_in_flight"`
	// DrainRejects records that a query submitted after Drain began was
	// refused with 503, the graceful-shutdown contract.
	DrainRejects bool `json:"drain_rejects_new_queries"`
}

// serveLoadClients is the concurrent client count (two tenants).
const serveLoadClients = 8

// ServeLoadPanel stands the service up and runs the load.
func ServeLoadPanel(ctx context.Context, cfg Config) (*ServeLoad, error) {
	cfg = cfg.withDefaults()
	su := workload.NewSuite()
	p := &ServeLoad{
		Records:   cfg.n(100_000),
		Clients:   serveLoadClients,
		Tenants:   2,
		PerClient: 4,
		Queries:   []string{cql.Format(su.Q1()), cql.Format(su.Q5())},
	}
	records := su.Generate(p.Records, workload.Uniform, cfg.Seed)

	svc, err := core.NewService(core.ServiceConfig{
		Engine: core.Config{NumReducers: cfg.Reducers, TempDir: cfg.TempDir},
	})
	if err != nil {
		return nil, err
	}
	if err := svc.Register("serveload", core.MemoryDataset(su.Schema, records, 4*cfg.Reducers)); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: serve.New(svc)}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	post := func(tenant, q string) (int, error) {
		req, err := http.NewRequestWithContext(ctx, "POST", base+"/query?dataset=serveload&limit=1", strings.NewReader(q))
		if err != nil {
			return 0, err
		}
		req.Header.Set("X-Casm-Tenant", tenant)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		var out struct {
			Rows int64 `json:"rows"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return resp.StatusCode, err
		}
		if resp.StatusCode == http.StatusOK && out.Rows == 0 {
			return resp.StatusCode, fmt.Errorf("figures: serveload: empty result")
		}
		return resp.StatusCode, nil
	}

	// One warmup per distinct query primes the decision cache, so the
	// measured window benchmarks the resident steady state.
	for _, q := range p.Queries {
		if code, err := post("warmup", q); err != nil || code != http.StatusOK {
			return nil, fmt.Errorf("figures: serveload warmup: status %d: %v", code, err)
		}
	}

	lats := make([][]time.Duration, p.Clients)
	errs := make([]error, p.Clients)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < p.Clients; c++ {
		c := c
		tenant := fmt.Sprintf("tenant-%d", c%p.Tenants)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < p.PerClient; r++ {
				q := p.Queries[(c+r)%len(p.Queries)]
				t0 := time.Now()
				code, err := post(tenant, q)
				if err != nil {
					errs[c] = err
					return
				}
				if code != http.StatusOK {
					errs[c] = fmt.Errorf("figures: serveload: status %d", code)
					return
				}
				lats[c] = append(lats[c], time.Since(t0))
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	p.Total = float64(len(all))
	p.QPS = p.Total / elapsed.Seconds()
	p.P50MS = pctMS(all, 0.50)
	p.P95MS = pctMS(all, 0.95)
	p.P99MS = pctMS(all, 0.99)
	p.MaxMS = pctMS(all, 1)

	// Resident-state accounting through the service's own endpoint.
	resp, err := http.Get(base + "/stats")
	if err != nil {
		return nil, err
	}
	var st core.ServiceStats
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	p.PlanCacheHits, p.PlanCacheMisses = st.PlanCacheHits, st.PlanCacheMisses
	for _, peak := range st.Admission.TenantPeak {
		if peak > p.TenantPeak {
			p.TenantPeak = peak
		}
	}

	// Graceful drain, then prove new work is refused with 503.
	dctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := svc.Drain(dctx); err != nil {
		return nil, fmt.Errorf("figures: serveload drain: %w", err)
	}
	code, _ := post("late", p.Queries[0])
	p.DrainRejects = code == http.StatusServiceUnavailable
	if !p.DrainRejects {
		return nil, fmt.Errorf("figures: serveload: post-drain status %d, want 503", code)
	}
	return p, nil
}

// pctMS returns the q-quantile of the sorted latencies in milliseconds.
func pctMS(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return float64(sorted[i]) / float64(time.Millisecond)
}

// Table renders the study.
func (p *ServeLoad) Table() Table {
	t := Table{
		Title: fmt.Sprintf("Resident service under load: %d clients, %d tenants, %d records",
			p.Clients, p.Tenants, p.Records),
		Columns: []string{"metric", "value"},
	}
	t.Rows = append(t.Rows,
		[]string{"queries", fmt.Sprintf("%.0f (%d per client, %d distinct)", p.Total, p.PerClient, len(p.Queries))},
		[]string{"throughput", fmt.Sprintf("%.1f qps", p.QPS)},
		[]string{"latency p50/p95/p99", fmt.Sprintf("%.0f / %.0f / %.0f ms", p.P50MS, p.P95MS, p.P99MS)},
		[]string{"latency max", fmt.Sprintf("%.0f ms", p.MaxMS)},
		[]string{"plan cache", fmt.Sprintf("%d hits, %d misses", p.PlanCacheHits, p.PlanCacheMisses)},
		[]string{"tenant peak in-flight", fmt.Sprintf("%d", p.TenantPeak)},
		[]string{"drain rejects new queries", fmt.Sprintf("%v", p.DrainRejects)},
	)
	return t
}
