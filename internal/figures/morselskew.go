package figures

import (
	"context"
	"fmt"
	"os"

	"github.com/casm-project/casm/internal/blockstore"
	"github.com/casm-project/casm/internal/core"
	"github.com/casm-project/casm/internal/costmodel"
	"github.com/casm-project/casm/internal/exec"
	"github.com/casm-project/casm/internal/mr"
	"github.com/casm-project/casm/internal/recio"
	"github.com/casm-project/casm/internal/workload"
)

// MorselSkew is the fixed-split vs morsel-driven comparison on a
// zipf-hot clustered workload (the §V straggler scenario). It is not one
// of the paper's Figure 4 panels — it evaluates this reproduction's
// morsel-mode extension — so casmbench emits it as a separate snapshot
// section that casmbenchdiff does not compare across commits.
//
// Methodology, following the repo's "real executions, simulated seconds"
// convention: both modes run for real at each worker count, and the map
// phase's simulated makespan schedules priced durations onto `workers`
// slots with the cost model's LPT rule — at the granularity each mode
// actually schedules. Fixed-split mode schedules its measured per-task
// counters (one task per DFS block), so a clustered hot block rides on
// one slot. Morsel mode schedules per-morsel durations: the morsel
// boundaries are recomputed deterministically from the data (the same
// carve the engine performs) and priced with per-record/per-byte rates
// taken from the real run's totals — which are themselves invariant to
// how morsels landed on workers, the property the equivalence tests pin
// down. The per-worker split observed on the benchmark host is NOT used
// for the makespan, deliberately: on a single-core host the pool's
// workers cannot interleave, so one worker drains every deque and the
// measured split degenerates, while the simulated cluster's workers
// genuinely run in parallel and work-stealing keeps them within one
// morsel of even — which is exactly what LPT over the morsel durations
// computes. Real wall seconds and the real runs' steal/spill counters
// ride along to keep the morsel machinery's actual behaviour visible.
type MorselSkew struct {
	Records     int     `json:"records"`
	Splits      int     `json:"splits"`
	MorselBytes int     `json:"morsel_bytes"`
	Zipf        float64 `json:"zipf"`
	Layout      string  `json:"layout"`
	Workers     []int   `json:"workers"`
	// FixedSeconds[i] / MorselSeconds[i] are the simulated map-phase
	// makespans on Workers[i] slots at paper magnitude.
	FixedSeconds  []float64 `json:"fixed_seconds"`
	MorselSeconds []float64 `json:"morsel_seconds"`
	// FixedWall[i] / MorselWall[i] are the whole run's real wall seconds.
	FixedWall  []float64 `json:"fixed_wall_seconds"`
	MorselWall []float64 `json:"morsel_wall_seconds"`
	// Steals[i] / Spills[i] are the run's total MorselSteals and
	// LocalAggSpills at Workers[i] (morsel mode).
	Steals []int64 `json:"morsel_steals"`
	Spills []int64 `json:"local_agg_spills"`
}

// morselSkewSplits is the number of DFS blocks the skew dataset is packed
// into. It is deliberately small relative to the worker sweep — the
// paper's DFS uses large fixed blocks, so real deployments see a handful
// of splits per map wave — because split-granular scheduling is exactly
// what the comparison measures: with ~10 blocks on 8 slots, fixed-split
// execution quantizes to whole blocks (and the zipf-dense blocks are the
// biggest), while morsels smooth the same records across all slots.
const morselSkewSplits = 10

// MorselSkewPanel runs the comparison at 1, 4, and 8 map workers.
func MorselSkewPanel(ctx context.Context, cfg Config) (*MorselSkew, error) {
	cfg = cfg.withDefaults()
	su := workload.NewSuite()
	p := &MorselSkew{
		Records: cfg.n(240_000),
		Zipf:    2,
		Layout:  workload.LayoutClustered.String(),
		Workers: []int{1, 4, 8},
	}
	records, err := su.GenerateOpts(workload.GenOpts{
		N: p.Records, Seed: cfg.Seed, Zipf: p.Zipf, Layout: workload.LayoutClustered,
	})
	if err != nil {
		return nil, err
	}
	// Size blocks to the dataset so the split count stays at
	// morselSkewSplits across scales; morsels carve each block ~16 ways.
	framed, err := recio.PackAligned(records, 1<<30)
	if err != nil {
		return nil, err
	}
	blockSize := len(framed)/morselSkewSplits + 1<<10
	p.MorselBytes = blockSize / 16
	dir, err := os.MkdirTemp(cfg.TempDir, "casm-morselskew")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	st, err := blockstore.Open(blockstore.Config{Dir: dir, BlockSize: blockSize, Replication: 1, NumNodes: 4, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	defer st.Close()
	if err := workload.WriteStore(st, "skew", su.Schema, records); err != nil {
		return nil, err
	}
	blocks, err := st.Blocks("skew")
	if err != nil {
		return nil, err
	}
	p.Splits = len(blocks)
	ds := &core.Dataset{Schema: su.Schema, Input: mr.NewStoreInput(st, "skew"), NumRecords: int64(len(records))}
	shapes, err := morselShapes(ds.Input, p.MorselBytes)
	if err != nil {
		return nil, err
	}
	w, err := su.DS(1)
	if err != nil {
		return nil, err
	}

	for _, workers := range p.Workers {
		for _, morsel := range []bool{false, true} {
			// A pool of exactly `workers` so the run's real concurrency
			// matches the slot count the makespan is computed for.
			ex := exec.New(workers)
			ecfg := core.Config{
				NumReducers:      cfg.Reducers,
				MapParallelism:   workers,
				Executor:         ex,
				EarlyAggregation: core.EarlyAggOn, // the combiner is the thread-local table
				TempDir:          cfg.TempDir,
			}
			if morsel {
				ecfg.MorselBytes = p.MorselBytes
			}
			eng, err := core.NewEngine(ecfg)
			if err != nil {
				ex.Close()
				return nil, err
			}
			res, err := eng.EvaluateContext(ctx, w, ds)
			ex.Close()
			if err != nil {
				return nil, err
			}
			wall := res.Stats.Wall.Seconds()
			if morsel {
				makespan := morselMakespan(shapes, res.Stats, cfg.Represent, workers)
				p.MorselSeconds = append(p.MorselSeconds, makespan)
				p.MorselWall = append(p.MorselWall, wall)
				var steals, spills int64
				for _, t := range res.Stats.MapTasks {
					steals += t.MorselSteals
					spills += t.LocalAggSpills
				}
				p.Steals = append(p.Steals, steals)
				p.Spills = append(p.Spills, spills)
			} else {
				p.FixedSeconds = append(p.FixedSeconds, mapMakespan(res.Stats, cfg.Represent, workers))
				p.FixedWall = append(p.FixedWall, wall)
			}
		}
	}
	return p, nil
}

// mapMakespan prices every map task's counters at paper magnitude and
// schedules the durations on `slots` identical workers (LPT), returning
// the map phase's simulated makespan.
func mapMakespan(js mr.JobStats, rep int64, slots int) float64 {
	m := costmodel.DefaultCluster().Machine
	scaled := mrStatsScaled(js, rep)
	durations := make([]float64, len(scaled.MapTasks))
	for i, t := range scaled.MapTasks {
		durations[i] = m.MapTime(costmodel.MapWork{
			BytesRead:    t.BytesRead,
			Records:      t.Records,
			PairsOut:     t.PairsOut,
			BytesOut:     t.BytesOut,
			CombineItems: t.CombineInputs,
		})
	}
	return costmodel.ScheduleLPT(durations, slots)
}

// morselShape is the deterministic footprint of one morsel: the carve
// depends only on the data and the target size, never on scheduling.
type morselShape struct {
	bytes   int64
	records int64
}

// morselShapes performs the same carve the engine's dispatcher does and
// measures each morsel's size.
func morselShapes(in mr.Input, targetBytes int) ([]morselShape, error) {
	splits, err := in.Splits()
	if err != nil {
		return nil, err
	}
	var out []morselShape
	for _, sp := range splits {
		parts := []mr.Split{sp}
		if msp, ok := sp.(mr.MorselSplit); ok {
			if parts, err = msp.Morsels(targetBytes); err != nil {
				return nil, err
			}
		}
		for _, m := range parts {
			it, err := m.Open()
			if err != nil {
				return nil, err
			}
			var n int64
			for {
				_, ok, err := it.Next()
				if err != nil {
					return nil, err
				}
				if !ok {
					break
				}
				n++
			}
			out = append(out, morselShape{bytes: m.SizeBytes(), records: n})
		}
	}
	return out, nil
}

const mib = 1 << 20

// morselMakespan schedules per-morsel durations on `slots` workers. Each
// morsel is priced with the cost model's read/parse/combine rates (the
// combine rate weighted by the real run's combine-inputs-per-record, an
// aggregate invariant to worker assignment); every slot then pays one
// task overhead plus its 1/slots share of the measured shuffle output —
// morsel-mode workers flush one local table each, so transfer is spread
// evenly rather than block-granular.
func morselMakespan(shapes []morselShape, js mr.JobStats, rep int64, slots int) float64 {
	m := costmodel.DefaultCluster().Machine
	var records, combine, bytesOut int64
	for _, t := range js.MapTasks {
		records += t.Records
		combine += t.CombineInputs
		bytesOut += t.BytesOut
	}
	var combineRate float64
	if records > 0 {
		combineRate = float64(combine) / float64(records)
	}
	durations := make([]float64, len(shapes))
	for i, s := range shapes {
		durations[i] = float64(s.bytes*rep)/(m.DiskMBps*mib) +
			float64(s.records*rep)*(m.MapSecPerRecord+combineRate*m.CombineSecPerRecord)
	}
	if slots < 1 {
		slots = 1
	}
	return costmodel.ScheduleLPT(durations, slots) +
		m.TaskOverheadSec +
		float64(bytesOut*rep)/float64(slots)/(m.NetMBps*mib)
}

// Improvement returns 1 - morsel/fixed at Workers[i].
func (p *MorselSkew) Improvement(i int) float64 {
	if p.FixedSeconds[i] == 0 {
		return 0
	}
	return 1 - p.MorselSeconds[i]/p.FixedSeconds[i]
}

// Table renders the comparison.
func (p *MorselSkew) Table() Table {
	t := Table{
		Title: fmt.Sprintf("Morsel vs fixed splits, zipf(%g) %s, %d records in %d blocks (map makespan, simulated seconds)",
			p.Zipf, p.Layout, p.Records, p.Splits),
		Columns: []string{"workers", "fixed (s)", "morsel (s)", "improvement", "steals", "spills", "fixed wall (s)", "morsel wall (s)"},
	}
	for i, w := range p.Workers {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", w),
			fmt.Sprintf("%.1f", p.FixedSeconds[i]),
			fmt.Sprintf("%.1f", p.MorselSeconds[i]),
			fmt.Sprintf("%.0f%%", 100*p.Improvement(i)),
			fmt.Sprintf("%d", p.Steals[i]),
			fmt.Sprintf("%d", p.Spills[i]),
			fmt.Sprintf("%.2f", p.FixedWall[i]),
			fmt.Sprintf("%.2f", p.MorselWall[i]),
		})
	}
	return t
}
