package workflow

import (
	"strings"
	"testing"

	"github.com/casm-project/casm/internal/cube"
	"github.com/casm-project/casm/internal/measure"
)

// weblogSchema mirrors the paper's motivating example: (Keyword, PageCount,
// AdCount, Time) with the domains of Table I, scaled down.
func weblogSchema(t testing.TB) *cube.Schema {
	t.Helper()
	return cube.MustSchema(
		cube.MustAttribute("keyword", cube.Nominal, 1000,
			cube.Level{Name: "word", Span: 1},
			cube.Level{Name: "group", Span: 50},
		),
		cube.MustAttribute("pagecount", cube.Numeric, 201,
			cube.Level{Name: "value", Span: 1},
			cube.Level{Name: "level", Span: 67},
		),
		cube.MustAttribute("adcount", cube.Numeric, 201,
			cube.Level{Name: "value", Span: 1},
			cube.Level{Name: "level", Span: 67},
		),
		cube.TimeAttribute("time", 2),
	)
}

// weblogWorkflow builds the paper's M1–M4 query (Section I / Figure 1).
func weblogWorkflow(t testing.TB) *Workflow {
	t.Helper()
	s := weblogSchema(t)
	w := New(s)
	kwMinute := s.MustGrain(cube.GrainSpec{Attr: "keyword", Level: "word"}, cube.GrainSpec{Attr: "time", Level: "minute"})
	kwHour := s.MustGrain(cube.GrainSpec{Attr: "keyword", Level: "word"}, cube.GrainSpec{Attr: "time", Level: "hour"})
	ti, _ := s.AttrIndex("time")

	if err := w.AddBasic("M1", kwMinute, measure.Spec{Func: measure.Median}, "pagecount"); err != nil {
		t.Fatal(err)
	}
	if err := w.AddBasic("M2", kwHour, measure.Spec{Func: measure.Median}, "adcount"); err != nil {
		t.Fatal(err)
	}
	if err := w.AddSelf("M3", kwMinute, measure.Ratio(), "M1", "M2"); err != nil {
		t.Fatal(err)
	}
	if err := w.AddSliding("M4", kwMinute, measure.Spec{Func: measure.Avg}, "M3",
		RangeAnn{Attr: ti, Low: -9, High: 0}); err != nil {
		t.Fatal(err)
	}
	return w
}

func TestWeblogWorkflow(t *testing.T) {
	w := weblogWorkflow(t)
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	order, err := w.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 4 {
		t.Fatalf("got %d measures", len(order))
	}
	if !w.HasSibling() {
		t.Error("M4 is a sibling measure")
	}
	if got := len(w.Basics()); got != 2 {
		t.Errorf("basics = %d, want 2", got)
	}
	if got := len(w.Grains()); got != 2 {
		t.Errorf("distinct grains = %d, want 2 (kw-minute, kw-hour)", got)
	}
	m4, ok := w.Measure("M4")
	if !ok || m4.Kind != Sliding {
		t.Fatalf("M4 lookup failed: %v %v", m4, ok)
	}
	exp := w.Explain()
	for _, want := range []string{"M1", "median(pagecount)", "sibling", "avg(M3) over {time(-9,0)}", "ratio(M1, M2)"} {
		if !strings.Contains(exp, want) {
			t.Errorf("Explain missing %q:\n%s", want, exp)
		}
	}
}

func TestAddBasicValidation(t *testing.T) {
	s := weblogSchema(t)
	w := New(s)
	g := s.GrainAll()
	if err := w.AddBasic("", g, measure.Spec{Func: measure.Count}, ""); err == nil {
		t.Error("empty name accepted")
	}
	if err := w.AddBasic("m", g, measure.Spec{Func: "bogus"}, ""); err == nil {
		t.Error("bad agg accepted")
	}
	if err := w.AddBasic("m", g, measure.Spec{Func: measure.Sum}, ""); err == nil {
		t.Error("sum without input attribute accepted")
	}
	if err := w.AddBasic("m", g, measure.Spec{Func: measure.Sum}, "nope"); err == nil {
		t.Error("unknown input attribute accepted")
	}
	if err := w.AddBasic("m", cube.Grain{0}, measure.Spec{Func: measure.Count}, ""); err == nil {
		t.Error("wrong grain arity accepted")
	}
	if err := w.AddBasic("m", cube.Grain{9, 9, 9, 9}, measure.Spec{Func: measure.Count}, ""); err == nil {
		t.Error("invalid level accepted")
	}
	if err := w.AddBasic("m", g, measure.Spec{Func: measure.Count}, ""); err != nil {
		t.Errorf("valid basic rejected: %v", err)
	}
	if err := w.AddBasic("m", g, measure.Spec{Func: measure.Count}, ""); err == nil {
		t.Error("duplicate name accepted")
	}
}

func TestAddSelfValidation(t *testing.T) {
	s := weblogSchema(t)
	w := New(s)
	fine := s.MustGrain(cube.GrainSpec{Attr: "time", Level: "minute"})
	coarse := s.MustGrain(cube.GrainSpec{Attr: "time", Level: "hour"})
	if err := w.AddBasic("fine", fine, measure.Spec{Func: measure.Count}, ""); err != nil {
		t.Fatal(err)
	}
	if err := w.AddBasic("coarse", coarse, measure.Spec{Func: measure.Count}, ""); err != nil {
		t.Fatal(err)
	}
	if err := w.AddSelf("bad1", fine, nil, "fine"); err == nil {
		t.Error("nil expr accepted")
	}
	if err := w.AddSelf("bad2", fine, measure.Ratio()); err == nil {
		t.Error("no sources accepted")
	}
	if err := w.AddSelf("bad3", fine, measure.Ratio(), "fine"); err == nil {
		t.Error("arity mismatch accepted")
	}
	if err := w.AddSelf("bad4", fine, measure.Ident(), "nope"); err == nil {
		t.Error("unknown source accepted")
	}
	// Source strictly finer than the measure: invalid for self (that
	// derivation is a rollup, not a same-region lookup).
	if err := w.AddSelf("bad5", coarse, measure.Ident(), "fine"); err == nil {
		t.Error("self with strictly finer source accepted")
	}
	// Failed add must not leave the measure behind.
	if _, ok := w.Measure("bad5"); ok {
		t.Error("failed add left measure in workflow")
	}
	if err := w.AddSelf("ok", fine, measure.Ratio(), "fine", "coarse"); err != nil {
		t.Errorf("valid self rejected: %v", err)
	}
}

func TestAddRollupValidation(t *testing.T) {
	s := weblogSchema(t)
	w := New(s)
	fine := s.MustGrain(cube.GrainSpec{Attr: "time", Level: "minute"})
	coarse := s.MustGrain(cube.GrainSpec{Attr: "time", Level: "hour"})
	if err := w.AddBasic("b", fine, measure.Spec{Func: measure.Count}, ""); err != nil {
		t.Fatal(err)
	}
	if err := w.AddRollup("bad1", fine, measure.Spec{Func: measure.Sum}, "b"); err == nil {
		t.Error("same-grain rollup accepted")
	}
	other := s.MustGrain(cube.GrainSpec{Attr: "keyword", Level: "word"})
	if err := w.AddRollup("bad2", other, measure.Spec{Func: measure.Sum}, "b"); err == nil {
		t.Error("non-generalizing rollup accepted")
	}
	if err := w.AddRollup("ok", coarse, measure.Spec{Func: measure.Sum}, "b"); err != nil {
		t.Errorf("valid rollup rejected: %v", err)
	}
}

func TestAddInheritValidation(t *testing.T) {
	s := weblogSchema(t)
	w := New(s)
	fine := s.MustGrain(cube.GrainSpec{Attr: "time", Level: "minute"})
	coarse := s.MustGrain(cube.GrainSpec{Attr: "time", Level: "hour"})
	if err := w.AddBasic("b", coarse, measure.Spec{Func: measure.Count}, ""); err != nil {
		t.Fatal(err)
	}
	if err := w.AddInherit("bad1", coarse, "b"); err == nil {
		t.Error("same-grain inherit accepted")
	}
	if err := w.AddInherit("ok", fine, "b"); err != nil {
		t.Errorf("valid inherit rejected: %v", err)
	}
	m, _ := w.Measure("ok")
	if m.Kind != Inherit {
		t.Errorf("kind = %v", m.Kind)
	}
}

func TestAddSlidingValidation(t *testing.T) {
	s := weblogSchema(t)
	w := New(s)
	kwMinute := s.MustGrain(cube.GrainSpec{Attr: "keyword", Level: "word"}, cube.GrainSpec{Attr: "time", Level: "minute"})
	ti, _ := s.AttrIndex("time")
	ki, _ := s.AttrIndex("keyword")
	if err := w.AddBasic("b", kwMinute, measure.Spec{Func: measure.Count}, ""); err != nil {
		t.Fatal(err)
	}
	sum := measure.Spec{Func: measure.Sum}
	if err := w.AddSliding("bad1", kwMinute, sum, "b"); err == nil {
		t.Error("no annotations accepted")
	}
	if err := w.AddSliding("bad2", kwMinute, sum, "b", RangeAnn{Attr: ki, Low: 0, High: 1}); err == nil {
		t.Error("nominal annotation accepted")
	}
	if err := w.AddSliding("bad3", kwMinute, sum, "b", RangeAnn{Attr: ti, Low: 2, High: 1}); err == nil {
		t.Error("low > high accepted")
	}
	if err := w.AddSliding("bad4", kwMinute, sum, "b", RangeAnn{Attr: 99, Low: 0, High: 1}); err == nil {
		t.Error("attr out of range accepted")
	}
	pc, _ := s.AttrIndex("pagecount")
	if err := w.AddSliding("bad5", kwMinute, sum, "b", RangeAnn{Attr: pc, Low: 0, High: 1}); err == nil {
		t.Error("annotation on ALL-grain attribute accepted")
	}
	if err := w.AddSliding("bad6", kwMinute, sum, "b",
		RangeAnn{Attr: ti, Low: 0, High: 1}, RangeAnn{Attr: ti, Low: 0, High: 2}); err == nil {
		t.Error("duplicate annotation accepted")
	}
	// Grain mismatch with source.
	kwHour := s.MustGrain(cube.GrainSpec{Attr: "keyword", Level: "word"}, cube.GrainSpec{Attr: "time", Level: "hour"})
	if err := w.AddSliding("bad7", kwHour, sum, "b", RangeAnn{Attr: ti, Low: 0, High: 1}); err == nil {
		t.Error("grain mismatch accepted")
	}
	if err := w.AddSliding("ok", kwMinute, sum, "b", RangeAnn{Attr: ti, Low: -4, High: 0}); err != nil {
		t.Errorf("valid sliding rejected: %v", err)
	}
}

func TestValidateEmpty(t *testing.T) {
	w := New(weblogSchema(t))
	if err := w.Validate(); err == nil {
		t.Error("empty workflow validated")
	}
}

func TestFailedAddKeepsIndicesConsistent(t *testing.T) {
	s := weblogSchema(t)
	w := New(s)
	fine := s.MustGrain(cube.GrainSpec{Attr: "time", Level: "minute"})
	coarse := s.MustGrain(cube.GrainSpec{Attr: "time", Level: "hour"})
	if err := w.AddBasic("a", fine, measure.Spec{Func: measure.Count}, ""); err != nil {
		t.Fatal(err)
	}
	// This add fails post-insert (grain equality check) and must be rolled back.
	if err := w.AddRollup("mid", fine, measure.Spec{Func: measure.Sum}, "a"); err == nil {
		t.Fatal("expected failure")
	}
	if err := w.AddRollup("c", coarse, measure.Spec{Func: measure.Sum}, "a"); err != nil {
		t.Fatal(err)
	}
	m, ok := w.Measure("c")
	if !ok || m.Name != "c" {
		t.Fatalf("index corruption after rollback: %v %v", m, ok)
	}
	if _, err := w.TopoOrder(); err != nil {
		t.Fatal(err)
	}
}
