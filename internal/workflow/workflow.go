// Package workflow models the paper's aggregation workflows (ICDE'08
// Section II-A, Figure 1): DAGs whose nodes are measures defined over
// region sets and whose edges are one of the four relationships of
// Table II — self, child/parent, parent/child, and sibling (sliding
// window). Basic measures aggregate raw records; composite measures derive
// from their source measures.
package workflow

import (
	"fmt"
	"strings"

	"github.com/casm-project/casm/internal/cube"
	"github.com/casm-project/casm/internal/measure"
)

// Kind identifies how a measure derives its values (paper Table II).
type Kind int

const (
	// Basic measures aggregate the raw records contained in each region.
	Basic Kind = iota
	// Self measures evaluate a scalar expression over source measures of
	// the same region (or of its parent regions, when a source is defined
	// at a generalization — the paper's parent/child edge combined with a
	// self edge, as in the weblog example's M3 = M1/M2).
	Self
	// Rollup (child/parent) measures aggregate a source measure over all
	// child regions of each region.
	Rollup
	// Inherit (parent/child) measures copy the parent region's source
	// value down to each child region.
	Inherit
	// Sliding (sibling) measures aggregate a source measure over a window
	// of sibling regions identified by range annotations.
	Sliding
)

// String returns the paper's name for the relationship.
func (k Kind) String() string {
	switch k {
	case Basic:
		return "basic"
	case Self:
		return "self"
	case Rollup:
		return "child/parent"
	case Inherit:
		return "parent/child"
	case Sliding:
		return "sibling"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// RangeAnn is one attribute's range annotation {X:(low,high)} on a sibling
// edge: the window of an output region at coordinate c covers source
// regions at coordinates c+Low … c+High of the annotated attribute (at the
// measure's grain level for that attribute), other coordinates equal.
type RangeAnn struct {
	Attr int   // schema attribute index
	Low  int64 // inclusive offset, may be negative
	High int64 // inclusive offset, >= Low
}

// Measure is one node of an aggregation workflow.
type Measure struct {
	Name  string
	Grain cube.Grain
	Kind  Kind

	// Agg is the aggregate function for Basic, Rollup and Sliding kinds.
	Agg measure.Spec
	// InputAttr is the schema attribute a Basic measure aggregates, or -1
	// when the function is COUNT over records.
	InputAttr int
	// Expr combines source values for Self measures.
	Expr measure.Expr
	// Sources names the measures this one derives from, in Expr argument
	// order for Self; exactly one for Rollup/Inherit/Sliding.
	Sources []string
	// Window holds the sibling range annotations (Sliding only).
	Window []RangeAnn
}

// IsComposite reports whether the measure derives from other measures.
func (m *Measure) IsComposite() bool { return m.Kind != Basic }

// Workflow is a validated DAG of measures over one schema.
type Workflow struct {
	schema   *cube.Schema
	measures []*Measure
	byName   map[string]int
}

// New returns an empty workflow over the schema.
func New(schema *cube.Schema) *Workflow {
	return &Workflow{schema: schema, byName: make(map[string]int)}
}

// Schema returns the workflow's schema.
func (w *Workflow) Schema() *cube.Schema { return w.schema }

// Measures returns the measures in insertion order.
func (w *Workflow) Measures() []*Measure { return w.measures }

// Measure looks a measure up by name.
func (w *Workflow) Measure(name string) (*Measure, bool) {
	i, ok := w.byName[name]
	if !ok {
		return nil, false
	}
	return w.measures[i], true
}

func (w *Workflow) add(m *Measure) error {
	if m.Name == "" {
		return fmt.Errorf("workflow: measure name must be non-empty")
	}
	if _, dup := w.byName[m.Name]; dup {
		return fmt.Errorf("workflow: duplicate measure %q", m.Name)
	}
	if len(m.Grain) != w.schema.NumAttrs() {
		return fmt.Errorf("workflow: measure %q: grain arity %d, schema has %d attributes",
			m.Name, len(m.Grain), w.schema.NumAttrs())
	}
	for i, li := range m.Grain {
		if li < 0 || li >= w.schema.Attr(i).NumLevels() {
			return fmt.Errorf("workflow: measure %q: invalid level %d for attribute %q",
				m.Name, li, w.schema.Attr(i).Name())
		}
	}
	for _, src := range m.Sources {
		if _, ok := w.byName[src]; !ok {
			return fmt.Errorf("workflow: measure %q: unknown source %q (sources must be added first)", m.Name, src)
		}
	}
	w.byName[m.Name] = len(w.measures)
	w.measures = append(w.measures, m)
	return nil
}

func (w *Workflow) source(m *Measure, i int) *Measure {
	return w.measures[w.byName[m.Sources[i]]]
}

// AddBasic adds a basic measure aggregating attribute inputAttr (by name;
// "" means COUNT over records) at the given grain.
func (w *Workflow) AddBasic(name string, grain cube.Grain, agg measure.Spec, inputAttr string) error {
	if err := agg.Validate(); err != nil {
		return fmt.Errorf("workflow: measure %q: %w", name, err)
	}
	idx := -1
	if inputAttr != "" {
		i, ok := w.schema.AttrIndex(inputAttr)
		if !ok {
			return fmt.Errorf("workflow: measure %q: unknown input attribute %q", name, inputAttr)
		}
		idx = i
	} else if agg.Func != measure.Count {
		return fmt.Errorf("workflow: measure %q: %s needs an input attribute", name, agg)
	}
	return w.add(&Measure{Name: name, Grain: grain.Clone(), Kind: Basic, Agg: agg, InputAttr: idx})
}

// AddSelf adds a self measure combining the named sources with expr. Each
// source must be defined at the measure's grain or at a generalization of
// it (the latter realizes the paper's parent/child lookup inside a self
// expression, as in M3 = M1 / M2 with M2 at the hour grain).
func (w *Workflow) AddSelf(name string, grain cube.Grain, expr measure.Expr, sources ...string) error {
	if expr == nil {
		return fmt.Errorf("workflow: measure %q: nil expression", name)
	}
	if len(sources) == 0 {
		return fmt.Errorf("workflow: measure %q: self measure needs sources", name)
	}
	if a := expr.Arity(); a >= 0 && a != len(sources) {
		return fmt.Errorf("workflow: measure %q: expression %s takes %d args, got %d sources",
			name, expr, a, len(sources))
	}
	m := &Measure{Name: name, Grain: grain.Clone(), Kind: Self, Expr: expr, Sources: sources}
	if err := w.add(m); err != nil {
		return err
	}
	for i := range sources {
		src := w.source(m, i)
		if !src.Grain.GeneralizationOf(m.Grain) {
			w.remove(name)
			return fmt.Errorf("workflow: measure %q: source %q grain %s is not %s or a generalization of it",
				name, src.Name, w.schema.FormatGrain(src.Grain), w.schema.FormatGrain(m.Grain))
		}
	}
	return nil
}

// AddRollup adds a child/parent measure: agg over the source measure's
// values for all child regions. The source grain must be a strict
// specialization of the measure grain.
func (w *Workflow) AddRollup(name string, grain cube.Grain, agg measure.Spec, source string) error {
	if err := agg.Validate(); err != nil {
		return fmt.Errorf("workflow: measure %q: %w", name, err)
	}
	m := &Measure{Name: name, Grain: grain.Clone(), Kind: Rollup, Agg: agg, Sources: []string{source}}
	if err := w.add(m); err != nil {
		return err
	}
	src := w.source(m, 0)
	if !m.Grain.GeneralizationOf(src.Grain) || m.Grain.Equal(src.Grain) {
		w.remove(name)
		return fmt.Errorf("workflow: measure %q: rollup grain %s must strictly generalize source grain %s",
			name, w.schema.FormatGrain(m.Grain), w.schema.FormatGrain(src.Grain))
	}
	return nil
}

// AddInherit adds a parent/child measure: each region receives its parent
// region's source value. The source grain must strictly generalize the
// measure grain.
func (w *Workflow) AddInherit(name string, grain cube.Grain, source string) error {
	m := &Measure{Name: name, Grain: grain.Clone(), Kind: Inherit, Expr: measure.Ident(), Sources: []string{source}}
	if err := w.add(m); err != nil {
		return err
	}
	src := w.source(m, 0)
	if !src.Grain.GeneralizationOf(m.Grain) || src.Grain.Equal(m.Grain) {
		w.remove(name)
		return fmt.Errorf("workflow: measure %q: source grain %s must strictly generalize %s",
			name, w.schema.FormatGrain(src.Grain), w.schema.FormatGrain(m.Grain))
	}
	return nil
}

// AddSliding adds a sibling measure: agg over the source measure's values
// for the window of sibling regions given by the annotations. The source
// must share the measure's grain; annotated attributes must be ordered
// (numeric or temporal) and not at ALL in the grain.
func (w *Workflow) AddSliding(name string, grain cube.Grain, agg measure.Spec, source string, window ...RangeAnn) error {
	if err := agg.Validate(); err != nil {
		return fmt.Errorf("workflow: measure %q: %w", name, err)
	}
	if len(window) == 0 {
		return fmt.Errorf("workflow: measure %q: sibling measure needs at least one range annotation", name)
	}
	m := &Measure{Name: name, Grain: grain.Clone(), Kind: Sliding, Agg: agg,
		Sources: []string{source}, Window: append([]RangeAnn(nil), window...)}
	if err := w.add(m); err != nil {
		return err
	}
	src := w.source(m, 0)
	if !src.Grain.Equal(m.Grain) {
		w.remove(name)
		return fmt.Errorf("workflow: measure %q: sibling source grain %s must equal measure grain %s",
			name, w.schema.FormatGrain(src.Grain), w.schema.FormatGrain(m.Grain))
	}
	seen := map[int]bool{}
	for _, ann := range window {
		if ann.Attr < 0 || ann.Attr >= w.schema.NumAttrs() {
			w.remove(name)
			return fmt.Errorf("workflow: measure %q: annotation attribute index %d out of range", name, ann.Attr)
		}
		attr := w.schema.Attr(ann.Attr)
		if attr.Kind() == cube.Nominal {
			w.remove(name)
			return fmt.Errorf("workflow: measure %q: cannot annotate nominal attribute %q (closeness undefined)",
				name, attr.Name())
		}
		if m.Grain[ann.Attr] == attr.AllIndex() {
			w.remove(name)
			return fmt.Errorf("workflow: measure %q: annotated attribute %q is at ALL in the grain", name, attr.Name())
		}
		if ann.Low > ann.High {
			w.remove(name)
			return fmt.Errorf("workflow: measure %q: annotation low %d > high %d", name, ann.Low, ann.High)
		}
		if seen[ann.Attr] {
			w.remove(name)
			return fmt.Errorf("workflow: measure %q: duplicate annotation on attribute %q", name, attr.Name())
		}
		seen[ann.Attr] = true
	}
	return nil
}

// remove undoes the most recent add (used to keep the workflow consistent
// when post-add validation fails).
func (w *Workflow) remove(name string) {
	i := w.byName[name]
	delete(w.byName, name)
	w.measures = append(w.measures[:i], w.measures[i+1:]...)
	for n, j := range w.byName {
		if j > i {
			w.byName[n] = j - 1
		}
	}
}

// TopoOrder returns the measures in an order where every source precedes
// its dependents. Because sources must exist when a measure is added,
// insertion order already is such an order; the method exists so callers
// need not rely on that invariant and so imported workflows are verified.
func (w *Workflow) TopoOrder() ([]*Measure, error) {
	for i, m := range w.measures {
		for _, s := range m.Sources {
			if w.byName[s] >= i {
				return nil, fmt.Errorf("workflow: measure %q depends on later measure %q", m.Name, s)
			}
		}
	}
	return w.measures, nil
}

// Basics returns the basic measures.
func (w *Workflow) Basics() []*Measure {
	var out []*Measure
	for _, m := range w.measures {
		if m.Kind == Basic {
			out = append(out, m)
		}
	}
	return out
}

// HasSibling reports whether any measure uses the sibling relationship,
// which is what forces an overlapping distribution key (Section III-B.2).
func (w *Workflow) HasSibling() bool {
	for _, m := range w.measures {
		if m.Kind == Sliding {
			return true
		}
	}
	return false
}

// Grains returns the distinct grains of all measures.
func (w *Workflow) Grains() []cube.Grain {
	var out []cube.Grain
	for _, m := range w.measures {
		dup := false
		for _, g := range out {
			if g.Equal(m.Grain) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, m.Grain)
		}
	}
	return out
}

// Validate re-checks the whole workflow. Workflows built through the Add*
// methods are always valid; Validate supports programmatically assembled
// ones.
func (w *Workflow) Validate() error {
	if len(w.measures) == 0 {
		return fmt.Errorf("workflow: no measures")
	}
	if _, err := w.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// Explain renders the workflow as an indented textual description, one
// line per measure, in the style of the paper's Figure 1.
func (w *Workflow) Explain() string {
	var b strings.Builder
	for _, m := range w.measures {
		fmt.Fprintf(&b, "%-12s %s  %s", m.Name, w.schema.FormatGrain(m.Grain), m.Kind)
		switch m.Kind {
		case Basic:
			in := "*"
			if m.InputAttr >= 0 {
				in = w.schema.Attr(m.InputAttr).Name()
			}
			fmt.Fprintf(&b, " %s(%s)", m.Agg, in)
		case Self, Inherit:
			fmt.Fprintf(&b, " %s(%s)", m.Expr, strings.Join(m.Sources, ", "))
		case Rollup:
			fmt.Fprintf(&b, " %s(%s)", m.Agg, m.Sources[0])
		case Sliding:
			var anns []string
			for _, a := range m.Window {
				anns = append(anns, fmt.Sprintf("%s(%d,%d)", w.schema.Attr(a.Attr).Name(), a.Low, a.High))
			}
			fmt.Fprintf(&b, " %s(%s) over {%s}", m.Agg, m.Sources[0], strings.Join(anns, ", "))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
