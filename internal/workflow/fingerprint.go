package workflow

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"github.com/casm-project/casm/internal/cube"
)

// Canonical workflow fingerprints back the optimizer's keyed plan cache:
// two workflows that are structurally identical — the same schema, the
// same multiset of measure definitions, the same relation DAG — must map
// to the same fingerprint even when their measures carry different names
// or were added in a different (topologically valid) order, because the
// optimizer's decision depends only on structure, never on names.
//
// The canonical form replaces every measure name with a structural
// descriptor computed bottom-up over the DAG (a measure's descriptor
// embeds its sources' descriptors), orders the measures by descriptor,
// and prefixes the schema's own structural identity. Fingerprint hashes
// that form, so equal fingerprints mean equal canonical forms for any
// practical purpose (truncated SHA-256; no feasibility decision may hang
// off a weaker hash, since a colliding plan would execute silently wrong).

// CanonicalForm renders the workflow's normalized structural form: the
// schema identity followed by one line per measure, names replaced by
// descriptor-ordered indices. It errors only on a malformed DAG.
func CanonicalForm(w *Workflow) (string, error) {
	desc, err := describeMeasures(w)
	if err != nil {
		return "", err
	}
	// The canonical measure order is descriptor order; equal descriptors
	// are genuinely interchangeable, so the multiset is what is encoded.
	sorted := append([]string(nil), desc...)
	sort.Strings(sorted)
	var b strings.Builder
	b.WriteString(SchemaForm(w.schema))
	for i, d := range sorted {
		fmt.Fprintf(&b, "m%d %s\n", i, d)
	}
	return b.String(), nil
}

// describeMeasures computes each measure's structural descriptor in
// insertion order.
func describeMeasures(w *Workflow) ([]string, error) {
	if _, err := w.TopoOrder(); err != nil {
		return nil, err
	}
	desc := make([]string, len(w.measures))
	var describe func(i int) string
	describe = func(i int) string {
		if desc[i] != "" {
			return desc[i]
		}
		m := w.measures[i]
		var b strings.Builder
		switch m.Kind {
		case Basic:
			fmt.Fprintf(&b, "B|%s|%s|in=%d", grainForm(m.Grain), aggForm(m), m.InputAttr)
		case Self:
			fmt.Fprintf(&b, "S|%s|expr=%s", grainForm(m.Grain), m.Expr)
		case Rollup:
			fmt.Fprintf(&b, "R|%s|%s", grainForm(m.Grain), aggForm(m))
		case Inherit:
			fmt.Fprintf(&b, "I|%s", grainForm(m.Grain))
		case Sliding:
			fmt.Fprintf(&b, "W|%s|%s|win=", grainForm(m.Grain), aggForm(m))
			for k, ann := range m.Window {
				if k > 0 {
					b.WriteByte(';')
				}
				fmt.Fprintf(&b, "%d:%d:%d", ann.Attr, ann.Low, ann.High)
			}
		}
		// Source order is semantic (expression argument order), so the
		// sources embed in declaration order, each as its own descriptor.
		for _, s := range m.Sources {
			fmt.Fprintf(&b, "|src=(%s)", describe(w.byName[s]))
		}
		desc[i] = b.String()
		return desc[i]
	}
	for i := range w.measures {
		describe(i)
	}
	return desc, nil
}

// CanonicalMeasures returns the workflow's measures in canonical
// (descriptor) order — the order CanonicalForm encodes them in. Two
// structurally identical workflows yield positionally equivalent lists
// even when their measure names differ, which is what lets a
// fingerprint-keyed result cache store rows under canonical measure
// indices and map them back to whatever names the probing workflow
// uses. Equal descriptors are genuinely interchangeable (identical
// definitions produce identical rows), so their relative order doesn't
// matter; insertion order breaks the tie deterministically.
func CanonicalMeasures(w *Workflow) ([]*Measure, error) {
	desc, err := describeMeasures(w)
	if err != nil {
		return nil, err
	}
	idx := make([]int, len(desc))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return desc[idx[a]] < desc[idx[b]] })
	out := make([]*Measure, len(idx))
	for i, j := range idx {
		out[i] = w.measures[j]
	}
	return out, nil
}

// Fingerprint returns the canonical workflow fingerprint: a 128-bit hex
// digest of CanonicalForm, stable across processes and runs.
func Fingerprint(w *Workflow) (string, error) {
	form, err := CanonicalForm(w)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256([]byte(form))
	return hex.EncodeToString(sum[:16]), nil
}

// SchemaDigest returns a 128-bit hex digest of a schema's structural
// identity (SchemaForm). The block store records it per dataset so a
// restarted service can verify a registration's schema matches the
// ingested data without rereading it.
func SchemaDigest(s *cube.Schema) string {
	sum := sha256.Sum256([]byte(SchemaForm(s)))
	return hex.EncodeToString(sum[:16])
}

// SchemaForm renders a schema's structural identity: every attribute's
// name, kind, cardinality, and hierarchy, with irregular (table-driven)
// hierarchies identified by their full assignment mapping — two schemas
// share a SchemaForm exactly when they induce the same cube space.
func SchemaForm(s *cube.Schema) string {
	var b strings.Builder
	for i := 0; i < s.NumAttrs(); i++ {
		a := s.Attr(i)
		fmt.Fprintf(&b, "a%d %s|%d|card=%d|", i, a.Name(), int(a.Kind()), a.Card())
		// CardAt (not FinestUnits, undefined for irregular levels) fixes
		// each level's structure: with Card known, the coordinate counts
		// determine every regular level's span.
		for l := 0; l < a.NumLevels(); l++ {
			if l > 0 {
				b.WriteByte('<')
			}
			fmt.Fprintf(&b, "%s:%d", a.Level(l).Name, a.CardAt(l))
		}
		if a.Mapped() {
			fmt.Fprintf(&b, "|map=%x", mappedDigest(a))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// mappedDigest hashes an irregular attribute's value→coordinate tables:
// two mapped attributes with equal spans but different assignments induce
// different regions, so the tables are part of schema identity.
func mappedDigest(a *cube.Attribute) []byte {
	h := sha256.New()
	buf := make([]byte, 0, 16)
	for l := 1; l < a.NumLevels(); l++ {
		for v := int64(0); v < a.Card(); v++ {
			buf = appendInt(buf[:0], a.Roll(v, l))
			h.Write(buf)
		}
	}
	return h.Sum(nil)[:8]
}

func appendInt(dst []byte, v int64) []byte {
	return append(dst,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func grainForm(g cube.Grain) string {
	parts := make([]string, len(g))
	for i, l := range g {
		parts[i] = fmt.Sprintf("%d", l)
	}
	return "g[" + strings.Join(parts, ",") + "]"
}

func aggForm(m *Measure) string {
	return fmt.Sprintf("agg=%s:%g", m.Agg.Func, m.Agg.Arg)
}
