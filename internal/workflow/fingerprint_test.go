package workflow

import (
	"testing"

	"github.com/casm-project/casm/internal/cube"
	"github.com/casm-project/casm/internal/measure"
)

func fpSchema(t testing.TB) *cube.Schema {
	t.Helper()
	return cube.MustSchema(
		cube.MustAttribute("kw", cube.Nominal, 100,
			cube.Level{Name: "word", Span: 1}, cube.Level{Name: "group", Span: 10}),
		cube.MustAttribute("amt", cube.Numeric, 64,
			cube.Level{Name: "v", Span: 1}, cube.Level{Name: "band", Span: 8}),
		cube.TimeAttribute("time", 2),
	)
}

// buildFP assembles a small composite workflow with the given measure
// names, so tests can produce structurally identical twins under
// different naming.
func buildFP(t *testing.T, s *cube.Schema, n1, n2, n3 string) *Workflow {
	t.Helper()
	w := New(s)
	fine := s.GrainFinest()
	coarse := s.GrainAll()
	ti, _ := s.AttrIndex("time")
	coarse[ti] = 0
	if err := w.AddBasic(n1, fine, measure.Spec{Func: measure.Sum}, "amt"); err != nil {
		t.Fatal(err)
	}
	if err := w.AddRollup(n2, coarse, measure.Spec{Func: measure.Max}, n1); err != nil {
		t.Fatal(err)
	}
	if err := w.AddSliding(n3, fine, measure.Spec{Func: measure.Avg}, n1,
		RangeAnn{Attr: ti, Low: -3, High: 0}); err != nil {
		t.Fatal(err)
	}
	return w
}

func mustFP(t *testing.T, w *Workflow) string {
	t.Helper()
	fp, err := Fingerprint(w)
	if err != nil {
		t.Fatal(err)
	}
	return fp
}

func TestFingerprintRenameInvariant(t *testing.T) {
	s := fpSchema(t)
	a := buildFP(t, s, "m1", "m2", "m3")
	b := buildFP(t, s, "total", "peak", "trend")
	if mustFP(t, a) != mustFP(t, b) {
		t.Error("renaming measures changed the fingerprint")
	}
}

func TestFingerprintStructureSensitive(t *testing.T) {
	s := fpSchema(t)
	base := mustFP(t, buildFP(t, s, "m1", "m2", "m3"))

	// Different aggregate.
	w := New(s)
	fine := s.GrainFinest()
	coarse := s.GrainAll()
	ti, _ := s.AttrIndex("time")
	coarse[ti] = 0
	if err := w.AddBasic("m1", fine, measure.Spec{Func: measure.Avg}, "amt"); err != nil {
		t.Fatal(err)
	}
	if err := w.AddRollup("m2", coarse, measure.Spec{Func: measure.Max}, "m1"); err != nil {
		t.Fatal(err)
	}
	if err := w.AddSliding("m3", fine, measure.Spec{Func: measure.Avg}, "m1",
		RangeAnn{Attr: ti, Low: -3, High: 0}); err != nil {
		t.Fatal(err)
	}
	if mustFP(t, w) == base {
		t.Error("changing an aggregate kept the fingerprint")
	}

	// Different window bounds.
	w2 := buildFP(t, s, "m1", "m2", "m3x")
	w2a := New(s)
	if err := w2a.AddBasic("m1", fine, measure.Spec{Func: measure.Sum}, "amt"); err != nil {
		t.Fatal(err)
	}
	if err := w2a.AddRollup("m2", coarse, measure.Spec{Func: measure.Max}, "m1"); err != nil {
		t.Fatal(err)
	}
	if err := w2a.AddSliding("m3", fine, measure.Spec{Func: measure.Avg}, "m1",
		RangeAnn{Attr: ti, Low: -5, High: 0}); err != nil {
		t.Fatal(err)
	}
	if mustFP(t, w2a) == mustFP(t, w2) {
		t.Error("changing the window bounds kept the fingerprint")
	}

	// Dropping a measure.
	w3 := New(s)
	if err := w3.AddBasic("m1", fine, measure.Spec{Func: measure.Sum}, "amt"); err != nil {
		t.Fatal(err)
	}
	if err := w3.AddRollup("m2", coarse, measure.Spec{Func: measure.Max}, "m1"); err != nil {
		t.Fatal(err)
	}
	if mustFP(t, w3) == base {
		t.Error("dropping a measure kept the fingerprint")
	}
}

func TestFingerprintInsertionOrderInvariant(t *testing.T) {
	s := fpSchema(t)
	fine := s.GrainFinest()
	// Two independent basics added in opposite orders: same structure,
	// same fingerprint.
	a := New(s)
	if err := a.AddBasic("x", fine, measure.Spec{Func: measure.Sum}, "amt"); err != nil {
		t.Fatal(err)
	}
	if err := a.AddBasic("y", fine, measure.Spec{Func: measure.Count}, ""); err != nil {
		t.Fatal(err)
	}
	b := New(s)
	if err := b.AddBasic("y", fine, measure.Spec{Func: measure.Count}, ""); err != nil {
		t.Fatal(err)
	}
	if err := b.AddBasic("x", fine, measure.Spec{Func: measure.Sum}, "amt"); err != nil {
		t.Fatal(err)
	}
	if mustFP(t, a) != mustFP(t, b) {
		t.Error("insertion order changed the fingerprint")
	}
}

func TestFingerprintSchemaSensitive(t *testing.T) {
	s1 := fpSchema(t)
	s2 := cube.MustSchema(
		cube.MustAttribute("kw", cube.Nominal, 200, // different cardinality
			cube.Level{Name: "word", Span: 1}, cube.Level{Name: "group", Span: 10}),
		cube.MustAttribute("amt", cube.Numeric, 64,
			cube.Level{Name: "v", Span: 1}, cube.Level{Name: "band", Span: 8}),
		cube.TimeAttribute("time", 2),
	)
	a := buildFP(t, s1, "m1", "m2", "m3")
	b := buildFP(t, s2, "m1", "m2", "m3")
	if mustFP(t, a) == mustFP(t, b) {
		t.Error("different schemas produced the same fingerprint")
	}
}

func TestFingerprintMappedSchemaSensitive(t *testing.T) {
	mk := func(assign []int64) *cube.Schema {
		return cube.MustSchema(
			cube.MustMappedAttribute("prod", int64(len(assign)),
				cube.MappedLevel{Name: "cat", Assign: assign}),
			cube.MustAttribute("amt", cube.Numeric, 8, cube.Level{Name: "v", Span: 1}),
		)
	}
	a1 := []int64{0, 0, 1, 1, 2, 2}
	a2 := []int64{0, 1, 1, 2, 2, 0} // same spans, different grouping
	wa := New(mk(a1))
	if err := wa.AddBasic("m", wa.Schema().GrainAll(), measure.Spec{Func: measure.Count}, ""); err != nil {
		t.Fatal(err)
	}
	wb := New(mk(a2))
	if err := wb.AddBasic("m", wb.Schema().GrainAll(), measure.Spec{Func: measure.Count}, ""); err != nil {
		t.Fatal(err)
	}
	if mustFP(t, wa) == mustFP(t, wb) {
		t.Error("different irregular-hierarchy assignments produced the same fingerprint")
	}
}
