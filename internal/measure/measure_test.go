package measure

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

var allSpecs = []Spec{
	{Func: Count}, {Func: Sum}, {Func: Min}, {Func: Max},
	{Func: Avg}, {Func: Var}, {Func: StdDev}, {Func: Median},
	{Func: Quantile, Arg: 0.9}, {Func: CountDistinct},
}

func TestValidate(t *testing.T) {
	for _, s := range allSpecs {
		if err := s.Validate(); err != nil {
			t.Errorf("%v: %v", s, err)
		}
	}
	bad := []Spec{
		{Func: "bogus"},
		{Func: Quantile, Arg: 0},
		{Func: Quantile, Arg: 1},
		{Func: Quantile, Arg: -0.5},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("%v: expected error", s)
		}
	}
}

func TestClassification(t *testing.T) {
	cases := map[Func]Class{
		Count: Distributive, Sum: Distributive, Min: Distributive, Max: Distributive,
		Avg: Algebraic, Var: Algebraic, StdDev: Algebraic,
		Median: Holistic, Quantile: Holistic, CountDistinct: Holistic,
	}
	for f, want := range cases {
		s := Spec{Func: f, Arg: 0.5}
		if got := s.Class(); got != want {
			t.Errorf("%s class = %v, want %v", f, got, want)
		}
		if s.Mergeable() != (want != Holistic) {
			t.Errorf("%s mergeable inconsistent with class", f)
		}
	}
}

// reference computes the aggregate over the whole slice directly.
func reference(s Spec, vals []float64) float64 {
	n := len(vals)
	if n == 0 {
		if s.Func == Count || s.Func == Sum {
			return 0
		}
		return math.NaN()
	}
	switch s.Func {
	case Count:
		return float64(n)
	case Sum, Avg, Var, StdDev:
		var sum float64
		for _, v := range vals {
			sum += v
		}
		if s.Func == Sum {
			return sum
		}
		mean := sum / float64(n)
		if s.Func == Avg {
			return mean
		}
		var ss float64
		for _, v := range vals {
			d := v - mean
			ss += d * d
		}
		variance := ss / float64(n)
		if s.Func == Var {
			return variance
		}
		return math.Sqrt(variance)
	case Min:
		m := vals[0]
		for _, v := range vals {
			if v < m {
				m = v
			}
		}
		return m
	case Max:
		m := vals[0]
		for _, v := range vals {
			if v > m {
				m = v
			}
		}
		return m
	case Median:
		cp := append([]float64(nil), vals...)
		sort.Float64s(cp)
		if n%2 == 1 {
			return cp[n/2]
		}
		return (cp[n/2-1] + cp[n/2]) / 2
	case Quantile:
		cp := append([]float64(nil), vals...)
		sort.Float64s(cp)
		idx := int(math.Ceil(s.Arg*float64(n))) - 1
		if idx < 0 {
			idx = 0
		}
		return cp[idx]
	case CountDistinct:
		seen := map[float64]bool{}
		for _, v := range vals {
			seen[v] = true
		}
		return float64(len(seen))
	}
	panic("unreachable")
}

func close2(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*math.Max(scale, 1)
}

func TestAggregatorsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, s := range allSpecs {
		for trial := 0; trial < 30; trial++ {
			n := rng.Intn(50)
			vals := make([]float64, n)
			for i := range vals {
				vals[i] = float64(rng.Intn(2001)-1000) / 10
			}
			agg := s.New()
			for _, v := range vals {
				agg.Add(v)
			}
			if agg.N() != int64(n) {
				t.Fatalf("%v: N = %d, want %d", s, agg.N(), n)
			}
			got, want := agg.Result(), reference(s, vals)
			if !close2(got, want) {
				t.Errorf("%v over %v: got %v, want %v", s, vals, got, want)
			}
		}
	}
}

func TestEmptyAggregates(t *testing.T) {
	for _, s := range allSpecs {
		agg := s.New()
		r := agg.Result()
		switch s.Func {
		case Count, Sum:
			if r != 0 {
				t.Errorf("%v empty result = %v, want 0", s, r)
			}
		default:
			if !math.IsNaN(r) {
				t.Errorf("%v empty result = %v, want NaN", s, r)
			}
		}
	}
}

// TestStateMergeEquivalence is the property that justifies early
// aggregation: splitting the input arbitrarily, aggregating each part,
// serializing, and merging the states must equal whole-input aggregation.
// It must hold for every function (holistic included — the combiner just
// does not shrink holistic states).
func TestStateMergeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, s := range allSpecs {
		for trial := 0; trial < 25; trial++ {
			n := 1 + rng.Intn(60)
			vals := make([]float64, n)
			for i := range vals {
				vals[i] = float64(rng.Intn(400)) / 4
			}
			// Split into 1..5 random parts.
			parts := 1 + rng.Intn(5)
			whole := s.New()
			merged := s.New()
			for _, v := range vals {
				whole.Add(v)
			}
			start := 0
			for p := 0; p < parts; p++ {
				end := start + (n-start)/(parts-p)
				if p == parts-1 {
					end = n
				}
				part := s.New()
				for _, v := range vals[start:end] {
					part.Add(v)
				}
				if err := merged.MergeState(part.State()); err != nil {
					t.Fatalf("%v: merge: %v", s, err)
				}
				start = end
			}
			if merged.N() != whole.N() {
				t.Fatalf("%v: merged N %d != whole N %d", s, merged.N(), whole.N())
			}
			if !close2(merged.Result(), whole.Result()) {
				t.Errorf("%v: merged %v != whole %v (vals %v, parts %d)",
					s, merged.Result(), whole.Result(), vals, parts)
			}
		}
	}
}

func TestMergeStateErrors(t *testing.T) {
	for _, s := range allSpecs {
		agg := s.New()
		if err := agg.MergeState(nil); err == nil && s.Func != Count {
			// count of an empty buffer still needs one varint byte
			t.Errorf("%v: empty state accepted", s)
		}
		if err := agg.MergeState([]byte{0xff}); err == nil {
			t.Errorf("%v: garbage state accepted", s)
		}
	}
}

func TestMergeEmptyExtreme(t *testing.T) {
	// Merging an empty min/max partial state must not poison the result.
	a := Spec{Func: Min}.New()
	empty := Spec{Func: Min}.New()
	a.Add(5)
	if err := a.MergeState(empty.State()); err != nil {
		t.Fatal(err)
	}
	if got := a.Result(); got != 5 {
		t.Errorf("min after empty merge = %v, want 5", got)
	}
	// And merging into an empty aggregator adopts the other side.
	b := Spec{Func: Max}.New()
	part := Spec{Func: Max}.New()
	part.Add(-3)
	if err := b.MergeState(part.State()); err != nil {
		t.Fatal(err)
	}
	if got := b.Result(); got != -3 {
		t.Errorf("max adopt = %v, want -3", got)
	}
}

func TestQuantileRanks(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		rank float64
		want float64
	}{
		{0.1, 1}, {0.25, 3}, {0.5, 5}, {0.9, 9}, {0.99, 10},
	}
	for _, c := range cases {
		agg := Spec{Func: Quantile, Arg: c.rank}.New()
		for _, v := range vals {
			agg.Add(v)
		}
		if got := agg.Result(); got != c.want {
			t.Errorf("q(%v) = %v, want %v", c.rank, got, c.want)
		}
	}
}

func TestVarianceNonNegativeProperty(t *testing.T) {
	f := func(raw []float64) bool {
		agg := Spec{Func: Var}.New()
		any := false
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				continue
			}
			agg.Add(v)
			any = true
		}
		if !any {
			return true
		}
		return agg.Result() >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestExpressions(t *testing.T) {
	cases := []struct {
		e    Expr
		args []float64
		want float64
	}{
		{Ratio(), []float64{6, 3}, 2},
		{Ratio(), []float64{1, 0}, math.NaN()},
		{Ratio(), []float64{1}, math.NaN()},
		{Add(), []float64{1, 2, 3}, 6},
		{Add(), nil, 0},
		{Sub(), []float64{5, 3}, 2},
		{Sub(), []float64{5}, math.NaN()},
		{Mul(), []float64{2, 3, 4}, 24},
		{Ident(), []float64{7}, 7},
		{Ident(), []float64{7, 8}, math.NaN()},
		{Scale(2.5), []float64{4}, 10},
		{FuncExpr{Name: "hyp", NArgs: 2, Fn: func(a []float64) float64 {
			return math.Hypot(a[0], a[1])
		}}, []float64{3, 4}, 5},
	}
	for _, c := range cases {
		got := c.e.Eval(c.args)
		if !close2(got, c.want) {
			t.Errorf("%s%v = %v, want %v", c.e, c.args, got, c.want)
		}
	}
}

func TestExprNaNPropagation(t *testing.T) {
	for _, e := range []Expr{Ratio(), Add(), Sub(), Mul(), Ident(), Scale(3)} {
		args := make([]float64, 2)
		if e.Arity() == 1 {
			args = args[:1]
		}
		args[0] = math.NaN()
		if got := e.Eval(args); !math.IsNaN(got) {
			t.Errorf("%s did not propagate NaN: %v", e, got)
		}
	}
}

func TestExprByName(t *testing.T) {
	for _, name := range []string{"ratio", "ADD", "Sub", "mul", "ident"} {
		if _, err := ExprByName(name); err != nil {
			t.Errorf("%q: %v", name, err)
		}
	}
	if _, err := ExprByName("pow"); err == nil {
		t.Error("unknown expr accepted")
	}
}

func TestSpecString(t *testing.T) {
	if got := (Spec{Func: Median}).String(); got != "median" {
		t.Errorf("got %q", got)
	}
	if got := (Spec{Func: Quantile, Arg: 0.9}).String(); got != "quantile(0.9)" {
		t.Errorf("got %q", got)
	}
}

func TestCountDistinct(t *testing.T) {
	s := Spec{Func: CountDistinct}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Class() != Holistic || s.Mergeable() {
		t.Error("distinct must be holistic")
	}
	agg := s.New()
	for _, v := range []float64{1, 2, 2, 3, 1, 1} {
		agg.Add(v)
	}
	if got := agg.Result(); got != 3 {
		t.Errorf("distinct = %v, want 3", got)
	}
	if agg.N() != 6 {
		t.Errorf("N = %d", agg.N())
	}
	// State merge unions the sets.
	other := s.New()
	other.Add(3)
	other.Add(4)
	if err := agg.MergeState(other.State()); err != nil {
		t.Fatal(err)
	}
	if got := agg.Result(); got != 4 {
		t.Errorf("merged distinct = %v, want 4", got)
	}
	if math.IsNaN(s.New().Result()) != true {
		t.Error("empty distinct not NaN")
	}
	if err := s.New().MergeState([]byte{0xff}); err == nil {
		t.Error("garbage state accepted")
	}
}
