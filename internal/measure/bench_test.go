package measure

import "testing"

// BenchmarkAggregators measures per-value aggregation cost by class.
func BenchmarkAggregators(b *testing.B) {
	for _, s := range []Spec{
		{Func: Sum}, {Func: Avg}, {Func: Median}, {Func: CountDistinct},
	} {
		b.Run(string(s.Func), func(b *testing.B) {
			agg := s.New()
			for i := 0; i < b.N; i++ {
				agg.Add(float64(i % 1000))
			}
			_ = agg.Result()
		})
	}
}

// BenchmarkStateMerge measures the combiner's merge path.
func BenchmarkStateMerge(b *testing.B) {
	for _, s := range []Spec{{Func: Sum}, {Func: Avg}} {
		b.Run(string(s.Func), func(b *testing.B) {
			part := s.New()
			for i := 0; i < 100; i++ {
				part.Add(float64(i))
			}
			state := part.State()
			agg := s.New()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := agg.MergeState(state); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
