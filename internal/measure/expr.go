package measure

import (
	"fmt"
	"math"
	"strings"
)

// Expr is a scalar expression over the results of a measure's source
// measures, used by the paper's "self" relationship (Table II): the
// measure of a region is computed from other measures of the same region,
// e.g. M3 = M1 / M2 in the weblog example.
//
// Eval receives the source values in declaration order. A missing source
// (region absent from a source measure's result) arrives as NaN, and
// expressions propagate NaN.
type Expr interface {
	Eval(args []float64) float64
	// Arity returns the number of source values consumed, or -1 if the
	// expression accepts any number.
	Arity() int
	String() string
}

type ratioExpr struct{}

// Ratio returns args[0] / args[1]; division by zero yields NaN, matching
// SQL semantics where the surrounding measure record is then suppressed.
func Ratio() Expr { return ratioExpr{} }

func (ratioExpr) Arity() int     { return 2 }
func (ratioExpr) String() string { return "ratio" }
func (ratioExpr) Eval(args []float64) float64 {
	if len(args) != 2 || args[1] == 0 {
		return math.NaN()
	}
	return args[0] / args[1]
}

type addExpr struct{}

// Add returns the sum of all source values.
func Add() Expr { return addExpr{} }

func (addExpr) Arity() int     { return -1 }
func (addExpr) String() string { return "add" }
func (addExpr) Eval(args []float64) float64 {
	s := 0.0
	for _, a := range args {
		s += a
	}
	return s
}

type subExpr struct{}

// Sub returns args[0] − args[1].
func Sub() Expr { return subExpr{} }

func (subExpr) Arity() int     { return 2 }
func (subExpr) String() string { return "sub" }
func (subExpr) Eval(args []float64) float64 {
	if len(args) != 2 {
		return math.NaN()
	}
	return args[0] - args[1]
}

type mulExpr struct{}

// Mul returns the product of all source values.
func Mul() Expr { return mulExpr{} }

func (mulExpr) Arity() int     { return -1 }
func (mulExpr) String() string { return "mul" }
func (mulExpr) Eval(args []float64) float64 {
	p := 1.0
	for _, a := range args {
		p *= a
	}
	return p
}

type identExpr struct{}

// Ident returns its single source value unchanged; useful to re-grain a
// measure (parent→child broadcast with no arithmetic).
func Ident() Expr { return identExpr{} }

func (identExpr) Arity() int     { return 1 }
func (identExpr) String() string { return "ident" }
func (identExpr) Eval(args []float64) float64 {
	if len(args) != 1 {
		return math.NaN()
	}
	return args[0]
}

type scaleExpr struct{ k float64 }

// Scale returns k · args[0].
func Scale(k float64) Expr { return scaleExpr{k} }

func (e scaleExpr) Arity() int     { return 1 }
func (e scaleExpr) String() string { return fmt.Sprintf("scale(%g)", e.k) }
func (e scaleExpr) Eval(args []float64) float64 {
	if len(args) != 1 {
		return math.NaN()
	}
	return e.k * args[0]
}

// FuncExpr wraps an arbitrary Go function as an Expr, for callers that
// need bespoke per-region arithmetic.
type FuncExpr struct {
	Name  string
	NArgs int // -1 for variadic
	Fn    func(args []float64) float64
}

// Arity implements Expr.
func (e FuncExpr) Arity() int { return e.NArgs }

// String implements Expr.
func (e FuncExpr) String() string {
	if e.Name == "" {
		return "func"
	}
	return e.Name
}

// Eval implements Expr.
func (e FuncExpr) Eval(args []float64) float64 {
	if e.NArgs >= 0 && len(args) != e.NArgs {
		return math.NaN()
	}
	return e.Fn(args)
}

// ExprByName resolves the named builtin expression, as used by the CQL
// parser. Supported names: ratio, add, sub, mul, ident.
func ExprByName(name string) (Expr, error) {
	switch strings.ToLower(name) {
	case "ratio":
		return Ratio(), nil
	case "add":
		return Add(), nil
	case "sub":
		return Sub(), nil
	case "mul":
		return Mul(), nil
	case "ident":
		return Ident(), nil
	default:
		return nil, fmt.Errorf("measure: unknown expression %q", name)
	}
}
