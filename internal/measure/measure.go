// Package measure implements the aggregate functions used by composite
// subset measure queries, including the algebraic/distributive/holistic
// classification that governs whether map-side early aggregation (the
// paper's Section III-D combiner) is applicable, and serializable partial
// states so that partial aggregates can travel through the shuffle.
package measure

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// Class classifies an aggregate function following Gray et al.'s data-cube
// taxonomy, which the paper uses to gate early aggregation.
type Class int

const (
	// Distributive: partial aggregates combine with the same function
	// (COUNT, SUM, MIN, MAX).
	Distributive Class = iota
	// Algebraic: a constant-size tuple of distributive aggregates suffices
	// (AVG, VAR, STDDEV).
	Algebraic
	// Holistic: no constant-size partial state exists (MEDIAN, QUANTILE);
	// early aggregation yields no data reduction.
	Holistic
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case Distributive:
		return "distributive"
	case Algebraic:
		return "algebraic"
	case Holistic:
		return "holistic"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Func names an aggregate function.
type Func string

// Supported aggregate functions.
const (
	Count  Func = "count"
	Sum    Func = "sum"
	Min    Func = "min"
	Max    Func = "max"
	Avg    Func = "avg"
	Var    Func = "var"
	StdDev Func = "stddev"
	Median Func = "median"
	// Quantile takes Spec.Arg in (0,1) as the quantile rank.
	Quantile Func = "quantile"
	// CountDistinct counts the number of distinct input values (holistic:
	// its partial state is the distinct-value set itself).
	CountDistinct Func = "distinct"
)

// Spec fully describes an aggregate function instance.
type Spec struct {
	Func Func
	// Arg parameterizes Quantile (the rank in (0,1)); ignored otherwise.
	Arg float64
}

// Validate reports whether the spec names a supported function with a
// valid parameter.
func (s Spec) Validate() error {
	switch s.Func {
	case Count, Sum, Min, Max, Avg, Var, StdDev, Median, CountDistinct:
		return nil
	case Quantile:
		if s.Arg <= 0 || s.Arg >= 1 {
			return fmt.Errorf("measure: quantile rank %v outside (0,1)", s.Arg)
		}
		return nil
	default:
		return fmt.Errorf("measure: unknown aggregate function %q", s.Func)
	}
}

// Class returns the function's classification.
func (s Spec) Class() Class {
	switch s.Func {
	case Count, Sum, Min, Max:
		return Distributive
	case Avg, Var, StdDev:
		return Algebraic
	default:
		return Holistic
	}
}

// Mergeable reports whether the engine may use early aggregation for this
// function: the paper requires the basic measure to be algebraic or
// distributive for the combiner to reduce data volume.
func (s Spec) Mergeable() bool { return s.Class() != Holistic }

// String renders the spec ("median", "quantile(0.9)").
func (s Spec) String() string {
	if s.Func == Quantile {
		return fmt.Sprintf("quantile(%g)", s.Arg)
	}
	return string(s.Func)
}

// Aggregator accumulates values for one (measure, region) group. All
// implementations support merging serialized partial states, so the same
// type serves the mapper-side combiner, the shuffle, and the reducer.
type Aggregator interface {
	// Add absorbs one raw value.
	Add(v float64)
	// State serializes the current partial aggregate.
	State() []byte
	// MergeState absorbs a partial aggregate produced by State.
	MergeState(state []byte) error
	// Result finalizes the aggregate. For an empty group the result is 0
	// for Count/Sum and NaN otherwise.
	Result() float64
	// N reports how many raw values have been absorbed.
	N() int64
	// Reset returns the aggregator to its freshly constructed state while
	// retaining internal capacity (buffers, map storage), so pools can
	// recycle aggregators across groups. After Reset the aggregator must
	// be indistinguishable from Spec.New()'s result to every other method.
	Reset()
}

// New returns a fresh aggregator for the spec. It panics if the spec is
// invalid; call Validate first for untrusted input.
func (s Spec) New() Aggregator {
	if err := s.Validate(); err != nil {
		panic(err)
	}
	switch s.Func {
	case Count:
		return &countAgg{}
	case Sum:
		return &sumAgg{}
	case Min:
		return &extremeAgg{min: true}
	case Max:
		return &extremeAgg{}
	case Avg:
		return &momentAgg{kind: Avg}
	case Var:
		return &momentAgg{kind: Var}
	case StdDev:
		return &momentAgg{kind: StdDev}
	case Median:
		return &bufferAgg{rank: 0.5, median: true}
	case CountDistinct:
		return &distinctAgg{seen: make(map[float64]bool)}
	default: // Quantile
		return &bufferAgg{rank: s.Arg}
	}
}

// --- distributive ---

type countAgg struct{ n int64 }

func (a *countAgg) Add(float64)     { a.n++ }
func (a *countAgg) Reset()          { a.n = 0 }
func (a *countAgg) N() int64        { return a.n }
func (a *countAgg) Result() float64 { return float64(a.n) }
func (a *countAgg) State() []byte {
	var buf [binary.MaxVarintLen64]byte
	return buf[:binary.PutUvarint(buf[:], uint64(a.n))]
}
func (a *countAgg) MergeState(state []byte) error {
	v, n := binary.Uvarint(state)
	if n <= 0 {
		return fmt.Errorf("measure: bad count state")
	}
	a.n += int64(v)
	return nil
}

type sumAgg struct {
	n   int64
	sum float64
}

func (a *sumAgg) Add(v float64)   { a.n++; a.sum += v }
func (a *sumAgg) Reset()          { a.n = 0; a.sum = 0 }
func (a *sumAgg) N() int64        { return a.n }
func (a *sumAgg) Result() float64 { return a.sum }
func (a *sumAgg) State() []byte {
	buf := make([]byte, 0, 16)
	buf = appendUvarint(buf, uint64(a.n))
	buf = appendFloat(buf, a.sum)
	return buf
}
func (a *sumAgg) MergeState(state []byte) error {
	n, sum, _, err := readNFloat(state, 1)
	if err != nil {
		return fmt.Errorf("measure: bad sum state: %w", err)
	}
	a.n += n
	a.sum += sum[0]
	return nil
}

type extremeAgg struct {
	min bool
	n   int64
	val float64
}

func (a *extremeAgg) Add(v float64) {
	if a.n == 0 || (a.min && v < a.val) || (!a.min && v > a.val) {
		a.val = v
	}
	a.n++
}
func (a *extremeAgg) Reset()   { a.n = 0; a.val = 0 }
func (a *extremeAgg) N() int64 { return a.n }
func (a *extremeAgg) Result() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return a.val
}
func (a *extremeAgg) State() []byte {
	buf := make([]byte, 0, 16)
	buf = appendUvarint(buf, uint64(a.n))
	buf = appendFloat(buf, a.val)
	return buf
}
func (a *extremeAgg) MergeState(state []byte) error {
	n, vals, _, err := readNFloat(state, 1)
	if err != nil {
		return fmt.Errorf("measure: bad min/max state: %w", err)
	}
	if n == 0 {
		return nil
	}
	if a.n == 0 || (a.min && vals[0] < a.val) || (!a.min && vals[0] > a.val) {
		a.val = vals[0]
	}
	a.n += n
	return nil
}

// --- algebraic ---

type momentAgg struct {
	kind  Func
	n     int64
	sum   float64
	sumSq float64
}

func (a *momentAgg) Add(v float64) { a.n++; a.sum += v; a.sumSq += v * v }
func (a *momentAgg) Reset()        { a.n = 0; a.sum = 0; a.sumSq = 0 }
func (a *momentAgg) N() int64      { return a.n }
func (a *momentAgg) Result() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	mean := a.sum / float64(a.n)
	switch a.kind {
	case Avg:
		return mean
	case Var:
		v := a.sumSq/float64(a.n) - mean*mean
		if v < 0 { // numeric guard
			v = 0
		}
		return v
	default: // StdDev
		v := a.sumSq/float64(a.n) - mean*mean
		if v < 0 {
			v = 0
		}
		return math.Sqrt(v)
	}
}
func (a *momentAgg) State() []byte {
	buf := make([]byte, 0, 24)
	buf = appendUvarint(buf, uint64(a.n))
	buf = appendFloat(buf, a.sum)
	buf = appendFloat(buf, a.sumSq)
	return buf
}
func (a *momentAgg) MergeState(state []byte) error {
	n, vals, _, err := readNFloat(state, 2)
	if err != nil {
		return fmt.Errorf("measure: bad moment state: %w", err)
	}
	a.n += n
	a.sum += vals[0]
	a.sumSq += vals[1]
	return nil
}

// --- holistic ---

type bufferAgg struct {
	rank   float64
	median bool
	vals   []float64
}

func (a *bufferAgg) Add(v float64) { a.vals = append(a.vals, v) }
func (a *bufferAgg) Reset()        { a.vals = a.vals[:0] }
func (a *bufferAgg) N() int64      { return int64(len(a.vals)) }
func (a *bufferAgg) Result() float64 {
	n := len(a.vals)
	if n == 0 {
		return math.NaN()
	}
	cp := append([]float64(nil), a.vals...)
	sort.Float64s(cp)
	// MEDIAN uses midpoint interpolation for even n, matching the
	// conventional definition; QUANTILE uses pure nearest-rank.
	if a.median && n%2 == 0 {
		return (cp[n/2-1] + cp[n/2]) / 2
	}
	idx := int(math.Ceil(a.rank*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return cp[idx]
}
func (a *bufferAgg) State() []byte {
	buf := make([]byte, 0, 8+8*len(a.vals))
	buf = appendUvarint(buf, uint64(len(a.vals)))
	for _, v := range a.vals {
		buf = appendFloat(buf, v)
	}
	return buf
}
func (a *bufferAgg) MergeState(state []byte) error {
	n, rest, err := readUvarint(state)
	if err != nil {
		return fmt.Errorf("measure: bad buffer state: %w", err)
	}
	if uint64(len(rest)) < 8*n {
		return fmt.Errorf("measure: truncated buffer state")
	}
	for i := uint64(0); i < n; i++ {
		a.vals = append(a.vals, readFloat(rest[8*i:]))
	}
	return nil
}

type distinctAgg struct {
	n    int64
	seen map[float64]bool
}

func (a *distinctAgg) Add(v float64) { a.n++; a.seen[v] = true }
func (a *distinctAgg) Reset()        { a.n = 0; clear(a.seen) }
func (a *distinctAgg) N() int64      { return a.n }
func (a *distinctAgg) Result() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return float64(len(a.seen))
}
func (a *distinctAgg) State() []byte {
	buf := make([]byte, 0, 16+8*len(a.seen))
	buf = appendUvarint(buf, uint64(a.n))
	buf = appendUvarint(buf, uint64(len(a.seen)))
	for v := range a.seen {
		buf = appendFloat(buf, v)
	}
	return buf
}
func (a *distinctAgg) MergeState(state []byte) error {
	n, rest, err := readUvarint(state)
	if err != nil {
		return fmt.Errorf("measure: bad distinct state: %w", err)
	}
	k, rest, err := readUvarint(rest)
	if err != nil || uint64(len(rest)) < 8*k {
		return fmt.Errorf("measure: truncated distinct state")
	}
	a.n += int64(n)
	for i := uint64(0); i < k; i++ {
		a.seen[readFloat(rest[8*i:])] = true
	}
	return nil
}

// --- state codec helpers ---

func appendUvarint(buf []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	return append(buf, tmp[:binary.PutUvarint(tmp[:], v)]...)
}

func appendFloat(buf []byte, v float64) []byte {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(v))
	return append(buf, tmp[:]...)
}

func readFloat(b []byte) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

func readUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("truncated varint")
	}
	return v, b[n:], nil
}

// readNFloat decodes a count followed by k float64s.
func readNFloat(b []byte, k int) (int64, []float64, []byte, error) {
	n, rest, err := readUvarint(b)
	if err != nil {
		return 0, nil, nil, err
	}
	if len(rest) < 8*k {
		return 0, nil, nil, fmt.Errorf("truncated floats")
	}
	vals := make([]float64, k)
	for i := 0; i < k; i++ {
		vals[i] = readFloat(rest[8*i:])
	}
	return int64(n), vals, rest[8*k:], nil
}
