package mr

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"time"

	"github.com/casm-project/casm/internal/exec"
	"github.com/casm-project/casm/internal/groupx"
	"github.com/casm-project/casm/internal/transport"
)

// cancelCheckStride is how many records/pairs a hot loop processes
// between cancellation polls. The poll is a non-blocking read of the
// cached Done channel — ctx.Err() would take the context mutex, which is
// contended when every task of a job shares one context — but even that
// is kept off the per-record path; a stride of 1024 bounds post-cancel
// latency to microseconds of extra work.
const cancelCheckStride = 1024

// Run executes the job to completion under context.Background(); it is
// the compatibility wrapper around RunContext for callers without a
// cancellation story.
func Run(job Job) (*Result, error) { return RunContext(context.Background(), job) }

// RunContext executes the job to completion on cfg.Executor's shared
// worker pool and returns its output and counters. Cancelling ctx tears
// the pipeline down promptly — blocked shuffle sends unblock, spill and
// merge loops abort, collectors drain the transport and release their
// spill runs — and RunContext returns an error satisfying
// errors.Is(err, context.Canceled). When tasks fail, every real failure
// is reported (errors.Join), each prefixed with its task identity; the
// first real failure also cancels the job's context so sibling tasks
// abort instead of running a doomed job to completion.
func RunContext(ctx context.Context, job Job) (*Result, error) {
	cfg, err := job.Config.withDefaults()
	if err != nil {
		return nil, err
	}
	if job.Input == nil || job.Map == nil {
		return nil, fmt.Errorf("mr: job needs Input and Map")
	}
	if job.Reduce == nil && !cfg.ShuffleDisabled {
		return nil, fmt.Errorf("mr: job needs Reduce unless ShuffleDisabled")
	}
	splits, err := job.Input.Splits()
	if err != nil {
		return nil, fmt.Errorf("mr: splits: %w", err)
	}
	// Morsel mode carves splits before any task starts: the dispatch set
	// must be complete up front (StealDeques treats empty as exhausted),
	// and carve errors should fail the job at planning, not mid-pipeline.
	var morselItems []morselItem
	var morselOwners []int
	if cfg.MorselBytes > 0 {
		morselItems, morselOwners, err = carveMorsels(splits, cfg.MorselBytes)
		if err != nil {
			return nil, err
		}
	}
	start := time.Now()

	// jobCtx governs every task of this job; cancelJob is the teardown
	// trigger shared by external cancellation and internal failure.
	jobCtx, cancelJob := context.WithCancel(ctx)
	defer cancelJob()
	ex := cfg.Executor

	var tr transport.Transport
	if !cfg.ShuffleDisabled {
		tr, err = cfg.Transport(cfg.NumReducers)
		if err != nil {
			return nil, fmt.Errorf("mr: transport: %w", err)
		}
		defer tr.Close()
	}

	// Reducer collectors: drain the shuffle into per-reducer grouping
	// collectors (hash table or external sorter, per GroupMode)
	// concurrently with the map phase. They are service tasks — dedicated
	// goroutines outside the executor's worker budget — because a
	// collector parked in the queue behind map tasks would deadlock the
	// pool on transport backpressure.
	reduceStats := make([]TaskStats, cfg.NumReducers)
	collectors := make([]groupx.Collector, cfg.NumReducers)
	defer func() {
		// Teardown runs on every exit path: release collector resources
		// (buffered pairs and spill-run descriptors — the files themselves
		// are unlinked at creation, so closing the descriptors reclaims the
		// disk space). Close is idempotent, so the success path, where the
		// reduce tasks already drained the collectors, is a no-op.
		for _, c := range collectors {
			if c != nil {
				c.Close()
			}
		}
	}()
	collectGroup := ex.NewGroup(jobCtx, exec.Options{OnError: cancelJob})
	if !cfg.ShuffleDisabled {
		for r := 0; r < cfg.NumReducers; r++ {
			r := r
			reduceStats[r].Task = fmt.Sprintf("reduce-%d", r)
			if cfg.GroupMode == GroupHash {
				collectors[r] = groupx.NewHashContext(jobCtx, pairCodec{}, cfg.TempDir, cfg.SortMemoryItems)
			} else {
				collectors[r] = groupx.NewSortContext(jobCtx, pairCodec{}, cfg.TempDir, cfg.SortMemoryItems)
			}
			collectGroup.GoService(fmt.Sprintf("mr: collect reduce-%d", r), func(tctx context.Context) error {
				return drainShuffle(tctx, tr, r, collectors[r], &reduceStats[r], cancelJob)
			})
		}
	}

	// Map phase: pooled tasks, bounded per job by MapParallelism. In
	// fixed-split mode each split is one task; in morsel mode the tasks
	// are long-lived workers self-scheduling over the carved morsels via
	// work-stealing deques (see morsel.go), so a map "task" in the stats
	// is then one worker's whole tour of the input.
	var mapStats []TaskStats
	mapGroup := ex.NewGroup(jobCtx, exec.Options{Limit: cfg.MapParallelism, OnError: cancelJob})
	if cfg.MorselBytes > 0 {
		workers := cfg.MapParallelism
		if workers > len(morselItems) {
			workers = len(morselItems)
		}
		if workers < 1 {
			workers = 1
		}
		d := newMorselDispatcher(workers, morselItems, morselOwners)
		mapStats = make([]TaskStats, workers)
		for w := 0; w < workers; w++ {
			w := w
			mapStats[w].Task = fmt.Sprintf("map-worker-%d", w)
			mapGroup.Go(fmt.Sprintf("mr: map worker %d", w), &mapStats[w].Timing, func(tctx context.Context) error {
				return runMorselWorkerTask(tctx, w, d, job.Map, &mapStats[w], cfg, tr)
			})
		}
	} else {
		mapStats = make([]TaskStats, len(splits))
		for i, sp := range splits {
			i, sp := i, sp
			mapStats[i].Task = sp.Label()
			mapGroup.Go("mr: map task "+sp.Label(), &mapStats[i].Timing, func(tctx context.Context) error {
				return runMapTask(tctx, job.Map, sp, &mapStats[i], cfg, tr)
			})
		}
	}

	var jobErrs exec.ErrorCollector
	jobErrs.Add("", mapGroup.Wait())
	if tr != nil {
		// CloseSend must run even when the job is cancelled or the map
		// phase failed: it closes the receive side, which is what lets the
		// collectors' drain loops terminate.
		jobErrs.Add("mr: close shuffle", tr.CloseSend(jobCtx))
		jobErrs.Add("", collectGroup.Wait())
	}
	if err := jobErrs.Err(); err != nil {
		return nil, err
	}

	result := &Result{Stats: JobStats{MapTasks: mapStats, ReduceTasks: reduceStats}}
	if tr != nil {
		result.Stats.Shuffled = tr.BytesSent()
	}
	if cfg.ShuffleDisabled {
		result.Stats.Wall = time.Since(start)
		result.Stats.ReduceTasks = nil
		return result, nil
	}

	// Reduce phase: process each reducer's sorted stream group by group.
	outputs := make([][]transport.Pair, cfg.NumReducers)
	reduceGroup := ex.NewGroup(jobCtx, exec.Options{Limit: cfg.ReduceParallelism, OnError: cancelJob})
	for r := 0; r < cfg.NumReducers; r++ {
		r := r
		reduceGroup.Go(fmt.Sprintf("mr: reduce task %d", r), &reduceStats[r].Timing, func(tctx context.Context) error {
			return runReduceTask(tctx, job.Reduce, collectors[r], &reduceStats[r], cfg, &outputs[r])
		})
	}
	if err := reduceGroup.Wait(); err != nil {
		return nil, err
	}
	for _, out := range outputs {
		result.Output = append(result.Output, out...)
	}
	result.Stats.Wall = time.Since(start)
	return result, nil
}

// drainShuffle moves one reducer's shuffle stream into its collector. It
// always drains the stream to exhaustion — stopping early would park
// senders on a full transport forever — but stops *collecting* at the
// first Add error or once the job is cancelled, and cancels the job on an
// Add failure so map tasks stop producing into a doomed shuffle.
func drainShuffle(ctx context.Context, tr transport.Transport, r int, coll groupx.Collector, st *TaskStats, cancelJob context.CancelFunc) error {
	done := ctx.Done()
	var addErr error
	for batch := range tr.Receive(r) {
		for _, p := range batch {
			st.PairsIn++
			st.BytesIn += p.Size()
			if addErr != nil {
				continue
			}
			if st.PairsIn&(cancelCheckStride-1) == 0 {
				select {
				case <-done:
					addErr = ctx.Err()
					continue
				default:
				}
			}
			if err := coll.Add(p); err != nil {
				addErr = err
				cancelJob()
			}
		}
	}
	return addErr
}

// runMapTask executes one split with retry. The failure injector only
// fires at task start, before any pair is emitted, so retries are safe
// (re-emission after partial sends would duplicate data; real systems
// solve this with attempt-tagged output files, which our in-process
// shuffle does not need). Cancellation is never retried: a cancelled
// attempt is the job being torn down, not the task failing.
func runMapTask(ctx context.Context, mapFn MapFunc, sp Split, st *TaskStats, cfg Config, tr transport.Transport) error {
	var lastErr error
	for attempt := 1; attempt <= cfg.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		st.Attempts = attempt
		if cfg.FailureInjector != nil {
			if err := cfg.FailureInjector(sp.Label(), attempt); err != nil {
				lastErr = err
				continue
			}
		}
		if err := mapOnce(ctx, mapFn, sp, st, cfg, tr); err != nil {
			return err // mid-task errors are not retried (see above)
		}
		return nil
	}
	return fmt.Errorf("giving up after %d attempts: %w", cfg.MaxAttempts, lastErr)
}

func mapOnce(ctx context.Context, mapFn MapFunc, sp Split, st *TaskStats, cfg Config, tr transport.Transport) error {
	it, err := sp.Open()
	if err != nil {
		return err
	}
	st.BytesRead += sp.SizeBytes()

	// Each map task owns one batch writer: pairs accumulate per reducer
	// and ship as one framed SendBatch, so channel operations and frame
	// round-trips drop by the batch factor.
	var bw *transport.BatchWriter
	if !cfg.ShuffleDisabled {
		bw = transport.NewBatchWriter(ctx, tr, cfg.NumReducers, cfg.ShuffleBatchPairs)
	}
	send := func(key, value []byte) error {
		st.PairsOut++
		st.BytesOut += int64(len(key) + len(value))
		if bw == nil {
			return nil
		}
		// Partition by the group identity, not the full key, so that a
		// composite sort key never scatters one group across reducers.
		return bw.Send(cfg.Partition(cfg.GroupBy(key), cfg.NumReducers), transport.Pair{Key: key, Value: value})
	}

	var comb Combiner
	emit := send
	switch {
	case cfg.NewCombiner != nil:
		comb = cfg.NewCombiner(st)
	case cfg.Combine != nil:
		comb = newFuncCombiner(cfg.Combine, st)
	}
	if comb != nil {
		emit = func(key, value []byte) error {
			st.CombineInputs++
			if err := comb.Add(key, value); err != nil {
				return err
			}
			if comb.Len() >= cfg.CombineBufferPairs {
				return comb.Flush(send)
			}
			return nil
		}
	}
	mctx := &MapCtx{Stats: st, emit: emit}
	if cfg.NewMapLocal != nil {
		mctx.Local = cfg.NewMapLocal(st)
	}
	done := ctx.Done()
	for {
		rec, ok, err := it.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		st.Records++
		if st.Records&(cancelCheckStride-1) == 0 {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
		}
		if err := mapFn(mctx, rec); err != nil {
			return err
		}
	}
	if comb != nil {
		if err := comb.Flush(send); err != nil {
			return err
		}
	}
	if bw != nil {
		if err := bw.Flush(); err != nil {
			return err
		}
		st.BatchesSent += bw.Batches()
	}
	return nil
}

func runReduceTask(ctx context.Context, reduceFn ReduceFunc, coll groupx.Collector, st *TaskStats, cfg Config, out *[]transport.Pair) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	it, err := coll.Iterate()
	if err != nil {
		return err
	}
	defer it.Close()
	fillGroupStats(st, coll.Stats())

	rctx := &ReduceCtx{
		Stats:   st,
		TempDir: cfg.TempDir,
		emit: func(key, value []byte) {
			// ReduceCtx.Emit already copied the key and hands off
			// ownership of the value; no further copies needed.
			*out = append(*out, transport.Pair{Key: key, Value: value})
		},
	}
	if cfg.NewReduceLocal != nil {
		rctx.Local = cfg.NewReduceLocal(st)
	}
	// groupBuf holds the current group's identity, copied out of the
	// first pair's key. The copy is mandatory: a spilled pair's key
	// aliases the sorter's reused run-read buffer, which advancing the
	// iterator within the group overwrites — an aliasing group slice
	// would corrupt the boundary comparison mid-group.
	//
	// Per-pair cancellation rides on it.Next (the collector's sorter
	// polls the same context in its merge loop); the per-group poll here
	// covers the hash path's in-memory drain, which bypasses the sorter.
	done := ctx.Done()
	var groupBuf []byte
	cur, ok, err := it.Next()
	if err != nil {
		return err
	}
	for ok {
		select {
		case <-done:
			return ctx.Err()
		default:
		}
		groupBuf = append(groupBuf[:0], cfg.GroupBy(cur.Key)...)
		gi := &GroupIter{it: it, groupBy: cfg.GroupBy, group: groupBuf, cur: cur, curValid: true}
		if err := reduceFn(rctx, groupBuf, gi); err != nil {
			return err
		}
		if err := gi.Drain(); err != nil {
			return err
		}
		cur, ok = gi.cur, gi.curValid
	}
	// Merge-path buffer reuses accumulate while iterating; refresh the
	// counters now that the stream is drained.
	fillGroupStats(st, coll.Stats())
	return nil
}

// fillGroupStats maps a collector's counters onto the task's. Grouped
// items land in SortItems on both paths — the cost model prices reducer
// grouping uniformly (the paper's Hadoop always sorts), which keeps
// simulated seconds comparable across modes; HashGroups/GroupSpills
// record what the hash path actually did.
func fillGroupStats(st *TaskStats, gs groupx.Stats) {
	st.SortItems = gs.Items
	st.SpillBytes = gs.SpilledBytes
	st.SpillRuns = int64(gs.Runs)
	st.SortAllocsSaved = gs.AllocsSaved
	st.HashGroups = gs.Groups
	st.GroupSpills = gs.Spills
}

// GroupIter yields the pairs of one group. On the sorted path pairs
// arrive in full-shuffle-key order; on the hash path in arrival order
// (grouping only — see GroupMode).
type GroupIter struct {
	it       groupx.Iterator
	groupBy  func([]byte) []byte
	group    []byte
	cur      transport.Pair
	curValid bool
	done     bool
}

// Next returns the next pair of the group; ok=false at the group's end.
//
// Ownership: the pair's Key and Value are only guaranteed valid until
// the following Next call (spilled pairs alias the sorter's reused read
// buffers). Reduce functions that retain either across Next must copy
// it.
func (g *GroupIter) Next() (transport.Pair, bool, error) {
	if g.done {
		return transport.Pair{}, false, nil
	}
	if !g.curValid {
		p, ok, err := g.it.Next()
		if err != nil {
			return transport.Pair{}, false, err
		}
		if !ok {
			g.done = true
			return transport.Pair{}, false, nil
		}
		g.cur, g.curValid = p, true
	}
	if !bytes.Equal(g.groupBy(g.cur.Key), g.group) {
		g.done = true // cur is the first pair of the next group; keep it
		return transport.Pair{}, false, nil
	}
	p := g.cur
	g.curValid = false
	return p, true, nil
}

// Drain consumes any unread remainder of the group; reduce functions that
// only need the group key (e.g. stage-stopped pipelines) call it
// explicitly, and the framework calls it after every reduce invocation.
func (g *GroupIter) Drain() error {
	for {
		_, ok, err := g.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
	}
}

// pairCodec serializes shuffle pairs for the reducer's external sort.
type pairCodec struct{}

func (pairCodec) EncodeTo(dst []byte, p transport.Pair) ([]byte, error) {
	dst = binary.AppendUvarint(dst, uint64(len(p.Key)))
	dst = append(dst, p.Key...)
	return append(dst, p.Value...), nil
}

// Decode parses a spilled pair. Key and Value both alias b, per the
// sortx.Codec contract: they are valid until the next item is read from
// the same run, which GroupIter.Next surfaces to reduce functions. No
// string materializes anywhere on the spill path.
func (pairCodec) Decode(b []byte) (transport.Pair, error) {
	n, k := binary.Uvarint(b)
	if k <= 0 || uint64(len(b)-k) < n {
		return transport.Pair{}, fmt.Errorf("mr: corrupt spilled pair")
	}
	return transport.Pair{
		Key:   b[k : k+int(n) : k+int(n)],
		Value: b[k+int(n):],
	}, nil
}
