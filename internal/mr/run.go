package mr

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"github.com/casm-project/casm/internal/exec"
	"github.com/casm-project/casm/internal/groupx"
	"github.com/casm-project/casm/internal/transport"
)

// cancelCheckStride is how many records/pairs a hot loop processes
// between cancellation polls. The poll is a non-blocking read of the
// cached Done channel — ctx.Err() would take the context mutex, which is
// contended when every task of a job shares one context — but even that
// is kept off the per-record path; a stride of 1024 bounds post-cancel
// latency to microseconds of extra work.
const cancelCheckStride = 1024

// outputBatchPairs is how many output pairs a reduce task buffers before
// handing them to the job's output stream as one batch: large enough to
// amortize the channel operation, small enough that the first results
// reach the consumer while the reduce phase is still running.
const outputBatchPairs = 256

// Run executes the job to completion under context.Background(); it is
// the compatibility wrapper around RunContext for callers without a
// cancellation story.
func Run(job Job) (*Result, error) { return RunContext(context.Background(), job) }

// RunContext executes the job to completion on cfg.Executor's shared
// worker pool and returns its output and counters. It is the
// materializing wrapper around RunPipe: the streamed output batches are
// assembled into Result.Output in per-reducer order (reducer 0's records
// first, each reducer's in emit order), the order the barrier
// implementation produced. Cancelling ctx tears the pipeline down
// promptly — blocked shuffle sends unblock, spill and merge loops abort,
// collectors drain the transport and release their spill runs — and
// RunContext returns an error satisfying errors.Is(err,
// context.Canceled). When tasks fail, every real failure is reported
// (errors.Join), each prefixed with its task identity; the first real
// failure also cancels the job's context so sibling tasks abort instead
// of running a doomed job to completion.
func RunContext(ctx context.Context, job Job) (*Result, error) {
	p, err := RunPipe(ctx, job)
	if err != nil {
		return nil, err
	}
	outputs := make([][]transport.Pair, p.numReducers)
	for {
		r, pairs, ok, err := p.NextBatch()
		if err != nil {
			p.Close()
			return nil, err
		}
		if !ok {
			break
		}
		outputs[r] = append(outputs[r], pairs...)
		transport.RecycleBatch(pairs)
	}
	if err := p.Close(); err != nil {
		return nil, err
	}
	result := &Result{Stats: p.Stats()}
	for _, out := range outputs {
		result.Output = append(result.Output, out...)
	}
	return result, nil
}

// ErrClosed is returned by Next/NextBatch on a pipe that was torn down by
// an early Close before its stream ended naturally — the read is a caller
// bug (reading a stream it already abandoned), distinct from the benign
// ok=false end of a fully consumed stream. Close itself stays idempotent
// and returns nil on repeat calls.
var ErrClosed = errors.New("mr: pipe is closed")

// outBatch is one run of output pairs flushed by reduce task r.
type outBatch struct {
	r     int
	pairs []transport.Pair
}

// Pipe is a running job's streaming output: a single-use iterator over
// the output pairs, yielding each reduce task's records as soon as that
// task emits them — concurrently with the rest of the reduce phase —
// instead of after the whole job completes. It implements
// iterx.Iter[transport.Pair] (Next + idempotent Close; see the iterx
// package for the full single-use contract). Pipe is single-goroutine.
//
// Lifecycle: consume with Next (or NextBatch) until ok=false, then check
// the error and call Close; or Close early to abandon the stream, which
// cancels the job and tears it down exactly like cancelling the context
// passed to RunPipe (tasks abort, spill runs are reclaimed, no
// goroutines remain). Stats is valid after the stream has ended or Close
// has returned.
//
// Ownership: yielded pairs carry the reduce functions' emitted key/value
// bytes uncopied and stay valid indefinitely (they are not reused); the
// []Pair batch slices from NextBatch are handed off to the caller, who
// may pass them to transport.RecycleBatch once the pairs are consumed.
type Pipe struct {
	out         chan outBatch
	cancel      context.CancelFunc
	coordDone   chan struct{}
	numReducers int

	// Set by the coordinator before coordDone closes.
	err   error
	stats JobStats

	// firstOut is the atomically stamped time of the first output batch
	// handoff, in nanoseconds since the job started (+1 so a stamped
	// zero-duration is distinguishable from "no output").
	firstOut atomic.Int64

	cur      []transport.Pair
	i        int
	finished bool
	closed   bool
}

// NextBatch returns the next output batch and the reduce task that
// emitted it. ok=false ends the stream; the returned error, if any, is
// the job's (joined task failures, or the cancellation error). The batch
// slice is handed off to the caller (see Pipe ownership).
func (p *Pipe) NextBatch() (r int, pairs []transport.Pair, ok bool, err error) {
	if p.finished {
		return 0, nil, false, nil
	}
	if p.closed {
		return 0, nil, false, ErrClosed
	}
	b, ok := <-p.out
	if !ok {
		p.finished = true
		<-p.coordDone
		return 0, nil, false, p.err
	}
	return b.r, b.pairs, true, nil
}

// Next yields the stream's pairs one at a time (iterx.Iter). Use either
// Next or NextBatch on a given Pipe, not both.
func (p *Pipe) Next() (transport.Pair, bool, error) {
	for p.i >= len(p.cur) {
		_, pairs, ok, err := p.NextBatch()
		if err != nil || !ok {
			return transport.Pair{}, false, err
		}
		p.cur, p.i = pairs, 0
	}
	pr := p.cur[p.i]
	p.i++
	return pr, true, nil
}

// Close tears the job down if it is still running (cancelling its
// context), waits for every task to finish, and releases the stream.
// Idempotent. A deliberate early Close is not an error: the resulting
// context.Canceled is swallowed; real task failures that happened before
// the cancellation are returned.
func (p *Pipe) Close() error {
	if p.closed {
		return nil
	}
	p.closed = true
	p.cancel()
	for range p.out { // unblock producers until the coordinator closes the stream
	}
	<-p.coordDone
	if p.err != nil && !isCancel(p.err) {
		if p.finished {
			return nil // Next already surfaced it
		}
		return p.err
	}
	return nil
}

func isCancel(err error) bool {
	return err == context.Canceled || err == context.DeadlineExceeded || contextIs(err)
}

func contextIs(err error) bool {
	type unwrapper interface{ Unwrap() []error }
	switch e := err.(type) {
	case interface{ Unwrap() error }:
		return isCancel(e.Unwrap())
	case unwrapper:
		for _, u := range e.Unwrap() {
			if !isCancel(u) {
				return false
			}
		}
		return len(e.Unwrap()) > 0
	}
	return false
}

// Stats returns the job's counters. Valid once the stream has ended
// (Next/NextBatch returned ok=false) or Close has returned.
func (p *Pipe) Stats() JobStats { return p.stats }

// RunPipe starts the job on cfg.Executor's shared worker pool and
// returns its streaming output. Validation, split enumeration, and
// morsel carving run synchronously (so configuration errors surface
// here); everything else — map phase, shuffle, per-reducer collection,
// reduce phase — runs under a coordinator service task, and output pairs
// flow to the returned Pipe as reduce tasks emit them.
//
// The reduce phase is pipelined per reducer: each reducer's shuffle
// drain feeds its grouping collector incrementally, and its reduce task
// is scheduled the moment its OWN stream closes, rather than behind a
// global all-collectors barrier. A reducer whose senders finish early
// therefore starts — and its first output rows reach the consumer —
// while other reducers are still collecting (or, with a transport that
// closes per-reducer streams early, while map tasks still run).
func RunPipe(ctx context.Context, job Job) (*Pipe, error) {
	cfg, err := job.Config.withDefaults()
	if err != nil {
		return nil, err
	}
	if job.Input == nil || job.Map == nil {
		return nil, fmt.Errorf("mr: job needs Input and Map")
	}
	if job.Reduce == nil && !cfg.ShuffleDisabled {
		return nil, fmt.Errorf("mr: job needs Reduce unless ShuffleDisabled")
	}
	splits, err := job.Input.Splits()
	if err != nil {
		return nil, fmt.Errorf("mr: splits: %w", err)
	}
	// Morsel mode carves splits before any task starts: the dispatch set
	// must be complete up front (StealDeques treats empty as exhausted),
	// and carve errors should fail the job at planning, not mid-pipeline.
	var morselItems []morselItem
	var morselOwners []int
	if cfg.MorselBytes > 0 {
		morselItems, morselOwners, err = carveMorsels(splits, cfg.MorselBytes)
		if err != nil {
			return nil, err
		}
	}
	var tr transport.Transport
	if !cfg.ShuffleDisabled {
		tr, err = cfg.Transport(cfg.NumReducers)
		if err != nil {
			return nil, fmt.Errorf("mr: transport: %w", err)
		}
	}

	// jobCtx governs every task of this job; cancelJob is the teardown
	// trigger shared by external cancellation, internal failure, and
	// Pipe.Close.
	jobCtx, cancelJob := context.WithCancel(ctx)
	p := &Pipe{
		out:         make(chan outBatch, cfg.NumReducers),
		cancel:      cancelJob,
		coordDone:   make(chan struct{}),
		numReducers: cfg.NumReducers,
	}
	// The coordinator is a service task (dedicated goroutine — it blocks
	// on stage waits) owning the whole job lifecycle; its errors surface
	// through the Pipe, not a group Wait.
	coord := cfg.Executor.NewGroup(jobCtx, exec.Options{})
	coord.GoService("mr: job coordinator", func(tctx context.Context) error {
		defer close(p.coordDone)
		defer cancelJob()
		p.stats, p.err = runJob(tctx, job, cfg, splits, morselItems, morselOwners, tr, cancelJob, p)
		close(p.out)
		return nil
	})
	return p, nil
}

// runJob executes the job's stages under the coordinator. It returns
// whatever stats were gathered even on failure (callers discard them as
// needed).
func runJob(jobCtx context.Context, job Job, cfg Config, splits []Split, morselItems []morselItem, morselOwners []int, tr transport.Transport, cancelJob context.CancelFunc, p *Pipe) (JobStats, error) {
	start := time.Now()
	ex := cfg.Executor
	if tr != nil {
		defer tr.Close()
	}

	// Reducer collectors: drain the shuffle into per-reducer grouping
	// collectors (hash table or external sorter, per GroupMode)
	// concurrently with the map phase. They are service tasks — dedicated
	// goroutines outside the executor's worker budget — because a
	// collector parked in the queue behind map tasks would deadlock the
	// pool on transport backpressure.
	reduceStats := make([]TaskStats, cfg.NumReducers)
	collectors := make([]groupx.Collector, cfg.NumReducers)
	defer func() {
		// Teardown runs on every exit path: release collector resources
		// (buffered pairs and spill-run descriptors — the files themselves
		// are unlinked at creation, so closing the descriptors reclaims the
		// disk space). Close is idempotent, so the success path, where the
		// reduce tasks already drained the collectors, is a no-op.
		for _, c := range collectors {
			if c != nil {
				c.Close()
			}
		}
	}()
	// reduceGroup exists before the collectors because they schedule onto
	// it: the collect service task for reducer r submits reduce task r the
	// moment its drain completes (per-reducer readiness — the pipelined
	// reduce), so a reducer never waits behind other reducers' shuffle
	// streams.
	reduceGroup := ex.NewGroup(jobCtx, exec.Options{Limit: cfg.ReduceParallelism, OnError: cancelJob})
	collectGroup := ex.NewGroup(jobCtx, exec.Options{OnError: cancelJob})
	if !cfg.ShuffleDisabled {
		for r := 0; r < cfg.NumReducers; r++ {
			r := r
			reduceStats[r].Task = fmt.Sprintf("reduce-%d", r)
			if cfg.GroupMode == GroupHash {
				collectors[r] = groupx.NewHashContext(jobCtx, pairCodec{}, cfg.TempDir, cfg.SortMemoryItems)
			} else {
				collectors[r] = groupx.NewSortContext(jobCtx, pairCodec{}, cfg.TempDir, cfg.SortMemoryItems)
			}
			collectGroup.GoService(fmt.Sprintf("mr: collect reduce-%d", r), func(tctx context.Context) error {
				if err := drainShuffle(tctx, tr, r, collectors[r], &reduceStats[r], cancelJob); err != nil {
					return err
				}
				reduceStats[r].CollectDone = time.Since(start)
				// This reducer's stream is complete: hand its collector to a
				// reduce task now, without waiting for sibling drains.
				reduceGroup.Go(fmt.Sprintf("mr: reduce task %d", r), &reduceStats[r].Timing, func(tctx context.Context) error {
					w := &outputWriter{ctx: tctx, ch: p.out, r: r, start: start, first: &p.firstOut}
					return runReduceTask(tctx, job.Reduce, collectors[r], &reduceStats[r], cfg, w)
				})
				return nil
			})
		}
	}

	// Map phase: pooled tasks, bounded per job by MapParallelism. In
	// fixed-split mode each split is one task; in morsel mode the tasks
	// are long-lived workers self-scheduling over the carved morsels via
	// work-stealing deques (see morsel.go), so a map "task" in the stats
	// is then one worker's whole tour of the input.
	var mapStats []TaskStats
	mapGroup := ex.NewGroup(jobCtx, exec.Options{Limit: cfg.MapParallelism, OnError: cancelJob})
	if cfg.MorselBytes > 0 {
		workers := cfg.MapParallelism
		if workers > len(morselItems) {
			workers = len(morselItems)
		}
		if workers < 1 {
			workers = 1
		}
		d := newMorselDispatcher(workers, morselItems, morselOwners)
		mapStats = make([]TaskStats, workers)
		for w := 0; w < workers; w++ {
			w := w
			mapStats[w].Task = fmt.Sprintf("map-worker-%d", w)
			mapGroup.Go(fmt.Sprintf("mr: map worker %d", w), &mapStats[w].Timing, func(tctx context.Context) error {
				return runMorselWorkerTask(tctx, w, d, job.Map, &mapStats[w], cfg, tr)
			})
		}
	} else {
		mapStats = make([]TaskStats, len(splits))
		for i, sp := range splits {
			i, sp := i, sp
			mapStats[i].Task = sp.Label()
			mapGroup.Go("mr: map task "+sp.Label(), &mapStats[i].Timing, func(tctx context.Context) error {
				return runMapTask(tctx, job.Map, sp, &mapStats[i], cfg, tr)
			})
		}
	}

	var jobErrs exec.ErrorCollector
	jobErrs.Add("", mapGroup.Wait())
	stats := JobStats{MapDone: time.Since(start)}
	if tr != nil {
		// CloseSend must run even when the job is cancelled or the map
		// phase failed: it closes the receive side, which is what lets the
		// collectors' drain loops terminate.
		jobErrs.Add("mr: close shuffle", tr.CloseSend(jobCtx))
		jobErrs.Add("", collectGroup.Wait())
		// Reduce tasks were scheduled per reducer as drains completed;
		// wait for them unconditionally (on failure they abort against the
		// cancelled context) so no task outlives the job.
		jobErrs.Add("", reduceGroup.Wait())
	}

	stats.MapTasks = mapStats
	stats.ReduceTasks = reduceStats
	if tr != nil {
		stats.Shuffled = tr.BytesSent()
	}
	if cfg.ShuffleDisabled {
		stats.ReduceTasks = nil
	}
	if ns := p.firstOut.Load(); ns > 0 {
		stats.FirstOutput = time.Duration(ns - 1)
	}
	stats.Wall = time.Since(start)
	return stats, jobErrs.Err()
}

// outputWriter buffers one reduce task's emitted pairs and flushes them
// to the job's output stream in outputBatchPairs-sized batches. The send
// selects against the job context so an emitting reduce task unblocks
// when the job is cancelled (including by Pipe.Close). Errors latch: the
// first failed flush stops the writer and is returned by the reduce
// task.
type outputWriter struct {
	ctx   context.Context
	ch    chan<- outBatch
	r     int
	start time.Time
	first *atomic.Int64
	buf   []transport.Pair
	err   error
}

func (w *outputWriter) emit(key, value []byte) {
	if w.err != nil {
		return
	}
	if w.buf == nil {
		w.buf = transport.GetBatch(outputBatchPairs)
	}
	w.buf = append(w.buf, transport.Pair{Key: key, Value: value})
	if len(w.buf) >= outputBatchPairs {
		w.flush()
	}
}

func (w *outputWriter) flush() {
	if w.err != nil || len(w.buf) == 0 {
		return
	}
	b := outBatch{r: w.r, pairs: w.buf}
	w.buf = nil
	select {
	case w.ch <- b:
		if w.first.Load() == 0 {
			w.first.CompareAndSwap(0, int64(time.Since(w.start))+1)
		}
	case <-w.ctx.Done():
		w.err = w.ctx.Err()
	}
}

// drainShuffle moves one reducer's shuffle stream into its collector. It
// always drains the stream to exhaustion — stopping early would park
// senders on a full transport forever — but stops *collecting* at the
// first Add error or once the job is cancelled, and cancels the job on an
// Add failure so map tasks stop producing into a doomed shuffle.
// Consumed batch slices are recycled into the transport batch pool (the
// pairs' key/value bytes live on; the slice itself is dead once its
// pairs are in the collector).
func drainShuffle(ctx context.Context, tr transport.Transport, r int, coll groupx.Collector, st *TaskStats, cancelJob context.CancelFunc) error {
	done := ctx.Done()
	var addErr error
	for batch := range tr.Receive(r) {
		for _, p := range batch {
			st.PairsIn++
			st.BytesIn += p.Size()
			if addErr != nil {
				continue
			}
			if st.PairsIn&(cancelCheckStride-1) == 0 {
				select {
				case <-done:
					addErr = ctx.Err()
					continue
				default:
				}
			}
			if err := coll.Add(p); err != nil {
				addErr = err
				cancelJob()
			}
		}
		transport.RecycleBatch(batch)
	}
	return addErr
}

// runMapTask executes one split with retry. The failure injector only
// fires at task start, before any pair is emitted, so retries are safe
// (re-emission after partial sends would duplicate data; real systems
// solve this with attempt-tagged output files, which our in-process
// shuffle does not need). Cancellation is never retried: a cancelled
// attempt is the job being torn down, not the task failing.
func runMapTask(ctx context.Context, mapFn MapFunc, sp Split, st *TaskStats, cfg Config, tr transport.Transport) error {
	var lastErr error
	for attempt := 1; attempt <= cfg.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		st.Attempts = attempt
		if cfg.FailureInjector != nil {
			if err := cfg.FailureInjector(sp.Label(), attempt); err != nil {
				lastErr = err
				continue
			}
		}
		if err := mapOnce(ctx, mapFn, sp, st, cfg, tr); err != nil {
			return err // mid-task errors are not retried (see above)
		}
		return nil
	}
	return fmt.Errorf("giving up after %d attempts: %w", cfg.MaxAttempts, lastErr)
}

// scanRecords pulls one record iterator dry through the map function,
// closing it on every path (record iterators are single-use and may hold
// resources — a packed-file split's block buffer, for instance).
func scanRecords(ctx context.Context, it RecordIter, mapFn MapFunc, mctx *MapCtx, st *TaskStats) error {
	defer it.Close()
	done := ctx.Done()
	for {
		rec, ok, err := it.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		st.Records++
		if st.Records&(cancelCheckStride-1) == 0 {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
		}
		if err := mapFn(mctx, rec); err != nil {
			return err
		}
	}
	return it.Close()
}

func mapOnce(ctx context.Context, mapFn MapFunc, sp Split, st *TaskStats, cfg Config, tr transport.Transport) error {
	it, err := sp.Open()
	if err != nil {
		return err
	}
	st.BytesRead += sp.SizeBytes()

	// Each map task owns one batch writer: pairs accumulate per reducer
	// and ship as one framed SendBatch, so channel operations and frame
	// round-trips drop by the batch factor.
	var bw *transport.BatchWriter
	if !cfg.ShuffleDisabled {
		bw = transport.NewBatchWriter(ctx, tr, cfg.NumReducers, cfg.ShuffleBatchPairs)
	}
	send := func(key, value []byte) error {
		st.PairsOut++
		st.BytesOut += int64(len(key) + len(value))
		if bw == nil {
			return nil
		}
		// Partition by the group identity, not the full key, so that a
		// composite sort key never scatters one group across reducers.
		return bw.Send(cfg.Partition(cfg.GroupBy(key), cfg.NumReducers), transport.Pair{Key: key, Value: value})
	}

	var comb Combiner
	emit := send
	switch {
	case cfg.NewCombiner != nil:
		comb = cfg.NewCombiner(st)
	case cfg.Combine != nil:
		comb = newFuncCombiner(cfg.Combine, st)
	}
	if comb != nil {
		emit = func(key, value []byte) error {
			st.CombineInputs++
			if err := comb.Add(key, value); err != nil {
				return err
			}
			if comb.Len() >= cfg.CombineBufferPairs {
				return comb.Flush(send)
			}
			return nil
		}
	}
	mctx := &MapCtx{Stats: st, emit: emit}
	if cfg.NewMapLocal != nil {
		mctx.Local = cfg.NewMapLocal(st)
	}
	if err := scanRecords(ctx, it, mapFn, mctx, st); err != nil {
		return err
	}
	if comb != nil {
		if err := comb.Flush(send); err != nil {
			return err
		}
	}
	if bw != nil {
		if err := bw.Flush(); err != nil {
			return err
		}
		st.BatchesSent += bw.Batches()
	}
	return nil
}

func runReduceTask(ctx context.Context, reduceFn ReduceFunc, coll groupx.Collector, st *TaskStats, cfg Config, w *outputWriter) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	it, err := coll.Iterate()
	if err != nil {
		return err
	}
	defer it.Close()
	fillGroupStats(st, coll.Stats())

	rctx := &ReduceCtx{
		Stats:   st,
		TempDir: cfg.TempDir,
		// ReduceCtx.Emit already copied the key and hands off ownership
		// of the value; the writer batches pairs onto the output stream.
		emit: w.emit,
	}
	if cfg.NewReduceLocal != nil {
		rctx.Local = cfg.NewReduceLocal(st)
	}
	// groupBuf holds the current group's identity, copied out of the
	// first pair's key. The copy is mandatory: a spilled pair's key
	// aliases the sorter's reused run-read buffer, which advancing the
	// iterator within the group overwrites — an aliasing group slice
	// would corrupt the boundary comparison mid-group.
	//
	// Per-pair cancellation rides on it.Next (the collector's sorter
	// polls the same context in its merge loop); the per-group poll here
	// covers the hash path's in-memory drain, which bypasses the sorter.
	done := ctx.Done()
	var groupBuf []byte
	cur, ok, err := it.Next()
	if err != nil {
		return err
	}
	for ok {
		select {
		case <-done:
			return ctx.Err()
		default:
		}
		groupBuf = append(groupBuf[:0], cfg.GroupBy(cur.Key)...)
		gi := &GroupIter{it: it, groupBy: cfg.GroupBy, group: groupBuf, cur: cur, curValid: true}
		if err := reduceFn(rctx, groupBuf, gi); err != nil {
			return err
		}
		if err := gi.Drain(); err != nil {
			return err
		}
		cur, ok = gi.cur, gi.curValid
	}
	// Merge-path buffer reuses accumulate while iterating; refresh the
	// counters now that the stream is drained.
	fillGroupStats(st, coll.Stats())
	w.flush()
	return w.err
}

// fillGroupStats maps a collector's counters onto the task's. Grouped
// items land in SortItems on both paths — the cost model prices reducer
// grouping uniformly (the paper's Hadoop always sorts), which keeps
// simulated seconds comparable across modes; HashGroups/GroupSpills
// record what the hash path actually did.
func fillGroupStats(st *TaskStats, gs groupx.Stats) {
	st.SortItems = gs.Items
	st.SpillBytes = gs.SpilledBytes
	st.SpillRuns = int64(gs.Runs)
	st.SortAllocsSaved = gs.AllocsSaved
	st.HashGroups = gs.Groups
	st.GroupSpills = gs.Spills
}

// GroupIter yields the pairs of one group. On the sorted path pairs
// arrive in full-shuffle-key order; on the hash path in arrival order
// (grouping only — see GroupMode).
type GroupIter struct {
	it       groupx.Iterator
	groupBy  func([]byte) []byte
	group    []byte
	cur      transport.Pair
	curValid bool
	done     bool
}

// Next returns the next pair of the group; ok=false at the group's end.
//
// Ownership: the pair's Key and Value are only guaranteed valid until
// the following Next call (spilled pairs alias the sorter's reused read
// buffers). Reduce functions that retain either across Next must copy
// it.
func (g *GroupIter) Next() (transport.Pair, bool, error) {
	if g.done {
		return transport.Pair{}, false, nil
	}
	if !g.curValid {
		p, ok, err := g.it.Next()
		if err != nil {
			return transport.Pair{}, false, err
		}
		if !ok {
			g.done = true
			return transport.Pair{}, false, nil
		}
		g.cur, g.curValid = p, true
	}
	if !bytes.Equal(g.groupBy(g.cur.Key), g.group) {
		g.done = true // cur is the first pair of the next group; keep it
		return transport.Pair{}, false, nil
	}
	p := g.cur
	g.curValid = false
	return p, true, nil
}

// Drain consumes any unread remainder of the group; reduce functions that
// only need the group key (e.g. stage-stopped pipelines) call it
// explicitly, and the framework calls it after every reduce invocation.
func (g *GroupIter) Drain() error {
	for {
		_, ok, err := g.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
	}
}

// pairCodec serializes shuffle pairs for the reducer's external sort.
type pairCodec struct{}

func (pairCodec) EncodeTo(dst []byte, p transport.Pair) ([]byte, error) {
	dst = binary.AppendUvarint(dst, uint64(len(p.Key)))
	dst = append(dst, p.Key...)
	return append(dst, p.Value...), nil
}

// Decode parses a spilled pair. Key and Value both alias b, per the
// sortx.Codec contract: they are valid until the next item is read from
// the same run, which GroupIter.Next surfaces to reduce functions. No
// string materializes anywhere on the spill path.
func (pairCodec) Decode(b []byte) (transport.Pair, error) {
	n, k := binary.Uvarint(b)
	if k <= 0 || uint64(len(b)-k) < n {
		return transport.Pair{}, fmt.Errorf("mr: corrupt spilled pair")
	}
	return transport.Pair{
		Key:   b[k : k+int(n) : k+int(n)],
		Value: b[k+int(n):],
	}, nil
}
