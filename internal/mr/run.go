package mr

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"github.com/casm-project/casm/internal/groupx"
	"github.com/casm-project/casm/internal/transport"
)

// Run executes the job to completion and returns its output and counters.
func Run(job Job) (*Result, error) {
	cfg, err := job.Config.withDefaults()
	if err != nil {
		return nil, err
	}
	if job.Input == nil || job.Map == nil {
		return nil, fmt.Errorf("mr: job needs Input and Map")
	}
	if job.Reduce == nil && !cfg.ShuffleDisabled {
		return nil, fmt.Errorf("mr: job needs Reduce unless ShuffleDisabled")
	}
	splits, err := job.Input.Splits()
	if err != nil {
		return nil, fmt.Errorf("mr: splits: %w", err)
	}
	start := time.Now()

	var tr transport.Transport
	if !cfg.ShuffleDisabled {
		tr, err = cfg.Transport(cfg.NumReducers)
		if err != nil {
			return nil, fmt.Errorf("mr: transport: %w", err)
		}
		defer tr.Close()
	}

	// Reducer collectors: drain the shuffle into per-reducer grouping
	// collectors (hash table or external sorter, per GroupMode)
	// concurrently with the map phase, so transport backpressure never
	// deadlocks.
	reduceStats := make([]TaskStats, cfg.NumReducers)
	collectors := make([]groupx.Collector, cfg.NumReducers)
	var collectWG sync.WaitGroup
	var collectErr firstErr
	if !cfg.ShuffleDisabled {
		for r := 0; r < cfg.NumReducers; r++ {
			r := r
			reduceStats[r].Task = fmt.Sprintf("reduce-%d", r)
			if cfg.GroupMode == GroupHash {
				collectors[r] = groupx.NewHash(pairCodec{}, cfg.TempDir, cfg.SortMemoryItems)
			} else {
				collectors[r] = groupx.NewSort(pairCodec{}, cfg.TempDir, cfg.SortMemoryItems)
			}
			collectWG.Add(1)
			go func() {
				defer collectWG.Done()
				st := &reduceStats[r]
				for batch := range tr.Receive(r) {
					for _, p := range batch {
						st.PairsIn++
						st.BytesIn += p.Size()
						if collectErr.get() != nil {
							continue // keep draining to avoid sender deadlock
						}
						if err := collectors[r].Add(p); err != nil {
							collectErr.set(err)
						}
					}
				}
			}()
		}
	}

	// Map phase.
	mapStats := make([]TaskStats, len(splits))
	var mapErr firstErr
	sem := make(chan struct{}, cfg.MapParallelism)
	var mapWG sync.WaitGroup
	for i, sp := range splits {
		i, sp := i, sp
		mapWG.Add(1)
		sem <- struct{}{}
		go func() {
			defer func() { <-sem; mapWG.Done() }()
			if mapErr.get() != nil {
				return
			}
			st := &mapStats[i]
			st.Task = sp.Label()
			if err := runMapTask(job.Map, sp, st, cfg, tr); err != nil {
				mapErr.set(fmt.Errorf("mr: map task %s: %w", sp.Label(), err))
			}
		}()
	}
	mapWG.Wait()
	if tr != nil {
		if err := tr.CloseSend(); err != nil {
			mapErr.set(err)
		}
		collectWG.Wait()
	}
	if err := mapErr.get(); err != nil {
		return nil, err
	}
	if err := collectErr.get(); err != nil {
		return nil, fmt.Errorf("mr: collect: %w", err)
	}

	result := &Result{Stats: JobStats{MapTasks: mapStats, ReduceTasks: reduceStats}}
	if tr != nil {
		result.Stats.Shuffled = tr.BytesSent()
	}
	if cfg.ShuffleDisabled {
		result.Stats.Wall = time.Since(start)
		result.Stats.ReduceTasks = nil
		return result, nil
	}

	// Reduce phase: process each reducer's sorted stream group by group.
	outputs := make([][]transport.Pair, cfg.NumReducers)
	var redErr firstErr
	rsem := make(chan struct{}, cfg.ReduceParallelism)
	var redWG sync.WaitGroup
	for r := 0; r < cfg.NumReducers; r++ {
		r := r
		redWG.Add(1)
		rsem <- struct{}{}
		go func() {
			defer func() { <-rsem; redWG.Done() }()
			if redErr.get() != nil {
				return
			}
			if err := runReduceTask(job.Reduce, collectors[r], &reduceStats[r], cfg, &outputs[r]); err != nil {
				redErr.set(fmt.Errorf("mr: reduce task %d: %w", r, err))
			}
		}()
	}
	redWG.Wait()
	if err := redErr.get(); err != nil {
		return nil, err
	}
	for _, out := range outputs {
		result.Output = append(result.Output, out...)
	}
	result.Stats.Wall = time.Since(start)
	return result, nil
}

// runMapTask executes one split with retry. The failure injector only
// fires at task start, before any pair is emitted, so retries are safe
// (re-emission after partial sends would duplicate data; real systems
// solve this with attempt-tagged output files, which our in-process
// shuffle does not need).
func runMapTask(mapFn MapFunc, sp Split, st *TaskStats, cfg Config, tr transport.Transport) error {
	var lastErr error
	for attempt := 1; attempt <= cfg.MaxAttempts; attempt++ {
		st.Attempts = attempt
		if cfg.FailureInjector != nil {
			if err := cfg.FailureInjector(sp.Label(), attempt); err != nil {
				lastErr = err
				continue
			}
		}
		if err := mapOnce(mapFn, sp, st, cfg, tr); err != nil {
			return err // mid-task errors are not retried (see above)
		}
		return nil
	}
	return fmt.Errorf("giving up after %d attempts: %w", cfg.MaxAttempts, lastErr)
}

func mapOnce(mapFn MapFunc, sp Split, st *TaskStats, cfg Config, tr transport.Transport) error {
	it, err := sp.Open()
	if err != nil {
		return err
	}
	st.BytesRead += sp.SizeBytes()

	// Each map task owns one batch writer: pairs accumulate per reducer
	// and ship as one framed SendBatch, so channel operations and frame
	// round-trips drop by the batch factor.
	var bw *transport.BatchWriter
	if !cfg.ShuffleDisabled {
		bw = transport.NewBatchWriter(tr, cfg.NumReducers, cfg.ShuffleBatchPairs)
	}
	send := func(key, value []byte) error {
		st.PairsOut++
		st.BytesOut += int64(len(key) + len(value))
		if bw == nil {
			return nil
		}
		// Partition by the group identity, not the full key, so that a
		// composite sort key never scatters one group across reducers.
		return bw.Send(cfg.Partition(cfg.GroupBy(key), cfg.NumReducers), transport.Pair{Key: key, Value: value})
	}

	var comb Combiner
	emit := send
	switch {
	case cfg.NewCombiner != nil:
		comb = cfg.NewCombiner(st)
	case cfg.Combine != nil:
		comb = newFuncCombiner(cfg.Combine, st)
	}
	if comb != nil {
		emit = func(key, value []byte) error {
			st.CombineInputs++
			if err := comb.Add(key, value); err != nil {
				return err
			}
			if comb.Len() >= cfg.CombineBufferPairs {
				return comb.Flush(send)
			}
			return nil
		}
	}
	ctx := &MapCtx{Stats: st, emit: emit}
	if cfg.NewMapLocal != nil {
		ctx.Local = cfg.NewMapLocal(st)
	}
	for {
		rec, ok, err := it.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		st.Records++
		if err := mapFn(ctx, rec); err != nil {
			return err
		}
	}
	if comb != nil {
		if err := comb.Flush(send); err != nil {
			return err
		}
	}
	if bw != nil {
		if err := bw.Flush(); err != nil {
			return err
		}
		st.BatchesSent += bw.Batches()
	}
	return nil
}

func runReduceTask(reduceFn ReduceFunc, coll groupx.Collector, st *TaskStats, cfg Config, out *[]transport.Pair) error {
	it, err := coll.Iterate()
	if err != nil {
		return err
	}
	defer it.Close()
	fillGroupStats(st, coll.Stats())

	ctx := &ReduceCtx{
		Stats:   st,
		TempDir: cfg.TempDir,
		emit: func(key, value []byte) {
			// ReduceCtx.Emit already copied the key and hands off
			// ownership of the value; no further copies needed.
			*out = append(*out, transport.Pair{Key: key, Value: value})
		},
	}
	if cfg.NewReduceLocal != nil {
		ctx.Local = cfg.NewReduceLocal(st)
	}
	// groupBuf holds the current group's identity, copied out of the
	// first pair's key. The copy is mandatory: a spilled pair's key
	// aliases the sorter's reused run-read buffer, which advancing the
	// iterator within the group overwrites — an aliasing group slice
	// would corrupt the boundary comparison mid-group.
	var groupBuf []byte
	cur, ok, err := it.Next()
	if err != nil {
		return err
	}
	for ok {
		groupBuf = append(groupBuf[:0], cfg.GroupBy(cur.Key)...)
		gi := &GroupIter{it: it, groupBy: cfg.GroupBy, group: groupBuf, cur: cur, curValid: true}
		if err := reduceFn(ctx, groupBuf, gi); err != nil {
			return err
		}
		if err := gi.Drain(); err != nil {
			return err
		}
		cur, ok = gi.cur, gi.curValid
	}
	// Merge-path buffer reuses accumulate while iterating; refresh the
	// counters now that the stream is drained.
	fillGroupStats(st, coll.Stats())
	return nil
}

// fillGroupStats maps a collector's counters onto the task's. Grouped
// items land in SortItems on both paths — the cost model prices reducer
// grouping uniformly (the paper's Hadoop always sorts), which keeps
// simulated seconds comparable across modes; HashGroups/GroupSpills
// record what the hash path actually did.
func fillGroupStats(st *TaskStats, gs groupx.Stats) {
	st.SortItems = gs.Items
	st.SpillBytes = gs.SpilledBytes
	st.SpillRuns = int64(gs.Runs)
	st.SortAllocsSaved = gs.AllocsSaved
	st.HashGroups = gs.Groups
	st.GroupSpills = gs.Spills
}

// GroupIter yields the pairs of one group. On the sorted path pairs
// arrive in full-shuffle-key order; on the hash path in arrival order
// (grouping only — see GroupMode).
type GroupIter struct {
	it       groupx.Iterator
	groupBy  func([]byte) []byte
	group    []byte
	cur      transport.Pair
	curValid bool
	done     bool
}

// Next returns the next pair of the group; ok=false at the group's end.
//
// Ownership: the pair's Key and Value are only guaranteed valid until
// the following Next call (spilled pairs alias the sorter's reused read
// buffers). Reduce functions that retain either across Next must copy
// it.
func (g *GroupIter) Next() (transport.Pair, bool, error) {
	if g.done {
		return transport.Pair{}, false, nil
	}
	if !g.curValid {
		p, ok, err := g.it.Next()
		if err != nil {
			return transport.Pair{}, false, err
		}
		if !ok {
			g.done = true
			return transport.Pair{}, false, nil
		}
		g.cur, g.curValid = p, true
	}
	if !bytes.Equal(g.groupBy(g.cur.Key), g.group) {
		g.done = true // cur is the first pair of the next group; keep it
		return transport.Pair{}, false, nil
	}
	p := g.cur
	g.curValid = false
	return p, true, nil
}

// Drain consumes any unread remainder of the group; reduce functions that
// only need the group key (e.g. stage-stopped pipelines) call it
// explicitly, and the framework calls it after every reduce invocation.
func (g *GroupIter) Drain() error {
	for {
		_, ok, err := g.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
	}
}

// pairCodec serializes shuffle pairs for the reducer's external sort.
type pairCodec struct{}

func (pairCodec) EncodeTo(dst []byte, p transport.Pair) ([]byte, error) {
	dst = binary.AppendUvarint(dst, uint64(len(p.Key)))
	dst = append(dst, p.Key...)
	return append(dst, p.Value...), nil
}

// Decode parses a spilled pair. Key and Value both alias b, per the
// sortx.Codec contract: they are valid until the next item is read from
// the same run, which GroupIter.Next surfaces to reduce functions. No
// string materializes anywhere on the spill path.
func (pairCodec) Decode(b []byte) (transport.Pair, error) {
	n, k := binary.Uvarint(b)
	if k <= 0 || uint64(len(b)-k) < n {
		return transport.Pair{}, fmt.Errorf("mr: corrupt spilled pair")
	}
	return transport.Pair{
		Key:   b[k : k+int(n) : k+int(n)],
		Value: b[k+int(n):],
	}, nil
}

// firstErr remembers the first error set, thread-safely.
type firstErr struct {
	mu  sync.Mutex
	err error
}

func (f *firstErr) set(err error) {
	f.mu.Lock()
	if f.err == nil {
		f.err = err
	}
	f.mu.Unlock()
}

func (f *firstErr) get() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}
