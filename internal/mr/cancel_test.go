package mr

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/casm-project/casm/internal/transport"
)

// sumJob builds a job big enough to be mid-flight at any cancel point:
// n numeric records mapped to (key mod groups, 1) pairs, reduced to
// per-key counts. SortMemoryItems=2 forces a spill every third pair, so
// cancellation always lands with spill state on disk.
func sumJob(n int, cfg Config) Job {
	records := make([][]byte, n)
	for i := range records {
		records[i] = []byte(strconv.Itoa(i))
	}
	return Job{
		Name:  "sum",
		Input: NewMemoryInput(records, 8),
		Map: func(ctx *MapCtx, record []byte) error {
			v, err := strconv.Atoi(string(record))
			if err != nil {
				return err
			}
			return ctx.Emit([]byte(strconv.Itoa(v%199)), []byte("1"))
		},
		Reduce: func(ctx *ReduceCtx, key []byte, values *GroupIter) error {
			total := 0
			for {
				_, ok, err := values.Next()
				if err != nil {
					return err
				}
				if !ok {
					break
				}
				total++
			}
			ctx.Emit(key, []byte(strconv.Itoa(total)))
			return nil
		},
		Config: cfg,
	}
}

// settleGoroutines waits for the goroutine count to stop changing and
// returns it — the baseline for leak assertions. Called after a warm-up
// job so the shared executor's workers and any lazy runtime state are
// already counted.
func settleGoroutines(t *testing.T) int {
	t.Helper()
	last, stable := runtime.NumGoroutine(), 0
	for i := 0; i < 500 && stable < 10; i++ {
		time.Sleep(2 * time.Millisecond)
		if n := runtime.NumGoroutine(); n == last {
			stable++
		} else {
			last, stable = n, 0
		}
	}
	return last
}

// waitForGoroutines asserts the goroutine count returns to the baseline
// (teardown is asynchronous — TCP accept loops and collector services
// need a moment to observe closed connections).
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			m := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s", n, baseline, buf[:m])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// openFDsInDir lists this process's open file descriptors resolving into
// dir — spill runs are unlinked at creation, so leaked descriptors are
// the only way their disk space survives teardown.
func openFDsInDir(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		t.Skipf("no /proc/self/fd: %v", err)
	}
	var got []string
	for _, e := range ents {
		target, err := os.Readlink(filepath.Join("/proc/self/fd", e.Name()))
		if err == nil && strings.HasPrefix(target, dir) {
			got = append(got, target)
		}
	}
	return got
}

// TestCancelAtRandomPoints is the cancellation property test: a job
// cancelled at a randomized point — during the map/shuffle phase (by
// record count or wall-clock timer) or mid-reduce (by group count) —
// must return an error satisfying errors.Is(err, context.Canceled)
// within 2 seconds of the cancel, leave no spill state behind, and leak
// no goroutines. Both transports, spills forced on every third pair.
func TestCancelAtRandomPoints(t *testing.T) {
	if _, err := Run(sumJob(500, Config{NumReducers: 2, TempDir: t.TempDir()})); err != nil {
		t.Fatal(err) // warm the shared executor before baselining
	}
	baseline := settleGoroutines(t)

	rng := rand.New(rand.NewSource(7))
	factories := []struct {
		name string
		f    transport.Factory
	}{
		{"channel", transport.ChannelFactory(4)},
		{"tcp", transport.TCPFactory(4)},
	}
	for _, tf := range factories {
		for _, trigger := range []string{"map", "timer", "reduce"} {
			for iter := 0; iter < 3; iter++ {
				name := fmt.Sprintf("%s/%s/%d", tf.name, trigger, iter)
				t.Run(name, func(t *testing.T) {
					dir := t.TempDir()
					ctx, cancel := context.WithCancel(context.Background())
					defer cancel()
					var cancelledAt atomic.Int64
					doCancel := func() {
						cancelledAt.CompareAndSwap(0, time.Now().UnixNano())
						cancel()
					}

					job := sumJob(6000, Config{
						NumReducers:     3,
						Transport:       tf.f,
						SortMemoryItems: 2,
						GroupMode:       GroupSort,
						TempDir:         dir,
					})
					var mapped, reduced atomic.Int64
					switch trigger {
					case "map":
						threshold := int64(1 + rng.Intn(6000))
						inner := job.Map
						job.Map = func(ctx *MapCtx, record []byte) error {
							if mapped.Add(1) == threshold {
								doCancel()
							}
							return inner(ctx, record)
						}
					case "timer":
						// Lands anywhere in the pipeline, including the
						// shuffle drain between map and reduce.
						d := time.Duration(rng.Intn(12_000)) * time.Microsecond
						timer := time.AfterFunc(d, doCancel)
						defer timer.Stop()
					case "reduce":
						threshold := int64(1 + rng.Intn(40))
						inner := job.Reduce
						job.Reduce = func(ctx *ReduceCtx, key []byte, values *GroupIter) error {
							if reduced.Add(1) == threshold {
								doCancel()
							}
							return inner(ctx, key, values)
						}
					}

					_, err := RunContext(ctx, job)
					returned := time.Now().UnixNano()
					if at := cancelledAt.Load(); at != 0 {
						if err == nil {
							// The job can win the race and complete before
							// the cancellation lands; that is a pass.
							t.Logf("job completed before cancellation took effect")
						} else if !errors.Is(err, context.Canceled) {
							t.Fatalf("want context.Canceled, got %v", err)
						}
						if lag := time.Duration(returned - at); lag > 2*time.Second {
							t.Fatalf("teardown took %v after cancel", lag)
						}
					} else if err != nil {
						t.Fatalf("uncancelled job failed: %v", err)
					}

					if ents, err := os.ReadDir(dir); err != nil || len(ents) != 0 {
						t.Fatalf("spill dir not empty after teardown: %v entries, err=%v", len(ents), err)
					}
					if fds := openFDsInDir(t, dir); len(fds) != 0 {
						t.Fatalf("spill descriptors leaked: %v", fds)
					}
				})
			}
		}
	}
	waitForGoroutines(t, baseline)
}

// TestNoGoroutineLeakAcrossOutcomes pins the teardown contract for all
// three job outcomes — success, task failure, external cancel — on both
// transports: after each, the process returns to its goroutine baseline
// and holds no descriptors into the spill directory.
func TestNoGoroutineLeakAcrossOutcomes(t *testing.T) {
	if _, err := Run(sumJob(500, Config{NumReducers: 2, TempDir: t.TempDir()})); err != nil {
		t.Fatal(err)
	}
	baseline := settleGoroutines(t)

	for _, tf := range []struct {
		name string
		f    transport.Factory
	}{
		{"channel", transport.ChannelFactory(4)},
		{"tcp", transport.TCPFactory(4)},
	} {
		cfgFor := func(dir string) Config {
			return Config{
				NumReducers:     2,
				Transport:       tf.f,
				SortMemoryItems: 2,
				GroupMode:       GroupSort,
				TempDir:         dir,
			}
		}
		t.Run(tf.name+"/success", func(t *testing.T) {
			dir := t.TempDir()
			if _, err := Run(sumJob(2000, cfgFor(dir))); err != nil {
				t.Fatal(err)
			}
			if fds := openFDsInDir(t, dir); len(fds) != 0 {
				t.Fatalf("spill descriptors leaked: %v", fds)
			}
		})
		t.Run(tf.name+"/error", func(t *testing.T) {
			dir := t.TempDir()
			job := sumJob(2000, cfgFor(dir))
			var n atomic.Int64
			inner := job.Map
			job.Map = func(ctx *MapCtx, record []byte) error {
				if n.Add(1) == 1500 {
					return fmt.Errorf("injected map failure")
				}
				return inner(ctx, record)
			}
			_, err := Run(job)
			if err == nil || !strings.Contains(err.Error(), "injected map failure") {
				t.Fatalf("err = %v", err)
			}
			if errors.Is(err, context.Canceled) {
				t.Fatalf("real failure classified as cancellation: %v", err)
			}
			if !strings.Contains(err.Error(), "mr: map task ") {
				t.Fatalf("error lost its task identity: %v", err)
			}
			if fds := openFDsInDir(t, dir); len(fds) != 0 {
				t.Fatalf("spill descriptors leaked: %v", fds)
			}
		})
		t.Run(tf.name+"/cancel", func(t *testing.T) {
			dir := t.TempDir()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			job := sumJob(4000, cfgFor(dir))
			var n atomic.Int64
			inner := job.Map
			job.Map = func(mctx *MapCtx, record []byte) error {
				if n.Add(1) == 1000 {
					cancel()
				}
				return inner(mctx, record)
			}
			if _, err := RunContext(ctx, job); !errors.Is(err, context.Canceled) {
				t.Fatalf("want context.Canceled, got %v", err)
			}
			if fds := openFDsInDir(t, dir); len(fds) != 0 {
				t.Fatalf("spill descriptors leaked: %v", fds)
			}
		})
	}
	waitForGoroutines(t, baseline)
}

// TestSpillStateReclaimedOnReduceFailure is the spill-lifecycle
// satellite: a job failing mid-reduce — after the collectors have
// spilled runs to disk — must leave the temp directory empty and close
// every spill descriptor on teardown, including the sibling reducer's
// collector that never got iterated.
func TestSpillStateReclaimedOnReduceFailure(t *testing.T) {
	dir := t.TempDir()
	job := sumJob(3000, Config{
		NumReducers:     2,
		SortMemoryItems: 2,
		GroupMode:       GroupSort,
		TempDir:         dir,
	})
	job.Reduce = func(ctx *ReduceCtx, key []byte, values *GroupIter) error {
		return fmt.Errorf("injected reduce failure")
	}
	res, err := Run(job)
	if err == nil {
		t.Fatal("failing reduce succeeded")
	}
	if res != nil {
		t.Fatal("failed job returned a result")
	}
	if !strings.Contains(err.Error(), "mr: reduce task ") {
		t.Fatalf("error lost its task identity: %v", err)
	}
	ents, rdErr := os.ReadDir(dir)
	if rdErr != nil {
		t.Fatal(rdErr)
	}
	if len(ents) != 0 {
		t.Fatalf("%d entries left in spill dir after failure", len(ents))
	}
	if fds := openFDsInDir(t, dir); len(fds) != 0 {
		t.Fatalf("spill descriptors leaked: %v", fds)
	}
}

// TestMultiTaskFailuresAllReported pins the errors.Join satellite: when
// several tasks fail independently, the job error carries each of them,
// labelled, rather than the old first-error-wins single cause.
func TestMultiTaskFailuresAllReported(t *testing.T) {
	job := sumJob(100, Config{
		NumReducers: 2,
		TempDir:     t.TempDir(),
		MaxAttempts: 1,
		// Fail two specific reduce tasks: reduce tasks of one group all
		// start together, so both record their error before cancellation
		// propagates from the other.
	})
	job.Reduce = func(ctx *ReduceCtx, key []byte, values *GroupIter) error {
		if err := values.Drain(); err != nil {
			return err
		}
		return fmt.Errorf("reducer boom")
	}
	_, err := Run(job)
	if err == nil {
		t.Fatal("failing job succeeded")
	}
	if !strings.Contains(err.Error(), "reducer boom") || !strings.Contains(err.Error(), "mr: reduce task ") {
		t.Fatalf("err = %v", err)
	}
	if errors.Is(err, context.Canceled) {
		t.Fatalf("real failure satisfies errors.Is(Canceled): %v", err)
	}
}
