package mr

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"testing"

	"github.com/casm-project/casm/internal/transport"
)

// sumCombine is a reentrant CombineFunc (its output is parseable as its
// input), as the streaming contract requires.
func sumCombine(key []byte, values [][]byte) ([][]byte, error) {
	total := 0
	for _, v := range values {
		n, err := strconv.Atoi(string(v))
		if err != nil {
			return nil, err
		}
		total += n
	}
	return [][]byte{[]byte(strconv.Itoa(total))}, nil
}

// TestFuncCombinerStreamingEqualsBuffered is the combine equivalence
// property: folding each pair into the per-key state as it arrives must
// flush the same result as buffering all of a key's values and applying
// the function once.
func TestFuncCombinerStreamingEqualsBuffered(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var keys []string
	var vals []int
	for i := 0; i < 2000; i++ {
		keys = append(keys, fmt.Sprintf("k%02d", rng.Intn(30)))
		vals = append(vals, rng.Intn(100))
	}

	// Streaming path: one Add per pair; the incoming value buffer is
	// deliberately reused to exercise the "valid only during Add" rule.
	var st TaskStats
	comb := newFuncCombiner(sumCombine, &st)
	scratch := make([]byte, 0, 8)
	for i, k := range keys {
		scratch = strconv.AppendInt(scratch[:0], int64(vals[i]), 10)
		if err := comb.Add([]byte(k), scratch); err != nil {
			t.Fatal(err)
		}
	}
	streamed := map[string]int{}
	var flushOrder []string
	if err := comb.Flush(func(kb, v []byte) error {
		k := string(kb)
		n, err := strconv.Atoi(string(v))
		if err != nil {
			return err
		}
		if _, dup := streamed[k]; dup {
			t.Errorf("key %q flushed twice", k)
		}
		streamed[k] = n
		flushOrder = append(flushOrder, k)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if comb.Len() != 0 {
		t.Errorf("combiner not reset: Len = %d", comb.Len())
	}
	if st.CombineMerges == 0 {
		t.Error("no streaming merges counted")
	}
	if !sort.StringsAreSorted(flushOrder) {
		t.Errorf("flush order not ascending: %v", flushOrder)
	}

	// Buffered reference: all of a key's values at once, one fold.
	grouped := map[string][][]byte{}
	for i, k := range keys {
		grouped[k] = append(grouped[k], []byte(strconv.Itoa(vals[i])))
	}
	if len(streamed) != len(grouped) {
		t.Fatalf("streamed %d keys, want %d", len(streamed), len(grouped))
	}
	for k, vs := range grouped {
		out, err := sumCombine([]byte(k), vs)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := strconv.Atoi(string(out[0]))
		if streamed[k] != want {
			t.Errorf("key %q: streamed %d, buffered %d", k, streamed[k], want)
		}
	}
}

// TestWordCountAcrossBatchSizes runs the same job with batching disabled
// (size 1), a small batch size, and the default, over both transports; the
// output must be identical and the batch counters consistent.
func TestWordCountAcrossBatchSizes(t *testing.T) {
	factories := map[string]transport.Factory{
		"channel": nil, // job default
		"tcp":     transport.TCPFactory(64),
	}
	for fname, factory := range factories {
		for _, size := range []int{1, 2, DefaultShuffleBatchPairs} {
			t.Run(fmt.Sprintf("%s/batch=%d", fname, size), func(t *testing.T) {
				res, err := Run(wordCountJob(wcLines, Config{
					NumReducers:       3,
					Transport:         factory,
					ShuffleBatchPairs: size,
					TempDir:           t.TempDir(),
				}))
				if err != nil {
					t.Fatal(err)
				}
				checkWordCount(t, res)
				var pairs, batches int64
				for _, m := range res.Stats.MapTasks {
					pairs += m.PairsOut
					batches += m.BatchesSent
				}
				if batches == 0 || batches > pairs {
					t.Errorf("BatchesSent = %d with PairsOut = %d", batches, pairs)
				}
				if size == 1 && batches != pairs {
					t.Errorf("unbatched: BatchesSent = %d, want %d", batches, pairs)
				}
				if size >= 2 && batches >= pairs {
					t.Errorf("batched (size %d): BatchesSent = %d not < PairsOut %d", size, batches, pairs)
				}
			})
		}
	}
}
