package mr

import (
	"fmt"
	"strconv"
	"testing"

	"github.com/casm-project/casm/internal/transport"
)

// BenchmarkShuffleTransports measures framework throughput (map + shuffle
// + sort + reduce) under both transports on a grouping job.
func BenchmarkShuffleTransports(b *testing.B) {
	records := make([][]byte, 100_000)
	for i := range records {
		records[i] = []byte(fmt.Sprintf("g%d %d", i%997, i))
	}
	job := func(factory transport.Factory, dir string) Job {
		return Job{
			Input: NewMemoryInput(records, 8),
			Map: func(ctx *MapCtx, rec []byte) error {
				for j := 0; j < len(rec); j++ {
					if rec[j] == ' ' {
						// Zero-copy emit: memory-input records are stable for the
						// job's life, so key and value alias them directly.
						return ctx.Emit(rec[:j], rec[j+1:])
					}
				}
				return nil
			},
			Reduce: func(ctx *ReduceCtx, key []byte, values *GroupIter) error {
				n := 0
				for {
					_, ok, err := values.Next()
					if err != nil {
						return err
					}
					if !ok {
						break
					}
					n++
				}
				ctx.Emit(key, []byte(strconv.Itoa(n)))
				return nil
			},
			Config: Config{NumReducers: 4, Transport: factory, TempDir: dir},
		}
	}
	for _, c := range []struct {
		name    string
		factory transport.Factory
	}{
		{"channel", transport.ChannelFactory(0)},
		{"tcp", transport.TCPFactory(0)},
	} {
		b.Run(c.name, func(b *testing.B) {
			dir := b.TempDir()
			for i := 0; i < b.N; i++ {
				res, err := Run(job(c.factory, dir))
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Output) != 997 {
					b.Fatalf("groups = %d", len(res.Output))
				}
			}
			b.ReportMetric(float64(len(records)*b.N)/b.Elapsed().Seconds(), "records/s")
		})
	}
}
