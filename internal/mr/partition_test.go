package mr

import (
	"fmt"
	"hash/fnv"
	"testing"
)

// TestHashPartitionPinned pins HashPartition's assignments for a fixed
// key corpus. The inlined FNV-1a loop must place every key exactly where
// the hash/fnv-backed implementation it replaced did: a drift here moves
// records between reducers, which changes per-reducer workloads and
// therefore simulated wall-clock results across the repo.
func TestHashPartitionPinned(t *testing.T) {
	corpus := []string{
		"", "a", "b", "ab", "ba", "key", "key-0", "key-1",
		"block|measure", "occ", "m_sum", "m_count",
		"\x00", "\x00\x01\x02", "\xff\xfe", "日本語",
		"the quick brown fox jumps over the lazy dog",
	}
	for i := 0; i < 64; i++ {
		corpus = append(corpus, fmt.Sprintf("k%03d", i), fmt.Sprintf("block-%d|suffix", i*7))
	}

	// Reference: the stock library FNV-1a, exactly what the pre-inline
	// implementation computed.
	ref := func(key string, n int) int {
		h := fnv.New32a()
		h.Write([]byte(key))
		return int(h.Sum32() % uint32(n))
	}
	for _, n := range []int{1, 2, 3, 5, 7, 8, 16, 100} {
		for _, k := range corpus {
			if got, want := HashPartition([]byte(k), n), ref(k, n); got != want {
				t.Fatalf("HashPartition(%q, %d) = %d, want %d", k, n, got, want)
			}
		}
	}

	// Literal pins for a handful of keys so the test fails loudly even if
	// both the inline loop and the reference were edited in lockstep.
	pinned := []struct {
		key  string
		n    int
		want int
	}{
		{"", 7, 2},
		{"a", 7, 5},
		{"key-0", 7, 6},
		{"block|measure", 7, 0},
		{"k000", 16, 14},
		{"the quick brown fox jumps over the lazy dog", 100, 72},
	}
	for _, p := range pinned {
		if got := HashPartition([]byte(p.key), p.n); got != p.want {
			t.Errorf("HashPartition(%q, %d) = %d, want pinned %d", p.key, p.n, got, p.want)
		}
	}
}

// TestHashPartitionZeroAlloc pins that the partitioner itself never
// allocates: it is called once per emitted pair on the map hot path.
func TestHashPartitionZeroAlloc(t *testing.T) {
	key := []byte("block-42|measure-payload")
	allocs := testing.AllocsPerRun(1000, func() {
		if HashPartition(key, 31) < 0 {
			t.Fatal("negative partition")
		}
	})
	if allocs != 0 {
		t.Errorf("HashPartition allocates %.1f allocs/op, want 0", allocs)
	}
}
