package mr

import (
	"context"
	"fmt"

	"github.com/casm-project/casm/internal/exec"
	"github.com/casm-project/casm/internal/transport"
)

// Morsel-driven map execution (Config.MorselBytes > 0), after Leis et
// al., "Morsel-Driven Parallelism" (SIGMOD '14): instead of pinning one
// goroutine to each input split, every split is carved into small
// contiguous record runs (morsels) that a fixed set of workers
// self-schedules over work-stealing deques. The unit of load balancing
// shrinks from a whole split to ~MorselBytes of records, so a split that
// turns out hot — clustered data, a zipf-dense block, an expensive
// record mix — is finished cooperatively by the whole pool instead of
// riding out one straggling task while its siblings idle.
//
// Aggregation keeps the two-phase shape of the same paper: each worker
// folds emitted pairs into its thread-local combiner table (phase 1,
// bounded by LocalAggBudget distinct states) and on overflow or
// exhaustion flushes the partials — in deterministic ascending key order
// — into the shuffle toward the reducers' global grouping collectors
// (phase 2, the hash-grouped internal/groupx path). Worker-local flush
// order is deterministic, and the reduce side is insensitive to the
// cross-worker interleaving (the same property concurrent fixed-split
// senders already rely on), so morsel output is byte-identical to
// fixed-split output; the engine property tests pin that equivalence.

// DefaultMorselBytes is the morsel size the engine uses when morsel mode
// is enabled without an explicit size: 32KiB of records is a few
// thousand records — small enough that a straggling split is carved into
// hundreds of stealable pieces, large enough that deque traffic is
// amortized over ~10^3 records of map work.
const DefaultMorselBytes = 32 << 10

// morselItem is one unit of stealable map work.
type morselItem struct {
	sp Split
}

// carveMorsels flattens the splits into a morsel list, carving splits
// that support it and passing the rest through whole. The returned
// owner[i] is the index of morsel i's originating split, used to deal
// morsels onto deques so each worker starts with a contiguous share.
func carveMorsels(splits []Split, targetBytes int) (items []morselItem, owners []int, err error) {
	for si, sp := range splits {
		ms, ok := sp.(MorselSplit)
		if !ok {
			items = append(items, morselItem{sp: sp})
			owners = append(owners, si)
			continue
		}
		subs, err := ms.Morsels(targetBytes)
		if err != nil {
			return nil, nil, fmt.Errorf("mr: carve %s: %w", sp.Label(), err)
		}
		for _, sub := range subs {
			items = append(items, morselItem{sp: sub})
			owners = append(owners, si)
		}
	}
	return items, owners, nil
}

// morselDispatcher deals carved morsels onto per-worker stealing deques.
type morselDispatcher struct {
	deques *exec.StealDeques[morselItem]
}

// newMorselDispatcher deals each split's morsels onto the deque of the
// split's worker (split index modulo workers): every worker starts on
// contiguous runs of whole splits — the sequential-scan locality of the
// fixed-split mode — and stealing only rearranges work once some deque
// runs dry.
func newMorselDispatcher(workers int, items []morselItem, owners []int) *morselDispatcher {
	d := &morselDispatcher{deques: exec.NewStealDeques[morselItem](workers)}
	for i, it := range items {
		d.deques.Push(owners[i], it)
	}
	return d
}

// runMorselWorker is one worker's life: build the thread-local pipeline
// (batch writer, combiner, user Local state), then pull morsels — own
// deque first, stealing when dry — until global exhaustion, and flush.
// It mirrors mapOnce except that the pipeline outlives any single
// split's worth of records.
func runMorselWorker(ctx context.Context, w int, d *morselDispatcher, mapFn MapFunc, st *TaskStats, cfg Config, tr transport.Transport) error {
	var bw *transport.BatchWriter
	if !cfg.ShuffleDisabled {
		bw = transport.NewBatchWriter(ctx, tr, cfg.NumReducers, cfg.ShuffleBatchPairs)
	}
	send := func(key, value []byte) error {
		st.PairsOut++
		st.BytesOut += int64(len(key) + len(value))
		if bw == nil {
			return nil
		}
		return bw.Send(cfg.Partition(cfg.GroupBy(key), cfg.NumReducers), transport.Pair{Key: key, Value: value})
	}

	var comb Combiner
	emit := send
	switch {
	case cfg.NewCombiner != nil:
		comb = cfg.NewCombiner(st)
	case cfg.Combine != nil:
		comb = newFuncCombiner(cfg.Combine, st)
	}
	if comb != nil {
		emit = func(key, value []byte) error {
			st.CombineInputs++
			before := comb.Len()
			if err := comb.Add(key, value); err != nil {
				return err
			}
			if comb.Len() == before {
				// Fully absorbed into existing thread-local state — the
				// pre-aggregation "hit" the local table exists to produce.
				st.LocalAggHits++
			}
			if comb.Len() >= cfg.LocalAggBudget {
				// Phase-1 overflow: spill the local table into the global
				// collectors via the shuffle, sorted-key order (Flush's
				// determinism contract).
				st.LocalAggSpills++
				return comb.Flush(send)
			}
			return nil
		}
	}
	mctx := &MapCtx{Stats: st, emit: emit}
	if cfg.NewMapLocal != nil {
		mctx.Local = cfg.NewMapLocal(st)
	}

	done := ctx.Done()
	for {
		item, stolen, ok := d.deques.Next(w)
		if !ok {
			break
		}
		st.MorselsDispatched++
		if stolen {
			st.MorselSteals++
		}
		select {
		case <-done:
			return ctx.Err()
		default:
		}
		it, err := item.sp.Open()
		if err != nil {
			return err
		}
		st.BytesRead += item.sp.SizeBytes()
		if err := scanRecords(ctx, it, mapFn, mctx, st); err != nil {
			return err
		}
	}
	if comb != nil {
		if err := comb.Flush(send); err != nil {
			return err
		}
	}
	if bw != nil {
		if err := bw.Flush(); err != nil {
			return err
		}
		st.BatchesSent += bw.Batches()
	}
	return nil
}

// runMorselWorkerTask wraps runMorselWorker with the same start-of-task
// retry contract as runMapTask: the failure injector fires before the
// worker pulls any morsel (so retries cannot re-emit), and cancellation
// is never retried.
func runMorselWorkerTask(ctx context.Context, w int, d *morselDispatcher, mapFn MapFunc, st *TaskStats, cfg Config, tr transport.Transport) error {
	var lastErr error
	for attempt := 1; attempt <= cfg.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		st.Attempts = attempt
		if cfg.FailureInjector != nil {
			if err := cfg.FailureInjector(st.Task, attempt); err != nil {
				lastErr = err
				continue
			}
		}
		return runMorselWorker(ctx, w, d, mapFn, st, cfg, tr)
	}
	return fmt.Errorf("giving up after %d attempts: %w", cfg.MaxAttempts, lastErr)
}
