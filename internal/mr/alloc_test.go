package mr

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"github.com/casm-project/casm/internal/transport"
)

// TestEmitShuffleGroupAllocs pins the steady-state allocation rate of the
// per-pair hot path — MapCtx.Emit → partition → batched channel shuffle →
// hash grouping — at (near) zero. It measures whole-job allocations at
// two input sizes over the SAME key set and divides the difference by the
// extra pairs: fixed per-job costs (task setup, channels, the hash
// table's group entries) cancel out, leaving only what each additional
// pair costs. With byte-slice keys end to end that is amortized slice
// regrowth and one batch frame per 256 pairs — well under 0.1 allocs per
// pair; the old string-keyed plane paid 1+ allocs per pair just
// materializing keys.
func TestEmitShuffleGroupAllocs(t *testing.T) {
	const nKeys = 512
	mkRecords := func(n int) [][]byte {
		records := make([][]byte, n)
		for i := range records {
			records[i] = []byte(fmt.Sprintf("g%03d %d", i%nKeys, i))
		}
		return records
	}
	run := func(records [][]byte) {
		res, err := Run(Job{
			Input: NewMemoryInput(records, 4),
			Map: func(ctx *MapCtx, rec []byte) error {
				for j := 0; j < len(rec); j++ {
					if rec[j] == ' ' {
						// Memory-input records are stable for the job's
						// life, so zero-copy aliasing emits are legal.
						return ctx.Emit(rec[:j], rec[j+1:])
					}
				}
				return nil
			},
			Reduce: func(ctx *ReduceCtx, key []byte, values *GroupIter) error {
				return values.Drain()
			},
			Config: Config{NumReducers: 4, GroupMode: GroupHash},
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.TotalOutputRecords() != 0 {
			t.Fatal("unexpected output")
		}
	}

	small, big := mkRecords(16384), mkRecords(65536)
	run(small) // warm up: lazily initialized runtime state shouldn't bill the measurement
	allocsSmall := testing.AllocsPerRun(3, func() { run(small) })
	allocsBig := testing.AllocsPerRun(3, func() { run(big) })
	perPair := (allocsBig - allocsSmall) / float64(len(big)-len(small))
	t.Logf("allocs: %.0f @ %d pairs, %.0f @ %d pairs => %.4f allocs/pair",
		allocsSmall, len(small), allocsBig, len(big), perPair)
	if perPair > 0.1 {
		t.Errorf("steady-state hot path costs %.4f allocs/pair, want < 0.1", perPair)
	}
}

// propJob builds either the zero-copy job under test or its string-keyed
// reference: the same logical job, but every key round-trips through a Go
// string into a fresh copy (the allocation pattern of the retired
// EmitString shims). The byte-keyed plane must be byte-identical to it.
func propJob(records [][]byte, stringKeyed bool, mode GroupMode, groupBy func([]byte) []byte) Job {
	return Job{
		Input: NewMemoryInput(records, 3),
		Map: func(ctx *MapCtx, rec []byte) error {
			j := 0
			for j < len(rec) && rec[j] != ' ' {
				j++
			}
			if stringKeyed {
				// Reference: key round-trips through a string, value
				// through a fresh copy.
				return ctx.Emit([]byte(string(rec[:j])), append([]byte(nil), rec[j+1:]...))
			}
			return ctx.Emit(rec[:j], rec[j+1:]) // zero-copy: input records are job-stable
		},
		Reduce: func(ctx *ReduceCtx, key []byte, values *GroupIter) error {
			var sb strings.Builder
			for {
				p, ok, err := values.Next()
				if err != nil {
					return err
				}
				if !ok {
					break
				}
				sb.WriteString(string(p.Key))
				sb.WriteByte('=')
				sb.Write(p.Value)
				sb.WriteByte(';')
			}
			ctx.Emit(key, []byte(sb.String())) // Emit copies the key on both planes
			return nil
		},
		Config: Config{
			NumReducers: 3,
			// Serialize map tasks so hash-path arrival order is
			// deterministic across the byte/string runs.
			MapParallelism:  1,
			GroupMode:       mode,
			GroupBy:         groupBy,
			SortMemoryItems: 2, // force spill runs on both grouping paths
		},
	}
}

func sortedOutput(t *testing.T, job Job) []string {
	t.Helper()
	res, err := Run(job)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(res.Output))
	for i, p := range res.Output {
		out[i] = string(p.Key) + "\x00" + string(p.Value)
	}
	sort.Strings(out)
	return out
}

// TestBytePathMatchesStringReference is the zero-copy refactor's
// equivalence property: across fuzz seeds, with spills forced on every
// path (SortMemoryItems=2), the byte-keyed data plane must produce output
// byte-identical to the string-keyed reference shim — under both sorted
// grouping with a composite key and hash grouping — and, for the sorted
// mode, to a plain in-memory reference computed with string maps.
func TestBytePathMatchesStringReference(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			n := 200 + rng.Intn(400)
			records := make([][]byte, n)
			for i := range records {
				// Composite key "g<k>|<i>": unique per pair, so the sorted
				// path's within-group order is fully determined.
				records[i] = []byte(fmt.Sprintf("g%02d|%04d v%d", rng.Intn(17), i, rng.Intn(100)))
			}
			prefix := func(k []byte) []byte {
				for i, c := range k {
					if c == '|' {
						return k[:i] // aliasing prefix: the zero-alloc idiom
					}
				}
				return k
			}
			prefixCopy := func(k []byte) []byte {
				// Reference shim's GroupBy: string round-trip, fresh bytes.
				return []byte(strings.SplitN(string(k), "|", 2)[0])
			}

			// Sorted grouping with a composite key.
			gotSort := sortedOutput(t, propJob(records, false, GroupSort, prefix))
			refSort := sortedOutput(t, propJob(records, true, GroupSort, prefixCopy))
			if fmt.Sprint(gotSort) != fmt.Sprint(refSort) {
				t.Errorf("GroupSort: byte-keyed output diverges from string reference\n got %q\nwant %q", gotSort, refSort)
			}

			// Plain in-memory reference for the sorted mode: sort emitted
			// pairs by full string key, group by prefix, concatenate.
			type kv struct{ k, v string }
			var pairs []kv
			for _, rec := range records {
				s := string(rec)
				j := strings.IndexByte(s, ' ')
				pairs = append(pairs, kv{s[:j], s[j+1:]})
			}
			sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
			var want []string
			for i := 0; i < len(pairs); {
				g := strings.SplitN(pairs[i].k, "|", 2)[0]
				var sb strings.Builder
				for ; i < len(pairs) && strings.HasPrefix(pairs[i].k, g+"|"); i++ {
					fmt.Fprintf(&sb, "%s=%s;", pairs[i].k, pairs[i].v)
				}
				want = append(want, g+"\x00"+sb.String())
			}
			sort.Strings(want)
			if fmt.Sprint(gotSort) != fmt.Sprint(want) {
				t.Errorf("GroupSort: byte-keyed output diverges from in-memory reference\n got %q\nwant %q", gotSort, want)
			}

			// Hash grouping (identity group, arrival order within groups).
			gotHash := sortedOutput(t, propJob(records, false, GroupHash, nil))
			refHash := sortedOutput(t, propJob(records, true, GroupHash, nil))
			if fmt.Sprint(gotHash) != fmt.Sprint(refHash) {
				t.Errorf("GroupHash: byte-keyed output diverges from string reference\n got %q\nwant %q", gotHash, refHash)
			}
		})
	}
}

// TestBytePathMatchesStringReferenceTCP re-runs one equivalence seed over
// the TCP transport, so the binary framing's decode path is covered by
// the same byte-identity property.
func TestBytePathMatchesStringReferenceTCP(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	records := make([][]byte, 300)
	for i := range records {
		records[i] = []byte(fmt.Sprintf("g%02d|%04d v%d", rng.Intn(17), i, rng.Intn(100)))
	}
	prefix := func(k []byte) []byte {
		for i, c := range k {
			if c == '|' {
				return k[:i]
			}
		}
		return k
	}
	withTCP := func(j Job) Job {
		j.Config.Transport = transport.TCPFactory(0)
		return j
	}
	got := sortedOutput(t, withTCP(propJob(records, false, GroupSort, prefix)))
	ref := sortedOutput(t, propJob(records, true, GroupSort, prefix))
	if fmt.Sprint(got) != fmt.Sprint(ref) {
		t.Errorf("TCP byte-keyed output diverges from channel string reference\n got %q\nwant %q", got, ref)
	}
}
