// Package mr is a from-scratch MapReduce-style execution framework, the
// substrate the paper runs on (it used Hadoop; "the algorithm can be
// implemented in any OLAP system which supports scatter-and-gather
// evaluation paradigm"). It provides:
//
//   - input splits (DFS blocks or in-memory slices) fanned out to a pool
//     of concurrent map tasks;
//   - optional map-side combining (the paper's early aggregation);
//   - a hash-partitioned shuffle over a pluggable transport (in-memory
//     channels or real TCP with binary framing);
//   - reducer-side grouping via external sort, with a configurable group
//     identity so a composite sort key can carry a secondary order (the
//     Section III-D combined-key optimization);
//   - per-task counters that feed the cost model, and fault injection
//     with bounded task retry.
//
// The record data plane is byte-keyed end to end: keys travel as []byte
// from MapCtx.Emit through the shuffle, the reducer's grouping collector,
// and GroupIter without ever materializing a Go string, so the hot path
// allocates nothing per pair. The string-keyed compatibility shims that
// eased the migration (EmitString and friends) are gone.
//
// Execution is streaming: RunPipe starts the job and returns a Pipe —
// a single-use iterator over the output pairs that yields each reduce
// task's records as it emits them, concurrently with the rest of the
// reduce phase (per-reducer readiness replaces the global
// collect→reduce barrier). RunContext is the materializing wrapper
// (drain the Pipe into one Result slice); Run the context.Background()
// wrapper on top of that. The goroutines doing the work come from a
// shared exec.Executor (Config.Executor), so any number of concurrent
// jobs multiplex over one bounded pool. The context cancels the whole
// pipeline: senders unblock, collectors drain and close, spill runs are
// reclaimed, and the job's error satisfies errors.Is(err,
// context.Canceled).
package mr

import (
	"fmt"
	"runtime"
	"time"

	"github.com/casm-project/casm/internal/exec"
	"github.com/casm-project/casm/internal/iterx"
	"github.com/casm-project/casm/internal/transport"
)

// TaskStats counts one task's work; the fields mirror
// costmodel.MapWork/ReduceWork.
type TaskStats struct {
	Task     string
	Attempts int

	// Timing is the scheduler-stamped task lifecycle: Start is when the
	// executor dispatched the task (so Start minus the job's start is
	// the queueing delay the shared pool imposed) and Wall how long it
	// ran. Observability only — the cost model prices neither, and the
	// figures pipeline never serializes them.
	exec.Timing

	// Map side.
	BytesRead     int64
	Records       int64
	PairsOut      int64
	BytesOut      int64
	BatchesSent   int64 // shuffle batches shipped (≤ PairsOut; = PairsOut unbatched)
	CombineInputs int64 // pairs that entered the combiner
	CombineMerges int64 // pairs merged in place into an existing partial state
	KeyCacheHits  int64 // shuffle keys served by the task's intern cache instead of a fresh allocation

	// Morsel-mode counters (zero in fixed-split mode). A map "task" is
	// then one morsel worker, not one split; see Config.MorselBytes.
	MorselsDispatched int64 // morsels this worker pulled and processed
	MorselSteals      int64 // of those, morsels stolen from another worker's deque
	LocalAggHits      int64 // emitted pairs fully absorbed by an existing thread-local partial state
	LocalAggSpills    int64 // thread-local table overflows flushed into the shuffle before morsel exhaustion

	// Cross-query sharing counters (zero outside batched/cached runs).
	PlanCacheHits        int64 // plans this job reused from the keyed decision cache instead of re-planning
	SharedScanQueries    int64 // queries served by this task's single input scan (1 for an unshared job)
	SharedScanBytesSaved int64 // input bytes NOT re-read thanks to sharing: (SharedScanQueries-1) * BytesRead

	// Reduce side.
	PairsIn         int64
	BytesIn         int64
	SortItems       int64 // items grouped (sorted or hash-collected) reducer-side
	SpillBytes      int64
	SpillRuns       int64
	SortAllocsSaved int64 // sorter encode/decode ops served by reused buffers
	HashGroups      int64 // distinct groups resident in the hash collector (0 on the sorted path)
	GroupSpills     int64 // hash-table flushes into the sorted-run fallback
	GroupSortItems  int64
	GroupSpillBytes int64
	EvalRecords     int64
	OutputRecords   int64
	EvalArenaBytes  int64 // high-water footprint of the evaluator session's arenas
	AggPoolHits     int64 // aggregators served by the session pool instead of a fresh allocation
	WindowLookups   int64 // sibling-window probes during sliding-measure evaluation

	// Materialized result-cache counters (zero without a result cache).
	ResultCacheHits   int64 // groups whose output was served from the cache instead of evaluated
	ResultCacheMisses int64 // groups evaluated and then materialized into the cache
	ResultCacheBytes  int64 // cached result bytes served in place of evaluation

	// CollectDone is when this reducer's shuffle drain completed,
	// relative to the job's start — the moment its reduce task became
	// runnable under per-reducer readiness. Observability only: never
	// priced by the cost model, never serialized by the figures pipeline.
	CollectDone time.Duration
}

// JobStats aggregates a run's counters.
type JobStats struct {
	MapTasks    []TaskStats
	ReduceTasks []TaskStats
	Shuffled    int64
	Wall        time.Duration

	// Stage timestamps, relative to the job's start. Observability for
	// the pipelined data plane — the cost model prices neither, and the
	// figures pipeline never serializes them (simulated seconds stay a
	// pure function of the priced counters).
	//
	// MapDone is when the last map task finished; FirstOutput when the
	// first output batch reached the job's result stream (zero if the job
	// produced no output). FirstOutput < MapDone demonstrates pipelining:
	// output flowed while map tasks were still running.
	MapDone     time.Duration
	FirstOutput time.Duration
}

// TotalOutputRecords sums the reducers' emitted records.
func (s JobStats) TotalOutputRecords() int64 {
	var n int64
	for _, t := range s.ReduceTasks {
		n += t.OutputRecords
	}
	return n
}

// RecordIter yields the raw records of one split: a single-use iterx
// stream of record byte-slices, each only valid until the following Next
// (or Close). The framework closes every iterator it opens, including on
// error paths, so sources may tie resources (block buffers, descriptors)
// to the iterator's lifetime.
type RecordIter = iterx.Iter[[]byte]

// Split is one independently processable chunk of input.
type Split interface {
	Label() string
	SizeBytes() int64
	Open() (RecordIter, error)
}

// Input enumerates a job's splits.
type Input interface {
	Splits() ([]Split, error)
}

// MorselSplit is implemented by splits that can be carved into small
// independently openable sub-ranges ("morsels") for morsel-driven map
// execution (Config.MorselBytes). Morsels partition the split's records:
// concatenating the morsels' record streams in order yields exactly the
// split's stream. Each morsel is itself a Split (its SizeBytes feeds
// work-stealing accounting, its Label debugging); morsels may alias the
// parent split's storage, which must stay valid while any morsel is in
// use. Splits that do not implement the interface run as one indivisible
// morsel — morsel mode degrades to fixed-split granularity for them
// instead of failing.
type MorselSplit interface {
	Split
	// Morsels carves the split into runs of whole records, each targeting
	// targetBytes of record data (the tail may be smaller; one oversized
	// record still forms a morsel).
	Morsels(targetBytes int) ([]Split, error)
}

// MapCtx is passed to the map function.
type MapCtx struct {
	// Stats are the task's counters; map functions may bump EvalRecords
	// etc. for engine-specific accounting.
	Stats *TaskStats
	// Local is per-task user state created by Config.NewMapLocal (nil
	// otherwise): scratch buffers, key arenas — anything a map function
	// needs to carry across records without sharing it between
	// concurrently running tasks.
	Local any
	emit  func(key, value []byte) error
}

// Emit sends one key/value pair into the shuffle.
//
// Ownership: without a combiner the framework does NOT copy key or value
// — they are buffered in shuffle batches and retained until the job
// completes, so both must reference memory that stays valid and
// unmodified for the job's duration (input-split block bytes, interned
// or arena-backed keys, and freshly allocated slices all qualify; a
// scratch buffer the mapper rewrites does not). With a combiner, key and
// value only need to stay valid for the duration of the Emit call — the
// combiner copies the key on first sight and folds the value into its
// partial state immediately.
func (c *MapCtx) Emit(key, value []byte) error { return c.emit(key, value) }

// MapFunc processes one input record.
type MapFunc func(ctx *MapCtx, record []byte) error

// CombineFunc merges the values of one key map-side and returns the
// (hopefully fewer/smaller) values to ship. The framework applies it
// streamingly: each arriving value is folded into the key's current
// partial state, so values may include the function's OWN prior outputs
// (the standard Hadoop combiner contract — the function must be
// associative over its output representation). Implementations needing to
// distinguish raw records from partial states should use the Combiner
// interface instead. The key is only valid during the call; input value
// slices are owned by the framework and outputs may alias them.
type CombineFunc func(key []byte, values [][]byte) ([][]byte, error)

// Combiner is the streaming form of map-side early aggregation
// (morsel-style thread-local pre-aggregation): one instance serves one
// map task, absorbing emitted pairs into per-key partial states and
// emitting them on flush. Implementations are single-goroutine.
type Combiner interface {
	// Add folds one emitted pair into the key's partial state. key and
	// value are only valid during the call; the combiner must copy (or
	// intern) whatever it retains.
	Add(key, value []byte) error
	// Flush emits every buffered partial state in ascending key order
	// (keeping shuffle send order deterministic) and resets the combiner.
	// Emitted keys and values are handed off to the framework (see
	// MapCtx.Emit's no-combiner ownership rule: they must stay valid for
	// the job's duration).
	Flush(emit func(key, value []byte) error) error
	// Len reports the number of buffered partial states, the framework's
	// flush trigger.
	Len() int
}

// CombinerFactory creates one Combiner per map task. The factory may bump
// the task's CombineMerges counter from inside the combiner.
type CombinerFactory func(st *TaskStats) Combiner

// ReduceCtx is passed to the reduce function.
type ReduceCtx struct {
	Stats   *TaskStats
	TempDir string
	// Local is per-task user state created by Config.NewReduceLocal (nil
	// otherwise); see MapCtx.Local.
	Local any
	emit  func(key, value []byte)
}

// Emit contributes one record to the job output. The framework COPIES
// key (so borrowed group keys and reused name buffers are safe to pass)
// but takes ownership of value without copying: the reducer must not
// reuse or mutate the value slice afterwards.
func (c *ReduceCtx) Emit(key, value []byte) {
	c.Stats.OutputRecords++
	c.emit(append([]byte(nil), key...), value)
}

// EmitStable is Emit without the key copy, for reducers that emit many
// records under few distinct keys: the caller guarantees key stays valid
// and unmodified for the job's duration (an interned or arena-backed key
// qualifies; a reused scratch buffer does not). The framework retains it
// uncopied, so output pairs of the same key share one allocation. Value
// ownership matches Emit: handed off uncopied.
func (c *ReduceCtx) EmitStable(key, value []byte) {
	c.Stats.OutputRecords++
	c.emit(key, value)
}

// ReduceFunc processes one group. Values arrive ordered by the full
// shuffle key (useful with a composite key); the group boundary is
// defined by Config.GroupBy. groupKey is only valid for the duration of
// the call — retain a copy if needed.
type ReduceFunc func(ctx *ReduceCtx, groupKey []byte, values *GroupIter) error

// GroupMode selects how a reducer groups its shuffled pairs.
type GroupMode int

const (
	// GroupAuto picks hash grouping when no GroupBy is configured (every
	// pair of a group then shares one full key, so a total order adds
	// nothing) and sorted grouping otherwise (a composite key's suffix
	// carries a secondary order the reduce function relies on).
	GroupAuto GroupMode = iota
	// GroupSort always drains the shuffle through the external sorter:
	// groups arrive in ascending key order and pairs within a group in
	// full-shuffle-key order.
	GroupSort
	// GroupHash collects pairs into a per-reducer hash table of group →
	// pairs, spilling to sorted runs when Config.SortMemoryItems is
	// exceeded. Groups still arrive in ascending group-key order (the
	// table is drained sorted), but pairs within a group keep arrival
	// order — only correct when the reduce function needs grouping, not
	// a secondary sort.
	GroupHash
)

// Config tunes a job run.
type Config struct {
	// NumReducers is the number of reduce tasks (required, ≥ 1).
	NumReducers int
	// Executor is the shared task-scheduler pool the job's map and
	// reduce tasks run on (default: the process-wide exec.Default()).
	// Concurrent jobs configured with the same executor multiplex over
	// its bounded workers with FIFO-fair admission instead of each
	// spawning their own goroutines.
	Executor *exec.Executor
	// MapParallelism bounds this job's concurrent map tasks (default
	// GOMAXPROCS); on a shared executor it is the job's admission limit,
	// so one job cannot monopolize the pool.
	MapParallelism int
	// ReduceParallelism bounds this job's concurrent reduce tasks
	// (default GOMAXPROCS); see MapParallelism.
	ReduceParallelism int
	// Transport produces the shuffle transport (default in-memory).
	Transport transport.Factory
	// ShuffleBatchPairs sets how many pairs each map task buffers per
	// reducer before shipping them as one framed batch (default 256; 1
	// disables batching and sends pair-at-a-time).
	ShuffleBatchPairs int
	// NewCombiner enables map-side early aggregation with a streaming
	// combiner when non-nil. Takes precedence over Combine.
	NewCombiner CombinerFactory
	// Combine enables map-side early aggregation when non-nil; the
	// function is applied streamingly and must satisfy the CombineFunc
	// reentrancy contract. Prefer NewCombiner for stateful aggregation.
	Combine CombineFunc
	// CombineBufferPairs flushes the combiner when this many per-key
	// partial states are buffered (default 65536). With streaming merge
	// this bounds distinct keys held, not raw pairs.
	CombineBufferPairs int
	// MorselBytes, when > 0, switches the map phase from one task per
	// split to morsel-driven execution: every split that supports it (see
	// MorselSplit) is carved into contiguous ~MorselBytes runs of records,
	// dealt round-robin onto per-worker deques, and processed by
	// MapParallelism workers that steal from each other's deques once
	// their own drain — so a hot split is finished by many workers instead
	// of riding out one straggler. Each worker owns one thread-local
	// pipeline (combiner table, Local state, batch writer), and map-task
	// counters are per worker rather than per split. FailureInjector fires
	// once per worker before it pulls any morsel (retried up to
	// MaxAttempts, like a fixed-split task start); mid-stream errors are
	// never retried in either mode. 0 keeps the fixed-split map phase.
	MorselBytes int
	// LocalAggBudget caps the distinct partial states a morsel worker's
	// thread-local pre-aggregation table holds before it is spilled —
	// flushed, in deterministic sorted-key order, into the shuffle toward
	// the global grouping collectors (the Leis et al. two-phase shape:
	// local hash table, overflow to global partitions). Default
	// CombineBufferPairs; ignored in fixed-split mode.
	LocalAggBudget int
	// ShuffleDisabled runs the map phase only (the Figure 4(d) "Map-Only"
	// stage): pairs are counted but not sent, and no reduce phase runs.
	ShuffleDisabled bool
	// GroupMode selects the reducer's grouping strategy (default
	// GroupAuto; see the GroupMode constants).
	GroupMode GroupMode
	// SortMemoryItems bounds the reducer's in-memory grouping buffer in
	// items before spilling — the sort buffer on the sorted path, the
	// buffered-pair count of the hash collector on the hash path (default
	// 1<<20; set small to force spills).
	SortMemoryItems int
	// TempDir hosts spill files (default OS temp).
	TempDir string
	// Partition maps a key to a reducer (default FNV-1a hash). It must
	// not retain or mutate the key bytes.
	Partition func(key []byte, numReducers int) int
	// GroupBy extracts the group identity from a shuffle key (default
	// identity). With a composite key "block|sortsuffix" the engine sets
	// this to strip the suffix, realizing the combined-key sort. The
	// returned slice may alias the input key (a prefix sub-slice is the
	// zero-alloc idiom) and must not be retained by the framework beyond
	// the comparison it serves; implementations must not mutate key.
	GroupBy func(key []byte) []byte
	// NewMapLocal, when non-nil, is called once per map task (attempt)
	// and its result exposed as MapCtx.Local.
	NewMapLocal func(st *TaskStats) any
	// NewReduceLocal, when non-nil, is called once per reduce task and
	// its result exposed as ReduceCtx.Local.
	NewReduceLocal func(st *TaskStats) any
	// FailureInjector, when non-nil, is called at each task start; a
	// non-nil error fails that attempt (used by fault-tolerance tests).
	FailureInjector func(task string, attempt int) error
	// MaxAttempts bounds task retries (default 3).
	MaxAttempts int
}

func (c Config) withDefaults() (Config, error) {
	if c.NumReducers < 1 {
		return c, fmt.Errorf("mr: NumReducers %d < 1", c.NumReducers)
	}
	if c.Executor == nil {
		c.Executor = exec.Default()
	}
	if c.MapParallelism < 1 {
		c.MapParallelism = runtime.GOMAXPROCS(0)
	}
	if c.ReduceParallelism < 1 {
		c.ReduceParallelism = runtime.GOMAXPROCS(0)
	}
	if c.Transport == nil {
		c.Transport = transport.ChannelFactory(0)
	}
	if c.ShuffleBatchPairs < 1 {
		c.ShuffleBatchPairs = DefaultShuffleBatchPairs
	}
	if c.CombineBufferPairs < 1 {
		c.CombineBufferPairs = 1 << 16
	}
	if c.LocalAggBudget < 1 {
		c.LocalAggBudget = c.CombineBufferPairs
	}
	if c.SortMemoryItems < 1 {
		c.SortMemoryItems = 1 << 20
	}
	if c.Partition == nil {
		c.Partition = HashPartition
	}
	if c.GroupMode == GroupAuto {
		// Resolve before GroupBy is defaulted: a nil GroupBy means the
		// group identity IS the full key, so hash grouping loses nothing.
		if c.GroupBy == nil {
			c.GroupMode = GroupHash
		} else {
			c.GroupMode = GroupSort
		}
	}
	if c.GroupBy == nil {
		c.GroupBy = func(k []byte) []byte { return k }
	}
	if c.MaxAttempts < 1 {
		c.MaxAttempts = 3
	}
	return c, nil
}

// DefaultShuffleBatchPairs is the default per-reducer shuffle batch size.
// 256 pairs amortize the per-frame channel/framing cost well below the
// per-pair work while keeping at most a few thousand pairs buffered per
// map task.
const DefaultShuffleBatchPairs = 256

// HashPartition is the default FNV-1a partitioner. The hash loop is
// inlined (rather than hash/fnv) so partitioning a key allocates nothing;
// the constants are FNV-1a's 32-bit offset basis and prime, producing
// assignments identical to fnv.New32a over the same bytes.
func HashPartition(key []byte, n int) int {
	h := uint32(2166136261)
	for _, c := range key {
		h ^= uint32(c)
		h *= 16777619
	}
	return int(h % uint32(n))
}

// Job couples input, user functions, and configuration.
type Job struct {
	Name   string
	Input  Input
	Map    MapFunc
	Reduce ReduceFunc
	Config Config
}

// Result is a completed job's output.
type Result struct {
	Output []transport.Pair
	Stats  JobStats
}
