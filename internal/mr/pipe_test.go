package mr

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/casm-project/casm/internal/exec"
	"github.com/casm-project/casm/internal/transport"
)

// TestPipeStreamsMatchRun pins the streaming plane's equivalence with the
// materialized one (same job, same pairs) and the Pipe's iterx contract:
// Next latches ok=false after exhaustion, Close after exhaustion is a
// no-op, and double Close is idempotent.
func TestPipeStreamsMatchRun(t *testing.T) {
	cfg := Config{NumReducers: 3, SortMemoryItems: 2, GroupMode: GroupSort, TempDir: t.TempDir()}
	res, err := Run(sumJob(3000, cfg))
	if err != nil {
		t.Fatal(err)
	}
	want := make([]string, len(res.Output))
	for i, p := range res.Output {
		want[i] = string(p.Key) + "=" + string(p.Value)
	}
	sort.Strings(want)

	cfg.TempDir = t.TempDir()
	pipe, err := RunPipe(context.Background(), sumJob(3000, cfg))
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for {
		p, ok, err := pipe.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		got = append(got, string(p.Key)+"="+string(p.Value))
	}
	sort.Strings(got)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("streamed output diverges from materialized: %d vs %d pairs", len(got), len(want))
	}

	// Exhaustion latches: every further Next is ok=false with no error.
	for i := 0; i < 3; i++ {
		if _, ok, err := pipe.Next(); ok || err != nil {
			t.Fatalf("Next after exhaustion: ok=%v err=%v", ok, err)
		}
	}
	if pipe.Stats().TotalOutputRecords() != int64(len(got)) {
		t.Fatalf("stats output count %d != streamed %d", pipe.Stats().TotalOutputRecords(), len(got))
	}
	if err := pipe.Close(); err != nil {
		t.Fatalf("Close after exhaustion: %v", err)
	}
	if err := pipe.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
	if _, ok, err := pipe.Next(); ok || err != nil {
		t.Fatalf("Next after Close: ok=%v err=%v", ok, err)
	}
}

// TestPipeCloseMidStreamReleasesSpillState extends the cancellation FD
// matrix to the streaming consumer's early exit: abandoning a Pipe — both
// before any output arrived (job mid-map) and after consuming one batch
// (sibling reducers mid-collect, spill runs on disk) — must tear the job
// down like a context cancel: Close returns nil (deliberate abandonment
// is not an error), the spill dir is empty, no descriptor into it stays
// open, and the process returns to its goroutine baseline.
func TestPipeCloseMidStreamReleasesSpillState(t *testing.T) {
	if _, err := Run(sumJob(500, Config{NumReducers: 2, TempDir: t.TempDir()})); err != nil {
		t.Fatal(err) // warm the shared executor before baselining
	}
	baseline := settleGoroutines(t)

	for _, tf := range []struct {
		name string
		f    transport.Factory
	}{
		{"channel", transport.ChannelFactory(4)},
		{"tcp", transport.TCPFactory(4)},
	} {
		for _, point := range []string{"immediate", "after-first-batch"} {
			t.Run(tf.name+"/"+point, func(t *testing.T) {
				dir := t.TempDir()
				pipe, err := RunPipe(context.Background(), sumJob(6000, Config{
					NumReducers:     3,
					Transport:       tf.f,
					SortMemoryItems: 2, // spill every third pair
					GroupMode:       GroupSort,
					TempDir:         dir,
				}))
				if err != nil {
					t.Fatal(err)
				}
				if point == "after-first-batch" {
					if _, _, ok, err := pipe.NextBatch(); !ok || err != nil {
						t.Fatalf("first batch: ok=%v err=%v", ok, err)
					}
				}
				if err := pipe.Close(); err != nil {
					t.Fatalf("mid-stream Close: %v", err)
				}
				if ents, err := os.ReadDir(dir); err != nil || len(ents) != 0 {
					t.Fatalf("spill dir not empty after Close: %v entries, err=%v", len(ents), err)
				}
				if fds := openFDsInDir(t, dir); len(fds) != 0 {
					t.Fatalf("spill descriptors leaked: %v", fds)
				}
				if _, _, ok, err := pipe.NextBatch(); ok || !errors.Is(err, ErrClosed) {
					t.Fatalf("NextBatch after Close: ok=%v err=%v, want ErrClosed", ok, err)
				}
				// Close stays idempotent after the abandoned read.
				if err := pipe.Close(); err != nil {
					t.Fatalf("second Close: %v", err)
				}
			})
		}
	}
	waitForGoroutines(t, baseline)
}

// earlyCloseTransport is the pipelining probe: a shuffle transport for a
// single reducer whose receive stream ends at the FIRST batch (later
// sends are dropped). It makes "this reducer's senders are done" happen
// while map tasks still run, so the per-reducer readiness path — collect
// completes → reduce runs → output flows — is observable mid-map without
// waiting for the global CloseSend barrier.
type earlyCloseTransport struct {
	ch        chan []transport.Pair
	delivered atomic.Bool
	mu        sync.Mutex
	bytes     atomic.Int64
	batches   atomic.Int64
}

func newEarlyCloseTransport(numReducers int) (transport.Transport, error) {
	if numReducers != 1 {
		return nil, fmt.Errorf("earlyCloseTransport: single reducer only, got %d", numReducers)
	}
	return &earlyCloseTransport{ch: make(chan []transport.Pair, 1)}, nil
}

func (e *earlyCloseTransport) Send(ctx context.Context, r int, p transport.Pair) error {
	return e.SendBatch(ctx, r, []transport.Pair{p})
}

func (e *earlyCloseTransport) SendBatch(ctx context.Context, r int, ps []transport.Pair) error {
	if len(ps) == 0 {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.delivered.Load() {
		return nil // stream over: drop (the probe only needs one batch through)
	}
	for _, p := range ps {
		e.bytes.Add(p.Size())
	}
	e.batches.Add(1)
	e.ch <- ps
	close(e.ch)
	e.delivered.Store(true)
	return nil
}

func (e *earlyCloseTransport) CloseSend(ctx context.Context) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.delivered.Load() {
		close(e.ch)
		e.delivered.Store(true)
	}
	return nil
}

func (e *earlyCloseTransport) Receive(r int) <-chan []transport.Pair { return e.ch }
func (e *earlyCloseTransport) BytesSent() int64                      { return e.bytes.Load() }
func (e *earlyCloseTransport) BatchesSent() int64                    { return e.batches.Load() }
func (e *earlyCloseTransport) Close() error                          { return nil }

// TestPipelinedFirstOutputBeforeMapDone is the pipelining acceptance
// test: on a 1M-record job whose single reducer's stream ends early (see
// earlyCloseTransport), the first output batch must reach the consumer
// BEFORE the map phase completes — stage-timestamp overlap, stats.
// FirstOutput < stats.MapDone — proving the collect→reduce barrier is
// gone. A map-side gate makes the ordering deterministic instead of
// lucky: one map task blocks mid-phase until the consumer has actually
// observed output, so a regression to barrier scheduling deadlocks the
// gate (30s timeout) rather than flaking.
func TestPipelinedFirstOutputBeforeMapDone(t *testing.T) {
	const n = 1_000_000
	// A dedicated multi-worker pool: the gated map task parks on a pooled
	// worker, so the reduce task needs another worker to run concurrently
	// (the process-default pool has GOMAXPROCS workers — possibly one).
	ex := exec.New(4)
	defer ex.Close()

	rec := []byte("1")
	records := make([][]byte, n)
	for i := range records {
		records[i] = rec
	}
	key := []byte("g")

	outputSeen := make(chan struct{})
	var mapped atomic.Int64
	job := Job{
		Name:  "pipelined",
		Input: NewMemoryInput(records, 16),
		Map: func(ctx *MapCtx, record []byte) error {
			if mapped.Add(1) == n/2 {
				select {
				case <-outputSeen:
				case <-time.After(30 * time.Second):
					return fmt.Errorf("map gate timeout: no output reached the consumer while the map phase was still running")
				}
			}
			return ctx.Emit(key, record)
		},
		Reduce: func(ctx *ReduceCtx, key []byte, values *GroupIter) error {
			total := 0
			for {
				_, ok, err := values.Next()
				if err != nil {
					return err
				}
				if !ok {
					break
				}
				total++
			}
			ctx.Emit(key, []byte(strconv.Itoa(total)))
			return nil
		},
		Config: Config{
			NumReducers:       1,
			Executor:          ex,
			MapParallelism:    1, // one map task at a time: the gate parks exactly one worker
			ShuffleBatchPairs: 1, // the very first emit flushes a batch to the reducer
			Transport:         newEarlyCloseTransport,
			TempDir:           t.TempDir(),
		},
	}

	pipe, err := RunPipe(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	rows := 0
	for {
		_, pairs, ok, err := pipe.NextBatch()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if rows == 0 {
			close(outputSeen) // release the map gate: output observed mid-map
		}
		rows += len(pairs)
		transport.RecycleBatch(pairs)
	}
	if err := pipe.Close(); err != nil {
		t.Fatal(err)
	}
	if rows == 0 {
		t.Fatal("no output rows streamed")
	}
	st := pipe.Stats()
	if st.FirstOutput <= 0 {
		t.Fatalf("FirstOutput not stamped: %v", st.FirstOutput)
	}
	if st.MapDone <= 0 {
		t.Fatalf("MapDone not stamped: %v", st.MapDone)
	}
	if st.FirstOutput >= st.MapDone {
		t.Fatalf("no pipelining overlap: first output at %v, map done at %v", st.FirstOutput, st.MapDone)
	}
	t.Logf("first output %v, map done %v (overlap %v)", st.FirstOutput, st.MapDone, st.MapDone-st.FirstOutput)
}
