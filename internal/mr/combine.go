package mr

import (
	"fmt"
	"slices"
)

// funcCombiner adapts a CombineFunc to the streaming Combiner interface:
// instead of buffering a copy of every emitted pair until the buffer
// fills (the old map[string][][]byte design), each arriving value is
// folded into the key's single partial state immediately — morsel-style
// thread-local pre-aggregation. Memory is bounded by distinct keys, not
// by raw pair volume.
type funcCombiner struct {
	fn     CombineFunc
	st     *TaskStats
	states map[string][][]byte
	// scratch is the reused argument slice for fold calls:
	// [state..., newValue].
	scratch [][]byte
}

func newFuncCombiner(fn CombineFunc, st *TaskStats) *funcCombiner {
	return &funcCombiner{fn: fn, st: st, states: make(map[string][][]byte)}
}

func (c *funcCombiner) Add(key, value []byte) error {
	// map[string(bytes)] probes without allocating; the key string only
	// materializes on first sight of a distinct key (the mandatory copy —
	// key is call-duration-valid).
	state, ok := c.states[string(key)]
	// The incoming value is only valid during Add; the fold's output may
	// alias its inputs, so hand the function a copy it can own.
	v := append([]byte(nil), value...)
	if !ok {
		c.states[string(key)] = [][]byte{v}
		return nil
	}
	c.scratch = append(append(c.scratch[:0], state...), v)
	merged, err := c.fn(key, c.scratch)
	if err != nil {
		return fmt.Errorf("combine %q: %w", key, err)
	}
	// Detach from scratch in the (unusual) case the function returned its
	// input slice unchanged.
	c.states[string(key)] = slices.Clip(append(state[:0], merged...))
	c.st.CombineMerges++
	return nil
}

func (c *funcCombiner) Len() int { return len(c.states) }

func (c *funcCombiner) Flush(emit func(key, value []byte) error) error {
	keys := make([]string, 0, len(c.states))
	for k := range c.states {
		keys = append(keys, k)
	}
	// Sorted-key flush order keeps the shuffle byte stream deterministic
	// run to run (DESIGN.md's determinism invariant): Go map iteration
	// order would otherwise vary the send order and the TCP interleaving.
	slices.Sort(keys)
	for _, k := range keys {
		// One fresh key slice per distinct key per flush — it is handed
		// off to the shuffle, which retains it for the job's duration.
		kb := []byte(k)
		for _, v := range c.states[k] {
			if err := emit(kb, v); err != nil {
				return err
			}
		}
		delete(c.states, k)
	}
	return nil
}
