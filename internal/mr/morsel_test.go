package mr

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/casm-project/casm/internal/blockstore"
	"github.com/casm-project/casm/internal/cube"
	"github.com/casm-project/casm/internal/exec"
	"github.com/casm-project/casm/internal/recio"
	"github.com/casm-project/casm/internal/transport"
)

// TestMemorySplitMorsels checks that carving partitions the records: every
// record appears exactly once, in order, across the morsels.
func TestMemorySplitMorsels(t *testing.T) {
	var records [][]byte
	for i := 0; i < 100; i++ {
		records = append(records, []byte(fmt.Sprintf("record-%03d", i)))
	}
	in := NewMemoryInput(records, 1)
	splits, _ := in.Splits()
	ms := splits[0].(MorselSplit)
	for _, target := range []int{1, 13, 64, 1 << 20} {
		morsels, err := ms.Morsels(target)
		if err != nil {
			t.Fatal(err)
		}
		var got [][]byte
		for _, m := range morsels {
			it, err := m.Open()
			if err != nil {
				t.Fatal(err)
			}
			for {
				rec, ok, err := it.Next()
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					break
				}
				got = append(got, rec)
			}
		}
		if len(got) != len(records) {
			t.Fatalf("target %d: %d records across %d morsels, want %d", target, len(got), len(morsels), len(records))
		}
		for i := range got {
			if string(got[i]) != string(records[i]) {
				t.Fatalf("target %d: record %d = %q, want %q", target, i, got[i], records[i])
			}
		}
		if target == 1 && len(morsels) != len(records) {
			t.Errorf("target 1: %d morsels, want one per record", len(morsels))
		}
		if target == 1<<20 && len(morsels) != 1 {
			t.Errorf("huge target: %d morsels, want 1", len(morsels))
		}
	}
}

// TestStoreSplitMorsels checks the frame-run carving of store blocks:
// morsels partition each block's frames and never split a record.
func TestStoreSplitMorsels(t *testing.T) {
	st, err := blockstore.Open(blockstore.Config{Dir: t.TempDir(), BlockSize: 512, Replication: 1, NumNodes: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var recs []cube.Record
	for i := int64(0); i < 500; i++ {
		recs = append(recs, cube.Record{i % 7, i, i * i})
	}
	if err := st.WriteRecords("data", 3, "", recs); err != nil {
		t.Fatal(err)
	}
	splits, err := NewStoreInput(st, "data").Splits()
	if err != nil {
		t.Fatal(err)
	}
	var got []cube.Record
	totalMorsels := 0
	for _, sp := range splits {
		morsels, err := sp.(MorselSplit).Morsels(64)
		if err != nil {
			t.Fatal(err)
		}
		totalMorsels += len(morsels)
		for _, m := range morsels {
			if m.SizeBytes() <= 0 {
				t.Fatalf("morsel %s has size %d", m.Label(), m.SizeBytes())
			}
			it, err := m.Open()
			if err != nil {
				t.Fatal(err)
			}
			for {
				payload, ok, err := it.Next()
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					break
				}
				rec, err := recio.DecodeRecord(payload, 3)
				if err != nil {
					t.Fatal(err)
				}
				got = append(got, rec)
			}
		}
	}
	if len(got) != len(recs) {
		t.Fatalf("%d records across %d morsels, want %d", len(got), totalMorsels, len(recs))
	}
	for i := range got {
		for j := range got[i] {
			if got[i][j] != recs[i][j] {
				t.Fatalf("record %d = %v, want %v", i, got[i], recs[i])
			}
		}
	}
	if totalMorsels <= len(splits) {
		t.Errorf("carving produced %d morsels over %d splits; expected finer grain", totalMorsels, len(splits))
	}
}

// morselWCConfig is the word-count config with morsel mode on and knobs
// tightened so every interesting path (tiny morsels, local-agg overflow)
// runs even on the small corpus.
func morselWCConfig(tmp string) Config {
	return Config{
		NumReducers:    3,
		MorselBytes:    8, // a handful of records per morsel
		LocalAggBudget: 2,
		TempDir:        tmp,
	}
}

// TestMorselWordCount runs the canonical job in morsel mode and checks
// the exact same output as fixed-split mode, plus the morsel counters.
func TestMorselWordCount(t *testing.T) {
	cfg := morselWCConfig(t.TempDir())
	cfg.MapParallelism = 4
	res, err := Run(wordCountJob(wcLines, cfg))
	if err != nil {
		t.Fatal(err)
	}
	checkWordCount(t, res)
	var recs, morsels int64
	for _, m := range res.Stats.MapTasks {
		if !strings.HasPrefix(m.Task, "map-worker-") {
			t.Errorf("morsel-mode task named %q", m.Task)
		}
		recs += m.Records
		morsels += m.MorselsDispatched
	}
	if recs != int64(len(wcLines)) {
		t.Errorf("records = %d, want %d", recs, len(wcLines))
	}
	if morsels < 3 {
		t.Errorf("MorselsDispatched = %d; tiny MorselBytes should carve finer", morsels)
	}
}

// TestMorselMatchesFixed pins byte-level equivalence of the two map modes
// on the mr layer: same sorted output pairs, across transports, with a
// combiner forced to spill (LocalAggBudget=2) and the reducer's sorter
// forced to spill (SortMemoryItems=2).
func TestMorselMatchesFixed(t *testing.T) {
	comb := func(key []byte, values [][]byte) ([][]byte, error) {
		total := 0
		for _, v := range values {
			n, err := strconv.Atoi(string(v))
			if err != nil {
				return nil, err
			}
			total += n
		}
		return [][]byte{[]byte(strconv.Itoa(total))}, nil
	}
	var lines []string
	for i := 0; i < 40; i++ {
		lines = append(lines, wcLines...)
	}
	transports := map[string]transport.Factory{"channel": nil, "tcp": transport.TCPFactory(64)}
	for name, tf := range transports {
		t.Run(name, func(t *testing.T) {
			run := func(morsel bool) []transport.Pair {
				cfg := Config{
					NumReducers:     3,
					Transport:       tf,
					Combine:         comb,
					SortMemoryItems: 2,
					TempDir:         t.TempDir(),
				}
				if morsel {
					cfg.MorselBytes = 64
					cfg.LocalAggBudget = 2
					cfg.MapParallelism = 4
				}
				res, err := Run(wordCountJob(lines, cfg))
				if err != nil {
					t.Fatal(err)
				}
				out := append([]transport.Pair(nil), res.Output...)
				sort.Slice(out, func(i, j int) bool {
					if c := bytes.Compare(out[i].Key, out[j].Key); c != 0 {
						return c < 0
					}
					return bytes.Compare(out[i].Value, out[j].Value) < 0
				})
				return out
			}
			fixed, morsel := run(false), run(true)
			if len(fixed) != len(morsel) {
				t.Fatalf("fixed %d pairs, morsel %d", len(fixed), len(morsel))
			}
			for i := range fixed {
				if string(fixed[i].Key) != string(morsel[i].Key) || string(fixed[i].Value) != string(morsel[i].Value) {
					t.Fatalf("pair %d: fixed %q=%q, morsel %q=%q",
						i, fixed[i].Key, fixed[i].Value, morsel[i].Key, morsel[i].Value)
				}
			}
		})
	}
}

// TestMorselStealsOnSkew pins the load-balancing claim: with two workers
// and all the data in one split (maximally clustered), the idle worker
// must steal.
func TestMorselStealsOnSkew(t *testing.T) {
	var lines []string
	for i := 0; i < 2000; i++ {
		lines = append(lines, fmt.Sprintf("key%d value value value", i%17))
	}
	records := make([][]byte, len(lines))
	for i, l := range lines {
		records[i] = []byte(l)
	}
	ex := exec.New(2)
	defer ex.Close()
	job := wordCountJob(lines, Config{
		NumReducers:    2,
		Executor:       ex,
		MapParallelism: 2,
		MorselBytes:    256,
		Combine: func(key []byte, values [][]byte) ([][]byte, error) {
			total := 0
			for _, v := range values {
				n, _ := strconv.Atoi(string(v))
				total += n
			}
			return [][]byte{[]byte(strconv.Itoa(total))}, nil
		},
		TempDir: t.TempDir(),
	})
	job.Input = NewMemoryInput(records, 1) // one giant split: worker 1 starts empty
	// On a single-core runner worker 0 could drain every morsel before
	// worker 1's goroutine ever runs; yield between records so both
	// workers observe a non-empty dispatch set.
	inner := job.Map
	job.Map = func(mctx *MapCtx, record []byte) error {
		runtime.Gosched()
		return inner(mctx, record)
	}
	res, err := Run(job)
	if err != nil {
		t.Fatal(err)
	}
	var dispatched, steals, hits int64
	for _, m := range res.Stats.MapTasks {
		dispatched += m.MorselsDispatched
		steals += m.MorselSteals
		hits += m.LocalAggHits
	}
	if dispatched < 10 {
		t.Fatalf("MorselsDispatched = %d; expected many morsels from 1 split", dispatched)
	}
	if steals == 0 {
		t.Error("MorselSteals = 0 on a one-split two-worker run; worker 1 never stole")
	}
	if hits == 0 {
		t.Error("LocalAggHits = 0; 17 hot keys across thousands of pairs must hit the local table")
	}
}

// TestMorselLocalAggSpills pins the overflow path: a tiny budget over
// many distinct keys must spill mid-stream, and output stays correct.
func TestMorselLocalAggSpills(t *testing.T) {
	cfg := morselWCConfig(t.TempDir())
	cfg.MapParallelism = 2
	comb := func(key []byte, values [][]byte) ([][]byte, error) {
		total := 0
		for _, v := range values {
			n, _ := strconv.Atoi(string(v))
			total += n
		}
		return [][]byte{[]byte(strconv.Itoa(total))}, nil
	}
	cfg.Combine = comb
	res, err := Run(wordCountJob(wcLines, cfg))
	if err != nil {
		t.Fatal(err)
	}
	checkWordCount(t, res)
	var spills int64
	for _, m := range res.Stats.MapTasks {
		spills += m.LocalAggSpills
	}
	if spills == 0 {
		t.Error("LocalAggSpills = 0 with LocalAggBudget=2 over 11 distinct words")
	}
}

// TestMorselFailureInjection checks the per-worker retry contract: the
// injector fires at worker start (before any morsel) and a crashed
// attempt is retried without duplicating output.
func TestMorselFailureInjection(t *testing.T) {
	var fails atomic.Int32
	cfg := morselWCConfig(t.TempDir())
	cfg.MapParallelism = 2
	cfg.FailureInjector = func(task string, attempt int) error {
		if task == "map-worker-0" && attempt == 1 {
			fails.Add(1)
			return fmt.Errorf("injected crash")
		}
		return nil
	}
	res, err := Run(wordCountJob(wcLines, cfg))
	if err != nil {
		t.Fatal(err)
	}
	checkWordCount(t, res)
	if fails.Load() != 1 {
		t.Errorf("injector fired %d times", fails.Load())
	}
	retried := false
	for _, m := range res.Stats.MapTasks {
		if m.Task == "map-worker-0" && m.Attempts == 2 {
			retried = true
		}
	}
	if !retried {
		t.Error("map-worker-0 was not retried")
	}
}

// TestMorselCancellation checks prompt teardown mid-run: cancelling the
// context from inside a map function unwinds the whole pipeline with
// context.Canceled.
func TestMorselCancellation(t *testing.T) {
	var lines []string
	for i := 0; i < 5000; i++ {
		lines = append(lines, fmt.Sprintf("w%d x y z", i))
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var seen atomic.Int64
	job := wordCountJob(lines, Config{
		NumReducers:    2,
		MapParallelism: 4,
		MorselBytes:    64,
		TempDir:        t.TempDir(),
	})
	inner := job.Map
	job.Map = func(mctx *MapCtx, record []byte) error {
		if seen.Add(1) == 500 {
			cancel()
		}
		return inner(mctx, record)
	}
	_, err := RunContext(ctx, job)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
