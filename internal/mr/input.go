package mr

import (
	"fmt"

	"github.com/casm-project/casm/internal/blockstore"
	"github.com/casm-project/casm/internal/recio"
)

// --- in-memory input (tests, small jobs) ---

type memoryInput struct {
	splits []Split
}

type memorySplit struct {
	label   string
	records [][]byte
	bytes   int64
}

type memoryIter struct {
	records [][]byte
	i       int
}

// NewMemoryInput splits the given records into numSplits in-memory
// splits. Records alias the caller's slices.
func NewMemoryInput(records [][]byte, numSplits int) Input {
	if numSplits < 1 {
		numSplits = 1
	}
	if numSplits > len(records) && len(records) > 0 {
		numSplits = len(records)
	}
	in := &memoryInput{}
	if len(records) == 0 {
		in.splits = append(in.splits, &memorySplit{label: "mem-0"})
		return in
	}
	per := (len(records) + numSplits - 1) / numSplits
	for i := 0; i < len(records); i += per {
		end := i + per
		if end > len(records) {
			end = len(records)
		}
		sp := &memorySplit{label: fmt.Sprintf("mem-%d", i/per), records: records[i:end]}
		for _, r := range records[i:end] {
			sp.bytes += int64(len(r))
		}
		in.splits = append(in.splits, sp)
	}
	return in
}

func (in *memoryInput) Splits() ([]Split, error) { return in.splits, nil }

func (sp *memorySplit) Label() string    { return sp.label }
func (sp *memorySplit) SizeBytes() int64 { return sp.bytes }
func (sp *memorySplit) Open() (RecordIter, error) {
	return &memoryIter{records: sp.records}, nil
}

func (it *memoryIter) Next() ([]byte, bool, error) {
	if it.i >= len(it.records) {
		return nil, false, nil
	}
	r := it.records[it.i]
	it.i++
	return r, true, nil
}

// Close releases nothing: the records belong to the caller of
// NewMemoryInput. Present to satisfy the RecordIter single-use contract.
func (it *memoryIter) Close() error { return nil }

// Morsels carves the split's records into contiguous runs of whole
// records, each targeting targetBytes (the tail may be smaller). Runs
// alias the parent's record slices.
func (sp *memorySplit) Morsels(targetBytes int) ([]Split, error) {
	if targetBytes < 1 {
		targetBytes = 1
	}
	var out []Split
	start := 0
	var runBytes int64
	for i, r := range sp.records {
		runBytes += int64(len(r))
		if runBytes >= int64(targetBytes) {
			out = append(out, &memorySplit{
				label:   fmt.Sprintf("%s/m%d", sp.label, len(out)),
				records: sp.records[start : i+1],
				bytes:   runBytes,
			})
			start, runBytes = i+1, 0
		}
	}
	if start < len(sp.records) {
		out = append(out, &memorySplit{
			label:   fmt.Sprintf("%s/m%d", sp.label, len(out)),
			records: sp.records[start:],
			bytes:   runBytes,
		})
	}
	return out, nil
}

// --- block-store input: one split per store block, frames decoded by recio ---

type storeInput struct {
	st   *blockstore.Store
	file string
}

type storeSplit struct {
	st   *blockstore.Store
	info blockstore.BlockInfo
}

type storeIter struct {
	fr *recio.FrameReader
}

// NewStoreInput reads a logical file from the block store, one split
// per block (records never straddle blocks by construction). Each split
// open is a checksum-verified read that decodes the columnar block back
// into the recio frame stream; replica failover happens inside the
// store, and a map task whose replicas are all gone fails and is
// re-executed by the mr retry machinery once a replica recovers.
func NewStoreInput(st *blockstore.Store, file string) Input {
	return &storeInput{st: st, file: file}
}

func (in *storeInput) Splits() ([]Split, error) {
	blocks, err := in.st.Blocks(in.file)
	if err != nil {
		return nil, err
	}
	out := make([]Split, len(blocks))
	for i, b := range blocks {
		out[i] = &storeSplit{st: in.st, info: b}
	}
	return out, nil
}

func (sp *storeSplit) Label() string {
	return fmt.Sprintf("%s[%d]", sp.info.File, sp.info.Index)
}
func (sp *storeSplit) SizeBytes() int64 { return int64(sp.info.Size) }
func (sp *storeSplit) Open() (RecordIter, error) {
	data, err := sp.st.ReadBlock(sp.info.File, sp.info.Index)
	if err != nil {
		return nil, err
	}
	return &storeIter{fr: recio.NewFrameReader(data)}, nil
}

func (it *storeIter) Next() ([]byte, bool, error) {
	if it.fr == nil { // closed
		return nil, false, nil
	}
	return it.fr.Next()
}

// Close drops the iterator's reference to the decoded block buffer.
func (it *storeIter) Close() error { it.fr = nil; return nil }

// Morsels carves the block into frame runs of ~targetBytes. The block
// is read (and decoded) once here and the runs alias that buffer, which
// means replica availability is checked at carve time rather than when
// a worker opens the morsel; a job in morsel mode fails at planning if
// the block is unreadable, instead of in a map task.
func (sp *storeSplit) Morsels(targetBytes int) ([]Split, error) {
	data, err := sp.st.ReadBlock(sp.info.File, sp.info.Index)
	if err != nil {
		return nil, err
	}
	runs, err := recio.SplitFrameRuns(data, targetBytes)
	if err != nil {
		return nil, err
	}
	out := make([]Split, len(runs))
	for i, run := range runs {
		out[i] = &frameRunSplit{label: fmt.Sprintf("%s/m%d", sp.Label(), i), data: run}
	}
	return out, nil
}

// frameRunSplit is one morsel of a store block: a contiguous run of
// whole frames aliasing the block's decoded buffer.
type frameRunSplit struct {
	label string
	data  []byte
}

func (sp *frameRunSplit) Label() string    { return sp.label }
func (sp *frameRunSplit) SizeBytes() int64 { return int64(len(sp.data)) }
func (sp *frameRunSplit) Open() (RecordIter, error) {
	return &storeIter{fr: recio.NewFrameReader(sp.data)}, nil
}
