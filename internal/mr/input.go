package mr

import (
	"fmt"

	"github.com/casm-project/casm/internal/dfs"
	"github.com/casm-project/casm/internal/recio"
)

// --- in-memory input (tests, small jobs) ---

type memoryInput struct {
	splits []Split
}

type memorySplit struct {
	label   string
	records [][]byte
	bytes   int64
}

type memoryIter struct {
	records [][]byte
	i       int
}

// NewMemoryInput splits the given records into numSplits in-memory
// splits. Records alias the caller's slices.
func NewMemoryInput(records [][]byte, numSplits int) Input {
	if numSplits < 1 {
		numSplits = 1
	}
	if numSplits > len(records) && len(records) > 0 {
		numSplits = len(records)
	}
	in := &memoryInput{}
	if len(records) == 0 {
		in.splits = append(in.splits, &memorySplit{label: "mem-0"})
		return in
	}
	per := (len(records) + numSplits - 1) / numSplits
	for i := 0; i < len(records); i += per {
		end := i + per
		if end > len(records) {
			end = len(records)
		}
		sp := &memorySplit{label: fmt.Sprintf("mem-%d", i/per), records: records[i:end]}
		for _, r := range records[i:end] {
			sp.bytes += int64(len(r))
		}
		in.splits = append(in.splits, sp)
	}
	return in
}

func (in *memoryInput) Splits() ([]Split, error) { return in.splits, nil }

func (sp *memorySplit) Label() string    { return sp.label }
func (sp *memorySplit) SizeBytes() int64 { return sp.bytes }
func (sp *memorySplit) Open() (RecordIter, error) {
	return &memoryIter{records: sp.records}, nil
}

func (it *memoryIter) Next() ([]byte, bool, error) {
	if it.i >= len(it.records) {
		return nil, false, nil
	}
	r := it.records[it.i]
	it.i++
	return r, true, nil
}

// --- DFS input: one split per DFS block, frames decoded by recio ---

type dfsInput struct {
	fs   *dfs.FS
	file string
}

type dfsSplit struct {
	fs   *dfs.FS
	info dfs.BlockInfo
}

type dfsIter struct {
	fr *recio.FrameReader
}

// NewDFSInput reads a recio-packed file from the DFS, one split per
// block (records never straddle blocks by construction).
func NewDFSInput(fs *dfs.FS, file string) Input {
	return &dfsInput{fs: fs, file: file}
}

func (in *dfsInput) Splits() ([]Split, error) {
	blocks, err := in.fs.Blocks(in.file)
	if err != nil {
		return nil, err
	}
	out := make([]Split, len(blocks))
	for i, b := range blocks {
		out[i] = &dfsSplit{fs: in.fs, info: b}
	}
	return out, nil
}

func (sp *dfsSplit) Label() string {
	return fmt.Sprintf("%s[%d]", sp.info.File, sp.info.Index)
}
func (sp *dfsSplit) SizeBytes() int64 { return int64(sp.info.Size) }
func (sp *dfsSplit) Open() (RecordIter, error) {
	data, err := sp.fs.ReadBlock(sp.info.File, sp.info.Index)
	if err != nil {
		return nil, err
	}
	return &dfsIter{fr: recio.NewFrameReader(data)}, nil
}

func (it *dfsIter) Next() ([]byte, bool, error) { return it.fr.Next() }
