package mr

import (
	"fmt"
	"os"

	"github.com/casm-project/casm/internal/recio"
)

// --- packed-file input: streaming splits over an on-disk recio file ---

// NewFileInput reads a recio.PackAligned file from disk, one split per
// blockSize chunk (records never straddle block boundaries by
// construction). Unlike loading the file and wrapping it in a memory
// input, splits stream: each split reads its own block into a private
// buffer when Opened, so at any moment only the blocks of in-flight map
// tasks are resident — the file's footprint on the heap is bounded by
// map parallelism, not file size. (Record bytes emitted into the shuffle
// keep their containing block buffer alive until the pairs referencing
// them are spilled, shipped, or reduced; the buffer is then collected.
// The shrinking happens via GC, which is what GOMEMLIMIT-bounded runs
// rely on.)
//
// File splits do not implement MorselSplit — carving would require every
// block in memory at planning time, defeating the streaming. Morsel mode
// degrades to block granularity for them, per the MorselSplit contract.
func NewFileInput(path string, blockSize int) (Input, error) {
	if blockSize < 16 {
		return nil, fmt.Errorf("mr: block size %d too small", blockSize)
	}
	fi, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	return &fileInput{path: path, blockSize: blockSize, size: fi.Size()}, nil
}

type fileInput struct {
	path      string
	blockSize int
	size      int64
}

func (in *fileInput) Splits() ([]Split, error) {
	var out []Split
	for off, idx := int64(0), 0; off < in.size; off, idx = off+int64(in.blockSize), idx+1 {
		n := in.size - off
		if n > int64(in.blockSize) {
			n = int64(in.blockSize)
		}
		out = append(out, &fileSplit{path: in.path, index: idx, off: off, n: int(n)})
	}
	if len(out) == 0 { // empty file: one empty split, like NewMemoryInput
		out = append(out, &fileSplit{path: in.path})
	}
	return out, nil
}

type fileSplit struct {
	path  string
	index int
	off   int64
	n     int
}

func (sp *fileSplit) Label() string    { return fmt.Sprintf("%s[%d]", sp.path, sp.index) }
func (sp *fileSplit) SizeBytes() int64 { return int64(sp.n) }

// Open reads the split's block into a fresh buffer and returns a frame
// iterator over it. The buffer is owned by the iterator's consumers:
// records handed out alias it, so it stays reachable while anything
// downstream still references those bytes and is collected afterwards.
func (sp *fileSplit) Open() (RecordIter, error) {
	if sp.n == 0 {
		return &storeIter{fr: recio.NewFrameReader(nil)}, nil
	}
	f, err := os.Open(sp.path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, sp.n)
	if _, err := f.ReadAt(buf, sp.off); err != nil {
		return nil, fmt.Errorf("mr: read %s: %w", sp.Label(), err)
	}
	return &storeIter{fr: recio.NewFrameReader(buf)}, nil
}
