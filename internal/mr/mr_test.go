package mr

import (
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/casm-project/casm/internal/blockstore"
	"github.com/casm-project/casm/internal/cube"
	"github.com/casm-project/casm/internal/recio"
	"github.com/casm-project/casm/internal/transport"
)

// wordCountJob builds the canonical test job over the given lines.
func wordCountJob(lines []string, cfg Config) Job {
	records := make([][]byte, len(lines))
	for i, l := range lines {
		records[i] = []byte(l)
	}
	return Job{
		Name:  "wordcount",
		Input: NewMemoryInput(records, 4),
		Map: func(ctx *MapCtx, record []byte) error {
			for _, w := range strings.Fields(string(record)) {
				if err := ctx.Emit([]byte(w), []byte("1")); err != nil {
					return err
				}
			}
			return nil
		},
		Reduce: func(ctx *ReduceCtx, key []byte, values *GroupIter) error {
			total := 0
			for {
				p, ok, err := values.Next()
				if err != nil {
					return err
				}
				if !ok {
					break
				}
				n, err := strconv.Atoi(string(p.Value))
				if err != nil {
					return err
				}
				total += n
			}
			ctx.Emit(key, []byte(strconv.Itoa(total)))
			return nil
		},
		Config: cfg,
	}
}

var wcLines = []string{
	"the quick brown fox",
	"jumps over the lazy dog",
	"the dog barks",
	"quick quick slow",
	"fox and dog and fox",
}

var wcWant = map[string]int{
	"the": 3, "quick": 3, "brown": 1, "fox": 3, "jumps": 1, "over": 1,
	"lazy": 1, "dog": 3, "barks": 1, "slow": 1, "and": 2,
}

func checkWordCount(t *testing.T, res *Result) {
	t.Helper()
	got := map[string]int{}
	for _, p := range res.Output {
		n, err := strconv.Atoi(string(p.Value))
		if err != nil {
			t.Fatal(err)
		}
		if _, dup := got[string(p.Key)]; dup {
			t.Fatalf("key %q emitted twice", p.Key)
		}
		got[string(p.Key)] = n
	}
	if len(got) != len(wcWant) {
		t.Fatalf("got %d keys, want %d: %v", len(got), len(wcWant), got)
	}
	for k, v := range wcWant {
		if got[k] != v {
			t.Errorf("count[%q] = %d, want %d", k, got[k], v)
		}
	}
}

func TestWordCountChannel(t *testing.T) {
	res, err := Run(wordCountJob(wcLines, Config{NumReducers: 3, TempDir: t.TempDir()}))
	if err != nil {
		t.Fatal(err)
	}
	checkWordCount(t, res)
	if res.Stats.Shuffled <= 0 {
		t.Error("no shuffle bytes accounted")
	}
	// 5 records into 4 requested splits of ceil(5/4)=2 records → 3 splits.
	if len(res.Stats.MapTasks) != 3 {
		t.Errorf("map tasks = %d", len(res.Stats.MapTasks))
	}
	var recs int64
	for _, m := range res.Stats.MapTasks {
		recs += m.Records
	}
	if recs != int64(len(wcLines)) {
		t.Errorf("records = %d", recs)
	}
	if res.Stats.TotalOutputRecords() != int64(len(wcWant)) {
		t.Errorf("output records = %d", res.Stats.TotalOutputRecords())
	}
}

func TestWordCountTCP(t *testing.T) {
	res, err := Run(wordCountJob(wcLines, Config{
		NumReducers: 2,
		Transport:   transport.TCPFactory(64),
		TempDir:     t.TempDir(),
	}))
	if err != nil {
		t.Fatal(err)
	}
	checkWordCount(t, res)
}

func TestWordCountWithSpill(t *testing.T) {
	// Force the external sort path with a tiny memory budget.
	res, err := Run(wordCountJob(wcLines, Config{
		NumReducers:     2,
		SortMemoryItems: 2,
		TempDir:         t.TempDir(),
	}))
	if err != nil {
		t.Fatal(err)
	}
	checkWordCount(t, res)
	spilled := false
	for _, r := range res.Stats.ReduceTasks {
		if r.SpillRuns > 0 && r.SpillBytes > 0 {
			spilled = true
		}
	}
	if !spilled {
		t.Error("expected spills with SortMemoryItems=2")
	}
}

func TestCombinerReducesTraffic(t *testing.T) {
	comb := func(key []byte, values [][]byte) ([][]byte, error) {
		total := 0
		for _, v := range values {
			n, err := strconv.Atoi(string(v))
			if err != nil {
				return nil, err
			}
			total += n
		}
		return [][]byte{[]byte(strconv.Itoa(total))}, nil
	}
	// Repeat the corpus so combining has something to merge.
	var lines []string
	for i := 0; i < 50; i++ {
		lines = append(lines, wcLines...)
	}
	run := func(c CombineFunc) *Result {
		job := wordCountJob(lines, Config{NumReducers: 2, Combine: c, TempDir: t.TempDir()})
		res, err := Run(job)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(nil)
	combined := run(comb)
	// Results identical.
	want := map[string]int{}
	for k, v := range wcWant {
		want[k] = v * 50
	}
	for _, res := range []*Result{plain, combined} {
		got := map[string]int{}
		for _, p := range res.Output {
			n, _ := strconv.Atoi(string(p.Value))
			got[string(p.Key)] = n
		}
		for k, v := range want {
			if got[k] != v {
				t.Fatalf("count[%q] = %d, want %d", k, got[k], v)
			}
		}
	}
	var plainPairs, combinedPairs int64
	for _, m := range plain.Stats.MapTasks {
		plainPairs += m.PairsOut
	}
	for _, m := range combined.Stats.MapTasks {
		combinedPairs += m.PairsOut
		if m.CombineInputs == 0 {
			t.Error("combiner did not run")
		}
	}
	if combinedPairs >= plainPairs/2 {
		t.Errorf("combiner shipped %d pairs vs %d plain; expected large reduction", combinedPairs, plainPairs)
	}
}

func TestGroupByCompositeKey(t *testing.T) {
	// Composite keys "block|suffix": grouping by the block prefix, values
	// arrive ordered by the full key — the combined-key sort optimization.
	records := [][]byte{[]byte("x")}
	var groups []string
	var orders [][]string
	job := Job{
		Input: NewMemoryInput(records, 1),
		Map: func(ctx *MapCtx, record []byte) error {
			for _, k := range []string{"b|3", "a|2", "b|1", "a|1", "b|2"} {
				if err := ctx.Emit([]byte(k), []byte(k)); err != nil {
					return err
				}
			}
			return nil
		},
		Reduce: func(ctx *ReduceCtx, key []byte, values *GroupIter) error {
			groups = append(groups, string(key))
			var order []string
			for {
				p, ok, err := values.Next()
				if err != nil {
					return err
				}
				if !ok {
					break
				}
				order = append(order, string(p.Key))
			}
			orders = append(orders, order)
			return nil
		},
		Config: Config{
			NumReducers: 1,
			GroupBy:     func(k []byte) []byte { return k[:bytes.IndexByte(k, '|')] },
			TempDir:     t.TempDir(),
		},
	}
	if _, err := Run(job); err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 || groups[0] != "a" || groups[1] != "b" {
		t.Fatalf("groups = %v", groups)
	}
	if strings.Join(orders[0], ",") != "a|1,a|2" {
		t.Errorf("group a order = %v", orders[0])
	}
	if strings.Join(orders[1], ",") != "b|1,b|2,b|3" {
		t.Errorf("group b order = %v", orders[1])
	}
}

func TestShuffleDisabled(t *testing.T) {
	job := wordCountJob(wcLines, Config{NumReducers: 2, ShuffleDisabled: true})
	job.Reduce = nil
	res, err := Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 0 {
		t.Errorf("map-only produced output")
	}
	if len(res.Stats.ReduceTasks) != 0 {
		t.Errorf("map-only has reduce tasks")
	}
	var pairs int64
	for _, m := range res.Stats.MapTasks {
		pairs += m.PairsOut
	}
	if pairs == 0 {
		t.Error("map-only did not count pairs")
	}
	if res.Stats.Shuffled != 0 {
		t.Error("map-only shuffled bytes")
	}
}

func TestFailureInjectionRetries(t *testing.T) {
	var fails atomic.Int32
	cfg := Config{
		NumReducers: 2,
		TempDir:     t.TempDir(),
		FailureInjector: func(task string, attempt int) error {
			if task == "mem-1" && attempt == 1 {
				fails.Add(1)
				return fmt.Errorf("injected crash")
			}
			return nil
		},
	}
	res, err := Run(wordCountJob(wcLines, cfg))
	if err != nil {
		t.Fatal(err)
	}
	checkWordCount(t, res)
	if fails.Load() != 1 {
		t.Errorf("injector fired %d times", fails.Load())
	}
	retried := false
	for _, m := range res.Stats.MapTasks {
		if m.Task == "mem-1" && m.Attempts == 2 {
			retried = true
		}
	}
	if !retried {
		t.Error("task mem-1 was not retried")
	}
}

func TestFailureInjectionGivesUp(t *testing.T) {
	cfg := Config{
		NumReducers: 1,
		MaxAttempts: 2,
		TempDir:     t.TempDir(),
		FailureInjector: func(task string, attempt int) error {
			return fmt.Errorf("always down")
		},
	}
	if _, err := Run(wordCountJob(wcLines, cfg)); err == nil {
		t.Fatal("permanently failing job succeeded")
	}
}

func TestMapErrorPropagates(t *testing.T) {
	job := wordCountJob(wcLines, Config{NumReducers: 1, TempDir: t.TempDir()})
	job.Map = func(ctx *MapCtx, record []byte) error { return fmt.Errorf("map boom") }
	if _, err := Run(job); err == nil || !strings.Contains(err.Error(), "map boom") {
		t.Fatalf("err = %v", err)
	}
}

func TestReduceErrorPropagates(t *testing.T) {
	job := wordCountJob(wcLines, Config{NumReducers: 1, TempDir: t.TempDir()})
	job.Reduce = func(ctx *ReduceCtx, key []byte, values *GroupIter) error {
		return fmt.Errorf("reduce boom")
	}
	if _, err := Run(job); err == nil || !strings.Contains(err.Error(), "reduce boom") {
		t.Fatalf("err = %v", err)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Job{Config: Config{NumReducers: 0}}); err == nil {
		t.Error("zero reducers accepted")
	}
	if _, err := Run(Job{Config: Config{NumReducers: 1}}); err == nil {
		t.Error("nil input/map accepted")
	}
	job := wordCountJob(wcLines, Config{NumReducers: 1})
	job.Reduce = nil
	if _, err := Run(job); err == nil {
		t.Error("nil reduce without ShuffleDisabled accepted")
	}
}

func TestStoreInputEndToEnd(t *testing.T) {
	st, err := blockstore.Open(blockstore.Config{Dir: t.TempDir(), BlockSize: 256, Replication: 2, NumNodes: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var recs []cube.Record
	for i := int64(0); i < 1000; i++ {
		recs = append(recs, cube.Record{i % 7, i})
	}
	if err := st.WriteRecords("data", 2, "", recs); err != nil {
		t.Fatal(err)
	}
	job := Job{
		Input: NewStoreInput(st, "data"),
		Map: func(ctx *MapCtx, record []byte) error {
			rec, err := recio.DecodeRecord(record, 2)
			if err != nil {
				return err
			}
			return ctx.Emit(fmt.Appendf(nil, "g%d", rec[0]), []byte("1"))
		},
		Reduce: func(ctx *ReduceCtx, key []byte, values *GroupIter) error {
			n := 0
			for {
				_, ok, err := values.Next()
				if err != nil {
					return err
				}
				if !ok {
					break
				}
				n++
			}
			ctx.Emit(key, []byte(strconv.Itoa(n)))
			return nil
		},
		Config: Config{NumReducers: 3, TempDir: t.TempDir()},
	}
	res, err := Run(job)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, p := range res.Output {
		counts[string(p.Key)], _ = strconv.Atoi(string(p.Value))
	}
	total := 0
	for g := 0; g < 7; g++ {
		total += counts[fmt.Sprintf("g%d", g)]
	}
	if total != 1000 {
		t.Fatalf("counted %d records, want 1000: %v", total, counts)
	}
	// The file spans multiple blocks, hence multiple splits.
	if len(res.Stats.MapTasks) < 2 {
		t.Errorf("expected multiple splits, got %d", len(res.Stats.MapTasks))
	}
}

func TestHashPartitionRange(t *testing.T) {
	for i := 0; i < 1000; i++ {
		p := HashPartition([]byte(fmt.Sprintf("key-%d", i)), 7)
		if p < 0 || p >= 7 {
			t.Fatalf("partition %d out of range", p)
		}
	}
	// Distribution is roughly uniform.
	counts := make([]int, 5)
	for i := 0; i < 10000; i++ {
		counts[HashPartition([]byte(fmt.Sprintf("k%d", i)), 5)]++
	}
	sort.Ints(counts)
	if counts[0] < 1500 || counts[4] > 2500 {
		t.Errorf("partition skewed: %v", counts)
	}
}

func TestMemoryInputEmpty(t *testing.T) {
	in := NewMemoryInput(nil, 4)
	splits, err := in.Splits()
	if err != nil || len(splits) != 1 {
		t.Fatalf("splits = %d, %v", len(splits), err)
	}
	it, err := splits[0].Open()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := it.Next(); ok {
		t.Error("empty split yielded a record")
	}
}
