// Package serve is the HTTP face of the resident query service: a thin
// handler layer translating CQL-over-HTTP requests into core.Service
// session calls. It owns no execution state — the service's resident
// executor, dataset registry, decision cache, and admission control do
// the work; this package parses, routes, encodes, and maps the typed
// service errors onto status codes:
//
//	POST /query?dataset=D          CQL text  → JSON result (one query)
//	POST /query?dataset=D&stream=1 CQL text  → NDJSON row stream
//	POST /batch?dataset=D          JSON body → shared-scan batch result
//	GET  /datasets                           → registered dataset names
//	GET  /stats                              → admission + cache counters
//	GET  /healthz                            → 200, or 503 once draining
//
// The tenant is taken from the X-Casm-Tenant header (or ?tenant=), with
// unidentified requests pooled under "default".
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"github.com/casm-project/casm/internal/core"
	"github.com/casm-project/casm/internal/cql"
	"github.com/casm-project/casm/internal/exec"
	"github.com/casm-project/casm/internal/mr"
	"github.com/casm-project/casm/internal/workflow"
)

// maxCQLBytes bounds a request body — CQL queries are small; anything
// larger is a client error, not a query.
const maxCQLBytes = 1 << 20

// streamFlushRows is how many NDJSON rows accumulate between explicit
// flushes, so a slow consumer sees steady progress without a syscall per
// row.
const streamFlushRows = 64

// statusClientClosedRequest is nginx's conventional code for a request
// whose client went away mid-flight; there is no standard constant.
const statusClientClosedRequest = 499

// Server is the HTTP handler over one resident service.
type Server struct {
	svc *core.Service
	mux *http.ServeMux
}

// New returns the handler for the service.
func New(svc *core.Service) *Server {
	s := &Server{svc: svc, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /query", s.handleQuery)
	s.mux.HandleFunc("POST /batch", s.handleBatch)
	s.mux.HandleFunc("GET /datasets", s.handleDatasets)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// statusOf maps the service's typed errors onto HTTP status codes.
func statusOf(err error) int {
	switch {
	case errors.Is(err, exec.ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, exec.ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, core.ErrUnknownDataset):
		return http.StatusNotFound
	case errors.Is(err, mr.ErrClosed):
		return http.StatusConflict
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return statusClientClosedRequest
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) fail(w http.ResponseWriter, err error) {
	code := statusOf(err)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func (s *Server) failParse(w http.ResponseWriter, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusBadRequest)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// tenantOf resolves the request's tenant identity.
func tenantOf(r *http.Request) string {
	if t := r.Header.Get("X-Casm-Tenant"); t != "" {
		return t
	}
	if t := r.URL.Query().Get("tenant"); t != "" {
		return t
	}
	return "default"
}

// datasetOf resolves the request's dataset: the ?dataset= parameter, or —
// the common single-dataset server — the sole registered name.
func (s *Server) datasetOf(r *http.Request) (string, error) {
	if d := r.URL.Query().Get("dataset"); d != "" {
		return d, nil
	}
	names := s.svc.Datasets()
	if len(names) == 1 {
		return names[0], nil
	}
	return "", fmt.Errorf("serve: ?dataset= required (registered: %s)", strings.Join(names, ", "))
}

// planInfo is the wire form of an executed plan.
type planInfo struct {
	Key              string `json:"key"`
	ClusteringFactor int64  `json:"clustering_factor"`
	Blocks           int64  `json:"blocks"`
	Sampled          bool   `json:"sampled"`
	PlanCached       bool   `json:"plan_cached"`
	EarlyAggregated  bool   `json:"early_aggregated"`
}

// rowOut is one wire result row.
type rowOut struct {
	Measure string  `json:"measure"`
	Region  string  `json:"region"`
	Coords  []int64 `json:"coords"`
	Value   float64 `json:"value"`
}

// queryResponse is the unary /query result.
type queryResponse struct {
	Dataset  string              `json:"dataset"`
	Tenant   string              `json:"tenant"`
	Plan     planInfo            `json:"plan"`
	QueueMS  float64             `json:"queue_ms"`
	WallMS   float64             `json:"wall_ms"`
	Rows     int64               `json:"rows"`
	Measures map[string][]rowOut `json:"measures"`
	// Truncated reports measures whose row lists were cut at ?limit=.
	Truncated bool `json:"truncated,omitempty"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	dataset, err := s.datasetOf(r)
	if err != nil {
		s.failParse(w, err)
		return
	}
	ds, err := s.svc.Dataset(dataset)
	if err != nil {
		s.fail(w, err)
		return
	}
	src, err := io.ReadAll(io.LimitReader(r.Body, maxCQLBytes))
	if err != nil {
		s.failParse(w, fmt.Errorf("serve: reading body: %w", err))
		return
	}
	q, err := cql.Parse(ds.Schema, string(src))
	if err != nil {
		s.failParse(w, err)
		return
	}
	limit := -1
	if ls := r.URL.Query().Get("limit"); ls != "" {
		if limit, err = strconv.Atoi(ls); err != nil || limit < 0 {
			s.failParse(w, fmt.Errorf("serve: bad limit %q", ls))
			return
		}
	}
	tenant := tenantOf(r)

	if r.URL.Query().Get("stream") != "" {
		s.streamQuery(w, r, tenant, dataset, q, limit)
		return
	}

	res, tm, err := s.svc.Evaluate(r.Context(), tenant, dataset, q)
	if err != nil {
		s.fail(w, err)
		return
	}
	resp := queryResponse{
		Dataset: dataset,
		Tenant:  tenant,
		Plan: planInfo{
			Key:              res.Plan.Key.Format(ds.Schema),
			ClusteringFactor: res.Plan.ClusteringFactor,
			Blocks:           res.Plan.Blocks,
			Sampled:          res.SampledPlan,
			PlanCached:       res.PlanCached,
			EarlyAggregated:  res.EarlyAggregated,
		},
		QueueMS:  float64(tm.Queue.Microseconds()) / 1e3,
		WallMS:   float64(tm.Wall.Microseconds()) / 1e3,
		Rows:     res.TotalRecords(),
		Measures: make(map[string][]rowOut, len(res.Measures)),
	}
	for name, ms := range res.Measures {
		n := len(ms)
		if limit >= 0 && n > limit {
			n = limit
			resp.Truncated = true
		}
		rows := make([]rowOut, n)
		for i := 0; i < n; i++ {
			rows[i] = rowOut{
				Measure: name,
				Region:  ds.Schema.FormatRegion(ms[i].Region),
				Coords:  ms[i].Region.Coord,
				Value:   ms[i].Value,
			}
		}
		resp.Measures[name] = rows
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// streamQuery is the NDJSON mode: a plan header line, one line per result
// row as the reducers emit it, and a terminal end (or error) line. Rows
// flow while the job still runs; an early client disconnect cancels it
// through the request context.
func (s *Server) streamQuery(w http.ResponseWriter, r *http.Request, tenant, dataset string, q *workflow.Workflow, limit int) {
	ds, err := s.svc.Dataset(dataset)
	if err != nil {
		s.fail(w, err)
		return
	}
	st, err := s.svc.EvaluateStream(r.Context(), tenant, dataset, q)
	if err != nil {
		s.fail(w, err)
		return
	}
	defer st.Close()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	enc.Encode(struct {
		Type string   `json:"type"`
		Plan planInfo `json:"plan"`
	}{"plan", planInfo{
		Key:              st.Plan.Key.Format(ds.Schema),
		ClusteringFactor: st.Plan.ClusteringFactor,
		Blocks:           st.Plan.Blocks,
		Sampled:          st.SampledPlan,
		PlanCached:       false, // streamed plans are reported via /stats
		EarlyAggregated:  st.EarlyAggregated,
	}})
	if flusher != nil {
		flusher.Flush()
	}

	type streamRow struct {
		Type string `json:"type"`
		rowOut
	}
	var rows int64
	for limit < 0 || rows < int64(limit) {
		row, ok, err := st.Next()
		if err != nil {
			enc.Encode(map[string]string{"type": "error", "error": err.Error()})
			return
		}
		if !ok {
			break
		}
		rows++
		// Coords alias the stream's reused decode buffer; encoding here,
		// before the next Next call, is what makes that safe.
		enc.Encode(streamRow{"row", rowOut{
			Measure: row.Measure,
			Region:  ds.Schema.FormatRegion(row.Region),
			Coords:  row.Region.Coord,
			Value:   row.Value,
		}})
		if rows%streamFlushRows == 0 && flusher != nil {
			flusher.Flush()
		}
	}
	if err := st.Close(); err != nil {
		enc.Encode(map[string]string{"type": "error", "error": err.Error()})
		return
	}
	tm := st.Timing()
	enc.Encode(struct {
		Type    string  `json:"type"`
		Rows    int64   `json:"rows"`
		QueueMS float64 `json:"queue_ms"`
		WallMS  float64 `json:"wall_ms"`
	}{"end", rows, float64(tm.Queue.Microseconds()) / 1e3, float64(tm.Wall.Microseconds()) / 1e3})
	if flusher != nil {
		flusher.Flush()
	}
}

// batchRequest is the /batch body: CQL texts evaluated as one
// shared-scan batch.
type batchRequest struct {
	Queries []string `json:"queries"`
}

// batchJobOut describes one job of a batch on the wire.
type batchJobOut struct {
	Queries []int   `json:"queries"`
	Shared  bool    `json:"shared"`
	Groups  [][]int `json:"groups,omitempty"`
}

// batchResponse is the /batch result.
type batchResponse struct {
	Dataset string        `json:"dataset"`
	Tenant  string        `json:"tenant"`
	QueueMS float64       `json:"queue_ms"`
	WallMS  float64       `json:"wall_ms"`
	Jobs    []batchJobOut `json:"jobs"`
	Results []struct {
		Plan planInfo `json:"plan"`
		Rows int64    `json:"rows"`
	} `json:"results"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	dataset, err := s.datasetOf(r)
	if err != nil {
		s.failParse(w, err)
		return
	}
	ds, err := s.svc.Dataset(dataset)
	if err != nil {
		s.fail(w, err)
		return
	}
	var req batchRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, maxCQLBytes)).Decode(&req); err != nil {
		s.failParse(w, fmt.Errorf("serve: bad batch body: %w", err))
		return
	}
	if len(req.Queries) == 0 {
		s.failParse(w, fmt.Errorf("serve: empty batch"))
		return
	}
	qs := make([]*workflow.Workflow, len(req.Queries))
	for i, src := range req.Queries {
		if qs[i], err = cql.Parse(ds.Schema, src); err != nil {
			s.failParse(w, fmt.Errorf("serve: batch query %d: %w", i, err))
			return
		}
	}
	tenant := tenantOf(r)
	res, tm, err := s.svc.EvaluateBatch(r.Context(), tenant, dataset, qs)
	if err != nil {
		s.fail(w, err)
		return
	}
	resp := batchResponse{
		Dataset: dataset,
		Tenant:  tenant,
		QueueMS: float64(tm.Queue.Microseconds()) / 1e3,
		WallMS:  float64(tm.Wall.Microseconds()) / 1e3,
	}
	for _, job := range res.Jobs {
		resp.Jobs = append(resp.Jobs, batchJobOut{Queries: job.Queries, Shared: job.Shared, Groups: job.Groups})
	}
	for _, qr := range res.Results {
		resp.Results = append(resp.Results, struct {
			Plan planInfo `json:"plan"`
			Rows int64    `json:"rows"`
		}{
			Plan: planInfo{
				Key:              qr.Plan.Key.Format(ds.Schema),
				ClusteringFactor: qr.Plan.ClusteringFactor,
				Blocks:           qr.Plan.Blocks,
				Sampled:          qr.SampledPlan,
				PlanCached:       qr.PlanCached,
				EarlyAggregated:  qr.EarlyAggregated,
			},
			Rows: qr.TotalRecords(),
		})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

func (s *Server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string][]string{"datasets": s.svc.Datasets()})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.svc.Stats())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.svc.Draining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, "ok\n")
}
