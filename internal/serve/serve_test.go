package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"github.com/casm-project/casm/internal/core"
	"github.com/casm-project/casm/internal/cql"
	"github.com/casm-project/casm/internal/workload"
)

const q1CQL = "MEASURE hits = COUNT(*) AT (a1:value, t1:hour);"

func newTestServer(t *testing.T, cfg core.ServiceConfig) (*httptest.Server, *core.Service) {
	t.Helper()
	if cfg.Engine.NumReducers == 0 {
		cfg.Engine.NumReducers = 4
	}
	if cfg.Engine.TempDir == "" {
		cfg.Engine.TempDir = t.TempDir()
	}
	svc, err := core.NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	su := workload.NewSuite()
	records := su.Generate(2000, workload.Uniform, 9)
	if err := svc.Register("events", core.MemoryDataset(su.Schema, records, 6)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(svc))
	t.Cleanup(func() {
		ts.Close()
		svc.Drain(context.Background())
	})
	return ts, svc
}

func postCQL(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf strings.Builder
	if _, err := bufio.NewReader(resp.Body).WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return resp, []byte(buf.String())
}

func TestQueryUnary(t *testing.T) {
	ts, svc := newTestServer(t, core.ServiceConfig{})

	resp, body := postCQL(t, ts.URL+"/query?dataset=events&limit=3", q1CQL)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Dataset string `json:"dataset"`
		Tenant  string `json:"tenant"`
		Plan    struct {
			Key        string `json:"key"`
			PlanCached bool   `json:"plan_cached"`
		} `json:"plan"`
		Rows     int64 `json:"rows"`
		Measures map[string][]struct {
			Region string  `json:"region"`
			Value  float64 `json:"value"`
		} `json:"measures"`
		Truncated bool `json:"truncated"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if out.Dataset != "events" || out.Tenant != "default" {
		t.Fatalf("dataset/tenant = %q/%q", out.Dataset, out.Tenant)
	}
	if out.Rows == 0 || len(out.Measures["hits"]) == 0 {
		t.Fatalf("no rows: %s", body)
	}
	if len(out.Measures["hits"]) > 3 || !out.Truncated {
		t.Fatalf("limit not applied: %d rows, truncated=%v", len(out.Measures["hits"]), out.Truncated)
	}
	if out.Plan.PlanCached {
		t.Fatal("first query claims a plan-cache hit")
	}

	// Second submission of the same query hits the resident decision
	// cache: no re-planning, and the response says so.
	resp2, body2 := postCQL(t, ts.URL+"/query?dataset=events&limit=0", q1CQL)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second status %d: %s", resp2.StatusCode, body2)
	}
	if err := json.Unmarshal(body2, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Plan.PlanCached {
		t.Fatalf("second submission missed the decision cache: %s", body2)
	}
	if st := svc.Stats(); st.PlanCacheHits < 1 {
		t.Fatalf("service stats report no plan cache hits: %+v", st)
	}
}

func TestQueryStreamNDJSON(t *testing.T) {
	ts, _ := newTestServer(t, core.ServiceConfig{})
	resp, err := http.Post(ts.URL+"/query?dataset=events&stream=1", "text/plain", strings.NewReader(q1CQL))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var sawPlan, sawEnd bool
	var rows, endRows int64
	for sc.Scan() {
		var line struct {
			Type  string  `json:"type"`
			Rows  int64   `json:"rows"`
			Value float64 `json:"value"`
			Error string  `json:"error"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line: %v\n%s", err, sc.Text())
		}
		switch line.Type {
		case "plan":
			if sawPlan || rows > 0 {
				t.Fatal("plan line out of order")
			}
			sawPlan = true
		case "row":
			rows++
		case "end":
			sawEnd = true
			endRows = line.Rows
		case "error":
			t.Fatalf("stream error: %s", line.Error)
		default:
			t.Fatalf("unknown line type %q", line.Type)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawPlan || !sawEnd || rows == 0 || endRows != rows {
		t.Fatalf("stream shape: plan=%v end=%v rows=%d endRows=%d", sawPlan, sawEnd, rows, endRows)
	}
}

func TestBatchSharedScan(t *testing.T) {
	ts, _ := newTestServer(t, core.ServiceConfig{})
	su := workload.NewSuite()
	q2 := cql.Format(su.Q2())
	body, _ := json.Marshal(map[string][]string{"queries": {q1CQL, q2}})
	resp, err := http.Post(ts.URL+"/batch?dataset=events", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Jobs []struct {
			Queries []int `json:"queries"`
			Shared  bool  `json:"shared"`
		} `json:"jobs"`
		Results []struct {
			Rows int64 `json:"rows"`
		} `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(out.Results) != 2 || out.Results[0].Rows == 0 || out.Results[1].Rows == 0 {
		t.Fatalf("batch results: %+v", out.Results)
	}
	shared := false
	for _, j := range out.Jobs {
		shared = shared || j.Shared
	}
	if !shared {
		t.Fatalf("no shared-scan job in %+v", out.Jobs)
	}
}

func TestStatusMapping(t *testing.T) {
	ts, svc := newTestServer(t, core.ServiceConfig{})

	// Parse error → 400.
	if resp, _ := postCQL(t, ts.URL+"/query?dataset=events", "MEASURE oops = ;"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("parse error status %d, want 400", resp.StatusCode)
	}
	// Unknown dataset → 404.
	if resp, _ := postCQL(t, ts.URL+"/query?dataset=nope", q1CQL); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown dataset status %d, want 404", resp.StatusCode)
	}
	// Healthy before drain.
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz %d, want 200", hr.StatusCode)
	}
	// Draining → healthz 503 and query 503.
	if err := svc.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	hr, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz %d, want 503", hr.StatusCode)
	}
	if resp, _ := postCQL(t, ts.URL+"/query?dataset=events", q1CQL); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining query status %d, want 503", resp.StatusCode)
	}
}

// TestConcurrentTenants drives parallel HTTP clients under two tenant
// identities and checks the service's per-tenant accounting plus result
// consistency across every response.
func TestConcurrentTenants(t *testing.T) {
	ts, svc := newTestServer(t, core.ServiceConfig{
		Engine:            core.Config{NumReducers: 2},
		Workers:           4,
		PerTenantInFlight: 2,
	})

	// Reference rows from a warmup call.
	_, refBody := postCQL(t, ts.URL+"/query?dataset=events", q1CQL)
	var ref struct {
		Rows int64 `json:"rows"`
	}
	if err := json.Unmarshal(refBody, &ref); err != nil || ref.Rows == 0 {
		t.Fatalf("warmup: err=%v rows=%d", err, ref.Rows)
	}

	const clients = 8
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		i := i
		tenant := fmt.Sprintf("tenant-%d", i%2)
		wg.Add(1)
		go func() {
			defer wg.Done()
			req, err := http.NewRequest("POST", ts.URL+"/query?dataset=events", strings.NewReader(q1CQL))
			if err != nil {
				errs[i] = err
				return
			}
			req.Header.Set("X-Casm-Tenant", tenant)
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			var out struct {
				Rows int64 `json:"rows"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				errs[i] = err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			if out.Rows != ref.Rows {
				errs[i] = fmt.Errorf("rows %d, want %d", out.Rows, ref.Rows)
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	st := svc.Stats()
	for tenant, p := range st.Admission.TenantPeak {
		if p > 2 {
			t.Fatalf("tenant %s peak %d exceeds limit 2", tenant, p)
		}
	}
	if st.Admission.InFlight != 0 {
		t.Fatalf("in-flight %d after all responses", st.Admission.InFlight)
	}
}
