// Package lint holds repo-policy tests: cheap static checks that guard
// invariants the type system can't express.
package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"strings"
	"testing"
)

// hotFiles are the files whose per-record loops form the shuffle/group
// hot path. The zero-copy refactor removed every per-record string
// materialization from them; this lint keeps it that way.
func hotFiles(t *testing.T) []string {
	t.Helper()
	var files []string
	for _, pat := range []string{"../mr/run.go", "../groupx/*.go", "../sortx/*.go"} {
		m, err := filepath.Glob(pat)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range m {
			if !strings.HasSuffix(f, "_test.go") {
				files = append(files, f)
			}
		}
	}
	if len(files) < 3 {
		t.Fatalf("hot-file globs matched only %v — layout changed?", files)
	}
	return files
}

// TestNoStringConversionsInHotLoops fails if a string(...) conversion
// reappears inside any for/range loop of the hot-path files. The
// m[string(b)] map-probe form is allowed: the compiler elides that
// allocation, and probing (with materialization only on insert) is
// exactly the idiom the byte-keyed plane is built on. Anything else —
// building a string key per record, comparing via string(...), passing
// string(...) to a callee — puts a per-record allocation back on the
// path this repo's Figure 4 numbers depend on; keep keys as []byte or
// hoist the conversion out of the loop.
func TestNoStringConversionsInHotLoops(t *testing.T) {
	fset := token.NewFileSet()
	for _, file := range hotFiles(t) {
		f, err := parser.ParseFile(fset, file, nil, 0)
		if err != nil {
			t.Fatal(err)
		}

		// The allowed form: a string(...) conversion used directly as a
		// map index (read, insert, or delete).
		allowed := map[*ast.CallExpr]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			if ix, ok := n.(*ast.IndexExpr); ok {
				if call, ok := ix.Index.(*ast.CallExpr); ok && isStringConv(call) {
					allowed[call] = true
				}
			}
			return true
		})

		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch loop := n.(type) {
			case *ast.ForStmt:
				body = loop.Body
			case *ast.RangeStmt:
				body = loop.Body
			default:
				return true
			}
			ast.Inspect(body, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok && isStringConv(call) && !allowed[call] {
					t.Errorf("%s: string(...) conversion in a hot loop — keep keys as []byte (map probes m[string(b)] are the one allowed form)",
						fset.Position(call.Pos()))
				}
				return true
			})
			return true
		})
	}
}

func isStringConv(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "string" && len(call.Args) == 1
}

// schedulerOwnedDirs are the packages whose concurrency is owned by the
// exec runtime: every concurrent task must be submitted through an
// exec.Group (Go for pooled tasks, GoService for drain loops) so it is
// bounded by the shared pool, error-collected with its task label, and
// torn down on cancellation. A naked `go func` here escapes all three.
func schedulerOwnedFiles(t *testing.T) []string {
	t.Helper()
	var files []string
	for _, pat := range []string{"../mr/*.go", "../core/*.go"} {
		m, err := filepath.Glob(pat)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range m {
			if !strings.HasSuffix(f, "_test.go") {
				files = append(files, f)
			}
		}
	}
	if len(files) < 4 {
		t.Fatalf("scheduler-owned globs matched only %v — layout changed?", files)
	}
	return files
}

// TestNoNakedGoroutinesInSchedulerOwnedPackages fails if a `go`
// statement appears in non-test files of internal/mr or internal/core.
// Those packages run their concurrency on the shared exec.Executor;
// goroutines spawned outside it are invisible to job teardown (they
// outlive cancellation), uncounted by the pool's admission limits, and
// drop their errors on the floor. Route new concurrency through
// Group.Go / Group.GoService instead.
func TestNoNakedGoroutinesInSchedulerOwnedPackages(t *testing.T) {
	fset := token.NewFileSet()
	for _, file := range schedulerOwnedFiles(t) {
		f, err := parser.ParseFile(fset, file, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				t.Errorf("%s: naked go statement in a scheduler-owned package — submit tasks via exec.Group (Go/GoService)",
					fset.Position(g.Pos()))
			}
			return true
		})
	}
}
