package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"strings"
	"testing"
)

// iterFiles are the files that produce or consume single-use iterators
// (iterx.Iter and its concrete implementations: record iterators, group
// iterators, the result pipe). The streaming data plane's contract is
// that a consumed iterator is dead — Next after exhaustion returns
// ok=false forever and Close is terminal — so no caller may drain one
// twice.
func iterFiles(t *testing.T) []string {
	t.Helper()
	var files []string
	for _, pat := range []string{
		"../iterx/*.go", "../mr/*.go", "../groupx/*.go",
		"../sortx/*.go", "../core/*.go",
	} {
		m, err := filepath.Glob(pat)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range m {
			if !strings.HasSuffix(f, "_test.go") {
				files = append(files, f)
			}
		}
	}
	if len(files) < 8 {
		t.Fatalf("iterator globs matched only %v — layout changed?", files)
	}
	return files
}

// TestNoIteratorReuse enforces the single-use iterator contract
// statically: within one function scope, an iterator held in a plain
// local variable must not be (a) drained by two sibling loops — the
// second loop reads an exhausted stream and silently sees nothing — or
// (b) advanced with Next after a statement-level Close — Close releases
// the underlying resources (spill FDs, block buffers), so a later Next
// reads a latched ok=false at best. Deferred Closes are the idiomatic
// cleanup and exempt; each function literal is its own scope (map and
// reduce closures get fresh iterators per call). The check is name-based
// — selector-chained receivers like p.cur.Next are combinator internals
// with their own state machines and are skipped — so it guards the
// straightforward reuse mistake, not aliasing through fields.
func TestNoIteratorReuse(t *testing.T) {
	fset := token.NewFileSet()
	for _, file := range iterFiles(t) {
		f, err := parser.ParseFile(fset, file, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkIterScope(t, fset, fd.Body)
			}
		}
	}
}

// identMethodCall matches `name.method(...)` on a plain identifier
// receiver and returns the name.
func identMethodCall(n ast.Node, method string) (string, *ast.CallExpr) {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return "", nil
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return "", nil
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", nil
	}
	return id.Name, call
}

// inspectScope is ast.Inspect that does not descend into nested function
// literals (independent scopes).
func inspectScope(root ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != root {
			return false
		}
		return fn(n)
	})
}

func checkIterScope(t *testing.T, fset *token.FileSet, body *ast.BlockStmt) {
	// Nested function literals are independent scopes; recurse.
	inspectScope(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			checkIterScope(t, fset, fl.Body)
			return false
		}
		return true
	})

	// (b) Next after statement-level Close.
	closedAt := map[string]token.Pos{}
	inspectScope(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.DeferStmt); ok {
			return false // deferred Close is cleanup, not consumption
		}
		if name, call := identMethodCall(n, "Close"); call != nil {
			if p, seen := closedAt[name]; !seen || call.Pos() < p {
				closedAt[name] = call.Pos()
			}
		}
		return true
	})
	inspectScope(body, func(n ast.Node) bool {
		if name, call := identMethodCall(n, "Next"); call != nil {
			if cp, ok := closedAt[name]; ok && call.Pos() > cp {
				t.Errorf("%s: %s.Next after %s.Close (closed at %s) — a closed iterator is dead",
					fset.Position(call.Pos()), name, name, fset.Position(cp))
			}
		}
		return true
	})

	// (a) Two sibling loops draining the same iterator. Only the
	// outermost loop advancing a name counts — a nested refill loop is
	// part of the same single consumption.
	drains := map[string][]token.Pos{}
	var scanLoops func(root ast.Node, active map[string]bool)
	scanLoops = func(root ast.Node, active map[string]bool) {
		ast.Inspect(root, func(n ast.Node) bool {
			if n == root {
				return true
			}
			switch n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.ForStmt, *ast.RangeStmt:
				names := map[string]bool{}
				inspectScope(n, func(m ast.Node) bool {
					if name, call := identMethodCall(m, "Next"); call != nil {
						names[name] = true
					}
					return true
				})
				inner := map[string]bool{}
				for k := range active {
					inner[k] = true
				}
				for name := range names {
					if !active[name] {
						drains[name] = append(drains[name], n.Pos())
					}
					inner[name] = true
				}
				scanLoops(n, inner)
				return false
			}
			return true
		})
	}
	scanLoops(body, map[string]bool{})
	for name, loops := range drains {
		if len(loops) > 1 {
			positions := make([]string, len(loops))
			for i, p := range loops {
				positions[i] = fset.Position(p).String()
			}
			t.Errorf("iterator %q drained by %d sibling loops (%s) — single-use contract: the second drain sees an exhausted stream",
				name, len(loops), strings.Join(positions, ", "))
		}
	}
}
