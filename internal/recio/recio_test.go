package recio

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/casm-project/casm/internal/cube"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf []byte
	payloads := [][]byte{[]byte("a"), []byte("hello"), make([]byte, 300)}
	for _, p := range payloads {
		var err error
		buf, err = AppendFrame(buf, p)
		if err != nil {
			t.Fatal(err)
		}
	}
	fr := NewFrameReader(buf)
	for i, want := range payloads {
		got, ok, err := fr.Next()
		if err != nil || !ok {
			t.Fatalf("frame %d: ok=%v err=%v", i, ok, err)
		}
		if string(got) != string(want) {
			t.Fatalf("frame %d mismatch", i)
		}
	}
	if _, ok, err := fr.Next(); ok || err != nil {
		t.Fatalf("expected clean end, ok=%v err=%v", ok, err)
	}
}

func TestEmptyPayloadRejected(t *testing.T) {
	if _, err := AppendFrame(nil, nil); err == nil {
		t.Error("empty payload accepted")
	}
}

func TestPaddingTerminator(t *testing.T) {
	buf, _ := AppendFrame(nil, []byte("x"))
	buf = append(buf, 0, 0, 0, 0) // zero terminator + fill
	fr := NewFrameReader(buf)
	if _, ok, _ := fr.Next(); !ok {
		t.Fatal("first frame missing")
	}
	if _, ok, err := fr.Next(); ok || err != nil {
		t.Fatalf("padding not treated as end: ok=%v err=%v", ok, err)
	}
}

func TestCorruptFrame(t *testing.T) {
	buf, _ := AppendFrame(nil, []byte("abc"))
	// Truncate mid-payload.
	fr := NewFrameReader(buf[:2])
	if _, _, err := fr.Next(); err == nil {
		t.Error("truncated frame accepted")
	}
}

func TestRecordRoundTrip(t *testing.T) {
	f := func(raw []int64) bool {
		rec := make(cube.Record, len(raw))
		for i, v := range raw {
			if v < 0 {
				v = -v
			}
			rec[i] = v
		}
		if len(rec) == 0 {
			return true
		}
		buf := AppendRecord(nil, rec)
		back, err := DecodeRecord(buf, len(rec))
		if err != nil {
			return false
		}
		for i := range rec {
			if back[i] != rec[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDecodeRecordErrors(t *testing.T) {
	buf := AppendRecord(nil, cube.Record{1, 2, 3})
	if _, err := DecodeRecord(buf, 4); err == nil {
		t.Error("short record accepted")
	}
	if _, err := DecodeRecord(buf, 2); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestPackAlignedNoStraddle(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var recs []cube.Record
	for i := 0; i < 5000; i++ {
		recs = append(recs, cube.Record{rng.Int63n(1 << 40), rng.Int63n(256), rng.Int63n(1000000)})
	}
	const blockSize = 256
	data, err := PackAligned(recs, blockSize)
	if err != nil {
		t.Fatal(err)
	}
	// Every block must decode independently, and the union must equal the
	// input in order.
	back, err := DecodeAll(data, blockSize, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(recs) {
		t.Fatalf("got %d records, want %d", len(back), len(recs))
	}
	for i := range recs {
		for j := range recs[i] {
			if back[i][j] != recs[i][j] {
				t.Fatalf("record %d attr %d mismatch", i, j)
			}
		}
	}
	// Non-final blocks are exactly blockSize (alignment property).
	if len(data) > blockSize && len(data)%blockSize != len(data)-len(data)/blockSize*blockSize {
		t.Log("final partial block allowed")
	}
}

func TestPackAlignedErrors(t *testing.T) {
	if _, err := PackAligned(nil, 4); err == nil {
		t.Error("tiny block size accepted")
	}
	big := make(cube.Record, 40)
	for i := range big {
		big[i] = 1 << 60
	}
	if _, err := PackAligned([]cube.Record{big}, 32); err == nil {
		t.Error("record larger than block accepted")
	}
}

func TestDecodeRecordInto(t *testing.T) {
	rec := cube.Record{7, 8, 9}
	buf := AppendRecord(nil, rec)
	dst := make(cube.Record, 3)
	if err := DecodeRecordInto(buf, dst); err != nil {
		t.Fatal(err)
	}
	for i := range rec {
		if dst[i] != rec[i] {
			t.Fatal("mismatch")
		}
	}
}
