// Package recio defines the on-disk record format used throughout the
// system: records are varint-framed byte strings packed into DFS blocks
// such that no record straddles a block boundary, so every DFS block is an
// independently readable input split for a mapper.
//
// Frame format: uvarint payload length, then the payload. A length of 0
// terminates a block (the remainder is alignment padding); genuine records
// are never empty because a cube record has at least one attribute.
package recio

import (
	"encoding/binary"
	"fmt"

	"github.com/casm-project/casm/internal/cube"
)

// AppendFrame appends a framed payload to buf and returns the extended
// slice. Empty payloads are reserved for padding and rejected.
func AppendFrame(buf, payload []byte) ([]byte, error) {
	if len(payload) == 0 {
		return buf, fmt.Errorf("recio: empty payload is reserved for padding")
	}
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(payload)))
	buf = append(buf, tmp[:n]...)
	return append(buf, payload...), nil
}

// FrameReader iterates the frames of one block.
type FrameReader struct {
	data []byte
	off  int
}

// NewFrameReader returns a reader over one block's bytes.
func NewFrameReader(data []byte) *FrameReader { return &FrameReader{data: data} }

// Next returns the next frame's payload (aliasing the block buffer), or
// ok=false at end of block / padding.
func (r *FrameReader) Next() ([]byte, bool, error) {
	if r.off >= len(r.data) {
		return nil, false, nil
	}
	n, k := binary.Uvarint(r.data[r.off:])
	if k <= 0 {
		return nil, false, fmt.Errorf("recio: corrupt frame header at offset %d", r.off)
	}
	if n == 0 {
		// Padding terminator.
		r.off = len(r.data)
		return nil, false, nil
	}
	start := r.off + k
	end := start + int(n)
	if end > len(r.data) {
		return nil, false, fmt.Errorf("recio: frame of %d bytes exceeds block at offset %d", n, r.off)
	}
	r.off = end
	return r.data[start:end], true, nil
}

// AppendRecord appends a cube record's varint encoding to buf.
func AppendRecord(buf []byte, rec cube.Record) []byte {
	var tmp [binary.MaxVarintLen64]byte
	for _, v := range rec {
		n := binary.PutUvarint(tmp[:], uint64(v))
		buf = append(buf, tmp[:n]...)
	}
	return buf
}

// DecodeRecord parses a record of the given arity from data.
func DecodeRecord(data []byte, arity int) (cube.Record, error) {
	rec := make(cube.Record, arity)
	if err := DecodeRecordInto(data, rec); err != nil {
		return nil, err
	}
	return rec, nil
}

// DecodeRecordInto parses a record into the caller's buffer, avoiding
// allocation on hot paths.
func DecodeRecordInto(data []byte, rec cube.Record) error {
	off := 0
	for i := range rec {
		v, k := binary.Uvarint(data[off:])
		if k <= 0 {
			return fmt.Errorf("recio: truncated record at attribute %d", i)
		}
		rec[i] = int64(v)
		off += k
	}
	if off != len(data) {
		return fmt.Errorf("recio: %d trailing bytes in record", len(data)-off)
	}
	return nil
}

// DecodeRecordAppend parses a record of the given arity from data and
// appends its attribute values to arena, returning the extended slice.
// Decoding a whole block's records through one arena lays them out as
// fixed-stride rows in a single flat []int64 — no per-record slice
// header allocations — which is what the local-evaluation session feeds
// on.
func DecodeRecordAppend(data []byte, arity int, arena []int64) ([]int64, error) {
	off := 0
	for i := 0; i < arity; i++ {
		v, k := binary.Uvarint(data[off:])
		if k <= 0 {
			return arena, fmt.Errorf("recio: truncated record at attribute %d", i)
		}
		arena = append(arena, int64(v))
		off += k
	}
	if off != len(data) {
		return arena, fmt.Errorf("recio: %d trailing bytes in record", len(data)-off)
	}
	return arena, nil
}

// SplitFrameRuns carves one block's framed bytes into contiguous runs of
// whole frames, each run targeting targetBytes (the last run may be
// smaller; a single frame larger than the target gets a run of its own).
// The returned slices alias data, so each run is independently readable
// with a FrameReader as long as the block stays alive — this is what
// carves a map split into morsels. Padding terminates the scan exactly
// like FrameReader does.
func SplitFrameRuns(data []byte, targetBytes int) ([][]byte, error) {
	if targetBytes < 1 {
		targetBytes = 1
	}
	var runs [][]byte
	runStart, off := 0, 0
	for off < len(data) {
		n, k := binary.Uvarint(data[off:])
		if k <= 0 {
			return nil, fmt.Errorf("recio: corrupt frame header at offset %d", off)
		}
		if n == 0 {
			break // padding terminator
		}
		end := off + k + int(n)
		if end > len(data) {
			return nil, fmt.Errorf("recio: frame of %d bytes exceeds block at offset %d", n, off)
		}
		off = end
		if off-runStart >= targetBytes {
			runs = append(runs, data[runStart:off:off])
			runStart = off
		}
	}
	if off > runStart {
		runs = append(runs, data[runStart:off:off])
	}
	return runs, nil
}

// PackAligned frames the records into a byte stream where no frame
// straddles a blockSize boundary: when a record would not fit in the
// current block, the block is padded (with a zero terminator and zero
// fill) and the record starts the next block. The result's length is a
// multiple of blockSize except possibly the final block.
func PackAligned(records []cube.Record, blockSize int) ([]byte, error) {
	if blockSize < 16 {
		return nil, fmt.Errorf("recio: block size %d too small", blockSize)
	}
	var out []byte
	blockStart := 0
	var scratch []byte
	for _, rec := range records {
		scratch = AppendRecord(scratch[:0], rec)
		frameLen := uvarintLen(uint64(len(scratch))) + len(scratch)
		if frameLen+1 > blockSize { // +1 for the potential terminator
			return nil, fmt.Errorf("recio: record of %d framed bytes exceeds block size %d", frameLen, blockSize)
		}
		if len(out)-blockStart+frameLen > blockSize {
			// Pad to the boundary; a zero byte terminates, zeros fill.
			pad := blockSize - (len(out) - blockStart)
			out = append(out, make([]byte, pad)...)
			blockStart = len(out)
		}
		var err error
		out, err = AppendFrame(out, scratch)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// DecodeAll parses every record in a packed stream, given the block size
// used by PackAligned and the record arity. Intended for tests and small
// files; production paths iterate block by block.
func DecodeAll(data []byte, blockSize, arity int) ([]cube.Record, error) {
	var out []cube.Record
	for start := 0; start < len(data); start += blockSize {
		end := start + blockSize
		if end > len(data) {
			end = len(data)
		}
		fr := NewFrameReader(data[start:end])
		for {
			payload, ok, err := fr.Next()
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			rec, err := DecodeRecord(payload, arity)
			if err != nil {
				return nil, err
			}
			out = append(out, rec)
		}
	}
	return out, nil
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
