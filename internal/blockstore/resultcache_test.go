package blockstore

import (
	"bytes"
	"fmt"
	"testing"
)

func newTestStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(Config{Dir: t.TempDir(), Replication: 2, NumNodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func ek(i int) []byte {
	key := AppendEntryKeyPrefix(nil, "svc:data", "fp01", 1000)
	return append(key, byte(i))
}

func TestResultCachePutGetLRU(t *testing.T) {
	c, err := NewResultCache(nil, 100)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, ok := c.Get(ek(0)); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(ek(0), make([]byte, 60))
	c.Put(ek(1), make([]byte, 60)) // evicts entry 0
	if _, ok := c.Get(ek(0)); ok {
		t.Fatal("evicted entry still served")
	}
	if rows, ok := c.Get(ek(1)); !ok || len(rows) != 60 {
		t.Fatal("expected hit on entry 1")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Hits != 1 || st.Misses != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestResultCachePersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, Replication: 2, NumNodes: 3}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewResultCache(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	var keys []string
	for i := 0; i < 5; i++ {
		k := ek(i)
		c.Put(k, []byte(fmt.Sprintf("rows-%d", i)))
		keys = append(keys, string(k))
	}
	qk := QueryKey("svc:data", "fp01", 1000, "plan")
	c.Commit(qk, keys)
	c.Close()
	s.Close()

	s2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	c2, err := NewResultCache(s2, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	for i := 0; i < 5; i++ {
		rows, ok := c2.Get(ek(i))
		if !ok || !bytes.Equal(rows, []byte(fmt.Sprintf("rows-%d", i))) {
			t.Fatalf("entry %d lost across reopen", i)
		}
	}
	got, ok := c2.Manifest(qk)
	if !ok || len(got) != 5 {
		t.Fatalf("manifest lost across reopen: %v %v", got, ok)
	}
	if st := c2.Stats(); st.ReloadedEntries != 5 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestManifestDroppedWhenEntryMissing(t *testing.T) {
	// Crash between entry flush and manifest commit, inverted: a
	// manifest that references an entry the store never got must be
	// dropped on reload, leaving per-block reuse only.
	dir := t.TempDir()
	cfg := Config{Dir: dir, Replication: 2, NumNodes: 3}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewResultCache(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	c.Put(ek(0), []byte("rows-0"))
	qk := QueryKey("svc:data", "fp01", 1000, "plan")
	// Manifest claims two entries but only one was ever written.
	c.Commit(qk, []string{string(ek(0)), string(ek(1))})
	c.Close()
	s.Close()

	s2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	c2, err := NewResultCache(s2, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, ok := c2.Manifest(qk); ok {
		t.Fatal("manifest with missing entry survived reload")
	}
	if _, ok := c2.Get(ek(0)); !ok {
		t.Fatal("surviving entry should still serve per-block reuse")
	}
	if st := c2.Stats(); st.DroppedManifests != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEntryKeysDistinguishIdentity(t *testing.T) {
	base := AppendEntryKeyPrefix(nil, "svc:data", "fp01", 1000)
	otherFP := AppendEntryKeyPrefix(nil, "svc:data", "fp02", 1000)
	otherCard := AppendEntryKeyPrefix(nil, "svc:data", "fp01", 1001)
	otherTag := AppendEntryKeyPrefix(nil, "svc:datb", "fp01", 1000)
	for i, other := range [][]byte{otherFP, otherCard, otherTag} {
		if bytes.Equal(base, other) {
			t.Fatalf("prefix %d collides with base", i)
		}
	}
	c, err := NewResultCache(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Put(append(append([]byte(nil), base...), 0x7), []byte("rows"))
	if _, ok := c.Get(append(append([]byte(nil), otherCard...), 0x7)); ok {
		t.Fatal("cardinality change did not invalidate")
	}
}
