// Package blockstore is the persistent replicated block store under the
// evaluation: logical files are sequences of columnar-compressed blocks
// appended to per-node segment files, every entry carries a CRC32C
// footer with its record count, and the in-memory index is rebuilt from
// segment scans on open — so a service restart reopens its datasets
// (identity, cardinality, schema digest) without recounting a record.
//
// It keeps the properties the paper's evaluation depends on from the
// old in-memory dfs — block-granular input splits, replica placement
// for locality and failure injection, per-node usage accounting — and
// adds the ones a store needs to deserve the name: persistence across
// restarts, per-column compression, checksum-verified reads that fail
// over to a surviving replica, and torn-tail truncation so a crash
// mid-append recovers to the last committed block.
package blockstore

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"

	"github.com/casm-project/casm/internal/cube"
	"github.com/casm-project/casm/internal/recio"
)

// MetaFile is the logical file holding store metadata entries (schema
// digests, cached cardinalities). It is hidden from List.
const MetaFile = "__meta__"

// CacheFile is the logical file backing the materialized result cache.
const CacheFile = "__cache__"

// Config parameterizes a store.
type Config struct {
	// Dir is the root directory; created if absent. Required.
	Dir string
	// BlockSize bounds a data block's decoded (framed) size in bytes.
	// Default 4 MiB.
	BlockSize int
	// Replication is the number of replicas per entry. Default 3.
	Replication int
	// NumNodes is the number of storage nodes (subdirectories).
	// Default 10.
	NumNodes int
	// Seed drives replica placement; placement is deterministic per
	// seed within one store instance.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.BlockSize <= 0 {
		c.BlockSize = 4 << 20
	}
	if c.Replication <= 0 {
		c.Replication = 3
	}
	if c.NumNodes <= 0 {
		c.NumNodes = 10
	}
	return c
}

// BlockInfo describes one block of a logical file.
type BlockInfo struct {
	File     string
	Index    int
	Key      []byte
	Size     int // decoded (framed) size in bytes
	Records  int
	Replicas []int // node IDs holding a copy, in placement order
}

// FileInfo summarizes a logical file from the index alone — cardinality
// comes from block footers, never from rescanning records.
type FileInfo struct {
	Name         string `json:"name"`
	Blocks       int    `json:"blocks"`
	Records      int64  `json:"records"`
	RawBytes     int64  `json:"raw_bytes"`
	StoredBytes  int64  `json:"stored_bytes"`
	Arity        int    `json:"arity,omitempty"`
	SchemaDigest string `json:"schema_digest,omitempty"`
}

// Stats is a point-in-time snapshot of store shape and fault counters.
type Stats struct {
	Files             int   `json:"files"`
	Blocks            int   `json:"blocks"`
	RawBytes          int64 `json:"raw_bytes"`
	StoredBytes       int64 `json:"stored_bytes"`
	TornTails         int64 `json:"torn_tails_truncated"`
	DroppedEntries    int64 `json:"dropped_entries"`
	ChecksumFailovers int64 `json:"checksum_failovers"`
	BlockReads        int64 `json:"block_reads"`
	BytesRead         int64 `json:"bytes_read"`
}

// replicaLoc locates one replica of an entry inside a node's segment.
type replicaLoc struct {
	node int
	off  int64 // entry start offset in the segment file
	n    int64 // entry length in bytes (checksum included)
}

type blockMeta struct {
	key        []byte
	flags      uint64
	arity      int
	recCount   int
	rawLen     int
	payloadLen int
	crc        uint32
	replicas   []replicaLoc
}

type storeFile struct {
	blocks []*blockMeta // sorted by key
	byKey  map[string]*blockMeta
}

func (f *storeFile) insert(bm *blockMeta) {
	f.byKey[string(bm.key)] = bm
	i := sort.Search(len(f.blocks), func(i int) bool {
		return bytes.Compare(f.blocks[i].key, bm.key) >= 0
	})
	f.blocks = append(f.blocks, nil)
	copy(f.blocks[i+1:], f.blocks[i:])
	f.blocks[i] = bm
}

// writeHandle is one node segment's append state. Appends go through a
// bufio.Writer, so a crash mid-ingest leaves a torn tail for recovery
// to truncate; reads through the store flush first.
type writeHandle struct {
	f     *os.File
	bw    *bufio.Writer
	off   int64 // next append offset (logical, includes buffered bytes)
	dirty bool
}

// Store is a persistent replicated block store. All methods are safe
// for concurrent use.
type Store struct {
	mu      sync.RWMutex
	cfg     Config
	rng     *rand.Rand
	files   map[string]*storeFile
	down    map[int]bool
	used    map[int]int64
	handles map[string]*writeHandle // keyed node|file
	stats   Stats
	closed  bool
}

// Open opens (creating if necessary) the store rooted at cfg.Dir,
// rebuilding the block index from segment scans. Torn segment tails are
// truncated to the last entry whose checksum verifies.
func Open(cfg Config) (*Store, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, fmt.Errorf("blockstore: Config.Dir is required")
	}
	if cfg.Replication > cfg.NumNodes {
		return nil, fmt.Errorf("blockstore: replication %d exceeds node count %d", cfg.Replication, cfg.NumNodes)
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		files:   make(map[string]*storeFile),
		down:    make(map[int]bool),
		used:    make(map[int]int64),
		handles: make(map[string]*writeHandle),
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	return s, nil
}

// Config returns the store's configuration (with defaults applied).
func (s *Store) Config() Config { return s.cfg }

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.cfg.Dir }

// recover scans every node segment, registering entries and truncating
// torn tails. Within a segment, later entries win for a repeated key
// (meta and cache entries are last-writer-wins); across nodes, entries
// with equal key and checksum merge as replicas.
func (s *Store) recover() error {
	for node := 0; node < s.cfg.NumNodes; node++ {
		dir := nodeDir(s.cfg.Dir, node)
		ents, err := os.ReadDir(dir)
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			return err
		}
		for _, de := range ents {
			file, ok := segFile(de.Name())
			if !ok || de.IsDir() {
				continue
			}
			if err := s.scanSegment(node, file, filepath.Join(dir, de.Name())); err != nil {
				return err
			}
		}
	}
	return nil
}

func (s *Store) scanSegment(node int, file, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(data) < len(segMagic) || string(data[:len(segMagic)]) != string(segMagic) {
		// Not a segment (or a crash before the header landed): drop it.
		s.stats.TornTails++
		return os.Remove(path)
	}
	off := len(segMagic)
	for off < len(data) {
		e, next, err := parseEntry(data, off)
		if err != nil {
			// Torn tail: everything before off is checksum-verified, so
			// truncate there and keep the committed prefix.
			s.stats.TornTails++
			s.stats.DroppedEntries++
			if terr := os.Truncate(path, int64(off)); terr != nil {
				return terr
			}
			break
		}
		s.register(node, file, e, int64(off), int64(next-off))
		off = next
	}
	h := s.handle(node, file, false)
	if h != nil && int64(off) > h.off {
		h.off = int64(off)
	} else if h == nil {
		s.handles[handleKey(node, file)] = &writeHandle{off: int64(off)}
	}
	return nil
}

func handleKey(node int, file string) string { return strconv.Itoa(node) + "|" + file }

func (s *Store) register(node int, file string, e entry, off, n int64) {
	f := s.files[file]
	if f == nil {
		f = &storeFile{byKey: make(map[string]*blockMeta)}
		s.files[file] = f
	}
	s.used[node] += n
	if bm := f.byKey[string(e.key)]; bm != nil {
		if bm.crc == e.crc {
			// Another replica of the same content.
			for i, r := range bm.replicas {
				if r.node == node {
					// Re-append on the same node: later wins.
					bm.replicas[i] = replicaLoc{node: node, off: off, n: n}
					return
				}
			}
			bm.replicas = append(bm.replicas, replicaLoc{node: node, off: off, n: n})
			return
		}
		// Same key, different content: last writer wins (meta/cache
		// overwrite semantics). Restart the replica set.
		s.stats.RawBytes -= int64(bm.rawLen)
		s.stats.StoredBytes -= int64(bm.payloadLen)
		s.stats.Blocks--
		bm.flags, bm.arity, bm.recCount = e.flags, e.arity, e.recCount
		bm.rawLen, bm.payloadLen, bm.crc = e.rawLen, len(e.payload), e.crc
		bm.replicas = []replicaLoc{{node: node, off: off, n: n}}
		s.stats.RawBytes += int64(bm.rawLen)
		s.stats.StoredBytes += int64(bm.payloadLen)
		s.stats.Blocks++
		return
	}
	bm := &blockMeta{
		key:        append([]byte(nil), e.key...),
		flags:      e.flags,
		arity:      e.arity,
		recCount:   e.recCount,
		rawLen:     e.rawLen,
		payloadLen: len(e.payload),
		crc:        e.crc,
		replicas:   []replicaLoc{{node: node, off: off, n: n}},
	}
	f.insert(bm)
	s.stats.Blocks++
	s.stats.RawBytes += int64(bm.rawLen)
	s.stats.StoredBytes += int64(bm.payloadLen)
}

func (s *Store) handle(node int, file string, create bool) *writeHandle {
	h := s.handles[handleKey(node, file)]
	if h == nil {
		if !create {
			return nil
		}
		h = &writeHandle{}
		s.handles[handleKey(node, file)] = h
	}
	return h
}

// openHandle ensures the handle has an open file, writing the segment
// header if the file is new. Caller holds s.mu.
func (s *Store) openHandle(node int, file string) (*writeHandle, error) {
	h := s.handle(node, file, true)
	if h.f != nil {
		return h, nil
	}
	dir := nodeDir(s.cfg.Dir, node)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, segName(file)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	h.f = f
	h.bw = bufio.NewWriterSize(f, 256<<10)
	if st.Size() == 0 {
		if _, err := h.bw.WriteString(segMagic); err != nil {
			return nil, err
		}
		h.off = int64(len(segMagic))
		h.dirty = true
	} else {
		h.off = st.Size()
	}
	return h, nil
}

// putEntry appends one entry to Replication node segments and registers
// it in the index. Caller holds s.mu.
func (s *Store) putEntry(file string, key []byte, flags uint64, arity, recCount, rawLen int, payload []byte) error {
	if s.closed {
		return fmt.Errorf("blockstore: store closed")
	}
	enc := appendEntry(nil, key, flags, arity, recCount, rawLen, payload)
	replicas := s.placeReplicas()
	for _, node := range replicas {
		h, err := s.openHandle(node, file)
		if err != nil {
			return err
		}
		off := h.off
		if _, err := h.bw.Write(enc); err != nil {
			return err
		}
		h.off += int64(len(enc))
		h.dirty = true
		e := entry{key: key, flags: flags, arity: arity, recCount: recCount,
			rawLen: rawLen, payload: payload, crc: crcOf(enc)}
		s.register(node, file, e, off, int64(len(enc)))
	}
	return nil
}

func crcOf(enc []byte) uint32 {
	return binary.LittleEndian.Uint32(enc[len(enc)-4:])
}

// placeReplicas picks Replication distinct nodes, preferring live ones.
func (s *Store) placeReplicas() []int {
	perm := s.rng.Perm(s.cfg.NumNodes)
	out := make([]int, 0, s.cfg.Replication)
	for _, n := range perm {
		if s.down[n] {
			continue
		}
		out = append(out, n)
		if len(out) == s.cfg.Replication {
			return out
		}
	}
	// Not enough live nodes: fall back to failed ones so writes still
	// succeed (reads fail until recovery, as with a real DFS in
	// degraded mode).
	for _, n := range perm {
		if s.down[n] {
			out = append(out, n)
			if len(out) == s.cfg.Replication {
				break
			}
		}
	}
	return out
}

// flushFile pushes any buffered appends for a logical file to the OS so
// reads observe them. Caller holds s.mu (read path upgrades to Lock).
func (s *Store) flushFileLocked(file string) error {
	for node := 0; node < s.cfg.NumNodes; node++ {
		h := s.handles[handleKey(node, file)]
		if h == nil || !h.dirty || h.bw == nil {
			continue
		}
		if err := h.bw.Flush(); err != nil {
			return err
		}
		h.dirty = false
	}
	return nil
}

// PutRaw appends one raw entry under (file, key). ReadBlock and ScanRaw
// return the payload verbatim. Re-putting a key replaces it (last
// writer wins after reopen too).
func (s *Store) PutRaw(file string, key, payload []byte) error {
	if file == "" || len(key) == 0 {
		return fmt.Errorf("blockstore: empty file or key")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.putEntry(file, key, 0, 0, 0, len(payload), payload)
}

// Blocks lists a file's block metadata in key order, for split planning.
func (s *Store) Blocks(file string) ([]BlockInfo, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	f, ok := s.files[file]
	if !ok {
		return nil, fmt.Errorf("blockstore: file %q not found", file)
	}
	out := make([]BlockInfo, len(f.blocks))
	for i, bm := range f.blocks {
		out[i] = s.infoLocked(file, i, bm)
	}
	return out, nil
}

func (s *Store) infoLocked(file string, i int, bm *blockMeta) BlockInfo {
	reps := make([]int, len(bm.replicas))
	for j, r := range bm.replicas {
		reps[j] = r.node
	}
	return BlockInfo{File: file, Index: i, Key: append([]byte(nil), bm.key...),
		Size: bm.rawLen, Records: bm.recCount, Replicas: reps}
}

// ReadBlock returns one block's decoded (framed) contents, reading from
// the first replica whose checksum verifies and counting a failover for
// each replica that doesn't.
func (s *Store) ReadBlock(file string, index int) ([]byte, error) {
	s.mu.Lock()
	f, ok := s.files[file]
	if !ok || index < 0 || index >= len(f.blocks) {
		n := 0
		if ok {
			n = len(f.blocks)
		}
		s.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("blockstore: file %q not found", file)
		}
		return nil, fmt.Errorf("blockstore: block %d of %q out of range [0,%d)", index, file, n)
	}
	bm := f.blocks[index]
	payload, err := s.readEntryLocked(file, bm)
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	if bm.flags&flagColumnar != 0 {
		return decodeColumnarFrames(payload, bm.arity, bm.recCount, bm.rawLen)
	}
	return payload, nil
}

// readEntryLocked reads and verifies one entry, failing over across
// replicas. Caller holds s.mu (write lock: flush + counters).
func (s *Store) readEntryLocked(file string, bm *blockMeta) ([]byte, error) {
	if err := s.flushFileLocked(file); err != nil {
		return nil, err
	}
	var lastErr error
	live := 0
	for _, r := range bm.replicas {
		if s.down[r.node] {
			continue
		}
		live++
		payload, err := s.readReplica(file, bm, r)
		if err != nil {
			s.stats.ChecksumFailovers++
			lastErr = err
			continue
		}
		s.stats.BlockReads++
		s.stats.BytesRead += int64(len(payload))
		return payload, nil
	}
	if live == 0 {
		return nil, fmt.Errorf("blockstore: block %x of %q unavailable: all %d replicas on failed nodes",
			bm.key, file, len(bm.replicas))
	}
	return nil, fmt.Errorf("blockstore: block %x of %q unreadable on all live replicas: %w", bm.key, file, lastErr)
}

func (s *Store) readReplica(file string, bm *blockMeta, r replicaLoc) ([]byte, error) {
	fh, err := os.Open(SegmentPath(s.cfg.Dir, r.node, file))
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	buf := make([]byte, r.n)
	if _, err := fh.ReadAt(buf, r.off); err != nil {
		return nil, err
	}
	e, _, err := parseEntry(buf, 0)
	if err != nil {
		return nil, err
	}
	if !bytes.Equal(e.key, bm.key) || e.crc != bm.crc {
		return nil, fmt.Errorf("blockstore: replica on node %d holds a different entry", r.node)
	}
	return append([]byte(nil), e.payload...), nil
}

// ScanRaw calls fn for every entry of a file in key order, with decoded
// payloads. Used to reload the result cache on open.
func (s *Store) ScanRaw(file string, fn func(key, payload []byte) error) error {
	s.mu.RLock()
	f, ok := s.files[file]
	var keys [][]byte
	if ok {
		keys = make([][]byte, len(f.blocks))
		for i, bm := range f.blocks {
			keys[i] = append([]byte(nil), bm.key...)
		}
	}
	s.mu.RUnlock()
	if !ok {
		return nil
	}
	for _, key := range keys {
		payload, err := s.ReadByKey(file, key)
		if err != nil {
			return err
		}
		if err := fn(key, payload); err != nil {
			return err
		}
	}
	return nil
}

// ReadByKey reads one entry's decoded contents by exact key.
func (s *Store) ReadByKey(file string, key []byte) ([]byte, error) {
	s.mu.Lock()
	f, ok := s.files[file]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("blockstore: file %q not found", file)
	}
	bm, ok := f.byKey[string(key)]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("blockstore: key %x not found in %q", key, file)
	}
	payload, err := s.readEntryLocked(file, bm)
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	if bm.flags&flagColumnar != 0 {
		return decodeColumnarFrames(payload, bm.arity, bm.recCount, bm.rawLen)
	}
	return payload, nil
}

// List returns the logical file names in sorted order, internal files
// (meta, result cache) excluded.
func (s *Store) List() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.files))
	for n := range s.files {
		if n == MetaFile || n == CacheFile {
			continue
		}
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// FileInfo summarizes one logical file. Records and sizes come from the
// index (block footers); the schema digest from store metadata.
func (s *Store) FileInfo(file string) (FileInfo, error) {
	s.mu.RLock()
	f, ok := s.files[file]
	if !ok {
		s.mu.RUnlock()
		return FileInfo{}, fmt.Errorf("blockstore: file %q not found", file)
	}
	info := FileInfo{Name: file, Blocks: len(f.blocks)}
	for _, bm := range f.blocks {
		info.Records += int64(bm.recCount)
		info.RawBytes += int64(bm.rawLen)
		info.StoredBytes += int64(bm.payloadLen)
		if bm.arity > 0 {
			info.Arity = bm.arity
		}
	}
	s.mu.RUnlock()
	if d, ok := s.GetMeta("schema/" + file); ok {
		info.SchemaDigest = string(d)
	}
	return info, nil
}

// Size returns a file's decoded size in bytes.
func (s *Store) Size(file string) (int64, error) {
	info, err := s.FileInfo(file)
	if err != nil {
		return 0, err
	}
	return info.RawBytes, nil
}

// Delete removes a logical file's segments from every node and bumps
// the file's persisted generation, so a same-named re-ingest presents
// a new dataset identity to the result cache even when the replacement
// happens to have identical cardinality.
func (s *Store) Delete(file string) error {
	if err := s.deleteLocked(file); err != nil {
		return err
	}
	gen := s.FileGeneration(file)
	return s.PutMeta("filegen/"+file, []byte(strconv.FormatInt(gen+1, 10)))
}

// FileGeneration returns how many times the name has been deleted: 0
// for a never-deleted file, incrementing on each Delete. Dataset tags
// fold a non-zero generation in, which is what invalidates cached
// results across a re-ingest.
func (s *Store) FileGeneration(file string) int64 {
	v, ok := s.GetMeta("filegen/" + file)
	if !ok {
		return 0
	}
	n, err := strconv.ParseInt(string(v), 10, 64)
	if err != nil {
		return 0
	}
	return n
}

// DatasetTag returns the identity tag for datasets served from the
// file: "store:<file>" for a never-deleted name, with the delete
// generation folded in ("store:<file>@g<N>") afterwards. A re-ingest
// under the same name — even at identical cardinality — therefore
// presents a fresh (Tag, NumRecords) identity to the result cache.
func (s *Store) DatasetTag(file string) string {
	if g := s.FileGeneration(file); g > 0 {
		return "store:" + file + "@g" + strconv.FormatInt(g, 10)
	}
	return "store:" + file
}

func (s *Store) deleteLocked(file string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.files[file]
	if !ok {
		return fmt.Errorf("blockstore: file %q not found", file)
	}
	for _, bm := range f.blocks {
		s.stats.Blocks--
		s.stats.RawBytes -= int64(bm.rawLen)
		s.stats.StoredBytes -= int64(bm.payloadLen)
		for _, r := range bm.replicas {
			s.used[r.node] -= r.n
		}
	}
	delete(s.files, file)
	for node := 0; node < s.cfg.NumNodes; node++ {
		k := handleKey(node, file)
		if h := s.handles[k]; h != nil {
			if h.f != nil {
				h.bw.Flush()
				h.f.Close()
			}
			delete(s.handles, k)
		}
		path := SegmentPath(s.cfg.Dir, node, file)
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	return nil
}

// PutMeta stores a metadata key/value (last writer wins, persisted).
func (s *Store) PutMeta(key string, value []byte) error {
	return s.PutRaw(MetaFile, []byte(key), value)
}

// GetMeta returns a metadata value, if present.
func (s *Store) GetMeta(key string) ([]byte, bool) {
	v, err := s.ReadByKey(MetaFile, []byte(key))
	if err != nil {
		return nil, false
	}
	return v, true
}

// FailNode marks a storage node as failed; its replicas become
// unreadable until RecoverNode.
func (s *Store) FailNode(id int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.down[id] = true
}

// RecoverNode brings a failed node back.
func (s *Store) RecoverNode(id int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.down, id)
}

// UsedBytes reports the bytes stored per node (replicas included).
func (s *Store) UsedBytes() map[int]int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[int]int64, len(s.used))
	for n, b := range s.used {
		if b != 0 {
			out[n] = b
		}
	}
	return out
}

// Stats returns a snapshot of store shape and fault counters.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := s.stats
	st.Files = 0
	for n := range s.files {
		if n != MetaFile && n != CacheFile {
			st.Files++
		}
	}
	return st
}

// Flush pushes all buffered appends to the OS.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, h := range s.handles {
		if h.dirty && h.bw != nil {
			if err := h.bw.Flush(); err != nil {
				return err
			}
			h.dirty = false
		}
	}
	return nil
}

// Close flushes and closes every segment handle. The store is unusable
// afterwards; reopen with Open.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var firstErr error
	for _, h := range s.handles {
		if h.bw != nil {
			if err := h.bw.Flush(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if h.f != nil {
			if err := h.f.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
			h.f, h.bw = nil, nil
		}
	}
	s.closed = true
	return firstErr
}

// --- data ingest ---

// Writer appends records to a logical file, cutting columnar blocks at
// the configured block size. Not safe for concurrent use; everything
// else on the store remains usable while a Writer is open.
type Writer struct {
	s        *Store
	file     string
	arity    int
	rows     []int64
	rec      []byte
	rawLen   int
	recCount int
	nextIdx  uint32
	records  int64
	digest   string
	closed   bool
	err      error
}

// NewWriter opens an appending writer. If the file already has blocks,
// new ones continue after them (same arity required). schemaDigest, if
// non-empty, is recorded in store metadata on Close.
func (s *Store) NewWriter(file string, arity int, schemaDigest string) (*Writer, error) {
	if file == "" || file == MetaFile || file == CacheFile {
		return nil, fmt.Errorf("blockstore: invalid data file name %q", file)
	}
	if arity <= 0 {
		return nil, fmt.Errorf("blockstore: arity must be positive")
	}
	w := &Writer{s: s, file: file, arity: arity, digest: schemaDigest}
	s.mu.RLock()
	if f, ok := s.files[file]; ok {
		for _, bm := range f.blocks {
			if bm.arity != 0 && bm.arity != arity {
				s.mu.RUnlock()
				return nil, fmt.Errorf("blockstore: file %q has arity %d, writer wants %d", file, bm.arity, arity)
			}
		}
		w.nextIdx = uint32(len(f.blocks))
	}
	s.mu.RUnlock()
	return w, nil
}

// Append buffers one record, flushing a block when the framed size
// would exceed the configured block size.
func (w *Writer) Append(rec cube.Record) error {
	if w.err != nil {
		return w.err
	}
	if len(rec) != w.arity {
		w.err = fmt.Errorf("blockstore: record arity %d, writer arity %d", len(rec), w.arity)
		return w.err
	}
	w.rec = recio.AppendRecord(w.rec[:0], rec)
	frameLen := uvarintLen(uint64(len(w.rec))) + len(w.rec)
	if w.recCount > 0 && w.rawLen+frameLen > w.s.cfg.BlockSize {
		if err := w.flushBlock(); err != nil {
			return err
		}
	}
	w.rows = append(w.rows, rec...)
	w.rawLen += frameLen
	w.recCount++
	w.records++
	return nil
}

func (w *Writer) flushBlock() error {
	if w.recCount == 0 {
		return nil
	}
	payload := appendColumnar(nil, w.rows, w.arity, w.recCount)
	var key [4]byte
	binary.BigEndian.PutUint32(key[:], w.nextIdx)
	w.s.mu.Lock()
	err := w.s.putEntry(w.file, key[:], flagColumnar, w.arity, w.recCount, w.rawLen, payload)
	w.s.mu.Unlock()
	if err != nil {
		w.err = err
		return err
	}
	w.nextIdx++
	w.rows = w.rows[:0]
	w.rawLen, w.recCount = 0, 0
	return nil
}

// Close flushes the final block, records the schema digest, and pushes
// buffered segment bytes to the OS.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	if w.err != nil {
		return w.err
	}
	if err := w.flushBlock(); err != nil {
		return err
	}
	if w.digest != "" {
		if err := w.s.PutMeta("schema/"+w.file, []byte(w.digest)); err != nil {
			w.err = err
			return err
		}
	}
	if err := w.s.Flush(); err != nil {
		w.err = err
		return err
	}
	w.closed = true
	w.err = fmt.Errorf("blockstore: writer closed")
	return nil
}

// WriteRecords ingests records into a (new or existing) logical file in
// one call.
func (s *Store) WriteRecords(file string, arity int, schemaDigest string, records []cube.Record) error {
	w, err := s.NewWriter(file, arity, schemaDigest)
	if err != nil {
		return err
	}
	for _, r := range records {
		if err := w.Append(r); err != nil {
			return err
		}
	}
	return w.Close()
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
