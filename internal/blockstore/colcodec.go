package blockstore

import (
	"encoding/binary"
	"fmt"

	"github.com/casm-project/casm/internal/recio"
)

// Columnar block codec: a data block's records (fixed arity, row-major
// []int64) are stored column-major, each column as a zigzag-encoded
// delta-varint stream. Cube records are coordinates — small integers
// with heavy run structure per attribute — so delta+varint routinely
// shrinks a block several-fold relative to the row-major recio framing,
// while decoding reproduces that framing byte for byte, which keeps the
// whole zero-copy []byte plane (FrameReader, SplitFrameRuns, morsel
// carving) oblivious to how blocks rest on disk.

// zigzag maps signed deltas to unsigned varint-friendly space.
func zigzag(v int64) uint64   { return uint64((v << 1) ^ (v >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// appendColumnar appends the column-major delta encoding of n records
// (rows holds n*arity values, row-major) to dst.
func appendColumnar(dst []byte, rows []int64, arity, n int) []byte {
	var tmp [binary.MaxVarintLen64]byte
	for c := 0; c < arity; c++ {
		prev := int64(0)
		for r := 0; r < n; r++ {
			v := rows[r*arity+c]
			k := binary.PutUvarint(tmp[:], zigzag(v-prev))
			dst = append(dst, tmp[:k]...)
			prev = v
		}
	}
	return dst
}

// decodeColumnarFrames decodes a columnar payload back into the exact
// recio frame stream the writer measured: rawLen bytes of
// uvarint-framed, uvarint-attribute records. The length equality is an
// internal invariant (the payload is already CRC-verified); a mismatch
// means the entry metadata itself is inconsistent.
func decodeColumnarFrames(payload []byte, arity, n, rawLen int) ([]byte, error) {
	if arity <= 0 || n < 0 {
		return nil, fmt.Errorf("blockstore: invalid columnar shape arity=%d records=%d", arity, n)
	}
	rows := make([]int64, n*arity)
	off := 0
	for c := 0; c < arity; c++ {
		prev := int64(0)
		for r := 0; r < n; r++ {
			u, k := binary.Uvarint(payload[off:])
			if k <= 0 {
				return nil, fmt.Errorf("blockstore: truncated column %d at record %d", c, r)
			}
			off += k
			prev += unzigzag(u)
			rows[r*arity+c] = prev
		}
	}
	if off != len(payload) {
		return nil, fmt.Errorf("blockstore: %d trailing bytes in columnar payload", len(payload)-off)
	}
	out := make([]byte, 0, rawLen)
	rec := make([]byte, 0, 64)
	for r := 0; r < n; r++ {
		rec = recio.AppendRecord(rec[:0], rows[r*arity:(r+1)*arity])
		var err error
		out, err = recio.AppendFrame(out, rec)
		if err != nil {
			return nil, err
		}
	}
	if len(out) != rawLen {
		return nil, fmt.Errorf("blockstore: decoded %d bytes, footer says %d", len(out), rawLen)
	}
	return out, nil
}
