package blockstore

import (
	"container/list"
	"encoding/binary"
	"fmt"
	"sync"
)

// ResultCache materializes per-(dataset identity × measure fingerprint
// × block key) reducer output so repeated or overlapping workflows skip
// local evaluation for blocks whose results are already known — the
// HaCube cuboid-reuse idea generalized to composite subset measures.
//
// Entries live in a byte-bounded in-memory LRU and are persisted
// write-behind to the store's cache file by a single flusher goroutine.
// A query manifest (the set of entry keys a full query produced) is
// enqueued only after its entries, so a crash between cache writes and
// the manifest commit degrades to per-block reuse: the reload drops any
// manifest referencing an entry the store doesn't hold.
//
// The cached value is an opaque row blob owned by the caller's codec;
// the cache never interprets it beyond its length.

// CacheStats is a snapshot of result-cache counters.
type CacheStats struct {
	Hits              int64 `json:"hits"`
	Misses            int64 `json:"misses"`
	Puts              int64 `json:"puts"`
	BytesMaterialized int64 `json:"bytes_materialized"`
	BytesServed       int64 `json:"bytes_served"`
	Evictions         int64 `json:"evictions"`
	Entries           int   `json:"entries"`
	BytesInMemory     int64 `json:"bytes_in_memory"`
	Manifests         int   `json:"manifests"`
	ManifestHits      int64 `json:"manifest_hits"`
	ReloadedEntries   int64 `json:"reloaded_entries"`
	DroppedManifests  int64 `json:"dropped_manifests"`
}

type cacheEntry struct {
	key  string
	rows []byte
}

type flushOp struct {
	key  []byte
	val  []byte
	done chan struct{} // non-nil: sync barrier, no write
}

// ResultCache is safe for concurrent use.
type ResultCache struct {
	st       *Store // nil: memory-only
	maxBytes int64

	mu        sync.Mutex
	ll        *list.List // front = most recently used
	entries   map[string]*list.Element
	manifests map[string][]string
	curBytes  int64
	stats     CacheStats
	closed    bool

	flushCh chan flushOp
	flushWG sync.WaitGroup
}

// DefaultCacheBytes bounds the in-memory materialized set when the
// caller doesn't choose: 64 MiB.
const DefaultCacheBytes = 64 << 20

// NewResultCache opens a result cache over st (which may be nil for a
// memory-only cache), reloading persisted entries and manifests from
// the store's cache file. maxBytes <= 0 selects DefaultCacheBytes.
func NewResultCache(st *Store, maxBytes int64) (*ResultCache, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultCacheBytes
	}
	c := &ResultCache{
		st:        st,
		maxBytes:  maxBytes,
		ll:        list.New(),
		entries:   make(map[string]*list.Element),
		manifests: make(map[string][]string),
		flushCh:   make(chan flushOp, 1024),
	}
	if st != nil {
		if err := c.reload(); err != nil {
			return nil, err
		}
		c.flushWG.Add(1)
		go c.flusher()
	}
	return c, nil
}

// Entry and manifest keys are distinguished by their first byte in the
// store's cache file.
const (
	entryTag    = 'e'
	manifestTag = 'm'
)

// AppendEntryKeyPrefix appends the (dataset, fingerprint) portion of an
// entry key; the caller appends the block key per probe. Dataset
// identity is the registered tag plus cardinality, so re-ingesting more
// records under the same name invalidates rather than corrupts.
func AppendEntryKeyPrefix(dst []byte, datasetTag, fingerprint string, numRecords int64) []byte {
	dst = append(dst, entryTag)
	dst = appendLenPrefixed(dst, []byte(datasetTag))
	dst = appendLenPrefixed(dst, []byte(fingerprint))
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(numRecords))
	return append(dst, tmp[:n]...)
}

// QueryKey names a full query's manifest: dataset identity × measure
// fingerprint × the plan that carved the blocks (block keys depend on
// the distribution key and clustering factor).
func QueryKey(datasetTag, fingerprint string, numRecords int64, planKey string) string {
	b := []byte{manifestTag}
	b = appendLenPrefixed(b, []byte(datasetTag))
	b = appendLenPrefixed(b, []byte(fingerprint))
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(numRecords))
	b = append(b, tmp[:n]...)
	b = appendLenPrefixed(b, []byte(planKey))
	return string(b)
}

func appendLenPrefixed(dst, v []byte) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(v)))
	dst = append(dst, tmp[:n]...)
	return append(dst, v...)
}

// reload pulls persisted entries and manifests back in, then drops
// manifests with missing entries (crash between entry flush and
// manifest commit, or an entry evicted beyond the persisted set) and
// evicts down to the byte bound.
func (c *ResultCache) reload() error {
	err := c.st.ScanRaw(CacheFile, func(key, payload []byte) error {
		switch {
		case len(key) > 0 && key[0] == entryTag:
			c.insert(string(key), append([]byte(nil), payload...))
			c.stats.ReloadedEntries++
		case len(key) > 0 && key[0] == manifestTag:
			keys, err := decodeManifest(payload)
			if err != nil {
				return err
			}
			c.manifests[string(key)] = keys
		}
		return nil
	})
	if err != nil {
		return err
	}
	for qk, keys := range c.manifests {
		for _, ek := range keys {
			if _, ok := c.entries[ek]; !ok {
				delete(c.manifests, qk)
				c.stats.DroppedManifests++
				break
			}
		}
	}
	c.evictTo(c.maxBytes)
	return nil
}

func encodeManifest(keys []string) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(keys)))
	out := append([]byte(nil), tmp[:n]...)
	for _, k := range keys {
		out = appendLenPrefixed(out, []byte(k))
	}
	return out
}

func decodeManifest(b []byte) ([]string, error) {
	cnt, k := binary.Uvarint(b)
	if k <= 0 {
		return nil, fmt.Errorf("blockstore: corrupt manifest header")
	}
	off := k
	out := make([]string, 0, cnt)
	for i := uint64(0); i < cnt; i++ {
		l, k := binary.Uvarint(b[off:])
		if k <= 0 || int(l) > len(b)-off-k {
			return nil, fmt.Errorf("blockstore: corrupt manifest entry %d", i)
		}
		off += k
		out = append(out, string(b[off:off+int(l)]))
		off += int(l)
	}
	return out, nil
}

// insert adds or replaces an entry at the LRU front. Caller holds c.mu
// (or is single-threaded during reload).
func (c *ResultCache) insert(key string, rows []byte) {
	if el, ok := c.entries[key]; ok {
		ce := el.Value.(*cacheEntry)
		c.curBytes += int64(len(rows)) - int64(len(ce.rows))
		ce.rows = rows
		c.ll.MoveToFront(el)
		return
	}
	el := c.ll.PushFront(&cacheEntry{key: key, rows: rows})
	c.entries[key] = el
	c.curBytes += int64(len(rows))
}

func (c *ResultCache) evictTo(bound int64) {
	for c.curBytes > bound {
		el := c.ll.Back()
		if el == nil {
			return
		}
		ce := el.Value.(*cacheEntry)
		c.ll.Remove(el)
		delete(c.entries, ce.key)
		c.curBytes -= int64(len(ce.rows))
		c.stats.Evictions++
	}
}

// Get returns the cached row blob for an entry key. The returned slice
// is owned by the cache; callers must not modify it.
func (c *ResultCache) Get(key []byte) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[string(key)]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	c.ll.MoveToFront(el)
	ce := el.Value.(*cacheEntry)
	c.stats.Hits++
	c.stats.BytesServed += int64(len(ce.rows))
	return ce.rows, true
}

// Put materializes one block's rows. The cache takes ownership of rows;
// key is copied. Persistence is write-behind.
func (c *ResultCache) Put(key, rows []byte) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.insert(string(key), rows)
	c.stats.Puts++
	c.stats.BytesMaterialized += int64(len(rows))
	c.evictTo(c.maxBytes)
	if c.st != nil {
		// Sending under c.mu serializes against Close; the flusher
		// never takes c.mu, so a full channel drains independently.
		c.flushCh <- flushOp{key: append([]byte(nil), key...), val: rows}
	}
	c.mu.Unlock()
}

// Manifest returns the entry keys a committed query produced, if known.
func (c *ResultCache) Manifest(queryKey string) ([]string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys, ok := c.manifests[queryKey]
	if ok {
		c.stats.ManifestHits++
	}
	return keys, ok
}

// Commit records a completed query's entry set. The manifest is
// enqueued behind the entries it references (single FIFO flusher), so
// a persisted manifest implies persisted entries.
func (c *ResultCache) Commit(queryKey string, entryKeys []string) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	keys := append([]string(nil), entryKeys...)
	c.manifests[queryKey] = keys
	if c.st != nil {
		c.flushCh <- flushOp{key: []byte(queryKey), val: encodeManifest(keys)}
	}
	c.mu.Unlock()
}

func (c *ResultCache) flusher() {
	defer c.flushWG.Done()
	for op := range c.flushCh {
		if op.done != nil {
			close(op.done)
			continue
		}
		// A write failure here loses persistence, not correctness: the
		// in-memory entry still serves this process, and reload just
		// sees fewer entries.
		_ = c.st.PutRaw(CacheFile, op.key, op.val)
	}
}

// Flush blocks until every previously enqueued write reached the store.
func (c *ResultCache) Flush() {
	c.mu.Lock()
	if c.closed || c.st == nil {
		c.mu.Unlock()
		return
	}
	done := make(chan struct{})
	c.flushCh <- flushOp{done: done}
	c.mu.Unlock()
	<-done
	_ = c.st.Flush()
}

// Close flushes pending writes and stops the flusher. The cache serves
// only misses afterwards.
func (c *ResultCache) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	st := c.st
	if st != nil {
		close(c.flushCh)
	}
	c.mu.Unlock()
	if st != nil {
		c.flushWG.Wait()
		_ = st.Flush()
	}
}

// Stats returns a counter snapshot.
func (c *ResultCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.Entries = len(c.entries)
	st.BytesInMemory = c.curBytes
	st.Manifests = len(c.manifests)
	return st
}
