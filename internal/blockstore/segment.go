package blockstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"net/url"
	"path/filepath"
	"strconv"
)

// Segment-file layout. Each (node, logical file) pair owns one
// append-only segment. A segment is a header followed by entries:
//
//	header:  8-byte magic "CASMSEG1"
//	entry:   uvarint keyLen | key
//	         uvarint flags              (bit0: columnar payload)
//	         uvarint arity              (columnar entries only)
//	         uvarint recCount           (records in the block; 0 for raw)
//	         uvarint rawLen             (decoded frame-stream length)
//	         uvarint payloadLen | payload
//	         4-byte little-endian CRC32C over everything above
//
// Keys are opaque sort-order-preserving []byte (data blocks use the
// block index as a big-endian uint32, so lexicographic key order is
// append order). The footer fields (recCount, rawLen, CRC) make every
// entry independently verifiable: open-time recovery scans forward and
// truncates the segment at the first entry whose frame or checksum does
// not parse — a torn tail from a crash mid-append — keeping everything
// committed before it.

const segMagic = "CASMSEG1"

const flagColumnar = 1

// castagnoli is the CRC32C table; Castagnoli has hardware support on
// both amd64 and arm64, so checksumming stays off the read-path profile.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// entry is the parsed in-memory form of one segment entry.
type entry struct {
	key      []byte
	flags    uint64
	arity    int
	recCount int
	rawLen   int
	payload  []byte
	crc      uint32
}

// appendEntry encodes an entry (checksum included) onto dst.
func appendEntry(dst []byte, key []byte, flags uint64, arity, recCount, rawLen int, payload []byte) []byte {
	start := len(dst)
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		dst = append(dst, tmp[:n]...)
	}
	put(uint64(len(key)))
	dst = append(dst, key...)
	put(flags)
	if flags&flagColumnar != 0 {
		put(uint64(arity))
	}
	put(uint64(recCount))
	put(uint64(rawLen))
	put(uint64(len(payload)))
	dst = append(dst, payload...)
	sum := crc32.Checksum(dst[start:], castagnoli)
	var crcb [4]byte
	binary.LittleEndian.PutUint32(crcb[:], sum)
	return append(dst, crcb[:]...)
}

// parseEntry decodes one entry starting at data[off]. It returns the
// parsed entry and the offset just past it. Any structural problem —
// truncation, nonsense lengths, checksum mismatch — is an error; the
// caller decides whether that means a torn tail (truncate) or a corrupt
// replica (fail over).
func parseEntry(data []byte, off int) (entry, int, error) {
	var e entry
	p := off
	get := func(what string) (uint64, error) {
		v, k := binary.Uvarint(data[p:])
		if k <= 0 {
			return 0, fmt.Errorf("blockstore: truncated %s at offset %d", what, p)
		}
		p += k
		return v, nil
	}
	keyLen, err := get("key length")
	if err != nil {
		return e, 0, err
	}
	if keyLen > uint64(len(data)-p) {
		return e, 0, fmt.Errorf("blockstore: key of %d bytes exceeds segment at offset %d", keyLen, off)
	}
	e.key = data[p : p+int(keyLen)]
	p += int(keyLen)
	if e.flags, err = get("flags"); err != nil {
		return e, 0, err
	}
	if e.flags&flagColumnar != 0 {
		a, err := get("arity")
		if err != nil {
			return e, 0, err
		}
		e.arity = int(a)
	}
	rc, err := get("record count")
	if err != nil {
		return e, 0, err
	}
	e.recCount = int(rc)
	rl, err := get("raw length")
	if err != nil {
		return e, 0, err
	}
	e.rawLen = int(rl)
	pl, err := get("payload length")
	if err != nil {
		return e, 0, err
	}
	if pl > uint64(len(data)-p) {
		return e, 0, fmt.Errorf("blockstore: payload of %d bytes exceeds segment at offset %d", pl, off)
	}
	e.payload = data[p : p+int(pl)]
	p += int(pl)
	if len(data)-p < 4 {
		return e, 0, fmt.Errorf("blockstore: truncated checksum at offset %d", p)
	}
	e.crc = binary.LittleEndian.Uint32(data[p : p+4])
	if got := crc32.Checksum(data[off:p], castagnoli); got != e.crc {
		return e, 0, fmt.Errorf("blockstore: checksum mismatch at offset %d (stored %08x, computed %08x)", off, e.crc, got)
	}
	return e, p + 4, nil
}

// nodeDir returns the directory holding one storage node's segments.
func nodeDir(root string, node int) string {
	return filepath.Join(root, "n"+strconv.Itoa(node))
}

// segName maps a logical file name to its filesystem-safe segment file
// name (logical names may contain separators, e.g. "results/q6").
func segName(file string) string { return url.PathEscape(file) + ".seg" }

// segFile reverses segName; non-segment files in a node dir are skipped.
func segFile(name string) (string, bool) {
	const suf = ".seg"
	if len(name) <= len(suf) || name[len(name)-len(suf):] != suf {
		return "", false
	}
	f, err := url.PathUnescape(name[:len(name)-len(suf)])
	if err != nil {
		return "", false
	}
	return f, true
}

// SegmentPath returns the on-disk path of one node's segment for a
// logical file. Exported for fault-injection tests that corrupt
// specific replicas on disk.
func SegmentPath(dir string, node int, file string) string {
	return filepath.Join(nodeDir(dir, node), segName(file))
}
