package blockstore

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"testing"

	"github.com/casm-project/casm/internal/cube"
	"github.com/casm-project/casm/internal/recio"
)

func genRecords(n, arity int, seed int64) []cube.Record {
	rng := rand.New(rand.NewSource(seed))
	out := make([]cube.Record, n)
	for i := range out {
		r := make(cube.Record, arity)
		for j := range r {
			r[j] = rng.Int63n(1000)
		}
		out[i] = r
	}
	return out
}

// readAll decodes every record of a file through the block reader.
func readAll(t *testing.T, s *Store, file string, arity int) []cube.Record {
	t.Helper()
	blocks, err := s.Blocks(file)
	if err != nil {
		t.Fatalf("Blocks: %v", err)
	}
	var out []cube.Record
	for _, b := range blocks {
		data, err := s.ReadBlock(file, b.Index)
		if err != nil {
			t.Fatalf("ReadBlock %d: %v", b.Index, err)
		}
		fr := recio.NewFrameReader(data)
		for {
			payload, ok, err := fr.Next()
			if err != nil {
				t.Fatalf("frame: %v", err)
			}
			if !ok {
				break
			}
			rec, err := recio.DecodeRecord(payload, arity)
			if err != nil {
				t.Fatalf("record: %v", err)
			}
			out = append(out, rec)
		}
	}
	return out
}

func recordsEqual(a, b []cube.Record) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

func TestWriteReadRoundTrip(t *testing.T) {
	s, err := Open(Config{Dir: t.TempDir(), BlockSize: 1 << 12, Replication: 2, NumNodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	recs := genRecords(5000, 6, 1)
	if err := s.WriteRecords("data", 6, "digest-a", recs); err != nil {
		t.Fatal(err)
	}
	got := readAll(t, s, "data", 6)
	if !recordsEqual(recs, got) {
		t.Fatalf("round trip mismatch: %d records in, %d out", len(recs), len(got))
	}
	info, err := s.FileInfo("data")
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != int64(len(recs)) || info.Arity != 6 || info.SchemaDigest != "digest-a" {
		t.Fatalf("FileInfo = %+v", info)
	}
	if info.Blocks < 2 {
		t.Fatalf("expected multiple blocks, got %d", info.Blocks)
	}
	if info.StoredBytes >= info.RawBytes {
		t.Fatalf("columnar compression did not shrink: stored %d >= raw %d", info.StoredBytes, info.RawBytes)
	}
}

func TestReopenRebuildsIndexWithoutRescan(t *testing.T) {
	dir := t.TempDir()
	recs := genRecords(3000, 5, 2)
	s, err := Open(Config{Dir: dir, BlockSize: 1 << 12, Replication: 2, NumNodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteRecords("data", 5, "dg", recs); err != nil {
		t.Fatal(err)
	}
	if err := s.PutMeta("filecard/x", []byte("12345")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(Config{Dir: dir, BlockSize: 1 << 12, Replication: 2, NumNodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	info, err := s2.FileInfo("data")
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != int64(len(recs)) || info.SchemaDigest != "dg" {
		t.Fatalf("after reopen FileInfo = %+v", info)
	}
	if v, ok := s2.GetMeta("filecard/x"); !ok || string(v) != "12345" {
		t.Fatalf("meta after reopen = %q, %v", v, ok)
	}
	got := readAll(t, s2, "data", 5)
	if !recordsEqual(recs, got) {
		t.Fatal("records differ after reopen")
	}
	if st := s2.Stats(); st.TornTails != 0 {
		t.Fatalf("clean reopen counted torn tails: %+v", st)
	}
	if list := s2.List(); len(list) != 1 || list[0] != "data" {
		t.Fatalf("List = %v", list)
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	recs := genRecords(4000, 4, 3)
	s, err := Open(Config{Dir: dir, BlockSize: 1 << 12, Replication: 1, NumNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteRecords("data", 4, "", recs); err != nil {
		t.Fatal(err)
	}
	committed, err := s.FileInfo("data")
	if err != nil {
		t.Fatal(err)
	}
	prefix := readAll(t, s, "data", 4)
	s.Close()

	// Simulate a crash mid-append: garbage at the tail of the segment.
	path := SegmentPath(dir, 0, "data")
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x17, 0x03, 0xff, 0xfe, 0x01}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := Open(Config{Dir: dir, BlockSize: 1 << 12, Replication: 1, NumNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st := s2.Stats()
	if st.TornTails == 0 {
		t.Fatalf("torn tail not detected: %+v", st)
	}
	info, err := s2.FileInfo("data")
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != committed.Records || info.Blocks != committed.Blocks {
		t.Fatalf("truncation lost committed blocks: %+v vs %+v", info, committed)
	}
	if got := readAll(t, s2, "data", 4); !recordsEqual(prefix, got) {
		t.Fatal("committed prefix differs after truncation")
	}
	// The truncation is physical: a third open is clean.
	s2.Close()
	s3, err := Open(Config{Dir: dir, BlockSize: 1 << 12, Replication: 1, NumNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if st := s3.Stats(); st.TornTails != 0 {
		t.Fatalf("truncation not persisted: %+v", st)
	}
}

func TestBitFlipFailsOverToSurvivingReplica(t *testing.T) {
	dir := t.TempDir()
	recs := genRecords(2000, 4, 4)
	s, err := Open(Config{Dir: dir, BlockSize: 1 << 12, Replication: 2, NumNodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteRecords("data", 4, "", recs); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the replica that reads try first: scribble over the
	// whole entry region of block 0's primary node. Every block whose
	// primary landed there must fail over to the surviving replica.
	blocks, err := s.Blocks("data")
	if err != nil {
		t.Fatal(err)
	}
	path := SegmentPath(dir, blocks[0].Replicas[0], "data")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := len(segMagic); i < len(data); i++ {
		data[i] ^= 0x40
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	got := readAll(t, s, "data", 4)
	if !recordsEqual(recs, got) {
		t.Fatal("read through bit flip returned wrong records")
	}
	if st := s.Stats(); st.ChecksumFailovers == 0 {
		t.Fatalf("expected checksum failovers, got %+v", st)
	}
	s.Close()
}

func TestFailNodeAndAllReplicasDown(t *testing.T) {
	s, err := Open(Config{Dir: t.TempDir(), BlockSize: 1 << 12, Replication: 2, NumNodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	recs := genRecords(1000, 4, 5)
	if err := s.WriteRecords("data", 4, "", recs); err != nil {
		t.Fatal(err)
	}
	s.FailNode(0)
	if got := readAll(t, s, "data", 4); !recordsEqual(recs, got) {
		t.Fatal("read with one node down returned wrong records")
	}
	s.FailNode(1)
	s.FailNode(2)
	if _, err := s.ReadBlock("data", 0); err == nil {
		t.Fatal("expected read failure with all nodes down")
	}
	s.RecoverNode(0)
	s.RecoverNode(1)
	s.RecoverNode(2)
	if got := readAll(t, s, "data", 4); !recordsEqual(recs, got) {
		t.Fatal("read after recovery returned wrong records")
	}
}

func TestRawOverwriteLastWins(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir, Replication: 2, NumNodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.PutRaw("kv", []byte("k"), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if v, err := s.ReadByKey("kv", []byte("k")); err != nil || string(v) != "v2" {
		t.Fatalf("ReadByKey = %q, %v", v, err)
	}
	s.Close()
	s2, err := Open(Config{Dir: dir, Replication: 2, NumNodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if v, err := s2.ReadByKey("kv", []byte("k")); err != nil || string(v) != "v2" {
		t.Fatalf("after reopen ReadByKey = %q, %v", v, err)
	}
}

func TestWriterAppendsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, BlockSize: 1 << 12, Replication: 1, NumNodes: 2}
	a := genRecords(1500, 4, 6)
	b := genRecords(1500, 4, 7)
	s, _ := Open(cfg)
	if err := s.WriteRecords("data", 4, "", a); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2, _ := Open(cfg)
	if err := s2.WriteRecords("data", 4, "", b); err != nil {
		t.Fatal(err)
	}
	got := readAll(t, s2, "data", 4)
	if !recordsEqual(append(append([]cube.Record{}, a...), b...), got) {
		t.Fatal("append across reopen lost or reordered records")
	}
	s2.Close()
}

func TestDeleteRemovesSegments(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(Config{Dir: dir, Replication: 2, NumNodes: 3})
	defer s.Close()
	if err := s.WriteRecords("data", 4, "", genRecords(100, 4, 8)); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("data"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Blocks("data"); err == nil {
		t.Fatal("blocks listed after delete")
	}
	for n := 0; n < 3; n++ {
		if _, err := os.Stat(SegmentPath(dir, n, "data")); !os.IsNotExist(err) {
			t.Fatalf("segment survives delete on node %d", n)
		}
	}
}

func TestColumnarCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		arity := 1 + rng.Intn(8)
		n := rng.Intn(200)
		rows := make([]int64, n*arity)
		var want []byte
		rec := make(cube.Record, arity)
		for r := 0; r < n; r++ {
			for c := 0; c < arity; c++ {
				v := rng.Int63n(1 << uint(rng.Intn(40)))
				rows[r*arity+c] = v
				rec[c] = v
			}
			enc := recio.AppendRecord(nil, rec)
			var err error
			want, err = recio.AppendFrame(want, enc)
			if err != nil {
				t.Fatal(err)
			}
		}
		payload := appendColumnar(nil, rows, arity, n)
		got, err := decodeColumnarFrames(payload, arity, n, len(want))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("trial %d: decoded frames differ", trial)
		}
	}
}
