package core

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/casm-project/casm/internal/cube"
	"github.com/casm-project/casm/internal/localeval"
	"github.com/casm-project/casm/internal/measure"
	"github.com/casm-project/casm/internal/workflow"
	"github.com/casm-project/casm/internal/workload"
)

// randomWorkflow builds a random but valid aggregation workflow over the
// paper schema: 1–3 basic measures at random grains and 0–4 composite
// measures of random kinds wired to random sources.
func randomWorkflow(t *testing.T, s *cube.Schema, rng *rand.Rand) *workflow.Workflow {
	return randomWorkflowOpts(t, s, rng, false)
}

// randomWorkflowOpts is randomWorkflow with a knob: stableBits restricts
// rollups to order-independent aggregates (count/min/max), so the whole
// workflow's output is bit-identical regardless of the order float
// contributions are folded in — what the byte-identity sweeps need
// (rollups fold source regions in map-iteration order; every other
// measure kind already consumes its inputs in a deterministic order).
func randomWorkflowOpts(t *testing.T, s *cube.Schema, rng *rand.Rand, stableBits bool) *workflow.Workflow {
	t.Helper()
	w := workflow.New(s)

	randGrain := func() cube.Grain {
		g := make(cube.Grain, s.NumAttrs())
		for i := range g {
			// Bias toward coarse levels so regions hold several records.
			n := s.Attr(i).NumLevels()
			g[i] = n - 1 - rng.Intn(2)
			if rng.Intn(4) == 0 {
				g[i] = rng.Intn(n)
			}
		}
		return g
	}
	aggs := []measure.Spec{
		{Func: measure.Sum}, {Func: measure.Count}, {Func: measure.Avg},
		{Func: measure.Min}, {Func: measure.Max}, {Func: measure.Median},
		{Func: measure.StdDev}, {Func: measure.Quantile, Arg: 0.75},
	}
	inputs := []string{"a1", "a2", "a3", "a4", ""}

	nBasics := 1 + rng.Intn(3)
	var names []string
	for i := 0; i < nBasics; i++ {
		name := fmt.Sprintf("b%d", i)
		agg := aggs[rng.Intn(len(aggs))]
		in := inputs[rng.Intn(len(inputs))]
		if in == "" {
			agg = measure.Spec{Func: measure.Count}
		}
		if err := w.AddBasic(name, randGrain(), agg, in); err != nil {
			t.Fatalf("basic: %v", err)
		}
		names = append(names, name)
	}

	nComposites := rng.Intn(5)
	for i := 0; i < nComposites; i++ {
		name := fmt.Sprintf("c%d", i)
		src := names[rng.Intn(len(names))]
		sm, _ := w.Measure(src)
		var err error
		switch rng.Intn(4) {
		case 0: // self over 1–2 sources at the meet of their grains
			src2 := names[rng.Intn(len(names))]
			sm2, _ := w.Measure(src2)
			grain := s.Meet(sm.Grain, sm2.Grain)
			if rng.Intn(2) == 0 {
				err = w.AddSelf(name, grain, measure.Ratio(), src, src2)
			} else {
				err = w.AddSelf(name, grain, measure.Add(), src, src2)
			}
		case 1: // rollup to a strictly coarser grain
			grain := sm.Grain.Clone()
			coarsened := false
			for a := range grain {
				if grain[a] < s.Attr(a).AllIndex() && rng.Intn(2) == 0 {
					grain[a] = s.Attr(a).AllIndex()
					coarsened = true
				}
			}
			if !coarsened {
				for a := range grain {
					if grain[a] < s.Attr(a).AllIndex() {
						grain[a]++
						coarsened = true
						break
					}
				}
			}
			if !coarsened {
				continue // source already at ALL everywhere
			}
			spec := aggs[rng.Intn(5)] // mergeable aggs
			if stableBits {
				spec = []measure.Spec{{Func: measure.Count}, {Func: measure.Min}, {Func: measure.Max}}[rng.Intn(3)]
			}
			err = w.AddRollup(name, grain, spec, src)
		case 2: // inherit to a strictly finer grain
			grain := sm.Grain.Clone()
			refined := false
			for a := range grain {
				if grain[a] > 0 {
					grain[a] = rng.Intn(grain[a])
					refined = true
					break
				}
			}
			if !refined {
				continue
			}
			err = w.AddInherit(name, grain, src)
		default: // sliding window over an ordered, non-ALL attribute
			var attrs []int
			for a := 0; a < s.NumAttrs(); a++ {
				if s.Attr(a).Kind() != cube.Nominal && sm.Grain[a] != s.Attr(a).AllIndex() {
					attrs = append(attrs, a)
				}
			}
			if len(attrs) == 0 {
				continue
			}
			a := attrs[rng.Intn(len(attrs))]
			low := -int64(rng.Intn(6))
			high := low + int64(rng.Intn(5))
			if high > 3 {
				high = 3
			}
			err = w.AddSliding(name, sm.Grain, measure.Spec{Func: measure.Sum}, src,
				workflow.RangeAnn{Attr: a, Low: low, High: high})
		}
		if err != nil {
			t.Fatalf("composite %d: %v", i, err)
		}
		names = append(names, name)
	}
	return w
}

// TestEngineMatchesOracleRandomWorkflows is the fuzzing companion of the
// per-query oracle tests: random workflows, random data distributions,
// random engine knobs — the parallel answer must always equal the
// single-block evaluation.
func TestEngineMatchesOracleRandomWorkflows(t *testing.T) {
	su := workload.NewSuite()
	seeds := 25
	if testing.Short() {
		seeds = 8
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000 + seed)))
			w := randomWorkflow(t, su.Schema, rng)
			dist := workload.Uniform
			if rng.Intn(3) == 0 {
				dist = workload.SkewedTime
			}
			records := su.Generate(500+rng.Intn(1500), dist, int64(seed))
			ds := MemoryDataset(su.Schema, records, 1+rng.Intn(8))

			cfg := Config{
				NumReducers:      1 + rng.Intn(8),
				EarlyAggregation: EarlyAggAuto,
			}
			if rng.Intn(2) == 0 {
				cfg.SortMode = CombinedKeySort
			}
			if rng.Intn(2) == 0 {
				cfg.LocalScan = localeval.ChainScan
			}
			if rng.Intn(3) == 0 {
				cfg.SkewMode = SkewSampling
				cfg.SampleSize = 300
			}
			want := oracle(t, w, records)
			res := runEngine(t, cfg, w, ds)
			compare(t, fmt.Sprintf("fuzz seed %d (%s)", seed, w.Explain()), want, flatten(res))

			// And with a random forced clustering factor when overlapping.
			if res.Plan.Key.IsOverlapping() {
				cfg2 := Config{NumReducers: cfg.NumReducers, ForceCF: int64(1 + rng.Intn(30))}
				res2 := runEngine(t, cfg2, w, ds)
				compare(t, fmt.Sprintf("fuzz seed %d forced cf", seed), want, flatten(res2))
			}
		})
	}
}

// TestEngineMatchesOracleMappedSchemaFuzz repeats the oracle property over
// a schema containing an irregular (table-driven) hierarchy, so mapped
// roll-ups interact with overlapping plans, early aggregation, and both
// scan modes.
func TestEngineMatchesOracleMappedSchemaFuzz(t *testing.T) {
	assign := make([]int64, 30)
	for i := range assign {
		// Irregular groups of sizes 1..5 over 30 products.
		switch {
		case i < 5:
			assign[i] = 0
		case i < 6:
			assign[i] = 1
		case i < 10:
			assign[i] = 2
		case i < 13:
			assign[i] = 3
		case i < 25:
			assign[i] = 4
		default:
			assign[i] = 5
		}
	}
	s := cube.MustSchema(
		cube.MustMappedAttribute("prod", 30,
			cube.MappedLevel{Name: "cat", Assign: assign},
		),
		cube.MustAttribute("amt", cube.Numeric, 64,
			cube.Level{Name: "v", Span: 1}, cube.Level{Name: "band", Span: 8}),
		cube.TimeAttribute("time", 3),
	)
	ti, _ := s.AttrIndex("time")
	hour, _ := s.Attr(ti).LevelIndex("hour")
	for seed := 0; seed < 8; seed++ {
		rng := rand.New(rand.NewSource(int64(7000 + seed)))
		w := workflow.New(s)
		catHour := s.GrainAll()
		pi, _ := s.AttrIndex("prod")
		cat, _ := s.Attr(pi).LevelIndex("cat")
		catHour[pi], catHour[ti] = cat, hour
		must := func(err error) {
			t.Helper()
			if err != nil {
				t.Fatal(err)
			}
		}
		must(w.AddBasic("b", catHour, measure.Spec{Func: measure.Sum}, "amt"))
		must(w.AddRollup("r", s.LCA(catHour, s.GrainAll()), measure.Spec{Func: measure.Avg}, "b"))
		must(w.AddSliding("sl", catHour, measure.Spec{Func: measure.Sum}, "b",
			workflow.RangeAnn{Attr: ti, Low: -int64(1 + rng.Intn(4)), High: 0}))
		must(w.AddSelf("n", catHour, measure.Ratio(), "b", "sl"))

		records := make([]cube.Record, 800+rng.Intn(800))
		for i := range records {
			records[i] = cube.Record{rng.Int63n(30), rng.Int63n(64), rng.Int63n(3 * 86400)}
		}
		ds := MemoryDataset(s, records, 1+rng.Intn(5))
		cfg := Config{NumReducers: 1 + rng.Intn(6), EarlyAggregation: EarlyAggAuto}
		if rng.Intn(2) == 0 {
			cfg.LocalScan = localeval.ChainScan
		}
		want := oracle(t, w, records)
		res := runEngine(t, cfg, w, ds)
		compare(t, fmt.Sprintf("mapped fuzz seed %d", seed), want, flatten(res))
	}
}
