package core

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/casm-project/casm/internal/mr"
	"github.com/casm-project/casm/internal/optimizer"
	"github.com/casm-project/casm/internal/transport"
	"github.com/casm-project/casm/internal/workflow"
	"github.com/casm-project/casm/internal/workload"
)

// TestEvaluateBatchMatchesSequentialByteIdentical is the shared-scan
// property test: for random workflow sets, a batched evaluation must be
// byte-identical, per query, to running each query alone — across both
// transports, both sort modes, forced reduce-side spills, and morsel mode
// on/off. stableBits workflows keep rollup folds order-independent, so
// "identical" really is canonical-bytes equality, not float tolerance.
func TestEvaluateBatchMatchesSequentialByteIdentical(t *testing.T) {
	su := workload.NewSuite()
	seeds := 8
	if testing.Short() {
		seeds = 3
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(9000 + seed)))
			nQ := 2 + rng.Intn(3)
			ws := make([]*workflow.Workflow, nQ)
			for i := range ws {
				ws[i] = randomWorkflowOpts(t, su.Schema, rng, true)
			}
			records := su.Generate(400+rng.Intn(800), workload.Uniform, int64(seed))
			ds := MemoryDataset(su.Schema, records, 2+rng.Intn(5))
			reducers := 1 + rng.Intn(6)

			for _, tp := range []struct {
				name    string
				factory transport.Factory
			}{
				{"channel", nil},
				{"tcp", transport.TCPFactory(64)},
			} {
				for _, sortMode := range []SortMode{TwoPassSort, CombinedKeySort} {
					for _, morselBytes := range []int{0, 512} {
						label := fmt.Sprintf("transport=%s sort=%d morsel=%d", tp.name, sortMode, morselBytes)
						cfg := Config{
							NumReducers:     reducers,
							Transport:       tp.factory,
							SortMode:        sortMode,
							SortMemoryItems: 2, // force reduce-side spills
							MorselBytes:     morselBytes,
							TempDir:         t.TempDir(),
						}
						eng, err := NewEngine(cfg)
						if err != nil {
							t.Fatal(err)
						}
						batch, err := eng.EvaluateBatch(ws, ds)
						if err != nil {
							t.Fatalf("%s: batch: %v", label, err)
						}
						for i, w := range ws {
							seq, err := eng.Run(w, ds)
							if err != nil {
								t.Fatalf("%s: sequential query %d: %v", label, i, err)
							}
							if got, want := canonicalOutput(batch.Results[i]), canonicalOutput(seq); got != want {
								t.Errorf("%s: query %d: batched output differs byte-wise from sequential\nbatched:\n%s\nsequential:\n%s",
									label, i, got, want)
							}
						}
					}
				}
			}
		})
	}
}

// TestEvaluateBatchSharedScanCounters pins the sharing accounting: a batch
// of shareable queries runs as ONE shared job whose map tasks each record
// serving every query from a single scan, with bytes-saved proportional to
// the fan-out.
func TestEvaluateBatchSharedScanCounters(t *testing.T) {
	su := workload.NewSuite()
	ws := []*workflow.Workflow{mustQ(t, su, 1), mustQ(t, su, 2), mustQ(t, su, 3), mustQ(t, su, 4)}
	records := su.Generate(3000, workload.Uniform, 1)
	ds := MemoryDataset(su.Schema, records, 6)

	eng, err := NewEngine(Config{NumReducers: 4, TempDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	batch, err := eng.EvaluateBatch(ws, ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Jobs) != 1 || !batch.Jobs[0].Shared {
		t.Fatalf("want one shared job for 4 shareable queries, got %d jobs (shared=%v)",
			len(batch.Jobs), len(batch.Jobs) > 0 && batch.Jobs[0].Shared)
	}
	if got := batch.SharedScanQueries(); got != 4 {
		t.Errorf("SharedScanQueries() = %d, want 4", got)
	}
	js := batch.Jobs[0].Stats
	if len(js.MapTasks) == 0 {
		t.Fatal("shared job ran no map tasks")
	}
	for _, mt := range js.MapTasks {
		if mt.SharedScanQueries != 4 {
			t.Errorf("map task %s: SharedScanQueries = %d, want 4", mt.Task, mt.SharedScanQueries)
		}
		if want := 3 * mt.BytesRead; mt.SharedScanBytesSaved != want {
			t.Errorf("map task %s: SharedScanBytesSaved = %d, want %d (3x BytesRead)",
				mt.Task, mt.SharedScanBytesSaved, want)
		}
	}
	// The sharing counters must stay out of the priced cost model: the
	// same stats with the counters zeroed must price identically.
	zeroed := js
	zeroed.MapTasks = append([]mr.TaskStats(nil), js.MapTasks...)
	for i := range zeroed.MapTasks {
		zeroed.MapTasks[i].SharedScanQueries = 0
		zeroed.MapTasks[i].SharedScanBytesSaved = 0
		zeroed.MapTasks[i].PlanCacheHits = 0
	}
	if a, b := EstimateFromStats(eng.cfg.Cluster, js), EstimateFromStats(eng.cfg.Cluster, zeroed); a != b {
		t.Errorf("sharing counters leaked into the cost model: %+v vs %+v", a, b)
	}
}

// TestEvaluateBatchUnshareableFallsBack pins the fallback: stage-stopped
// engines cannot share a scan, so every query runs alone and no job is
// marked shared.
func TestEvaluateBatchUnshareableFallsBack(t *testing.T) {
	su := workload.NewSuite()
	ws := []*workflow.Workflow{mustQ(t, su, 1), mustQ(t, su, 2)}
	records := su.Generate(800, workload.Uniform, 1)
	ds := MemoryDataset(su.Schema, records, 3)

	eng, err := NewEngine(Config{NumReducers: 2, Stage: StageSort, TempDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	batch, err := eng.EvaluateBatch(ws, ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Jobs) != 2 {
		t.Fatalf("want 2 sequential jobs, got %d", len(batch.Jobs))
	}
	for _, j := range batch.Jobs {
		if j.Shared {
			t.Errorf("stage-stopped job %v marked shared", j.Queries)
		}
	}
	if got := batch.SharedScanQueries(); got != 0 {
		t.Errorf("SharedScanQueries() = %d, want 0", got)
	}
}

// TestDecisionCacheEngineIntegration pins the hit/invalidation contract at
// the engine level: a repeated query hits, a structurally identical query
// with renamed measures hits, and a changed dataset cardinality or a
// changed measure set misses.
func TestDecisionCacheEngineIntegration(t *testing.T) {
	su := workload.NewSuite()
	records := su.Generate(2000, workload.Uniform, 1)
	ds := MemoryDataset(su.Schema, records, 4)

	dc := optimizer.NewDecisionCache(0)
	eng, err := NewEngine(Config{NumReducers: 4, DecisionCache: dc, TempDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}

	res1, err := eng.Run(mustQ(t, su, 6), ds)
	if err != nil {
		t.Fatal(err)
	}
	if res1.PlanCached {
		t.Error("first run claims a cached plan")
	}
	res2, err := eng.Run(mustQ(t, su, 6), ds)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.PlanCached {
		t.Error("repeated query did not hit the decision cache")
	}
	if !res2.Plan.Key.Equal(res1.Plan.Key) || res2.Plan.ClusteringFactor != res1.Plan.ClusteringFactor {
		t.Errorf("cached plan differs: %v cf=%d vs %v cf=%d",
			res2.Plan.Key, res2.Plan.ClusteringFactor, res1.Plan.Key, res1.Plan.ClusteringFactor)
	}
	var hits int64
	for _, mt := range res2.Stats.MapTasks {
		hits += mt.PlanCacheHits
	}
	if hits != 1 {
		t.Errorf("PlanCacheHits across map tasks = %d, want 1", hits)
	}
	if canonicalOutput(res1) != canonicalOutput(res2) {
		t.Error("cached-plan run output differs from first run")
	}

	// Structurally identical query, different measure names: same
	// fingerprint, so it hits too.
	renamed := renameMeasures(t, mustQ(t, su, 6))
	res3, err := eng.Run(renamed, ds)
	if err != nil {
		t.Fatal(err)
	}
	if !res3.PlanCached {
		t.Error("renamed structurally identical query missed the decision cache")
	}

	// Changed dataset cardinality: different N, different decision key.
	smaller := MemoryDataset(su.Schema, records[:1000], 4)
	res4, err := eng.Run(mustQ(t, su, 6), smaller)
	if err != nil {
		t.Fatal(err)
	}
	if res4.PlanCached {
		t.Error("changed dataset cardinality still hit the decision cache")
	}

	// Changed measure set: different fingerprint.
	res5, err := eng.Run(mustQ(t, su, 2), ds)
	if err != nil {
		t.Fatal(err)
	}
	if res5.PlanCached {
		t.Error("different workflow hit the decision cache")
	}

	// Forced overrides bypass the cache entirely.
	forced, err := NewEngine(Config{NumReducers: 4, DecisionCache: dc, ForceCF: 1, TempDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	res6, err := forced.Run(mustQ(t, su, 6), ds)
	if err != nil {
		t.Fatal(err)
	}
	if res6.PlanCached {
		t.Error("ForceCF run claims a cached plan")
	}
}

// TestEvaluateBatchDeduplicatesPlanning pins the batch × decision-cache
// interaction: structurally identical queries inside one batch plan once
// and hit the cache thereafter, with the tally stamped on the job's stats.
func TestEvaluateBatchDeduplicatesPlanning(t *testing.T) {
	su := workload.NewSuite()
	ws := []*workflow.Workflow{mustQ(t, su, 6), renameMeasures(t, mustQ(t, su, 6)), renameMeasures(t, mustQ(t, su, 6))}
	records := su.Generate(1500, workload.Uniform, 1)
	ds := MemoryDataset(su.Schema, records, 4)

	dc := optimizer.NewDecisionCache(0)
	eng, err := NewEngine(Config{NumReducers: 3, DecisionCache: dc, TempDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	batch, err := eng.EvaluateBatch(ws, ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Jobs) != 1 || !batch.Jobs[0].Shared {
		t.Fatalf("want one shared job, got %d", len(batch.Jobs))
	}
	var hits int64
	for _, mt := range batch.Jobs[0].Stats.MapTasks {
		hits += mt.PlanCacheHits
	}
	if hits != 2 {
		t.Errorf("PlanCacheHits = %d, want 2 (three identical queries, one cold plan)", hits)
	}
	if batch.Results[0].PlanCached || !batch.Results[1].PlanCached || !batch.Results[2].PlanCached {
		t.Errorf("PlanCached flags = %v %v %v, want false true true",
			batch.Results[0].PlanCached, batch.Results[1].PlanCached, batch.Results[2].PlanCached)
	}
}

// mustQ fetches one of the suite's paper queries.
func mustQ(t *testing.T, su *workload.Suite, n int) *workflow.Workflow {
	t.Helper()
	w, err := su.Query(n)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// renameMeasures rebuilds a workflow with every measure name prefixed, so
// it is structurally identical but textually distinct.
func renameMeasures(t *testing.T, w *workflow.Workflow) *workflow.Workflow {
	t.Helper()
	out := workflow.New(w.Schema())
	ren := func(name string) string { return "x_" + name }
	for _, m := range w.Measures() {
		var err error
		switch m.Kind {
		case workflow.Basic:
			in := ""
			if m.InputAttr >= 0 {
				in = w.Schema().Attr(m.InputAttr).Name()
			}
			err = out.AddBasic(ren(m.Name), m.Grain, m.Agg, in)
		case workflow.Self:
			srcs := make([]string, len(m.Sources))
			for i, s := range m.Sources {
				srcs[i] = ren(s)
			}
			err = out.AddSelf(ren(m.Name), m.Grain, m.Expr, srcs...)
		case workflow.Rollup:
			err = out.AddRollup(ren(m.Name), m.Grain, m.Agg, ren(m.Sources[0]))
		case workflow.Inherit:
			err = out.AddInherit(ren(m.Name), m.Grain, ren(m.Sources[0]))
		case workflow.Sliding:
			err = out.AddSliding(ren(m.Name), m.Grain, m.Agg, ren(m.Sources[0]), m.Window...)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	return out
}
