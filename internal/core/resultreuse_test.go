package core

import (
	"bytes"
	"context"
	"testing"

	"github.com/casm-project/casm/internal/blockstore"
	"github.com/casm-project/casm/internal/cube"
	"github.com/casm-project/casm/internal/mr"
	"github.com/casm-project/casm/internal/workflow"
	"github.com/casm-project/casm/internal/workload"
)

// storeDataset builds a tagged, store-backed dataset for reuse tests.
func storeDataset(t *testing.T, su *workload.Suite, records []cube.Record) (*blockstore.Store, *Dataset) {
	t.Helper()
	st, err := blockstore.Open(blockstore.Config{Dir: t.TempDir(), BlockSize: 8192, Replication: 2, NumNodes: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	if err := workload.WriteStore(st, "data", su.Schema, records); err != nil {
		t.Fatal(err)
	}
	return st, &Dataset{
		Schema:     su.Schema,
		Input:      mr.NewStoreInput(st, "data"),
		NumRecords: int64(len(records)),
		Tag:        "store:data",
	}
}

// resultBytes renders a result's measures in canonical byte form so
// byte-identity (not just value equality) can be asserted.
func resultBytes(t *testing.T, res *Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	names := make([]string, 0, len(res.Measures))
	for n := range res.Measures {
		names = append(names, n)
	}
	// Measures iterate in map order; sort for a stable rendering.
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	var enc []byte
	for _, n := range names {
		buf.WriteString(n)
		for _, r := range res.Measures[n] {
			enc = appendMeasureRecord(enc[:0], r.Region.Coord, r.Value)
			buf.Write(enc)
		}
	}
	return buf.Bytes()
}

func sumReduce(res *Result) (hits, misses, bytesServed int64) {
	for _, rt := range res.Stats.ReduceTasks {
		hits += rt.ResultCacheHits
		misses += rt.ResultCacheMisses
		bytesServed += rt.ResultCacheBytes
	}
	return
}

func bytesRead(res *Result) int64 {
	var n int64
	for _, mt := range res.Stats.MapTasks {
		n += mt.BytesRead
	}
	return n
}

// TestResultReuseWarmRun: the second identical run assembles from the
// committed manifest — byte-identical answer, zero input bytes, no job.
func TestResultReuseWarmRun(t *testing.T) {
	su := workload.NewSuite()
	records := su.Generate(3000, workload.Uniform, 17)
	_, ds := storeDataset(t, su, records)
	rc, err := blockstore.NewResultCache(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	w := su.Q3()
	want := oracle(t, w, records)

	eng, err := NewEngine(Config{NumReducers: 3, ResultCache: rc, TempDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := eng.Run(w, ds)
	if err != nil {
		t.Fatal(err)
	}
	compare(t, "cold", want, flatten(cold))
	if cold.ResultReused {
		t.Fatal("cold run claims reuse")
	}
	if _, misses, _ := sumReduce(cold); misses == 0 {
		t.Fatal("cold run recorded no cache misses")
	}
	if bytesRead(cold) == 0 {
		t.Fatal("cold run read no input")
	}

	warm, err := eng.Run(w, ds)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.ResultReused {
		t.Fatal("warm run did not reuse the materialized result")
	}
	if got := bytesRead(warm); got != 0 {
		t.Fatalf("warm run read %d input bytes, want 0", got)
	}
	if hits, _, served := sumReduce(warm); hits == 0 || served == 0 {
		t.Fatalf("warm run counters: hits=%d bytes=%d", hits, served)
	}
	if !bytes.Equal(resultBytes(t, cold), resultBytes(t, warm)) {
		t.Fatal("warm result not byte-identical to cold result")
	}
}

// TestResultReuseRenamedWorkflow: a structurally identical workflow with
// different measure names reuses the cached rows under its own names.
func TestResultReuseRenamedWorkflow(t *testing.T) {
	su := workload.NewSuite()
	records := su.Generate(2500, workload.Uniform, 29)
	_, ds := storeDataset(t, su, records)
	rc, err := blockstore.NewResultCache(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	w1 := su.Q1()
	eng, err := NewEngine(Config{NumReducers: 3, ResultCache: rc, TempDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	res1, err := eng.Run(w1, ds)
	if err != nil {
		t.Fatal(err)
	}

	// Rebuild Q1 under fresh measure names: same structure, same
	// fingerprint, different labels.
	w2, renames := renameAll(t, w1)
	if err := w2.Validate(); err != nil {
		t.Fatal(err)
	}
	res2, err := eng.Run(w2, ds)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.ResultReused {
		t.Fatal("renamed workflow did not reuse the materialized result")
	}
	for oldName, newName := range renames {
		a, b := res1.Measures[oldName], res2.Measures[newName]
		if len(a) != len(b) {
			t.Fatalf("%s→%s: %d vs %d records", oldName, newName, len(a), len(b))
		}
		for i := range a {
			if a[i].Value != b[i].Value {
				t.Fatalf("%s→%s[%d]: %v vs %v", oldName, newName, i, a[i].Value, b[i].Value)
			}
		}
	}
}

// TestResultReusePerBlockWithoutManifest: a streaming run fills block
// entries but never commits a manifest (it cannot know the consumer
// drained everything) — the next full run hits per block, still reads
// the input metadata but skips evaluation, and matches the oracle. This
// is also exactly the crash-between-entry-write-and-commit window.
func TestResultReusePerBlockWithoutManifest(t *testing.T) {
	su := workload.NewSuite()
	records := su.Generate(2500, workload.Uniform, 31)
	_, ds := storeDataset(t, su, records)
	rc, err := blockstore.NewResultCache(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	w := su.Q2()
	want := oracle(t, w, records)

	eng, err := NewEngine(Config{NumReducers: 3, ResultCache: rc, TempDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	st, err := eng.EvaluateStream(context.Background(), w, ds)
	if err != nil {
		t.Fatal(err)
	}
	for {
		_, ok, err := st.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	res, err := eng.Run(w, ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.ResultReused {
		t.Fatal("full-query reuse without a committed manifest")
	}
	hits, misses, _ := sumReduce(res)
	if hits == 0 {
		t.Fatal("no per-block hits after the streaming run filled the cache")
	}
	if misses != 0 {
		t.Fatalf("%d misses on a fully warmed cache", misses)
	}
	compare(t, "per-block warm", want, flatten(res))

	// The manifest committed by the completed run unlocks the fast path.
	res2, err := eng.Run(w, ds)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.ResultReused {
		t.Fatal("manifest from completed run not used")
	}
	compare(t, "manifest warm", want, flatten(res2))
}

// TestResultReuseDisabledWithoutTag: anonymous datasets must not probe
// or fill the cache (their identity is unsettled).
func TestResultReuseDisabledWithoutTag(t *testing.T) {
	su := workload.NewSuite()
	records := su.Generate(1000, workload.Uniform, 37)
	ds := MemoryDataset(su.Schema, records, 4) // no Tag
	rc, err := blockstore.NewResultCache(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	eng, err := NewEngine(Config{NumReducers: 2, ResultCache: rc, TempDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		res, err := eng.Run(su.Q1(), ds)
		if err != nil {
			t.Fatal(err)
		}
		if res.ResultReused {
			t.Fatal("anonymous dataset reused a result")
		}
		if hits, misses, _ := sumReduce(res); hits != 0 || misses != 0 {
			t.Fatalf("anonymous dataset touched the cache: hits=%d misses=%d", hits, misses)
		}
	}
	if cs := rc.Stats(); cs.Entries != 0 {
		t.Fatalf("cache holds %d entries from an anonymous dataset", cs.Entries)
	}
}

// TestResultReuseInvalidatedByReingest: Delete + re-ingest under the
// same name with *identical cardinality* must not serve the previous
// incarnation's cached results — the store's delete generation folds
// into the dataset tag, giving the replacement a fresh identity.
func TestResultReuseInvalidatedByReingest(t *testing.T) {
	su := workload.NewSuite()
	st, err := blockstore.Open(blockstore.Config{Dir: t.TempDir(), BlockSize: 8192, Replication: 2, NumNodes: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	recsA := su.Generate(3000, workload.Uniform, 41)
	if err := workload.WriteStore(st, "data", su.Schema, recsA); err != nil {
		t.Fatal(err)
	}
	dataset := func() *Dataset {
		info, err := st.FileInfo("data")
		if err != nil {
			t.Fatal(err)
		}
		return &Dataset{
			Schema:     su.Schema,
			Input:      mr.NewStoreInput(st, "data"),
			NumRecords: info.Records,
			Tag:        st.DatasetTag("data"),
		}
	}

	rc, err := blockstore.NewResultCache(st, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	w := su.Q1()
	eng, err := NewEngine(Config{NumReducers: 3, ResultCache: rc, TempDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(w, dataset()); err != nil {
		t.Fatal(err)
	}
	warm, err := eng.Run(w, dataset())
	if err != nil {
		t.Fatal(err)
	}
	if !warm.ResultReused {
		t.Fatal("warm run before re-ingest did not reuse")
	}

	// Replace the file with different records of the same cardinality.
	recsB := su.Generate(3000, workload.Uniform, 43)
	if err := st.Delete("data"); err != nil {
		t.Fatal(err)
	}
	if err := workload.WriteStore(st, "data", su.Schema, recsB); err != nil {
		t.Fatal(err)
	}
	ds2 := dataset()
	if ds2.Tag == "store:data" {
		t.Fatalf("tag %q unchanged across re-ingest", ds2.Tag)
	}
	res, err := eng.Run(w, ds2)
	if err != nil {
		t.Fatal(err)
	}
	if res.ResultReused {
		t.Fatal("stale cached result served for re-ingested data")
	}
	compare(t, "re-ingest", oracle(t, w, recsB), flatten(res))

	// The new incarnation warms up under its own identity.
	warm2, err := eng.Run(w, ds2)
	if err != nil {
		t.Fatal(err)
	}
	if !warm2.ResultReused {
		t.Fatal("re-ingested dataset did not warm up under its new tag")
	}
	compare(t, "re-ingest warm", oracle(t, w, recsB), flatten(warm2))
}

// renameAll rebuilds a workflow with every measure renamed, preserving
// structure; returns the new workflow and the old→new name mapping.
func renameAll(t *testing.T, w *workflow.Workflow) (*workflow.Workflow, map[string]string) {
	t.Helper()
	order, err := w.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	out := workflow.New(w.Schema())
	renames := make(map[string]string, len(order))
	for _, m := range order {
		renames[m.Name] = "renamed_" + m.Name
	}
	for _, m := range order {
		name := renames[m.Name]
		srcs := make([]string, len(m.Sources))
		for i, s := range m.Sources {
			srcs[i] = renames[s]
		}
		switch m.Kind {
		case workflow.Basic:
			attr := ""
			if m.InputAttr >= 0 {
				attr = w.Schema().Attr(m.InputAttr).Name()
			}
			err = out.AddBasic(name, m.Grain, m.Agg, attr)
		case workflow.Self:
			err = out.AddSelf(name, m.Grain, m.Expr, srcs...)
		case workflow.Rollup:
			err = out.AddRollup(name, m.Grain, m.Agg, srcs[0])
		case workflow.Inherit:
			err = out.AddInherit(name, m.Grain, srcs[0])
		case workflow.Sliding:
			err = out.AddSliding(name, m.Grain, m.Agg, srcs[0], m.Window...)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	return out, renames
}
