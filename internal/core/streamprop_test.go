package core

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"github.com/casm-project/casm/internal/cube"
	"github.com/casm-project/casm/internal/transport"
	"github.com/casm-project/casm/internal/workflow"
	"github.com/casm-project/casm/internal/workload"
)

// streamToResult evaluates the workflow through the streaming API and
// re-materializes the rows into a Result, sorting each measure by
// encoded coordinates — the canonical order the materialized plane uses —
// so both planes can be compared byte for byte. Rows arrive in
// reduce-completion order and their coordinate buffers are reused, so the
// sink copies coords per row, exactly as a real streaming consumer that
// retains rows must.
func streamToResult(t *testing.T, cfg Config, w *workflow.Workflow, ds *Dataset) *Result {
	t.Helper()
	cfg.TempDir = t.TempDir()
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := eng.EvaluateStream(context.Background(), w, ds)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	res := &Result{Measures: map[string][]MeasureRecord{}}
	for {
		row, ok, err := rs.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		coords := append([]int64(nil), row.Region.Coord...)
		res.Measures[row.Measure] = append(res.Measures[row.Measure], MeasureRecord{
			Region: cube.Region{Grain: row.Region.Grain, Coord: coords},
			Value:  row.Value,
		})
	}
	if err := rs.Close(); err != nil {
		t.Fatal(err)
	}
	for name := range res.Measures {
		ms := res.Measures[name]
		sort.Slice(ms, func(i, j int) bool {
			return cube.EncodeCoords(ms[i].Region.Coord) < cube.EncodeCoords(ms[j].Region.Coord)
		})
	}
	res.Stats = rs.Stats()
	return res
}

// TestStreamEquivalenceByteIdentical is the streaming plane's equivalence
// property: over random bit-stable workflows, both transports, a
// forced-spill sorter budget (SortMemoryItems=2), and morsel-driven map
// execution on and off, consuming the evaluation through EvaluateStream
// must yield byte-identical canonical output to the materialized
// EvaluateContext result (which itself agrees with the single-block
// oracle). This is what licenses streaming as the default sink for
// bounded-memory runs: the handoff mode may only change peak heap and
// first-row latency, never a bit of output.
func TestStreamEquivalenceByteIdentical(t *testing.T) {
	su := workload.NewSuite()
	seeds := 5
	if testing.Short() {
		seeds = 2
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(9000 + seed)))
			w := randomWorkflowOpts(t, su.Schema, rng, true)
			records := su.Generate(400+rng.Intn(800), workload.Uniform, int64(seed))
			ds := MemoryDataset(su.Schema, records, 2+rng.Intn(5))
			want := oracle(t, w, records)
			reducers := 1 + rng.Intn(6)

			for _, tp := range []struct {
				name    string
				factory transport.Factory
			}{
				{"channel", nil},
				{"tcp", transport.TCPFactory(64)},
			} {
				for _, morselBytes := range []int{0, 512} { // 0 = fixed splits; 512 carves every split
					label := fmt.Sprintf("transport=%s morsel=%d", tp.name, morselBytes)
					cfg := Config{
						NumReducers:     reducers,
						Transport:       tp.factory,
						SortMemoryItems: 2, // force reduce-side spills
						MorselBytes:     morselBytes,
					}
					mat := runEngine(t, cfg, w, ds)
					str := streamToResult(t, cfg, w, ds)
					compare(t, label+" (streamed)", want, flatten(str))
					if got, wantOut := canonicalOutput(str), canonicalOutput(mat); got != wantOut {
						t.Errorf("%s: streamed output differs byte-wise from materialized", label)
					}
					if str.Stats.TotalOutputRecords() != mat.Stats.TotalOutputRecords() {
						t.Errorf("%s: streamed %d output records, materialized %d",
							label, str.Stats.TotalOutputRecords(), mat.Stats.TotalOutputRecords())
					}
				}
			}
		})
	}
}
