// Package core is the paper's parallel evaluation engine for composite
// subset measure queries (ICDE'08, Section III): it plans a distribution
// key and clustering factor with the optimizer, redistributes the raw
// records into (possibly overlapping) blocks of cube space with a single
// MapReduce job, evaluates the entire aggregation workflow locally inside
// each block with the [4] sort/scan subroutine, and filters each block's
// output so the final answer is the duplicate-free union of local results
// — no join or combination step is ever needed.
package core

import (
	"fmt"
	"sync"

	"github.com/casm-project/casm/internal/blockstore"
	"github.com/casm-project/casm/internal/costmodel"
	"github.com/casm-project/casm/internal/cube"
	"github.com/casm-project/casm/internal/distkey"
	"github.com/casm-project/casm/internal/exec"
	"github.com/casm-project/casm/internal/localeval"
	"github.com/casm-project/casm/internal/mr"
	"github.com/casm-project/casm/internal/optimizer"
	"github.com/casm-project/casm/internal/recio"
	"github.com/casm-project/casm/internal/transport"
)

// SortMode selects how the in-group sort of the local algorithm is paid
// for (Section III-D / Figure 4(d)).
type SortMode int

const (
	// TwoPassSort ships plain block keys; the reducer re-sorts each
	// group's records before local evaluation (the paper's unmodified-
	// Hadoop default).
	TwoPassSort SortMode = iota
	// CombinedKeySort appends the record's own encoding to the shuffle
	// key so the framework's sort already orders records within blocks,
	// eliminating the second sort.
	CombinedKeySort
)

// Stage stops the pipeline early, reproducing the Figure 4(d) cost
// breakdown.
type Stage int

const (
	// StageFull runs everything.
	StageFull Stage = iota
	// StageMapOnly only fetches and maps ("Map-Only").
	StageMapOnly
	// StageShuffle shuffles and groups by the distribution key but skips
	// the in-group sort and evaluation ("MR").
	StageShuffle
	// StageSort additionally sorts within each group but skips the
	// evaluation scan ("Sort").
	StageSort
)

// EarlyAggMode controls map-side early aggregation (Section III-D).
type EarlyAggMode int

const (
	// EarlyAggOff ships raw records.
	EarlyAggOff EarlyAggMode = iota
	// EarlyAggOn requires early aggregation and fails when the workflow
	// does not support it.
	EarlyAggOn
	// EarlyAggAuto enables it when the workflow supports it.
	EarlyAggAuto
)

// SkewMode selects the Section V run-time skew strategy.
type SkewMode int

const (
	// SkewNone trusts the model's plan.
	SkewNone SkewMode = iota
	// SkewSampling samples the input, simulates the dispatch for every
	// candidate plan, and picks the most balanced one.
	SkewSampling
)

// Config tunes the engine.
type Config struct {
	// NumReducers is the number of reduce tasks (the paper's m). Required.
	NumReducers int
	// MapParallelism / ReduceParallelism bound real concurrency
	// (default GOMAXPROCS each).
	MapParallelism    int
	ReduceParallelism int
	// Executor is the shared task-scheduler pool the engine's jobs run on
	// (default: the process-wide exec.Default()). Give several engines the
	// same executor and their concurrent EvaluateContext calls multiplex
	// over one bounded worker pool with FIFO-fair admission, instead of
	// oversubscribing the machine with per-call goroutine floods.
	Executor *exec.Executor
	// Transport picks the shuffle implementation (default in-memory).
	Transport transport.Factory
	// EarlyAggregation selects the combiner mode (default off).
	EarlyAggregation EarlyAggMode
	// SortMode selects two-pass vs combined-key sorting (default two-pass,
	// matching the paper's unmodified MapReduce).
	SortMode SortMode
	// GroupMode selects the reducer's grouping strategy (default
	// mr.GroupAuto: hash grouping for plain block grouping and early
	// aggregation, sorted grouping for CombinedKeySort). mr.GroupHash is
	// rejected with CombinedKeySort — the combined key's secondary order
	// needs the sorted path.
	GroupMode mr.GroupMode
	// LocalScan selects the local evaluator's group-construction strategy
	// (default hash; localeval.ChainScan streams contiguous groups off a
	// grain-derived sort order, closer to [4]'s single sort+scan). Chain
	// scanning performs its own sort, so it supersedes CombinedKeySort.
	LocalScan localeval.ScanMode
	// Stage optionally stops the pipeline early (default full).
	Stage Stage
	// SkewMode selects run-time skew handling (default none).
	SkewMode SkewMode
	// SampleSize bounds the skew-detection sample (default 2000 records).
	SampleSize int
	// MinBlocksPerReducer is the paper's "2Blocks"/"4Blocks" heuristic
	// (0 = off).
	MinBlocksPerReducer int64
	// ForceKey/ForceCF override the optimizer (benchmarks sweeping the
	// clustering factor use these). ForceCF without ForceKey applies to
	// the optimizer's chosen key.
	ForceKey *distkey.Key
	ForceCF  int64
	// SortMemoryItems bounds the reducer's in-memory sort (default 1<<20).
	SortMemoryItems int
	// MorselBytes, when > 0, switches the map phase to morsel-driven
	// execution: splits are carved into ~MorselBytes runs of records and
	// a fixed worker pool self-schedules over them with work-stealing
	// (mr.DefaultMorselBytes is the recommended size). 0 keeps the
	// fixed-split map phase.
	MorselBytes int
	// LocalAggBudget caps each morsel worker's thread-local
	// pre-aggregation table (distinct partial states before a sorted-key
	// spill into the shuffle). 0 defaults to the engine's combine buffer
	// size; ignored in fixed-split mode.
	LocalAggBudget int
	// TempDir hosts spill files.
	TempDir string
	// Cluster parameterizes the simulated-time estimate (zero value =
	// the paper's 100-machine cluster).
	Cluster costmodel.Cluster
	// Cache, when non-nil, reuses previously successful plans (Section V).
	Cache *optimizer.PlanCache
	// DecisionCache, when non-nil, memoizes complete optimizer decisions
	// under the canonical workflow fingerprint + dataset identity +
	// planning knobs, so a repeated (or structurally identical) query
	// skips candidate enumeration, scoring, and skew sampling entirely.
	// Forced overrides (ForceKey/ForceCF) bypass it. Distinct from Cache:
	// that one matches by key generalization and still re-scores; a
	// decision-cache hit re-plans nothing.
	DecisionCache *optimizer.DecisionCache
	// ResultCache, when non-nil, materializes each block's reducer
	// output under (dataset identity × measure fingerprint × block key)
	// and probes it before local evaluation, so repeated or structurally
	// identical workflows skip recomputing blocks they have already
	// answered. A full-query manifest additionally lets an identical
	// repeated query skip the job (and its input scan) entirely.
	// Reuse needs a settled dataset identity: only StageFull runs over
	// datasets with a non-empty Tag and known NumRecords participate
	// (the batch path always recomputes). Correctness leans on the
	// pinned determinism of per-block results: byte-identical answers
	// across cache states are property-tested.
	ResultCache *blockstore.ResultCache
	// Seed drives sampling.
	Seed int64
	// FailureInjector, when non-nil, is invoked at each map-task start
	// (task label, attempt); returning an error crashes that attempt and
	// exercises the substrate's bounded retry. Tests only.
	FailureInjector func(task string, attempt int) error
}

func (c Config) withDefaults() (Config, error) {
	if c.NumReducers < 1 {
		return c, fmt.Errorf("core: NumReducers %d < 1", c.NumReducers)
	}
	if c.SampleSize < 1 {
		c.SampleSize = 2000
	}
	if c.Cluster.Machines == 0 {
		c.Cluster = costmodel.DefaultCluster()
	}
	return c, nil
}

// Engine evaluates workflows under one configuration.
type Engine struct {
	cfg Config
}

// NewEngine validates the configuration and returns an engine.
func NewEngine(cfg Config) (*Engine, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Engine{cfg: c}, nil
}

// Dataset couples a schema with a raw-record input.
type Dataset struct {
	Schema *cube.Schema
	Input  mr.Input
	// NumRecords is the dataset cardinality (the optimizer's N). When 0,
	// the engine counts records with one extra scan.
	NumRecords int64
	// Tag optionally names the dataset for the decision cache (a file
	// path, a snapshot id). Under SkewNone the chosen plan is a pure
	// function of (workflow, N, planning knobs), so an empty Tag is safe;
	// under SkewSampling the sampled records influence the decision, and
	// distinct datasets sharing a schema and cardinality should carry
	// distinct Tags to keep their cached decisions apart.
	Tag string
}

// MeasureRecord is one <region, value> result.
type MeasureRecord struct {
	Region cube.Region
	Value  float64
}

// Result is a completed evaluation.
type Result struct {
	// Measures maps measure names to their records, each sorted by
	// region key.
	Measures map[string][]MeasureRecord
	// Plan is the executed plan.
	Plan optimizer.Plan
	// SampledPlan indicates the plan came from simulated dispatch.
	SampledPlan bool
	// EarlyAggregated indicates the combiner ran.
	EarlyAggregated bool
	// Stats are the substrate's per-task counters.
	Stats mr.JobStats
	// Estimate is the simulated response time on the configured cluster.
	Estimate costmodel.Estimate
	// SampleSeconds is the simulated cost of the sampling pass (0 when
	// sampling is off); the paper reports ~10 s per dataset.
	SampleSeconds float64
	// PlanCached indicates the whole planning decision came from the
	// keyed decision cache (Config.DecisionCache) — no optimizer work,
	// no sampling pass, was performed for this run.
	PlanCached bool
	// ResultReused indicates the whole answer was assembled from the
	// materialized result cache — no job ran, no input bytes were
	// scanned.
	ResultReused bool
}

// TotalRecords returns the total number of measure records.
func (r *Result) TotalRecords() int64 {
	var n int64
	for _, ms := range r.Measures {
		n += int64(len(ms))
	}
	return n
}

// decodePool recycles per-record decode buffers across map invocations.
var decodePool = sync.Pool{}

func getRecordBuf(arity int) cube.Record {
	if v := decodePool.Get(); v != nil {
		if rec := v.(cube.Record); len(rec) == arity {
			return rec
		}
	}
	return make(cube.Record, arity)
}

func putRecordBuf(rec cube.Record) { decodePool.Put(rec) }

// CountRecords scans the dataset once and returns its cardinality.
func CountRecords(ds *Dataset) (int64, error) {
	splits, err := ds.Input.Splits()
	if err != nil {
		return 0, err
	}
	var n int64
	for _, sp := range splits {
		it, err := sp.Open()
		if err != nil {
			return 0, err
		}
		for {
			_, ok, err := it.Next()
			if err != nil {
				it.Close()
				return 0, err
			}
			if !ok {
				break
			}
			n++
		}
		if err := it.Close(); err != nil {
			return 0, err
		}
	}
	return n, nil
}

// MemoryDataset wraps in-memory records as a dataset with the given
// number of splits.
func MemoryDataset(schema *cube.Schema, records []cube.Record, splits int) *Dataset {
	raw := make([][]byte, len(records))
	for i, r := range records {
		raw[i] = recio.AppendRecord(nil, r)
	}
	return &Dataset{
		Schema:     schema,
		Input:      mr.NewMemoryInput(raw, splits),
		NumRecords: int64(len(records)),
	}
}

// FileDataset wraps an on-disk recio.PackAligned file (casmgen's output
// format) as a streaming dataset: one split per block, each block read
// into memory only while a map task consumes it, so evaluating a file
// never loads it whole (see mr.NewFileInput). NumRecords is left unknown
// — the optimizer counts with one streaming scan on first need.
func FileDataset(schema *cube.Schema, path string, blockSize int) (*Dataset, error) {
	in, err := mr.NewFileInput(path, blockSize)
	if err != nil {
		return nil, err
	}
	return &Dataset{Schema: schema, Input: in}, nil
}
