package core

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"

	"github.com/casm-project/casm/internal/costmodel"
	"github.com/casm-project/casm/internal/cube"
	"github.com/casm-project/casm/internal/mr"
	"github.com/casm-project/casm/internal/optimizer"
	"github.com/casm-project/casm/internal/transport"
	"github.com/casm-project/casm/internal/workflow"
)

// ResultRow is one streamed <measure, region, value> output row.
type ResultRow struct {
	Measure string
	Region  cube.Region
	Value   float64
}

// ResultStream is the streaming form of an evaluation: an
// iterx.Iter[ResultRow] yielding result rows as the job's reduce tasks
// emit them, concurrently with the rest of the run, instead of one
// Result assembled after the job completes. Rows arrive in
// reduce-completion order, NOT the per-measure region order of
// Result.Measures — a sink needing the canonical order must sort (or use
// EvaluateContext, which does).
//
// The stream is single-use and single-goroutine: consume with Next until
// ok=false, check the error, Close; or Close early to cancel the
// in-flight job (tasks abort, spill state is reclaimed). Stats and
// Estimate are valid only after the stream has ended.
//
// Ownership: a row's Region.Coord is only valid until the following Next
// call (coordinates decode into a reused buffer); Measure is an interned
// string, safe to retain.
type ResultStream struct {
	eng  *Engine
	pipe *mr.Pipe
	w    *workflow.Workflow

	// Plan facts, valid immediately.
	Plan            optimizer.Plan
	SampledPlan     bool
	EarlyAggregated bool
	SampleSeconds   float64

	arity  int
	byKey  map[string]*workflow.Measure
	coords []int64
	cur    []transport.Pair
	i      int
	rows   int64
}

// EvaluateStream plans the workflow and starts its evaluation, returning
// the streaming result. The engine, executor sharing, and cancellation
// contract match EvaluateContext; only the output handoff differs — rows
// flow to the caller while the job still runs, so a sink sees the first
// row before the last record is mapped (given a transport whose
// per-reducer streams can end early) and peak memory never holds the
// whole result.
func (e *Engine) EvaluateStream(ctx context.Context, w *workflow.Workflow, ds *Dataset) (*ResultStream, error) {
	outcome, err := e.PlanContext(ctx, w, ds)
	if err != nil {
		return nil, err
	}
	js, err := e.startJob(ctx, w, ds, outcome)
	if err != nil {
		return nil, err
	}
	return &ResultStream{
		eng:             e,
		pipe:            js.pipe,
		w:               w,
		Plan:            js.plan,
		SampledPlan:     outcome.Sampled,
		EarlyAggregated: js.early,
		SampleSeconds:   outcome.SampleSeconds,
		arity:           js.arity,
		byKey:           make(map[string]*workflow.Measure, len(w.Measures())),
		coords:          make([]int64, js.arity),
	}, nil
}

// Next returns the next result row; ok=false ends the stream (err, if
// any, is the job's). See ResultStream for ownership.
func (s *ResultStream) Next() (ResultRow, bool, error) {
	for s.i >= len(s.cur) {
		if s.cur != nil {
			transport.RecycleBatch(s.cur)
			s.cur = nil
		}
		_, pairs, ok, err := s.pipe.NextBatch()
		if err != nil || !ok {
			return ResultRow{}, false, err
		}
		s.cur, s.i = pairs, 0
	}
	p := s.cur[s.i]
	s.i++
	m, ok := s.byKey[string(p.Key)]
	if !ok {
		name := string(p.Key)
		if m, ok = s.w.Measure(name); !ok {
			return ResultRow{}, false, fmt.Errorf("core: output for unknown measure %q", name)
		}
		s.byKey[name] = m
	}
	if len(p.Value) < 8 {
		return ResultRow{}, false, fmt.Errorf("core: truncated measure record")
	}
	if err := cube.DecodeCoordsInto(p.Value[:len(p.Value)-8], s.coords); err != nil {
		return ResultRow{}, false, err
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(p.Value[len(p.Value)-8:]))
	s.rows++
	return ResultRow{
		Measure: m.Name,
		Region:  cube.Region{Grain: m.Grain, Coord: s.coords},
		Value:   v,
	}, true, nil
}

// Close tears the job down if it is still running and releases the
// stream; idempotent (see mr.Pipe.Close for the early-close contract).
func (s *ResultStream) Close() error { return s.pipe.Close() }

// Rows reports how many rows the stream has yielded so far.
func (s *ResultStream) Rows() int64 { return s.rows }

// Stats returns the job's counters; valid once the stream has ended.
func (s *ResultStream) Stats() mr.JobStats { return s.pipe.Stats() }

// Estimate returns the simulated response time on the engine's cluster,
// including any sampling overhead; valid once the stream has ended.
func (s *ResultStream) Estimate() costmodel.Estimate {
	est := EstimateFromStats(s.eng.cfg.Cluster, s.pipe.Stats())
	est.ReduceSeconds += s.SampleSeconds
	return est
}
