package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"github.com/casm-project/casm/internal/cube"
	"github.com/casm-project/casm/internal/mr"
	"github.com/casm-project/casm/internal/workload"
)

// canonicalOutput serializes a result's measure records exactly — region
// coordinates plus the raw float bits — so two runs can be compared for
// byte-identical output, not just approximate equality.
func canonicalOutput(res *Result) string {
	names := make([]string, 0, len(res.Measures))
	for name := range res.Measures {
		names = append(names, name)
	}
	sort.Strings(names)
	var sb strings.Builder
	for _, name := range names {
		sb.WriteString(name)
		sb.WriteByte('\n')
		for _, m := range res.Measures[name] {
			fmt.Fprintf(&sb, "  %x %016x\n", cube.EncodeCoords(m.Region.Coord), math.Float64bits(m.Value))
		}
	}
	return sb.String()
}

// TestHashGroupingMatchesSortedByteIdentical is the grouping-mode property
// test: for random workflows, datasets, and engine knobs, the hash-grouped
// reduce path must produce byte-identical measure output to the external
// sorted path — with a roomy in-memory budget and with a tiny one that
// forces the hash table through its spill fallback.
func TestHashGroupingMatchesSortedByteIdentical(t *testing.T) {
	su := workload.NewSuite()
	seeds := 10
	if testing.Short() {
		seeds = 4
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(3000 + seed)))
			w := randomWorkflow(t, su.Schema, rng)
			dist := workload.Uniform
			if rng.Intn(3) == 0 {
				dist = workload.SkewedTime
			}
			records := su.Generate(400+rng.Intn(1200), dist, int64(seed))
			ds := MemoryDataset(su.Schema, records, 1+rng.Intn(6))
			base := Config{
				NumReducers:      1 + rng.Intn(6),
				EarlyAggregation: EarlyAggAuto,
			}
			want := oracle(t, w, records)
			for _, memItems := range []int{0, 2} { // 0 = default budget; 2 forces spills
				cfgSort := base
				cfgSort.GroupMode = mr.GroupSort
				cfgSort.SortMemoryItems = memItems
				cfgHash := base
				cfgHash.GroupMode = mr.GroupHash
				cfgHash.SortMemoryItems = memItems
				resSort := runEngine(t, cfgSort, w, ds)
				resHash := runEngine(t, cfgHash, w, ds)

				label := fmt.Sprintf("seed %d mem %d", seed, memItems)
				if got, wantOut := canonicalOutput(resHash), canonicalOutput(resSort); got != wantOut {
					t.Errorf("%s: hash output differs from sorted output\nhash:\n%s\nsorted:\n%s", label, got, wantOut)
				}
				// Both paths must also still match the single-block oracle.
				compare(t, label+" sorted", want, flatten(resSort))
				compare(t, label+" hash", want, flatten(resHash))

				// The modes must really have been exercised.
				var hashGroups, spills, bigReducers int64
				for _, rt := range resHash.Stats.ReduceTasks {
					hashGroups += rt.HashGroups
					spills += rt.GroupSpills
					if rt.PairsIn > 2 {
						bigReducers++
					}
				}
				if hashGroups == 0 {
					t.Errorf("%s: hash run reported no HashGroups", label)
				}
				if memItems == 2 && bigReducers > 0 && spills == 0 {
					t.Errorf("%s: forced-spill hash run reported no GroupSpills", label)
				}
				for _, rt := range resSort.Stats.ReduceTasks {
					if rt.HashGroups != 0 {
						t.Errorf("%s: sorted run reported HashGroups=%d", label, rt.HashGroups)
					}
				}
			}
		})
	}
}

// TestGroupHashRejectedWithCombinedKeySort pins the validation: the
// combined key's secondary order needs the sorted path.
func TestGroupHashRejectedWithCombinedKeySort(t *testing.T) {
	su := workload.NewSuite()
	records := su.Generate(200, workload.Uniform, 1)
	ds := MemoryDataset(su.Schema, records, 2)
	w, err := su.Query(1)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(Config{
		NumReducers: 2,
		SortMode:    CombinedKeySort,
		GroupMode:   mr.GroupHash,
		TempDir:     t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(w, ds); err == nil {
		t.Fatal("GroupHash with CombinedKeySort unexpectedly succeeded")
	}
}
