package core

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"

	"github.com/casm-project/casm/internal/blockstore"
	"github.com/casm-project/casm/internal/cube"
	"github.com/casm-project/casm/internal/exec"
	"github.com/casm-project/casm/internal/mr"
	"github.com/casm-project/casm/internal/optimizer"
	"github.com/casm-project/casm/internal/workflow"
)

// ErrUnknownDataset is returned by Service submission paths naming a
// dataset that was never registered. Servers map it to 404 Not Found.
var ErrUnknownDataset = errors.New("core: unknown dataset")

// ServiceConfig parameterizes a resident service.
type ServiceConfig struct {
	// Engine is the per-evaluation configuration every session call runs
	// under (NumReducers is required, as for NewEngine). Engine.Executor
	// and Engine.DecisionCache are the resident state's seeds: leave them
	// nil and the service builds (and owns) its own.
	Engine Config
	// Workers sizes the owned executor pool when Engine.Executor is nil
	// (<= 0 = the exec package's default sizing).
	Workers int
	// DecisionCacheSize bounds the owned decision cache when
	// Engine.DecisionCache is nil (<= 0 = the optimizer's default).
	DecisionCacheSize int
	// PerTenantInFlight / AdmissionQueue parameterize admission control
	// (<= 0 = the exec package defaults).
	PerTenantInFlight int
	AdmissionQueue    int
	// Store, when non-nil, is the service's persistent block store: the
	// backing for RegisterStore datasets, the write-behind home of the
	// owned result cache, and the memo that lets RegisterFile skip
	// recounting files it has seen before. The caller keeps ownership
	// (Drain flushes it but does not close it).
	Store *blockstore.Store
	// ResultCacheBytes bounds the owned result cache built when
	// Engine.ResultCache is nil (> 0, or Store non-nil with 0 for the
	// default budget). When both are zero/nil, result reuse is off.
	ResultCacheBytes int64
}

// Service is the resident, multi-tenant form of the engine: where Engine
// is a stateless per-call configuration wrapper, a Service owns the
// long-lived execution state — one shared exec.Executor pool, one
// optimizer.DecisionCache, and a named Dataset registry — and turns
// Evaluate/EvaluateBatch/EvaluateStream into thin session calls against
// it. Every submission passes admission control (per-tenant in-flight
// limits over one bounded queue); Drain stops admission, lets running
// jobs finish, and tears the owned state down leak-free.
//
// Safe for concurrent use.
type Service struct {
	eng *Engine
	adm *exec.Admission

	execu   *exec.Executor
	ownExec bool
	dcache  *optimizer.DecisionCache

	store    *blockstore.Store
	rcache   *blockstore.ResultCache
	ownCache bool

	mu       sync.Mutex
	datasets map[string]*Dataset

	evals int64
	drain sync.Once
}

// NewService validates the configuration and returns a resident service.
func NewService(cfg ServiceConfig) (*Service, error) {
	s := &Service{datasets: make(map[string]*Dataset)}
	ecfg := cfg.Engine
	if ecfg.Executor == nil {
		workers := cfg.Workers
		if workers < 0 {
			workers = 0
		}
		s.execu = exec.New(workers)
		s.ownExec = true
		ecfg.Executor = s.execu
	} else {
		s.execu = ecfg.Executor
	}
	if ecfg.DecisionCache == nil {
		ecfg.DecisionCache = optimizer.NewDecisionCache(cfg.DecisionCacheSize)
	}
	s.dcache = ecfg.DecisionCache
	s.store = cfg.Store
	if ecfg.ResultCache == nil && (cfg.Store != nil || cfg.ResultCacheBytes > 0) {
		rc, err := blockstore.NewResultCache(cfg.Store, cfg.ResultCacheBytes)
		if err != nil {
			if s.ownExec {
				s.execu.Close()
			}
			return nil, fmt.Errorf("core: opening result cache: %w", err)
		}
		ecfg.ResultCache = rc
		s.ownCache = true
	}
	s.rcache = ecfg.ResultCache
	eng, err := NewEngine(ecfg)
	if err != nil {
		if s.ownExec {
			s.execu.Close()
		}
		if s.ownCache {
			s.rcache.Close()
		}
		return nil, err
	}
	s.eng = eng
	s.adm = exec.NewAdmission(exec.AdmissionConfig{
		PerTenant: cfg.PerTenantInFlight,
		Queue:     cfg.AdmissionQueue,
	})
	return s, nil
}

// Engine returns the service's underlying engine (resident executor and
// decision cache already wired in). Calls on it bypass admission control
// — session paths should go through the Service methods.
func (s *Service) Engine() *Engine { return s.eng }

// Executor returns the service's resident executor pool.
func (s *Service) Executor() *exec.Executor { return s.execu }

// Register adds a dataset to the registry under name. The dataset's
// cardinality is counted once here when unknown, and an empty Tag is
// stamped with the registry name, so every later session call plans
// against settled identity — no per-query counting scans, and distinct
// registered datasets never collide in the decision cache. Registering a
// taken name is an error (the registry is the service's source of truth;
// replacing a dataset under running queries would be a lifecycle hazard).
func (s *Service) Register(name string, ds *Dataset) error {
	if name == "" {
		return fmt.Errorf("core: empty dataset name")
	}
	if ds == nil || ds.Schema == nil || ds.Input == nil {
		return fmt.Errorf("core: dataset %q needs a schema and an input", name)
	}
	d := *ds
	if d.NumRecords == 0 {
		n, err := CountRecords(&d)
		if err != nil {
			return fmt.Errorf("core: counting dataset %q: %w", name, err)
		}
		if n == 0 {
			n = 1
		}
		d.NumRecords = n
	}
	if d.Tag == "" {
		d.Tag = "svc:" + name
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.datasets[name]; ok {
		return fmt.Errorf("core: dataset %q already registered", name)
	}
	s.datasets[name] = &d
	return nil
}

// RegisterFile opens a casmgen-format file as a streaming dataset and
// registers it; see FileDataset and Register. With a configured Store,
// the file's cardinality is memoized in store metadata keyed by the
// file's identity (path, size, mtime, schema digest), so a restarted
// service re-registers known files without the counting scan.
func (s *Service) RegisterFile(name string, schema *cube.Schema, path string, blockSize int) error {
	ds, err := FileDataset(schema, path, blockSize)
	if err != nil {
		return err
	}
	if s.store != nil {
		if fi, statErr := os.Stat(path); statErr == nil {
			key := fmt.Sprintf("filecard/%s?size=%d&mtime=%d&schema=%s",
				path, fi.Size(), fi.ModTime().UnixNano(), workflow.SchemaDigest(schema))
			if v, ok := s.store.GetMeta(key); ok {
				if n, perr := strconv.ParseInt(string(v), 10, 64); perr == nil && n > 0 {
					ds.NumRecords = n
				}
			}
			if ds.NumRecords == 0 {
				n, cerr := CountRecords(ds)
				if cerr != nil {
					return fmt.Errorf("core: counting dataset %q: %w", name, cerr)
				}
				if n == 0 {
					n = 1
				}
				ds.NumRecords = n
				if merr := s.store.PutMeta(key, []byte(strconv.FormatInt(n, 10))); merr != nil {
					return fmt.Errorf("core: memoizing cardinality of %q: %w", name, merr)
				}
			}
		}
	}
	return s.Register(name, ds)
}

// RegisterStore registers a block store file as a dataset. Cardinality
// and schema identity come from the store's own block footers and
// metadata — no scan at all — so a restarted service reopens its
// datasets exactly as it left them.
func (s *Service) RegisterStore(name string, schema *cube.Schema, st *blockstore.Store, file string) error {
	if st == nil {
		st = s.store
	}
	if st == nil {
		return fmt.Errorf("core: RegisterStore %q: no store", name)
	}
	info, err := st.FileInfo(file)
	if err != nil {
		return fmt.Errorf("core: opening store file %q: %w", file, err)
	}
	if d := workflow.SchemaDigest(schema); info.SchemaDigest != "" && info.SchemaDigest != d {
		return fmt.Errorf("core: store file %q was ingested under a different schema", file)
	}
	return s.Register(name, &Dataset{
		Schema:     schema,
		Input:      mr.NewStoreInput(st, file),
		NumRecords: info.Records,
		Tag:        st.DatasetTag(file),
	})
}

// Dataset returns the registered dataset, or ErrUnknownDataset.
func (s *Service) Dataset(name string) (*Dataset, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ds, ok := s.datasets[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownDataset, name)
	}
	return ds, nil
}

// Datasets lists the registered dataset names, sorted.
func (s *Service) Datasets() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.datasets))
	for n := range s.datasets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Evaluate runs one workflow for the tenant against a registered dataset:
// admission (blocking while the tenant is at its in-flight limit), then a
// plain EvaluateContext over the resident executor and decision cache.
// The returned Timing carries the admission wait (Queue), dispatch time
// (Start), and run duration (Wall). Fails fast with ErrUnknownDataset,
// exec.ErrDraining, or exec.ErrQueueFull.
func (s *Service) Evaluate(ctx context.Context, tenant, dataset string, w *workflow.Workflow) (*Result, exec.Timing, error) {
	var tm exec.Timing
	ds, err := s.Dataset(dataset)
	if err != nil {
		return nil, tm, err
	}
	tk, err := s.adm.Admit(ctx, tenant, &tm)
	if err != nil {
		return nil, tm, err
	}
	defer tk.Release()
	res, err := s.eng.EvaluateContext(ctx, w, ds)
	tm.Wall = time.Since(tm.Start)
	if err != nil {
		return nil, tm, err
	}
	s.countEval(1)
	return res, tm, nil
}

// EvaluateBatch runs a workflow batch for the tenant against a registered
// dataset through the shared-scan batch path, under one admission slot
// (the batch is one job submission, however many queries it carries).
func (s *Service) EvaluateBatch(ctx context.Context, tenant, dataset string, ws []*workflow.Workflow) (*BatchResult, exec.Timing, error) {
	var tm exec.Timing
	ds, err := s.Dataset(dataset)
	if err != nil {
		return nil, tm, err
	}
	tk, err := s.adm.Admit(ctx, tenant, &tm)
	if err != nil {
		return nil, tm, err
	}
	defer tk.Release()
	res, err := s.eng.EvaluateBatchContext(ctx, ws, ds)
	tm.Wall = time.Since(tm.Start)
	if err != nil {
		return nil, tm, err
	}
	s.countEval(int64(len(ws)))
	return res, tm, nil
}

// ServiceStream is a ResultStream holding a service admission slot: the
// tenant's in-flight slot is released when the stream is closed (or the
// consumer drains it and closes), not when the call returns — a slow
// streaming consumer counts against its tenant's limit for as long as
// the job lives. Close is idempotent.
type ServiceStream struct {
	*ResultStream
	tk *exec.Ticket
	tm exec.Timing
	s  *Service
}

// Close tears down the stream and releases the tenant's admission slot.
func (st *ServiceStream) Close() error {
	err := st.ResultStream.Close()
	st.tk.Release()
	return err
}

// Timing returns the stream's admission/dispatch timing; Wall is filled
// in by Close (or stays zero if never closed).
func (st *ServiceStream) Timing() exec.Timing {
	tm := st.tm
	tm.Wall = time.Since(tm.Start)
	return tm
}

// EvaluateStream starts a streaming evaluation for the tenant against a
// registered dataset. The returned stream owns the tenant's admission
// slot until Close.
func (s *Service) EvaluateStream(ctx context.Context, tenant, dataset string, w *workflow.Workflow) (*ServiceStream, error) {
	ds, err := s.Dataset(dataset)
	if err != nil {
		return nil, err
	}
	var tm exec.Timing
	tk, err := s.adm.Admit(ctx, tenant, &tm)
	if err != nil {
		return nil, err
	}
	rs, err := s.eng.EvaluateStream(ctx, w, ds)
	if err != nil {
		tk.Release()
		return nil, err
	}
	s.countEval(1)
	return &ServiceStream{ResultStream: rs, tk: tk, tm: tm, s: s}, nil
}

// Draining reports whether Drain has begun.
func (s *Service) Draining() bool { return s.adm.Draining() }

// Drain gracefully shuts the service down: admission stops (queued
// waiters fail with exec.ErrDraining, new submissions are rejected),
// running jobs finish, and — once idle — the owned executor pool is torn
// down. Returns ctx's error if the deadline passes with jobs still in
// flight; the drain stays in effect and a later call resumes the wait.
func (s *Service) Drain(ctx context.Context) error {
	if err := s.adm.Drain(ctx); err != nil {
		return err
	}
	if s.ownExec {
		s.drain.Do(s.execu.Close)
	}
	// Materialized results and their manifests reach the store before the
	// process exits; a restart then serves warm queries from disk. An
	// owned cache is closed outright, a caller-provided one only flushed.
	if s.rcache != nil {
		if s.ownCache {
			s.rcache.Close()
		} else {
			s.rcache.Flush()
		}
	}
	if s.store != nil {
		if err := s.store.Flush(); err != nil {
			return err
		}
	}
	return nil
}

func (s *Service) countEval(n int64) {
	s.mu.Lock()
	s.evals += n
	s.mu.Unlock()
}

// ServiceStats is a point-in-time snapshot of the resident state.
type ServiceStats struct {
	Admission exec.AdmissionStats `json:"admission"`
	// PlanCacheHits/Misses/Entries describe the shared decision cache.
	PlanCacheHits   int64 `json:"plan_cache_hits"`
	PlanCacheMisses int64 `json:"plan_cache_misses"`
	PlanCacheSize   int   `json:"plan_cache_entries"`
	// Datasets lists the registered dataset names.
	Datasets []string `json:"datasets"`
	// Evaluations counts completed query evaluations (batch members
	// counted individually).
	Evaluations int64 `json:"evaluations"`
	// ResultCache snapshots the materialized result cache (nil when
	// result reuse is off).
	ResultCache *blockstore.CacheStats `json:"result_cache,omitempty"`
	// Store snapshots the persistent block store's health and traffic
	// counters (nil when the service has no store).
	Store *blockstore.Stats `json:"store,omitempty"`
}

// Stats snapshots the service.
func (s *Service) Stats() ServiceStats {
	st := ServiceStats{
		Admission:       s.adm.Stats(),
		PlanCacheHits:   s.dcache.Hits(),
		PlanCacheMisses: s.dcache.Misses(),
		PlanCacheSize:   s.dcache.Len(),
		Datasets:        s.Datasets(),
	}
	if s.rcache != nil {
		cs := s.rcache.Stats()
		st.ResultCache = &cs
	}
	if s.store != nil {
		ss := s.store.Stats()
		st.Store = &ss
	}
	s.mu.Lock()
	st.Evaluations = s.evals
	s.mu.Unlock()
	return st
}
