package core

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/casm-project/casm/internal/blockstore"
	"github.com/casm-project/casm/internal/mr"
	"github.com/casm-project/casm/internal/workload"
)

// TestEngineSurvivesMapTaskCrashes: transient task-start failures retry
// and the answer stays exact.
func TestEngineSurvivesMapTaskCrashes(t *testing.T) {
	su := workload.NewSuite()
	records := su.Generate(1500, workload.Uniform, 51)
	ds := MemoryDataset(su.Schema, records, 6)
	w := su.Q5()
	want := oracle(t, w, records)

	var crashes atomic.Int32
	cfg := Config{
		NumReducers: 3,
		TempDir:     t.TempDir(),
		FailureInjector: func(task string, attempt int) error {
			// Every task fails its first attempt.
			if attempt == 1 {
				crashes.Add(1)
				return fmt.Errorf("injected crash of %s", task)
			}
			return nil
		},
	}
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(w, ds)
	if err != nil {
		t.Fatal(err)
	}
	if crashes.Load() == 0 {
		t.Fatal("injector never fired")
	}
	compare(t, "after crashes", want, flatten(res))
	for _, m := range res.Stats.MapTasks {
		if m.Attempts != 2 {
			t.Errorf("task %s took %d attempts, want 2", m.Task, m.Attempts)
		}
	}
}

// TestEnginePermanentFailureSurfaces: a task failing every attempt aborts
// the job with a useful error instead of silently dropping data.
func TestEnginePermanentFailureSurfaces(t *testing.T) {
	su := workload.NewSuite()
	ds := MemoryDataset(su.Schema, su.Generate(500, workload.Uniform, 1), 4)
	cfg := Config{
		NumReducers: 2,
		TempDir:     t.TempDir(),
		FailureInjector: func(task string, attempt int) error {
			if task == "mem-2" {
				return fmt.Errorf("disk on fire")
			}
			return nil
		},
	}
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = eng.Run(su.Q1(), ds)
	if err == nil || !strings.Contains(err.Error(), "disk on fire") {
		t.Fatalf("err = %v", err)
	}
}

// TestEngineReadsThroughReplicaLoss: losing storage nodes (but not every
// replica) must not change the result.
func TestEngineReadsThroughReplicaLoss(t *testing.T) {
	su := workload.NewSuite()
	records := su.Generate(2000, workload.Uniform, 13)
	st, err := blockstore.Open(blockstore.Config{Dir: t.TempDir(), BlockSize: 4096, Replication: 3, NumNodes: 6, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := workload.WriteStore(st, "data", su.Schema, records); err != nil {
		t.Fatal(err)
	}
	mk := func() *Dataset {
		return &Dataset{Schema: su.Schema, Input: mr.NewStoreInput(st, "data"), NumRecords: int64(len(records))}
	}
	w := su.Q2()
	want := oracle(t, w, records)

	// Healthy run.
	res1 := runEngine(t, Config{NumReducers: 3}, w, mk())
	compare(t, "healthy", want, flatten(res1))

	// Two of six nodes down: every block still has a live replica
	// (replication 3), so the run succeeds with the same answer.
	st.FailNode(0)
	st.FailNode(1)
	res2 := runEngine(t, Config{NumReducers: 3}, w, mk())
	compare(t, "degraded", want, flatten(res2))

	// Losing enough nodes to kill some block's last replica fails the
	// job loudly.
	st.FailNode(2)
	st.FailNode(3)
	st.FailNode(4)
	st.FailNode(5)
	eng, err := NewEngine(Config{NumReducers: 3, TempDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(w, mk()); err == nil {
		t.Fatal("run succeeded with all storage nodes down")
	}
}
