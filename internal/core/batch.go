package core

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"github.com/casm-project/casm/internal/costmodel"
	"github.com/casm-project/casm/internal/cube"
	"github.com/casm-project/casm/internal/distkey"
	"github.com/casm-project/casm/internal/localeval"
	"github.com/casm-project/casm/internal/mr"
	"github.com/casm-project/casm/internal/recio"
	"github.com/casm-project/casm/internal/transport"
	"github.com/casm-project/casm/internal/workflow"
)

// Multi-query shared-scan batching: compatible workflows over one dataset
// run as a single mr job that scans the input once and evaluates every
// query against it, instead of one full scan per query (the batching trick
// of "Computing Marginals Using MapReduce", applied to composite measure
// workflows). Each query keeps its own plan — its own distribution key and
// clustering factor — because sharing happens below the plan, at two
// levels:
//
//   - The scan is always shared: the mapper decodes each record once for
//     the whole batch.
//   - The shuffle is shared per geometry group. Queries whose plans agree
//     on block geometry (equal distribution key and clustering factor)
//     redistribute records identically, so one emitted pair — tagged with
//     a uvarint group ordinal plus the block key — serves all of them,
//     and the reducer builds the record group once and evaluates every
//     member query against it. Queries with distinct geometries emit
//     separately, sharing only the scan.
//
// Each reduce group evaluates exactly as it would in that query's own
// job. Demultiplexing on the uvarint-query-tagged output keys then yields
// per-query results byte-identical to sequential execution.
//
// Queries that cannot share — stage-stopped runs, or runs the engine would
// execute with map-side early aggregation (the combiner keys on bare block
// keys and its payloads are per-workflow) — fall back to their own
// sequential jobs within the same batch call.

// BatchJobInfo describes one job a batch ran.
type BatchJobInfo struct {
	// Queries are indices into the batch's workflow slice, in input order.
	Queries []int
	// Shared reports whether the job's single input scan served more than
	// one query.
	Shared bool
	// Groups partitions a shared job's Queries by block geometry: queries
	// in one group also shared the shuffle and the reducer-side group
	// builds, not just the scan. Nil for unshared jobs.
	Groups [][]int
	// Stats are the job's substrate counters (shared by every query in
	// the job; see SharedScanQueries per map task).
	Stats mr.JobStats
	// Estimate is the job's simulated response time, sampling passes
	// included.
	Estimate costmodel.Estimate
}

// BatchResult is a completed batch evaluation.
type BatchResult struct {
	// Results holds one Result per input workflow, in input order.
	// Queries that ran in a shared job carry the shared job's Stats and
	// Estimate (the scan cost is joint — it cannot be attributed to one
	// of them).
	Results []*Result
	// Jobs lists the jobs the batch ran: at most one shared job plus one
	// sequential job per unshareable query.
	Jobs []BatchJobInfo
}

// SharedScanQueries returns how many queries the batch served from shared
// scans (0 when every query ran alone).
func (b *BatchResult) SharedScanQueries() int {
	n := 0
	for _, j := range b.Jobs {
		if j.Shared {
			n += len(j.Queries)
		}
	}
	return n
}

// EvaluateBatch evaluates the workflows over the dataset under
// context.Background(); see EvaluateBatchContext.
func (e *Engine) EvaluateBatch(ws []*workflow.Workflow, ds *Dataset) (*BatchResult, error) {
	return e.EvaluateBatchContext(context.Background(), ws, ds)
}

// EvaluateBatchContext plans every workflow (the decision cache, when
// configured, deduplicates planning across structurally identical queries),
// groups the shareable ones into one shared-scan job, runs the rest
// sequentially, and returns per-query results byte-identical to what
// len(ws) separate EvaluateContext calls would produce. Cancelling ctx
// tears down whichever job is in flight.
func (e *Engine) EvaluateBatchContext(ctx context.Context, ws []*workflow.Workflow, ds *Dataset) (*BatchResult, error) {
	if len(ws) == 0 {
		return nil, fmt.Errorf("core: empty batch")
	}
	// Count the dataset once for the whole batch instead of once per
	// query (a local copy so the caller's Dataset is left alone).
	d := *ds
	if d.NumRecords == 0 {
		counted, err := CountRecords(&d)
		if err != nil {
			return nil, err
		}
		if counted == 0 {
			counted = 1
		}
		d.NumRecords = counted
	}

	out := &BatchResult{Results: make([]*Result, len(ws))}
	var shared, alone []int
	evs := make([]*localeval.Evaluator, len(ws))
	for i, w := range ws {
		ev, err := localeval.New(w)
		if err != nil {
			return nil, fmt.Errorf("core: batch query %d: %w", i, err)
		}
		evs[i] = ev
		early := false
		switch e.cfg.EarlyAggregation {
		case EarlyAggOn:
			early = true
		case EarlyAggAuto:
			early = ev.SupportsEarlyAggregation() == nil
		}
		if e.cfg.Stage == StageFull && !early {
			shared = append(shared, i)
		} else {
			alone = append(alone, i)
		}
	}
	// A single shareable query gains nothing from the tagged-key plumbing;
	// run it as its own job too.
	if len(shared) == 1 {
		alone = append(alone, shared[0])
		sort.Ints(alone)
		shared = nil
	}

	if len(shared) > 1 {
		if err := e.runShared(ctx, ws, evs, &d, shared, out); err != nil {
			return nil, err
		}
	}
	for _, i := range alone {
		outcome, err := e.PlanContext(ctx, ws[i], &d)
		if err != nil {
			return nil, fmt.Errorf("core: batch query %d: %w", i, err)
		}
		res, err := e.RunWithPlanContext(ctx, ws[i], &d, outcome)
		if err != nil {
			return nil, fmt.Errorf("core: batch query %d: %w", i, err)
		}
		for t := range res.Stats.MapTasks {
			res.Stats.MapTasks[t].SharedScanQueries = 1
		}
		out.Results[i] = res
		out.Jobs = append(out.Jobs, BatchJobInfo{
			Queries: []int{i}, Stats: res.Stats, Estimate: res.Estimate,
		})
	}
	return out, nil
}

// batchQuery is one query's state inside a shared job.
type batchQuery struct {
	idx     int // index into the batch's workflow slice
	w       *workflow.Workflow
	outcome PlanOutcome
	ev      *localeval.Evaluator
	tag     []byte // uvarint job-local ordinal, the output-key prefix
}

// emitGroup is a set of shared-job queries whose plans agree on block
// geometry: one emitted pair per (record, block) serves every member.
type emitGroup struct {
	tag     []byte // uvarint group ordinal, the shuffle-key prefix
	key     distkey.Key
	cf      int64
	bm      *distkey.BlockMapper
	members []int // indices into the job's query slice
}

// runShared plans and executes the shared-scan job for the given queries,
// filling their slots in out.
func (e *Engine) runShared(ctx context.Context, ws []*workflow.Workflow, evs []*localeval.Evaluator, ds *Dataset, idxs []int, out *BatchResult) error {
	s := ds.Schema
	arity := s.NumAttrs()
	combined := e.cfg.SortMode == CombinedKeySort

	queries := make([]*batchQuery, len(idxs))
	planCacheHits := int64(0)
	var sampleSeconds float64
	for qi, i := range idxs {
		outcome, err := e.PlanContext(ctx, ws[i], ds)
		if err != nil {
			return fmt.Errorf("core: batch query %d: %w", i, err)
		}
		if outcome.DecisionCached {
			planCacheHits++
		}
		sampleSeconds += outcome.SampleSeconds
		queries[qi] = &batchQuery{
			idx: i, w: ws[i], outcome: outcome, ev: evs[i],
			tag: binary.AppendUvarint(nil, uint64(qi)),
		}
	}
	// Geometry grouping: queries whose plans agree on distribution key and
	// clustering factor shuffle through one emit group, so the pair fan-out
	// (and the reducers' group builds) scale with distinct geometries, not
	// with queries.
	var groups []*emitGroup
	for qi, q := range queries {
		shared := false
		for _, g := range groups {
			if g.cf == q.outcome.Plan.ClusteringFactor && g.key.Equal(q.outcome.Plan.Key) {
				g.members = append(g.members, qi)
				shared = true
				break
			}
		}
		if shared {
			continue
		}
		bm, err := distkey.NewBlockMapper(s, q.outcome.Plan.Key, q.outcome.Plan.ClusteringFactor)
		if err != nil {
			return fmt.Errorf("core: batch query %d: plan not executable: %w", q.idx, err)
		}
		groups = append(groups, &emitGroup{
			tag: binary.AppendUvarint(nil, uint64(len(groups))),
			key: q.outcome.Plan.Key, cf: q.outcome.Plan.ClusteringFactor,
			bm: bm, members: []int{qi},
		})
	}

	newMapLocal := func(st *mr.TaskStats) any {
		ml := &batchMapLocal{
			dks:  make([]*distkey.Session, len(groups)),
			keys: make([]map[string][]byte, len(groups)),
			rec:  make(cube.Record, arity),
		}
		for gi, g := range groups {
			ml.dks[gi] = g.bm.NewSession()
			ml.keys[gi] = make(map[string][]byte)
		}
		return ml
	}
	newReduceLocal := func(st *mr.TaskStats) any {
		rl := &batchReduceLocal{
			gs:  make([]*batchGroupReduce, len(groups)),
			rec: make(cube.Record, arity),
		}
		for gi, g := range groups {
			gr := &batchGroupReduce{dk: g.bm.NewSession()}
			for _, qi := range g.members {
				q := queries[qi]
				gr.members = append(gr.members, &batchMemberReduce{
					ev: q.ev.NewSession(), tag: q.tag,
					names: make(map[string][]byte, len(q.w.Measures())),
				})
			}
			rl.gs[gi] = gr
		}
		return rl
	}

	mapFn := func(mctx *mr.MapCtx, raw []byte) error {
		ml := mctx.Local.(*batchMapLocal)
		if err := recio.DecodeRecordInto(raw, ml.rec); err != nil {
			return err
		}
		// One decode, one emit per geometry group: this loop is the shared
		// scan and the shared shuffle. Each emitted value aliases the same
		// raw record storage, so fan-out costs tagged keys, not copies.
		for gi, g := range groups {
			sess := ml.dks[gi]
			for _, block := range sess.Blocks(ml.rec) {
				var key []byte
				if combined {
					key = ml.taggedCombined(g.tag, block, raw)
				} else {
					key = ml.taggedBlock(gi, g.tag, block)
				}
				if err := mctx.Emit(key, raw); err != nil {
					return err
				}
			}
		}
		var hits int64
		for _, sess := range ml.dks {
			hits += sess.Hits
		}
		mctx.Stats.KeyCacheHits = hits
		return nil
	}

	reduceFn := func(rctx *mr.ReduceCtx, groupKey []byte, values *mr.GroupIter) error {
		rl := rctx.Local.(*batchReduceLocal)
		gi64, n := binary.Uvarint(groupKey)
		if n <= 0 || gi64 >= uint64(len(groups)) {
			return fmt.Errorf("core: shared group key with bad group tag")
		}
		gr := rl.gs[gi64]
		blockKey := groupKey[n:]
		// Build the record group once and evaluate every member against
		// it. A lone member loads straight into its block arena; multiple
		// members decode each payload once and copy the decoded row.
		if len(gr.members) == 1 {
			if err := loadGroup(values, gr.members[0].ev); err != nil {
				return err
			}
		} else {
			for {
				p, ok, err := values.Next()
				if err != nil {
					return err
				}
				if !ok {
					break
				}
				if err := recio.DecodeRecordInto(p.Value, rl.rec); err != nil {
					return err
				}
				for _, m := range gr.members {
					m.ev.AppendRecord(rl.rec)
				}
			}
		}
		for _, m := range gr.members {
			results, est, err := m.ev.EvaluateBlock(localeval.Options{
				SkipSort: combined,
				Scan:     e.cfg.LocalScan,
			})
			if err != nil {
				return err
			}
			rctx.Stats.EvalRecords += est.ScannedRecords
			rctx.Stats.GroupSortItems += est.SortedItems
			rctx.Stats.WindowLookups += est.WindowLookups
			// Same ownership filter as the single-query job, against the
			// group's shared block geometry (the tag is stripped above).
			for _, r := range results {
				if !bytes.Equal(gr.dk.Owner(r.Region), blockKey) {
					continue
				}
				rl.enc = appendMeasureRecord(rl.enc[:0], r.Region.Coord, r.Value)
				kb, ok := m.names[r.Measure]
				if !ok {
					kb = append(append(make([]byte, 0, len(m.tag)+len(r.Measure)), m.tag...), r.Measure...)
					m.names[r.Measure] = kb
				}
				rctx.EmitStable(kb, append([]byte(nil), rl.enc...))
			}
		}
		var hits, arena, pool int64
		for _, g := range rl.gs {
			hits += g.dk.Hits
			for _, m := range g.members {
				arena += m.ev.ArenaBytes
				pool += m.ev.PoolHits
			}
		}
		rctx.Stats.KeyCacheHits = hits
		rctx.Stats.EvalArenaBytes = arena
		rctx.Stats.AggPoolHits = pool
		return nil
	}

	groupMode := e.cfg.GroupMode
	if combined {
		if groupMode == mr.GroupHash {
			return fmt.Errorf("core: GroupHash is incompatible with CombinedKeySort (the combined key's secondary order needs the sorted path)")
		}
		groupMode = mr.GroupSort
	}
	job := mr.Job{
		Name:   "casm-batch",
		Input:  ds.Input,
		Map:    mapFn,
		Reduce: reduceFn,
		Config: mr.Config{
			NumReducers:       e.cfg.NumReducers,
			Executor:          e.cfg.Executor,
			MapParallelism:    e.cfg.MapParallelism,
			ReduceParallelism: e.cfg.ReduceParallelism,
			Transport:         e.cfg.Transport,
			GroupMode:         groupMode,
			MorselBytes:       e.cfg.MorselBytes,
			LocalAggBudget:    e.cfg.LocalAggBudget,
			SortMemoryItems:   e.cfg.SortMemoryItems,
			TempDir:           e.cfg.TempDir,
			NewMapLocal:       newMapLocal,
			NewReduceLocal:    newReduceLocal,
			FailureInjector:   e.cfg.FailureInjector,
		},
	}
	if combined {
		// Group identity is the tag + block-key prefix of the combined
		// shuffle key, still a zero-alloc sub-slice.
		job.Config.GroupBy = func(key []byte) []byte {
			_, n := binary.Uvarint(key)
			if n <= 0 {
				return key
			}
			return key[:n+blockPrefixLen(key[n:], arity)]
		}
	}
	pipe, err := mr.RunPipe(ctx, job)
	if err != nil {
		return err
	}
	defer pipe.Close()

	// Demultiplex the tagged output stream into per-query results; the
	// interned-measure probe is keyed by the full tagged key bytes.
	for _, q := range queries {
		out.Results[q.idx] = &Result{
			Measures:      make(map[string][]MeasureRecord, len(q.w.Measures())),
			Plan:          q.outcome.Plan,
			SampledPlan:   q.outcome.Sampled,
			SampleSeconds: q.outcome.SampleSeconds,
			PlanCached:    q.outcome.DecisionCached,
		}
	}
	type taggedMeasure struct {
		res *Result
		m   *workflow.Measure
	}
	byKey := make(map[string]taggedMeasure)
	const coordChunk = 4096
	var coordArena []int64
	for {
		_, pairs, ok, err := pipe.NextBatch()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		for _, p := range pairs {
			tm, ok := byKey[string(p.Key)]
			if !ok {
				qi64, n := binary.Uvarint(p.Key)
				if n <= 0 || qi64 >= uint64(len(queries)) {
					return fmt.Errorf("core: output with bad query tag")
				}
				q := queries[qi64]
				name := string(p.Key[n:])
				m, okm := q.w.Measure(name)
				if !okm {
					return fmt.Errorf("core: output for unknown measure %q", name)
				}
				tm = taggedMeasure{res: out.Results[q.idx], m: m}
				byKey[string(p.Key)] = tm
			}
			if len(p.Value) < 8 {
				return fmt.Errorf("core: truncated measure record")
			}
			if cap(coordArena)-len(coordArena) < arity {
				size := coordChunk
				if arity > size {
					size = arity
				}
				coordArena = make([]int64, 0, size)
			}
			start := len(coordArena)
			coordArena = coordArena[:start+arity]
			coords := coordArena[start : start+arity : start+arity]
			if err := cube.DecodeCoordsInto(p.Value[:len(p.Value)-8], coords); err != nil {
				return err
			}
			v := math.Float64frombits(binary.LittleEndian.Uint64(p.Value[len(p.Value)-8:]))
			tm.res.Measures[tm.m.Name] = append(tm.res.Measures[tm.m.Name], MeasureRecord{
				Region: cube.Region{Grain: tm.m.Grain, Coord: coords},
				Value:  v,
			})
		}
		transport.RecycleBatch(pairs)
	}
	if err := pipe.Close(); err != nil {
		return err
	}

	js := pipe.Stats()
	// Sharing accounting: every map task's one scan served all Q queries,
	// so Q-1 rescans of its input bytes never happened. The decision-cache
	// tally rides on the first task, like the single-query path.
	for t := range js.MapTasks {
		js.MapTasks[t].SharedScanQueries = int64(len(queries))
		js.MapTasks[t].SharedScanBytesSaved = int64(len(queries)-1) * js.MapTasks[t].BytesRead
	}
	if planCacheHits > 0 && len(js.MapTasks) > 0 {
		js.MapTasks[0].PlanCacheHits = planCacheHits
	}
	est := EstimateFromStats(e.cfg.Cluster, js)
	est.ReduceSeconds += sampleSeconds

	qidx := make([]int, len(queries))
	var ea, eb []byte
	for qi, q := range queries {
		qidx[qi] = q.idx
		res := out.Results[q.idx]
		res.Stats = js
		res.Estimate = est
		// Canonical per-measure order, independent of reducer-completion
		// interleaving — identical to the sequential path's sort.
		for name := range res.Measures {
			ms := res.Measures[name]
			sort.Slice(ms, func(i, j int) bool {
				ea = cube.AppendCoords(ea[:0], ms[i].Region.Coord)
				eb = cube.AppendCoords(eb[:0], ms[j].Region.Coord)
				return bytes.Compare(ea, eb) < 0
			})
		}
	}
	ginfo := make([][]int, len(groups))
	for gi, g := range groups {
		for _, qi := range g.members {
			ginfo[gi] = append(ginfo[gi], queries[qi].idx)
		}
	}
	out.Jobs = append(out.Jobs, BatchJobInfo{
		Queries: qidx, Shared: true, Groups: ginfo, Stats: js, Estimate: est,
	})
	return nil
}

// batchMapLocal is one shared-job map task's reusable state: a distkey
// session per geometry group, one shared record decode buffer, an intern
// table per group for tagged block keys, and the combined-key arena.
type batchMapLocal struct {
	dks  []*distkey.Session
	rec  cube.Record
	keys []map[string][]byte // per group: bare block key bytes → stable tagged key
	// chunk/chunkNext: combined-key arena, as in mapLocal.
	chunk     []byte
	chunkNext int
}

// taggedBlock interns tag+block once per distinct block per task; the
// returned slice is stable for the job's duration, satisfying Emit's
// retention rule at (amortized) zero allocations per pair.
func (ml *batchMapLocal) taggedBlock(gi int, tag, block []byte) []byte {
	if k, ok := ml.keys[gi][string(block)]; ok {
		return k
	}
	k := append(append(make([]byte, 0, len(tag)+len(block)), tag...), block...)
	ml.keys[gi][string(block)] = k
	return k
}

// taggedCombined appends tag+block+raw into the task arena; combined keys
// are unique per pair, so the arena amortizes their storage exactly like
// mapLocal.combinedKey.
func (ml *batchMapLocal) taggedCombined(tag, block, raw []byte) []byte {
	need := len(tag) + len(block) + len(raw)
	if cap(ml.chunk)-len(ml.chunk) < need {
		size := ml.chunkNext
		if size < combinedKeyChunkMin {
			size = combinedKeyChunkMin
		}
		if next := size * 2; next <= combinedKeyChunkMax {
			ml.chunkNext = next
		} else {
			ml.chunkNext = combinedKeyChunkMax
		}
		if need > size {
			size = need
		}
		ml.chunk = make([]byte, 0, size)
	}
	start := len(ml.chunk)
	ml.chunk = append(append(append(ml.chunk, tag...), block...), raw...)
	return ml.chunk[start:len(ml.chunk):len(ml.chunk)]
}

// batchMemberReduce is one member query's slice of a shared reduce
// task's state.
type batchMemberReduce struct {
	ev    *localeval.Session
	tag   []byte            // the query's uvarint output-key prefix
	names map[string][]byte // measure name → stable tagged output key
}

// batchGroupReduce is one geometry group's slice of a shared reduce
// task's state: one distkey session (the geometry is shared, so one
// ownership probe cache serves every member) plus per-member evaluation.
type batchGroupReduce struct {
	dk      *distkey.Session
	members []*batchMemberReduce
}

// batchReduceLocal is one shared-job reduce task's reusable state.
type batchReduceLocal struct {
	gs  []*batchGroupReduce
	rec cube.Record
	enc []byte
}
