package core

import (
	"math"
	"math/rand"
	"testing"

	"github.com/casm-project/casm/internal/blockstore"
	"github.com/casm-project/casm/internal/cube"
	"github.com/casm-project/casm/internal/distkey"
	"github.com/casm-project/casm/internal/localeval"
	"github.com/casm-project/casm/internal/measure"
	"github.com/casm-project/casm/internal/optimizer"
	"github.com/casm-project/casm/internal/transport"
	"github.com/casm-project/casm/internal/workflow"
	"github.com/casm-project/casm/internal/workload"
)

// oracle evaluates the workflow over the whole dataset in one block —
// the reference the parallel engine must match exactly (the paper's rules
// 1 and 2: the union of local results is the final answer, without
// duplicates).
func oracle(t testing.TB, w *workflow.Workflow, records []cube.Record) map[string]map[string]float64 {
	t.Helper()
	ev, err := localeval.New(w)
	if err != nil {
		t.Fatal(err)
	}
	cp := make([]cube.Record, len(records))
	for i, r := range records {
		cp[i] = r.Clone()
	}
	results, _, err := ev.Evaluate(cp, localeval.Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]map[string]float64{}
	for _, r := range results {
		mm := out[r.Measure]
		if mm == nil {
			mm = map[string]float64{}
			out[r.Measure] = mm
		}
		mm[r.Region.Key()] = r.Value
	}
	return out
}

func flatten(res *Result) map[string]map[string]float64 {
	out := map[string]map[string]float64{}
	for name, ms := range res.Measures {
		mm := map[string]float64{}
		out[name] = mm
		for _, m := range ms {
			mm[m.Region.Key()] = m.Value
		}
	}
	return out
}

// compare asserts the engine result equals the oracle exactly (same
// measure records, no duplicates, no extras, values within float noise).
func compare(t *testing.T, label string, want, got map[string]map[string]float64) {
	t.Helper()
	for name, wm := range want {
		gm := got[name]
		if len(gm) != len(wm) {
			t.Errorf("%s: measure %s: got %d records, want %d", label, name, len(gm), len(wm))
			continue
		}
		for k, wv := range wm {
			gv, ok := gm[k]
			if !ok {
				t.Errorf("%s: measure %s: missing region", label, name)
				break
			}
			if math.Abs(gv-wv) > 1e-9*math.Max(1, math.Abs(wv)) {
				t.Errorf("%s: measure %s: value %v, want %v", label, name, gv, wv)
				break
			}
		}
	}
	for name := range got {
		if _, ok := want[name]; !ok {
			t.Errorf("%s: unexpected measure %s in output", label, name)
		}
	}
}

func runEngine(t *testing.T, cfg Config, w *workflow.Workflow, ds *Dataset) *Result {
	t.Helper()
	cfg.TempDir = t.TempDir()
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(w, ds)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestEngineMatchesOracleAllQueries is the central correctness test: for
// every paper query, the parallel result equals the single-block result.
func TestEngineMatchesOracleAllQueries(t *testing.T) {
	su := workload.NewSuite()
	records := su.Generate(4000, workload.Uniform, 42)
	ds := MemoryDataset(su.Schema, records, 8)
	for n := 1; n <= 6; n++ {
		w, err := su.Query(n)
		if err != nil {
			t.Fatal(err)
		}
		want := oracle(t, w, records)
		res := runEngine(t, Config{NumReducers: 7}, w, ds)
		compare(t, su.Schema.FormatGrain(su.Schema.GrainAll())+" Q"+string(rune('0'+n)), want, flatten(res))
		if res.TotalRecords() == 0 {
			t.Errorf("Q%d produced no results", n)
		}
		if res.Estimate.Total() <= 0 {
			t.Errorf("Q%d estimate not positive", n)
		}
	}
}

func TestEngineMatchesOracleSkewedData(t *testing.T) {
	su := workload.NewSuite()
	records := su.Generate(3000, workload.SkewedTime, 7)
	ds := MemoryDataset(su.Schema, records, 6)
	for _, n := range []int{2, 5, 6} {
		w, _ := su.Query(n)
		want := oracle(t, w, records)
		res := runEngine(t, Config{NumReducers: 5}, w, ds)
		compare(t, "skewed", want, flatten(res))
	}
}

func TestEngineClusteringFactorSweep(t *testing.T) {
	// Correctness must hold for every clustering factor, including the
	// degenerate cf=1 (maximum duplication) and very large cf.
	su := workload.NewSuite()
	records := su.Generate(2500, workload.Uniform, 3)
	ds := MemoryDataset(su.Schema, records, 5)
	w := su.Q5()
	want := oracle(t, w, records)
	for _, cf := range []int64{1, 2, 5, 10, 100, 480} {
		res := runEngine(t, Config{NumReducers: 4, ForceCF: cf}, w, ds)
		compare(t, "cf sweep", want, flatten(res))
		if res.Plan.ClusteringFactor != cf {
			t.Errorf("cf = %d, want %d", res.Plan.ClusteringFactor, cf)
		}
	}
}

func TestEngineSortModes(t *testing.T) {
	su := workload.NewSuite()
	records := su.Generate(2000, workload.Uniform, 9)
	ds := MemoryDataset(su.Schema, records, 4)
	w := su.Q6()
	want := oracle(t, w, records)

	two := runEngine(t, Config{NumReducers: 4, SortMode: TwoPassSort}, w, ds)
	comb := runEngine(t, Config{NumReducers: 4, SortMode: CombinedKeySort}, w, ds)
	compare(t, "two-pass", want, flatten(two))
	compare(t, "combined-key", want, flatten(comb))

	var twoSort, combSort int64
	for _, r := range two.Stats.ReduceTasks {
		twoSort += r.GroupSortItems
	}
	for _, r := range comb.Stats.ReduceTasks {
		combSort += r.GroupSortItems
	}
	if twoSort == 0 {
		t.Error("two-pass mode did not count in-group sorting")
	}
	if combSort != 0 {
		t.Errorf("combined-key mode still sorted %d items in groups", combSort)
	}
}

func TestEngineEarlyAggregation(t *testing.T) {
	su := workload.NewSuite()
	records := su.Generate(3000, workload.Uniform, 11)
	ds := MemoryDataset(su.Schema, records, 6)
	for i := 0; i <= 2; i++ {
		w, err := su.DS(i)
		if err != nil {
			t.Fatal(err)
		}
		want := oracle(t, w, records)
		off := runEngine(t, Config{NumReducers: 4, EarlyAggregation: EarlyAggOff}, w, ds)
		on := runEngine(t, Config{NumReducers: 4, EarlyAggregation: EarlyAggOn}, w, ds)
		compare(t, "earlyagg-off", want, flatten(off))
		compare(t, "earlyagg-on", want, flatten(on))
		if !on.EarlyAggregated || off.EarlyAggregated {
			t.Errorf("DS%d: early aggregation flags wrong: on=%v off=%v", i, on.EarlyAggregated, off.EarlyAggregated)
		}
		// DS0's coarse grouping must shrink the shuffle dramatically.
		if i == 0 && on.Stats.Shuffled >= off.Stats.Shuffled/4 {
			t.Errorf("DS0: combiner shuffled %d bytes vs %d without; expected >4x reduction",
				on.Stats.Shuffled, off.Stats.Shuffled)
		}
		// DS2's fine grouping must shuffle at least as much as raw records.
		if i == 2 && on.Stats.Shuffled < off.Stats.Shuffled {
			t.Logf("DS2: combiner shuffled %d vs %d raw (fine grain: no reduction expected)",
				on.Stats.Shuffled, off.Stats.Shuffled)
		}
	}
}

func TestEarlyAggregationOnRejectsHolistic(t *testing.T) {
	su := workload.NewSuite()
	records := su.Generate(500, workload.Uniform, 1)
	ds := MemoryDataset(su.Schema, records, 2)
	w := su.Q6() // q6m1 is a median: holistic
	cfg := Config{NumReducers: 2, EarlyAggregation: EarlyAggOn, TempDir: t.TempDir()}
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(w, ds); err == nil {
		t.Fatal("holistic basic accepted with EarlyAggOn")
	}
	// Auto silently falls back to raw records.
	res := runEngine(t, Config{NumReducers: 2, EarlyAggregation: EarlyAggAuto}, w, ds)
	if res.EarlyAggregated {
		t.Error("auto mode aggregated a holistic workflow")
	}
	compare(t, "auto-fallback", oracle(t, w, records), flatten(res))
}

func TestEngineTCPTransport(t *testing.T) {
	su := workload.NewSuite()
	records := su.Generate(1500, workload.Uniform, 5)
	ds := MemoryDataset(su.Schema, records, 3)
	w := su.Q2()
	want := oracle(t, w, records)
	res := runEngine(t, Config{NumReducers: 3, Transport: transport.TCPFactory(128)}, w, ds)
	compare(t, "tcp", want, flatten(res))
}

func TestEngineStages(t *testing.T) {
	su := workload.NewSuite()
	records := su.Generate(1000, workload.Uniform, 13)
	ds := MemoryDataset(su.Schema, records, 2)
	w := su.Q5()

	mapOnly := runEngine(t, Config{NumReducers: 2, Stage: StageMapOnly}, w, ds)
	shuffle := runEngine(t, Config{NumReducers: 2, Stage: StageShuffle}, w, ds)
	sorted := runEngine(t, Config{NumReducers: 2, Stage: StageSort}, w, ds)
	full := runEngine(t, Config{NumReducers: 2, Stage: StageFull}, w, ds)

	if mapOnly.TotalRecords() != 0 || shuffle.TotalRecords() != 0 || sorted.TotalRecords() != 0 {
		t.Error("stage-stopped runs produced output")
	}
	if full.TotalRecords() == 0 {
		t.Error("full run produced no output")
	}
	// Simulated cost must be monotone across stages (Figure 4(d) shape).
	tm, ts, tso, tf := mapOnly.Estimate.Total(), shuffle.Estimate.Total(), sorted.Estimate.Total(), full.Estimate.Total()
	if !(tm < ts && ts < tso && tso <= tf) {
		t.Errorf("stage costs not monotone: map=%.2f mr=%.2f sort=%.2f full=%.2f", tm, ts, tso, tf)
	}
}

func TestEngineSamplingPlanCorrect(t *testing.T) {
	su := workload.NewSuite()
	records := su.Generate(3000, workload.SkewedTime, 21)
	ds := MemoryDataset(su.Schema, records, 6)
	w := su.Q5()
	want := oracle(t, w, records)
	res := runEngine(t, Config{NumReducers: 4, SkewMode: SkewSampling, SampleSize: 500}, w, ds)
	compare(t, "sampling", want, flatten(res))
	if !res.SampledPlan {
		t.Error("plan not marked as sampled")
	}
	if res.SampleSeconds <= 0 {
		t.Error("sampling cost not accounted")
	}
}

func TestEngineMinBlocksHeuristic(t *testing.T) {
	su := workload.NewSuite()
	records := su.Generate(2000, workload.Uniform, 17)
	ds := MemoryDataset(su.Schema, records, 4)
	w := su.Q5()
	want := oracle(t, w, records)
	res := runEngine(t, Config{NumReducers: 4, MinBlocksPerReducer: 2}, w, ds)
	compare(t, "minblocks", want, flatten(res))
	if res.Plan.Key.IsOverlapping() && res.Plan.Blocks < 2*4 {
		t.Errorf("heuristic violated: %d blocks", res.Plan.Blocks)
	}
}

func TestEnginePlanCache(t *testing.T) {
	su := workload.NewSuite()
	records := su.Generate(1000, workload.Uniform, 19)
	ds := MemoryDataset(su.Schema, records, 2)
	w := su.Q5()
	cache := &optimizer.PlanCache{}
	cfg := Config{NumReducers: 2, Cache: cache, TempDir: t.TempDir()}
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	first, err := eng.Plan(w, ds)
	if err != nil {
		t.Fatal(err)
	}
	if first.FromCache {
		t.Error("first plan claimed cache hit")
	}
	if cache.Len() == 0 {
		t.Fatal("plan not stored")
	}
	second, err := eng.Plan(w, ds)
	if err != nil {
		t.Fatal(err)
	}
	if !second.FromCache {
		t.Error("second plan missed the cache")
	}
	if !second.Plan.Key.Equal(first.Plan.Key) {
		t.Error("cached key differs")
	}
	// The cached plan still runs correctly.
	res, err := eng.RunWithPlan(w, ds, second)
	if err != nil {
		t.Fatal(err)
	}
	compare(t, "cached", oracle(t, w, records), flatten(res))
}

func TestEngineForceKey(t *testing.T) {
	// Forcing the non-overlapping fallback key (annotated attr at ALL)
	// must still yield the exact answer — overlap is an optimization, not
	// a correctness requirement.
	su := workload.NewSuite()
	records := su.Generate(1500, workload.Uniform, 23)
	ds := MemoryDataset(su.Schema, records, 3)
	w := su.Q5()
	minimal, _, err := distkey.Derive(w)
	if err != nil {
		t.Fatal(err)
	}
	t1, _ := su.Schema.AttrIndex("t1")
	rolled := distkey.RollUpAttr(su.Schema, minimal, t1)
	res := runEngine(t, Config{NumReducers: 3, ForceKey: &rolled}, w, ds)
	compare(t, "forced key", oracle(t, w, records), flatten(res))
	if res.Plan.Key.IsOverlapping() {
		t.Error("rolled-up key is overlapping")
	}
}

func TestEngineValidation(t *testing.T) {
	if _, err := NewEngine(Config{}); err == nil {
		t.Error("zero reducers accepted")
	}
	su := workload.NewSuite()
	ds := MemoryDataset(su.Schema, su.Generate(100, workload.Uniform, 1), 1)
	eng, _ := NewEngine(Config{NumReducers: 2, ForceCF: 7})
	if _, err := eng.Run(su.Q1(), ds); err == nil {
		t.Error("ForceCF on non-overlapping plan accepted")
	}
}

func TestCountRecords(t *testing.T) {
	su := workload.NewSuite()
	records := su.Generate(321, workload.Uniform, 2)
	ds := MemoryDataset(su.Schema, records, 4)
	n, err := CountRecords(ds)
	if err != nil || n != 321 {
		t.Fatalf("count = %d, %v", n, err)
	}
	// Engine plans correctly when NumRecords is unknown.
	ds.NumRecords = 0
	res := runEngine(t, Config{NumReducers: 2}, su.Q1(), ds)
	if res.TotalRecords() == 0 {
		t.Error("no results with counted cardinality")
	}
}

func TestBlockPrefix(t *testing.T) {
	coords := []int64{5, 1234567, 0, 88}
	block := cube.EncodeCoords(coords)
	key := []byte(block + "suffix-bytes")
	if got := string(key[:blockPrefixLen(key, 4)]); got != block {
		t.Errorf("blockPrefixLen = %q, want %q", got, block)
	}
	if got := string(block[:blockPrefixLen([]byte(block), 4)]); got != block {
		t.Errorf("exact-length prefix = %q", got)
	}
}

// TestBaselineMatchesEngine: the component-at-a-time plan must produce
// exactly the same answer as the single-job plan, and (the introduction's
// claim) cost substantially more for multi-component queries.
func TestBaselineMatchesEngine(t *testing.T) {
	su := workload.NewSuite()
	records := su.Generate(2500, workload.Uniform, 29)
	ds := MemoryDataset(su.Schema, records, 5)
	for _, n := range []int{1, 2, 3, 4, 5, 6} {
		w, _ := su.Query(n)
		eng, err := NewEngine(Config{NumReducers: 4, TempDir: t.TempDir()})
		if err != nil {
			t.Fatal(err)
		}
		fast, err := eng.Run(w, ds)
		if err != nil {
			t.Fatal(err)
		}
		naive, err := eng.RunComponentAtATime(w, ds)
		if err != nil {
			t.Fatalf("Q%d baseline: %v", n, err)
		}
		compare(t, "baseline", flatten(fast), flatten(naive))
		if n >= 2 && naive.Estimate.Total() <= fast.Estimate.Total() {
			t.Errorf("Q%d: naive plan (%.1fs) not slower than engine (%.1fs)",
				n, naive.Estimate.Total(), fast.Estimate.Total())
		}
	}
}

// TestEngineMultiAnnotatedKey executes a key with two annotated
// attributes (beyond the paper's single-annotation implementation): two
// sliding measures over different ordered attributes make the minimal key
// doubly annotated; forcing it must still produce the oracle answer.
func TestEngineMultiAnnotatedKey(t *testing.T) {
	su := workload.NewSuite()
	s := su.Schema
	w := workflow.New(s)
	g := s.MustGrain(cube.GrainSpec{Attr: "a1", Level: "low"}, cube.GrainSpec{Attr: "t1", Level: "hour"})
	a1, _ := s.AttrIndex("a1")
	t1, _ := s.AttrIndex("t1")
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(w.AddBasic("b", g, mustSum(), "a2"))
	must(w.AddSliding("wt", g, mustSum(), "b", workflow.RangeAnn{Attr: t1, Low: -3, High: 0}))
	must(w.AddSliding("wv", g, mustSum(), "b", workflow.RangeAnn{Attr: a1, Low: -1, High: 1}))

	minimal, _, err := distkey.Derive(w)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(minimal.AnnotatedAttrs()); got != 2 {
		t.Fatalf("minimal key has %d annotations, want 2: %s", got, minimal.Format(s))
	}
	records := su.Generate(2000, workload.Uniform, 61)
	ds := MemoryDataset(s, records, 4)
	want := oracle(t, w, records)
	for _, cf := range []int64{1, 3} {
		res := runEngine(t, Config{NumReducers: 4, ForceKey: &minimal, ForceCF: cf}, w, ds)
		compare(t, "multi-annotated", want, flatten(res))
	}
}

func mustSum() measure.Spec { return measure.Spec{Func: measure.Sum} }

// TestEngineWithMappedHierarchy runs a full parallel evaluation over a
// schema whose nominal attribute uses an irregular, table-driven
// hierarchy, verifying the engine handles non-uniform roll-ups.
func TestEngineWithMappedHierarchy(t *testing.T) {
	s := cube.MustSchema(
		cube.MustMappedAttribute("product", 10,
			cube.MappedLevel{Name: "category", Assign: []int64{0, 0, 1, 1, 1, 1, 2, 2, 2, 2}},
			cube.MappedLevel{Name: "division", Assign: []int64{0, 0, 0, 0, 0, 0, 1, 1, 1, 1}},
		),
		cube.MustAttribute("amount", cube.Numeric, 100, cube.Level{Name: "v", Span: 1}),
		cube.TimeAttribute("time", 2),
	)
	w := workflow.New(s)
	catHour := s.MustGrain(cube.GrainSpec{Attr: "product", Level: "category"}, cube.GrainSpec{Attr: "time", Level: "hour"})
	divDay := s.MustGrain(cube.GrainSpec{Attr: "product", Level: "division"}, cube.GrainSpec{Attr: "time", Level: "day"})
	ti, _ := s.AttrIndex("time")
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(w.AddBasic("rev", catHour, measure.Spec{Func: measure.Sum}, "amount"))
	must(w.AddRollup("divDaily", divDay, measure.Spec{Func: measure.Sum}, "rev"))
	must(w.AddSliding("trend", catHour, measure.Spec{Func: measure.Avg}, "rev",
		workflow.RangeAnn{Attr: ti, Low: -2, High: 0}))

	rng := rand.New(rand.NewSource(71))
	records := make([]cube.Record, 2500)
	for i := range records {
		records[i] = cube.Record{rng.Int63n(10), rng.Int63n(100), rng.Int63n(2 * 86400)}
	}
	ds := MemoryDataset(s, records, 5)
	want := oracle(t, w, records)
	res := runEngine(t, Config{NumReducers: 4}, w, ds)
	compare(t, "mapped hierarchy", want, flatten(res))
	// The rollup crosses the irregular category→division boundary; make
	// sure both divisions actually appear.
	if len(res.Measures["divDaily"]) != 2*2 {
		t.Errorf("divDaily records = %d, want 4 (2 divisions x 2 days)", len(res.Measures["divDaily"]))
	}
}

func TestSaveLoadResults(t *testing.T) {
	su := workload.NewSuite()
	records := su.Generate(1200, workload.Uniform, 81)
	ds := MemoryDataset(su.Schema, records, 3)
	w := su.Q3()
	res := runEngine(t, Config{NumReducers: 3}, w, ds)

	st, err := blockstore.Open(blockstore.Config{Dir: t.TempDir(), BlockSize: 2048, Replication: 2, NumNodes: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveResults(st, "out", res, 2048); err != nil {
		t.Fatal(err)
	}
	back, err := LoadResults(st, "out", w)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(res.Measures) {
		t.Fatalf("measures: %d vs %d", len(back), len(res.Measures))
	}
	for name, want := range res.Measures {
		got := back[name]
		if len(got) != len(want) {
			t.Fatalf("%s: %d vs %d records", name, len(got), len(want))
		}
		index := map[string]float64{}
		for _, r := range got {
			index[r.Region.Key()] = r.Value
		}
		for _, r := range want {
			if v, ok := index[r.Region.Key()]; !ok || v != r.Value {
				t.Fatalf("%s: record mismatch (%v vs %v)", name, v, r.Value)
			}
		}
	}
	// Loading against a workflow missing the measures fails loudly.
	other := workflow.New(su.Schema)
	if err := other.AddBasic("unrelated", su.Schema.GrainAll(), measure.Spec{Func: measure.Count}, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadResults(st, "out", other); err == nil {
		t.Error("foreign workflow accepted")
	}
}
