package core

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"github.com/casm-project/casm/internal/blockstore"
	"github.com/casm-project/casm/internal/mr"
	"github.com/casm-project/casm/internal/workload"
)

const crashHelperEnv = "CASM_CRASH_HELPER_DIR"

func crashStoreConfig(dir string) blockstore.Config {
	return blockstore.Config{Dir: dir, BlockSize: 4096, Replication: 2, NumNodes: 3, Seed: 5}
}

// TestCrashIngestHelper is not a test: when re-executed by
// TestCrashRecoveryAfterSIGKILL with CASM_CRASH_HELPER_DIR set, it plays
// the ingesting process. It commits the dataset "data" (flushed to disk),
// announces COMMITTED, then appends large raw entries to "partial"
// forever through the store's buffered write handles — so the SIGKILL the
// parent delivers lands mid-append and leaves a torn segment tail.
func TestCrashIngestHelper(t *testing.T) {
	dir := os.Getenv(crashHelperEnv)
	if dir == "" {
		t.Skip("helper process only")
	}
	st, err := blockstore.Open(crashStoreConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	su := workload.NewSuite()
	records := su.Generate(3000, workload.Uniform, 61)
	if err := workload.WriteStore(st, "data", su.Schema, records); err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	os.Stdout.WriteString("COMMITTED\n")
	payload := bytes.Repeat([]byte{0xAB}, 100_003)
	for i := uint32(0); ; i++ {
		var key [4]byte
		binary.BigEndian.PutUint32(key[:], i)
		if err := st.PutRaw("partial", key[:], payload); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCrashRecoveryAfterSIGKILL kills an ingesting process at an
// arbitrary point mid-append and verifies recovery: the store reopens,
// the torn tail of the in-flight file is detected by checksum and
// truncated to the last committed block, every surviving block verifies,
// and a query over the committed dataset is byte-identical to the
// oracle-checked answer from an untouched copy of the same data.
func TestCrashRecoveryAfterSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=TestCrashIngestHelper$")
	cmd.Env = append(os.Environ(), crashHelperEnv+"="+dir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// Wait for the committed dataset, then for enough flushed "partial"
	// bytes to guarantee the buffered writer has hit the disk mid-entry.
	sc := bufio.NewScanner(stdout)
	committed := false
	for sc.Scan() {
		if sc.Text() == "COMMITTED" {
			committed = true
			break
		}
	}
	if !committed {
		t.Fatalf("helper exited before committing: %v", sc.Err())
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		var flushed int64
		segs, _ := filepath.Glob(filepath.Join(dir, "n*", "partial*.seg"))
		for _, seg := range segs {
			if fi, err := os.Stat(seg); err == nil {
				flushed += fi.Size()
			}
		}
		if flushed > 1<<20 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("helper never flushed enough partial data")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	// Recovery open: the torn tails truncate away, and a second open sees
	// a fully committed store with nothing left to repair.
	st, err := blockstore.Open(crashStoreConfig(dir))
	if err != nil {
		t.Fatalf("reopen after SIGKILL: %v", err)
	}
	stats := st.Stats()
	if stats.TornTails == 0 {
		t.Fatal("no torn tails detected after SIGKILL mid-append")
	}
	for _, file := range []string{"data", "partial"} {
		blocks, err := st.Blocks(file)
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		for _, b := range blocks {
			if _, err := st.ReadBlock(file, b.Index); err != nil {
				t.Fatalf("%s block %d unreadable after recovery: %v", file, b.Index, err)
			}
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := blockstore.Open(crashStoreConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if again := st2.Stats().TornTails; again != 0 {
		t.Fatalf("second open still repairing: %d torn tails", again)
	}

	// The committed dataset answers byte-identically to the same records
	// written into a pristine store.
	su := workload.NewSuite()
	records := su.Generate(3000, workload.Uniform, 61)
	w := su.Q1()
	want := oracle(t, w, records)
	info, err := st2.FileInfo("data")
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != int64(len(records)) {
		t.Fatalf("recovered cardinality %d, want %d", info.Records, len(records))
	}
	ds := &Dataset{Schema: su.Schema, Input: mr.NewStoreInput(st2, "data"), NumRecords: info.Records, Tag: "store:data"}
	res := runEngine(t, Config{NumReducers: 3, TempDir: t.TempDir()}, w, ds)
	compare(t, "recovered", want, flatten(res))

	pristine, err := blockstore.Open(crashStoreConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer pristine.Close()
	if err := workload.WriteStore(pristine, "data", su.Schema, records); err != nil {
		t.Fatal(err)
	}
	pds := &Dataset{Schema: su.Schema, Input: mr.NewStoreInput(pristine, "data"), NumRecords: int64(len(records)), Tag: "store:data"}
	pres := runEngine(t, Config{NumReducers: 3, TempDir: t.TempDir()}, w, pds)
	if !bytes.Equal(resultBytes(t, res), resultBytes(t, pres)) {
		t.Fatal("recovered answer not byte-identical to pristine-store answer")
	}
}
